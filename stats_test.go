package mmqjp

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestEngineStatsJSONRoundTrip pins the structured stats contract: every
// counter — including the split/steal counters and the partition count —
// must survive a marshal/unmarshal cycle unchanged, so JSON consumers
// (cmd/mmqjp-bench -json, monitoring pipelines) see the same numbers the
// in-process API reports.
func TestEngineStatsJSONRoundTrip(t *testing.T) {
	in := EngineStats{
		Partitions:      4,
		Queries:         7,
		Templates:       9,
		Documents:       123,
		Matches:         456,
		XPath:           1 * time.Millisecond,
		Witness:         2 * time.Millisecond,
		Rvj:             3 * time.Millisecond,
		RL:              4 * time.Millisecond,
		RR:              5 * time.Millisecond,
		CQ:              6 * time.Millisecond,
		Maintain:        7 * time.Millisecond,
		Stage1Wall:      8 * time.Millisecond,
		Stage2Wall:      9 * time.Millisecond,
		ExploreWall:     10 * time.Millisecond,
		WitnessPlans:    11,
		RTPlans:         12,
		Explorations:    13,
		Splits:          14,
		SplitChunks:     15,
		Steals:          16,
		DroppedCascades: 17,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out EngineStats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the stats:\nin:  %+v\nout: %+v", in, out)
	}

	// Guard against two silent regressions: a field added without a JSON tag
	// (would marshal under its Go name) and duplicated tags (last writer
	// wins, dropping a counter).
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"partitions", "splits", "split_chunks", "steals", "stage1_wall_ns", "dropped_cascades"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("JSON rendering lacks %q: %s", key, b)
		}
	}
	rt := reflect.TypeOf(in)
	seen := map[string]bool{}
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		if tag == "" {
			t.Fatalf("EngineStats.%s has no json tag", rt.Field(i).Name)
		}
		if seen[tag] {
			t.Fatalf("duplicate json tag %q", tag)
		}
		seen[tag] = true
	}

	// And a live engine's stats must round-trip identically too.
	queries, stream := rssBatchFixture(40, 20)
	eng := New(Options{Processor: ProcessorViewMat, Partitions: 2, Parallelism: 2})
	for _, q := range queries {
		eng.MustSubscribe(q)
	}
	eng.PublishBatch("S", stream)
	live := eng.Stats()
	b, err = json.Marshal(live)
	if err != nil {
		t.Fatal(err)
	}
	var back EngineStats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, back) {
		t.Fatalf("live stats round trip changed:\nin:  %+v\nout: %+v", live, back)
	}
	if back.Partitions != 2 {
		t.Fatalf("live routed stats report Partitions = %d, want 2", back.Partitions)
	}
}
