// Command mmqjplint runs the repo-invariant static-analysis suite: mapiter
// (no order-sensitive map iteration on the output path), guarded (lock
// discipline for //mmqjp:guardedby annotations), shardowned (shard state only
// touched by its owner or allowlisted protocols), statswired (every stats
// counter merged and surfaced, json tags unique) and nodeterm (no wall clock
// or math/rand in the core outside annotated sites) — plus validation of the
// //mmqjp: directive grammar itself.
//
// Usage:
//
//	mmqjplint ./...
//
// It exits nonzero if any diagnostic is reported. The module is type-checked
// offline with the standard library's source importer; there are no
// dependencies beyond the Go toolchain.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/rules"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmqjplint:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmqjplint:", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, rules.Default())
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil || rel == "" {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mmqjplint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
