// Command xsclc is the XSCL compiler/inspector: it parses XSCL queries and
// prints their join graphs, reduced graph minors, query templates and the
// per-template conjunctive queries in Datalog — the artifacts of Sections 2,
// 4.1, 4.2 and 4.4 of the paper.
//
// Usage:
//
//	xsclc 'S//a->x FOLLOWED BY{x=y, 100} S//b->y'
//	xsclc -paper            # inspect the paper's Q1, Q2, Q3
//	echo 'q1; q2' | xsclc - # read ;-separated queries from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/xscl"
)

func main() {
	paper := flag.Bool("paper", false, "inspect the paper's example queries Q1-Q3 (Table 2)")
	flag.Parse()

	var sources []string
	switch {
	case *paper:
		sources = []string{
			xscl.PaperQ1(100).Source,
			xscl.PaperQ2(200).Source,
			xscl.PaperQ3(300).Source,
		}
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		for _, stmt := range strings.Split(string(data), ";") {
			if strings.TrimSpace(stmt) != "" {
				sources = append(sources, stmt)
			}
		}
	case flag.NArg() >= 1:
		sources = flag.Args()
	default:
		fmt.Fprintln(os.Stderr, "usage: xsclc [-paper] <query> ... | xsclc -")
		os.Exit(2)
	}

	templates := map[string]core.TemplateID{}
	var nextID core.TemplateID
	for i, src := range sources {
		q, err := xscl.Parse(src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- query %d --\n%s\n\n", i+1, q)
		if q.Op == xscl.OpNone {
			fmt.Printf("single-block query (no join graph)\n\n")
			continue
		}
		g, err := core.BuildJoinGraph(q)
		if err != nil {
			fatal(err)
		}
		fmt.Println("join graph:")
		fmt.Println(indent(g.String()))
		red, sig, order := core.ExtractTemplate(g)
		fmt.Println("graph minor:")
		fmt.Println(indent(red.String()))
		id, ok := templates[sig]
		if !ok {
			id = nextID
			nextID++
			templates[sig] = id
		}
		tmpl := core.NewTemplateFromCanonical(sig, red, order)
		tmpl.ID = id
		fmt.Printf("template: T%d (%d nodes, %d value joins%s)\n", id, tmpl.N, len(tmpl.VJ), sharedNote(ok))
		fmt.Printf("conjunctive query:\n  %s\n\n", tmpl.Datalog())
	}
	fmt.Printf("%d queries, %d distinct templates\n", len(sources), len(templates))
}

func sharedNote(shared bool) string {
	if shared {
		return ", shared with an earlier query"
	}
	return ""
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xsclc:", err)
	os.Exit(1)
}
