// Command mmqjp-bench regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the series the corresponding
// figure plots.
//
// Usage:
//
//	mmqjp-bench -experiment fig8            # one experiment
//	mmqjp-bench -experiment all             # the full suite (paper order)
//	mmqjp-bench -experiment workers,pipeline -json BENCH.json
//	mmqjp-bench -experiment fig16 -rss-items 225000 -queries-sweep 10,100,1000,10000,100000,1000000
//
// With -json the results are additionally written to the given file as a
// JSON array of result tables — the format cmd/benchdiff compares for the
// CI bench-regression gate.
//
// Paper-scale runs take substantially longer than the defaults; see the
// README's "Benchmarks" section for each experiment and its flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment ids (table3, fig8..fig16, workers, pipeline, churn, publishers, planning, partitions, scale, allocs) or 'all'")
		seed       = flag.Int64("seed", 1, "workload generator seed")
		sweep      = flag.String("queries-sweep", "", "comma-separated query counts for fig8/11/16 (default 10,100,1000,10000,100000)")
		workers    = flag.String("workers-sweep", "", "comma-separated worker counts for the 'workers' experiment (default 1,2,4,8)")
		pipeline   = flag.String("pipeline-sweep", "", "comma-separated pipeline depths for the 'pipeline' experiment (default 1,2,4,8)")
		churn      = flag.String("churn-sweep", "", "comma-separated per-chunk churn counts for the 'churn' experiment (default 0,8,64)")
		publishers = flag.String("publishers-sweep", "", "comma-separated publisher counts for the 'publishers' experiment (default 1,2,4,8)")
		partitions = flag.String("partitions-sweep", "", "comma-separated router partition counts for the 'partitions' experiment (default 1,2,4)")
		queries    = flag.Int("queries", 1000, "query count for fig9/10/12/13")
		bigQueries = flag.Int("big-queries", 100000, "query count for fig14/15")
		rssItems   = flag.Int("rss-items", 5000, "stream length for fig16 (paper: 225000)")
		seqItems   = flag.Int("seq-rss-items", 0, "stream length cap for fig16 sequential runs (default: rss-items)")
		scaleQs    = flag.Int("scale-queries", 0, "query count for the 'scale' experiment (default 1500; paper-scale: 100000)")
		scaleItems = flag.Int("scale-items", 0, "stream length for the 'scale' experiment (default 250; paper-scale: 2000)")
		jsonPath   = flag.String("json", "", "also write the results to this file as JSON (for benchdiff)")
	)
	flag.Parse()

	opts := bench.Options{
		Seed:         *seed,
		Queries:      *queries,
		BigQueries:   *bigQueries,
		RSSItems:     *rssItems,
		SeqRSSItems:  *seqItems,
		ScaleQueries: *scaleQs,
		ScaleItems:   *scaleItems,
	}
	parseInts := func(flagName, val string) []int {
		var out []int
		for _, part := range strings.Split(val, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "mmqjp-bench: bad %s entry %q: %v\n", flagName, part, err)
				os.Exit(2)
			}
			out = append(out, n)
		}
		return out
	}
	if *sweep != "" {
		opts.QueryCounts = parseInts("-queries-sweep", *sweep)
	}
	if *workers != "" {
		opts.WorkerCounts = parseInts("-workers-sweep", *workers)
	}
	if *pipeline != "" {
		opts.PipelineDepths = parseInts("-pipeline-sweep", *pipeline)
	}
	if *churn != "" {
		opts.ChurnCounts = parseInts("-churn-sweep", *churn)
	}
	if *publishers != "" {
		opts.PublisherCounts = parseInts("-publishers-sweep", *publishers)
	}
	if *partitions != "" {
		opts.PartitionCounts = parseInts("-partitions-sweep", *partitions)
	}

	var ids []string
	for _, id := range strings.Split(*experiment, ",") {
		id = strings.TrimSpace(id)
		if id == "all" {
			ids = append(ids, bench.All()...)
			continue
		}
		if id != "" {
			ids = append(ids, id)
		}
	}
	var results []bench.Result
	for _, id := range ids {
		start := time.Now()
		res, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmqjp-bench: %v\n", err)
			os.Exit(2)
		}
		results = append(results, res)
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmqjp-bench: marshal results: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mmqjp-bench: write %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d result tables to %s\n", len(results), *jsonPath)
	}
}
