package main

import (
	"net"
	"strings"
	"testing"
	"time"

	mmqjp "repro"
)

// startDurableServer runs the broker in durable mode against the given
// store, restoring any snapshot it holds, and returns the address and the
// server (for saveSnapshot and engine shutdown).
func startDurableServer(t *testing.T, store mmqjp.Store) (string, *server) {
	t.Helper()
	s := &server{
		durable: true,
		store:   store,
		owners:  map[mmqjp.QueryID]*client{},
	}
	if _, err := s.initEngine(mmqjp.Options{Processor: mmqjp.ProcessorViewMat}); err != nil {
		t.Fatal(err)
	}
	addr := serveOn(t, s)
	return addr, s
}

// serveOn accepts connections for s on an ephemeral port.
func serveOn(t *testing.T, s *server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); s.eng.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(s.newClient(conn))
		}
	}()
	return ln.Addr().String()
}

// TestServerErrorCodes pins the stable machine-readable code on each error
// class: clients are documented to dispatch on the first ERR token.
func TestServerErrorCodes(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	for _, tc := range []struct {
		req, code string
	}{
		{"NOSUCH verb", "EPROTO"},
		{"PUB S", "EPROTO"},
		{"PUB S notanumber <a/>", "EPROTO"},
		{"PUBB S", "EPROTO"},
		{"PUBB S notanumber", "EPROTO"},
		{"PUBB S 9000000000", "ELIMIT"},
		{"SUB not[valid", "EPARSE"},
		{"PUB S 1 <unclosed>", "EPARSE"},
		{"UNSUB notanumber", "EPROTO"},
		{"UNSUB 4242", "EQUERY"},
		{"CLAIM notanumber", "EPROTO"},
		{"CLAIM 4242", "EQUERY"},
	} {
		c.sendLine(t, tc.req)
		if got := c.readLine(t); !strings.HasPrefix(got, "ERR "+tc.code+" ") {
			t.Errorf("%q -> %q, want ERR %s ...", tc.req, got, tc.code)
		}
	}
}

// TestServerDurableClaim covers the durable ownership lifecycle on one
// running server: a disconnect orphans the subscription instead of removing
// it, matches are withheld while orphaned, CLAIM re-attaches a new
// connection, and the claim/unsub ownership rules hold.
func TestServerDurableClaim(t *testing.T) {
	addr, _ := startDurableServer(t, &mmqjp.MemStore{})

	a := dialTest(t, addr)
	a.sendLine(t, "SUB S//a->x FOLLOWED BY{x=y, 1000} S//b->y")
	resp := a.readLine(t)
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("SUB -> %q", resp)
	}
	qid := strings.TrimPrefix(resp, "OK ")

	// A second connection cannot claim or unsubscribe a live query.
	b := dialTest(t, addr)
	b.sendLine(t, "CLAIM "+qid)
	if got := b.readLine(t); !strings.HasPrefix(got, "ERR EQUERY") {
		t.Fatalf("foreign CLAIM -> %q, want ERR EQUERY", got)
	}
	// Claiming a query you already own is an idempotent OK.
	a.sendLine(t, "CLAIM "+qid)
	if got := a.readLine(t); got != "OK "+qid {
		t.Fatalf("self CLAIM -> %q", got)
	}

	// Disconnect orphans the query: it survives in the engine with a nil
	// owner. Poll UNSUB until dropClient (asynchronous to the close) has
	// landed — the reply switches from "another connection" to the
	// orphaned-query error, which also checks that UNSUB of an unclaimed
	// query demands a CLAIM first.
	a.conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.sendLine(t, "UNSUB "+qid)
		got := b.readLine(t)
		if !strings.HasPrefix(got, "ERR EQUERY") {
			t.Fatalf("UNSUB while unclaimed -> %q, want ERR EQUERY", got)
		}
		if strings.Contains(got, "CLAIM") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect never orphaned query %s: %q", qid, got)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// While orphaned, publishes still feed the query's join state but no
	// MATCH is delivered anywhere.
	b.sendLine(t, "PUB S 1 <a>k</a>")
	if got := b.readLine(t); got != "OK 0" {
		t.Fatalf("PUB while orphaned -> %q", got)
	}

	// CLAIM re-attaches; join state accumulated while orphaned is intact,
	// so the pending <a> still joins with a new <b> and the MATCH goes to
	// the claiming connection.
	b.sendLine(t, "CLAIM "+qid)
	if got := b.readLine(t); got != "OK "+qid {
		t.Fatalf("CLAIM -> %q", got)
	}
	b.sendLine(t, "PUB S 2 <b>k</b>")
	got1, got2 := b.readLine(t), b.readLine(t)
	if !strings.Contains(got1+"\n"+got2, "MATCH "+qid+" left=1@1 right=2@2") {
		t.Fatalf("no MATCH after CLAIM: %q %q", got1, got2)
	}

	// After claiming, the new owner may unsubscribe.
	b.sendLine(t, "UNSUB "+qid)
	if got := b.readLine(t); got != "OK "+qid {
		t.Fatalf("UNSUB after CLAIM -> %q", got)
	}
}

// TestServerDurableRestart is the restart-survival requirement: a snapshot
// taken on one server instance restores on the next — every subscription
// survives with its id, document ids resume above the snapshot's, and join
// state spanning the restart still produces its matches.
func TestServerDurableRestart(t *testing.T) {
	store := &mmqjp.MemStore{}
	addr1, s1 := startDurableServer(t, store)

	c := dialTest(t, addr1)
	c.sendLine(t, "SUB S//a->x FOLLOWED BY{x=y, 1000} S//b->y")
	resp := c.readLine(t)
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("SUB -> %q", resp)
	}
	qid := strings.TrimPrefix(resp, "OK ")
	c.sendLine(t, "PUB S 1 <a>k</a>")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("PUB -> %q", got)
	}
	if err := s1.saveSnapshot(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server restores from the same store.
	addr2, _ := startDurableServer(t, store)
	c2 := dialTest(t, addr2)
	// The restored subscription is orphaned until claimed.
	c2.sendLine(t, "UNSUB "+qid)
	if got := c2.readLine(t); !strings.HasPrefix(got, "ERR EQUERY") {
		t.Fatalf("restored query not orphaned: UNSUB -> %q", got)
	}
	c2.sendLine(t, "CLAIM "+qid)
	if got := c2.readLine(t); got != "OK "+qid {
		t.Fatalf("CLAIM restored query -> %q", got)
	}
	// The pre-restart <a> joins a post-restart <b>: windowed state crossed
	// the restart, and the new document's id resumed above the snapshot's
	// (left=1, right=2 — not a reused id 1).
	c2.sendLine(t, "PUB S 2 <b>k</b>")
	got1, got2 := c2.readLine(t), c2.readLine(t)
	if !strings.Contains(got1+"\n"+got2, "MATCH "+qid+" left=1@1 right=2@2") {
		t.Fatalf("join state lost across restart: %q %q", got1, got2)
	}
}
