// Command mmqjp-server is a minimal XML publish/subscribe broker built on
// the MMQJP engine: clients subscribe with XSCL queries and publish XML
// documents over a line-oriented TCP protocol; matches are pushed to the
// connection that registered the query.
//
// Protocol (one request per line):
//
//	SUB <xscl-query>             -> OK <qid> | ERR <code> <message>
//	UNSUB <qid>                  -> OK <qid> | ERR <code> <message>
//	CLAIM <qid>                  -> OK <qid> | ERR <code> <message>
//	PUB <stream> <ts> <xml>      -> OK <matches> | ERR <code> <message>
//	PUBB <stream> <n>            -> OK <total matches> | ERR <code> <message>
//	STATS                        -> OK <engine stats>
//	QUIT                         -> closes the connection
//
// Error replies carry a stable machine-readable code as their first token
// (the human-readable message may change between releases):
//
//	EPROTO  malformed request (usage, unknown verb, bad field)
//	EPARSE  query or document text did not parse
//	EQUERY  unknown query id, or an ownership/claim violation
//	ELIMIT  a size limit was exceeded (line length, batch count)
//
// A request line may be at most 1 MB; an over-long line is consumed whole,
// answered with an ERR, and the connection stays usable (it is not silently
// dropped).
//
// PUBB publishes a batch: the header line is followed by exactly <n> lines
// (n ≤ 65536), each `<ts> <xml>`, ingested in order through the engine's
// pipelined batch path (Stage 1 of upcoming documents overlaps Stage-2
// consumption, depth set by -pipeline). A malformed document line rejects
// the whole batch after the announced lines are consumed; no document of a
// rejected batch is published.
//
// UNSUB removes a subscription; only the connection that registered (or
// claimed) a query may unsubscribe it. The engine reclaims everything the
// query no longer shares with surviving subscriptions (refcounted canonical
// templates, query relations, view-cache entries). Without -snapshot-path a
// subscription lives at most as long as its connection: disconnecting
// unsubscribes all of the connection's queries.
//
// With -snapshot-path the server is durable: subscriptions survive both
// client disconnects and server restarts. A disconnect orphans the client's
// queries (they keep accumulating join state; their matches are simply not
// delivered) and a reconnecting client re-attaches with CLAIM <qid>, which
// also reclaims queries restored from a snapshot. The engine — every
// subscription plus the windowed join state — is snapshotted to the given
// file atomically (write-temp + rename) every -snapshot-every interval and
// on SIGINT/SIGTERM; on startup an existing snapshot is restored and
// publishing resumes exactly where the stream left off, with document ids
// continuing above the highest admitted id.
//
// -snapshot-gzip compresses saved snapshots; restores sniff the on-disk
// format, so the flag can be added (or dropped) across restarts without
// losing the existing snapshot.
//
// -partitions N (N > 1) runs the engine-of-engines router: subscriptions
// are partitioned by canonical template signature across N independent
// engines, every published document fans out to all of them, and the
// merged match stream is byte-identical to a single engine's — the flag
// changes scheduling, never output. Snapshots record the partition count
// and must be restored with the same -partitions value.
//
// -debug-addr starts an HTTP observability sidecar with /metrics
// (Prometheus text), /healthz (ingest-pipeline liveness under a deadline)
// and /debug/pprof; see debug.go for the metric set.
//
// With -async, PUB requests are routed through the engine's continuous
// ingest pipeline (Engine.PublishAsync): the connection handler admits the
// document and moves on to the next request, so concurrent publishers —
// and consecutive PUBs on one connection — overlap their documents'
// Stage-1 work instead of serializing whole publishes. Replies keep the
// request order per connection (a dedicated replier goroutine acknowledges
// each PUB with its match count once the document has been processed), and
// match output is identical to synchronous mode for the same admission
// order.
//
// The Stage-2 physical plan is chosen adaptively per template by default
// (-plan auto, with -explore N controlling the calibration sampling);
// -plan witness and -plan rt force one plan for ablation runs. Match output
// is identical for every plan setting.
//
// Matches are delivered asynchronously as
//
//	MATCH <qid> left=<docid>@<ts> right=<docid>@<ts>
//
// Connections are served concurrently against one shared engine; document
// ids are assigned by arrival order. Example session:
//
//	$ mmqjp-server -addr :7878 &
//	$ printf 'SUB S//a->x JOIN{x=y, 100} S//b->y\nPUB S 1 <a>v</a>\nPUB S 2 <b>v</b>\n' | nc localhost 7878
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	mmqjp "repro"
)

// maxLineBytes bounds a single protocol line. Longer lines are consumed to
// their end and rejected with an ERR reply, keeping the connection
// line-synchronized instead of silently dropping it.
const maxLineBytes = 1 << 20

// server fans concurrent client connections into a shared Engine. The
// engine itself is safe for concurrent Subscribe/Publish (it serializes
// writers internally and parallelizes Stage-2 across templates), so the
// server's own mutex only guards the query-ownership table.
type server struct {
	eng     *mmqjp.Engine
	async   bool // route PUB through the continuous ingest pipeline
	durable bool // -snapshot-path set: disconnects orphan instead of unsubscribing
	store   mmqjp.Store
	m       *serverMetrics // nil without -debug-addr: all methods no-op
	nextDoc atomic.Int64

	mu sync.Mutex
	// owners maps a query to the connection that subscribed (or claimed)
	// it. In durable mode a nil owner marks an orphaned subscription —
	// alive in the engine, matches undelivered until a CLAIM.
	owners map[mmqjp.QueryID]*client
}

// Stable error codes, the first token of every ERR reply.
const (
	errProto = "EPROTO" // malformed request
	errParse = "EPARSE" // query/document text did not parse
	errQuery = "EQUERY" // unknown id or ownership violation
	errLimit = "ELIMIT" // size limit exceeded
)

// replyErr answers one request with a coded error.
func (s *server) replyErr(c *client, code, msg string) {
	s.reply(c, "ERR "+code+" "+msg)
}

type client struct {
	conn net.Conn
	mu   sync.Mutex // serializes writes

	// pending (async mode only) carries this connection's replies to the
	// replier goroutine in request order: resolved replies for
	// non-publish requests, and the match channel of each admitted
	// asynchronous publish, acknowledged when the document has been
	// processed. Routing every reply through one queue keeps the
	// per-connection reply order equal to the request order even though
	// publishes complete asynchronously. replierDone closes once the
	// replier has drained pending, so serve can flush queued replies
	// before closing the connection.
	pending     chan pendingReply
	replierDone chan struct{}
}

type pendingReply struct {
	matches <-chan []mmqjp.Match // nil for an immediate reply
	stream  string               // with matches: the published stream, for metrics
	line    string               // the reply when matches and eval are nil
	eval    func() string        // computed at the reply's slot (STATS)
}

func (c *client) send(line string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintln(c.conn, line)
}

// newClient wraps an accepted connection; in async mode it also starts the
// connection's replier goroutine, which exits when serve closes pending.
func (s *server) newClient(conn net.Conn) *client {
	c := &client{conn: conn}
	if s.async {
		c.pending = make(chan pendingReply, 256)
		c.replierDone = make(chan struct{})
		go func() {
			defer close(c.replierDone)
			for p := range c.pending {
				switch {
				case p.matches != nil:
					ms := <-p.matches
					s.m.published(p.stream, 1, len(ms))
					s.deliver(ms)
					c.send(fmt.Sprintf("OK %d", len(ms)))
				case p.eval != nil:
					c.send(p.eval())
				default:
					c.send(p.line)
				}
			}
		}()
	}
	return c
}

// reply answers one request. In async mode the reply is queued behind the
// connection's in-flight publishes so replies stay in request order.
func (s *server) reply(c *client, line string) {
	if c.pending != nil {
		c.pending <- pendingReply{line: line}
		return
	}
	c.send(line)
}

// replyEval answers one request with a lazily computed line; in async mode
// the computation runs at the reply's slot in the queue, after the
// preceding publishes have been acknowledged.
func (s *server) replyEval(c *client, eval func() string) {
	if c.pending != nil {
		c.pending <- pendingReply{eval: eval}
		return
	}
	c.send(eval())
}

func main() {
	addr := flag.String("addr", ":7878", "listen address")
	viewMat := flag.Bool("viewmat", true, "enable view materialization")
	workers := flag.Int("workers", runtime.NumCPU(), "Stage-2 worker goroutines per publish (1 = sequential)")
	pipeline := flag.Int("pipeline", runtime.NumCPU(), "ingest pipeline depth for PUBB batches and -async publishes (1 = sequential)")
	async := flag.Bool("async", false, "route PUB through the continuous async ingest pipeline")
	planName := flag.String("plan", "auto", "Stage-2 physical plan: auto (adaptive), witness, or rt (forced ablations)")
	explore := flag.Int("explore", 64, "with -plan auto, run the non-chosen plan on ~1/N of plan decisions to calibrate the cost model (0 disables)")
	splitThr := flag.Float64("split-threshold", 0, "cost-unit threshold above which a hot template's Stage-2 evaluation is split across workers (0 = built-in default, negative disables; see TUNING.md)")
	partitions := flag.Int("partitions", 0, "engine-of-engines: partition subscriptions across this many independent engines behind the deterministic router (0 or 1 = a single engine; output is identical either way)")
	debugAddr := flag.String("debug-addr", "", "HTTP observability listener (/metrics, /healthz, /debug/pprof); empty disables")
	snapPath := flag.String("snapshot-path", "", "durable mode: snapshot file to restore on start and save on shutdown; empty disables")
	snapEvery := flag.Duration("snapshot-every", 0, "with -snapshot-path, also snapshot at this interval (0 = only on shutdown)")
	snapGzip := flag.Bool("snapshot-gzip", false, "with -snapshot-path, gzip-compress saved snapshots (restores sniff the format, so existing uncompressed snapshots still open)")
	flag.Parse()

	kind := mmqjp.ProcessorMMQJP
	if *viewMat {
		kind = mmqjp.ProcessorViewMat
	}
	plan, err := mmqjp.ParsePlan(*planName)
	if err != nil {
		log.Fatalf("mmqjp-server: %v", err)
	}
	s := &server{
		async:   *async,
		durable: *snapPath != "",
		owners:  map[mmqjp.QueryID]*client{},
	}
	if *debugAddr != "" {
		s.m = newServerMetrics(func() *mmqjp.Engine { return s.eng }, *partitions)
	}
	opts := mmqjp.Options{
		Processor: kind, Parallelism: *workers, PipelineDepth: *pipeline,
		Plan: plan, PlanExploreEvery: *explore, SplitThreshold: *splitThr,
		Partitions: *partitions,
	}
	if s.m != nil {
		opts.OnDocument = s.m.onDocument
	}
	if s.durable {
		var storeOpts []mmqjp.StoreOption
		if *snapGzip {
			storeOpts = append(storeOpts, mmqjp.WithGzip())
		}
		s.store = mmqjp.NewFileStore(*snapPath, storeOpts...)
	}
	restored, err := s.initEngine(opts)
	if err != nil {
		log.Fatalf("mmqjp-server: restore %s: %v", *snapPath, err)
	}
	if restored > 0 {
		log.Printf("mmqjp-server: restored %d subscriptions from %s", restored, *snapPath)
	}
	if *debugAddr != "" {
		dbg, err := s.startDebugServer(*debugAddr)
		if err != nil {
			log.Fatalf("mmqjp-server: debug listener: %v", err)
		}
		log.Printf("mmqjp-server debug endpoints on http://%s", dbg)
	}
	if s.durable {
		if *snapEvery > 0 {
			go func() {
				for range time.Tick(*snapEvery) {
					s.saveSnapshot()
				}
			}()
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := s.saveSnapshot(); err != nil {
				os.Exit(1)
			}
			os.Exit(0)
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mmqjp-server: %v", err)
	}
	log.Printf("mmqjp-server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go s.serve(s.newClient(conn))
	}
}

// initEngine creates the server's engine: in durable mode an existing
// snapshot in s.store is restored — its subscriptions start orphaned (nil
// owner) until a CLAIM re-attaches them, and document ids resume above
// everything the snapshot had admitted — while a missing snapshot
// (ErrNoSnapshot) falls back to a fresh engine. Returns how many
// subscriptions were restored.
func (s *server) initEngine(opts mmqjp.Options) (restored int, err error) {
	if s.durable {
		eng, err := mmqjp.OpenEngineFrom(s.store, opts)
		switch {
		case err == nil:
			s.eng = eng
			for _, qid := range eng.Subscriptions() {
				s.owners[qid] = nil
			}
			s.nextDoc.Store(eng.MaxDocID())
			return eng.NumQueries(), nil
		case !errors.Is(err, mmqjp.ErrNoSnapshot):
			return 0, err
		}
	}
	s.eng = mmqjp.New(opts)
	return 0, nil
}

// saveSnapshot writes the engine snapshot into the durable store. The
// snapshot lands at an ingest barrier (a consistent admission-order prefix)
// and replaces the previous file atomically, so a crash at any point leaves
// a restartable snapshot behind.
func (s *server) saveSnapshot() error {
	start := time.Now()
	err := s.eng.SnapshotTo(s.store)
	s.m.snapshotSaved(time.Since(start), err)
	if err != nil {
		log.Printf("mmqjp-server: snapshot: %v", err)
	}
	return err
}

// readLine reads one newline-terminated line from r, retaining at most max
// bytes. An over-long line is consumed to its newline and reported via
// tooLong, so the caller can reject it and keep the connection
// line-synchronized. A final unterminated line is returned before the
// subsequent error.
func readLine(r *bufio.Reader, max int) (line string, tooLong bool, err error) {
	var sb strings.Builder
	for {
		frag, err := r.ReadSlice('\n')
		if !tooLong && sb.Len()+len(frag) > max {
			tooLong = true
		}
		if !tooLong {
			sb.Write(frag)
		}
		switch err {
		case nil:
			return strings.TrimRight(sb.String(), "\r\n"), tooLong, nil
		case bufio.ErrBufferFull:
			continue
		default:
			if err == io.EOF && (sb.Len() > 0 || tooLong) {
				return sb.String(), tooLong, nil
			}
			return "", tooLong, err
		}
	}
}

func (s *server) serve(c *client) {
	defer c.conn.Close()
	// A subscription lives as long as the connection that registered it:
	// on disconnect the client's queries are unsubscribed, so a dropped
	// connection cannot leak un-removable queries into the engine (UNSUB
	// rejects every other connection by the ownership rule).
	defer s.dropClient(c)
	if c.pending != nil {
		// Flush before disconnect: stop the replier and wait for it to
		// drain the queued replies (the in-flight publishes' match
		// channels resolve independently of this connection), so a QUIT
		// does not race the close against pending acknowledgements.
		// Defers run LIFO: the drain completes before dropClient and the
		// connection close above.
		defer func() {
			close(c.pending)
			<-c.replierDone
		}()
	}
	rd := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		line, tooLong, err := readLine(rd, maxLineBytes)
		if err != nil {
			return
		}
		if tooLong {
			s.replyErr(c, errLimit, fmt.Sprintf("line exceeds %d bytes", maxLineBytes))
			continue
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(verb) {
		case "SUB":
			s.handleSub(c, rest)
		case "UNSUB":
			s.handleUnsub(c, rest)
		case "CLAIM":
			s.handleClaim(c, rest)
		case "PUB":
			s.handlePub(c, rest)
		case "PUBB":
			s.handlePubBatch(c, rd, rest)
		case "STATS":
			// Evaluated at the reply's position in the queue, so an async
			// STATS reflects the publishes acknowledged before it.
			s.replyEval(c, func() string { return "OK " + s.eng.Stats().String() })
		case "QUIT":
			return
		default:
			s.replyErr(c, errProto, "unknown verb "+verb)
		}
	}
}

func (s *server) handleSub(c *client, src string) {
	// s.mu is held across Subscribe and the owners insert so a concurrent
	// PUB can never observe the query registered but unowned (its matches
	// would be dropped): handlePub reads owners only after PublishXML
	// returns, and by then either the query wasn't registered yet or the
	// owner is in the table. Publishes themselves never run under s.mu.
	s.mu.Lock()
	id, err := s.eng.Subscribe(src)
	if err == nil {
		s.owners[id] = c
	}
	s.mu.Unlock()
	if err != nil {
		s.replyErr(c, errParse, err.Error())
		return
	}
	s.reply(c, fmt.Sprintf("OK %d", id))
}

// handleClaim re-attaches the requesting connection to an orphaned durable
// subscription — one restored from a snapshot, or left behind by its
// owner's disconnect. Claiming a query you already own is an idempotent OK;
// claiming another live connection's query is refused.
func (s *server) handleClaim(c *client, rest string) {
	id, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		s.replyErr(c, errProto, "usage: CLAIM <qid>")
		return
	}
	qid := mmqjp.QueryID(id)
	s.mu.Lock()
	owner, ok := s.owners[qid]
	switch {
	case !ok:
		err = fmt.Errorf("unknown query %d", qid)
	case owner != nil && owner != c:
		err = fmt.Errorf("query %d belongs to another connection", qid)
	default:
		s.owners[qid] = c
	}
	s.mu.Unlock()
	if err != nil {
		s.replyErr(c, errQuery, err.Error())
		return
	}
	s.reply(c, fmt.Sprintf("OK %d", qid))
}

// handleUnsub removes a subscription owned by the requesting connection.
// s.mu is held across the ownership check and the engine call, mirroring
// handleSub: a concurrent PUB either publishes before the query is removed
// (and may deliver its final matches) or after (and cannot).
func (s *server) handleUnsub(c *client, rest string) {
	id, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		s.replyErr(c, errProto, "usage: UNSUB <qid>")
		return
	}
	qid := mmqjp.QueryID(id)
	s.mu.Lock()
	owner, ok := s.owners[qid]
	switch {
	case !ok:
		err = fmt.Errorf("unknown query %d", qid)
	case owner == nil:
		err = fmt.Errorf("query %d is unclaimed; CLAIM it first", qid)
	case owner != c:
		err = fmt.Errorf("query %d belongs to another connection", qid)
	default:
		if err = s.eng.Unsubscribe(qid); err == nil {
			delete(s.owners, qid)
		}
	}
	s.mu.Unlock()
	if err != nil {
		s.replyErr(c, errQuery, err.Error())
		return
	}
	s.reply(c, fmt.Sprintf("OK %d", qid))
}

// dropClient releases every query owned by a disconnecting client: in
// durable mode the queries are orphaned (kept alive in the engine, matches
// undelivered until a CLAIM re-attaches them); otherwise they are
// unsubscribed. Lock order matches handleSub/handleUnsub: s.mu is taken
// first, the engine lock inside it.
func (s *server) dropClient(c *client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for qid, owner := range s.owners {
		if owner != c {
			continue
		}
		if s.durable {
			s.owners[qid] = nil
			continue
		}
		if err := s.eng.Unsubscribe(qid); err != nil {
			log.Printf("drop client: unsubscribe %d: %v", qid, err)
		}
		delete(s.owners, qid)
	}
}

func (s *server) handlePub(c *client, rest string) {
	stream, rest, ok1 := cut(rest)
	tsText, xmlText, ok2 := cut(rest)
	if !ok1 || !ok2 {
		s.replyErr(c, errProto, "usage: PUB <stream> <ts> <xml>")
		return
	}
	ts, err := strconv.ParseInt(tsText, 10, 64)
	if err != nil {
		s.replyErr(c, errProto, "bad timestamp: "+err.Error())
		return
	}
	// Timestamps drive window admission and eviction order; a negative one
	// would sort before every document already in the window. ParseInt
	// happily accepts "-5", so reject it explicitly.
	if ts < 0 {
		s.replyErr(c, errProto, "bad timestamp: must be non-negative, got "+tsText)
		return
	}
	docID := s.nextDoc.Add(1)
	if c.pending != nil {
		// Async mode: parse on the connection handler (concurrent across
		// connections), admit, and let the replier acknowledge once the
		// document has been processed. The handler is free to read the
		// next request while this document's Stage 1 runs.
		d, err := mmqjp.ParseDocument(xmlText, docID, ts)
		if err != nil {
			s.replyErr(c, errParse, err.Error())
			return
		}
		c.pending <- pendingReply{matches: s.eng.PublishAsync(stream, d), stream: stream}
		return
	}
	matches, err := s.eng.PublishXML(stream, xmlText, docID, ts)
	if err != nil {
		s.replyErr(c, errParse, err.Error())
		return
	}
	s.m.published(stream, 1, len(matches))
	s.deliver(matches)
	s.reply(c, fmt.Sprintf("OK %d", len(matches)))
}

// maxBatchDocs bounds the document count a PUBB header may announce, so a
// hostile or mistyped count cannot drive a huge allocation. An oversized
// count is rejected before any document line is read (the client must
// resynchronize, exactly as after a malformed header).
const maxBatchDocs = 65536

// handlePubBatch reads the <n> document lines announced by a PUBB header
// and publishes them through the engine's pipelined batch path.
func (s *server) handlePubBatch(c *client, rd *bufio.Reader, rest string) {
	stream, nText, ok := cut(rest)
	if !ok || nText == "" {
		s.replyErr(c, errProto, "usage: PUBB <stream> <n>, then n lines of <ts> <xml>")
		return
	}
	n, err := strconv.Atoi(nText)
	if err != nil || n < 0 {
		s.replyErr(c, errProto, "bad batch count "+nText)
		return
	}
	if n > maxBatchDocs {
		s.replyErr(c, errLimit, fmt.Sprintf("batch count %d exceeds %d", n, maxBatchDocs))
		return
	}
	events := make([]mmqjp.XMLEvent, 0, n)
	badLine, badCode := "", ""
	for i := 0; i < n; i++ {
		// Consume every announced line even after an error, so the
		// connection stays line-synchronized.
		line, tooLong, err := readLine(rd, maxLineBytes)
		if err != nil {
			s.replyErr(c, errProto, "truncated batch")
			return
		}
		if tooLong {
			if badLine == "" {
				badLine = fmt.Sprintf("batch document %d exceeds %d bytes", i+1, maxLineBytes)
				badCode = errLimit
			}
			continue
		}
		tsText, xmlText, ok := cut(strings.TrimSpace(line))
		ts, perr := strconv.ParseInt(tsText, 10, 64)
		if !ok || xmlText == "" || perr != nil || ts < 0 {
			// ts < 0: same rejection as handlePub — ParseInt accepts a
			// leading minus, but negative timestamps would invert window
			// eviction order.
			if badLine == "" {
				badLine = fmt.Sprintf("bad batch document %d: want <ts> <xml> with non-negative ts", i+1)
				badCode = errProto
			}
			continue
		}
		events = append(events, mmqjp.XMLEvent{XML: xmlText, DocID: s.nextDoc.Add(1), Timestamp: ts})
	}
	if badLine != "" {
		s.replyErr(c, badCode, badLine)
		return
	}
	if c.pending != nil {
		// Async mode: the batch path takes the engine lock directly, so
		// drain this connection's earlier admitted-but-unconsumed PUB
		// documents first — otherwise the batch could enter the join
		// state ahead of them and break per-connection document order.
		s.eng.Flush()
	}
	batches, err := s.eng.PublishXMLBatch(stream, events)
	if err != nil {
		s.replyErr(c, errParse, err.Error())
		return
	}
	total := 0
	for _, matches := range batches {
		total += len(matches)
		s.deliver(matches)
	}
	s.m.published(stream, len(events), total)
	s.reply(c, fmt.Sprintf("OK %d", total))
}

// deliver pushes MATCH lines to the connections owning the matched queries.
func (s *server) deliver(matches []mmqjp.Match) {
	s.mu.Lock()
	deliveries := make([]struct {
		to   *client
		line string
	}, 0, len(matches))
	for _, m := range matches {
		owner := s.owners[m.Query]
		if owner == nil {
			continue
		}
		deliveries = append(deliveries, struct {
			to   *client
			line string
		}{owner, fmt.Sprintf("MATCH %d left=%d@%d right=%d@%d",
			m.Query, m.LeftDoc, m.LeftTS, m.RightDoc, m.RightTS)})
	}
	s.mu.Unlock()
	for _, d := range deliveries {
		d.to.send(d.line)
	}
}

func cut(s string) (first, rest string, ok bool) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, "", s != ""
	}
	return s[:i], strings.TrimSpace(s[i+1:]), true
}
