// Command mmqjp-server is a minimal XML publish/subscribe broker built on
// the MMQJP engine: clients subscribe with XSCL queries and publish XML
// documents over a line-oriented TCP protocol; matches are pushed to the
// connection that registered the query.
//
// Protocol (one request per line):
//
//	SUB <xscl-query>             -> OK <qid> | ERR <message>
//	UNSUB <qid>                  -> OK <qid> | ERR <message>
//	PUB <stream> <ts> <xml>      -> OK <matches> | ERR <message>
//	PUBB <stream> <n>            -> OK <total matches> | ERR <message>
//	STATS                        -> OK <engine stats>
//	QUIT                         -> closes the connection
//
// PUBB publishes a batch: the header line is followed by exactly <n> lines
// (n ≤ 65536), each `<ts> <xml>`, ingested in order through the engine's
// pipelined batch path (Stage 1 of upcoming documents overlaps Stage-2
// consumption, depth set by -pipeline). A malformed document line rejects
// the whole batch after the announced lines are consumed; no document of a
// rejected batch is published.
//
// UNSUB removes a subscription; only the connection that registered a query
// may unsubscribe it. The engine reclaims everything the query no longer
// shares with surviving subscriptions (refcounted canonical templates, query
// relations, view-cache entries). A subscription lives at most as long as
// its connection: disconnecting unsubscribes all of the connection's
// queries.
//
// Matches are delivered asynchronously as
//
//	MATCH <qid> left=<docid>@<ts> right=<docid>@<ts>
//
// Connections are served concurrently against one shared engine; document
// ids are assigned by arrival order. Example session:
//
//	$ mmqjp-server -addr :7878 &
//	$ printf 'SUB S//a->x JOIN{x=y, 100} S//b->y\nPUB S 1 <a>v</a>\nPUB S 2 <b>v</b>\n' | nc localhost 7878
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	mmqjp "repro"
)

// server fans concurrent client connections into a shared Engine. The
// engine itself is safe for concurrent Subscribe/Publish (it serializes
// writers internally and parallelizes Stage-2 across templates), so the
// server's own mutex only guards the query-ownership table.
type server struct {
	eng     *mmqjp.Engine
	nextDoc atomic.Int64

	mu sync.Mutex
	// owners maps a query to the connection that subscribed it.
	owners map[mmqjp.QueryID]*client
}

type client struct {
	conn net.Conn
	mu   sync.Mutex // serializes writes
}

func (c *client) send(line string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintln(c.conn, line)
}

func main() {
	addr := flag.String("addr", ":7878", "listen address")
	viewMat := flag.Bool("viewmat", true, "enable view materialization")
	workers := flag.Int("workers", runtime.NumCPU(), "Stage-2 worker goroutines per publish (1 = sequential)")
	pipeline := flag.Int("pipeline", runtime.NumCPU(), "ingest pipeline depth for PUBB batches (1 = sequential)")
	flag.Parse()

	kind := mmqjp.ProcessorMMQJP
	if *viewMat {
		kind = mmqjp.ProcessorViewMat
	}
	s := &server{
		eng:    mmqjp.New(mmqjp.Options{Processor: kind, Parallelism: *workers, PipelineDepth: *pipeline}),
		owners: map[mmqjp.QueryID]*client{},
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mmqjp-server: %v", err)
	}
	log.Printf("mmqjp-server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go s.serve(&client{conn: conn})
	}
}

func (s *server) serve(c *client) {
	defer c.conn.Close()
	// A subscription lives as long as the connection that registered it:
	// on disconnect the client's queries are unsubscribed, so a dropped
	// connection cannot leak un-removable queries into the engine (UNSUB
	// rejects every other connection by the ownership rule).
	defer s.dropClient(c)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(verb) {
		case "SUB":
			s.handleSub(c, rest)
		case "UNSUB":
			s.handleUnsub(c, rest)
		case "PUB":
			s.handlePub(c, rest)
		case "PUBB":
			s.handlePubBatch(c, sc, rest)
		case "STATS":
			c.send("OK " + s.eng.Stats())
		case "QUIT":
			return
		default:
			c.send("ERR unknown verb " + verb)
		}
	}
}

func (s *server) handleSub(c *client, src string) {
	// s.mu is held across Subscribe and the owners insert so a concurrent
	// PUB can never observe the query registered but unowned (its matches
	// would be dropped): handlePub reads owners only after PublishXML
	// returns, and by then either the query wasn't registered yet or the
	// owner is in the table. Publishes themselves never run under s.mu.
	s.mu.Lock()
	id, err := s.eng.Subscribe(src)
	if err == nil {
		s.owners[id] = c
	}
	s.mu.Unlock()
	if err != nil {
		c.send("ERR " + err.Error())
		return
	}
	c.send(fmt.Sprintf("OK %d", id))
}

// handleUnsub removes a subscription owned by the requesting connection.
// s.mu is held across the ownership check and the engine call, mirroring
// handleSub: a concurrent PUB either publishes before the query is removed
// (and may deliver its final matches) or after (and cannot).
func (s *server) handleUnsub(c *client, rest string) {
	id, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		c.send("ERR usage: UNSUB <qid>")
		return
	}
	qid := mmqjp.QueryID(id)
	s.mu.Lock()
	owner, ok := s.owners[qid]
	switch {
	case !ok:
		err = fmt.Errorf("unknown query %d", qid)
	case owner != c:
		err = fmt.Errorf("query %d belongs to another connection", qid)
	default:
		if err = s.eng.Unsubscribe(qid); err == nil {
			delete(s.owners, qid)
		}
	}
	s.mu.Unlock()
	if err != nil {
		c.send("ERR " + err.Error())
		return
	}
	c.send(fmt.Sprintf("OK %d", qid))
}

// dropClient unsubscribes every query owned by a disconnecting client.
// Lock order matches handleSub/handleUnsub: s.mu is taken first, the engine
// lock inside it.
func (s *server) dropClient(c *client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for qid, owner := range s.owners {
		if owner != c {
			continue
		}
		if err := s.eng.Unsubscribe(qid); err != nil {
			log.Printf("drop client: unsubscribe %d: %v", qid, err)
		}
		delete(s.owners, qid)
	}
}

func (s *server) handlePub(c *client, rest string) {
	stream, rest, ok1 := cut(rest)
	tsText, xmlText, ok2 := cut(rest)
	if !ok1 || !ok2 {
		c.send("ERR usage: PUB <stream> <ts> <xml>")
		return
	}
	ts, err := strconv.ParseInt(tsText, 10, 64)
	if err != nil {
		c.send("ERR bad timestamp: " + err.Error())
		return
	}
	docID := s.nextDoc.Add(1)
	matches, err := s.eng.PublishXML(stream, xmlText, docID, ts)
	if err != nil {
		c.send("ERR " + err.Error())
		return
	}
	s.deliver(matches)
	c.send(fmt.Sprintf("OK %d", len(matches)))
}

// maxBatchDocs bounds the document count a PUBB header may announce, so a
// hostile or mistyped count cannot drive a huge allocation. An oversized
// count is rejected before any document line is read (the client must
// resynchronize, exactly as after a malformed header).
const maxBatchDocs = 65536

// handlePubBatch reads the <n> document lines announced by a PUBB header
// and publishes them through the engine's pipelined batch path.
func (s *server) handlePubBatch(c *client, sc *bufio.Scanner, rest string) {
	stream, nText, ok := cut(rest)
	if !ok || nText == "" {
		c.send("ERR usage: PUBB <stream> <n>, then n lines of <ts> <xml>")
		return
	}
	n, err := strconv.Atoi(nText)
	if err != nil || n < 0 || n > maxBatchDocs {
		c.send(fmt.Sprintf("ERR bad batch count %s (max %d)", nText, maxBatchDocs))
		return
	}
	events := make([]mmqjp.XMLEvent, 0, n)
	badLine := ""
	for i := 0; i < n; i++ {
		// Consume every announced line even after an error, so the
		// connection stays line-synchronized.
		if !sc.Scan() {
			c.send("ERR truncated batch")
			return
		}
		tsText, xmlText, ok := cut(strings.TrimSpace(sc.Text()))
		ts, perr := strconv.ParseInt(tsText, 10, 64)
		if !ok || xmlText == "" || perr != nil {
			if badLine == "" {
				badLine = fmt.Sprintf("bad batch document %d: want <ts> <xml>", i+1)
			}
			continue
		}
		events = append(events, mmqjp.XMLEvent{XML: xmlText, DocID: s.nextDoc.Add(1), Timestamp: ts})
	}
	if badLine != "" {
		c.send("ERR " + badLine)
		return
	}
	batches, err := s.eng.PublishXMLBatch(stream, events)
	if err != nil {
		c.send("ERR " + err.Error())
		return
	}
	total := 0
	for _, matches := range batches {
		total += len(matches)
		s.deliver(matches)
	}
	c.send(fmt.Sprintf("OK %d", total))
}

// deliver pushes MATCH lines to the connections owning the matched queries.
func (s *server) deliver(matches []mmqjp.Match) {
	s.mu.Lock()
	deliveries := make([]struct {
		to   *client
		line string
	}, 0, len(matches))
	for _, m := range matches {
		owner := s.owners[m.Query]
		if owner == nil {
			continue
		}
		deliveries = append(deliveries, struct {
			to   *client
			line string
		}{owner, fmt.Sprintf("MATCH %d left=%d@%d right=%d@%d",
			m.Query, m.LeftDoc, m.LeftTS, m.RightDoc, m.RightTS)})
	}
	s.mu.Unlock()
	for _, d := range deliveries {
		d.to.send(d.line)
	}
}

func cut(s string) (first, rest string, ok bool) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, "", s != ""
	}
	return s[:i], strings.TrimSpace(s[i+1:]), true
}
