// Command mmqjp-server is a minimal XML publish/subscribe broker built on
// the MMQJP engine: clients subscribe with XSCL queries and publish XML
// documents over a line-oriented TCP protocol; matches are pushed to the
// connection that registered the query.
//
// Protocol (one request per line):
//
//	SUB <xscl-query>             -> OK <qid> | ERR <message>
//	PUB <stream> <ts> <xml>      -> OK <matches> | ERR <message>
//	STATS                        -> OK <engine stats>
//	QUIT                         -> closes the connection
//
// Matches are delivered asynchronously as
//
//	MATCH <qid> left=<docid>@<ts> right=<docid>@<ts>
//
// Document ids are assigned by arrival order. Example session:
//
//	$ mmqjp-server -addr :7878 &
//	$ printf 'SUB S//a->x JOIN{x=y, 100} S//b->y\nPUB S 1 <a>v</a>\nPUB S 2 <b>v</b>\n' | nc localhost 7878
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	mmqjp "repro"
)

type server struct {
	mu      sync.Mutex
	eng     *mmqjp.Engine
	nextDoc int64
	// owners maps a query to the connection that subscribed it.
	owners map[mmqjp.QueryID]*client
}

type client struct {
	conn net.Conn
	mu   sync.Mutex // serializes writes
}

func (c *client) send(line string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintln(c.conn, line)
}

func main() {
	addr := flag.String("addr", ":7878", "listen address")
	viewMat := flag.Bool("viewmat", true, "enable view materialization")
	flag.Parse()

	kind := mmqjp.ProcessorMMQJP
	if *viewMat {
		kind = mmqjp.ProcessorViewMat
	}
	s := &server{
		eng:    mmqjp.New(mmqjp.Options{Processor: kind}),
		owners: map[mmqjp.QueryID]*client{},
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mmqjp-server: %v", err)
	}
	log.Printf("mmqjp-server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			continue
		}
		go s.serve(&client{conn: conn})
	}
}

func (s *server) serve(c *client) {
	defer c.conn.Close()
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		switch strings.ToUpper(verb) {
		case "SUB":
			s.handleSub(c, rest)
		case "PUB":
			s.handlePub(c, rest)
		case "STATS":
			s.mu.Lock()
			stats := s.eng.Stats()
			s.mu.Unlock()
			c.send("OK " + stats)
		case "QUIT":
			return
		default:
			c.send("ERR unknown verb " + verb)
		}
	}
}

func (s *server) handleSub(c *client, src string) {
	s.mu.Lock()
	id, err := s.eng.Subscribe(src)
	if err == nil {
		s.owners[id] = c
	}
	s.mu.Unlock()
	if err != nil {
		c.send("ERR " + err.Error())
		return
	}
	c.send(fmt.Sprintf("OK %d", id))
}

func (s *server) handlePub(c *client, rest string) {
	stream, rest, ok1 := cut(rest)
	tsText, xmlText, ok2 := cut(rest)
	if !ok1 || !ok2 {
		c.send("ERR usage: PUB <stream> <ts> <xml>")
		return
	}
	ts, err := strconv.ParseInt(tsText, 10, 64)
	if err != nil {
		c.send("ERR bad timestamp: " + err.Error())
		return
	}
	s.mu.Lock()
	s.nextDoc++
	docID := s.nextDoc
	matches, err := s.eng.PublishXML(stream, xmlText, docID, ts)
	var deliveries []struct {
		to   *client
		line string
	}
	if err == nil {
		for _, m := range matches {
			owner := s.owners[m.Query]
			if owner == nil {
				continue
			}
			deliveries = append(deliveries, struct {
				to   *client
				line string
			}{owner, fmt.Sprintf("MATCH %d left=%d@%d right=%d@%d",
				m.Query, m.LeftDoc, m.LeftTS, m.RightDoc, m.RightTS)})
		}
	}
	s.mu.Unlock()
	if err != nil {
		c.send("ERR " + err.Error())
		return
	}
	for _, d := range deliveries {
		d.to.send(d.line)
	}
	c.send(fmt.Sprintf("OK %d", len(matches)))
}

func cut(s string) (first, rest string, ok bool) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, "", s != ""
	}
	return s[:i], strings.TrimSpace(s[i+1:]), true
}
