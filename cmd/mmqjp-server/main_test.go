package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	mmqjp "repro"
)

// startTestServer runs the broker on an ephemeral port and returns its
// address.
func startTestServer(t *testing.T) string {
	t.Helper()
	return startTestServerMode(t, false)
}

// startTestServerMode runs the broker in synchronous or -async mode.
func startTestServerMode(t *testing.T, async bool) string {
	t.Helper()
	eng := mmqjp.New(mmqjp.Options{Processor: mmqjp.ProcessorViewMat, Parallelism: 4, PipelineDepth: 4})
	s := &server{
		eng:    eng,
		async:  async,
		owners: map[mmqjp.QueryID]*client{},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); eng.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(s.newClient(conn))
		}
	}()
	return ln.Addr().String()
}

type testConn struct {
	conn net.Conn
	rd   *bufio.Reader
}

func dialTest(t *testing.T, addr string) *testConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testConn{conn: conn, rd: bufio.NewReader(conn)}
}

func (c *testConn) sendLine(t *testing.T, line string) {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
}

func (c *testConn) readLine(t *testing.T) string {
	t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := c.rd.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func TestServerSubPubMatch(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	c.sendLine(t, "SUB S//a->x JOIN{x=y, 100} S//b->y")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("SUB -> %q", got)
	}
	c.sendLine(t, "PUB S 1 <a>v</a>")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("first PUB -> %q", got)
	}
	c.sendLine(t, "PUB S 2 <b>v</b>")
	// Expect the MATCH push and the PUB ack, in either order.
	got1, got2 := c.readLine(t), c.readLine(t)
	lines := got1 + "\n" + got2
	if !strings.Contains(lines, "MATCH 0 left=1@1 right=2@2") {
		t.Errorf("missing match push: %q %q", got1, got2)
	}
	if !strings.Contains(lines, "OK 1") {
		t.Errorf("missing pub ack: %q %q", got1, got2)
	}
}

// TestServerPubBatch publishes a PUBB batch and expects the per-document
// match pushes followed by the single batch ack.
func TestServerPubBatch(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	c.sendLine(t, "SUB S//a->x FOLLOWED BY{x=y, 100} S//b->y")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("SUB -> %q", got)
	}
	c.sendLine(t, "PUBB S 3")
	c.sendLine(t, "1 <a>k</a>")
	c.sendLine(t, "2 <b>k</b>")
	c.sendLine(t, "3 <b>k</b>")
	matches, acked := 0, false
	for i := 0; i < 3; i++ {
		switch got := c.readLine(t); {
		case strings.HasPrefix(got, "MATCH 0 left=1@1"):
			matches++
		case got == "OK 2":
			acked = true
		default:
			t.Fatalf("unexpected line %q", got)
		}
	}
	if matches != 2 || !acked {
		t.Errorf("got %d matches, acked=%v, want 2 matches and OK 2", matches, acked)
	}
}

// TestServerPubBatchErrors checks that a malformed batch is rejected whole
// and leaves the connection line-synchronized and the engine state untouched.
func TestServerPubBatchErrors(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	c.sendLine(t, "SUB S//a->x FOLLOWED BY{x=y, 100} S//b->y")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("SUB -> %q", got)
	}
	c.sendLine(t, "PUBB S")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("missing count -> %q", got)
	}
	c.sendLine(t, "PUBB S notanumber")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("bad count -> %q", got)
	}
	// An absurd count is rejected up front instead of sizing an
	// allocation from the header.
	c.sendLine(t, "PUBB S 9000000000")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("oversized count -> %q", got)
	}
	// One bad timestamp rejects the batch; the good <a> line must not have
	// entered the join state.
	c.sendLine(t, "PUBB S 2")
	c.sendLine(t, "1 <a>k</a>")
	c.sendLine(t, "notanumber <b>k</b>")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("bad batch line -> %q", got)
	}
	// A malformed XML document is caught by the parser and also rejects
	// the batch whole.
	c.sendLine(t, "PUBB S 2")
	c.sendLine(t, "1 <a>k</a>")
	c.sendLine(t, "2 <unclosed>")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("bad batch xml -> %q", got)
	}
	// Still line-synchronized, and the rejected <a> documents are absent:
	// a following <b> has nothing to join with.
	c.sendLine(t, "PUB S 5 <b>k</b>")
	if got := c.readLine(t); got != "OK 0" {
		t.Errorf("post-batch PUB -> %q (rejected batch leaked state?)", got)
	}
}

// TestServerNegativeTimestampRejected pins the regression where PUB/PUBB
// accepted "-5" as a timestamp (bare strconv.ParseInt): a negative ts would
// sort before every in-window document and invert eviction order. Both paths
// must answer ERR EPROTO and admit nothing.
func TestServerNegativeTimestampRejected(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	c.sendLine(t, "SUB S//a->x JOIN{x=y, 100} S//b->y")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("SUB -> %q", got)
	}
	c.sendLine(t, "PUB S -5 <a>k</a>")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR EPROTO") {
		t.Errorf("negative PUB ts -> %q, want ERR EPROTO", got)
	}
	// Batch path: one negative line rejects the batch whole.
	c.sendLine(t, "PUBB S 2")
	c.sendLine(t, "1 <a>k</a>")
	c.sendLine(t, "-1 <a>k</a>")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR EPROTO") {
		t.Errorf("negative PUBB ts -> %q, want ERR EPROTO", got)
	}
	// Still line-synchronized, and neither rejected <a> entered the join
	// state: a following <b> has nothing to join with.
	c.sendLine(t, "PUB S 3 <b>k</b>")
	if got := c.readLine(t); got != "OK 0" {
		t.Errorf("post-rejection PUB -> %q (rejected document leaked state?)", got)
	}
}

func TestServerErrors(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	c.sendLine(t, "SUB not[valid")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("bad SUB -> %q", got)
	}
	c.sendLine(t, "PUB S notanumber <a/>")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("bad ts -> %q", got)
	}
	c.sendLine(t, "PUB S 1 <unclosed>")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("bad xml -> %q", got)
	}
	c.sendLine(t, "NOSUCH verb")
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Errorf("bad verb -> %q", got)
	}
	c.sendLine(t, "STATS")
	if got := c.readLine(t); !strings.HasPrefix(got, "OK ") {
		t.Errorf("STATS -> %q", got)
	}
}

// TestServerLineTooLong is the satellite bugfix check: a request line over
// the 1 MB bound is answered with an ERR instead of silently dropping the
// connection, and the connection stays line-synchronized and usable.
func TestServerLineTooLong(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	c.sendLine(t, "SUB S//a->x FOLLOWED BY{x=y, 100} S//b->y")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("SUB -> %q", got)
	}
	huge := "PUB S 1 <a>" + strings.Repeat("v", maxLineBytes) + "</a>"
	c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintln(c.conn, huge); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := c.rd.ReadString('\n')
	if err != nil {
		t.Fatalf("connection dropped after over-long line: %v", err)
	}
	if got := strings.TrimSpace(line); !strings.HasPrefix(got, "ERR") || !strings.Contains(got, "exceeds") {
		t.Fatalf("over-long line -> %q, want ERR ... exceeds ...", got)
	}
	// The connection is still line-synchronized: a normal publish works and
	// nothing from the rejected line leaked into the join state.
	c.sendLine(t, "PUB S 2 <a>k</a>")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("PUB after over-long line -> %q", got)
	}
	c.sendLine(t, "PUB S 3 <b>k</b>")
	got1, got2 := c.readLine(t), c.readLine(t)
	if !strings.Contains(got1+"\n"+got2, "OK 1") {
		t.Errorf("join across the over-long line lost: %q %q", got1, got2)
	}

	// An over-long document line inside a PUBB batch rejects the batch but
	// keeps the connection synchronized too.
	c2 := dialTest(t, addr)
	c2.sendLine(t, "PUBB S 2")
	c2.sendLine(t, "1 <a>k</a>")
	c2.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintln(c2.conn, "2 <a>"+strings.Repeat("v", maxLineBytes)+"</a>"); err != nil {
		t.Fatal(err)
	}
	c2.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err = c2.rd.ReadString('\n')
	if err != nil {
		t.Fatalf("connection dropped after over-long batch line: %v", err)
	}
	if got := strings.TrimSpace(line); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("over-long batch line -> %q, want ERR", got)
	}
	c2.sendLine(t, "STATS")
	if got := c2.readLine(t); !strings.HasPrefix(got, "OK ") {
		t.Errorf("STATS after rejected batch -> %q", got)
	}
}

// TestServerAsyncPub drives the -async mode: PUB replies arrive in request
// order with the match counts of the fully processed documents, pipelined
// PUBs on one connection are all acknowledged, and error replies keep their
// position in the order.
func TestServerAsyncPub(t *testing.T) {
	addr := startTestServerMode(t, true)
	c := dialTest(t, addr)

	c.sendLine(t, "SUB S//a->x FOLLOWED BY{x=y, 1000} S//b->y")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("SUB -> %q", got)
	}
	// Pipelined publishes: send everything before reading any reply. The
	// replier acknowledges in admission order, delivering each MATCH push
	// before the corresponding OK.
	c.sendLine(t, "PUB S 1 <a>k</a>")
	c.sendLine(t, "PUB S 2 <unclosed>")
	c.sendLine(t, "PUB S 3 <b>k</b>")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("first async PUB -> %q", got)
	}
	if got := c.readLine(t); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad-xml async PUB -> %q, want ERR in request order", got)
	}
	if got := c.readLine(t); !strings.HasPrefix(got, "MATCH 0 left=1@1") {
		t.Fatalf("missing MATCH push before the ack: %q", got)
	}
	if got := c.readLine(t); got != "OK 1" {
		t.Fatalf("matching async PUB -> %q", got)
	}
	// UNSUB still barriers correctly against the pipeline.
	c.sendLine(t, "UNSUB 0")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("UNSUB -> %q", got)
	}
	c.sendLine(t, "PUB S 4 <b>k</b>")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("PUB after UNSUB -> %q", got)
	}
}

// TestServerAsyncPubThenBatch checks per-connection document order across
// the two ingest paths in async mode: a PUBB must not enter the join state
// ahead of the connection's earlier async PUB (the server drains the
// pipeline before the synchronous batch), so the FOLLOWED BY join across
// the boundary always fires.
func TestServerAsyncPubThenBatch(t *testing.T) {
	addr := startTestServerMode(t, true)
	c := dialTest(t, addr)

	c.sendLine(t, "SUB S//a->x FOLLOWED BY{x=y, 100} S//b->y")
	if got := c.readLine(t); got != "OK 0" {
		t.Fatalf("SUB -> %q", got)
	}
	c.sendLine(t, "PUB S 1 <a>k</a>")
	c.sendLine(t, "PUBB S 1")
	c.sendLine(t, "2 <b>k</b>")
	var acks []string
	matched := false
	for len(acks) < 2 {
		switch got := c.readLine(t); {
		case strings.HasPrefix(got, "MATCH 0 left=1@1"):
			matched = true
		case strings.HasPrefix(got, "OK "):
			acks = append(acks, got)
		default:
			t.Fatalf("unexpected line %q", got)
		}
	}
	if !matched || acks[0] != "OK 0" || acks[1] != "OK 1" {
		t.Fatalf("batch overtook the async publish: acks=%q matched=%v (want OK 0, OK 1, with a MATCH)", acks, matched)
	}
}

// TestServerAsyncQuitFlushesReplies checks that a QUIT (or disconnect)
// right behind a burst of async publishes does not lose their replies: the
// server drains the replier before closing the connection.
func TestServerAsyncQuitFlushesReplies(t *testing.T) {
	addr := startTestServerMode(t, true)
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "SUB S//a->x JOIN{x=y, 100} S//b->y\nPUB S 1 <a>v</a>\nPUB S 2 <b>v</b>\nQUIT\n")
	var lines []string
	rd := bufio.NewReader(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		line, err := rd.ReadString('\n')
		if err != nil {
			break // connection closed by the server after the flush
		}
		lines = append(lines, strings.TrimSpace(line))
	}
	want := []string{"OK 0", "OK 0", "MATCH 0 left=1@1 right=2@2", "OK 1"}
	if len(lines) != len(want) {
		t.Fatalf("QUIT lost replies: got %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("reply %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestServerAsyncConcurrentClients hammers the async server from many
// connections at once (the CI race job runs this under -race): every PUB
// must be acknowledged in per-connection request order and the private
// streams must keep matching.
func TestServerAsyncConcurrentClients(t *testing.T) {
	addr := startTestServerMode(t, true)

	const clients = 5
	const pubs = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			rd := bufio.NewReader(conn)
			readLine := func() (string, error) {
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				line, err := rd.ReadString('\n')
				return strings.TrimSpace(line), err
			}
			stream := fmt.Sprintf("S%d", i)
			fmt.Fprintf(conn, "SUB %s//a->x JOIN{x=y, 1000000} %s//b->y\n", stream, stream)
			if resp, err := readLine(); err != nil || !strings.HasPrefix(resp, "OK ") {
				errs <- fmt.Errorf("client %d: SUB -> %q, %v", i, resp, err)
				return
			}
			// Fire every publish before reading a single reply, then count
			// acks and matches.
			for p := 0; p < pubs; p++ {
				xml := "<a>k</a>"
				if p%2 == 1 {
					xml = "<b>k</b>"
				}
				fmt.Fprintf(conn, "PUB %s %d %s\n", stream, p+1, xml)
			}
			acks, matched := 0, 0
			for acks < pubs {
				resp, err := readLine()
				if err != nil {
					errs <- fmt.Errorf("client %d: after %d acks: %v", i, acks, err)
					return
				}
				switch {
				case strings.HasPrefix(resp, "MATCH "):
					matched++
				case strings.HasPrefix(resp, "OK "):
					acks++
				default:
					errs <- fmt.Errorf("client %d: unexpected reply %q", i, resp)
					return
				}
			}
			if matched == 0 {
				errs <- fmt.Errorf("client %d: no matches delivered", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerMatchesRoutedToOwner(t *testing.T) {
	addr := startTestServer(t)
	sub := dialTest(t, addr)
	pub := dialTest(t, addr)

	sub.sendLine(t, "SUB S//a->x FOLLOWED BY{x=y, 100} S//b->y")
	if got := sub.readLine(t); got != "OK 0" {
		t.Fatalf("SUB -> %q", got)
	}
	pub.sendLine(t, "PUB S 1 <a>k</a>")
	if got := pub.readLine(t); got != "OK 0" {
		t.Fatalf("PUB -> %q", got)
	}
	pub.sendLine(t, "PUB S 5 <b>k</b>")
	if got := pub.readLine(t); got != "OK 1" {
		t.Fatalf("PUB -> %q", got)
	}
	// The subscriber connection receives the push.
	if got := sub.readLine(t); !strings.HasPrefix(got, "MATCH 0") {
		t.Errorf("subscriber got %q", got)
	}
}

// TestServerConcurrentClients drives SUB and PUB from many connections at
// once; the engine's internal synchronization (not a server-side lock
// around every call) must keep the shared state consistent. The CI race
// job runs this under -race.
func TestServerConcurrentClients(t *testing.T) {
	addr := startTestServer(t)

	const clients = 6
	const pubs = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			rd := bufio.NewReader(conn)
			send := func(line string) (string, error) {
				if _, err := fmt.Fprintln(conn, line); err != nil {
					return "", err
				}
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				resp, err := rd.ReadString('\n')
				return strings.TrimSpace(resp), err
			}
			// Each client registers its own query on a private
			// stream, so its matches are delivered only to it and
			// the response stream stays in lockstep.
			stream := fmt.Sprintf("S%d", i)
			resp, err := send(fmt.Sprintf("SUB %s//a->x JOIN{x=y, 1000000} %s//b->y", stream, stream))
			if err != nil || !strings.HasPrefix(resp, "OK ") {
				errs <- fmt.Errorf("client %d: SUB -> %q, %v", i, resp, err)
				return
			}
			matched := 0
			for p := 0; p < pubs; p++ {
				xml := "<a>k</a>"
				if p%2 == 1 {
					xml = "<b>k</b>"
				}
				resp, err := send(fmt.Sprintf("PUB %s %d %s", stream, p+1, xml))
				if err != nil {
					errs <- fmt.Errorf("client %d: PUB -> %v", i, err)
					return
				}
				// Drain MATCH pushes until the PUB ack arrives.
				for strings.HasPrefix(resp, "MATCH ") {
					matched++
					conn.SetReadDeadline(time.Now().Add(5 * time.Second))
					line, err := rd.ReadString('\n')
					if err != nil {
						errs <- fmt.Errorf("client %d: drain -> %v", i, err)
						return
					}
					resp = strings.TrimSpace(line)
				}
				if !strings.HasPrefix(resp, "OK ") && !strings.HasPrefix(resp, "ERR") {
					errs <- fmt.Errorf("client %d: PUB -> %q", i, resp)
					return
				}
			}
			if matched == 0 {
				errs <- fmt.Errorf("client %d: no matches delivered", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerUnsub(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)
	c.sendLine(t, "SUB S//a->x JOIN{x=y, 100} S//b->y")
	resp := c.readLine(t)
	if !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("SUB reply %q", resp)
	}
	qid := strings.TrimPrefix(resp, "OK ")

	// Another connection may not remove someone else's subscription.
	other := dialTest(t, addr)
	other.sendLine(t, "UNSUB "+qid)
	if resp := other.readLine(t); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("foreign UNSUB reply %q, want ERR", resp)
	}

	// A match still arrives while subscribed.
	c.sendLine(t, "PUB S 1 <a>v</a>")
	if resp := c.readLine(t); resp != "OK 0" {
		t.Fatalf("PUB reply %q", resp)
	}
	c.sendLine(t, "PUB S 2 <b>v</b>")
	first, second := c.readLine(t), c.readLine(t)
	if !strings.HasPrefix(first, "MATCH ") && !strings.HasPrefix(second, "MATCH ") {
		t.Fatalf("no MATCH delivered before unsubscribe: %q / %q", first, second)
	}

	// Unsubscribe by the owner succeeds; further publishes match nothing.
	c.sendLine(t, "UNSUB "+qid)
	if resp := c.readLine(t); resp != "OK "+qid {
		t.Fatalf("UNSUB reply %q", resp)
	}
	c.sendLine(t, "PUB S 3 <a>v</a>")
	if resp := c.readLine(t); resp != "OK 0" {
		t.Fatalf("PUB after UNSUB reply %q", resp)
	}
	c.sendLine(t, "PUB S 4 <b>v</b>")
	if resp := c.readLine(t); resp != "OK 0" {
		t.Fatalf("publish matched an unsubscribed query: %q", resp)
	}

	// Double unsubscribe and malformed ids are rejected.
	c.sendLine(t, "UNSUB "+qid)
	if resp := c.readLine(t); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("double UNSUB reply %q, want ERR", resp)
	}
	c.sendLine(t, "UNSUB notanumber")
	if resp := c.readLine(t); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("malformed UNSUB reply %q, want ERR", resp)
	}
	c.sendLine(t, "UNSUB 4242")
	if resp := c.readLine(t); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("unknown-id UNSUB reply %q, want ERR", resp)
	}
}

func TestServerDisconnectUnsubscribes(t *testing.T) {
	addr := startTestServer(t)
	a := dialTest(t, addr)
	a.sendLine(t, "SUB S//a->x JOIN{x=y, 100} S//b->y")
	if resp := a.readLine(t); !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("SUB reply %q", resp)
	}
	a.conn.Close() // drop the connection without QUIT

	// The server unsubscribes the dead connection's queries; poll STATS
	// until the cleanup (asynchronous to the close) lands.
	b := dialTest(t, addr)
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.sendLine(t, "STATS")
		resp := b.readLine(t)
		if strings.Contains(resp, " 0 queries") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnected client's query never unsubscribed: %q", resp)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
