package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	mmqjp "repro"
	"repro/internal/obs"
)

// Observability sidecar: -debug-addr starts a second, HTTP listener — kept
// off the line-protocol port so operators can firewall it separately —
// serving
//
//	/metrics       Prometheus text exposition of the metric set below
//	/healthz       pipeline liveness: a barrier round-trip through the
//	               continuous ingest pipeline under a deadline; 200 while
//	               the pipeline consumes, 503 once it is stuck
//	/debug/pprof/  the standard Go profiling endpoints
//
// Metric set (all prefixed mmqjp_):
//
//	documents_total, matches_total        engine cumulative counters
//	queries, templates                    live-set gauges
//	stage1_seconds, stage2_seconds,       per-document hot-path wall-time
//	merge_seconds, gc_seconds             histograms (Options.OnDocument)
//	ingest_queue_depth                    admitted-but-unconsumed gauge
//	ingest_backpressure_stalls_total      admissions that blocked on a
//	                                      full queue
//	plan_witness_total, plan_rt_total,    adaptive-planner choice counters
//	plan_explorations_total
//	splits_total, split_chunks_total,     intra-template split/steal
//	steals_total                          activity (core split.go)
//	stream_publish_total{stream},         per-stream publish and match
//	stream_matches_total{stream}          counters (server-side)
//	snapshots_total, snapshot_errors_total, durable-mode snapshot activity
//	snapshot_seconds                      and duration histogram
//	partition_documents_total{partition}, with -partitions N: per-partition
//	partition_matches_total{partition},   engine counters and live-set
//	partition_queries{partition},         gauges (aggregate metrics above
//	partition_templates{partition}        keep their unpartitioned names)

// healthzTimeout bounds the /healthz barrier round-trip. A healthy pipeline
// answers in microseconds; the deadline only has to be comfortably above a
// worst-case Stage-2 drain.
const healthzTimeout = 5 * time.Second

// serverMetrics is the server's metric set. A nil *serverMetrics is valid
// and records nothing, so the wire protocol works without the sidecar.
type serverMetrics struct {
	reg *obs.Registry

	stage1, stage2, merge, gc *obs.Histogram
	streamPub, streamMatches  *obs.CounterVec

	snapshots, snapshotErrors *obs.Counter
	snapshotSeconds           *obs.Histogram
}

// newServerMetrics builds the registry for eng. Engine-cumulative values
// are read at scrape time; per-document histograms are fed by the
// Options.OnDocument hook (see onDocument). With partitions > 1 the
// per-partition families below break the aggregates down by router
// partition; the aggregate metric names stay unchanged either way, so
// dashboards keep working when -partitions is toggled.
func newServerMetrics(eng func() *mmqjp.Engine, partitions int) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r}
	r.CounterFunc("mmqjp_documents_total", "Documents admitted into the join state.",
		func() float64 { return float64(eng().Stats().Documents) })
	r.CounterFunc("mmqjp_matches_total", "Matches produced across all queries.",
		func() float64 { return float64(eng().Stats().Matches) })
	r.GaugeFunc("mmqjp_queries", "Live subscriptions.",
		func() float64 { return float64(eng().NumQueries()) })
	r.GaugeFunc("mmqjp_templates", "Live canonical query templates.",
		func() float64 { return float64(eng().NumTemplates()) })
	m.stage1 = r.Histogram("mmqjp_stage1_seconds",
		"Per-document Stage-1 wall time (shared-NFA match, witness construction).", obs.DurationBuckets)
	m.stage2 = r.Histogram("mmqjp_stage2_seconds",
		"Per-document Stage-2 wall time (template-sharded join evaluation).", obs.DurationBuckets)
	m.merge = r.Histogram("mmqjp_merge_seconds",
		"Per-document state-merge wall time (Algorithm 2).", obs.DurationBuckets)
	m.gc = r.Histogram("mmqjp_gc_seconds",
		"Per-document window-GC wall time.", obs.DurationBuckets)
	r.GaugeFunc("mmqjp_ingest_queue_depth", "Documents admitted into the continuous ingest pipeline but not yet consumed.",
		func() float64 { return float64(eng().IngestQueueDepth()) })
	r.CounterFunc("mmqjp_ingest_backpressure_stalls_total", "Pipeline admissions that blocked on a full admission queue.",
		func() float64 { return float64(eng().IngestStalls()) })
	r.CounterFunc("mmqjp_plan_witness_total", "Stage-2 plan decisions that chose the witness-driven plan.",
		func() float64 { return float64(eng().Stats().WitnessPlans) })
	r.CounterFunc("mmqjp_plan_rt_total", "Stage-2 plan decisions that chose the RT-driven plan.",
		func() float64 { return float64(eng().Stats().RTPlans) })
	r.CounterFunc("mmqjp_plan_explorations_total", "Calibration runs of the non-chosen Stage-2 plan.",
		func() float64 { return float64(eng().Stats().Explorations) })
	r.CounterFunc("mmqjp_splits_total", "Template evaluations partitioned into stealable chunks.",
		func() float64 { return float64(eng().Stats().Splits) })
	r.CounterFunc("mmqjp_split_chunks_total", "Chunks produced by split template evaluations.",
		func() float64 { return float64(eng().Stats().SplitChunks) })
	r.CounterFunc("mmqjp_steals_total", "Split chunks executed by a worker other than the owning shard.",
		func() float64 { return float64(eng().Stats().Steals) })
	m.streamPub = r.CounterVec("mmqjp_stream_publish_total", "Documents published, by stream.", "stream")
	m.streamMatches = r.CounterVec("mmqjp_stream_matches_total", "Matches triggered by publishes, by stream.", "stream")
	m.snapshots = r.Counter("mmqjp_snapshots_total", "Snapshots saved to the durable store.")
	m.snapshotErrors = r.Counter("mmqjp_snapshot_errors_total", "Snapshot saves that failed.")
	m.snapshotSeconds = r.Histogram("mmqjp_snapshot_seconds", "Snapshot save duration.", obs.DurationBuckets)
	if partitions > 1 {
		partDocs := r.CounterFuncVec("mmqjp_partition_documents_total", "Documents consumed, by router partition.", "partition")
		partMatches := r.CounterFuncVec("mmqjp_partition_matches_total", "Matches produced, by router partition.", "partition")
		partQueries := r.GaugeFuncVec("mmqjp_partition_queries", "Live subscriptions, by router partition.", "partition")
		partTemplates := r.GaugeFuncVec("mmqjp_partition_templates", "Live canonical templates, by router partition.", "partition")
		partStat := func(i int, get func(mmqjp.EngineStats) float64) func() float64 {
			return func() float64 {
				ps := eng().PartitionStats()
				if i >= len(ps) {
					return 0
				}
				return get(ps[i])
			}
		}
		for i := 0; i < partitions; i++ {
			lv := fmt.Sprintf("%d", i)
			partDocs.With(lv, partStat(i, func(s mmqjp.EngineStats) float64 { return float64(s.Documents) }))
			partMatches.With(lv, partStat(i, func(s mmqjp.EngineStats) float64 { return float64(s.Matches) }))
			partQueries.With(lv, partStat(i, func(s mmqjp.EngineStats) float64 { return float64(s.Queries) }))
			partTemplates.With(lv, partStat(i, func(s mmqjp.EngineStats) float64 { return float64(s.Templates) }))
		}
	}
	return m
}

// onDocument is the Options.OnDocument hook: one histogram observation per
// hot-path phase per document.
func (m *serverMetrics) onDocument(t mmqjp.DocTimings) {
	if m == nil {
		return
	}
	m.stage1.Observe(t.Stage1.Seconds())
	m.stage2.Observe(t.Stage2.Seconds())
	m.merge.Observe(t.Merge.Seconds())
	m.gc.Observe(t.GC.Seconds())
}

// published records documents entering and matches leaving one publish call.
func (m *serverMetrics) published(stream string, docs, matches int) {
	if m == nil {
		return
	}
	m.streamPub.With(stream).Add(int64(docs))
	m.streamMatches.With(stream).Add(int64(matches))
}

// snapshotSaved records one snapshot attempt.
func (m *serverMetrics) snapshotSaved(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.snapshotErrors.Inc()
		return
	}
	m.snapshots.Inc()
	m.snapshotSeconds.Observe(d.Seconds())
}

// startDebugServer serves /metrics, /healthz and /debug/pprof on addr. It
// returns the bound listener address (addr may use port 0).
func (s *server) startDebugServer(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.m.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if err := s.eng.Ping(healthzTimeout); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("debug server: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}
