package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	mmqjp "repro"
)

// startDebugTestServer runs an -async broker with the observability sidecar
// attached (routed across partitions engines when partitions > 1) and
// returns both addresses.
func startDebugTestServer(t *testing.T, partitions int) (brokerAddr, debugAddr string) {
	t.Helper()
	s := &server{
		async:  true,
		owners: map[mmqjp.QueryID]*client{},
	}
	s.m = newServerMetrics(func() *mmqjp.Engine { return s.eng }, partitions)
	opts := mmqjp.Options{
		Processor: mmqjp.ProcessorViewMat, Parallelism: 2, PipelineDepth: 4,
		OnDocument: s.m.onDocument, Partitions: partitions,
	}
	if _, err := s.initEngine(opts); err != nil {
		t.Fatal(err)
	}
	brokerAddr = serveOn(t, s)
	debugAddr, err := s.startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return brokerAddr, debugAddr
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// lineRead reads one reply line under a deadline.
func lineRead(conn net.Conn, rd *bufio.Reader) (string, error) {
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := rd.ReadString('\n')
	return strings.TrimSpace(line), err
}

// TestServerMetricsHealthzUnderLoad scrapes /metrics and /healthz
// concurrently with -async publish load and subscribe/unsubscribe churn —
// the CI race job runs this under -race, so any unsynchronized access
// between the hot path, the scrape-time stat readers and the churn surfaces
// here.
func TestServerMetricsHealthzUnderLoad(t *testing.T) {
	brokerAddr, debugAddr := startDebugTestServer(t, 0)

	const publishers = 3
	const pubs = 30
	var wg sync.WaitGroup
	errs := make(chan error, publishers+2)
	stop := make(chan struct{})

	// Publishers: pipelined async PUB bursts on private streams.
	for i := 0; i < publishers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.DialTimeout("tcp", brokerAddr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			rd := bufio.NewReader(conn)
			stream := fmt.Sprintf("S%d", i)
			fmt.Fprintf(conn, "SUB %s//a->x JOIN{x=y, 1000000} %s//b->y\n", stream, stream)
			if resp, err := lineRead(conn, rd); err != nil || !strings.HasPrefix(resp, "OK ") {
				errs <- fmt.Errorf("publisher %d: SUB -> %q, %v", i, resp, err)
				return
			}
			for p := 0; p < pubs; p++ {
				xml := "<a>k</a>"
				if p%2 == 1 {
					xml = "<b>k</b>"
				}
				fmt.Fprintf(conn, "PUB %s %d %s\n", stream, p+1, xml)
			}
			acks := 0
			for acks < pubs {
				resp, err := lineRead(conn, rd)
				if err != nil {
					errs <- fmt.Errorf("publisher %d: after %d acks: %v", i, acks, err)
					return
				}
				if strings.HasPrefix(resp, "OK ") {
					acks++
				}
			}
		}(i)
	}

	// Churner: subscribe and immediately unsubscribe until the scraper is
	// done, so scrape-time engine reads race live template adds/removes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.DialTimeout("tcp", brokerAddr, 2*time.Second)
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		rd := bufio.NewReader(conn)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fmt.Fprintf(conn, "SUB C//a->x JOIN{x=y, 100} C//b->y\n")
			resp, err := lineRead(conn, rd)
			if err != nil || !strings.HasPrefix(resp, "OK ") {
				errs <- fmt.Errorf("churn %d: SUB -> %q, %v", i, resp, err)
				return
			}
			fmt.Fprintf(conn, "UNSUB %s\n", strings.TrimPrefix(resp, "OK "))
			if resp, err = lineRead(conn, rd); err != nil || !strings.HasPrefix(resp, "OK ") {
				errs <- fmt.Errorf("churn %d: UNSUB -> %q, %v", i, resp, err)
				return
			}
		}
	}()

	// Scraper: hammer /metrics and /healthz while the load runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 20; i++ {
			if code, body := httpGet(t, "http://"+debugAddr+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
				errs <- fmt.Errorf("healthz scrape %d: %d %q", i, code, body)
				return
			}
			if code, _ := httpGet(t, "http://"+debugAddr+"/metrics"); code != http.StatusOK {
				errs <- fmt.Errorf("metrics scrape %d: status %d", i, code)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the load: the exposition is well-formed and reflects it.
	code, body := httpGet(t, "http://"+debugAddr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("final /metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE mmqjp_documents_total counter",
		"# TYPE mmqjp_stage1_seconds histogram",
		"mmqjp_stage1_seconds_bucket{le=\"+Inf\"}",
		"mmqjp_ingest_queue_depth",
		"mmqjp_plan_witness_total",
		"mmqjp_stream_publish_total{stream=\"S0\"} " + fmt.Sprint(pubs),
		"mmqjp_stream_matches_total{stream=\"S0\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("final /metrics missing %q", want)
		}
	}
	// The per-document histograms saw every published document.
	var stage1Count int
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "mmqjp_stage1_seconds_count ") {
			fmt.Sscanf(line, "mmqjp_stage1_seconds_count %d", &stage1Count)
		}
	}
	if stage1Count < publishers*pubs {
		t.Errorf("stage1 histogram count = %d, want >= %d", stage1Count, publishers*pubs)
	}
}

// TestServerPartitionMetrics runs the broker routed across 4 partitions and
// checks the per-partition metric families: every partition label is
// exposed, the per-partition documents equal the publish count (each
// partition consumes every document), and the partition query gauges sum to
// the live subscription count. Aggregate metric names must be unchanged.
func TestServerPartitionMetrics(t *testing.T) {
	const partitions = 4
	brokerAddr, debugAddr := startDebugTestServer(t, partitions)

	conn, err := net.DialTimeout("tcp", brokerAddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	subs := []string{
		"S//a->x JOIN{x=y, 1000000} S//b->y",
		"S//c->x JOIN{x=y, 1000000} S//d->y",
		"S//e->x JOIN{x=y, 1000000} S//f->y",
	}
	for _, q := range subs {
		fmt.Fprintf(conn, "SUB %s\n", q)
		if resp, err := lineRead(conn, rd); err != nil || !strings.HasPrefix(resp, "OK ") {
			t.Fatalf("SUB -> %q, %v", resp, err)
		}
	}
	const pubs = 10
	for p := 0; p < pubs; p++ {
		fmt.Fprintf(conn, "PUB S %d <a>k</a>\n", p+1)
	}
	for acks := 0; acks < pubs; {
		resp, err := lineRead(conn, rd)
		if err != nil {
			t.Fatalf("after %d acks: %v", acks, err)
		}
		if strings.HasPrefix(resp, "OK ") {
			acks++
		}
	}

	code, body := httpGet(t, "http://"+debugAddr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	queries := 0
	for i := 0; i < partitions; i++ {
		docsLine := fmt.Sprintf("mmqjp_partition_documents_total{partition=\"%d\"} %d", i, pubs)
		if !strings.Contains(body, docsLine+"\n") {
			t.Errorf("/metrics missing %q", docsLine)
		}
		var q int
		if _, err := fmt.Sscanf(partitionMetric(body, "mmqjp_partition_queries", i), "%d", &q); err != nil {
			t.Errorf("partition %d queries gauge unreadable: %v", i, err)
		}
		queries += q
	}
	if queries != len(subs) {
		t.Errorf("partition query gauges sum to %d, want %d", queries, len(subs))
	}
	if !strings.Contains(body, "\nmmqjp_documents_total "+fmt.Sprint(pubs)+"\n") {
		t.Errorf("aggregate mmqjp_documents_total missing or wrong:\n%s", body)
	}
}

// partitionMetric extracts the value text of one labeled partition sample.
func partitionMetric(body, name string, part int) string {
	prefix := fmt.Sprintf("%s{partition=\"%d\"} ", name, part)
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimPrefix(line, prefix)
		}
	}
	return ""
}

// TestServerHealthzDebugEndpoints checks the sidecar's other routes: a pprof
// index renders, and /healthz answers fast on an idle engine.
func TestServerHealthzDebugEndpoints(t *testing.T) {
	_, debugAddr := startDebugTestServer(t, 0)
	if code, body := httpGet(t, "http://"+debugAddr+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz -> %d %q", code, body)
	}
	if code, body := httpGet(t, "http://"+debugAddr+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ -> %d (goroutine link present: %v)", code, strings.Contains(body, "goroutine"))
	}
	if code, body := httpGet(t, "http://"+debugAddr+"/metrics"); code != http.StatusOK || !strings.Contains(body, "mmqjp_queries") {
		t.Errorf("/metrics -> %d (mmqjp_queries present: %v)", code, strings.Contains(body, "mmqjp_queries"))
	}
}
