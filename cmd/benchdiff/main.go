// Command benchdiff compares two mmqjp-bench JSON result files and fails
// when a throughput series regressed beyond a threshold — the comparison
// behind the CI bench-regression gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json -threshold 20
//
// Every column whose header marks a throughput series ("ev/s" or "docs/s";
// higher is better) or an allocation-count series ("allocs/op"; lower is
// better) is compared row by row, keyed on each row's first column (the
// sweep parameter). Columns additionally marked "(info)" are exempt: they
// carry no regression signal on the gate machine. With -normalize (the
// default) the current throughput values are first divided by the median
// current/baseline ratio across the throughput series: a uniform
// machine-speed difference between the machine that generated the baseline
// and the machine running the gate cancels out, and the gate flags series
// that regressed relative to the rest — which is what a localized perf
// regression looks like. Allocation counts are machine-independent and are
// always compared raw. Use -normalize=false for a same-machine absolute
// throughput comparison. Non-numeric, non-finite (NaN/Inf) and
// zero-baseline cells are reported as "(info)" and never gate.
//
// Series present in only one file — a new experiment or row not yet in the
// baseline, or a baseline entry the current run no longer produces — are
// purely informational: they are reported as skipped and never fail the
// gate, so adding an experiment does not require regenerating the baseline
// and retiring one does not leave a silently dead entry. Exit status is 1
// when any shared series regressed by more than -threshold percent, 0
// otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline results (mmqjp-bench -json output)")
		current   = flag.String("current", "BENCH_pr.json", "results under test (mmqjp-bench -json output)")
		threshold = flag.Float64("threshold", 20, "maximum allowed throughput regression, in percent")
		normalize = flag.Bool("normalize", true, "divide out the median current/baseline speed ratio before comparing")
	)
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	report, regressed := diff(base, cur, *threshold, *normalize)
	fmt.Print(report)
	if regressed {
		fmt.Printf("FAIL: a gated series regressed more than %.0f%% against %s\n", *threshold, *baseline)
		os.Exit(1)
	}
	fmt.Printf("OK: no series regressed more than %.0f%%\n", *threshold)
}

func load(path string) ([]bench.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []bench.Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// isThroughputCol reports whether a column header names a higher-is-better
// throughput series. Columns marked "(info)" opt out of the gate: they are
// throughput-shaped but carry no regression signal on the gate machine
// (e.g. the scale experiment's measured multi-worker series, which is
// scheduler noise on a host with fewer cores than workers).
func isThroughputCol(name string) bool {
	if strings.Contains(name, "(info)") {
		return false
	}
	return strings.Contains(name, "ev/s") || strings.Contains(name, "docs/s")
}

// isAllocsCol reports whether a column header names a lower-is-better
// allocation-count series (the allocs experiment). Allocation counts are
// machine-independent, so these cells are compared raw — never divided by
// the speed factor. "(info)" columns are exempt here too.
func isAllocsCol(name string) bool {
	if strings.Contains(name, "(info)") {
		return false
	}
	return strings.Contains(name, "allocs/op")
}

// series is one compared cell: a baseline and current value for the same
// experiment, row key, and column. allocs marks a lower-is-better
// allocation-count cell (excluded from speed normalization).
type series struct {
	label     string
	base, cur float64
	allocs    bool
}

// collect pairs up every shared throughput cell of base and cur, returning
// skip notes for the cells present on only one side.
func collect(base, cur []bench.Result) (cells []series, notes []string) {
	baseByID := map[string]bench.Result{}
	for _, r := range base {
		baseByID[r.ID] = r
	}
	curByID := map[string]bool{}
	for _, c := range cur {
		curByID[c.ID] = true
	}
	for _, b := range base {
		if !curByID[b.ID] {
			notes = append(notes, fmt.Sprintf("%s: baseline only, not in current — informational, skipped", b.ID))
		}
	}
	for _, c := range cur {
		b, ok := baseByID[c.ID]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: no baseline — informational, skipped", c.ID))
			continue
		}
		baseCol := map[string]int{}
		for i, name := range b.Columns {
			baseCol[name] = i
		}
		baseRow := map[string][]string{}
		for _, row := range b.Rows {
			if len(row) > 0 {
				baseRow[row[0]] = row
			}
		}
		curRow := map[string]bool{}
		for _, row := range c.Rows {
			if len(row) > 0 {
				curRow[row[0]] = true
			}
		}
		for _, row := range b.Rows {
			if len(row) > 0 && !curRow[row[0]] {
				notes = append(notes, fmt.Sprintf("%s[%s]: baseline only, not in current — informational, skipped", b.ID, row[0]))
			}
		}
		for _, row := range c.Rows {
			if len(row) == 0 {
				continue
			}
			brow, ok := baseRow[row[0]]
			if !ok {
				notes = append(notes, fmt.Sprintf("%s[%s]: no baseline row — skipped", c.ID, row[0]))
				continue
			}
			for j, name := range c.Columns {
				thr, alc := isThroughputCol(name), isAllocsCol(name)
				if (!thr && !alc) || j >= len(row) {
					continue
				}
				bj, ok := baseCol[name]
				if !ok || bj >= len(brow) {
					notes = append(notes, fmt.Sprintf("%s[%s] %s: no baseline column — skipped", c.ID, row[0], name))
					continue
				}
				label := fmt.Sprintf("%s[%s] %s", c.ID, row[0], name)
				bv, berr := strconv.ParseFloat(brow[bj], 64)
				cv, cerr := strconv.ParseFloat(row[j], 64)
				// Guard the division below: a non-numeric, non-finite
				// (ParseFloat accepts "NaN" and "Inf" without error) or
				// zero baseline cell would otherwise produce a NaN/Inf
				// delta that silently compares as "ok". Such cells are
				// informational, never a pass/fail signal.
				switch {
				case berr != nil || cerr != nil:
					notes = append(notes, fmt.Sprintf("%s: non-numeric cell — (info) skipped", label))
					continue
				case math.IsNaN(bv) || math.IsInf(bv, 0) || math.IsNaN(cv) || math.IsInf(cv, 0):
					notes = append(notes, fmt.Sprintf("%s: non-finite cell — (info) skipped", label))
					continue
				case bv <= 0 && thr:
					notes = append(notes, fmt.Sprintf("%s: zero baseline throughput — (info) skipped", label))
					continue
				case bv <= 0 && alc:
					// 0 allocs/op is a legitimate baseline (a fully pooled
					// stage); there is no percentage to compute against it.
					notes = append(notes, fmt.Sprintf("%s: zero-alloc baseline — (info) skipped", label))
					continue
				}
				cells = append(cells, series{label: label, base: bv, cur: cv, allocs: alc})
			}
		}
	}
	return cells, notes
}

// speedFactor is the median current/baseline ratio across the compared
// throughput cells — the uniform machine-speed difference to divide out.
// Allocation-count cells are machine-independent and excluded.
func speedFactor(cells []series) float64 {
	var ratios []float64
	for _, c := range cells {
		if !c.allocs {
			ratios = append(ratios, c.cur/c.base)
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 1 {
		return ratios[mid]
	}
	return (ratios[mid-1] + ratios[mid]) / 2
}

// diff renders a comparison of every shared throughput and allocs series and
// reports whether any regressed beyond thresholdPct. Throughput cells are
// higher-is-better and divided by the median speed ratio when normalize is
// set; allocs cells are lower-is-better and always compared raw.
func diff(base, cur []bench.Result, thresholdPct float64, normalize bool) (string, bool) {
	cells, notes := collect(base, cur)
	var sb strings.Builder
	for _, n := range notes {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	factor := 1.0
	if normalize {
		factor = speedFactor(cells)
		fmt.Fprintf(&sb, "normalizing by median speed ratio %.3f (%d series)\n", factor, len(cells))
	}
	regressed := false
	for _, c := range cells {
		var deltaPct float64
		verdict := "ok"
		if c.allocs {
			deltaPct = (c.cur - c.base) / c.base * 100
			if deltaPct > thresholdPct {
				verdict = "REGRESSION"
				regressed = true
			}
			fmt.Fprintf(&sb, "%s: %.1f -> %.1f (%+.1f%%) %s\n",
				c.label, c.base, c.cur, deltaPct, verdict)
			continue
		}
		deltaPct = (c.cur/factor - c.base) / c.base * 100
		if deltaPct < -thresholdPct {
			verdict = "REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&sb, "%s: %.3f -> %.3f (%+.1f%% normalized) %s\n",
			c.label, c.base, c.cur, deltaPct, verdict)
	}
	return sb.String(), regressed
}
