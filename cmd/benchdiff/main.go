// Command benchdiff compares two mmqjp-bench JSON result files and fails
// when a throughput series regressed beyond a threshold — the comparison
// behind the CI bench-regression gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_pr.json -threshold 20
//
// Every column whose header marks a throughput series ("ev/s" or "docs/s";
// higher is better) is compared row by row, keyed on each row's first
// column (the sweep parameter). Columns additionally marked "(info)" are
// exempt: they carry no regression signal on the gate machine. With -normalize (the default) the current
// values are first divided by the median current/baseline ratio across all
// compared series: a uniform machine-speed difference between the machine
// that generated the baseline and the machine running the gate cancels
// out, and the gate flags series that regressed relative to the rest —
// which is what a localized perf regression looks like. Use
// -normalize=false for a same-machine absolute comparison.
//
// Series present in only one file — a new experiment or row not yet in the
// baseline, or a baseline entry the current run no longer produces — are
// purely informational: they are reported as skipped and never fail the
// gate, so adding an experiment does not require regenerating the baseline
// and retiring one does not leave a silently dead entry. Exit status is 1
// when any shared series regressed by more than -threshold percent, 0
// otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline results (mmqjp-bench -json output)")
		current   = flag.String("current", "BENCH_pr.json", "results under test (mmqjp-bench -json output)")
		threshold = flag.Float64("threshold", 20, "maximum allowed throughput regression, in percent")
		normalize = flag.Bool("normalize", true, "divide out the median current/baseline speed ratio before comparing")
	)
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	report, regressed := diff(base, cur, *threshold, *normalize)
	fmt.Print(report)
	if regressed {
		fmt.Printf("FAIL: throughput regressed more than %.0f%% against %s\n", *threshold, *baseline)
		os.Exit(1)
	}
	fmt.Printf("OK: no series regressed more than %.0f%%\n", *threshold)
}

func load(path string) ([]bench.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []bench.Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// isThroughputCol reports whether a column header names a higher-is-better
// throughput series. Columns marked "(info)" opt out of the gate: they are
// throughput-shaped but carry no regression signal on the gate machine
// (e.g. the scale experiment's measured multi-worker series, which is
// scheduler noise on a host with fewer cores than workers).
func isThroughputCol(name string) bool {
	if strings.Contains(name, "(info)") {
		return false
	}
	return strings.Contains(name, "ev/s") || strings.Contains(name, "docs/s")
}

// series is one compared throughput cell: a baseline and current value for
// the same experiment, row key, and column.
type series struct {
	label     string
	base, cur float64
}

// collect pairs up every shared throughput cell of base and cur, returning
// skip notes for the cells present on only one side.
func collect(base, cur []bench.Result) (cells []series, notes []string) {
	baseByID := map[string]bench.Result{}
	for _, r := range base {
		baseByID[r.ID] = r
	}
	curByID := map[string]bool{}
	for _, c := range cur {
		curByID[c.ID] = true
	}
	for _, b := range base {
		if !curByID[b.ID] {
			notes = append(notes, fmt.Sprintf("%s: baseline only, not in current — informational, skipped", b.ID))
		}
	}
	for _, c := range cur {
		b, ok := baseByID[c.ID]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: no baseline — informational, skipped", c.ID))
			continue
		}
		baseCol := map[string]int{}
		for i, name := range b.Columns {
			baseCol[name] = i
		}
		baseRow := map[string][]string{}
		for _, row := range b.Rows {
			if len(row) > 0 {
				baseRow[row[0]] = row
			}
		}
		curRow := map[string]bool{}
		for _, row := range c.Rows {
			if len(row) > 0 {
				curRow[row[0]] = true
			}
		}
		for _, row := range b.Rows {
			if len(row) > 0 && !curRow[row[0]] {
				notes = append(notes, fmt.Sprintf("%s[%s]: baseline only, not in current — informational, skipped", b.ID, row[0]))
			}
		}
		for _, row := range c.Rows {
			if len(row) == 0 {
				continue
			}
			brow, ok := baseRow[row[0]]
			if !ok {
				notes = append(notes, fmt.Sprintf("%s[%s]: no baseline row — skipped", c.ID, row[0]))
				continue
			}
			for j, name := range c.Columns {
				if !isThroughputCol(name) || j >= len(row) {
					continue
				}
				bj, ok := baseCol[name]
				if !ok || bj >= len(brow) {
					notes = append(notes, fmt.Sprintf("%s[%s] %s: no baseline column — skipped", c.ID, row[0], name))
					continue
				}
				bv, berr := strconv.ParseFloat(brow[bj], 64)
				cv, cerr := strconv.ParseFloat(row[j], 64)
				if berr != nil || cerr != nil || bv <= 0 {
					continue
				}
				cells = append(cells, series{
					label: fmt.Sprintf("%s[%s] %s", c.ID, row[0], name),
					base:  bv, cur: cv,
				})
			}
		}
	}
	return cells, notes
}

// speedFactor is the median current/baseline ratio across all compared
// cells — the uniform machine-speed difference to divide out.
func speedFactor(cells []series) float64 {
	if len(cells) == 0 {
		return 1
	}
	ratios := make([]float64, len(cells))
	for i, c := range cells {
		ratios[i] = c.cur / c.base
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 1 {
		return ratios[mid]
	}
	return (ratios[mid-1] + ratios[mid]) / 2
}

// diff renders a comparison of every shared throughput series and reports
// whether any regressed beyond thresholdPct (after dividing out the median
// speed ratio when normalize is set).
func diff(base, cur []bench.Result, thresholdPct float64, normalize bool) (string, bool) {
	cells, notes := collect(base, cur)
	var sb strings.Builder
	for _, n := range notes {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	factor := 1.0
	if normalize {
		factor = speedFactor(cells)
		fmt.Fprintf(&sb, "normalizing by median speed ratio %.3f (%d series)\n", factor, len(cells))
	}
	regressed := false
	for _, c := range cells {
		deltaPct := (c.cur/factor - c.base) / c.base * 100
		verdict := "ok"
		if deltaPct < -thresholdPct {
			verdict = "REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&sb, "%s: %.3f -> %.3f (%+.1f%% normalized) %s\n",
			c.label, c.base, c.cur, deltaPct, verdict)
	}
	return sb.String(), regressed
}
