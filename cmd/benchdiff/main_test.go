package main

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func mkResult(id string, rows ...[]string) bench.Result {
	return bench.Result{
		ID:      id,
		Columns: []string{"depth", "MMQJP (docs/s)", "templates"},
		Rows:    rows,
	}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	base := []bench.Result{mkResult("pipeline", []string{"1", "1000.000", "5"})}
	cur := []bench.Result{mkResult("pipeline", []string{"1", "850.000", "5"})}
	report, regressed := diff(base, cur, 20, false)
	if regressed {
		t.Fatalf("-15%% flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "ok") {
		t.Errorf("report missing ok verdict:\n%s", report)
	}
}

func TestDiffFailsBeyondThreshold(t *testing.T) {
	base := []bench.Result{mkResult("pipeline", []string{"1", "1000.000", "5"})}
	cur := []bench.Result{mkResult("pipeline", []string{"1", "700.000", "5"})}
	report, regressed := diff(base, cur, 20, false)
	if !regressed {
		t.Fatalf("-30%% not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report missing REGRESSION verdict:\n%s", report)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	base := []bench.Result{mkResult("pipeline", []string{"1", "1000.000", "5"})}
	cur := []bench.Result{mkResult("pipeline", []string{"1", "5000.000", "5"})}
	if report, regressed := diff(base, cur, 20, false); regressed {
		t.Fatalf("improvement flagged as regression:\n%s", report)
	}
}

func TestDiffSkipsUnknownExperimentAndRow(t *testing.T) {
	base := []bench.Result{mkResult("pipeline", []string{"1", "1000.000", "5"})}
	cur := []bench.Result{
		mkResult("pipeline", []string{"1", "990.000", "5"}, []string{"2", "1500.000", "5"}),
		mkResult("brandnew", []string{"1", "1.000", "5"}),
	}
	report, regressed := diff(base, cur, 20, false)
	if regressed {
		t.Fatalf("skips caused failure:\n%s", report)
	}
	if !strings.Contains(report, "brandnew: no baseline — informational, skipped") {
		t.Errorf("missing experiment skip note:\n%s", report)
	}
	if !strings.Contains(report, "pipeline[2]: no baseline row — skipped") {
		t.Errorf("missing row skip note:\n%s", report)
	}
}

func TestDiffOneSidedSeriesInformational(t *testing.T) {
	// A series present in only one file — whichever side — must be
	// reported but can never trip the gate, even when its numbers are
	// wildly different from everything else.
	base := []bench.Result{
		mkResult("pipeline", []string{"1", "1000.000", "5"}, []string{"9", "9999.000", "5"}),
		mkResult("retired", []string{"1", "9999.000", "5"}),
	}
	cur := []bench.Result{
		mkResult("pipeline", []string{"1", "990.000", "5"}),
		mkResult("churn", []string{"0", "1.000", "5"}),
	}
	report, regressed := diff(base, cur, 20, true)
	if regressed {
		t.Fatalf("one-sided series tripped the gate:\n%s", report)
	}
	if !strings.Contains(report, "churn: no baseline — informational, skipped") {
		t.Errorf("missing current-only note:\n%s", report)
	}
	if !strings.Contains(report, "retired: baseline only, not in current — informational, skipped") {
		t.Errorf("missing baseline-only note:\n%s", report)
	}
	if !strings.Contains(report, "pipeline[9]: baseline only, not in current — informational, skipped") {
		t.Errorf("missing baseline-only row note:\n%s", report)
	}
}

func TestDiffIgnoresNonThroughputColumns(t *testing.T) {
	// The templates column shrinking is not a throughput regression.
	base := []bench.Result{mkResult("pipeline", []string{"1", "1000.000", "100"})}
	cur := []bench.Result{mkResult("pipeline", []string{"1", "1000.000", "5"})}
	if report, regressed := diff(base, cur, 20, false); regressed {
		t.Fatalf("non-throughput column compared:\n%s", report)
	}
}

func TestDiffInfoColumnsExempt(t *testing.T) {
	// A "(info)" column is throughput-shaped but opted out of the gate —
	// the scale experiment's measured multi-worker series, which is
	// scheduler noise on hosts with fewer cores than workers.
	mk := func(measured string) []bench.Result {
		return []bench.Result{{
			ID:      "scale",
			Columns: []string{"workers", "measured (docs/s) (info)", "projected (docs/s)"},
			Rows:    [][]string{{"4", measured, "100.000"}},
		}}
	}
	if report, regressed := diff(mk("1000.000"), mk("100.000"), 20, false); regressed {
		t.Fatalf("(info) column compared:\n%s", report)
	}
}

func mkAllocs(rows ...[]string) bench.Result {
	return bench.Result{
		ID:      "allocs",
		Columns: []string{"series", "allocs/op", "B/op (info)", "ns/op (info)"},
		Rows:    rows,
	}
}

func TestDiffAllocsLowerIsBetter(t *testing.T) {
	base := []bench.Result{mkAllocs([]string{"rss per-document", "100.0", "4096.0", "50000.0"})}
	worse := []bench.Result{mkAllocs([]string{"rss per-document", "150.0", "4096.0", "50000.0"})}
	report, regressed := diff(base, worse, 20, true)
	if !regressed {
		t.Fatalf("+50%% allocs/op not flagged:\n%s", report)
	}
	if !strings.Contains(report, "allocs[rss per-document] allocs/op") || !strings.Contains(report, "REGRESSION") {
		t.Errorf("wrong series flagged:\n%s", report)
	}
	better := []bench.Result{mkAllocs([]string{"rss per-document", "40.0", "4096.0", "50000.0"})}
	if report, regressed := diff(base, better, 20, true); regressed {
		t.Fatalf("-60%% allocs/op (an improvement) flagged:\n%s", report)
	}
}

func TestDiffAllocsNotSpeedNormalized(t *testing.T) {
	// A machine twice as slow halves every throughput series; the allocs
	// counts are machine-independent and must neither be rescaled by the
	// factor nor contribute to it.
	base := []bench.Result{
		mkResult("pipeline", []string{"1", "1000.000", "5"}, []string{"2", "2000.000", "5"}, []string{"4", "3000.000", "5"}),
		mkAllocs([]string{"rss per-document", "100.0", "1.0", "1.0"}),
	}
	cur := []bench.Result{
		mkResult("pipeline", []string{"1", "500.000", "5"}, []string{"2", "1000.000", "5"}, []string{"4", "1500.000", "5"}),
		mkAllocs([]string{"rss per-document", "100.0", "1.0", "1.0"}),
	}
	report, regressed := diff(base, cur, 20, true)
	if regressed {
		t.Fatalf("unchanged allocs or machine-speed throughput difference flagged:\n%s", report)
	}
	if !strings.Contains(report, "median speed ratio 0.500") {
		t.Errorf("allocs cells perturbed the speed factor:\n%s", report)
	}
}

func TestDiffGuardsZeroAndNaNSeries(t *testing.T) {
	// Zero and non-finite baseline cells must become "(info)" notes, not a
	// division by zero that silently passes (NaN compares false) or fails.
	base := []bench.Result{
		mkAllocs(
			[]string{"pooled-stage", "0.0", "0.0", "1.0"},
			[]string{"nan-stage", "NaN", "1.0", "1.0"},
		),
		mkResult("pipeline", []string{"1", "0.000", "5"}),
	}
	cur := []bench.Result{
		mkAllocs(
			[]string{"pooled-stage", "50.0", "0.0", "1.0"},
			[]string{"nan-stage", "10.0", "1.0", "1.0"},
		),
		mkResult("pipeline", []string{"1", "900.000", "5"}),
	}
	report, regressed := diff(base, cur, 20, true)
	if regressed {
		t.Fatalf("guarded series tripped the gate:\n%s", report)
	}
	if !strings.Contains(report, "allocs[pooled-stage] allocs/op: zero-alloc baseline — (info) skipped") {
		t.Errorf("missing zero-alloc note:\n%s", report)
	}
	if !strings.Contains(report, "allocs[nan-stage] allocs/op: non-finite cell — (info) skipped") {
		t.Errorf("missing non-finite note:\n%s", report)
	}
	if !strings.Contains(report, "pipeline[1] MMQJP (docs/s): zero baseline throughput — (info) skipped") {
		t.Errorf("missing zero-throughput note:\n%s", report)
	}
}

func TestDiffNormalizesMachineSpeed(t *testing.T) {
	// The gate machine is uniformly half the speed of the baseline
	// machine: raw comparison fails, normalized comparison passes.
	base := []bench.Result{mkResult("pipeline",
		[]string{"1", "1000.000", "5"},
		[]string{"2", "2000.000", "5"},
		[]string{"4", "3000.000", "5"},
	)}
	cur := []bench.Result{mkResult("pipeline",
		[]string{"1", "500.000", "5"},
		[]string{"2", "1000.000", "5"},
		[]string{"4", "1500.000", "5"},
	)}
	if report, regressed := diff(base, cur, 20, false); !regressed {
		t.Fatalf("raw comparison missed a uniform halving:\n%s", report)
	}
	if report, regressed := diff(base, cur, 20, true); regressed {
		t.Fatalf("normalized comparison flagged a pure machine-speed difference:\n%s", report)
	}
}

func TestDiffNormalizedCatchesLocalizedRegression(t *testing.T) {
	// Same machine speed overall (median ratio 1.0), but one series lost
	// 70%: the normalized gate must still flag it.
	base := []bench.Result{mkResult("pipeline",
		[]string{"1", "1000.000", "5"},
		[]string{"2", "1000.000", "5"},
		[]string{"4", "1000.000", "5"},
	)}
	cur := []bench.Result{mkResult("pipeline",
		[]string{"1", "1000.000", "5"},
		[]string{"2", "1000.000", "5"},
		[]string{"4", "300.000", "5"},
	)}
	report, regressed := diff(base, cur, 20, true)
	if !regressed {
		t.Fatalf("normalized comparison missed a localized regression:\n%s", report)
	}
	if !strings.Contains(report, "pipeline[4] MMQJP (docs/s)") || !strings.Contains(report, "REGRESSION") {
		t.Errorf("wrong series flagged:\n%s", report)
	}
}
