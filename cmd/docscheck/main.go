// Command docscheck is the documentation gate behind `make docs-check` (the
// CI docs job): it keeps the markdown guides honest against the code.
//
// Usage:
//
//	docscheck README.md TUNING.md DESIGN.md
//
// Three checks run over every file given:
//
//   - Every fenced ```go block must be a complete, compilable Go file. Each
//     block is extracted into a throwaway package directory inside the
//     module (so `repro` imports resolve) and built with `go build`. Blocks
//     that are deliberately not Go files belong in ```text or untagged
//     fences.
//   - Every intra-repo markdown link — `[text](target)` where the target is
//     not an external URL or a pure fragment — must point at an existing
//     file or directory, resolved relative to the markdown file.
//   - Every //mmqjp: directive appearing inside any fenced code block must
//     parse under the grammar in internal/lint (known name, argument arity),
//     so the documented examples can never drift from what mmqjplint
//     actually accepts.
//
// Exit status is 1 if any block fails to build or any link is broken, with
// one diagnostic line per failure.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/lint"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <markdown-file>...")
		os.Exit(2)
	}
	failures := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			failures++
			continue
		}
		text := string(data)
		for _, msg := range checkGoBlocks(path, text) {
			fmt.Fprintln(os.Stderr, msg)
			failures++
		}
		for _, msg := range checkLinks(path, text) {
			fmt.Fprintln(os.Stderr, msg)
			failures++
		}
		for _, msg := range checkDirectives(path, text) {
			fmt.Fprintln(os.Stderr, msg)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("docscheck: all go blocks compile, all intra-repo links resolve, all //mmqjp: examples parse")
}

// goBlock is one fenced ```go block with the line it starts on.
type goBlock struct {
	line int
	code string
}

// extractGoBlocks scans fenced code blocks and returns the go-tagged ones.
func extractGoBlocks(text string) []goBlock {
	var out []goBlock
	lines := strings.Split(text, "\n")
	inBlock := false
	isGo := false
	start := 0
	var buf []string
	for i, l := range lines {
		trimmed := strings.TrimSpace(l)
		if !inBlock && strings.HasPrefix(trimmed, "```") {
			inBlock = true
			isGo = strings.TrimPrefix(trimmed, "```") == "go"
			start = i + 1
			buf = buf[:0]
			continue
		}
		if inBlock && trimmed == "```" {
			if isGo {
				out = append(out, goBlock{line: start + 1, code: strings.Join(buf, "\n")})
			}
			inBlock = false
			continue
		}
		if inBlock {
			buf = append(buf, l)
		}
	}
	return out
}

// checkGoBlocks builds every ```go block of one markdown file.
func checkGoBlocks(path, text string) (msgs []string) {
	for i, b := range extractGoBlocks(text) {
		if !strings.Contains(b.code, "package ") {
			msgs = append(msgs, fmt.Sprintf("%s:%d: go block has no package clause — make it a complete file or retag the fence", path, b.line))
			continue
		}
		dir, err := os.MkdirTemp(".", ".docscheck-*")
		if err != nil {
			msgs = append(msgs, fmt.Sprintf("docscheck: %v", err))
			continue
		}
		file := filepath.Join(dir, "block.go")
		if err := os.WriteFile(file, []byte(b.code+"\n"), 0o644); err != nil {
			msgs = append(msgs, fmt.Sprintf("docscheck: %v", err))
			os.RemoveAll(dir)
			continue
		}
		cmd := exec.Command("go", "build", "-o", os.DevNull, "./"+dir)
		out, err := cmd.CombinedOutput()
		if err != nil {
			msgs = append(msgs, fmt.Sprintf("%s:%d: go block %d does not compile:\n%s", path, b.line, i+1, strings.TrimSpace(string(out))))
		}
		os.RemoveAll(dir)
	}
	return msgs
}

// linkRe matches inline markdown links. Images and reference-style links
// are out of scope; the guides use inline links only.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkLinks verifies every intra-repo link target of one markdown file.
func checkLinks(path, text string) (msgs []string) {
	dir := filepath.Dir(path)
	for i, line := range strings.Split(text, "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				msgs = append(msgs, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
			}
		}
	}
	return msgs
}

// checkDirectives validates every //mmqjp: directive inside fenced code
// blocks (any fence tag) against the grammar table in internal/lint. Doc
// examples of the annotation language must stay parseable by mmqjplint.
func checkDirectives(path, text string) (msgs []string) {
	inBlock := false
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inBlock = !inBlock
			continue
		}
		if !inBlock {
			continue
		}
		idx := strings.Index(line, lint.DirectivePrefix)
		if idx < 0 {
			continue
		}
		directive := strings.TrimRight(line[idx:], " \t")
		if _, _, err := lint.ParseDirectiveText(directive); err != nil {
			msgs = append(msgs, fmt.Sprintf("%s:%d: bad //mmqjp: directive example: %v", path, i+1, err))
		}
	}
	return msgs
}
