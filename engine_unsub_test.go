package mmqjp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestEngineUnsubscribe covers the basic lifecycle on every processor kind:
// a subscription fires, is removed, and fires no more; ids stay stable and
// errors are reported.
func TestEngineUnsubscribe(t *testing.T) {
	for _, kind := range allKinds() {
		eng := New(Options{Processor: kind})
		qid := eng.MustSubscribe(paperQ1)

		eng.PublishXML("S", paperD1, 1, 100)
		ms, _ := eng.PublishXML("S", paperD2, 2, 200)
		if len(ms) != 1 {
			t.Fatalf("kind=%d: %d matches before unsubscribe, want 1", kind, len(ms))
		}
		if err := eng.Unsubscribe(qid); err != nil {
			t.Fatalf("kind=%d: %v", kind, err)
		}
		if n := eng.NumQueries(); n != 0 {
			t.Errorf("kind=%d: NumQueries = %d after unsubscribe", kind, n)
		}
		if src := eng.Query(qid); src != "" {
			t.Errorf("kind=%d: Query returns %q after unsubscribe", kind, src)
		}
		eng.PublishXML("S", paperD1, 3, 300)
		ms, _ = eng.PublishXML("S", paperD2, 4, 400)
		if len(ms) != 0 {
			t.Errorf("kind=%d: unsubscribed query fired %d times", kind, len(ms))
		}
		if err := eng.Unsubscribe(qid); err == nil {
			t.Errorf("kind=%d: double unsubscribe accepted", kind)
		}
		if err := eng.Unsubscribe(QueryID(99)); err == nil {
			t.Errorf("kind=%d: unknown id accepted", kind)
		}
	}
}

// TestEngineUnsubscribeKeepsOthers removes one of two subscriptions; the
// survivor keeps firing under its original id, and templates shared with the
// removed query survive.
func TestEngineUnsubscribeKeepsOthers(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat})
	keep := eng.MustSubscribe(paperQ1)
	drop := eng.MustSubscribe(
		"S//book->x1[.//category->x2][.//title->x3] FOLLOWED BY{x2=x5 AND x3=x6, 1000} S//blog->x4[.//category->x5][.//title->x6]")
	if eng.NumTemplates() != 1 {
		t.Fatalf("test premise: queries share a template, have %d", eng.NumTemplates())
	}
	if err := eng.Unsubscribe(drop); err != nil {
		t.Fatal(err)
	}
	if eng.NumTemplates() != 1 {
		t.Errorf("shared template reclaimed with a survivor: %d", eng.NumTemplates())
	}
	eng.PublishXML("S", paperD1, 1, 100)
	ms, _ := eng.PublishXML("S", paperD2, 2, 200)
	if len(ms) != 1 || ms[0].Query != keep {
		t.Errorf("survivor matches = %v, want one for query %d", ms, keep)
	}
}

// TestEngineUnsubscribeStopsCascade removes the upstream PUBLISH query of a
// composition chain: the downstream subscription must stop receiving derived
// documents (and vice versa, removing the downstream query silences it while
// the upstream keeps publishing).
func TestEngineUnsubscribeStopsCascade(t *testing.T) {
	setup := func() (*Engine, QueryID, QueryID) {
		eng := New(Options{Processor: ProcessorViewMat, EnableComposition: true})
		q1 := eng.MustSubscribe(
			"S//alert->a[./host->h][./sev->s] FOLLOWED BY{h=h2 AND s=s2, 100} S//confirm->c[./host->h2][./sev->s2] PUBLISH incidents")
		q2 := eng.MustSubscribe(
			"incidents//alert->a[./host->h] JOIN{h=h2, 1000} P//page->p[./host->h2]")
		return eng, q1, q2
	}
	feed := func(t *testing.T, eng *Engine, id int64) map[QueryID]int {
		t.Helper()
		eng.PublishXML("P", "<page><host>web1</host></page>", id, id*10)
		eng.PublishXML("S", "<alert><host>web1</host><sev>hi</sev></alert>", id+1, id*10+1)
		ms, err := eng.PublishXML("S", "<confirm><host>web1</host><sev>hi</sev></confirm>", id+2, id*10+2)
		if err != nil {
			t.Fatal(err)
		}
		fired := map[QueryID]int{}
		for _, m := range ms {
			fired[m.Query]++
		}
		return fired
	}

	eng, q1, q2 := setup()
	if fired := feed(t, eng, 1); fired[q1] != 1 || fired[q2] == 0 {
		t.Fatalf("chain does not resolve before unsubscribe: %v", fired)
	}

	// Removing the upstream PUBLISH query stops the cascade entirely.
	eng, q1, q2 = setup()
	if err := eng.Unsubscribe(q1); err != nil {
		t.Fatal(err)
	}
	if fired := feed(t, eng, 1); fired[q1] != 0 || fired[q2] != 0 {
		t.Errorf("cascade survived upstream unsubscribe: %v", fired)
	}

	// Removing the downstream query silences it but not the publisher.
	eng, q1, q2 = setup()
	if err := eng.Unsubscribe(q2); err != nil {
		t.Fatal(err)
	}
	if fired := feed(t, eng, 1); fired[q1] != 1 || fired[q2] != 0 {
		t.Errorf("downstream unsubscribe mishandled: %v", fired)
	}
}

// renderEngineMatches serializes engine matches byte-for-byte, order
// included.
func renderEngineMatches(ms []Match) string {
	var sb strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&sb, "q%d l%d@%d r%d@%d\n", m.Query, m.LeftDoc, m.LeftTS, m.RightDoc, m.RightTS)
	}
	return sb.String()
}

// TestEngineChurnDeterminism is the lifecycle determinism requirement at the
// facade: publish → GC → publish interleaved with Subscribe/Unsubscribe
// churn must leave the engine producing byte-identical per-document output
// to a fresh engine holding only the surviving subscriptions — across
// Workers ∈ {1,4} × PipelineDepth ∈ {0,2} (run under -race in CI).
func TestEngineChurnDeterminism(t *testing.T) {
	gen := workload.DefaultRSS()
	qrng := rand.New(rand.NewSource(3))
	// Finite windows (the generator emits INF) so window GC runs during
	// the stream; timestamps advance one per item.
	var sources []string
	for _, q := range gen.Queries(qrng, 80) {
		sources = append(sources, strings.Replace(q.Source, "INF", "60", 1))
	}
	surviving, churned := sources[:40], sources[40:]
	srng := rand.New(rand.NewSource(11))
	stream := gen.Stream(srng, 150)
	const churnAt = 75

	// Reference: a fresh sequential-config engine with only the surviving
	// subscriptions, fed the whole stream.
	fresh := New(Options{Processor: ProcessorViewMat})
	for _, src := range surviving {
		fresh.MustSubscribe(src)
	}
	var ref []string
	for _, d := range stream {
		ref = append(ref, renderEngineMatches(fresh.Publish("S", d)))
	}

	for _, workers := range []int{1, 4} {
		for _, depth := range []int{0, 2} {
			eng := New(Options{Processor: ProcessorViewMat, Parallelism: workers, PipelineDepth: depth})
			var churnIDs []QueryID
			for _, src := range surviving {
				eng.MustSubscribe(src)
			}
			for _, src := range churned {
				churnIDs = append(churnIDs, eng.MustSubscribe(src))
			}
			eng.PublishBatch("S", stream[:churnAt])
			for _, id := range churnIDs {
				if err := eng.Unsubscribe(id); err != nil {
					t.Fatal(err)
				}
			}
			if n := eng.NumQueries(); n != len(surviving) {
				t.Fatalf("NumQueries = %d, want %d", n, len(surviving))
			}
			for di, ms := range eng.PublishBatch("S", stream[churnAt:]) {
				got := renderEngineMatches(ms)
				if got != ref[churnAt+di] {
					t.Fatalf("workers=%d depth=%d: churned engine diverges from fresh on doc %d:\nchurned:\n%sfresh:\n%s",
						workers, depth, churnAt+di+1, got, ref[churnAt+di])
				}
			}
		}
	}
}

// TestEngineUnsubscribeAllThenResubscribe drains every subscription and
// checks the engine behaves like a brand-new one afterwards (modulo id
// allocation, which never reuses ids).
func TestEngineUnsubscribeAllThenResubscribe(t *testing.T) {
	// Composition implies RetainDocuments, so the drain must also release
	// the engine-side document store.
	eng := New(Options{Processor: ProcessorViewMat, EnableComposition: true})
	var ids []QueryID
	for i := 0; i < 3; i++ {
		ids = append(ids, eng.MustSubscribe(paperQ1))
	}
	eng.PublishXML("S", paperD1, 1, 100)
	eng.PublishXML("S", paperD2, 2, 200)
	if len(eng.docs) == 0 {
		t.Fatal("test premise: documents retained while subscribed")
	}
	for _, id := range ids {
		if err := eng.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
	}
	if eng.NumQueries() != 0 || eng.NumTemplates() != 0 {
		t.Fatalf("engine not drained: %d queries, %d templates", eng.NumQueries(), eng.NumTemplates())
	}
	if len(eng.docs) != 0 {
		t.Fatalf("drained engine retains %d documents", len(eng.docs))
	}
	// The old join state must be gone: a resubscribed query starts from
	// scratch and cannot match against pre-unsubscribe documents.
	qid := eng.MustSubscribe(paperQ1)
	ms, _ := eng.PublishXML("S", paperD2, 3, 250)
	if len(ms) != 0 {
		t.Errorf("resubscribed query matched against reclaimed state: %v", ms)
	}
	eng.PublishXML("S", paperD1, 4, 300)
	ms, _ = eng.PublishXML("S", paperD2, 5, 350)
	if len(ms) != 1 || ms[0].Query != qid {
		t.Errorf("resubscribed query does not fire on fresh documents: %v", ms)
	}
}
