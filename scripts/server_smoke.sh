#!/usr/bin/env bash
# End-to-end smoke test of the production-server layer (the CI server-smoke
# job): start mmqjp-server with the observability sidecar and a snapshot
# path, subscribe and publish over the wire protocol, scrape /metrics and
# /healthz, kill the server (SIGTERM snapshots on shutdown), restart it from
# the snapshot, and assert the subscription survived the restart — a CLAIM
# re-attaches it and pre-restart join state still matches.
#
# A second phase reruns the lifecycle routed: -partitions 4 -snapshot-gzip,
# SUB/PUB/UNSUB over the wire, per-partition /metrics families, SIGTERM into
# a gzipped routed snapshot, restart with the same -partitions, CLAIM, and a
# cross-restart match.
#
# Uses only bash (/dev/tcp for the line protocol) and curl.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:7878
DEBUG=127.0.0.1:7879
WORK=$(mktemp -d)
SNAP="$WORK/engine.snap"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

go build -o "$WORK/mmqjp-server" ./cmd/mmqjp-server

# start_server [EXTRA_FLAGS...] — flags after the fixed set (e.g.
# -partitions 4, or an alternate -snapshot-path) pass through to the server.
start_server() {
  "$WORK/mmqjp-server" -addr "$ADDR" -debug-addr "$DEBUG" -snapshot-path "$SNAP" "$@" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    if curl -fsS "http://$DEBUG/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server did not become healthy on $DEBUG"
}

# send_lines REQUEST... — opens one broker connection, sends every argument
# as a line, then echoes the replies until the read times out.
send_lines() {
  exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
  local req
  for req in "$@"; do printf '%s\n' "$req" >&3; done
  local line
  while IFS= read -r -t 2 -u 3 line; do printf '%s\n' "$line"; done
  exec 3<&- 3>&-
}

echo "== first server instance: subscribe, publish, scrape =="
start_server

OUT=$(send_lines \
  "SUB S//a->x FOLLOWED BY{x=y, 1000} S//b->y" \
  "PUB S 1 <a>k</a>")
echo "$OUT"
grep -q '^OK 0$' <<<"$OUT" || fail "SUB/PUB did not succeed: $OUT"

HEALTH=$(curl -fsS "http://$DEBUG/healthz")
grep -q ok <<<"$HEALTH" || fail "/healthz returned: $HEALTH"

METRICS=$(curl -fsS "http://$DEBUG/metrics")
grep -q '^mmqjp_queries 1$' <<<"$METRICS" || fail "/metrics missing mmqjp_queries 1"
grep -q '^mmqjp_documents_total 1$' <<<"$METRICS" || fail "/metrics missing mmqjp_documents_total 1"
grep -q 'mmqjp_stage1_seconds_count 1' <<<"$METRICS" || fail "/metrics missing stage1 histogram observation"
grep -q 'mmqjp_stream_publish_total{stream="S"} 1' <<<"$METRICS" || fail "/metrics missing per-stream publish counter"

echo "== SIGTERM: snapshot on shutdown =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[ -s "$SNAP" ] || fail "no snapshot written to $SNAP"

echo "== second server instance: restore, claim, match across restart =="
start_server

METRICS=$(curl -fsS "http://$DEBUG/metrics")
grep -q '^mmqjp_queries 1$' <<<"$METRICS" || fail "subscription did not survive the restart"

# The restored query is orphaned; CLAIM re-attaches, and the pre-restart
# <a> document joins the post-restart <b>: MATCH qid=0 left=1 right=2.
OUT=$(send_lines \
  "CLAIM 0" \
  "PUB S 2 <b>k</b>")
echo "$OUT"
grep -q '^OK 0$' <<<"$OUT" || fail "CLAIM failed after restart: $OUT"
grep -q '^MATCH 0 left=1@1 right=2@2$' <<<"$OUT" || fail "pre-restart join state lost: $OUT"

echo "PASS: subscriptions and join state survived the restart"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== routed server: -partitions 4 -snapshot-gzip, churn over the wire =="
SNAP="$WORK/engine-routed.snap"
start_server -partitions 4 -snapshot-gzip

OUT=$(send_lines \
  "SUB S//a->x FOLLOWED BY{x=y, 1000} S//b->y" \
  "SUB S//c->x FOLLOWED BY{x=y, 1000} S//d->y" \
  "PUB S 1 <a>k</a>" \
  "UNSUB 1")
echo "$OUT"
grep -q '^OK 0$' <<<"$OUT" || fail "routed SUB/PUB did not succeed: $OUT"
grep -q '^OK 1$' <<<"$OUT" || fail "routed second SUB / UNSUB did not succeed: $OUT"

METRICS=$(curl -fsS "http://$DEBUG/metrics")
# Aggregate metric names are unchanged by routing: one live query after the
# UNSUB, and the published document counted once despite 4 partitions.
grep -q '^mmqjp_queries 1$' <<<"$METRICS" || fail "routed /metrics missing mmqjp_queries 1"
grep -q '^mmqjp_documents_total 1$' <<<"$METRICS" || fail "routed /metrics missing mmqjp_documents_total 1"
# Per-partition families: every partition consumed the document.
for p in 0 1 2 3; do
  grep -q "^mmqjp_partition_documents_total{partition=\"$p\"} 1$" <<<"$METRICS" \
    || fail "routed /metrics missing partition $p document counter"
done

echo "== SIGTERM: gzipped routed snapshot on shutdown =="
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
[ -s "$SNAP" ] || fail "no routed snapshot written to $SNAP"
MAGIC=$(head -c 2 "$SNAP" | od -An -tx1 | tr -d ' \n')
[ "$MAGIC" = "1f8b" ] || fail "-snapshot-gzip snapshot lacks the gzip magic (got $MAGIC)"

echo "== routed restart: restore at the same partition count =="
start_server -partitions 4

METRICS=$(curl -fsS "http://$DEBUG/metrics")
grep -q '^mmqjp_queries 1$' <<<"$METRICS" || fail "routed subscription did not survive the restart"

OUT=$(send_lines \
  "CLAIM 0" \
  "PUB S 2 <b>k</b>")
echo "$OUT"
grep -q '^OK 0$' <<<"$OUT" || fail "routed CLAIM failed after restart: $OUT"
grep -q '^MATCH 0 left=1@1 right=2@2$' <<<"$OUT" || fail "routed pre-restart join state lost: $OUT"

echo "PASS: routed subscriptions and join state survived the gzipped-snapshot restart"
