// Package mmqjp is an XML publish/subscribe engine implementing Massively
// Multi-Query Join Processing (Hong, Demers, Gehrke, Koch, Riedewald,
// White — SIGMOD 2007): scalable evaluation of very large numbers of
// continuous inter-document join queries over streams of XML documents.
//
// Queries are written in XSCL (XML Stream Conjunctive Language): two XPath
// tree-pattern blocks combined with a windowed join operator,
//
//	S//book->x1[.//author->x2][.//title->x3]
//	  FOLLOWED BY{x2=x5 AND x3=x6, 100}
//	S//blog->x4[.//author->x5][.//title->x6]
//
// meaning: report a book announcement followed within 100 time units by a
// blog article whose author matches one of the book's authors and whose
// title matches the book's title.
//
// The engine processes documents in two stages. Stage 1 evaluates all tree
// patterns of all queries at once in a shared NFA (YFilter-style), producing
// compact binary witness relations. Stage 2 partitions queries into
// equivalence classes by query template (the isomorphism class of the graph
// minor of the query's join graph) and evaluates one relational conjunctive
// query per template, answering every member query simultaneously. With
// hundreds of thousands of registered queries the system maintains a few
// dozen templates, which is the source of its scalability.
//
// Engines are safe for concurrent use. Stage-2 evaluation is additionally
// parallelized across query templates when Options.Parallelism is set:
// templates are sharded over a bounded worker pool with per-shard state
// ownership, and matches are merged deterministically, so output is
// identical for every worker count (see DESIGN.md). When the workload is
// skewed onto a few hot templates, Options.SplitThreshold additionally
// splits a hot template's evaluation into chunks that idle workers steal
// (intra-template parallelism), again without changing any output byte —
// TUNING.md maps workload shapes onto these knobs. Batch publishes
// (PublishBatch, PublishXMLBatch) further pipeline ingestion when
// Options.PipelineDepth is set: Stage 1 of up to PipelineDepth upcoming
// documents runs ahead in workers while Stage 2, the state merge, and
// window GC are applied strictly in arrival order, so batch output is
// identical to per-document Publish for every depth. PublishAsync extends
// the same overlap to concurrent publishers through a persistent ingest
// pipeline with bounded admission: matches are delivered on a per-document
// channel in admission order, byte-identical to serial Publish of that
// order, and Flush/Close drain the pipeline.
//
// The Stage-2 physical plan is chosen adaptively per query template
// (Options.Plan, default PlanAuto): runtime statistics — observed witness
// fan-out, vector-group cardinality and probe volume, and per-plan
// wall-time EWMAs — calibrate a cost model online that replaces the static
// heuristic, and Options.PlanExploreEvery enables occasional exploration
// runs of the non-chosen plan to keep both estimates honest. Plan choice
// never changes output: forced PlanWitness, forced PlanRTDriven and
// adaptive PlanAuto produce byte-identical match streams.
// Engine.PlanStats exposes the per-template statistics.
//
// Subscriptions have a full lifecycle: Unsubscribe removes a query and
// reclaims everything it no longer shares with the survivors — canonical
// templates are refcounted over their member queries, and a template's
// query relation, indexes and view-cache entries are released when its last
// member leaves. Draining every subscription returns the engine to its
// initial state; ids are never reused.
//
// PublishDoc is the general ingestion entrypoint, covering every
// combination of input form and delivery through options (WithDocs,
// WithXML, WithXMLEvents, WithAsync); the named Publish variants are thin
// wrappers over it. Engine.Stats returns a structured EngineStats snapshot
// (JSON-marshalable; String renders the traditional one-line form), and
// Options.OnDocument delivers per-document stage timings for external
// metrics.
//
// Engines are durable: Snapshot serializes the subscription set and the
// windowed join state at an ingest barrier (an exact admission-order prefix
// of the stream), and OpenEngine restores an engine that continues the
// stream byte-identically to one that never restarted. The Store interface
// (MemStore, FileStore) wraps snapshot transport; FileStore replaces its
// file atomically. See DESIGN.md "Observability & durability".
//
// # Quick start
//
//	eng := mmqjp.New(mmqjp.Options{Processor: mmqjp.ProcessorViewMat})
//	qid, err := eng.Subscribe(
//	    "S//book->b[.//author->a] FOLLOWED BY{a=a2, 100} S//blog->g[.//author->a2]")
//	...
//	matches, err := eng.PublishXML("S", "<book>...</book>", docID, timestamp)
//	for _, m := range matches { ... }
//
// See the package examples (Example_*) and the examples directory for
// runnable programs, DESIGN.md for the architecture, TUNING.md for the
// tuning guide, and README.md "Benchmarks" for the reproduction of the
// paper's evaluation.
package mmqjp
