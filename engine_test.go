package mmqjp

import (
	"encoding/json"
	"strings"
	"testing"
)

const (
	paperD1 = `<book><publisher>Wrox</publisher><author>Andrew Watt</author><author>Danny Ayers</author><title>Beginning RSS and Atom Programming</title><category>Scripting &amp; Programming</category><category>Web Site Development</category><isbn>0764579169</isbn></book>`
	paperD2 = `<blog><url>http://dannyayers.com/topics/books/rss-book</url><author>Danny Ayers</author><title>Beginning RSS and Atom Programming</title><category>Book Announcement</category><category>Scripting &amp; Programming</category><body>Just heard ...</body></blog>`
	paperQ1 = "S//book->x1[.//author->x2][.//title->x3] FOLLOWED BY{x2=x5 AND x3=x6, 1000} S//blog->x4[.//author->x5][.//title->x6]"
)

func allKinds() []ProcessorKind {
	return []ProcessorKind{ProcessorMMQJP, ProcessorViewMat, ProcessorSequential}
}

func TestEngineEndToEnd(t *testing.T) {
	for _, kind := range allKinds() {
		eng := New(Options{Processor: kind})
		qid := eng.MustSubscribe(paperQ1)

		ms, err := eng.PublishXML("S", paperD1, 1, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 0 {
			t.Errorf("kind=%d: book alone fired", kind)
		}
		ms, err = eng.PublishXML("S", paperD2, 2, 200)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 {
			t.Fatalf("kind=%d: matches = %d, want 1", kind, len(ms))
		}
		m := ms[0]
		if m.Query != qid || m.LeftDoc != 1 || m.RightDoc != 2 || m.LeftTS != 100 || m.RightTS != 200 {
			t.Errorf("kind=%d: match = %+v", kind, m)
		}
	}
}

func TestEngineOutputXML(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat, RetainDocuments: true})
	eng.MustSubscribe(paperQ1)
	eng.PublishXML("S", paperD1, 1, 100)
	ms, _ := eng.PublishXML("S", paperD2, 2, 200)
	if len(ms) != 1 {
		t.Fatal("no match")
	}
	out, ok := eng.OutputXML(ms[0])
	if !ok {
		t.Fatal("output not available")
	}
	if !strings.HasPrefix(out, "<result><book>") || !strings.Contains(out, "<blog>") {
		t.Errorf("output = %s", out)
	}
	if !strings.Contains(out, "Danny Ayers") {
		t.Errorf("output missing author: %s", out)
	}
}

func TestEngineOutputRequiresRetention(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat})
	eng.MustSubscribe(paperQ1)
	eng.PublishXML("S", paperD1, 1, 100)
	ms, _ := eng.PublishXML("S", paperD2, 2, 200)
	if _, ok := eng.OutputXML(ms[0]); ok {
		t.Error("output available without RetainDocuments")
	}
}

func TestEngineSubscribeError(t *testing.T) {
	eng := New(Options{})
	if _, err := eng.Subscribe("not a query at all ["); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := eng.PublishXML("S", "<unclosed>", 1, 1); err == nil {
		t.Error("bad document accepted")
	}
}

func TestEnginePublishName(t *testing.T) {
	eng := New(Options{})
	eng.MustSubscribe("S//a->x JOIN{x=y, 10} S//b->y PUBLISH hits")
	b1 := NewDocumentBuilder(1, 5, "a")
	b1.SetText(0, "v")
	eng.Publish("S", b1.Build())
	b2 := NewDocumentBuilder(2, 6, "b")
	b2.SetText(0, "v")
	ms := eng.Publish("S", b2.Build())
	if len(ms) != 1 || ms[0].Publish != "hits" {
		t.Errorf("matches = %+v", ms)
	}
}

func TestEngineStatsString(t *testing.T) {
	for _, kind := range allKinds() {
		eng := New(Options{Processor: kind})
		eng.MustSubscribe(paperQ1)
		eng.PublishXML("S", paperD1, 1, 100)
		eng.PublishXML("S", paperD2, 2, 200)
		s := eng.Stats()
		if s.String() == "" {
			t.Errorf("kind=%d: empty stats", kind)
		}
		if s.Queries != 1 {
			t.Errorf("kind=%d: queries = %d, want 1", kind, s.Queries)
		}
		if s.Documents != 2 {
			t.Errorf("kind=%d: documents = %d, want 2", kind, s.Documents)
		}
		if s.Matches < 1 {
			t.Errorf("kind=%d: matches = %d, want >= 1", kind, s.Matches)
		}
		if s.Sequential != (kind == ProcessorSequential) {
			t.Errorf("kind=%d: sequential flag = %v", kind, s.Sequential)
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("kind=%d: marshal stats: %v", kind, err)
		}
		var round EngineStats
		if err := json.Unmarshal(b, &round); err != nil {
			t.Fatalf("kind=%d: unmarshal stats: %v", kind, err)
		}
		if round != s {
			t.Errorf("kind=%d: stats JSON round-trip mismatch:\n got %+v\nwant %+v", kind, round, s)
		}
	}
}

func TestEngineTemplatesExposed(t *testing.T) {
	eng := New(Options{Processor: ProcessorMMQJP})
	eng.MustSubscribe(paperQ1)
	eng.MustSubscribe("S//book->x1[.//author->x2][.//category->x7] FOLLOWED BY{x2=x5 AND x7=x8, 1000} S//blog->x4[.//author->x5][.//category->x8]")
	if eng.NumTemplates() != 1 {
		t.Errorf("templates = %d, want 1", eng.NumTemplates())
	}
	if eng.NumQueries() != 2 {
		t.Errorf("queries = %d", eng.NumQueries())
	}
	if !strings.Contains(eng.Query(0), "FOLLOWED BY") {
		t.Errorf("query source lost")
	}
}

func TestEngineCompositionChain(t *testing.T) {
	// q1 joins an alert with a confirmation and publishes to "incidents";
	// q2 consumes incidents and correlates them with a page on the same
	// host. The chain only resolves through the derived stream.
	eng := New(Options{Processor: ProcessorViewMat, EnableComposition: true})
	// Two predicates keep the block roots in the templates, so the
	// derived documents carry whole alert/confirm subtrees.
	q1 := eng.MustSubscribe(
		"S//alert->a[./host->h][./sev->s] FOLLOWED BY{h=h2 AND s=s2, 100} S//confirm->c[./host->h2][./sev->s2] PUBLISH incidents")
	q2 := eng.MustSubscribe(
		"incidents//alert->a[./host->h] JOIN{h=h2, 1000} P//page->p[./host->h2]")

	feed := func(stream, xml string, id, ts int64) []Match {
		ms, err := eng.PublishXML(stream, xml, id, ts)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}

	feed("P", "<page><host>web1</host></page>", 1, 5)
	feed("S", "<alert><host>web1</host><sev>hi</sev></alert>", 2, 10)
	ms := feed("S", "<confirm><host>web1</host><sev>hi</sev></confirm>", 3, 20)

	fired := map[QueryID]int{}
	for _, m := range ms {
		fired[m.Query]++
	}
	if fired[q1] != 1 {
		t.Errorf("q1 fired %d times, want 1", fired[q1])
	}
	if fired[q2] != 1 {
		t.Errorf("q2 fired %d times, want 1 (via the derived incidents stream)", fired[q2])
	}
	if eng.DroppedCascades() != 0 {
		t.Errorf("dropped cascades = %d", eng.DroppedCascades())
	}
}

func TestEngineCompositionDepthLimit(t *testing.T) {
	// A self-feeding query network must be cut off at the depth limit
	// rather than looping forever: the single-block query republishes
	// every x element it sees back onto its own input stream.
	eng := New(Options{Processor: ProcessorViewMat, EnableComposition: true})
	eng.MustSubscribe("loop//x->a PUBLISH loop")
	ms, err := eng.PublishXML("loop", "<r><x>v</x></r>", 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != MaxCompositionDepth+1 {
		t.Errorf("matches = %d, want %d (one per level)", len(ms), MaxCompositionDepth+1)
	}
	if eng.DroppedCascades() != 1 {
		t.Errorf("dropped cascades = %d, want 1", eng.DroppedCascades())
	}
}

func TestEngineCompositionDisabledByDefault(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat, RetainDocuments: true})
	eng.MustSubscribe("S//a->x FOLLOWED BY{x=y, 100} S//b->y PUBLISH derived")
	eng.MustSubscribe("derived//a->x")
	eng.PublishXML("S", "<a>v</a>", 1, 10)
	ms, _ := eng.PublishXML("S", "<b>v</b>", 2, 20)
	// Only the first query fires; no cascade without EnableComposition.
	if len(ms) != 1 {
		t.Errorf("matches = %d, want 1", len(ms))
	}
}

func TestEngineCompositionDerivedContent(t *testing.T) {
	// The derived document carries the matched subtrees, verified by a
	// downstream query binding into them.
	eng := New(Options{Processor: ProcessorMMQJP, EnableComposition: true})
	eng.MustSubscribe("S//book->b[.//author->a][.//title->t] FOLLOWED BY{a=a2 AND t=t2, 100} S//blog->g[.//author->a2][.//title->t2] PUBLISH pairs")
	probe := eng.MustSubscribe("pairs//result->r[./book[./author->x]][./blog[./author->y]]")
	eng.PublishXML("S", "<book><author>Danny</author><title>RSS</title></book>", 1, 10)
	ms, _ := eng.PublishXML("S", "<blog><author>Danny</author><title>RSS</title></blog>", 2, 20)
	found := false
	for _, m := range ms {
		if m.Query == probe {
			found = true
		}
	}
	if !found {
		t.Errorf("derived document structure not matchable downstream: %+v", ms)
	}
}
