package mmqjp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// collectAsync drains a PublishAsync result channel.
func collectAsync(t *testing.T, ch <-chan []Match) []Match {
	t.Helper()
	ms, ok := <-ch
	if !ok {
		t.Fatal("match channel closed without a delivery")
	}
	if _, open := <-ch; open {
		t.Fatal("match channel delivered twice")
	}
	return ms
}

// TestPublishAsyncMatchesPublish is the engine-level acceptance test of the
// continuous async ingest pipeline: concurrent publishers push the RSS
// workload through PublishAsync while the test records the admission order
// (its mutex wraps each call, so the engine's internal admission order
// equals the recorded order); per-document match output — order included —
// must be byte-identical to serial Publish of the same admission order, for
// every Workers × PipelineDepth combination. The CI race job runs this
// under -race.
func TestPublishAsyncMatchesPublish(t *testing.T) {
	queries, stream := rssBatchFixture(300, 100)
	for _, workers := range []int{1, 4} {
		for _, depth := range []int{0, 2} {
			eng := New(Options{Processor: ProcessorViewMat, Parallelism: workers, PipelineDepth: depth})
			for _, q := range queries {
				eng.MustSubscribe(q)
			}
			var mu sync.Mutex
			order := make([]*Document, 0, len(stream))
			results := make(map[int64]<-chan []Match, len(stream))
			const publishers = 4
			var wg sync.WaitGroup
			for g := 0; g < publishers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < len(stream); i += publishers {
						d := stream[i]
						mu.Lock()
						results[int64(d.ID)] = eng.PublishAsync("S", d)
						order = append(order, d)
						mu.Unlock()
					}
				}(g)
			}
			wg.Wait()
			eng.Flush()

			ref := New(Options{Processor: ProcessorViewMat})
			for _, q := range queries {
				ref.MustSubscribe(q)
			}
			for i, d := range order {
				want := ref.Publish("S", d)
				got := collectAsync(t, results[int64(d.ID)])
				if len(got) != len(want) {
					t.Fatalf("workers=%d depth=%d admission %d (doc %d): %d matches async vs %d serial",
						workers, depth, i, d.ID, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("workers=%d depth=%d admission %d match %d: async %+v vs serial %+v",
							workers, depth, i, j, got[j], want[j])
					}
				}
			}
			eng.Close()
		}
	}
}

// TestPublishAsyncSubscribeBarrier checks that a Subscribe (and an
// Unsubscribe) issued between async publishes lands exactly at its position
// in the admission order: output equals a serial engine running the same
// publish/subscribe sequence.
func TestPublishAsyncSubscribeBarrier(t *testing.T) {
	queries, stream := rssBatchFixture(200, 80)
	late := queries[len(queries)-1]
	standing := queries[:len(queries)-1]

	ref := New(Options{Processor: ProcessorViewMat})
	for _, q := range standing {
		ref.MustSubscribe(q)
	}
	var want [][]Match
	var lateID QueryID
	for i, d := range stream {
		if i == len(stream)/3 {
			lateID = ref.MustSubscribe(late)
		}
		if i == 2*len(stream)/3 {
			if err := ref.Unsubscribe(lateID); err != nil {
				t.Fatal(err)
			}
		}
		want = append(want, ref.Publish("S", d))
	}

	eng := New(Options{Processor: ProcessorViewMat, Parallelism: 2, PipelineDepth: 2})
	for _, q := range standing {
		eng.MustSubscribe(q)
	}
	chans := make([]<-chan []Match, len(stream))
	var asyncLate QueryID
	for i, d := range stream {
		if i == len(stream)/3 {
			asyncLate = eng.MustSubscribe(late)
			if asyncLate != lateID {
				t.Fatalf("late subscription id %d vs serial %d", asyncLate, lateID)
			}
		}
		if i == 2*len(stream)/3 {
			if err := eng.Unsubscribe(asyncLate); err != nil {
				t.Fatal(err)
			}
		}
		chans[i] = eng.PublishAsync("S", d)
	}
	eng.Close()
	for i := range stream {
		got := collectAsync(t, chans[i])
		if fmt.Sprint(got) != fmt.Sprint(want[i]) {
			t.Fatalf("doc %d diverges across mid-stream subscribe/unsubscribe:\nserial: %v\nasync:  %v",
				i, want[i], got)
		}
	}
}

// TestPublishAsyncComposition checks that PUBLISH-clause cascades fire
// inside the async pipeline exactly as they do in serial Publish, and that
// OutputXML works on the delivered matches.
func TestPublishAsyncComposition(t *testing.T) {
	subscribe := func(eng *Engine) {
		eng.MustSubscribe("S//a->x JOIN{x=y, 1000} S//b->y PUBLISH D")
		eng.MustSubscribe("D//result->r")
	}
	var docs []*Document
	for i := 0; i < 6; i++ {
		xml := "<a>k</a>"
		if i%2 == 1 {
			xml = "<b>k</b>"
		}
		d, err := ParseDocument(xml, int64(i+1), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	ref := New(Options{Processor: ProcessorViewMat, EnableComposition: true})
	subscribe(ref)
	var want [][]Match
	for _, d := range docs {
		want = append(want, ref.Publish("S", d))
	}
	eng := New(Options{Processor: ProcessorViewMat, EnableComposition: true, PipelineDepth: 4})
	subscribe(eng)
	chans := make([]<-chan []Match, len(docs))
	for i, d := range docs {
		chans[i] = eng.PublishAsync("S", d)
	}
	eng.Flush()
	for i := range docs {
		got := collectAsync(t, chans[i])
		if fmt.Sprint(got) != fmt.Sprint(want[i]) {
			t.Fatalf("doc %d:\nasync:  %v\nserial: %v", i, got, want[i])
		}
		for _, m := range got {
			if _, ok := eng.OutputXML(m); !ok {
				t.Fatalf("doc %d: OutputXML failed for async match %+v", i, m)
			}
		}
	}
	eng.Close()
}

// TestPublishAsyncSequentialProcessor checks the degraded path: the
// sequential baseline has no Stage-1/Stage-2 split, so PublishAsync
// resolves synchronously but keeps the channel contract.
func TestPublishAsyncSequentialProcessor(t *testing.T) {
	eng := New(Options{Processor: ProcessorSequential})
	eng.MustSubscribe("S//a->x FOLLOWED BY{x=y, 100} S//b->y")
	d1, err := ParseDocument("<a>k</a>", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDocument("<b>k</b>", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ms := collectAsync(t, eng.PublishAsync("S", d1)); len(ms) != 0 {
		t.Fatalf("first doc matched %d, want 0", len(ms))
	}
	if ms := collectAsync(t, eng.PublishAsync("S", d2)); len(ms) != 1 {
		t.Fatalf("second doc matched %d, want 1", len(ms))
	}
	eng.Flush() // no-op without a pipeline
	eng.Close()
}

// TestEngineCloseSemantics checks that Close drains in-flight publishes,
// that PublishAsync after Close degrades to synchronous delivery with
// identical results, and that Flush/Close stay safe afterwards.
func TestEngineCloseSemantics(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat, PipelineDepth: 4})
	eng.MustSubscribe("S//a->x FOLLOWED BY{x=y, 100} S//b->y")
	mkDoc := func(id int64, xml string) *Document {
		d, err := ParseDocument(xml, id, id)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ch1 := eng.PublishAsync("S", mkDoc(1, "<a>k</a>"))
	eng.Close()
	if ms := collectAsync(t, ch1); len(ms) != 0 {
		t.Fatalf("in-flight doc matched %d, want 0", len(ms))
	}
	// After Close the async path degrades to a synchronous publish: the
	// document still enters the join state and matches.
	if ms := collectAsync(t, eng.PublishAsync("S", mkDoc(2, "<b>k</b>"))); len(ms) != 1 {
		t.Fatal("PublishAsync after Close did not publish")
	}
	if _, err := eng.Subscribe("S//a->z"); err != nil {
		t.Fatalf("Subscribe after Close: %v", err)
	}
	eng.Flush()
	eng.Close() // idempotent
}

// TestPublishAsyncStress hammers one shared engine with concurrent
// PublishAsync, synchronous Publish, Subscribe/Unsubscribe (both of which
// run at pipeline barriers), Flush, and the read accessors. Run under -race
// (the CI race job does) this is the thread-safety proof of the continuous
// ingest pipeline.
func TestPublishAsyncStress(t *testing.T) {
	for _, depth := range []int{0, 2} {
		eng := New(Options{Processor: ProcessorViewMat, Parallelism: 2, PipelineDepth: depth})
		eng.MustSubscribe("S//a->x JOIN{x=y, 1000000} S//b->y")
		const goroutines = 8
		const iters = 30
		var matches atomic.Int64
		var wg sync.WaitGroup
		var chmu sync.Mutex
		var chans []<-chan []Match
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var mine []QueryID
				for i := 0; i < iters; i++ {
					id := int64(g*1000 + i + 1)
					switch {
					case g%4 == 0 && i%6 == 0:
						src := fmt.Sprintf("S//a->x JOIN{x=y, %d} S//b->y", 1000+g*100+i)
						qid, err := eng.Subscribe(src)
						if err != nil {
							t.Error(err)
							return
						}
						mine = append(mine, qid)
					case g%4 == 0 && i%6 == 3 && len(mine) > 0:
						if err := eng.Unsubscribe(mine[0]); err != nil {
							t.Error(err)
							return
						}
						mine = mine[1:]
					}
					xml := "<a>k</a>"
					if id%2 == 0 {
						xml = "<b>k</b>"
					}
					d, err := ParseDocument(xml, id, id)
					if err != nil {
						t.Error(err)
						return
					}
					if g%5 == 1 {
						ms := eng.Publish("S", d)
						matches.Add(int64(len(ms)))
					} else {
						ch := eng.PublishAsync("S", d)
						chmu.Lock()
						chans = append(chans, ch)
						chmu.Unlock()
					}
					if i%10 == 7 {
						eng.Flush()
					}
					_ = eng.NumQueries()
					_ = eng.Stats()
				}
			}(g)
		}
		wg.Wait()
		eng.Close()
		for _, ch := range chans {
			matches.Add(int64(len(<-ch)))
		}
		if matches.Load() == 0 {
			t.Errorf("depth=%d: no matches across concurrent async publishes", depth)
		}
	}
}
