package mmqjp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/sym"
)

// Differential tests for the symbol-interning layer. The shared-join plans
// compare join values through dense interned ids (relation.Sym columns, the
// rdocBySym index, sym-keyed view caches); ProcessorSequential evaluates each
// query alone and compares the original strings, so it is a string-keyed
// oracle the interned engines must match byte for byte. Interning is a pure
// representation change — any id that leaked into a comparison, a hash
// partition decision, or a snapshot would show up here as divergence.

// TestInterningDifferential runs the RSS workload through every shared-join
// plan × worker count × partition count and requires per-document output
// byte-identical to the sequential (string-keyed) oracle.
func TestInterningDifferential(t *testing.T) {
	sources, stream := snapshotWorkload(40, 120)

	oracle := New(Options{Processor: ProcessorSequential})
	for _, src := range sources {
		oracle.MustSubscribe(src)
	}
	var want []string
	total := 0
	for _, d := range stream {
		ms := oracle.Publish("S", d)
		total += len(ms)
		want = append(want, renderEngineMatches(ms))
	}
	if total == 0 {
		t.Fatal("oracle produced no matches; the comparison is vacuous")
	}

	for _, plan := range []ProcessorKind{ProcessorMMQJP, ProcessorViewMat} {
		for _, workers := range []int{0, 4} {
			for _, parts := range []int{1, 3} {
				label := fmt.Sprintf("plan=%v workers=%d partitions=%d", plan, workers, parts)
				eng := New(Options{Processor: plan, Parallelism: workers, Partitions: parts})
				for _, src := range sources {
					eng.MustSubscribe(src)
				}
				for di, d := range stream {
					if got := renderEngineMatches(eng.Publish("S", d)); got != want[di] {
						t.Fatalf("%s: doc %d diverges from sequential oracle:\ngot:\n%swant:\n%s",
							label, di+1, got, want[di])
					}
				}
			}
		}
	}
}

// TestSnapshotInterningInvariance proves interned ids never reach snapshot
// bytes. A snapshot taken mid-stream must carry the original join-value
// strings (asserted directly on the raw bytes), and restoring it into a
// process whose interner has moved on — simulated by interning thousands of
// novel strings between snapshot and restore, so every re-interned value
// lands on a different id — must yield a byte-identical re-snapshot and a
// byte-identical continuation of the match stream.
func TestSnapshotInterningInvariance(t *testing.T) {
	sources, stream := snapshotWorkload(40, 120)
	const cut = 60

	live := New(Options{Processor: ProcessorViewMat})
	for _, src := range sources {
		live.MustSubscribe(src)
	}
	live.PublishBatch("S", stream[:cut])

	var store MemStore
	if err := live.SnapshotTo(&store); err != nil {
		t.Fatal(err)
	}
	blob := readStore(t, &store)

	// The snapshot must be strings, not ids: every join value the in-window
	// Rdoc rows hold appears literally in the bytes.
	values := rdocValues(t, blob)
	if len(values) == 0 {
		t.Fatal("no Rdoc rows in window; the string-leak assertion is vacuous")
	}
	for v := range values {
		if !bytes.Contains(blob, []byte(v)) {
			t.Fatalf("snapshot does not contain join value %q — did an interned id leak to disk?", v)
		}
	}

	// Shift the process-global interner so a restored engine cannot get the
	// snapshot-time ids back by accident.
	for i := 0; i < 5000; i++ {
		sym.Intern(fmt.Sprintf("interner-shift-%d", i))
	}

	restored, err := OpenEngineFrom(&store, Options{Processor: ProcessorViewMat})
	if err != nil {
		t.Fatal(err)
	}

	// Re-snapshotting the restored engine reproduces the original bytes:
	// restore rebuilt rows in row order and re-interned under the shifted
	// table, and none of that is visible on disk.
	var store2 MemStore
	if err := restored.SnapshotTo(&store2); err != nil {
		t.Fatal(err)
	}
	if blob2 := readStore(t, &store2); !bytes.Equal(blob, blob2) {
		t.Fatalf("re-snapshot after interner shift differs from original: %d bytes vs %d", len(blob2), len(blob))
	}

	for di, d := range stream[cut:] {
		got := renderEngineMatches(restored.Publish("S", d))
		want := renderEngineMatches(live.Publish("S", d))
		if got != want {
			t.Fatalf("restored engine diverges on doc %d after interner shift:\ngot:\n%swant:\n%s",
				cut+di+1, got, want)
		}
	}
}

func readStore(t *testing.T, s *MemStore) []byte {
	t.Helper()
	rc, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// rdocValues decodes the snapshot blob and collects the distinct join-value
// strings its Rdoc rows carry (across the single-state and routed layouts).
func rdocValues(t *testing.T, blob []byte) map[string]bool {
	t.Helper()
	var snap engineSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	vals := map[string]bool{}
	states := append([]core.StateSnapshot{snap.State}, snap.PartStates...)
	for _, st := range states {
		for _, r := range st.Rdoc {
			vals[r.Str] = true
		}
	}
	return vals
}
