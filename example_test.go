package mmqjp_test

import (
	"bytes"
	"fmt"

	mmqjp "repro"
)

// itemDoc builds a one-item document carrying a single price leaf.
func itemDoc(id int64, price string) *mmqjp.Document {
	b := mmqjp.NewDocumentBuilder(id, id, "item")
	b.Element(0, "price", price)
	return b.Build()
}

// ExampleEngine_PublishAsync publishes through the continuous async ingest
// pipeline: PublishAsync returns immediately with a channel that delivers
// the document's matches once Stage 2 reaches it, in admission order.
func ExampleEngine_PublishAsync() {
	eng := mmqjp.New(mmqjp.Options{Processor: mmqjp.ProcessorViewMat, PipelineDepth: 2})
	defer eng.Close()

	eng.MustSubscribe("S//item->v0[./price->v1] FOLLOWED BY{v1=w1, 100} S//item->w0[./price->w1]")

	ch1 := eng.PublishAsync("S", itemDoc(1, "9.99"))
	ch2 := eng.PublishAsync("S", itemDoc(2, "9.99"))
	eng.Flush() // barrier: both documents fully processed

	for i, ch := range []<-chan []mmqjp.Match{ch1, ch2} {
		for _, m := range <-ch {
			fmt.Printf("doc %d: match left=%d right=%d\n", i+1, m.LeftDoc, m.RightDoc)
		}
	}
	// Output:
	// doc 2: match left=1 right=2
}

// ExampleEngine_Snapshot saves a consistent snapshot of a running engine
// and reopens it: the restored engine resumes every subscription and
// produces exactly the matches the original would have on the stream
// suffix.
func ExampleEngine_Snapshot() {
	eng := mmqjp.New(mmqjp.Options{Processor: mmqjp.ProcessorViewMat})
	eng.MustSubscribe("S//item->v0[./price->v1] FOLLOWED BY{v1=w1, 100} S//item->w0[./price->w1]")
	eng.Publish("S", itemDoc(1, "9.99"))

	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		fmt.Println("snapshot:", err)
		return
	}
	eng.Close()

	restored, err := mmqjp.OpenEngine(&snap, mmqjp.Options{Processor: mmqjp.ProcessorViewMat})
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	defer restored.Close()

	ms := restored.Publish("S", itemDoc(2, "9.99"))
	fmt.Printf("restored %d subscription(s); doc 2 matched doc %d\n",
		restored.NumQueries(), ms[0].LeftDoc)
	// Output:
	// restored 1 subscription(s); doc 2 matched doc 1
}

// ExampleEngine_PlanStats inspects the adaptive planner: queries that share
// a wiring shape collapse onto one canonical template, and the snapshot
// reports its live statistics.
func ExampleEngine_PlanStats() {
	eng := mmqjp.New(mmqjp.Options{Processor: mmqjp.ProcessorViewMat})
	defer eng.Close()

	// Same structural shape twice (leaf names never enter template
	// identity), so both queries share one template.
	eng.MustSubscribe("S//item->v0[./price->v1] FOLLOWED BY{v1=w1, 100} S//item->w0[./price->w1]")
	eng.MustSubscribe("S//item->v0[./qty->v1] FOLLOWED BY{v1=w1, 100} S//item->w0[./qty->w1]")

	for i := 1; i <= 4; i++ {
		eng.Publish("S", itemDoc(int64(i), "9.99"))
	}

	for _, ts := range eng.PlanStats() {
		fmt.Printf("template %d: %d vector groups, %d plan runs\n",
			ts.Template, ts.VecGroups, ts.WitnessRuns+ts.RTRuns)
	}
	// Output:
	// template 0: 2 vector groups, 3 plan runs
}
