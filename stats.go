package mmqjp

import (
	"fmt"
	"time"

	"repro/internal/router"
)

// EngineStats is a structured snapshot of the engine's accumulated
// processing cost — one coherent type backing every stats consumer: the
// String rendering (the wire server's STATS reply and the examples), JSON
// (cmd/mmqjp-bench -json and monitoring pipelines; durations marshal as
// nanoseconds), and the Prometheus /metrics endpoint of cmd/mmqjp-server.
//
// Phase durations follow the paper's Figure-14/15 breakdown and accumulate
// CPU time across Stage-2 workers; Stage1Wall/Stage2Wall are the wall-clock
// counterparts (see core.Stats). In sequential mode only Queries, Documents,
// Matches and CQ (the join time) are populated.
type EngineStats struct {
	// Sequential is true for ProcessorSequential engines, whose cost is
	// reported as a single join time (in CQ).
	Sequential bool `json:"sequential,omitempty"`

	// Partitions is the engine-of-engines partition count (0 for an
	// unpartitioned engine). Partitioned engines report aggregate counters
	// here; Engine.PartitionStats breaks them down per partition.
	Partitions int `json:"partitions,omitempty"`

	Queries   int   `json:"queries"`
	Templates int   `json:"templates"`
	Documents int64 `json:"documents"`
	Matches   int64 `json:"matches"`

	XPath       time.Duration `json:"xpath_ns"`
	Witness     time.Duration `json:"witness_ns"`
	Rvj         time.Duration `json:"rvj_ns"`
	RL          time.Duration `json:"rl_ns"`
	RR          time.Duration `json:"rr_ns"`
	CQ          time.Duration `json:"cq_ns"`
	Maintain    time.Duration `json:"maintain_ns"`
	Stage1Wall  time.Duration `json:"stage1_wall_ns"`
	Stage2Wall  time.Duration `json:"stage2_wall_ns"`
	ExploreWall time.Duration `json:"explore_wall_ns"`

	// Plan-choice counters of the adaptive planner (planner.go).
	WitnessPlans int64 `json:"witness_plans"`
	RTPlans      int64 `json:"rt_plans"`
	Explorations int64 `json:"explorations"`

	// Intra-template split counters (core split.go): Splits is the number
	// of template evaluations partitioned into stealable chunks,
	// SplitChunks the chunks produced, Steals the chunks executed by a
	// worker other than the template's owner.
	Splits      int64 `json:"splits"`
	SplitChunks int64 `json:"split_chunks"`
	Steals      int64 `json:"steals"`

	// DroppedCascades counts derived documents discarded at the
	// composition depth limit (a symptom of a cyclic query network).
	DroppedCascades int64 `json:"dropped_cascades,omitempty"`
}

// String renders the stats in the engine's historical one-line format (the
// exact format Engine.Stats returned when it was a string method).
func (s EngineStats) String() string {
	if s.Sequential {
		return fmt.Sprintf("sequential: %d queries, join time %v", s.Queries, s.CQ)
	}
	parts := ""
	if s.Partitions > 1 {
		parts = fmt.Sprintf("%d partitions, ", s.Partitions)
	}
	return fmt.Sprintf("mmqjp: %s%d queries, %d templates, %d docs, %d matches, xpath %v, witness %v, rvj %v, rl %v, rr %v, cq %v, maintain %v, stage1 %v, stage2 %v, plans witness=%d rt=%d explore=%d, splits %d/%d chunks, steals %d",
		parts, s.Queries, s.Templates, s.Documents, s.Matches,
		s.XPath, s.Witness, s.Rvj, s.RL, s.RR, s.CQ, s.Maintain, s.Stage1Wall, s.Stage2Wall,
		s.WitnessPlans, s.RTPlans, s.Explorations,
		s.Splits, s.SplitChunks, s.Steals)
}

// Stats returns a structured snapshot of processing cost so far. Use
// EngineStats.String for the historical human-readable line, or marshal it
// as JSON for machines.
func (e *Engine) Stats() EngineStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.seq != nil {
		return EngineStats{
			Sequential: true,
			Queries:    e.seq.NumQueries(),
			Documents:  e.seq.NumDocs(),
			Matches:    e.seq.NumMatches(),
			CQ:         e.seq.JoinTime(),
		}
	}
	s := e.proc.Stats()
	return EngineStats{
		Partitions:   partitionsOf(e.proc),
		Queries:      e.proc.NumQueries(),
		Templates:    e.proc.NumTemplates(),
		Documents:    s.Documents,
		Matches:      s.Matches,
		XPath:        s.XPath,
		Witness:      s.Witness,
		Rvj:          s.Rvj,
		RL:           s.RL,
		RR:           s.RR,
		CQ:           s.CQ,
		Maintain:     s.Maintain,
		Stage1Wall:   s.Stage1Wall,
		Stage2Wall:   s.Stage2Wall,
		ExploreWall:  s.ExploreWall,
		WitnessPlans: s.WitnessPlans,
		RTPlans:      s.RTPlans,
		Explorations: s.Explorations,
		Splits:       s.Splits,
		SplitChunks:  s.SplitChunks,
		Steals:       s.Steals,

		DroppedCascades: e.droppedCascades,
	}
}

// partitionsOf reports the router partition count behind a backend (0 for a
// plain processor).
func partitionsOf(b joinBackend) int {
	if r, ok := b.(*router.Router); ok {
		return r.Partitions()
	}
	return 0
}

// PartitionStats breaks the engine's accumulated cost down per partition:
// element i is partition i's own live query/template counts and phase
// counters (engine-level fields — Sequential, Partitions, DroppedCascades —
// are left zero). It returns nil unless the engine was built with
// Options.Partitions > 1; the /metrics endpoint labels these by partition.
func (e *Engine) PartitionStats() []EngineStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.proc.(*router.Router)
	if !ok {
		return nil
	}
	queries, templates := r.PartitionCounts()
	stats := r.PartitionStats()
	out := make([]EngineStats, len(stats))
	for i, s := range stats {
		out[i] = EngineStats{
			Queries:      queries[i],
			Templates:    templates[i],
			Documents:    s.Documents,
			Matches:      s.Matches,
			XPath:        s.XPath,
			Witness:      s.Witness,
			Rvj:          s.Rvj,
			RL:           s.RL,
			RR:           s.RR,
			CQ:           s.CQ,
			Maintain:     s.Maintain,
			Stage1Wall:   s.Stage1Wall,
			Stage2Wall:   s.Stage2Wall,
			ExploreWall:  s.ExploreWall,
			WitnessPlans: s.WitnessPlans,
			RTPlans:      s.RTPlans,
			Explorations: s.Explorations,
			Splits:       s.Splits,
			SplitChunks:  s.SplitChunks,
			Steals:       s.Steals,
		}
	}
	return out
}
