package mmqjp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// Durability: Snapshot serializes everything a restarted process needs to
// resume every subscription with identical output — the subscription set
// (query source text keyed by QueryID, with unsubscribed ids recorded as
// gaps so surviving ids stay stable), the windowed join state (see
// core.StateSnapshot for the consistency argument), the retained documents,
// and the engine's id allocators. OpenEngine rebuilds an engine from it:
// queries are re-registered from source in id order (gaps padded with
// tombstones), then the join state is restored underneath them.
//
// The snapshot is taken at an ingest-pipeline barrier, exactly like
// Subscribe: every document admitted before the call is fully processed and
// no later document has touched the state, so the snapshot is a consistent
// admission-order prefix of the stream. Restoring it and replaying the
// suffix yields byte-identical match output to a process that never
// restarted.

// ErrSequentialSnapshot is returned by Snapshot for ProcessorSequential
// engines, whose per-query baseline processor has no durable form.
var ErrSequentialSnapshot = errors.New("mmqjp: snapshots are not supported in sequential mode")

const (
	snapshotFormat  = "mmqjp-snapshot"
	snapshotVersion = 1
)

type snapQuery struct {
	ID     int64  `json:"id"`
	Source string `json:"source"`
}

type engineSnapshot struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	Queries         []snapQuery         `json:"queries,omitempty"`
	NextDerived     int64               `json:"next_derived"`
	DroppedCascades int64               `json:"dropped_cascades,omitempty"`
	Docs            []core.SnapRetained `json:"docs,omitempty"`
	State           core.StateSnapshot  `json:"state"`

	// Routed engines (Options.Partitions > 1) record the partition count
	// and one join state per partition instead of State; pre-partitioning
	// snapshots simply lack both fields and restore as before.
	Partitions int                  `json:"partitions,omitempty"`
	PartStates []core.StateSnapshot `json:"part_states,omitempty"`
}

// Snapshot writes a consistent snapshot of the engine — subscriptions, join
// state, retained documents, id allocators — to w as JSON. While the
// continuous ingest pipeline is live the snapshot is taken at a pipeline
// barrier (every admitted document processed, none in flight), so it is an
// exact admission-order prefix; otherwise it runs under the writer lock like
// any registration. Returns ErrSequentialSnapshot in sequential mode.
func (e *Engine) Snapshot(w io.Writer) error {
	if e.seq != nil {
		return ErrSequentialSnapshot
	}
	e.ingestMu.Lock()
	ing := e.ing
	if ing == nil {
		defer e.ingestMu.Unlock()
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.snapshot(w)
	}
	e.ingestMu.Unlock()
	var serr error
	if berr := ing.Barrier(func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		serr = e.snapshot(w)
	}); berr != nil {
		// The pipeline was closed concurrently; wait for its drain, then
		// snapshot directly — the drain consumed every admitted document.
		ing.Wait()
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.snapshot(w)
	}
	return serr
}

// snapshot builds and encodes the snapshot. Callers guarantee no pipeline
// work is in flight.
//
//mmqjp:guardedby e.mu
func (e *Engine) snapshot(w io.Writer) error {
	snap := engineSnapshot{
		Format:          snapshotFormat,
		Version:         snapshotVersion,
		NextDerived:     e.nextDerived,
		DroppedCascades: e.droppedCascades,
	}
	// The barrier the caller holds quiesced every partition at the same
	// admission prefix, so a routed export is one consistent cut across all
	// of them.
	switch p := e.proc.(type) {
	case *router.Router:
		snap.Partitions = p.Partitions()
		snap.PartStates = p.ExportStates()
	case *core.Processor:
		snap.State = p.ExportState()
	}
	for id, q := range e.queries {
		if q == nil {
			continue
		}
		snap.Queries = append(snap.Queries, snapQuery{ID: int64(id), Source: q.Source})
	}
	if len(e.docs) > 0 {
		ids := make([]int64, 0, len(e.docs))
		//mmqjp:unordered ids are sorted before the snapshot is emitted
		for id := range e.docs {
			ids = append(ids, int64(id))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			d := e.docs[xmldoc.DocID(id)]
			snap.Docs = append(snap.Docs, core.SnapRetained{
				ID: id, TS: int64(d.Timestamp), XML: d.XMLText(),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// OpenEngine rebuilds an engine from a Snapshot stream. opts plays the same
// role as in New and need not match the snapshotting engine's options —
// processor kind (among the shared-join kinds), parallelism, pipeline depth
// and plan strategy are all output-invisible — except that
// ProcessorSequential cannot host a snapshot, and Options.Partitions must
// match the snapshot's partition count: each partition's join state is
// restored verbatim, and re-sharding a routed state (or splitting an
// unpartitioned one) would require re-deriving which partition owns which
// window tuple — rejected rather than guessed. Every subscription resumes
// under its original QueryID, and publishing the stream suffix produces
// exactly the matches the original engine would have produced.
//
//mmqjp:nolock the engine is under construction and not yet shared
func OpenEngine(r io.Reader, opts Options) (*Engine, error) {
	if opts.Processor == ProcessorSequential {
		return nil, ErrSequentialSnapshot
	}
	var snap engineSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("mmqjp: decode snapshot: %w", err)
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("mmqjp: not a snapshot (format %q)", snap.Format)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("mmqjp: unsupported snapshot version %d", snap.Version)
	}
	switch {
	case snap.Partitions > 1 && opts.Partitions != snap.Partitions:
		return nil, fmt.Errorf("mmqjp: snapshot was taken with %d partitions; open it with Options.Partitions = %d (got %d)",
			snap.Partitions, snap.Partitions, opts.Partitions)
	case snap.Partitions <= 1 && opts.Partitions > 1:
		return nil, fmt.Errorf("mmqjp: snapshot is unpartitioned; open it with Options.Partitions <= 1 (got %d)", opts.Partitions)
	}
	e := New(opts)
	sort.Slice(snap.Queries, func(i, j int) bool { return snap.Queries[i].ID < snap.Queries[j].ID })
	for _, sq := range snap.Queries {
		if sq.ID < int64(len(e.queries)) {
			return nil, fmt.Errorf("mmqjp: snapshot query id %d out of order", sq.ID)
		}
		for int64(len(e.queries)) < sq.ID {
			// An id unsubscribed before the snapshot: burn it so surviving
			// subscriptions land on their original ids.
			e.proc.SkipQueryID()
			e.queries = append(e.queries, nil)
		}
		q, err := xscl.Parse(sq.Source)
		if err != nil {
			return nil, fmt.Errorf("mmqjp: restore query %d: %w", sq.ID, err)
		}
		id, err := e.subscribe(q)
		if err != nil {
			return nil, fmt.Errorf("mmqjp: restore query %d: %w", sq.ID, err)
		}
		if int64(id) != sq.ID {
			return nil, fmt.Errorf("mmqjp: restore query %d landed on id %d", sq.ID, id)
		}
	}
	switch p := e.proc.(type) {
	case *router.Router:
		if err := p.RestoreStates(snap.PartStates); err != nil {
			return nil, err
		}
	case *core.Processor:
		if err := p.RestoreState(snap.State); err != nil {
			return nil, err
		}
	}
	for _, rd := range snap.Docs {
		d, err := ParseDocument(rd.XML, rd.ID, rd.TS)
		if err != nil {
			return nil, fmt.Errorf("mmqjp: restore document %d: %w", rd.ID, err)
		}
		e.docs[d.ID] = d
	}
	e.nextDerived = snap.NextDerived
	e.droppedCascades = snap.DroppedCascades
	return e, nil
}

// MaxDocID returns the largest document id the engine has ever admitted
// into the join state (it survives both GC and snapshot/restore), so id
// allocators — like the server's auto-assigned PUB ids — can resume above
// it after a restart. Zero in sequential mode.
func (e *Engine) MaxDocID() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.proc == nil {
		return 0
	}
	return e.proc.MaxDocID()
}

// Ping verifies pipeline liveness: it round-trips a barrier through the
// continuous ingest pipeline (a no-op when the pipeline has never started)
// and reports an error if the round-trip does not complete within timeout —
// the health signal behind the server's /healthz endpoint.
func (e *Engine) Ping(timeout time.Duration) error {
	done := make(chan struct{})
	go func() {
		e.Flush()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("mmqjp: ingest pipeline unresponsive after %v", timeout)
	}
}
