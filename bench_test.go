// Package mmqjp_test is the external test package for the benchmarks: it
// exercises only internal packages, and keeping it external lets
// internal/bench import the root package (for the shared EngineStats
// schema) without an import cycle through the test binary.
package mmqjp_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 6), plus microbenchmarks of the subsystems the figures exercise.
// The figure benchmarks run reduced-scale sweeps so that `go test -bench=.`
// completes in minutes; the full paper-scale sweeps are produced by
// cmd/mmqjp-bench (see EXPERIMENTS.md for recorded results).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sequential"
	"repro/internal/workload"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/xscl"
	"repro/internal/yfilter"
)

func benchOptions() bench.Options {
	return bench.Options{
		Seed:        1,
		QueryCounts: []int{10, 100, 1000},
		Queries:     300,
		BigQueries:  10000,
		RSSItems:    500,
		SeqRSSItems: 500,
	}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (#templates vs #value joins) by exact
// enumeration over both schemas.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig8 regenerates Figure 8 (simple schema, time vs #queries).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (simple schema, time vs #leaves).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (simple schema, time vs Zipf).
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (complex schema, time vs #queries).
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (complex schema, time vs K).
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13 (complex schema, time vs Zipf).
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14 (view materialization, simple schema).
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Figure 15 (view materialization, complex schema).
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Figure 16 (RSS stream throughput).
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }

// --- Subsystem microbenchmarks ---

// BenchmarkRegisterQueries measures query registration (join graph, minor,
// canonical template, RT insert, pattern registration) on the two-level
// workload.
func BenchmarkRegisterQueries(b *testing.B) {
	c := workload.DefaultTwoLevel()
	rng := rand.New(rand.NewSource(1))
	qs := c.Queries(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewProcessor(core.Config{})
		for _, q := range qs {
			p.MustRegister(q)
		}
	}
	b.ReportMetric(float64(1000), "queries/op")
}

// BenchmarkTemplateExtraction measures the join graph -> minor -> canonical
// form pipeline in isolation.
func BenchmarkTemplateExtraction(b *testing.B) {
	q := xscl.PaperQ1(100)
	g, err := core.BuildJoinGraph(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExtractTemplate(g)
	}
}

// BenchmarkXSCLParse measures the query language front end.
func BenchmarkXSCLParse(b *testing.B) {
	src := xscl.PaperQ1(100).Source
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xscl.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYFilterMatch measures Stage 1: shared NFA matching of a document
// against 200 distinct registered patterns.
func BenchmarkYFilterMatch(b *testing.B) {
	e := yfilter.NewEngine()
	var ids []yfilter.PatternID
	c := workload.DefaultRSS()
	names := c.LeafNames()
	for i := 0; i < 200; i++ {
		src := fmt.Sprintf("S//item->v0[./%s->v1][./%s->v2]",
			names[i%len(names)], names[(i+1+i/5)%len(names)])
		p, err := xpath.ParseBlock(src)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, e.Register(p))
	}
	rng := rand.New(rand.NewSource(2))
	doc := c.Item(rng, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := e.MatchDocument("S", doc)
		for _, id := range ids {
			r.Witnesses(id)
		}
	}
}

// BenchmarkProcessDocumentViewMat measures steady-state per-document cost of
// the full MMQJP pipeline with view materialization on the RSS workload.
func BenchmarkProcessDocumentViewMat(b *testing.B) {
	benchProcessDocument(b, true)
}

// BenchmarkProcessDocumentBasic is the same without view materialization.
func BenchmarkProcessDocumentBasic(b *testing.B) {
	benchProcessDocument(b, false)
}

func benchProcessDocument(b *testing.B, viewMat bool) {
	c := workload.DefaultRSS()
	rng := rand.New(rand.NewSource(1))
	p := core.NewProcessor(core.Config{ViewMaterialization: viewMat})
	for _, q := range c.Queries(rng, 5000) {
		p.MustRegister(q)
	}
	srng := rand.New(rand.NewSource(3))
	warm := c.Stream(srng, 500)
	for _, d := range warm {
		p.Process("S", d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process("S", c.Item(srng, 500+i))
	}
}

// BenchmarkWorkersSweep measures steady-state per-document cost of the full
// pipeline at increasing Stage-2 worker counts on the multi-template RSS
// workload — the scaling benchmark of the template-sharded parallel engine.
func BenchmarkWorkersSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, viewMat := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/viewmat=%v", workers, viewMat)
			b.Run(name, func(b *testing.B) {
				c := workload.DefaultRSS()
				rng := rand.New(rand.NewSource(1))
				p := core.NewProcessor(core.Config{ViewMaterialization: viewMat, Workers: workers})
				for _, q := range c.Queries(rng, 5000) {
					p.MustRegister(q)
				}
				srng := rand.New(rand.NewSource(3))
				for _, d := range c.Stream(srng, 500) {
					p.Process("S", d)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Process("S", c.Item(srng, 500+i))
				}
			})
		}
	}
}

// BenchmarkPipelineSweep measures end-to-end batch ingest (Stage 1 + Stage 2
// + maintenance, wall clock) at increasing pipeline depths on the
// multi-template RSS workload — the scaling benchmark of the batched
// Stage-1/Stage-2 overlap. Depth 1 is the sequential per-document baseline.
func BenchmarkPipelineSweep(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		for _, viewMat := range []bool{false, true} {
			name := fmt.Sprintf("depth=%d/viewmat=%v", depth, viewMat)
			b.Run(name, func(b *testing.B) {
				c := workload.DefaultRSS()
				rng := rand.New(rand.NewSource(1))
				p := core.NewProcessor(core.Config{ViewMaterialization: viewMat, PipelineDepth: depth})
				for _, q := range c.Queries(rng, 5000) {
					p.MustRegister(q)
				}
				srng := rand.New(rand.NewSource(3))
				for _, d := range c.Stream(srng, 500) {
					p.Process("S", d)
				}
				const batch = 32
				next := 500
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					docs := make([]*xmldoc.Document, batch)
					for j := range docs {
						docs[j] = c.Item(srng, next)
						next++
					}
					b.StartTimer()
					p.ProcessBatch("S", docs)
				}
				b.ReportMetric(batch, "docs/op")
			})
		}
	}
}

// BenchmarkPublishersSweep measures sustained end-to-end ingest throughput
// of the continuous async pipeline at increasing concurrent-publisher
// counts on the multi-template RSS workload — the scaling benchmark of the
// persistent Stage-1 pool under concurrent admission. One publisher is the
// serial-admission baseline.
func BenchmarkPublishersSweep(b *testing.B) {
	for _, publishers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("publishers=%d", publishers), func(b *testing.B) {
			c := workload.DefaultRSS()
			rng := rand.New(rand.NewSource(1))
			p := core.NewProcessor(core.Config{ViewMaterialization: true})
			for _, q := range c.Queries(rng, 5000) {
				p.MustRegister(q)
			}
			srng := rand.New(rand.NewSource(3))
			for _, d := range c.Stream(srng, 500) {
				p.Process("S", d)
			}
			ing := core.NewIngest(p, core.IngestConfig{Depth: 4, Workers: 4})
			defer ing.Close()
			const batch = 32
			next := 500
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				docs := make([]*xmldoc.Document, batch)
				for j := range docs {
					docs[j] = c.Item(srng, next)
					next++
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for w := 0; w < publishers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := w; j < len(docs); j += publishers {
							if err := ing.Submit("S", docs[j], nil); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				if err := ing.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(batch, "docs/op")
		})
	}
}

// BenchmarkChurnSweep measures end-to-end ingest throughput under
// subscription churn at increasing per-chunk churn counts on the
// multi-template RSS workload — the lifecycle benchmark of the refcounted
// template machinery (Unregister + reclamation). Churn 0 is the static
// baseline.
func BenchmarkChurnSweep(b *testing.B) {
	for _, churn := range []int{0, 8, 64} {
		for _, viewMat := range []bool{false, true} {
			name := fmt.Sprintf("churn=%d/viewmat=%v", churn, viewMat)
			b.Run(name, func(b *testing.B) {
				c := workload.DefaultRSS()
				srng := rand.New(rand.NewSource(3))
				stream := c.Stream(srng, 400)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					qrng := rand.New(rand.NewSource(1))
					p := core.NewProcessor(core.Config{ViewMaterialization: viewMat})
					var live []core.QueryID
					for _, q := range c.Queries(qrng, 1000) {
						live = append(live, p.MustRegister(q))
					}
					const chunk = 50
					for j := 0; j < len(stream); j += chunk {
						end := j + chunk
						if end > len(stream) {
							end = len(stream)
						}
						p.ProcessBatch("S", stream[j:end])
						if churn > 0 {
							for _, q := range c.Queries(qrng, churn) {
								live = append(live, p.MustRegister(q))
							}
							for _, id := range live[:churn] {
								p.MustUnregister(id)
							}
							live = live[churn:]
						}
					}
				}
				b.ReportMetric(float64(len(stream)), "docs/op")
			})
		}
	}
}

// BenchmarkSequentialProcessDocument is the per-query baseline counterpart.
func BenchmarkSequentialProcessDocument(b *testing.B) {
	c := workload.DefaultRSS()
	rng := rand.New(rand.NewSource(1))
	p := sequential.NewProcessor()
	for _, q := range c.Queries(rng, 5000) {
		p.MustRegister(q)
	}
	srng := rand.New(rand.NewSource(3))
	for _, d := range c.Stream(srng, 500) {
		p.Process("S", d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process("S", c.Item(srng, 500+i))
	}
}

// BenchmarkViewCacheAblation quantifies the Section-5 cache: steady-state
// document cost with an unbounded cache, a tight cache, and none.
func BenchmarkViewCacheAblation(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{
		{"unbounded", core.Config{ViewMaterialization: true}},
		{"capacity64", core.Config{ViewMaterialization: true, ViewCacheCapacity: 64}},
		{"nocache", core.Config{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := workload.DefaultRSS()
			rng := rand.New(rand.NewSource(1))
			p := core.NewProcessor(tc.cfg)
			for _, q := range c.Queries(rng, 2000) {
				p.MustRegister(q)
			}
			srng := rand.New(rand.NewSource(3))
			for _, d := range c.Stream(srng, 300) {
				p.Process("S", d)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Process("S", c.Item(srng, 300+i))
			}
		})
	}
}

// BenchmarkPlanningSweep measures steady-state throughput of the three
// plan modes (forced witness, forced RT-driven, adaptive PlanAuto with
// exploration) on the two opposed planning workloads of the "planning"
// experiment: the witness-favoring RSS stream and the RT-favoring
// colliding two-level stream.
func BenchmarkPlanningSweep(b *testing.B) {
	rssc := workload.DefaultRSS()
	rssQueries := rssc.Queries(rand.New(rand.NewSource(1)), 300)
	rssStream := rssc.Stream(rand.New(rand.NewSource(8)), 300)

	tl := workload.TwoLevel{N: 4, Theta: 0.8, Window: 12}
	tlQueries := tl.Queries(rand.New(rand.NewSource(1)), 300)
	colliding := bench.CollidingStream(tl.N, 60)

	workloads := []struct {
		name   string
		qs     []*xscl.Query
		stream []*xmldoc.Document
	}{
		{"rss", rssQueries, rssStream},
		{"colliding", tlQueries, colliding},
	}
	plans := []struct {
		name    string
		plan    core.PlanKind
		explore int
	}{
		{"witness", core.PlanWitness, 0},
		{"rt", core.PlanRTDriven, 0},
		{"auto", core.PlanAuto, 64},
	}
	for _, wl := range workloads {
		for _, pl := range plans {
			b.Run(wl.name+"/"+pl.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p := core.NewProcessor(core.Config{
						ViewMaterialization: true, Plan: pl.plan,
						PlanExploreEvery: pl.explore, PlanExploreSeed: 1,
					})
					for _, q := range wl.qs {
						p.MustRegister(q)
					}
					for _, d := range wl.stream {
						p.Process("S", d)
					}
				}
				b.ReportMetric(float64(len(wl.stream)), "docs/op")
			})
		}
	}
}
