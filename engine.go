package mmqjp

import (
	"encoding/xml"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/sequential"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// ProcessorKind selects the join processing strategy.
type ProcessorKind int

const (
	// ProcessorMMQJP is template-based multi-query join processing
	// (Algorithm 1 of the paper).
	ProcessorMMQJP ProcessorKind = iota
	// ProcessorViewMat is MMQJP with the Section-5 view materialization
	// and per-string view cache (Algorithm 4). This is the recommended
	// production mode.
	ProcessorViewMat
	// ProcessorSequential is the one-query-at-a-time baseline; it exists
	// for benchmarking and differential testing.
	ProcessorSequential
)

// Plan selects the Stage-2 physical plan for template conjunctive queries.
type Plan int

const (
	// PlanAuto chooses per template per document with the adaptive
	// statistics-driven planner: per-template cost statistics collected
	// during evaluation calibrate the cost model online, and (with
	// PlanExploreEvery > 0) occasional exploration keeps both plans'
	// estimates honest. This is the default and the recommended
	// production mode.
	PlanAuto Plan = iota
	// PlanWitness forces the witness-driven plan (join outward from the
	// current document's value-join pairs) — ablations and tests.
	PlanWitness
	// PlanRTDriven forces the RT-driven plan (iterate the query
	// relation's distinct variable vectors with index probes) —
	// ablations and tests.
	PlanRTDriven
)

// ParsePlan parses a plan name as accepted by the server's -plan flag:
// "auto", "witness", or "rt" (also "rtdriven"/"rt-driven").
func ParsePlan(s string) (Plan, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return PlanAuto, nil
	case "witness":
		return PlanWitness, nil
	case "rt", "rtdriven", "rt-driven":
		return PlanRTDriven, nil
	}
	return PlanAuto, fmt.Errorf("mmqjp: unknown plan %q (want auto, witness or rt)", s)
}

// Options configures an Engine.
type Options struct {
	// Processor selects the join strategy (default ProcessorViewMat).
	Processor ProcessorKind
	// Plan forces the per-template physical plan (default PlanAuto, the
	// adaptive chooser). Match output is byte-identical for every
	// setting; only cost differs. Ignored by ProcessorSequential.
	Plan Plan
	// PlanExploreEvery enables PlanAuto's exploration policy: roughly one
	// in this many per-template plan decisions additionally runs the
	// non-chosen plan, timed for cost-model calibration only (its matches
	// are discarded, so match output is unchanged). 0 disables
	// exploration. Ignored for forced plans.
	PlanExploreEvery int
	// PlanExploreSeed seeds the deterministic per-template exploration
	// sampler (0 selects 1).
	PlanExploreSeed int64
	// ViewCacheCapacity bounds the number of cached view slices
	// (0 = unbounded); only meaningful for ProcessorViewMat.
	ViewCacheCapacity int
	// RetainDocuments keeps processed documents in memory so that match
	// outputs can be rendered as XML with Engine.OutputXML. Defaults to
	// false: high-volume deployments usually only need match metadata.
	RetainDocuments bool
	// EnableComposition activates the PUBLISH clause: a match of a query
	// with PUBLISH <name> is converted into its default output document
	// (a result root with the two matched block subtrees) and processed
	// as a new event on stream <name>, so queries can consume other
	// queries' outputs. Implies RetainDocuments. Derived documents
	// cascade up to MaxCompositionDepth levels.
	EnableComposition bool
	// Parallelism sets the number of worker goroutines used for Stage-2
	// template evaluation inside each Publish (0 or 1 = sequential).
	// Match output is identical for every setting. Ignored by
	// ProcessorSequential, which exists for benchmarking only.
	Parallelism int
	// Partitions selects the engine-of-engines router tier: with N > 1 the
	// engine owns N independent join processors, assigns each subscription
	// to one by hash of its canonical template signature, fans every
	// published document to all of them, and merges the match streams
	// under the canonical total order — match output is byte-identical to
	// an unpartitioned engine for every N. Each partition gets the full
	// per-partition configuration (Parallelism workers, plan choice, view
	// cache...). 0 or 1 selects the single-processor engine. Ignored by
	// ProcessorSequential. Snapshots record the partition count and must
	// be reopened with the same value (see OpenEngine).
	Partitions int
	// SplitThreshold sets the cost-unit EWMA above which a hot template's
	// Stage-2 evaluation is split into chunks stealable by idle workers,
	// so one mega-template cannot serialize a Publish on a single worker
	// (see TUNING.md). 0 selects the built-in default, negative disables
	// splitting. Only meaningful with Parallelism > 1; match output is
	// identical for every setting.
	SplitThreshold float64
	// PipelineDepth bounds how many upcoming documents of a PublishBatch
	// call may have Stage 1 (XML parse, shared-NFA match, witness
	// construction) running ahead of the in-order Stage-2 consumption
	// (0 or 1 = fully sequential). Match output is identical for every
	// depth; per-Publish calls are unaffected. Ignored by
	// ProcessorSequential.
	PipelineDepth int
	// OnDocument, when set, is called once per processed document with its
	// hot-path wall times, after the document has been fully consumed —
	// the hook observability wiring (histograms) hangs on. It runs on the
	// document's consuming goroutine and must be fast and non-blocking.
	// Ignored by ProcessorSequential.
	OnDocument func(DocTimings)
}

// DocTimings is one document's hot-path wall-time breakdown, delivered to
// Options.OnDocument.
type DocTimings = core.DocTimings

// MaxCompositionDepth bounds cascading through PUBLISH streams, guarding
// against cyclic query networks.
const MaxCompositionDepth = 16

// QueryID identifies a subscription.
type QueryID int64

// Match is one query result delivered to the subscriber: the query that
// fired and the two documents (by id and timestamp) that satisfied its join.
// For single-block queries both sides refer to the same document.
type Match struct {
	Query   QueryID
	Publish string // the query's PUBLISH stream name, if any

	LeftDoc, RightDoc int64
	LeftTS, RightTS   int64

	leftRoot, rightRoot xmldoc.NodeID
}

// Engine is an XML publish/subscribe engine: register XSCL subscriptions,
// publish documents, receive matches, unsubscribe. All methods are safe for
// concurrent use: Subscribe, Unsubscribe and Publish serialize against each
// other (documents enter the join state one at a time — parallelism lives
// inside a Publish, across query templates; see Options.Parallelism), while
// read-only accessors only exclude writers. PublishAsync additionally
// overlaps the document-local Stage-1 work of concurrently admitted
// documents through a persistent ingest pipeline (see PublishAsync).
// joinBackend is the join-processing surface the facade drives: a single
// *core.Processor, or an *internal/router.Router when Options.Partitions
// selects the engine-of-engines tier. Both speak core.QueryID (the router's
// ids are global and dense in registration order, exactly like a
// processor's), and both implement core.Backend — so the continuous ingest
// pipeline and its barriers drive either one unchanged, which makes an
// Ingest.Barrier over a routed backend a router-wide barrier for free.
type joinBackend interface {
	core.Backend
	Register(q *xscl.Query) (core.QueryID, error)
	Unregister(id core.QueryID) error
	SkipQueryID()
	Process(stream string, d *xmldoc.Document) []core.Match
	ProcessBatchFunc(stream string, docs []*xmldoc.Document, deliver func(i int, matches []core.Match))
	NumQueries() int
	NumTemplates() int
	Stats() core.Stats
	PlanStats() []core.TemplatePlanStats
	MaxDocID() int64
}

type Engine struct {
	mu   sync.RWMutex
	opts Options
	proc joinBackend           // nil when Sequential
	seq  *sequential.Processor // nil otherwise

	// ingestMu guards the lazily started continuous ingest pipeline. It is
	// also held across direct (pipeline-less) Subscribe/Unsubscribe calls,
	// so the pipeline cannot spin up — and start Stage-1 workers that read
	// the registration structures — in the middle of a registration.
	ingestMu sync.Mutex
	//mmqjp:guardedby e.ingestMu
	ing *core.Ingest

	// queries is indexed by QueryID; Unsubscribe leaves a nil slot so ids
	// stay stable across churn. numQueries counts live subscriptions.
	//
	//mmqjp:guardedby e.mu
	queries []*xscl.Query
	//mmqjp:guardedby e.mu
	numQueries int
	//mmqjp:guardedby e.mu
	docs map[xmldoc.DocID]*xmldoc.Document

	// nextDerived allocates ids for documents synthesized by query
	// composition, well away from caller-assigned ids.
	//
	//mmqjp:guardedby e.mu
	nextDerived int64
	// droppedCascades counts derived documents discarded at
	// MaxCompositionDepth (a symptom of a cyclic query network).
	//
	//mmqjp:guardedby e.mu
	droppedCascades int64
}

// New creates an engine.
func New(opts Options) *Engine {
	if opts.EnableComposition {
		opts.RetainDocuments = true
	}
	e := &Engine{opts: opts, docs: map[xmldoc.DocID]*xmldoc.Document{}, nextDerived: 1 << 40}
	switch opts.Processor {
	case ProcessorSequential:
		e.seq = sequential.NewProcessor()
	default:
		cc := core.Config{
			ViewMaterialization: opts.Processor == ProcessorViewMat,
			ViewCacheCapacity:   opts.ViewCacheCapacity,
			RetainDocuments:     opts.RetainDocuments,
			Plan:                core.PlanKind(opts.Plan),
			PlanExploreEvery:    opts.PlanExploreEvery,
			PlanExploreSeed:     opts.PlanExploreSeed,
			Workers:             opts.Parallelism,
			SplitThreshold:      opts.SplitThreshold,
			PipelineDepth:       opts.PipelineDepth,
			OnDocument:          opts.OnDocument,
		}
		if opts.Partitions > 1 {
			e.proc = router.New(router.Config{Partitions: opts.Partitions, Core: cc})
		} else {
			e.proc = core.NewProcessor(cc)
		}
	}
	return e
}

// Subscribe parses and registers an XSCL query, returning its id. While the
// continuous ingest pipeline is live (see PublishAsync), registration runs
// at a pipeline barrier: every document admitted before the Subscribe is
// fully processed first, and no later document starts Stage 1 until the
// registration completes — so a subscription's position in the admission
// order is exact, at the cost of one pipeline drain.
func (e *Engine) Subscribe(src string) (QueryID, error) {
	q, err := xscl.Parse(src)
	if err != nil {
		return 0, err
	}
	e.ingestMu.Lock()
	ing := e.ing
	if ing == nil {
		// No pipeline: register directly. ingestMu is held across the
		// registration so a concurrent first PublishAsync cannot start
		// Stage-1 workers mid-registration.
		defer e.ingestMu.Unlock()
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.subscribe(q)
	}
	e.ingestMu.Unlock()
	var id QueryID
	var serr error
	if berr := ing.Barrier(func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		id, serr = e.subscribe(q)
	}); berr != nil {
		// The pipeline was closed concurrently; wait for its drain so no
		// Stage-1 work is in flight, then register directly.
		ing.Wait()
		e.mu.Lock()
		defer e.mu.Unlock()
		return e.subscribe(q)
	}
	return id, serr
}

// MustSubscribe is Subscribe, panicking on error (examples, tests).
func (e *Engine) MustSubscribe(src string) QueryID {
	id, err := e.Subscribe(src)
	if err != nil {
		panic(err)
	}
	return id
}

// subscribe registers one parsed query under the next QueryID.
//
//mmqjp:guardedby e.mu
func (e *Engine) subscribe(q *xscl.Query) (QueryID, error) {
	var id QueryID
	if e.seq != nil {
		sid, err := e.seq.Register(q)
		if err != nil {
			return 0, err
		}
		id = QueryID(sid)
	} else {
		cid, err := e.proc.Register(q)
		if err != nil {
			return 0, err
		}
		id = QueryID(cid)
	}
	e.queries = append(e.queries, q)
	e.numQueries++
	return id, nil
}

// Unsubscribe removes a subscription. The join processor reclaims everything
// the query no longer shares with surviving subscriptions — refcounted
// canonical templates, per-shard query relations and indexes, pattern
// extraction demands, and (when the last subscription leaves) the whole join
// state and view caches. Matches already delivered are unaffected, and ids
// are never reused. Unsubscribing a PUBLISH query stops its composition
// cascade: downstream subscriptions on its output stream simply see no
// further derived documents, while an unsubscribed downstream query stops
// receiving cascaded matches — Unsubscribe serializes with Publish, so a
// cascade is never torn mid-document. Returns an error for an unknown or
// already-unsubscribed id. Like Subscribe, Unsubscribe runs at a pipeline
// barrier while the continuous ingest pipeline is live: documents admitted
// before it keep their matches, documents admitted after it see the query
// gone.
func (e *Engine) Unsubscribe(id QueryID) error {
	e.ingestMu.Lock()
	ing := e.ing
	if ing == nil {
		defer e.ingestMu.Unlock()
		return e.unsubscribe(id)
	}
	e.ingestMu.Unlock()
	var err error
	if berr := ing.Barrier(func() { err = e.unsubscribe(id) }); berr != nil {
		ing.Wait()
		return e.unsubscribe(id)
	}
	return err
}

func (e *Engine) unsubscribe(id QueryID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id < 0 || int(id) >= len(e.queries) || e.queries[id] == nil {
		return fmt.Errorf("mmqjp: unknown subscription %d", id)
	}
	if e.seq != nil {
		if err := e.seq.Unregister(sequential.QueryID(id)); err != nil {
			return err
		}
	} else {
		if err := e.proc.Unregister(core.QueryID(id)); err != nil {
			return err
		}
	}
	e.queries[id] = nil
	e.numQueries--
	if e.numQueries == 0 {
		// The processor reclaimed its join state; release the retained
		// documents too, so a drained engine holds no per-document
		// memory. OutputXML for matches delivered before the drain
		// reports ok=false from here on.
		e.docs = map[xmldoc.DocID]*xmldoc.Document{}
	}
	return nil
}

// Query returns the source text of a subscription ("" once unsubscribed).
func (e *Engine) Query(id QueryID) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if id < 0 || int(id) >= len(e.queries) || e.queries[id] == nil {
		return ""
	}
	return e.queries[id].Source
}

// NumQueries returns the number of live subscriptions.
func (e *Engine) NumQueries() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.numQueries
}

// Subscriptions returns the ids of all live subscriptions in ascending
// order — what a durable server iterates to rebuild its ownership table
// after OpenEngine.
func (e *Engine) Subscriptions() []QueryID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]QueryID, 0, e.numQueries)
	for id, q := range e.queries {
		if q != nil {
			out = append(out, QueryID(id))
		}
	}
	return out
}

// NumTemplates returns the number of distinct query templates maintained by
// the join processor (0 in sequential mode, where there is no sharing).
func (e *Engine) NumTemplates() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.proc == nil {
		return 0
	}
	return e.proc.NumTemplates()
}

// Publish processes a document on the named stream and returns the matches
// it triggered, in deterministic order. With composition enabled, matches of
// PUBLISH queries cascade into their output streams and the derived matches
// are included in the result. Concurrent Publish calls are serialized;
// documents enter the join state in lock-acquisition order.
//
// Publish is shorthand for PublishDoc(stream, d); the PublishDoc options
// cover batches, raw XML, and pipeline admission.
func (e *Engine) Publish(stream string, d *Document) []Match {
	return e.publishOne(stream, d)
}

func (e *Engine) publishOne(stream string, d *Document) []Match {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.publish(stream, d, 0)
}

// publish processes one document and runs the composition cascade.
//
//mmqjp:guardedby e.mu
func (e *Engine) publish(stream string, d *Document, depth int) []Match {
	if e.opts.RetainDocuments {
		e.docs[d.ID] = d
	}
	var out []Match
	if e.seq != nil {
		for _, m := range e.seq.Process(stream, d) {
			out = append(out, Match{
				Query:   QueryID(m.Query),
				Publish: e.queries[m.Query].Publish,
				LeftDoc: int64(m.LeftDoc), RightDoc: int64(m.RightDoc),
				LeftTS: int64(m.LeftTS), RightTS: int64(m.RightTS),
				leftRoot: m.LeftRoot, rightRoot: m.RightRoot,
			})
		}
	} else {
		out = e.convertMatches(e.proc.Process(stream, d))
	}
	return e.cascade(out, depth)
}

// convertMatches lifts core matches into the public Match type, resolving
// each query's PUBLISH stream (it reads e.queries).
//
//mmqjp:guardedby e.mu
func (e *Engine) convertMatches(cms []core.Match) []Match {
	var out []Match
	for _, m := range cms {
		out = append(out, Match{
			Query:   QueryID(m.Query),
			Publish: e.queries[m.Query].Publish,
			LeftDoc: int64(m.LeftDoc), RightDoc: int64(m.RightDoc),
			LeftTS: int64(m.LeftTS), RightTS: int64(m.RightTS),
			leftRoot: m.LeftRoot, rightRoot: m.RightRoot,
		})
	}
	return out
}

// cascade republishes each PUBLISH match of out as a derived document and
// appends the resulting matches. Derived matches cascade recursively inside
// their own publish call, so only the original slice is scanned here.
//
//mmqjp:guardedby e.mu
func (e *Engine) cascade(out []Match, depth int) []Match {
	if !e.opts.EnableComposition {
		return out
	}
	for _, m := range out {
		if m.Publish == "" {
			continue
		}
		if depth >= MaxCompositionDepth {
			e.droppedCascades++
			continue
		}
		derived, ok := e.deriveDocument(m)
		if !ok {
			continue
		}
		out = append(out, e.publish(m.Publish, derived, depth+1)...)
	}
	return out
}

// PublishBatch processes docs on stream in arrival order and returns each
// document's matches — exactly what len(docs) consecutive Publish calls
// would return, for every Options.PipelineDepth. With PipelineDepth > 1 the
// Stage-1 work (shared-NFA match, witness construction) of up to
// PipelineDepth upcoming documents runs in worker goroutines while Stage 2,
// the state merge, and window GC are applied strictly in arrival order, so
// join state and window semantics are identical to the sequential path.
// Like Publish, the whole batch is serialized against other writers.
//
// PublishBatch is shorthand for PublishDoc(stream, nil, WithDocs(docs...)).
func (e *Engine) PublishBatch(stream string, docs []*Document) [][]Match {
	return e.publishMany(stream, docs)
}

func (e *Engine) publishMany(stream string, docs []*Document) [][]Match {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]Match, len(docs))
	if e.seq != nil {
		for i, d := range docs {
			out[i] = e.publish(stream, d, 0)
		}
		return out
	}
	if e.opts.RetainDocuments {
		for _, d := range docs {
			e.docs[d.ID] = d
		}
	}
	e.proc.ProcessBatchFunc(stream, docs, func(i int, cms []core.Match) {
		// Composition cascades run here, between batch documents, at the
		// same point the per-document Publish path would run them; the
		// derived documents' Process calls are safe alongside the
		// pipeline's Stage-1 workers, which never touch the join state.
		out[i] = e.cascade(e.convertMatches(cms), 0)
	})
	return out
}

// PublishAsync admits a document into the engine's continuous ingest
// pipeline and returns a buffered channel that receives the document's
// matches (exactly one send, then a close) once it has been fully
// processed. Admission order — the order concurrent PublishAsync calls are
// admitted — is the serial document order: per-document match output is
// byte-identical to calling Publish in that order, for every
// Parallelism/PipelineDepth setting. Unlike Publish, concurrent publishers
// do not serialize the whole call: the document-local Stage-1 work (NFA
// match, witness construction) of up to PipelineDepth+1 admitted documents
// runs concurrently in a persistent worker pool while Stage 2, the state
// merge and window GC are applied strictly in admission order, under the
// same lock a serial Publish holds. PublishAsync blocks while the pipeline
// is at its admission bound (backpressure).
//
// The pipeline starts lazily on the first call and runs until Close.
// Composition cascades fire before delivery, exactly as in Publish, and the
// derived matches are included in the delivered slice. With
// ProcessorSequential (no Stage-1/Stage-2 split), or after Close, the
// document is published synchronously and the channel is already resolved
// on return.
//
// PublishAsync is shorthand for PublishDoc(stream, d, WithAsync()).
func (e *Engine) PublishAsync(stream string, d *Document) <-chan []Match {
	return e.publishAsync(stream, d)
}

func (e *Engine) publishAsync(stream string, d *Document) <-chan []Match {
	out := make(chan []Match, 1)
	if e.proc == nil {
		out <- e.Publish(stream, d)
		close(out)
		return out
	}
	err := e.ingestPipeline().Submit(stream, d, func(cms []core.Match) {
		// Runs on the pipeline coordinator under e.mu (write), in
		// admission order — the same critical section a serial Publish
		// holds for this document.
		//mmqjp:guardedby e.mu
		if e.opts.RetainDocuments {
			e.docs[d.ID] = d
		}
		out <- e.cascade(e.convertMatches(cms), 0)
		close(out)
	})
	if err != nil {
		// The pipeline was closed: degrade to a synchronous publish.
		out <- e.Publish(stream, d)
		close(out)
	}
	return out
}

// ingestPipeline returns the continuous ingest pipeline, starting it on
// first use. The engine's writer lock is the pipeline's consume lock, so
// asynchronous consumption excludes readers and synchronous writers exactly
// like a serial Publish.
func (e *Engine) ingestPipeline() *core.Ingest {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.ing == nil {
		e.ing = core.NewIngest(e.proc, core.IngestConfig{Depth: e.opts.PipelineDepth, Lock: &e.mu})
	}
	return e.ing
}

// IngestQueueDepth reports the number of documents admitted into the
// continuous ingest pipeline but not yet consumed — an instantaneous sample
// of the admission queue (0 when the pipeline has never started).
func (e *Engine) IngestQueueDepth() int {
	e.ingestMu.Lock()
	ing := e.ing
	e.ingestMu.Unlock()
	if ing == nil {
		return 0
	}
	return ing.QueueDepth()
}

// IngestStalls reports how many PublishAsync admissions have blocked on a
// full admission queue (backpressure) since the pipeline started.
func (e *Engine) IngestStalls() int64 {
	e.ingestMu.Lock()
	ing := e.ing
	e.ingestMu.Unlock()
	if ing == nil {
		return 0
	}
	return ing.Stalls()
}

// Flush blocks until every document admitted by PublishAsync before the
// call has been fully processed and its matches delivered. It is a no-op
// when the pipeline has never started or is closed.
func (e *Engine) Flush() {
	e.ingestMu.Lock()
	ing := e.ing
	e.ingestMu.Unlock()
	if ing == nil {
		return
	}
	if err := ing.Flush(); err != nil {
		ing.Wait()
	}
}

// Close drains and permanently stops the continuous ingest pipeline:
// documents already admitted are fully processed and delivered first.
// Every other engine method keeps working — PublishAsync itself degrades to
// synchronous per-call delivery. Close is idempotent, and a no-op when
// PublishAsync was never used.
func (e *Engine) Close() {
	e.ingestMu.Lock()
	ing := e.ing
	e.ingestMu.Unlock()
	if ing != nil {
		ing.Close()
	}
}

// XMLEvent is one document of a PublishXMLBatch: the raw XML text plus the
// document id and timestamp the corresponding PublishXML call would receive.
type XMLEvent struct {
	XML       string
	DocID     int64
	Timestamp int64
}

// PublishXMLBatch parses a batch of XML documents and publishes them in
// order via PublishBatch. Parsing runs concurrently (bounded by
// Options.PipelineDepth) before the batch enters the engine; a parse error
// on any document fails the whole batch with a *DocumentError without
// publishing anything.
//
// PublishXMLBatch is shorthand for
// PublishDoc(stream, nil, WithXMLEvents(events...)).
func (e *Engine) PublishXMLBatch(stream string, events []XMLEvent) ([][]Match, error) {
	res, err := e.PublishDoc(stream, nil, WithXMLEvents(events...))
	if err != nil {
		return nil, err
	}
	if res.Batches == nil {
		res.Batches = make([][]Match, 0)
	}
	return res.Batches, nil
}

// DroppedCascades reports derived documents discarded at the composition
// depth limit since the engine was created.
func (e *Engine) DroppedCascades() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.droppedCascades
}

// deriveDocument builds the default SELECT * output document of a match: a
// result root whose children are copies of the two matched subtrees. The
// subtrees are rooted at the template side roots — equal to the paper's
// block roots whenever the block root is the least common ancestor of the
// value-joined variables (always true for queries with two or more
// predicates on different branches); for single-predicate queries the
// output carries the joined leaf's subtree. The derived document's
// timestamp is the triggering (later) event time.
//
//mmqjp:guardedby e.mu
func (e *Engine) deriveDocument(m Match) (*Document, bool) {
	ld := e.docs[xmldoc.DocID(m.LeftDoc)]
	rd := e.docs[xmldoc.DocID(m.RightDoc)]
	if ld == nil || rd == nil {
		return nil, false
	}
	ts := m.RightTS
	if m.LeftTS > ts {
		ts = m.LeftTS
	}
	e.nextDerived++
	b := xmldoc.NewBuilder(xmldoc.DocID(e.nextDerived), xmldoc.Timestamp(ts), "result")
	copySubtree(b, 0, ld, m.leftRoot)
	if m.LeftDoc != m.RightDoc || m.leftRoot != m.rightRoot {
		copySubtree(b, 0, rd, m.rightRoot)
	}
	return b.Build(), true
}

// copySubtree copies the subtree of src rooted at node under parent in b.
func copySubtree(b *xmldoc.Builder, parent xmldoc.NodeID, src *xmldoc.Document, node xmldoc.NodeID) {
	n := src.Node(node)
	if n.Kind == xmldoc.AttributeNode {
		b.Attribute(parent, n.Name, src.StringValue(node))
		return
	}
	id := b.Element(parent, n.Name, src.Text(node))
	for _, c := range n.Children {
		copySubtree(b, id, src, c)
	}
}

// PublishXML parses an XML document and publishes it. A parse failure is
// reported as a *DocumentError, the same contract as PublishXMLBatch.
//
// PublishXML is shorthand for
// PublishDoc(stream, nil, WithXML(xmlText, docID, timestamp)).
func (e *Engine) PublishXML(stream, xmlText string, docID, timestamp int64) ([]Match, error) {
	res, err := e.PublishDoc(stream, nil, WithXML(xmlText, docID, timestamp))
	if err != nil {
		return nil, err
	}
	return res.Matches(), nil
}

// OutputXML renders the default SELECT * output document of a match: a new
// root whose two subtrees are the matched block roots from the two joined
// documents. It requires Options.RetainDocuments; otherwise ok is false.
func (e *Engine) OutputXML(m Match) (xml string, ok bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ld := e.docs[xmldoc.DocID(m.LeftDoc)]
	rd := e.docs[xmldoc.DocID(m.RightDoc)]
	if ld == nil || rd == nil {
		return "", false
	}
	var sb strings.Builder
	sb.WriteString("<result>")
	sb.WriteString(subtreeXML(ld, m.leftRoot))
	if m.LeftDoc != m.RightDoc || m.leftRoot != m.rightRoot {
		sb.WriteString(subtreeXML(rd, m.rightRoot))
	}
	sb.WriteString("</result>")
	return sb.String(), true
}

// TemplatePlanStats is one query template's adaptive-planner snapshot: the
// collected runtime statistics (witness fan-out, vector-group cardinality
// and probe volume, calibrated per-unit plan costs) and run counters. See
// Engine.PlanStats.
type TemplatePlanStats = core.TemplatePlanStats

// PlanStats returns the adaptive planner's per-template statistics for the
// live query templates, in template order: the observed witness fan-out and
// index-probe EWMAs, the calibrated per-unit cost of each physical plan,
// and how often each plan ran (including exploration runs). It returns nil
// in sequential mode, where there are no templates.
func (e *Engine) PlanStats() []TemplatePlanStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.proc == nil {
		return nil
	}
	return e.proc.PlanStats()
}

// Document is a parsed XML document with stream metadata. Construct one with
// ParseDocument or NewDocumentBuilder.
type Document = xmldoc.Document

// DocumentBuilder constructs documents programmatically.
type DocumentBuilder = xmldoc.Builder

// ParseDocument parses XML text into a publishable document.
func ParseDocument(xmlText string, docID, timestamp int64) (*Document, error) {
	return xmldoc.ParseString(xmlText, xmldoc.DocID(docID), xmldoc.Timestamp(timestamp))
}

// NewDocumentBuilder returns a builder for a document with the given root
// element.
func NewDocumentBuilder(docID, timestamp int64, rootName string) *DocumentBuilder {
	return xmldoc.NewBuilder(xmldoc.DocID(docID), xmldoc.Timestamp(timestamp), rootName)
}

// subtreeXML serializes the subtree rooted at id.
func subtreeXML(d *xmldoc.Document, id xmldoc.NodeID) string {
	var sb strings.Builder
	writeSubtree(&sb, d, id)
	return sb.String()
}

// writeSubtree emits well-formed XML: text and attribute values are
// XML-escaped (xml.EscapeText escapes the quote characters too, so it is
// safe inside double-quoted attribute values) — a value like the paper's
// "Scripting &amp; Programming" must round-trip through an XML parser.
func writeSubtree(sb *strings.Builder, d *xmldoc.Document, id xmldoc.NodeID) {
	n := d.Node(id)
	if n.Kind == xmldoc.AttributeNode {
		sb.WriteString(`<attr name="`)
		xmlEscape(sb, n.Name)
		sb.WriteString(`">`)
		xmlEscape(sb, d.StringValue(id))
		sb.WriteString("</attr>")
		return
	}
	sb.WriteByte('<')
	sb.WriteString(n.Name)
	for _, c := range n.Children {
		cn := d.Node(c)
		if cn.Kind == xmldoc.AttributeNode {
			sb.WriteByte(' ')
			sb.WriteString(cn.Name)
			sb.WriteString(`="`)
			xmlEscape(sb, d.StringValue(c))
			sb.WriteByte('"')
		}
	}
	sb.WriteByte('>')
	if d.IsLeaf(id) {
		xmlEscape(sb, d.StringValue(id))
	}
	for _, c := range n.Children {
		if d.Node(c).Kind == xmldoc.ElementNode {
			writeSubtree(sb, d, c)
		}
	}
	sb.WriteString("</")
	sb.WriteString(n.Name)
	sb.WriteByte('>')
}

// xmlEscape writes s XML-escaped. strings.Builder never returns a write
// error, so neither can xml.EscapeText.
func xmlEscape(sb *strings.Builder, s string) {
	_ = xml.EscapeText(sb, []byte(s))
}
