package mmqjp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/workload"
)

// TestEngineConcurrentSubscribePublish hammers one shared engine from many
// goroutines mixing Subscribe, Publish and the read accessors. Run under
// -race (the CI race job does) this is the thread-safety proof of the
// facade.
func TestEngineConcurrentSubscribePublish(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		eng := New(Options{Processor: ProcessorViewMat, Parallelism: parallelism})
		eng.MustSubscribe("S//a->x JOIN{x=y, 1000000} S//b->y")
		const goroutines = 8
		const iters = 25
		var matches int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					id := int64(g*1000 + i + 1)
					if g%3 == 0 && i%5 == 0 {
						src := fmt.Sprintf("S//a->x JOIN{x=y, %d} S//b->y", 1000+g*10+i)
						if _, err := eng.Subscribe(src); err != nil {
							t.Error(err)
							return
						}
					}
					xml := "<a>k</a>"
					if id%2 == 0 {
						xml = "<b>k</b>"
					}
					ms, err := eng.PublishXML("S", xml, id, id)
					if err != nil {
						t.Error(err)
						return
					}
					atomic.AddInt64(&matches, int64(len(ms)))
					_ = eng.NumQueries()
					_ = eng.NumTemplates()
					_ = eng.Stats()
				}
			}(g)
		}
		wg.Wait()
		if atomic.LoadInt64(&matches) == 0 {
			t.Errorf("parallelism=%d: no matches across concurrent publishes", parallelism)
		}
		if n := eng.NumQueries(); n < 1 {
			t.Errorf("parallelism=%d: queries lost: %d", parallelism, n)
		}
	}
}

// TestEngineConcurrentBatchPublish hammers one shared engine with batch
// publishes (PublishBatch and PublishXMLBatch) racing Subscribe and the
// read accessors from many goroutines. Run under -race (the CI race job
// does) this is the thread-safety proof of the pipelined ingest path: the
// Stage-1 worker goroutines inside a batch must never conflict with
// concurrent readers or with the serialized writers.
func TestEngineConcurrentBatchPublish(t *testing.T) {
	for _, depth := range []int{1, 4} {
		eng := New(Options{Processor: ProcessorViewMat, Parallelism: 2, PipelineDepth: depth})
		eng.MustSubscribe("S//a->x JOIN{x=y, 1000000} S//b->y")
		const goroutines = 6
		const iters = 8
		const batchLen = 6
		var matches int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if g%3 == 0 && i%4 == 0 {
						src := fmt.Sprintf("S//a->x JOIN{x=y, %d} S//b->y", 2000+g*10+i)
						if _, err := eng.Subscribe(src); err != nil {
							t.Error(err)
							return
						}
					}
					base := int64(g*10000 + i*100)
					if g%2 == 0 {
						docs := make([]*Document, batchLen)
						for j := range docs {
							xml := "<a>k</a>"
							if j%2 == 1 {
								xml = "<b>k</b>"
							}
							d, err := ParseDocument(xml, base+int64(j)+1, base+int64(j)+1)
							if err != nil {
								t.Error(err)
								return
							}
							docs[j] = d
						}
						for _, ms := range eng.PublishBatch("S", docs) {
							atomic.AddInt64(&matches, int64(len(ms)))
						}
					} else {
						events := make([]XMLEvent, batchLen)
						for j := range events {
							xml := "<a>k</a>"
							if j%2 == 1 {
								xml = "<b>k</b>"
							}
							events[j] = XMLEvent{XML: xml, DocID: base + int64(j) + 1, Timestamp: base + int64(j) + 1}
						}
						out, err := eng.PublishXMLBatch("S", events)
						if err != nil {
							t.Error(err)
							return
						}
						for _, ms := range out {
							atomic.AddInt64(&matches, int64(len(ms)))
						}
					}
					_ = eng.NumQueries()
					_ = eng.NumTemplates()
					_ = eng.Stats()
				}
			}(g)
		}
		wg.Wait()
		if atomic.LoadInt64(&matches) == 0 {
			t.Errorf("depth=%d: no matches across concurrent batch publishes", depth)
		}
	}
}

// TestEngineParallelismDeterminism runs the multi-template RSS workload
// through Parallelism 1 and 8 and requires identical match sequences —
// the engine-level version of the core determinism guarantee.
func TestEngineParallelismDeterminism(t *testing.T) {
	c := workload.DefaultRSS()
	qrng := rand.New(rand.NewSource(11))
	queries := c.Queries(qrng, 400)
	srng := rand.New(rand.NewSource(12))
	stream := c.Stream(srng, 120)

	for _, kind := range []ProcessorKind{ProcessorMMQJP, ProcessorViewMat} {
		var ref [][]Match
		for _, parallelism := range []int{1, 8} {
			eng := New(Options{Processor: kind, Parallelism: parallelism})
			for _, q := range queries {
				if _, err := eng.Subscribe(q.Source); err != nil {
					t.Fatal(err)
				}
			}
			var all [][]Match
			for _, d := range stream {
				all = append(all, eng.Publish("S", d))
			}
			if parallelism == 1 {
				ref = all
				continue
			}
			if len(all) != len(ref) {
				t.Fatalf("kind=%d: publish count mismatch", kind)
			}
			for i := range all {
				if len(all[i]) != len(ref[i]) {
					t.Fatalf("kind=%d doc %d: %d matches parallel vs %d sequential",
						kind, i, len(all[i]), len(ref[i]))
				}
				for j := range all[i] {
					if all[i][j] != ref[i][j] {
						t.Fatalf("kind=%d doc %d match %d: parallel %+v vs sequential %+v",
							kind, i, j, all[i][j], ref[i][j])
					}
				}
			}
		}
	}
}
