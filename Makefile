# Targets mirror the CI jobs (.github/workflows/ci.yml) so local dev and CI
# run the same commands.

GO ?= go

.PHONY: all build test race bench bench-smoke lint fmt ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tiny-scale run of every paper experiment (the CI bench-smoke job).
bench-smoke:
	$(GO) test -run=Smoke -v ./internal/bench

# Full benchmark suite (figures + microbenchmarks + workers sweep).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

ci: build lint test race bench-smoke
