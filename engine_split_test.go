package mmqjp

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSplitInvisibilityUnderAsyncChurn is the engine-level determinism
// guarantee for intra-template splitting (core split.go): with splitting
// forced (threshold 1), disabled (negative), and at the built-in default,
// the per-document match streams must be byte-identical while documents
// flow through the continuous async ingest pipeline and subscriptions
// churn at pipeline barriers — including unsubscribing the owner of a
// template whose chunks other workers just stole. The workload is a
// mega-template one (identical wiring shape over varying leaves, so every
// query lands in one canonical template) to force the steal path: three of
// four shards own nothing and must steal. The CI race job runs this under
// -race.
func TestSplitInvisibilityUnderAsyncChurn(t *testing.T) {
	qrng := rand.New(rand.NewSource(11))
	query := func() string {
		l, r := qrng.Perm(6)[:2], qrng.Perm(6)[:2]
		return fmt.Sprintf(
			"S//item->v0[./l%d->v1][./l%d->v2] FOLLOWED BY{v1=w1 AND v2=w2, 1000} S//item->w0[./l%d->w1][./l%d->w2]",
			l[0]+1, l[1]+1, r[0]+1, r[1]+1)
	}
	var queries []string
	for i := 0; i < 30; i++ {
		queries = append(queries, query())
	}
	vrng := rand.New(rand.NewSource(12))
	var stream []*Document
	for i := 0; i < 80; i++ {
		b := NewDocumentBuilder(int64(i+1), int64(i+1), "item")
		for l := 1; l <= 6; l++ {
			b.Element(0, fmt.Sprintf("l%d", l), fmt.Sprintf("val-%d", vrng.Intn(4)))
		}
		stream = append(stream, b.Build())
	}

	run := func(opts Options) ([][]Match, EngineStats) {
		eng := New(opts)
		var live []QueryID
		for _, q := range queries {
			live = append(live, eng.MustSubscribe(q))
		}
		chans := make([]<-chan []Match, 0, len(stream))
		nextExtra := 0
		for i, d := range stream {
			if i%10 == 5 {
				// Churn at a pipeline barrier: drop the oldest query —
				// possibly the one whose template evaluation was just
				// split and stolen from — and subscribe a replacement of
				// the same template.
				if err := eng.Unsubscribe(live[0]); err != nil {
					t.Fatalf("unsubscribe %d: %v", live[0], err)
				}
				live = live[1:]
				live = append(live, eng.MustSubscribe(queries[nextExtra%len(queries)]))
				nextExtra++
			}
			chans = append(chans, eng.PublishAsync("S", d))
		}
		eng.Flush()
		out := make([][]Match, len(chans))
		for i, ch := range chans {
			out[i] = collectAsync(t, ch)
		}
		stats := eng.Stats()
		eng.Close()
		return out, stats
	}

	base := Options{Processor: ProcessorViewMat, Parallelism: 4, PipelineDepth: 2}
	serial := base
	serial.Parallelism = 1
	serial.SplitThreshold = -1
	off, def, forced := base, base, base
	off.SplitThreshold = -1
	def.SplitThreshold = 0 // built-in default threshold
	forced.SplitThreshold = 1

	want, _ := run(serial)
	for _, tc := range []struct {
		name string
		opts Options
	}{{"off", off}, {"default", def}, {"forced", forced}} {
		got, stats := run(tc.opts)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("split=%s doc %d: %d matches vs %d serial",
					tc.name, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("split=%s doc %d match %d: %+v vs serial %+v",
						tc.name, i, j, got[i][j], want[i][j])
				}
			}
		}
		switch tc.name {
		case "off":
			if stats.Splits != 0 || stats.Steals != 0 {
				t.Fatalf("split disabled but splits=%d steals=%d", stats.Splits, stats.Steals)
			}
		case "forced":
			if stats.Splits == 0 {
				t.Fatal("split forced but no evaluation was split")
			}
			if stats.Steals == 0 {
				t.Fatal("mega-template workload with three idle shards produced no steals")
			}
		}
	}
}
