package mmqjp

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

// snapshotWorkload builds the shared differential fixture: RSS queries with
// finite windows (so GC runs mid-stream) and a document stream.
func snapshotWorkload(nq, ndocs int) ([]string, []*Document) {
	gen := workload.DefaultRSS()
	qrng := rand.New(rand.NewSource(3))
	var sources []string
	for _, q := range gen.Queries(qrng, nq) {
		sources = append(sources, strings.Replace(q.Source, "INF", "60", 1))
	}
	srng := rand.New(rand.NewSource(11))
	return sources, gen.Stream(srng, ndocs)
}

// TestEngineSnapshotRestoreDifferential is the durability requirement: an
// engine restored from a mid-stream snapshot — after subscription churn, so
// the snapshot holds id gaps — must produce byte-identical per-document
// match output to the engine that never restarted, across restore-side
// Workers × PipelineDepth settings.
func TestEngineSnapshotRestoreDifferential(t *testing.T) {
	sources, stream := snapshotWorkload(60, 150)
	const cut = 75

	live := New(Options{Processor: ProcessorViewMat})
	var ids []QueryID
	for _, src := range sources {
		ids = append(ids, live.MustSubscribe(src))
	}
	live.PublishBatch("S", stream[:cut])
	// Churn before the snapshot: ids 20..39 unsubscribe, leaving gaps the
	// snapshot must preserve so survivors keep their ids.
	for _, id := range ids[20:40] {
		if err := live.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
	}

	var store MemStore
	if err := live.SnapshotTo(&store); err != nil {
		t.Fatal(err)
	}
	var ref []string
	for _, d := range stream[cut:] {
		ref = append(ref, renderEngineMatches(live.Publish("S", d)))
	}

	for _, opts := range []Options{
		{Processor: ProcessorViewMat},
		{Processor: ProcessorMMQJP},
		{Processor: ProcessorViewMat, Parallelism: 4, PipelineDepth: 2},
	} {
		restored, err := OpenEngineFrom(&store, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := restored.NumQueries(), live.NumQueries(); got != want {
			t.Fatalf("opts=%+v: restored NumQueries = %d, want %d", opts, got, want)
		}
		for _, id := range append(append([]QueryID{}, ids[:20]...), ids[40:]...) {
			if restored.Query(id) != live.Query(id) {
				t.Fatalf("opts=%+v: query %d source diverges after restore", opts, id)
			}
		}
		for _, id := range ids[20:40] {
			if restored.Query(id) != "" {
				t.Fatalf("opts=%+v: unsubscribed query %d resurrected by restore", opts, id)
			}
		}
		for di, d := range stream[cut:] {
			got := renderEngineMatches(restored.Publish("S", d))
			if got != ref[di] {
				t.Fatalf("opts=%+v: restored engine diverges from live on doc %d:\nrestored:\n%slive:\n%s",
					opts, cut+di+1, got, ref[di])
			}
		}
	}
}

// TestEngineSnapshotAsyncPipeline snapshots an engine whose continuous
// ingest pipeline is live: the snapshot must land at a barrier (an exact
// admission-order prefix) and the restored engine must continue the stream
// identically.
func TestEngineSnapshotAsyncPipeline(t *testing.T) {
	sources, stream := snapshotWorkload(40, 120)
	const cut = 60

	live := New(Options{Processor: ProcessorViewMat, PipelineDepth: 4})
	for _, src := range sources {
		live.MustSubscribe(src)
	}
	for _, d := range stream[:cut] {
		live.PublishAsync("S", d)
	}
	// No Flush: Snapshot's own barrier must order itself after the 60
	// admitted documents.
	var store MemStore
	if err := live.SnapshotTo(&store); err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	prefixMax := live.MaxDocID()

	restored, err := OpenEngineFrom(&store, Options{Processor: ProcessorViewMat, PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.MaxDocID(); got != prefixMax || got == 0 {
		t.Fatalf("snapshot not an admission-order prefix: restored MaxDocID = %d, want %d", got, prefixMax)
	}
	for di, d := range stream[cut:] {
		got := renderEngineMatches(<-restored.PublishAsync("S", d))
		want := renderEngineMatches(<-live.PublishAsync("S", d))
		if got != want {
			t.Fatalf("restored engine diverges on doc %d:\nrestored:\n%slive:\n%s", cut+di+1, got, want)
		}
	}
}

// TestEngineSnapshotComposition restores an engine with composition and
// document retention: cascades keep firing, OutputXML still renders matches
// produced after the restore, and derived-document ids resume without
// colliding with pre-snapshot ones.
func TestEngineSnapshotComposition(t *testing.T) {
	mk := func() *Engine {
		eng := New(Options{Processor: ProcessorViewMat, EnableComposition: true})
		eng.MustSubscribe(
			"S//alert->a[./host->h][./sev->s] FOLLOWED BY{h=h2 AND s=s2, 1000} S//confirm->c[./host->h2][./sev->s2] PUBLISH incidents")
		eng.MustSubscribe(
			"incidents//alert->a[./host->h] JOIN{h=h2, 1000} P//page->p[./host->h2]")
		return eng
	}
	feed := func(eng *Engine, id int64) []Match {
		eng.PublishXML("P", "<page><host>web1</host></page>", id, id*10)
		eng.PublishXML("S", "<alert><host>web1</host><sev>hi</sev></alert>", id+1, id*10+1)
		ms, err := eng.PublishXML("S", "<confirm><host>web1</host><sev>hi</sev></confirm>", id+2, id*10+2)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}

	live := mk()
	feed(live, 1)
	var store MemStore
	if err := live.SnapshotTo(&store); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenEngineFrom(&store, Options{Processor: ProcessorViewMat, EnableComposition: true})
	if err != nil {
		t.Fatal(err)
	}

	liveMs := feed(live, 4)
	restoredMs := feed(restored, 4)
	if got, want := renderEngineMatches(restoredMs), renderEngineMatches(liveMs); got != want {
		t.Fatalf("restored cascade diverges:\nrestored:\n%slive:\n%s", got, want)
	}
	for i, m := range restoredMs {
		want, wok := live.OutputXML(liveMs[i])
		got, gok := restored.OutputXML(m)
		if gok != wok || got != want {
			t.Fatalf("OutputXML diverges after restore on match %d:\nrestored (%v): %s\nlive (%v): %s", i, gok, got, wok, want)
		}
	}
}

// TestEngineSnapshotErrors covers the rejection paths: sequential engines
// have no snapshot form, and garbage input is refused with nothing
// published.
func TestEngineSnapshotErrors(t *testing.T) {
	seq := New(Options{Processor: ProcessorSequential})
	var buf bytes.Buffer
	if err := seq.Snapshot(&buf); !errors.Is(err, ErrSequentialSnapshot) {
		t.Errorf("sequential Snapshot error = %v, want ErrSequentialSnapshot", err)
	}
	if _, err := OpenEngine(&buf, Options{Processor: ProcessorSequential}); !errors.Is(err, ErrSequentialSnapshot) {
		t.Errorf("sequential OpenEngine error = %v, want ErrSequentialSnapshot", err)
	}
	if _, err := OpenEngine(strings.NewReader(`{"format":"something-else","version":1}`), Options{}); err == nil {
		t.Error("foreign format accepted")
	}
	if _, err := OpenEngine(strings.NewReader(`not json`), Options{}); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

// TestFileStore covers the file-backed store: missing file reports
// ErrNoSnapshot, Save is atomic-by-rename (the path holds a complete
// snapshot even when a later Save fails mid-write), and a round-trip
// restores subscriptions.
func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.snap")
	store := NewFileStore(path)
	if _, err := store.Open(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty store Open error = %v, want ErrNoSnapshot", err)
	}
	if _, err := OpenEngineFrom(store, Options{}); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("OpenEngineFrom on empty store = %v, want ErrNoSnapshot", err)
	}

	eng := New(Options{Processor: ProcessorViewMat})
	qid := eng.MustSubscribe(paperQ1)
	eng.PublishXML("S", paperD1, 1, 100)
	if err := eng.SnapshotTo(store); err != nil {
		t.Fatal(err)
	}

	// A failed save must leave the previous snapshot intact.
	failure := errors.New("boom")
	if err := store.Save(func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return failure
	}); !errors.Is(err, failure) {
		t.Fatalf("Save error = %v, want the write function's error", err)
	}

	restored, err := OpenEngineFrom(store, Options{Processor: ProcessorViewMat})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Query(qid) != paperQ1 {
		t.Fatalf("restored query %d = %q, want the subscribed source", qid, restored.Query(qid))
	}
	ms, err := restored.PublishXML("S", paperD2, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Query != qid {
		t.Fatalf("restored engine matches = %v, want one for query %d", ms, qid)
	}
}

// TestFileStoreGzip covers the compressed store option: WithGzip actually
// compresses the file on disk, restore is format-sniffing in both
// directions (a plain store opens a gzipped file and vice versa, so the
// option can be toggled across restarts without losing the snapshot), and
// the restored engine behaves identically.
func TestFileStoreGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.snap")

	eng := New(Options{Processor: ProcessorViewMat})
	qid := eng.MustSubscribe(paperQ1)
	eng.PublishXML("S", paperD1, 1, 100)

	gz := NewFileStore(path, WithGzip())
	if err := eng.SnapshotTo(gz); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("WithGzip store wrote a file without the gzip magic: % x", raw[:2])
	}

	plainStore := NewFileStore(path)
	for _, store := range []*FileStore{gz, plainStore} {
		restored, err := OpenEngineFrom(store, Options{Processor: ProcessorViewMat})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := restored.PublishXML("S", paperD2, 2, 200)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 || ms[0].Query != qid {
			t.Fatalf("gzipped restore matches = %v, want one for query %d", ms, qid)
		}
	}

	// The reverse direction: an uncompressed snapshot already on disk must
	// still open through a WithGzip store.
	if err := eng.SnapshotTo(plainStore); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] == 0x1f && raw[1] == 0x8b {
		t.Fatal("plain store wrote a gzipped file")
	}
	restored, err := OpenEngineFrom(gz, Options{Processor: ProcessorViewMat})
	if err != nil {
		t.Fatalf("WithGzip store opening a plain snapshot: %v", err)
	}
	if restored.Query(qid) != paperQ1 {
		t.Fatalf("restored query %d = %q, want the subscribed source", qid, restored.Query(qid))
	}
}
