// Quickstart: register the paper's three example queries (Table 2) and feed
// the two documents of Figures 1 and 2. Queries Q1 and Q2 fire when the blog
// article arrives; Q3 (a blog self-join) stays quiet because only one blog
// posting was published.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mmqjp "repro"
)

func main() {
	eng := mmqjp.New(mmqjp.Options{
		Processor:       mmqjp.ProcessorViewMat,
		RetainDocuments: true, // keep documents so matches can be rendered as XML
	})

	// Q1: a book announcement, followed by a blog article from one of its
	// authors with the same title as the book.
	q1 := eng.MustSubscribe(`
		S//book->x1[.//author->x2][.//title->x3]
		FOLLOWED BY{x2=x5 AND x3=x6, 1000}
		S//blog->x4[.//author->x5][.//title->x6]`)

	// Q2: ... on the same category as the book.
	q2 := eng.MustSubscribe(`
		S//book->x1[.//author->x2][.//category->x7]
		FOLLOWED BY{x2=x5 AND x7=x8, 1000}
		S//blog->x4[.//author->x5][.//category->x8]`)

	// Q3: a pair of blog postings by the same author with the same title.
	q3 := eng.MustSubscribe(`
		S//blog->x4[.//author->x5][.//title->x6]
		FOLLOWED BY{x5=x5' AND x6=x6', 1000}
		S//blog->x4'[.//author->x5'][.//title->x6']`)

	names := map[mmqjp.QueryID]string{q1: "Q1", q2: "Q2", q3: "Q3"}

	// Figure 1: the book announcement.
	book := `<book>
		<publisher>Wrox</publisher>
		<author>Andrew Watt</author>
		<author>Danny Ayers</author>
		<title>Beginning RSS and Atom Programming</title>
		<category>Scripting &amp; Programming</category>
		<category>Web Site Development</category>
		<isbn>0764579169</isbn>
	</book>`

	// Figure 2: Danny Ayers' blog article about the book.
	blog := `<blog>
		<url>http://dannyayers.com/topics/books/rss-book</url>
		<author>Danny Ayers</author>
		<title>Beginning RSS and Atom Programming</title>
		<category>Book Announcement</category>
		<category>Scripting &amp; Programming</category>
		<body>Just heard ...</body>
	</blog>`

	feed := func(xml string, id, ts int64) {
		matches, err := eng.PublishXML("S", xml, id, ts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("document %d (t=%d): %d match(es)\n", id, ts, len(matches))
		for _, m := range matches {
			fmt.Printf("  %s fired: doc %d (t=%d) followed by doc %d (t=%d)\n",
				names[m.Query], m.LeftDoc, m.LeftTS, m.RightDoc, m.RightTS)
			if out, ok := eng.OutputXML(m); ok {
				fmt.Printf("  output: %.120s...\n", out)
			}
		}
	}

	feed(book, 1, 100)
	feed(blog, 2, 200)

	fmt.Println()
	fmt.Println(eng.Stats())
	fmt.Printf("three queries, %d shared query template(s)\n", eng.NumTemplates())
}
