// Blogwatch: the paper's motivating scenario at scale. A stream of book
// announcements and blog postings flows through the engine while hundreds of
// subscriptions watch for author/title/category correlations — books
// promoted by their own authors, cross-postings, and follow-ups within a
// time window.
//
//	go run ./examples/blogwatch [-posts 400] [-subs 300] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	mmqjp "repro"
)

var (
	authors    = []string{"Danny Ayers", "Andrew Watt", "Mary Holstege", "Sal Mangano", "Erik Ray", "Eve Maler", "Norman Walsh", "Michael Kay"}
	topics     = []string{"RSS and Atom", "XQuery Basics", "Schema Design", "Streaming XML", "Pub Sub Systems", "Event Processing", "Web Feeds", "XML Pipelines"}
	categories = []string{"Scripting & Programming", "Web Site Development", "Databases", "Distributed Systems"}
)

func main() {
	posts := flag.Int("posts", 400, "number of stream documents")
	subs := flag.Int("subs", 300, "number of subscriptions")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	eng := mmqjp.New(mmqjp.Options{Processor: mmqjp.ProcessorViewMat})

	// A third of the subscriptions watch each correlation family; windows
	// vary per subscriber.
	kinds := map[mmqjp.QueryID]string{}
	for i := 0; i < *subs; i++ {
		window := 50 + rng.Intn(400)
		var src, kind string
		switch i % 3 {
		case 0: // book promoted by its own author under the same title
			kind = "self-promotion"
			src = fmt.Sprintf(
				"S//book->b[.//author->a][.//title->t] FOLLOWED BY{a=a2 AND t=t2, %d} S//blog->g[.//author->a2][.//title->t2]", window)
		case 1: // author blogs in the same category as their book
			kind = "category-follow-up"
			src = fmt.Sprintf(
				"S//book->b[.//author->a][.//category->c] FOLLOWED BY{a=a2 AND c=c2, %d} S//blog->g[.//author->a2][.//category->c2]", window)
		default: // blog cross-posting: same author, same title
			kind = "cross-posting"
			src = fmt.Sprintf(
				"S//blog->g1[.//author->a][.//title->t] FOLLOWED BY{a=a2 AND t=t2, %d} S//blog->g2[.//author->a2][.//title->t2]", window)
		}
		id := eng.MustSubscribe(src)
		kinds[id] = kind
	}
	fmt.Printf("registered %d subscriptions sharing %d query template(s)\n\n", eng.NumQueries(), eng.NumTemplates())

	// Stream: a mix of announcements and blog posts with correlated
	// values so the subscriptions actually fire.
	firedByKind := map[string]int{}
	total := 0
	for i := 0; i < *posts; i++ {
		ts := int64((i + 1) * 10)
		var doc *mmqjp.Document
		author := authors[rng.Intn(len(authors))]
		topic := topics[rng.Intn(len(topics))]
		category := categories[rng.Intn(len(categories))]
		if rng.Intn(4) == 0 {
			b := mmqjp.NewDocumentBuilder(int64(i+1), ts, "book")
			b.Element(0, "author", author)
			b.Element(0, "title", topic)
			b.Element(0, "category", category)
			doc = b.Build()
		} else {
			b := mmqjp.NewDocumentBuilder(int64(i+1), ts, "blog")
			b.Element(0, "author", author)
			b.Element(0, "title", topic)
			b.Element(0, "category", category)
			doc = b.Build()
		}
		for _, m := range eng.Publish("S", doc) {
			firedByKind[kinds[m.Query]]++
			total++
		}
	}

	fmt.Printf("processed %d documents, %d matches:\n", *posts, total)
	for _, k := range []string{"self-promotion", "category-follow-up", "cross-posting"} {
		fmt.Printf("  %-20s %d\n", k, firedByKind[k])
	}
	fmt.Println()
	fmt.Println(eng.Stats())
}
