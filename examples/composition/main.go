// Composition: queries consuming other queries' outputs through the XSCL
// PUBLISH clause (Section 2 of the paper defines the clause; this engine
// implements the cascade). A first layer of subscriptions correlates raw
// ops events into incidents; a second layer correlates *incidents* with
// pages to detect repeated escalations — something no single two-block
// query can express.
//
//	go run ./examples/composition
package main

import (
	"fmt"
	"log"

	mmqjp "repro"
)

func main() {
	eng := mmqjp.New(mmqjp.Options{
		Processor:         mmqjp.ProcessorViewMat,
		EnableComposition: true,
	})

	// Layer 1: an error alert confirmed on the same host and service
	// within 300 time units becomes an incident.
	incident := eng.MustSubscribe(`
		ops//alert->a[./host->h][./service->s]
		FOLLOWED BY{h=h2 AND s=s2, 300}
		ops//confirm->c[./host->h2][./service->s2]
		PUBLISH incidents`)

	// Layer 2: two incidents for the same host within 1000 time units —
	// a repeat offender. Reads the derived stream produced by layer 1.
	repeat := eng.MustSubscribe(`
		incidents//alert->a1[./host->h]
		FOLLOWED BY{h=h2, 1000}
		incidents//alert->a2[./host->h2]
		PUBLISH repeats`)

	names := map[mmqjp.QueryID]string{incident: "incident", repeat: "repeat-offender"}

	feed := func(ts int64, xml string) {
		ms, err := eng.PublishXML("ops", xml, ts, ts)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range ms {
			fmt.Printf("t=%4d  %-15s (left t=%d, right t=%d)\n", ts, names[m.Query], m.LeftTS, m.RightTS)
		}
	}

	fmt.Println("feeding ops events...")
	feed(100, "<alert><host>web1</host><service>search</service></alert>")
	feed(150, "<confirm><host>web1</host><service>search</service></confirm>") // incident #1
	feed(400, "<alert><host>web1</host><service>cart</service></alert>")
	feed(460, "<confirm><host>web1</host><service>cart</service></confirm>") // incident #2 -> repeat offender
	feed(500, "<alert><host>db3</host><service>store</service></alert>")
	feed(900, "<confirm><host>db3</host><service>store</service></confirm>") // too late: no incident

	fmt.Println()
	fmt.Println(eng.Stats())
}
