// Rssmonitor: the Section-6.3 scenario — monitor a synthetic RSS/Atom feed
// stream (418 channels) with a large generated query workload, and report
// join-processing throughput for the three strategies the paper compares:
// MMQJP with view materialization, plain MMQJP, and per-query sequential
// evaluation.
//
// A second phase demonstrates subscription churn: mid-stream, a slice of
// the subscriber population unsubscribes and is replaced by newcomers. The
// engine's refcounted canonical templates reclaim everything the leavers no
// longer share with survivors, and draining every subscription at the end
// returns the engine to its initial state.
//
//	go run ./examples/rssmonitor [-items 2000] [-queries 5000] [-seed 1] [-churn 500]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	mmqjp "repro"
	"repro/internal/workload"
)

func main() {
	items := flag.Int("items", 2000, "feed items to process")
	queries := flag.Int("queries", 5000, "subscriptions to register")
	seed := flag.Int64("seed", 1, "random seed")
	churn := flag.Int("churn", 500, "subscriptions replaced mid-stream in the churn phase")
	flag.Parse()

	gen := workload.DefaultRSS()
	qrng := rand.New(rand.NewSource(*seed))
	qs := gen.Queries(qrng, *queries)
	srng := rand.New(rand.NewSource(*seed + 7))
	stream := gen.Stream(srng, *items)

	fmt.Printf("feed: %d items across %d channels; %d subscriptions\n\n",
		len(stream), gen.Channels, len(qs))

	for _, kind := range []mmqjp.ProcessorKind{
		mmqjp.ProcessorViewMat, mmqjp.ProcessorMMQJP, mmqjp.ProcessorSequential,
	} {
		eng := mmqjp.New(mmqjp.Options{Processor: kind})
		for _, q := range qs {
			if _, err := eng.Subscribe(q.Source); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		matches := 0
		for _, d := range stream {
			matches += len(eng.Publish("S", d))
		}
		elapsed := time.Since(start)
		name := map[mmqjp.ProcessorKind]string{
			mmqjp.ProcessorViewMat:    "MMQJP+ViewMat",
			mmqjp.ProcessorMMQJP:      "MMQJP",
			mmqjp.ProcessorSequential: "Sequential",
		}[kind]
		fmt.Printf("%-14s %8.0f events/s  (%d matches, %d templates, wall %v)\n",
			name, float64(len(stream))/elapsed.Seconds(), matches, eng.NumTemplates(),
			elapsed.Round(time.Millisecond))
	}

	// Churn phase: half the stream with the original population, then a
	// subscriber turnover, then the rest of the stream.
	if *churn > *queries {
		*churn = *queries
	}
	fmt.Printf("\nchurn phase (MMQJP+ViewMat): %d of %d subscriptions replaced mid-stream\n",
		*churn, *queries)
	eng := mmqjp.New(mmqjp.Options{Processor: mmqjp.ProcessorViewMat})
	var ids []mmqjp.QueryID
	for _, q := range qs {
		ids = append(ids, eng.MustSubscribe(q.Source))
	}
	half := len(stream) / 2
	matches := 0
	start := time.Now()
	for _, d := range stream[:half] {
		matches += len(eng.Publish("S", d))
	}
	before := eng.NumTemplates()
	for _, q := range gen.Queries(qrng, *churn) { // newcomers first, then leavers
		ids = append(ids, eng.MustSubscribe(q.Source))
	}
	for _, id := range ids[:*churn] {
		if err := eng.Unsubscribe(id); err != nil {
			panic(err)
		}
	}
	ids = ids[*churn:]
	for _, d := range stream[half:] {
		matches += len(eng.Publish("S", d))
	}
	elapsed := time.Since(start)
	fmt.Printf("%-14s %8.0f events/s  (%d matches, templates %d -> %d after churn, wall %v)\n",
		"churned", float64(len(stream))/elapsed.Seconds(), matches, before, eng.NumTemplates(),
		elapsed.Round(time.Millisecond))

	// Drain everything: the lifecycle invariant says the engine is now
	// observationally identical to a fresh one.
	for _, id := range ids {
		if err := eng.Unsubscribe(id); err != nil {
			panic(err)
		}
	}
	fmt.Printf("after draining all subscriptions: %d queries, %d templates (state reclaimed)\n",
		eng.NumQueries(), eng.NumTemplates())
}
