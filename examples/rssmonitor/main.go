// Rssmonitor: the Section-6.3 scenario — monitor a synthetic RSS/Atom feed
// stream (418 channels) with a large generated query workload, and report
// join-processing throughput for the three strategies the paper compares:
// MMQJP with view materialization, plain MMQJP, and per-query sequential
// evaluation.
//
//	go run ./examples/rssmonitor [-items 2000] [-queries 5000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	mmqjp "repro"
	"repro/internal/workload"
)

func main() {
	items := flag.Int("items", 2000, "feed items to process")
	queries := flag.Int("queries", 5000, "subscriptions to register")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	gen := workload.DefaultRSS()
	qrng := rand.New(rand.NewSource(*seed))
	qs := gen.Queries(qrng, *queries)
	srng := rand.New(rand.NewSource(*seed + 7))
	stream := gen.Stream(srng, *items)

	fmt.Printf("feed: %d items across %d channels; %d subscriptions\n\n",
		len(stream), gen.Channels, len(qs))

	for _, kind := range []mmqjp.ProcessorKind{
		mmqjp.ProcessorViewMat, mmqjp.ProcessorMMQJP, mmqjp.ProcessorSequential,
	} {
		eng := mmqjp.New(mmqjp.Options{Processor: kind})
		for _, q := range qs {
			if _, err := eng.Subscribe(q.Source); err != nil {
				panic(err)
			}
		}
		start := time.Now()
		matches := 0
		for _, d := range stream {
			matches += len(eng.Publish("S", d))
		}
		elapsed := time.Since(start)
		name := map[mmqjp.ProcessorKind]string{
			mmqjp.ProcessorViewMat:    "MMQJP+ViewMat",
			mmqjp.ProcessorMMQJP:      "MMQJP",
			mmqjp.ProcessorSequential: "Sequential",
		}[kind]
		fmt.Printf("%-14s %8.0f events/s  (%d matches, %d templates, wall %v)\n",
			name, float64(len(stream))/elapsed.Seconds(), matches, eng.NumTemplates(),
			elapsed.Round(time.Millisecond))
	}
}
