package mmqjp

import (
	"errors"
	"fmt"
	"sync"
)

// Publishing: PublishDoc is the general ingestion entrypoint. The historical
// variants — Publish, PublishBatch, PublishAsync, PublishXML,
// PublishXMLBatch — are thin wrappers over it, each fixing one combination
// of input form (parsed documents vs raw XML) and delivery (synchronous vs
// pipeline-admitted). PublishDoc accepts any combination: documents
// accumulate in the order given (the leading *Document argument first, then
// each option's documents in option order) and are published as one batch in
// that order, with the same serial-order output guarantees as PublishBatch.
//
// Error contract, shared by every XML-accepting path: a parse failure on any
// document fails the whole call with a *DocumentError identifying the
// document, and nothing is published.

// ErrAsyncBatch is returned by PublishDoc when WithAsync is combined with
// anything other than exactly one document: pipeline admission is
// per-document (each admitted document gets its own delivery), so an async
// batch has no single completion to hand back.
var ErrAsyncBatch = errors.New("mmqjp: WithAsync requires exactly one document")

// DocumentError reports which document of a publish call failed and why.
// It unwraps to the underlying cause (typically an XML parse error).
type DocumentError struct {
	Index int   // position among the call's documents, in input order
	DocID int64 // the id the document would have been published under
	Err   error
}

func (e *DocumentError) Error() string {
	return fmt.Sprintf("document %d (id %d): %v", e.Index, e.DocID, e.Err)
}

func (e *DocumentError) Unwrap() error { return e.Err }

// PublishOption configures one PublishDoc call.
type PublishOption func(*publishReq)

type publishItem struct {
	doc *Document
	xml *XMLEvent
}

type publishReq struct {
	async bool
	items []publishItem
}

// WithAsync admits the document into the continuous ingest pipeline instead
// of publishing synchronously: PublishDoc returns immediately with
// PublishResult.Done carrying the eventual matches (see PublishAsync for the
// ordering and backpressure semantics). Valid only for exactly one document.
func WithAsync() PublishOption {
	return func(r *publishReq) { r.async = true }
}

// WithDocs appends parsed documents to the call's input.
func WithDocs(docs ...*Document) PublishOption {
	return func(r *publishReq) {
		for _, d := range docs {
			r.items = append(r.items, publishItem{doc: d})
		}
	}
}

// WithXML appends one raw XML document, parsed with the given id and
// timestamp before anything is published.
func WithXML(xmlText string, docID, timestamp int64) PublishOption {
	return func(r *publishReq) {
		r.items = append(r.items, publishItem{xml: &XMLEvent{XML: xmlText, DocID: docID, Timestamp: timestamp}})
	}
}

// WithXMLEvents appends raw XML documents, parsed before anything is
// published. Parsing runs concurrently when Options.PipelineDepth > 1.
func WithXMLEvents(events ...XMLEvent) PublishOption {
	return func(r *publishReq) {
		for i := range events {
			r.items = append(r.items, publishItem{xml: &events[i]})
		}
	}
}

// PublishResult is the outcome of a PublishDoc call. Exactly one delivery
// form is populated: Batches for synchronous calls (one element per input
// document, in input order), Done for WithAsync calls.
type PublishResult struct {
	// Batches holds each document's matches, exactly what consecutive
	// Publish calls would return. Nil for async calls.
	Batches [][]Match
	// Done receives the async document's matches (one send, then a close)
	// once the pipeline has fully processed it. Nil for synchronous calls.
	Done <-chan []Match
}

// Matches flattens the result into a single match slice in document order.
// For an async result it blocks until the pipeline delivers.
func (r PublishResult) Matches() []Match {
	if r.Done != nil {
		return <-r.Done
	}
	if len(r.Batches) == 1 {
		return r.Batches[0]
	}
	var out []Match
	for _, b := range r.Batches {
		out = append(out, b...)
	}
	return out
}

// PublishDoc publishes documents on the named stream. The leading document
// may be nil when options supply the input; all inputs are published as one
// batch in input order. With WithAsync (single document only) the call
// returns after pipeline admission and PublishResult.Done resolves later;
// otherwise the call blocks until every document is processed and
// PublishResult.Batches holds each document's matches.
//
// Raw-XML inputs are parsed first; a parse failure on any document fails the
// call with a *DocumentError and publishes nothing.
func (e *Engine) PublishDoc(stream string, d *Document, opts ...PublishOption) (PublishResult, error) {
	var req publishReq
	if d != nil {
		req.items = append(req.items, publishItem{doc: d})
	}
	for _, o := range opts {
		o(&req)
	}
	docs, err := e.parseItems(req.items)
	if err != nil {
		return PublishResult{}, err
	}
	if req.async {
		if len(docs) != 1 {
			return PublishResult{}, ErrAsyncBatch
		}
		return PublishResult{Done: e.publishAsync(stream, docs[0])}, nil
	}
	if len(docs) == 1 {
		return PublishResult{Batches: [][]Match{e.publishOne(stream, docs[0])}}, nil
	}
	return PublishResult{Batches: e.publishMany(stream, docs)}, nil
}

// parseItems resolves every input item to a parsed document, parsing raw-XML
// items concurrently (bounded by Options.PipelineDepth) when there are
// several. On error nothing is returned: the whole call must fail before any
// document is published.
func (e *Engine) parseItems(items []publishItem) ([]*Document, error) {
	docs := make([]*Document, len(items))
	nxml := 0
	for i, it := range items {
		if it.doc != nil {
			docs[i] = it.doc
		} else {
			nxml++
		}
	}
	if nxml == 0 {
		return docs, nil
	}
	errs := make([]error, len(items))
	parse := func(i int) {
		ev := items[i].xml
		docs[i], errs[i] = ParseDocument(ev.XML, ev.DocID, ev.Timestamp)
	}
	if depth := e.opts.PipelineDepth; depth > 1 && nxml > 1 {
		sem := make(chan struct{}, depth)
		var wg sync.WaitGroup
		for i := range items {
			if items[i].xml == nil {
				continue
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				parse(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range items {
			if items[i].xml != nil {
				parse(i)
			}
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, &DocumentError{Index: i, DocID: items[i].xml.DocID, Err: err}
		}
	}
	return docs, nil
}
