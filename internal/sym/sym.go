// Package sym is the module-wide symbol interner: element and attribute
// names and join-value strings are mapped to dense int32 ids, so the
// per-document hot path (NFA transitions in internal/yfilter, value-join
// columns in internal/relation and internal/core) compares and hashes
// 4-byte ids instead of re-hashing string bytes on every document.
//
// The table is process-global and append-only. Global scope is what makes
// ids safe to use everywhere at once: every engine configuration, every
// router partition and the sequential oracle of one process agree on the
// id of a given string, so id-keyed structures behave identically across
// configurations — which the differential harness checks. Ids are NOT
// stable across processes (they depend on interning order), so nothing
// durable may contain one: snapshot encoding maps ids back to strings
// (internal/core/snapshot.go) and the snapshot byte-compare tests pin that.
//
// The table never shrinks. Element and attribute vocabularies are tiny and
// closed; join values are open-ended, so a long-lived process interning
// adversarial value streams grows the table without bound — the documented
// tradeoff for an allocation-free equality/hash path. See DESIGN.md
// "Memory & interning".
package sym

import "sync"

// ID is a dense interned-symbol identifier. The zero id is the empty
// string, so zero-valued ids never alias a real symbol by accident.
type ID int32

var global = func() *table {
	t := &table{ids: map[string]ID{}, attrs: map[string]ID{}}
	t.intern("") // pin ID 0 = ""
	return t
}()

// table is the interner. Reads (the hot path: a hit on an already-interned
// symbol) take the read lock only; the write lock is taken once per novel
// string for the lifetime of the process.
type table struct {
	mu    sync.RWMutex
	ids   map[string]ID
	names []string
	// attrs maps a bare attribute name to the id of "@"+name, so the
	// hot path interns attribute symbols without concatenating.
	attrs map[string]ID
}

// Intern returns the id of s, interning it on first sight.
func Intern(s string) ID { return global.intern(s) }

// AttrIntern returns the id of "@"+name without allocating the
// concatenation when the attribute has been seen before. Attribute symbols
// share the element namespace under the "@" prefix, exactly like the NFA's
// transition alphabet.
func AttrIntern(name string) ID {
	t := global
	t.mu.RLock()
	id, ok := t.attrs[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	id = t.intern("@" + name)
	t.mu.Lock()
	t.attrs[name] = id
	t.mu.Unlock()
	return id
}

// Lookup returns the id of s without interning it; ok is false when s has
// never been interned.
func Lookup(s string) (ID, bool) {
	t := global
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	return id, ok
}

// Name returns the string a live id was interned from. It panics on an id
// that was never issued — such a value is a corrupted or cross-process id,
// never valid data.
func Name(id ID) string {
	t := global
	t.mu.RLock()
	s := t.names[id]
	t.mu.RUnlock()
	return s
}

// Count returns the number of interned symbols; ids are dense in [0,
// Count). Transition-table builders size their id-indexed arrays with it.
func Count() int {
	t := global
	t.mu.RLock()
	n := len(t.names)
	t.mu.RUnlock()
	return n
}

func (t *table) intern(s string) ID {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = ID(len(t.names))
	t.ids[s] = id
	t.names = append(t.names, s)
	return id
}
