package sym

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	a := Intern("channel")
	b := Intern("channel")
	if a != b {
		t.Fatalf("same string interned to %d and %d", a, b)
	}
	if Name(a) != "channel" {
		t.Fatalf("Name(%d) = %q", a, Name(a))
	}
	if c := Intern("item"); c == a {
		t.Fatalf("distinct strings share id %d", c)
	}
}

func TestZeroIDIsEmptyString(t *testing.T) {
	if id := Intern(""); id != 0 {
		t.Fatalf("empty string id = %d, want 0", id)
	}
	if Name(0) != "" {
		t.Fatalf("Name(0) = %q", Name(0))
	}
}

func TestAttrInternMatchesPrefixedIntern(t *testing.T) {
	if got, want := AttrIntern("href"), Intern("@href"); got != want {
		t.Fatalf("AttrIntern(href) = %d, Intern(@href) = %d", got, want)
	}
	// Hit path (already cached) must agree too.
	if got, want := AttrIntern("href"), Intern("@href"); got != want {
		t.Fatalf("cached AttrIntern(href) = %d, Intern(@href) = %d", got, want)
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	before := Count()
	if _, ok := Lookup("sym-test-never-interned"); ok {
		t.Fatal("Lookup invented a symbol")
	}
	if Count() != before {
		t.Fatal("Lookup grew the table")
	}
	id := Intern("sym-test-now-interned")
	if got, ok := Lookup("sym-test-now-interned"); !ok || got != id {
		t.Fatalf("Lookup after Intern = (%d, %v), want (%d, true)", got, ok, id)
	}
}

func TestConcurrentInternIsConsistent(t *testing.T) {
	const goroutines = 8
	const symbols = 200
	ids := make([][]ID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, symbols)
			for i := 0; i < symbols; i++ {
				ids[g][i] = Intern(fmt.Sprintf("concurrent-%d", i))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < symbols; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d interned concurrent-%d as %d, goroutine 0 as %d", g, i, ids[g][i], ids[0][i])
			}
		}
	}
	for i := 0; i < symbols; i++ {
		if Name(ids[0][i]) != fmt.Sprintf("concurrent-%d", i) {
			t.Fatalf("Name(%d) = %q", ids[0][i], Name(ids[0][i]))
		}
	}
}
