package relation

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Int(4)) {
		t.Error("int equality broken")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality broken")
	}
	if Int(0).Equal(Str("")) {
		t.Error("int and string must not compare equal")
	}
}

func TestKeyIsSelfDelimiting(t *testing.T) {
	// ("ab", "c") and ("a", "bc") must produce distinct keys.
	a := Tuple{Str("ab"), Str("c")}
	b := Tuple{Str("a"), Str("bc")}
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Error("composite keys collide")
	}
	// (1, 23) vs (12, 3)
	c := Tuple{Int(1), Int(23)}
	d := Tuple{Int(12), Int(3)}
	if c.Key([]int{0, 1}) == d.Key([]int{0, 1}) {
		t.Error("int keys collide")
	}
}

func TestInsertAndSchema(t *testing.T) {
	r := New("docid", "node", "strVal")
	r.Insert(Int(1), Int(2), Str("Danny Ayers"))
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Schema.Col("node") != 1 {
		t.Errorf("col(node) = %d", r.Schema.Col("node"))
	}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	r.Insert(Int(1))
}

func TestSelectProjectDistinct(t *testing.T) {
	r := New("a", "b")
	r.Insert(Int(1), Str("x"))
	r.Insert(Int(1), Str("y"))
	r.Insert(Int(2), Str("x"))

	if got := r.SelectEq("a", Int(1)).Len(); got != 2 {
		t.Errorf("select = %d rows", got)
	}
	p := r.Project("b")
	if p.Len() != 3 || len(p.Schema) != 1 {
		t.Errorf("project = %v", p)
	}
	if got := p.Distinct().Len(); got != 2 {
		t.Errorf("distinct = %d", got)
	}
}

func TestHashJoinBasic(t *testing.T) {
	l := New("id", "name")
	l.Insert(Int(1), Str("a"))
	l.Insert(Int(2), Str("b"))
	r := New("id", "val")
	r.Insert(Int(1), Str("v1"))
	r.Insert(Int(1), Str("v2"))
	r.Insert(Int(3), Str("v3"))

	j := HashJoin(l, r, []string{"id"}, []string{"id"})
	if !reflect.DeepEqual([]string(j.Schema), []string{"id", "name", "val"}) {
		t.Fatalf("schema = %v", j.Schema)
	}
	if j.Len() != 2 {
		t.Fatalf("rows = %d", j.Len())
	}
	for _, row := range j.Rows {
		if row[0].I != 1 || row[1].S != "a" {
			t.Errorf("row = %v", row)
		}
	}
}

func TestHashJoinNameCollision(t *testing.T) {
	l := New("k", "x")
	l.Insert(Int(1), Int(10))
	r := New("k", "x")
	r.Insert(Int(1), Int(20))
	j := HashJoin(l, r, []string{"k"}, []string{"k"})
	if !reflect.DeepEqual([]string(j.Schema), []string{"k", "x", "x_r"}) {
		t.Fatalf("schema = %v", j.Schema)
	}
	if j.Rows[0][2].I != 20 {
		t.Errorf("row = %v", j.Rows[0])
	}
}

func TestHashJoinMultiColumn(t *testing.T) {
	l := New("a", "b", "p")
	l.Insert(Int(1), Str("x"), Int(100))
	l.Insert(Int(1), Str("y"), Int(200))
	r := New("c", "d", "q")
	r.Insert(Int(1), Str("x"), Int(300))
	j := HashJoin(l, r, []string{"a", "b"}, []string{"c", "d"})
	if j.Len() != 1 || j.Rows[0][2].I != 100 || j.Rows[0][3].I != 300 {
		t.Errorf("join = %v", j)
	}
	if !reflect.DeepEqual([]string(j.Schema), []string{"a", "b", "p", "q"}) {
		t.Errorf("schema = %v", j.Schema)
	}
}

func TestSemiJoin(t *testing.T) {
	l := New("s")
	l.Insert(Str("a"))
	l.Insert(Str("b"))
	l.Insert(Str("a"))
	r := New("t")
	r.Insert(Str("a"))
	r.Insert(Str("c"))
	sj := SemiJoin(l, r, []string{"s"}, []string{"t"})
	if sj.Len() != 2 {
		t.Errorf("semijoin = %v", sj)
	}
}

func TestCrossProduct(t *testing.T) {
	l := New("a")
	l.Insert(Int(1))
	l.Insert(Int(2))
	r := New("ts")
	r.Insert(Int(9))
	cp := CrossProduct(l, r)
	if cp.Len() != 2 || cp.Rows[0][1].I != 9 {
		t.Errorf("cross = %v", cp)
	}
	if !reflect.DeepEqual([]string(cp.Schema), []string{"a", "ts"}) {
		t.Errorf("schema = %v", cp.Schema)
	}
}

func TestUnionInPlace(t *testing.T) {
	a := New("x")
	a.Insert(Int(1))
	b := New("x")
	b.Insert(Int(2))
	a.UnionInPlace(b)
	if a.Len() != 2 {
		t.Errorf("union = %v", a)
	}
}

func TestIndexProbe(t *testing.T) {
	r := New("k", "v")
	r.Insert(Str("a"), Int(1))
	r.Insert(Str("a"), Int(2))
	r.Insert(Str("b"), Int(3))
	ix := r.BuildIndex("k")
	if got := len(ix.Probe(Str("a"))); got != 2 {
		t.Errorf("probe a = %d", got)
	}
	if got := len(ix.Probe(Str("zzz"))); got != 0 {
		t.Errorf("probe zzz = %d", got)
	}
}

func TestRename(t *testing.T) {
	r := New("a", "b")
	r.Insert(Int(1), Int(2))
	rn := r.Rename("x", "y")
	if rn.Schema.Col("y") != 1 || rn.Rows[0][1].I != 2 {
		t.Errorf("rename = %v", rn)
	}
}

// --- Property tests against a nested-loop oracle ---

func randomRelation(rng *rand.Rand, cols []string, n, domain int) *Relation {
	r := New(cols...)
	for i := 0; i < n; i++ {
		row := make(Tuple, len(cols))
		for j := range row {
			if rng.Intn(2) == 0 {
				row[j] = Int(int64(rng.Intn(domain)))
			} else {
				row[j] = Str(string(rune('a' + rng.Intn(domain))))
			}
		}
		r.InsertTuple(row)
	}
	return r
}

func nestedLoopJoin(l, r *Relation, lc, rc []string) [][]Value {
	li := l.Schema.Cols(lc...)
	ri := r.Schema.Cols(rc...)
	var out [][]Value
	for _, lt := range l.Rows {
		for _, rt := range r.Rows {
			match := true
			for k := range li {
				if !lt[li[k]].Equal(rt[ri[k]]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row := append(append([]Value{}, lt...), rt...)
			// Drop r's join columns to mirror HashJoin's schema.
			var kept []Value
			for i, v := range row {
				if i >= len(lt) {
					skip := false
					for _, rci := range ri {
						if i-len(lt) == rci {
							skip = true
						}
					}
					if skip {
						continue
					}
				}
				kept = append(kept, v)
			}
			out = append(out, kept)
		}
	}
	return out
}

func canonRows(rows []Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = Tuple(r).Key(identity(len(r)))
	}
	sort.Strings(out)
	return out
}

func TestPropertyHashJoinMatchesNestedLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomRelation(rng, []string{"a", "b"}, rng.Intn(20), 3)
		r := randomRelation(rng, []string{"c", "d"}, rng.Intn(20), 3)
		got := HashJoin(l, r, []string{"a"}, []string{"c"})
		oracle := nestedLoopJoin(l, r, []string{"a"}, []string{"c"})
		oracleTuples := make([]Tuple, len(oracle))
		for i, o := range oracle {
			oracleTuples[i] = Tuple(o)
		}
		return reflect.DeepEqual(canonRows(got.Rows), canonRows(oracleTuples))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySemiJoinSubset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randomRelation(rng, []string{"a", "b"}, rng.Intn(20), 3)
		r := randomRelation(rng, []string{"c"}, rng.Intn(20), 3)
		sj := SemiJoin(l, r, []string{"a"}, []string{"c"})
		// Every output row appears in l and has a partner in r.
		for _, t := range sj.Rows {
			found := false
			for _, rt := range r.Rows {
				if t[0].Equal(rt[0]) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Every l row with a partner is kept (multiset semantics).
		want := 0
		for _, lt := range l.Rows {
			for _, rt := range r.Rows {
				if lt[0].Equal(rt[0]) {
					want++
					break
				}
			}
		}
		return sj.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistinctIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, []string{"a", "b"}, rng.Intn(30), 2)
		d1 := r.Distinct()
		d2 := d1.Distinct()
		return reflect.DeepEqual(canonRows(d1.Rows), canonRows(d2.Rows)) && d1.Len() <= r.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
