package relation

import (
	"testing"

	"repro/internal/sym"
)

func TestArenaTupleIsolation(t *testing.T) {
	var a Arena
	t1 := a.Tuple(3)
	t2 := a.Tuple(2)
	t1[0], t1[1], t1[2] = Int(1), Int(2), Int(3)
	t2[0], t2[1] = Int(9), Int(8)
	if t1[0].I != 1 || t1[2].I != 3 || t2[0].I != 9 {
		t.Fatalf("arena tuples overlap: %v %v", t1, t2)
	}
	// Capacity is clamped: appending to t1 must not clobber t2.
	t3 := append(t1, Int(7))
	if t2[0].I != 9 {
		t.Fatalf("append to arena tuple bled into neighbour: %v", t2)
	}
	_ = t3
}

func TestArenaLargeTupleAndChunkRollover(t *testing.T) {
	var a Arena
	big := a.Tuple(arenaChunkMax + 5)
	if len(big) != arenaChunkMax+5 {
		t.Fatalf("large tuple len = %d", len(big))
	}
	for i := 0; i < 3*arenaChunkMax; i++ {
		tu := a.Tuple(3)
		if len(tu) != 3 {
			t.Fatalf("tuple len = %d", len(tu))
		}
	}
}

func TestArenaInsert(t *testing.T) {
	var a Arena
	r := New("doc", "node", "val")
	a.Insert(r, Int(1), Int(2), Str("x"))
	a.Insert(r, Int(3), Int(4), Str("y"))
	if r.Len() != 2 || r.Rows[1][2].S != "y" {
		t.Fatalf("arena insert rows = %v", r.Rows)
	}
}

func TestSymValueKind(t *testing.T) {
	id := sym.Intern("arena-test-val")
	v := Sym(id)
	if !v.Equal(Sym(id)) {
		t.Fatal("equal symbols compare unequal")
	}
	if v.Equal(Int(int64(id))) {
		t.Fatal("symbol compares equal to int of same id")
	}
	if v.Equal(Str("arena-test-val")) {
		t.Fatal("symbol compares equal to string of same text")
	}
	if v.String() != "arena-test-val" {
		t.Fatalf("Sym String = %q", v.String())
	}
	if v.SymID() != id {
		t.Fatalf("SymID = %d, want %d", v.SymID(), id)
	}
	// Key encoding is distinct per kind.
	ks := Tuple{Sym(id)}.Key([]int{0})
	ki := Tuple{Int(int64(id))}.Key([]int{0})
	kt := Tuple{Str("arena-test-val")}.Key([]int{0})
	if ks == ki || ks == kt {
		t.Fatalf("symbol key collides with other kinds: %q %q %q", ks, ki, kt)
	}
}
