package relation

// Arena slab-allocates tuples: many small rows are sliced out of large
// shared chunks, so building a witness relation costs one allocation per
// few thousand values instead of one per row. Tuples remain immutable after
// insertion by the package convention, and an arena is never reset or
// reused — dropping the arena and every relation built from it is how the
// memory is reclaimed (per-document use in internal/core). Arenas are not
// safe for concurrent use.
type Arena struct {
	chunk []Value
	// next is the size of the next chunk. Chunks grow geometrically from
	// arenaChunkStart to arenaChunkMax: a document with a handful of
	// witness rows pays for a small slab, a heavy one still amortizes to
	// one allocation per ~1000 rows.
	next int
}

// Chunk growth bounds, in values. Witness-relation rows are 2–6 values.
const (
	arenaChunkStart = 128
	arenaChunkMax   = 4096
)

// Tuple returns a zeroed n-value tuple carved from the arena. The tuple has
// capacity exactly n, so appending to it never bleeds into a neighbour.
func (a *Arena) Tuple(n int) Tuple {
	if n > len(a.chunk) {
		if a.next == 0 {
			a.next = arenaChunkStart
		}
		size := a.next
		if a.next < arenaChunkMax {
			a.next *= 2
		}
		if n > size {
			size = n
		}
		a.chunk = make([]Value, size)
	}
	t := Tuple(a.chunk[:n:n])
	a.chunk = a.chunk[n:]
	return t
}

// Insert appends a row built from vals to r, with the tuple's storage
// carved from the arena.
func (a *Arena) Insert(r *Relation, vals ...Value) {
	if len(vals) != len(r.Schema) {
		panic("relation: arena insert arity mismatch")
	}
	t := a.Tuple(len(vals))
	copy(t, vals)
	r.Rows = append(r.Rows, t)
}
