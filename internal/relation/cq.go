package relation

import (
	"fmt"
	"sort"
)

// Atom is one body atom of a conjunctive query: a relation whose columns are
// bound to conjunctive-query variables. Repeating a variable within an atom
// expresses an intra-atom equality selection; sharing variables across atoms
// expresses equi-joins. A column bound to "" (or "_") is projected away.
type Atom struct {
	Name string // for plan rendering and error messages
	Rel  *Relation
	Vars []string // one entry per column of Rel

	// Idx optionally carries a prebuilt hash index on Rel. When the join
	// order reaches this atom and all IdxVars are already bound by the
	// intermediate result, the evaluator probes the index per row instead
	// of scanning Rel — essential for the per-template query relations
	// RT, which hold one row per registered query and must not be
	// re-hashed for every document. IdxVars names the CQ variables bound
	// to the indexed columns, in index column order.
	Idx     *Index
	IdxVars []string
}

// EvalConjunctive evaluates the natural join of the atoms and projects the
// result onto the head variables. Join order is chosen greedily: start from
// the smallest relation, then repeatedly add the connected atom with the
// smallest relation (cross products are taken only when no connected atom
// remains, which well-formed MMQJP template queries never require).
//
// This evaluator plays the role the SQL engine plays in the paper: each
// query template's conjunctive query CQ_T (Section 4.4) is handed to it once
// per document.
func EvalConjunctive(atoms []Atom, head []string) *Relation {
	if len(atoms) == 0 {
		return New(head...)
	}
	for _, a := range atoms {
		if len(a.Vars) != len(a.Rel.Schema) {
			panic(fmt.Sprintf("relation: atom %s has %d vars for %d columns", a.Name, len(a.Vars), len(a.Rel.Schema)))
		}
	}

	// Intermediate results never outlive the evaluation (projectHead copies
	// the surviving rows onto the heap), so their tuples are carved from a
	// per-call arena — one allocation per slab instead of one per row.
	var ar Arena

	// Apply intra-atom selections (repeated variables) and drop ignored
	// columns, producing intermediate relations whose schemas are the CQ
	// variable names. Indexed atoms are handled by probing and skip this
	// conversion.
	work := make([]*Relation, len(atoms))
	for i, a := range atoms {
		if a.Idx == nil {
			work[i] = atomRelation(a, &ar)
		}
	}

	remaining := make([]int, 0, len(atoms))
	var indexed []int
	for i, a := range atoms {
		if a.Idx != nil {
			indexed = append(indexed, i)
		} else {
			remaining = append(remaining, i)
		}
	}
	if len(remaining) == 0 {
		panic("relation: conjunctive query with only indexed atoms")
	}
	// Start from the smallest relation.
	sort.Slice(remaining, func(i, j int) bool {
		return work[remaining[i]].Len() < work[remaining[j]].Len()
	})
	cur := work[remaining[0]]
	remaining = remaining[1:]

	for len(remaining) > 0 || len(indexed) > 0 {
		// Prefer an indexed atom whose key variables are fully bound.
		probed := false
		for k, idx := range indexed {
			if varsBound(cur.Schema, atoms[idx].IdxVars) {
				cur = probeJoin(cur, atoms[idx], &ar)
				indexed = append(indexed[:k], indexed[k+1:]...)
				probed = true
				break
			}
		}
		if probed {
			if cur.Len() == 0 {
				break
			}
			continue
		}
		if len(remaining) == 0 {
			// Indexed atoms whose keys never became bound: fall
			// back to scanning them.
			idx := indexed[0]
			indexed = indexed[1:]
			cur = naturalJoin(cur, atomRelation(atoms[idx], &ar), &ar)
			if cur.Len() == 0 {
				break
			}
			continue
		}
		// Pick the scan atom sharing the most variables with the
		// intermediate result (joins on more variables are more
		// selective; a size-first rule degenerates into near cross
		// products when several small atoms share only a low-
		// selectivity variable like docid). Ties go to the smaller
		// relation.
		best, bestShared := -1, 0
		for k, idx := range remaining {
			shared := sharedVarCount(cur.Schema, work[idx].Schema)
			if shared == 0 {
				continue
			}
			if best == -1 || shared > bestShared ||
				(shared == bestShared && work[idx].Len() < work[remaining[best]].Len()) {
				best, bestShared = k, shared
			}
		}
		if best == -1 {
			best = 0 // disconnected query: cross product
		}
		idx := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		cur = naturalJoin(cur, work[idx], &ar)
		if cur.Len() == 0 {
			// Short-circuit: the remaining joins cannot add rows,
			// but the head schema must still be correct.
			break
		}
	}
	return projectHead(cur, head)
}

// EvalConjunctiveOrdered evaluates the conjunctive query joining the scan
// atoms strictly in the order given (the caller is the query planner).
// Indexed atoms are probed as soon as their key variables are bound, as in
// EvalConjunctive. The MMQJP processor uses this entry point with the
// interleaved order value-join → left structural edge → right structural
// edge per template edge, which keeps intermediate results filtered.
func EvalConjunctiveOrdered(atoms []Atom, head []string) *Relation {
	if len(atoms) == 0 {
		return New(head...)
	}
	var scans, indexed []int
	for i, a := range atoms {
		if len(a.Vars) != len(a.Rel.Schema) {
			panic(fmt.Sprintf("relation: atom %s has %d vars for %d columns", a.Name, len(a.Vars), len(a.Rel.Schema)))
		}
		if a.Idx != nil {
			indexed = append(indexed, i)
		} else {
			scans = append(scans, i)
		}
	}
	if len(scans) == 0 {
		panic("relation: conjunctive query with only indexed atoms")
	}
	// As in EvalConjunctive, intermediates are arena-backed: projectHead
	// copies the result rows, so nothing carved here escapes the call.
	var ar Arena
	cur := atomRelation(atoms[scans[0]], &ar)
	scans = scans[1:]
	for (len(scans) > 0 || len(indexed) > 0) && cur.Len() > 0 {
		probed := false
		for k, idx := range indexed {
			if varsBound(cur.Schema, atoms[idx].IdxVars) {
				cur = probeJoin(cur, atoms[idx], &ar)
				indexed = append(indexed[:k], indexed[k+1:]...)
				probed = true
				break
			}
		}
		if probed {
			continue
		}
		var idx int
		if len(scans) > 0 {
			idx = scans[0]
			scans = scans[1:]
			cur = naturalJoin(cur, atomRelation(atoms[idx], &ar), &ar)
		} else {
			idx = indexed[0]
			indexed = indexed[1:]
			cur = naturalJoin(cur, atomRelation(atoms[idx], &ar), &ar)
		}
	}
	return projectHead(cur, head)
}

func varsBound(s Schema, vars []string) bool {
	for _, v := range vars {
		if !s.Has(v) {
			return false
		}
	}
	return true
}

// probeJoin joins cur with an indexed atom by probing the atom's index once
// per row of cur. Shared variables not covered by the index are verified
// per candidate row; unshared atom variables are appended to the output.
// Probes go through the index's map directly with a reused scratch key, so
// the per-row probe allocates nothing; output tuples come from ar.
func probeJoin(cur *Relation, a Atom, ar *Arena) *Relation {
	keyCols := make([]int, len(a.IdxVars))
	for i, v := range a.IdxVars {
		keyCols[i] = cur.Schema.Col(v)
	}
	// Classify atom columns: appended (new variable), checked (shared but
	// not an index key), or ignored.
	type check struct{ atomCol, curCol int }
	var checks []check
	var appendCols []int
	outSchema := append(Schema(nil), cur.Schema...)
	firstSeen := map[string]int{}
	type intraEq struct{ a, b int }
	var intra []intraEq
	for i, v := range a.Vars {
		if v == "" || v == "_" {
			continue
		}
		if j, ok := firstSeen[v]; ok {
			intra = append(intra, intraEq{j, i})
			continue
		}
		firstSeen[v] = i
		if cur.Schema.Has(v) {
			isKey := false
			for _, kv := range a.IdxVars {
				if kv == v {
					isKey = true
					break
				}
			}
			if !isKey {
				checks = append(checks, check{i, cur.Schema.Col(v)})
			}
			continue
		}
		appendCols = append(appendCols, i)
		outSchema = append(outSchema, v)
	}
	out := &Relation{Schema: outSchema}
	var kb []byte
	for _, ct := range cur.Rows {
		kb = kb[:0]
		for _, c := range keyCols {
			kb = ct[c].appendKey(kb)
		}
		for _, ri := range a.Idx.m[string(kb)] {
			at := a.Idx.rel.Rows[ri]
			ok := true
			for _, e := range intra {
				if !at[e.a].Equal(at[e.b]) {
					ok = false
					break
				}
			}
			for _, ch := range checks {
				if !at[ch.atomCol].Equal(ct[ch.curCol]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nt := ar.Tuple(len(outSchema))[:0]
			nt = append(nt, ct...)
			for _, c := range appendCols {
				nt = append(nt, at[c])
			}
			out.Rows = append(out.Rows, nt)
		}
	}
	return out
}

// atomRelation converts an atom to a relation over its variable names,
// applying intra-atom equality selections and dropping ignored columns.
// Copied rows are carved from ar; the common case — every column bound to a
// distinct variable — shares the atom's row slice outright (tuples are
// immutable by package convention, and the evaluator only reads them).
func atomRelation(a Atom, ar *Arena) *Relation {
	// Positions of the first occurrence of each kept variable.
	var outVars []string
	var outCols []int
	first := map[string]int{}
	type eq struct{ a, b int }
	var eqs []eq
	for i, v := range a.Vars {
		if v == "" || v == "_" {
			continue
		}
		if j, ok := first[v]; ok {
			eqs = append(eqs, eq{j, i})
			continue
		}
		first[v] = i
		outVars = append(outVars, v)
		outCols = append(outCols, i)
	}
	if len(eqs) == 0 && len(outCols) == len(a.Vars) {
		// Identity projection, no selections: alias the rows.
		return &Relation{Schema: Schema(outVars), Rows: a.Rel.Rows}
	}
	out := New(outVars...)
	for _, t := range a.Rel.Rows {
		ok := true
		for _, e := range eqs {
			if !t[e.a].Equal(t[e.b]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		nt := ar.Tuple(len(outCols))
		for k, c := range outCols {
			nt[k] = t[c]
		}
		out.Rows = append(out.Rows, nt)
	}
	return out
}

func connected(a, b Schema) bool {
	return sharedVarCount(a, b) > 0
}

func sharedVarCount(a, b Schema) int {
	n := 0
	for _, c := range b {
		if a.Has(c) {
			n++
		}
	}
	return n
}

// naturalJoin joins on all shared column names, carving output tuples from
// ar when non-nil.
func naturalJoin(l, r *Relation, ar *Arena) *Relation {
	var shared []string
	for _, c := range r.Schema {
		if l.Schema.Has(c) {
			shared = append(shared, c)
		}
	}
	if len(shared) == 0 {
		return crossProductArena(l, r, ar)
	}
	return hashJoinArena(l, r, shared, shared, ar)
}

func projectHead(r *Relation, head []string) *Relation {
	out := New(head...)
	idx := make([]int, len(head))
	for i, h := range head {
		if !r.Schema.Has(h) {
			// Short-circuited evaluation may not have joined the
			// atom providing h; the result is empty either way.
			return out
		}
		idx[i] = r.Schema.Col(h)
	}
	for _, t := range r.Rows {
		nt := make(Tuple, len(idx))
		for i, c := range idx {
			nt[i] = t[c]
		}
		out.Rows = append(out.Rows, nt)
	}
	return out
}
