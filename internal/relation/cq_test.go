package relation

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestEvalConjunctiveTriangle(t *testing.T) {
	// R(a,b), S(b,c), T(c,a): a triangle query.
	r := New("x", "y")
	r.Insert(Int(1), Int(2))
	r.Insert(Int(2), Int(3))
	s := New("x", "y")
	s.Insert(Int(2), Int(3))
	s.Insert(Int(3), Int(1))
	u := New("x", "y")
	u.Insert(Int(3), Int(1))

	got := EvalConjunctive([]Atom{
		{Name: "R", Rel: r, Vars: []string{"a", "b"}},
		{Name: "S", Rel: s, Vars: []string{"b", "c"}},
		{Name: "T", Rel: u, Vars: []string{"c", "a"}},
	}, []string{"a", "b", "c"})
	if got.Len() != 1 {
		t.Fatalf("rows = %d: %v", got.Len(), got)
	}
	if got.Rows[0][0].I != 1 || got.Rows[0][1].I != 2 || got.Rows[0][2].I != 3 {
		t.Errorf("row = %v", got.Rows[0])
	}
}

func TestEvalConjunctiveRepeatedVarSelection(t *testing.T) {
	r := New("a", "b")
	r.Insert(Int(1), Int(1))
	r.Insert(Int(1), Int(2))
	got := EvalConjunctive([]Atom{{Name: "R", Rel: r, Vars: []string{"x", "x"}}}, []string{"x"})
	if got.Len() != 1 || got.Rows[0][0].I != 1 {
		t.Errorf("got %v", got)
	}
}

func TestEvalConjunctiveIgnoredColumns(t *testing.T) {
	r := New("a", "b", "c")
	r.Insert(Int(1), Int(2), Int(3))
	got := EvalConjunctive([]Atom{{Name: "R", Rel: r, Vars: []string{"x", "_", ""}}}, []string{"x"})
	if got.Len() != 1 || got.Rows[0][0].I != 1 {
		t.Errorf("got %v", got)
	}
}

func TestEvalConjunctiveEmptyAtomShortCircuit(t *testing.T) {
	r := New("a")
	r.Insert(Int(1))
	empty := New("a")
	got := EvalConjunctive([]Atom{
		{Name: "R", Rel: r, Vars: []string{"x"}},
		{Name: "E", Rel: empty, Vars: []string{"x"}},
	}, []string{"x"})
	if got.Len() != 0 {
		t.Errorf("got %v", got)
	}
	if len(got.Schema) != 1 || got.Schema[0] != "x" {
		t.Errorf("schema = %v", got.Schema)
	}
}

func TestEvalConjunctiveCrossProduct(t *testing.T) {
	r := New("a")
	r.Insert(Int(1))
	r.Insert(Int(2))
	s := New("b")
	s.Insert(Str("x"))
	got := EvalConjunctive([]Atom{
		{Name: "R", Rel: r, Vars: []string{"u"}},
		{Name: "S", Rel: s, Vars: []string{"v"}},
	}, []string{"u", "v"})
	if got.Len() != 2 {
		t.Errorf("got %v", got)
	}
}

// Oracle: enumerate all assignments by brute force.
func bruteForceCQ(atoms []Atom, head []string) map[string]bool {
	// Collect variables.
	varSet := map[string]bool{}
	for _, a := range atoms {
		for _, v := range a.Vars {
			if v != "" && v != "_" {
				varSet[v] = true
			}
		}
	}
	var vars []string
	for v := range varSet {
		vars = append(vars, v)
	}
	// Candidate values per variable: any value appearing anywhere.
	var values []Value
	seen := map[string]bool{}
	for _, a := range atoms {
		for _, t := range a.Rel.Rows {
			for _, v := range t {
				k := v.String() + kindTag(v.Str)
				if !seen[k] {
					seen[k] = true
					values = append(values, v)
				}
			}
		}
	}
	results := map[string]bool{}
	assignment := map[string]Value{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			for _, a := range atoms {
				found := false
				for _, t := range a.Rel.Rows {
					ok := true
					for ci, vn := range a.Vars {
						if vn == "" || vn == "_" {
							continue
						}
						if !t[ci].Equal(assignment[vn]) {
							ok = false
							break
						}
					}
					if ok {
						found = true
						break
					}
				}
				if !found {
					return
				}
			}
			key := ""
			for _, h := range head {
				key += assignment[h].String() + kindTag(assignment[h].Str) + "|"
			}
			results[key] = true
			return
		}
		for _, v := range values {
			assignment[vars[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	return results
}

func kindTag(b bool) string {
	if b {
		return "s"
	}
	return "i"
}

func TestPropertyEvalConjunctiveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		// 2-3 atoms over 2-3 shared variables, tiny domains.
		varNames := []string{"x", "y", "z"}
		nAtoms := 2 + rng.Intn(2)
		atoms := make([]Atom, nAtoms)
		for i := range atoms {
			cols := 1 + rng.Intn(2)
			rel := New(colNames(cols)...)
			for r := 0; r < rng.Intn(6); r++ {
				row := make(Tuple, cols)
				for c := range row {
					row[c] = Int(int64(rng.Intn(3)))
				}
				rel.InsertTuple(row)
			}
			vars := make([]string, cols)
			for c := range vars {
				vars[c] = varNames[rng.Intn(len(varNames))]
			}
			atoms[i] = Atom{Name: "A", Rel: rel, Vars: vars}
		}
		head := usedVars(atoms)
		got := EvalConjunctive(atoms, head)

		want := bruteForceCQ(atoms, head)
		gotSet := map[string]bool{}
		for _, row := range got.Distinct().Rows {
			key := ""
			for _, v := range row {
				key += v.String() + kindTag(v.Str) + "|"
			}
			gotSet[key] = true
		}
		if !reflect.DeepEqual(gotSet, want) {
			t.Fatalf("trial %d: got %v want %v", trial, gotSet, want)
		}
	}
}

func colNames(n int) []string {
	names := []string{"c0", "c1", "c2"}
	return names[:n]
}

func usedVars(atoms []Atom) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range atoms {
		for _, v := range a.Vars {
			if v != "" && v != "_" && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func TestEvalConjunctiveIndexedAtom(t *testing.T) {
	// RT-style atom: big relation probed via a prebuilt index.
	rt := New("qid", "v0", "v1", "wl")
	rt.Insert(Int(1), Int(10), Int(20), Int(100))
	rt.Insert(Int(2), Int(10), Int(21), Int(200))
	rt.Insert(Int(3), Int(11), Int(20), Int(300))
	idx := rt.BuildIndex("v0", "v1")

	w := New("a", "b")
	w.Insert(Int(10), Int(20))
	w.Insert(Int(10), Int(21))
	w.Insert(Int(12), Int(20))

	got := EvalConjunctive([]Atom{
		{Name: "W", Rel: w, Vars: []string{"x", "y"}},
		{Name: "RT", Rel: rt, Vars: []string{"q", "x", "y", "wl"}, Idx: idx, IdxVars: []string{"x", "y"}},
	}, []string{"q", "x", "y", "wl"})
	if got.Len() != 2 {
		t.Fatalf("rows = %d: %v", got.Len(), got)
	}
	qids := map[int64]bool{}
	for _, r := range got.Rows {
		qids[r[0].I] = true
	}
	if !qids[1] || !qids[2] {
		t.Errorf("qids = %v", qids)
	}
}

func TestEvalConjunctiveIndexedAtomRepeatedVar(t *testing.T) {
	// Indexed atom with an intra-atom repeated variable.
	rt := New("qid", "v0", "v1")
	rt.Insert(Int(1), Int(10), Int(10))
	rt.Insert(Int(2), Int(10), Int(11))
	idx := rt.BuildIndex("v0")
	w := New("a")
	w.Insert(Int(10))
	got := EvalConjunctive([]Atom{
		{Name: "W", Rel: w, Vars: []string{"x"}},
		{Name: "RT", Rel: rt, Vars: []string{"q", "x", "x"}, Idx: idx, IdxVars: []string{"x"}},
	}, []string{"q"})
	if got.Len() != 1 || got.Rows[0][0].I != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestEvalConjunctiveIndexedFallbackToScan(t *testing.T) {
	// If the index keys never become bound, the atom is scanned.
	rt := New("qid", "v0")
	rt.Insert(Int(1), Int(10))
	idx := rt.BuildIndex("v0")
	w := New("a")
	w.Insert(Int(5))
	got := EvalConjunctive([]Atom{
		{Name: "W", Rel: w, Vars: []string{"a"}},
		{Name: "RT", Rel: rt, Vars: []string{"q", "z"}, Idx: idx, IdxVars: []string{"z"}},
	}, []string{"a", "q", "z"})
	if got.Len() != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestEvalConjunctiveOrderedMatchesGreedy(t *testing.T) {
	// The ordered evaluator must produce the same result set as the
	// greedy one on random conjunctive queries.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 80; trial++ {
		varNames := []string{"x", "y", "z", "w"}
		nAtoms := 2 + rng.Intn(3)
		atoms := make([]Atom, nAtoms)
		for i := range atoms {
			cols := 1 + rng.Intn(3)
			rel := New(colNames(cols)...)
			for r := 0; r < rng.Intn(7); r++ {
				row := make(Tuple, cols)
				for c := range row {
					row[c] = Int(int64(rng.Intn(3)))
				}
				rel.InsertTuple(row)
			}
			vars := make([]string, cols)
			for c := range vars {
				vars[c] = varNames[rng.Intn(len(varNames))]
			}
			atoms[i] = Atom{Name: "A", Rel: rel, Vars: vars}
		}
		head := usedVars(atoms)
		a := EvalConjunctive(atoms, head).Distinct()
		b := EvalConjunctiveOrdered(atoms, head).Distinct()
		if !reflect.DeepEqual(canonRows(a.Rows), canonRows(b.Rows)) {
			t.Fatalf("trial %d: ordered and greedy evaluation diverge", trial)
		}
	}
}

func TestEvalConjunctiveOrderedIndexedAtom(t *testing.T) {
	rt := New("qid", "v0")
	rt.Insert(Int(1), Int(10))
	rt.Insert(Int(2), Int(11))
	idx := rt.BuildIndex("v0")
	w := New("a")
	w.Insert(Int(10))
	got := EvalConjunctiveOrdered([]Atom{
		{Name: "W", Rel: w, Vars: []string{"x"}},
		{Name: "RT", Rel: rt, Vars: []string{"q", "x"}, Idx: idx, IdxVars: []string{"x"}},
	}, []string{"q"})
	if got.Len() != 1 || got.Rows[0][0].I != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestEvalConjunctiveOrderedEmptyShortCircuit(t *testing.T) {
	full := New("a")
	full.Insert(Int(1))
	empty := New("a")
	got := EvalConjunctiveOrdered([]Atom{
		{Name: "E", Rel: empty, Vars: []string{"x"}},
		{Name: "F", Rel: full, Vars: []string{"x"}},
	}, []string{"x"})
	if got.Len() != 0 {
		t.Fatalf("got %v", got)
	}
}
