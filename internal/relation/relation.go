// Package relation is the in-memory relational substrate of the MMQJP Join
// Processor. The paper evaluates its per-template conjunctive queries on a
// commercial SQL engine; this package plays that role here: typed tuples,
// named schemas, hash joins, semi-joins, selections, projections, unions and
// hash indexes — everything the Stage-2 plans of Sections 4 and 5 need.
//
// Values are int64s (document ids, node ids, window lengths, interned
// variable names), strings (node string values), or interned symbols
// (internal/sym ids standing for node string values on the hot join path:
// 4-byte compare-and-hash instead of re-hashing string bytes per row).
// Relations are append-only row stores; operators produce new relations and
// never mutate inputs, except for the explicit mutators Insert and
// UnionInPlace used for join state maintenance (Algorithm 2).
package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sym"
)

// Value is a single attribute value: an int64, a string, or an interned
// symbol.
type Value struct {
	I     int64
	S     string
	Str   bool // true when the value is the string S
	IsSym bool // true when the value is the interned symbol with id I
}

// Int returns an integer value.
func Int(i int64) Value { return Value{I: i} }

// Str returns a string value.
func Str(s string) Value { return Value{S: s, Str: true} }

// Sym returns an interned-symbol value. Symbols compare equal only to
// symbols (never to the Int of the same id or the Str of the same text), so
// plans cannot accidentally join an id column against a count column.
func Sym(id sym.ID) Value { return Value{I: int64(id), IsSym: true} }

// SymID returns the symbol id of an interned-symbol value. It panics on
// other kinds: reading a symbol out of a non-symbol column is a plan bug.
func (v Value) SymID() sym.ID {
	if !v.IsSym {
		panic("relation: SymID on non-symbol value")
	}
	return sym.ID(v.I)
}

// Equal reports value equality (distinct kinds never compare equal).
func (v Value) Equal(o Value) bool {
	if v.Str != o.Str || v.IsSym != o.IsSym {
		return false
	}
	if v.Str {
		return v.S == o.S
	}
	return v.I == o.I
}

// String renders the value for debugging and golden tests. Symbols render
// as their interned string, so goldens are identical whichever encoding a
// column uses.
func (v Value) String() string {
	if v.Str {
		return v.S
	}
	if v.IsSym {
		return sym.Name(sym.ID(v.I))
	}
	return fmt.Sprint(v.I)
}

// appendKey appends a self-delimiting encoding of v to b, for use in
// composite hash keys. The encoding is binary (kind tag, then an 8-byte
// length or integer, then string bytes); hash keys are built for every row
// of every join, so this path avoids fmt entirely. Symbols encode as their
// 4-byte id under a distinct tag — within one process equal symbols have
// equal ids, so key equality matches Equal.
func (v Value) appendKey(b []byte) []byte {
	if v.Str {
		n := uint64(len(v.S))
		b = append(b, 's',
			byte(n), byte(n>>8), byte(n>>16), byte(n>>24),
			byte(n>>32), byte(n>>40), byte(n>>48), byte(n>>56))
		return append(b, v.S...)
	}
	if v.IsSym {
		u := uint32(v.I)
		return append(b, 'y', byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	u := uint64(v.I)
	return append(b, 'i',
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// Tuple is one row.
type Tuple []Value

// Key encodes the tuple's values at the given column positions as a hash key.
func (t Tuple) Key(cols []int) string {
	return string(t.appendKeyCols(make([]byte, 0, 16*len(cols)), cols))
}

// appendKeyCols appends the hash-key encoding of the values at cols to b.
// The hot joins reuse one scratch buffer across rows and look keys up as
// m[string(buf)] — a form the compiler compiles without materializing the
// string — so steady-state probes allocate nothing.
func (t Tuple) appendKeyCols(b []byte, cols []int) []byte {
	for _, c := range cols {
		b = t[c].appendKey(b)
	}
	return b
}

// Schema is an ordered list of column names.
type Schema []string

// Col returns the position of the named column, or panics: schema mismatches
// are programming errors in plan construction, never data errors.
func (s Schema) Col(name string) int {
	for i, c := range s {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("relation: column %q not in schema %v", name, []string(s)))
}

// Cols maps several names to positions.
func (s Schema) Cols(names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = s.Col(n)
	}
	return out
}

// Has reports whether the schema contains the column.
func (s Schema) Has(name string) bool {
	for _, c := range s {
		if c == name {
			return true
		}
	}
	return false
}

// Relation is a named-schema row store.
type Relation struct {
	Schema Schema
	Rows   []Tuple
}

// New creates an empty relation with the given columns.
func New(cols ...string) *Relation {
	return &Relation{Schema: Schema(cols)}
}

// Insert appends a row. The number of values must match the schema.
func (r *Relation) Insert(vals ...Value) {
	if len(vals) != len(r.Schema) {
		panic(fmt.Sprintf("relation: inserting %d values into %d-column schema %v", len(vals), len(r.Schema), r.Schema))
	}
	r.Rows = append(r.Rows, Tuple(vals))
}

// InsertTuple appends a row without copying.
func (r *Relation) InsertTuple(t Tuple) {
	if len(t) != len(r.Schema) {
		panic("relation: tuple arity mismatch")
	}
	r.Rows = append(r.Rows, t)
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone returns a deep-enough copy (rows are shared; tuples are immutable by
// convention).
func (r *Relation) Clone() *Relation {
	return &Relation{Schema: r.Schema, Rows: append([]Tuple(nil), r.Rows...)}
}

// UnionInPlace appends all rows of o, whose schema must be identical.
// This is the ∪ of Algorithm 2 (join state maintenance).
func (r *Relation) UnionInPlace(o *Relation) {
	if len(r.Schema) != len(o.Schema) {
		panic("relation: union schema mismatch")
	}
	r.Rows = append(r.Rows, o.Rows...)
}

// Select returns the rows satisfying pred.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := &Relation{Schema: r.Schema}
	for _, t := range r.Rows {
		if pred(t) {
			out.Rows = append(out.Rows, t)
		}
	}
	return out
}

// SelectEq returns the rows whose named column equals v.
func (r *Relation) SelectEq(col string, v Value) *Relation {
	c := r.Schema.Col(col)
	return r.Select(func(t Tuple) bool { return t[c].Equal(v) })
}

// Project returns the relation restricted to the named columns (in the given
// order), without deduplication.
func (r *Relation) Project(cols ...string) *Relation {
	idx := r.Schema.Cols(cols...)
	out := New(cols...)
	for _, t := range r.Rows {
		nt := make(Tuple, len(idx))
		for i, c := range idx {
			nt[i] = t[c]
		}
		out.Rows = append(out.Rows, nt)
	}
	return out
}

// Distinct returns the relation with duplicate rows removed (all columns).
func (r *Relation) Distinct() *Relation {
	all := make([]int, len(r.Schema))
	for i := range all {
		all[i] = i
	}
	seen := map[string]bool{}
	out := &Relation{Schema: r.Schema}
	var kb []byte
	for _, t := range r.Rows {
		kb = t.appendKeyCols(kb[:0], all)
		// The map lookup with string(kb) is allocation-free; the key string
		// is materialized only for the first occurrence of each row.
		if !seen[string(kb)] {
			seen[string(kb)] = true
			out.Rows = append(out.Rows, t)
		}
	}
	return out
}

// Rename returns a relation with the same rows and renamed columns.
func (r *Relation) Rename(cols ...string) *Relation {
	if len(cols) != len(r.Schema) {
		panic("relation: rename arity mismatch")
	}
	return &Relation{Schema: Schema(cols), Rows: r.Rows}
}

// Index is a hash index over a column set.
type Index struct {
	rel  *Relation
	cols []int
	m    map[string][]int
}

// BuildIndex builds a hash index on the named columns.
func (r *Relation) BuildIndex(cols ...string) *Index {
	idx := &Index{rel: r, cols: r.Schema.Cols(cols...), m: map[string][]int{}}
	var kb []byte
	for i, t := range r.Rows {
		kb = t.appendKeyCols(kb[:0], idx.cols)
		idx.m[string(kb)] = append(idx.m[string(kb)], i)
	}
	return idx
}

// Probe returns the rows matching the given key values.
func (ix *Index) Probe(vals ...Value) []Tuple {
	k := Tuple(vals).Key(identity(len(vals)))
	rows := ix.m[k]
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = ix.rel.Rows[r]
	}
	return out
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// HashJoin computes the equi-join of l and r on lCols = rCols. The output
// schema is l's columns followed by r's columns minus r's join columns;
// colliding names on the r side are suffixed with "_r".
func HashJoin(l, r *Relation, lCols, rCols []string) *Relation {
	return hashJoinArena(l, r, lCols, rCols, nil)
}

// hashJoinArena is HashJoin with the output tuples optionally carved from
// an arena (nil = heap). The conjunctive evaluator passes a per-call arena
// for its intermediate results, which never outlive the evaluation.
//
// The build table maps key → group index rather than key → rows: a scratch
// buffer plus map-access-by-string(buf) keeps the probe side allocation-free
// and materializes each key string once per distinct key, not once per row.
func hashJoinArena(l, r *Relation, lCols, rCols []string, ar *Arena) *Relation {
	li := l.Schema.Cols(lCols...)
	ri := r.Schema.Cols(rCols...)
	if len(li) != len(ri) {
		panic("relation: join column count mismatch")
	}

	// Output schema.
	keep := make([]int, 0, len(r.Schema))
	outSchema := append(Schema(nil), l.Schema...)
	for i, c := range r.Schema {
		skip := false
		for _, rc := range ri {
			if i == rc {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		keep = append(keep, i)
		name := c
		if outSchema.Has(name) {
			name += "_r"
		}
		outSchema = append(outSchema, name)
	}
	out := &Relation{Schema: outSchema}

	// Build on the smaller side.
	buildRows, probeRows := l.Rows, r.Rows
	buildCols, probeCols := li, ri
	buildIsLeft := true
	if len(r.Rows) < len(l.Rows) {
		buildRows, probeRows = r.Rows, l.Rows
		buildCols, probeCols = ri, li
		buildIsLeft = false
	}
	groupOf := map[string]int{}
	var groups [][]Tuple
	var kb []byte
	for _, t := range buildRows {
		kb = t.appendKeyCols(kb[:0], buildCols)
		gi, ok := groupOf[string(kb)]
		if !ok {
			gi = len(groups)
			groups = append(groups, nil)
			groupOf[string(kb)] = gi
		}
		groups[gi] = append(groups[gi], t)
	}
	for _, pt := range probeRows {
		kb = pt.appendKeyCols(kb[:0], probeCols)
		gi, ok := groupOf[string(kb)]
		if !ok {
			continue
		}
		for _, bt := range groups[gi] {
			lt, rt := bt, pt
			if !buildIsLeft {
				lt, rt = pt, bt
			}
			out.Rows = append(out.Rows, joinTuple(lt, rt, keep, ar))
		}
	}
	return out
}

func joinTuple(l, r Tuple, keep []int, ar *Arena) Tuple {
	var nt Tuple
	if ar != nil {
		nt = ar.Tuple(len(l) + len(keep))[:0]
	} else {
		nt = make(Tuple, 0, len(l)+len(keep))
	}
	nt = append(nt, l...)
	for _, k := range keep {
		nt = append(nt, r[k])
	}
	return nt
}

// SemiJoin returns the rows of l that have at least one join partner in r
// (l ⋉ r). Used by Algorithm 4 line 2 to compute the common string set STR.
func SemiJoin(l, r *Relation, lCols, rCols []string) *Relation {
	li := l.Schema.Cols(lCols...)
	ri := r.Schema.Cols(rCols...)
	present := map[string]bool{}
	var kb []byte
	for _, t := range r.Rows {
		kb = t.appendKeyCols(kb[:0], ri)
		if !present[string(kb)] {
			present[string(kb)] = true
		}
	}
	out := &Relation{Schema: l.Schema}
	for _, t := range l.Rows {
		kb = t.appendKeyCols(kb[:0], li)
		if present[string(kb)] {
			out.Rows = append(out.Rows, t)
		}
	}
	return out
}

// CrossProduct returns l × r. Used by Algorithm 2 to stamp witness relations
// with the current document's timestamp.
func CrossProduct(l, r *Relation) *Relation {
	return crossProductArena(l, r, nil)
}

func crossProductArena(l, r *Relation, ar *Arena) *Relation {
	outSchema := append(Schema(nil), l.Schema...)
	for _, c := range r.Schema {
		name := c
		if outSchema.Has(name) {
			name += "_r"
		}
		outSchema = append(outSchema, name)
	}
	out := &Relation{Schema: outSchema}
	for _, lt := range l.Rows {
		for _, rt := range r.Rows {
			var nt Tuple
			if ar != nil {
				nt = ar.Tuple(len(lt) + len(rt))[:0]
			} else {
				nt = make(Tuple, 0, len(lt)+len(rt))
			}
			nt = append(nt, lt...)
			nt = append(nt, rt...)
			out.Rows = append(out.Rows, nt)
		}
	}
	return out
}

// String renders the relation as an aligned table, rows sorted, for golden
// tests and the xsclc inspector.
func (r *Relation) String() string {
	var rows []string
	for _, t := range r.Rows {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.String()
		}
		rows = append(rows, strings.Join(parts, " | "))
	}
	sort.Strings(rows)
	return strings.Join(append([]string{strings.Join(r.Schema, " | ")}, rows...), "\n")
}
