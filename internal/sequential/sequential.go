// Package sequential implements the paper's baseline: one-query-at-a-time
// evaluation of the FOLLOWED BY / JOIN operators ("Sequential" in the
// figures of Section 6).
//
// The baseline shares Stage 1 with MMQJP — the experiments of the paper
// measure join processing cost, so both systems consume the same witnesses —
// but Stage 2 is a nested-loop strategy whose outer loop iterates over every
// registered query and whose inner loops pair the current document's
// witnesses with every stored witness of the query's other block, checking
// each value-join predicate by string comparison. There is no sharing of
// storage or computation between queries beyond the witness store itself.
package sequential

import (
	"fmt"
	"math"
	"time"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/xscl"
	"repro/internal/yfilter"
)

// QueryID identifies a registered query.
type QueryID int64

// Match mirrors core.Match for the fields the baseline produces.
type Match struct {
	Query               QueryID
	LeftDoc, RightDoc   xmldoc.DocID
	LeftTS, RightTS     xmldoc.Timestamp
	LeftRoot, RightRoot xmldoc.NodeID
}

// storedWitness is one witness of one pattern in one past document.
type storedWitness struct {
	doc      xmldoc.DocID
	ts       xmldoc.Timestamp
	seq      int64 // arrival index, for tuple-based windows
	bindings []xmldoc.NodeID
	// strVals[i] is the string value of bindings[i] (pattern node i),
	// captured at processing time so past documents need not be retained.
	strVals []string
}

// queryPlan is the per-query evaluation plan: the pattern ids of its blocks
// and, per predicate, the pattern node indexes whose string values must be
// equal.
type queryPlan struct {
	id         QueryID
	op         xscl.OpKind
	window     int64
	windowKind xscl.WindowKind
	left       yfilter.PatternID
	right      yfilter.PatternID
	leftVJ     []int32 // pattern node index per predicate, left block
	rightVJ    []int32 // pattern node index per predicate, right block
}

// Processor is the sequential baseline engine.
type Processor struct {
	xp *yfilter.Engine
	// queries is indexed by QueryID; Unregister leaves a nil slot so ids
	// stay stable. numQueries counts live slots.
	queries    []*queryPlan
	numQueries int
	// plansByP refcounts, per distinct pattern, the live join-query block
	// references; the witness store of a pattern whose count reaches zero
	// is reclaimed.
	plansByP map[yfilter.PatternID]int

	// store holds, per distinct pattern, the witnesses of all previous
	// documents.
	store map[yfilter.PatternID][]storedWitness

	maxFiniteWindow int64
	maxCountWindow  int64
	anyInfWindow    bool
	nextSeq         int64

	joinTime time.Duration
	matches  int64
	docs     int64
}

// NewProcessor returns an empty baseline processor.
func NewProcessor() *Processor {
	return &Processor{
		xp:       yfilter.NewEngine(),
		plansByP: map[yfilter.PatternID]int{},
		store:    map[yfilter.PatternID][]storedWitness{},
	}
}

// NumQueries returns the number of live (registered, not unregistered)
// queries.
func (p *Processor) NumQueries() int { return p.numQueries }

// JoinTime returns the cumulative wall-clock time spent in per-query join
// evaluation (the quantity the paper's figures report for Sequential).
func (p *Processor) JoinTime() time.Duration { return p.joinTime }

// NumDocs returns the number of documents processed since the last
// ResetStats.
func (p *Processor) NumDocs() int64 { return p.docs }

// NumMatches returns the number of matches emitted since the last
// ResetStats.
func (p *Processor) NumMatches() int64 { return p.matches }

// ResetStats zeroes the timers and counters.
func (p *Processor) ResetStats() { p.joinTime = 0; p.matches = 0; p.docs = 0 }

// Register adds a query.
func (p *Processor) Register(q *xscl.Query) (QueryID, error) {
	qid := QueryID(len(p.queries))
	if q.Op == xscl.OpNone {
		lp, _ := q.Left.NormalizedFullyBound()
		p.queries = append(p.queries, &queryPlan{
			id: qid, op: q.Op, left: p.xp.Register(lp), right: -1,
		})
		p.numQueries++
		return qid, nil
	}
	lp, lmap := q.Left.NormalizedFullyBound()
	rp, rmap := q.Right.NormalizedFullyBound()
	plan := &queryPlan{
		id: qid, op: q.Op, window: q.Window, windowKind: q.WindowKind,
		left:  p.xp.Register(lp),
		right: p.xp.Register(rp),
	}
	for _, pr := range q.Preds {
		ln := q.Left.VarNode(pr.LeftVar)
		rn := q.Right.VarNode(pr.RightVar)
		plan.leftVJ = append(plan.leftVJ, int32(lmap[ln.Index]))
		plan.rightVJ = append(plan.rightVJ, int32(rmap[rn.Index]))
	}
	p.queries = append(p.queries, plan)
	p.numQueries++
	p.plansByP[plan.left]++
	p.plansByP[plan.right]++
	p.noteWindow(q.Window, q.WindowKind)
	return qid, nil
}

// noteWindow folds one join query's window into the GC maxima (shared by
// Register and the Unregister recompute).
func (p *Processor) noteWindow(window int64, kind xscl.WindowKind) {
	switch {
	case window == xscl.WindowInf:
		p.anyInfWindow = true
	case kind == xscl.WindowCount:
		if window > p.maxCountWindow {
			p.maxCountWindow = window
		}
	default:
		if window > p.maxFiniteWindow {
			p.maxFiniteWindow = window
		}
	}
}

// MustRegister is Register, panicking on error.
func (p *Processor) MustRegister(q *xscl.Query) QueryID {
	id, err := p.Register(q)
	if err != nil {
		panic(err)
	}
	return id
}

// Unregister removes a query. The witness store of a pattern no surviving
// join query reads is reclaimed, window maxima are recomputed from the
// survivors, and unregistering the last query empties the store entirely.
// Query ids are never reused.
func (p *Processor) Unregister(id QueryID) error {
	if id < 0 || int(id) >= len(p.queries) || p.queries[id] == nil {
		return fmt.Errorf("sequential: unknown query id %d", id)
	}
	plan := p.queries[id]
	p.queries[id] = nil
	p.numQueries--
	if plan.op != xscl.OpNone {
		for _, pid := range []yfilter.PatternID{plan.left, plan.right} {
			if p.plansByP[pid]--; p.plansByP[pid] == 0 {
				delete(p.plansByP, pid)
				delete(p.store, pid)
			}
		}
	}
	p.maxFiniteWindow, p.maxCountWindow, p.anyInfWindow = 0, 0, false
	for _, pl := range p.queries {
		if pl != nil && pl.op != xscl.OpNone {
			p.noteWindow(pl.window, pl.windowKind)
		}
	}
	return nil
}

// Process evaluates all queries against the incoming document, one query at
// a time, and appends the document's witnesses to the store.
func (p *Processor) Process(stream string, d *xmldoc.Document) []Match {
	p.docs++
	res := p.xp.MatchDocument(stream, d)

	// Current witnesses per pattern (computed once; Stage 1 is shared).
	cur := map[yfilter.PatternID][]xpath.Witness{}
	witnessesOf := func(id yfilter.PatternID) []xpath.Witness {
		if id < 0 {
			return nil
		}
		if ws, ok := cur[id]; ok {
			return ws
		}
		ws := res.Witnesses(id)
		cur[id] = ws
		return ws
	}

	var out []Match
	t0 := time.Now()
	for _, plan := range p.queries {
		if plan == nil {
			continue
		}
		if plan.op == xscl.OpNone {
			for _, w := range witnessesOf(plan.left) {
				out = append(out, Match{
					Query:   plan.id,
					LeftDoc: d.ID, RightDoc: d.ID,
					LeftTS: d.Timestamp, RightTS: d.Timestamp,
					LeftRoot: w.Bindings[0], RightRoot: w.Bindings[0],
				})
			}
			continue
		}
		// Current document as the right block: pair with stored left
		// witnesses.
		rws := witnessesOf(plan.right)
		if len(rws) > 0 {
			for _, sw := range p.store[plan.left] {
				if !p.windowOK(plan, sw, d) {
					continue
				}
				for _, rw := range rws {
					if p.predsMatch(plan, sw, rw, d) {
						out = append(out, Match{
							Query:   plan.id,
							LeftDoc: sw.doc, RightDoc: d.ID,
							LeftTS: sw.ts, RightTS: d.Timestamp,
							LeftRoot: sw.bindings[0], RightRoot: rw.Bindings[0],
						})
					}
				}
			}
		}
		// For the symmetric JOIN, also pair the current document as
		// the left block with stored right-block witnesses.
		if plan.op == xscl.OpJoin {
			lws := witnessesOf(plan.left)
			if len(lws) > 0 {
				for _, sw := range p.store[plan.right] {
					if !p.windowOK(plan, sw, d) {
						continue
					}
					for _, lw := range lws {
						if p.predsMatchSwapped(plan, lw, sw, d) {
							out = append(out, Match{
								Query:   plan.id,
								LeftDoc: d.ID, RightDoc: sw.doc,
								LeftTS: d.Timestamp, RightTS: sw.ts,
								LeftRoot: lw.Bindings[0], RightRoot: sw.bindings[0],
							})
						}
					}
				}
			}
		}
	}
	p.joinTime += time.Since(t0)
	p.matches += int64(len(out))

	// Store the current document's witnesses for every pattern that any
	// join query reads.
	for pid := range p.plansByP {
		for _, w := range witnessesOf(pid) {
			sw := storedWitness{
				doc: d.ID, ts: d.Timestamp, seq: p.nextSeq,
				bindings: w.Bindings,
				strVals:  make([]string, len(w.Bindings)),
			}
			for i, b := range w.Bindings {
				sw.strVals[i] = d.StringValue(b)
			}
			p.store[pid] = append(p.store[pid], sw)
		}
	}
	p.nextSeq++
	p.gc(d.Timestamp)
	return out
}

// windowOK applies the per-query window constraint: Δ is the timestamp
// difference for time windows, the arrival-index difference for tuple
// windows.
func (p *Processor) windowOK(plan *queryPlan, sw storedWitness, d *xmldoc.Document) bool {
	var delta int64
	if plan.windowKind == xscl.WindowCount {
		delta = p.nextSeq - sw.seq
	} else {
		delta = int64(d.Timestamp - sw.ts)
	}
	if plan.op == xscl.OpJoin {
		return 0 <= delta && delta <= plan.window
	}
	return 0 < delta && delta <= plan.window
}

// predsMatch checks every value-join predicate of the plan between a stored
// left witness and a current right witness.
func (p *Processor) predsMatch(plan *queryPlan, sw storedWitness, rw xpath.Witness, d *xmldoc.Document) bool {
	for i := range plan.leftVJ {
		if sw.strVals[plan.leftVJ[i]] != d.StringValue(rw.Bindings[plan.rightVJ[i]]) {
			return false
		}
	}
	return true
}

// predsMatchSwapped checks predicates with the current document as the left
// block and a stored witness as the right block.
func (p *Processor) predsMatchSwapped(plan *queryPlan, lw xpath.Witness, sw storedWitness, d *xmldoc.Document) bool {
	for i := range plan.leftVJ {
		if d.StringValue(lw.Bindings[plan.leftVJ[i]]) != sw.strVals[plan.rightVJ[i]] {
			return false
		}
	}
	return true
}

// gc drops stored witnesses that fell out of every window (both the time
// and the tuple dimension).
func (p *Processor) gc(now xmldoc.Timestamp) {
	if p.anyInfWindow || (p.maxFiniteWindow == 0 && p.maxCountWindow == 0) {
		return
	}
	cutoffTS := xmldoc.Timestamp(int64(math.MaxInt64))
	if p.maxFiniteWindow > 0 {
		cutoffTS = now - xmldoc.Timestamp(p.maxFiniteWindow)
	}
	cutoffSeq := int64(math.MaxInt64)
	if p.maxCountWindow > 0 {
		cutoffSeq = p.nextSeq - p.maxCountWindow
	}
	for pid, sws := range p.store {
		// Witnesses are appended in arrival order; find the first
		// survivor.
		i := 0
		for i < len(sws) && sws[i].ts < cutoffTS && sws[i].seq < cutoffSeq {
			i++
		}
		if i > 0 && (i >= 32 || 2*i >= len(sws)) {
			p.store[pid] = append([]storedWitness(nil), sws[i:]...)
		}
	}
}
