package sequential

import (
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

func TestPaperExample(t *testing.T) {
	p := NewProcessor()
	q1 := p.MustRegister(xscl.PaperQ1(1000))
	q2 := p.MustRegister(xscl.PaperQ2(1000))
	p.MustRegister(xscl.PaperQ3(1000))

	if got := p.Process("S", xmldoc.PaperD1(1, 100)); len(got) != 0 {
		t.Fatalf("d1 fired: %v", got)
	}
	ms := p.Process("S", xmldoc.PaperD2(2, 200))
	fired := map[QueryID]int{}
	for _, m := range ms {
		fired[m.Query]++
		if m.LeftDoc != 1 || m.RightDoc != 2 {
			t.Errorf("docs = %d -> %d", m.LeftDoc, m.RightDoc)
		}
	}
	if fired[q1] == 0 || fired[q2] == 0 {
		t.Errorf("fired = %v, want Q1 and Q2", fired)
	}
	if len(fired) != 2 {
		t.Errorf("queries fired = %d, want 2", len(fired))
	}
}

func TestWindowAndDirection(t *testing.T) {
	p := NewProcessor()
	p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 50} S//b->y"))
	mk := func(id xmldoc.DocID, ts xmldoc.Timestamp, tag string) *xmldoc.Document {
		b := xmldoc.NewBuilder(id, ts, tag)
		b.SetText(0, "v")
		return b.Build()
	}
	p.Process("S", mk(1, 100, "a"))
	if len(p.Process("S", mk(2, 100, "b"))) != 0 {
		t.Error("delta=0 fired for FOLLOWED BY")
	}
	if len(p.Process("S", mk(3, 150, "b"))) != 1 {
		t.Error("in-window FOLLOWED BY did not fire")
	}
	if len(p.Process("S", mk(4, 151, "b"))) != 0 {
		t.Error("out-of-window fired")
	}
}

func TestJoinSymmetry(t *testing.T) {
	p := NewProcessor()
	p.MustRegister(xscl.MustParse("S//a->x JOIN{x=y, 100} S//b->y"))
	mk := func(id xmldoc.DocID, ts xmldoc.Timestamp, tag string) *xmldoc.Document {
		b := xmldoc.NewBuilder(id, ts, tag)
		b.SetText(0, "v")
		return b.Build()
	}
	p.Process("S", mk(1, 100, "b"))
	ms := p.Process("S", mk(2, 150, "a"))
	if len(ms) != 1 || ms[0].LeftDoc != 2 || ms[0].RightDoc != 1 {
		t.Errorf("join matches = %v", ms)
	}
}

func TestSingleBlock(t *testing.T) {
	p := NewProcessor()
	qid := p.MustRegister(xscl.MustParse("S//book->x"))
	ms := p.Process("S", xmldoc.PaperD1(1, 100))
	if len(ms) != 1 || ms[0].Query != qid {
		t.Errorf("matches = %v", ms)
	}
}

func TestGCBoundsState(t *testing.T) {
	p := NewProcessor()
	p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 10} S//a->y"))
	mk := func(id xmldoc.DocID, ts xmldoc.Timestamp) *xmldoc.Document {
		b := xmldoc.NewBuilder(id, ts, "a")
		b.SetText(0, "v")
		return b.Build()
	}
	for i := 0; i < 200; i++ {
		p.Process("S", mk(xmldoc.DocID(i+1), xmldoc.Timestamp(i*20)))
	}
	total := 0
	for _, sws := range p.store {
		total += len(sws)
	}
	if total > 80 {
		t.Errorf("store holds %d witnesses after GC", total)
	}
}

func TestJoinTimeAccumulates(t *testing.T) {
	p := NewProcessor()
	p.MustRegister(xscl.PaperQ1(1000))
	p.Process("S", xmldoc.PaperD1(1, 100))
	p.Process("S", xmldoc.PaperD2(2, 200))
	if p.JoinTime() == 0 {
		t.Error("join time not recorded")
	}
	p.ResetStats()
	if p.JoinTime() != 0 {
		t.Error("reset failed")
	}
}

func TestUnregisterLifecycle(t *testing.T) {
	p := NewProcessor()
	q1 := p.MustRegister(xscl.PaperQ1(1000))
	q2 := p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 10} S//a->y"))
	if p.NumQueries() != 2 {
		t.Fatalf("NumQueries = %d", p.NumQueries())
	}
	if err := p.Unregister(q2); err != nil {
		t.Fatal(err)
	}
	if p.NumQueries() != 1 {
		t.Errorf("NumQueries = %d after unregister", p.NumQueries())
	}
	if err := p.Unregister(q2); err == nil {
		t.Error("double unregister accepted")
	}
	if err := p.Unregister(QueryID(42)); err == nil {
		t.Error("unknown id accepted")
	}
	// Survivor still matches, window maxima recomputed from survivors.
	if p.maxFiniteWindow != 1000 {
		t.Errorf("maxFiniteWindow = %d, want 1000", p.maxFiniteWindow)
	}
	p.Process("S", xmldoc.PaperD1(1, 100))
	ms := p.Process("S", xmldoc.PaperD2(2, 200))
	if len(ms) != 1 || ms[0].Query != q1 {
		t.Errorf("survivor matches = %v", ms)
	}
	// Draining the last query reclaims the witness stores of its patterns.
	if err := p.Unregister(q1); err != nil {
		t.Fatal(err)
	}
	if p.NumQueries() != 0 {
		t.Errorf("NumQueries = %d after drain", p.NumQueries())
	}
	total := 0
	for _, sws := range p.store {
		total += len(sws)
	}
	if total != 0 {
		t.Errorf("witness store holds %d rows after draining all queries", total)
	}
	if p.maxFiniteWindow != 0 || p.anyInfWindow || p.maxCountWindow != 0 {
		t.Errorf("window maxima survive drain: %d %d %v", p.maxFiniteWindow, p.maxCountWindow, p.anyInfWindow)
	}
	// An unregistered query's matches never reappear.
	p.Process("S", xmldoc.PaperD1(3, 300))
	if ms := p.Process("S", xmldoc.PaperD2(4, 400)); len(ms) != 0 {
		t.Errorf("drained processor produced matches: %v", ms)
	}
}
