// Package xscl implements the XML Stream Conjunctive Language of Section 2
// of the paper: the query language of the MMQJP publish/subscribe system.
//
// An XSCL query consists of an optional SELECT clause (only the default
// SELECT * is supported, producing the paper's default output tree), a FROM
// clause combining one or two XPath query blocks with a windowed join
// operator, and an optional PUBLISH clause naming the output stream:
//
//	SELECT * FROM
//	  S//book->x1[.//author->x2][.//title->x3]
//	  FOLLOWED BY{x2=x5 AND x3=x6, 100}
//	  S//blog->x4[.//author->x5][.//title->x6]
//	PUBLISH matches
//
// SELECT * FROM and PUBLISH may be omitted; the FROM expression alone is a
// valid query. The join operators are FOLLOWED BY (sequence: the left event
// strictly precedes the right event) and JOIN (symmetric window join); both
// take a conjunctive equality predicate over variables and a window length
// in time units (or INF for an unbounded window).
//
// Queries are validated into the paper's value-join normal form: every
// equality predicate must relate one variable bound in the left block to one
// variable bound in the right block (predicates written right=left are
// swapped into place).
package xscl

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/xpath"
)

// WindowInf is the window length representing an unbounded window (∞).
const WindowInf int64 = math.MaxInt64

// WindowKind distinguishes time-based windows (the paper's T parameter)
// from tuple-based windows (ROWS n — "all our techniques extend to
// tuple-based window joins", Section 2).
type WindowKind uint8

const (
	// WindowTime interprets the window as a timestamp difference bound.
	WindowTime WindowKind = iota
	// WindowCount interprets the window as an event-count bound: the two
	// events must be at most n stream positions apart.
	WindowCount
)

// OpKind is the join operator of a two-block query.
type OpKind uint8

const (
	// OpNone marks a single-block query (pure tree-pattern filter).
	OpNone OpKind = iota
	// OpFollowedBy is the sequencing operator: left strictly before
	// right, within the window.
	OpFollowedBy
	// OpJoin is the symmetric time-window join.
	OpJoin
)

func (o OpKind) String() string {
	switch o {
	case OpFollowedBy:
		return "FOLLOWED BY"
	case OpJoin:
		return "JOIN"
	default:
		return "(none)"
	}
}

// ValueJoin is one equality predicate in value-join normal form: LeftVar is
// bound in the left block, RightVar in the right block. Canonical names are
// the system-wide structural definitions used for sharing (Section 3).
type ValueJoin struct {
	LeftVar        string
	RightVar       string
	LeftCanonical  string
	RightCanonical string
}

// Query is a parsed, validated XSCL query.
type Query struct {
	// Publish is the output stream name from the PUBLISH clause ("" if
	// omitted).
	Publish string
	Left    *xpath.Pattern
	Right   *xpath.Pattern // nil when Op == OpNone
	Op      OpKind
	Preds   []ValueJoin
	Window  int64 // time units or events; WindowInf for ∞
	// WindowKind selects time-based (default) or tuple-based windows.
	WindowKind WindowKind

	// Source is the original query text.
	Source string
}

// String reconstructs the query in XSCL syntax.
func (q *Query) String() string {
	if q.Op == OpNone {
		return q.Left.String()
	}
	var preds []string
	for _, p := range q.Preds {
		preds = append(preds, p.LeftVar+"="+p.RightVar)
	}
	w := "INF"
	if q.Window != WindowInf {
		w = strconv.FormatInt(q.Window, 10)
		if q.WindowKind == WindowCount {
			w = "ROWS " + w
		}
	}
	s := fmt.Sprintf("%s %s{%s, %s} %s", q.Left.String(), q.Op, strings.Join(preds, " AND "), w, q.Right.String())
	if q.Publish != "" {
		s += " PUBLISH " + q.Publish
	}
	return s
}

// Parse parses a single XSCL query.
func Parse(src string) (*Query, error) {
	p := &parser{src: src, rest: src}
	q, err := p.query()
	if err != nil {
		return nil, fmt.Errorf("xscl: parsing %q: %w", src, err)
	}
	q.Source = src
	return q, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseProgram parses a sequence of queries separated by semicolons.
// Blank statements are ignored.
func ParseProgram(src string) ([]*Query, error) {
	var out []*Query
	for _, stmt := range strings.Split(src, ";") {
		if strings.TrimSpace(stmt) == "" {
			continue
		}
		q, err := Parse(stmt)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

type parser struct {
	src  string
	rest string
}

func (p *parser) ws() {
	p.rest = strings.TrimLeft(p.rest, " \t\r\n")
}

// keyword consumes kw (case sensitive, word-delimited) if present.
func (p *parser) keyword(kw string) bool {
	p.ws()
	if !strings.HasPrefix(p.rest, kw) {
		return false
	}
	after := p.rest[len(kw):]
	if after != "" {
		c := after[0]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			return false
		}
	}
	p.rest = after
	return true
}

func (p *parser) ident() string {
	p.ws()
	i := 0
	for i < len(p.rest) {
		c := p.rest[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && (c >= '0' && c <= '9')) {
			i++
			continue
		}
		break
	}
	id := p.rest[:i]
	p.rest = p.rest[i:]
	return id
}

// varName also accepts digits and trailing primes (x5').
func (p *parser) varName() string {
	v := p.ident()
	for strings.HasPrefix(p.rest, "'") {
		v += "'"
		p.rest = p.rest[1:]
	}
	return v
}

func (p *parser) query() (*Query, error) {
	// Optional SELECT * FROM prefix.
	if p.keyword("SELECT") {
		p.ws()
		if !strings.HasPrefix(p.rest, "*") {
			return nil, fmt.Errorf("only SELECT * is supported")
		}
		p.rest = p.rest[1:]
		if !p.keyword("FROM") {
			return nil, fmt.Errorf("expected FROM after SELECT *")
		}
	}

	p.ws()
	left, rest, err := xpath.ParseBlockPrefix(p.rest)
	if err != nil {
		return nil, err
	}
	p.rest = rest

	q := &Query{Left: left, Op: OpNone, Window: WindowInf}

	switch {
	case p.keyword("FOLLOWED"):
		if !p.keyword("BY") {
			return nil, fmt.Errorf("expected BY after FOLLOWED")
		}
		q.Op = OpFollowedBy
	case p.keyword("JOIN"):
		q.Op = OpJoin
	}

	if q.Op != OpNone {
		if err := p.joinSuffix(q); err != nil {
			return nil, err
		}
	}

	if p.keyword("PUBLISH") {
		name := p.ident()
		if name == "" {
			return nil, fmt.Errorf("expected stream name after PUBLISH")
		}
		q.Publish = name
	}
	p.ws()
	if p.rest != "" {
		return nil, fmt.Errorf("trailing input: %q", p.rest)
	}
	return q, q.validate()
}

func (p *parser) joinSuffix(q *Query) error {
	p.ws()
	if !strings.HasPrefix(p.rest, "{") {
		return fmt.Errorf("expected { after %s", q.Op)
	}
	p.rest = p.rest[1:]

	for {
		lv := p.varName()
		if lv == "" {
			return fmt.Errorf("expected variable in join predicate")
		}
		p.ws()
		if !strings.HasPrefix(p.rest, "=") {
			return fmt.Errorf("expected = in join predicate")
		}
		p.rest = p.rest[1:]
		rv := p.varName()
		if rv == "" {
			return fmt.Errorf("expected variable after = in join predicate")
		}
		q.Preds = append(q.Preds, ValueJoin{LeftVar: lv, RightVar: rv})
		if !p.keyword("AND") {
			break
		}
	}

	p.ws()
	if !strings.HasPrefix(p.rest, ",") {
		return fmt.Errorf("expected , before window length")
	}
	p.rest = p.rest[1:]
	p.ws()
	if p.keyword("INF") {
		q.Window = WindowInf
	} else {
		if p.keyword("ROWS") {
			q.WindowKind = WindowCount
			p.ws()
		}
		i := 0
		for i < len(p.rest) && p.rest[i] >= '0' && p.rest[i] <= '9' {
			i++
		}
		if i == 0 {
			return fmt.Errorf("expected window length (integer or INF)")
		}
		w, err := strconv.ParseInt(p.rest[:i], 10, 64)
		if err != nil {
			return fmt.Errorf("window length: %w", err)
		}
		if w <= 0 {
			return fmt.Errorf("window length must be positive")
		}
		q.Window = w
		p.rest = p.rest[i:]
	}
	p.ws()
	if !strings.HasPrefix(p.rest, "}") {
		return fmt.Errorf("expected } after window length")
	}
	p.rest = p.rest[1:]

	p.ws()
	right, rest, err := xpath.ParseBlockPrefix(p.rest)
	if err != nil {
		return err
	}
	q.Right = right
	p.rest = rest
	return nil
}

// validate checks value-join normal form and resolves canonical variable
// names. Predicates written right=left are swapped so that LeftVar is always
// bound in the left block.
func (q *Query) validate() error {
	if q.Op == OpNone {
		if len(q.Preds) != 0 || q.Right != nil {
			return fmt.Errorf("single-block query cannot have join predicates")
		}
		return nil
	}
	if len(q.Preds) == 0 {
		return fmt.Errorf("%s requires at least one value join predicate", q.Op)
	}
	for i := range q.Preds {
		pr := &q.Preds[i]
		ln, rn := q.Left.VarNode(pr.LeftVar), q.Right.VarNode(pr.RightVar)
		if ln != nil && rn != nil {
			pr.LeftCanonical = q.Left.CanonicalVar(ln)
			pr.RightCanonical = q.Right.CanonicalVar(rn)
			continue
		}
		// Try the swapped orientation.
		ln2, rn2 := q.Left.VarNode(pr.RightVar), q.Right.VarNode(pr.LeftVar)
		if ln2 != nil && rn2 != nil {
			pr.LeftVar, pr.RightVar = pr.RightVar, pr.LeftVar
			pr.LeftCanonical = q.Left.CanonicalVar(ln2)
			pr.RightCanonical = q.Right.CanonicalVar(rn2)
			continue
		}
		return fmt.Errorf("predicate %s=%s is not in value-join normal form: each equality must relate a left-block variable to a right-block variable", pr.LeftVar, pr.RightVar)
	}
	return nil
}

// PaperQ1 returns query Q1 of Table 2 with the given window.
func PaperQ1(window int64) *Query {
	return MustParse(fmt.Sprintf(
		"S//book->x1[.//author->x2][.//title->x3] FOLLOWED BY{x2=x5 AND x3=x6, %d} S//blog->x4[.//author->x5][.//title->x6]", window))
}

// PaperQ2 returns query Q2 of Table 2 with the given window.
func PaperQ2(window int64) *Query {
	return MustParse(fmt.Sprintf(
		"S//book->x1[.//author->x2][.//category->x7] FOLLOWED BY{x2=x5 AND x7=x8, %d} S//blog->x4[.//author->x5][.//category->x8]", window))
}

// PaperQ3 returns query Q3 of Table 2 with the given window.
func PaperQ3(window int64) *Query {
	return MustParse(fmt.Sprintf(
		"S//blog->x4[.//author->x5][.//title->x6] FOLLOWED BY{x5=x5' AND x6=x6', %d} S//blog->x4'[.//author->x5'][.//title->x6']", window))
}
