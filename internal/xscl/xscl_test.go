package xscl

import (
	"strings"
	"testing"
)

func TestParseQ1(t *testing.T) {
	q, err := Parse("S//book->x1[.//author->x2][.//title->x3] FOLLOWED BY{x2=x5 AND x3=x6, 100} S//blog->x4[.//author->x5][.//title->x6]")
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpFollowedBy {
		t.Errorf("op = %v", q.Op)
	}
	if q.Window != 100 {
		t.Errorf("window = %d", q.Window)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	if q.Preds[0].LeftVar != "x2" || q.Preds[0].RightVar != "x5" {
		t.Errorf("pred 0 = %+v", q.Preds[0])
	}
	if q.Preds[0].LeftCanonical == "" || q.Preds[0].RightCanonical == "" {
		t.Errorf("canonical names not resolved: %+v", q.Preds[0])
	}
	if q.Left.Root.Name != "book" || q.Right.Root.Name != "blog" {
		t.Errorf("blocks = %q, %q", q.Left.Root.Name, q.Right.Root.Name)
	}
}

func TestParseSelectFromPublish(t *testing.T) {
	q, err := Parse("SELECT * FROM S//a->x JOIN{x=y, INF} S//b->y PUBLISH out")
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpJoin || q.Window != WindowInf || q.Publish != "out" {
		t.Errorf("q = %+v", q)
	}
}

func TestParseSingleBlock(t *testing.T) {
	q, err := Parse("blog")
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpNone || q.Right != nil {
		t.Errorf("q = %+v", q)
	}
	if q.Left.Stream != "blog" {
		// "blog" alone is a stream selection: SELECT * FROM blog.
		t.Errorf("stream = %q", q.Left.Stream)
	}
}

func TestParsePredicateSwapped(t *testing.T) {
	// Predicate written right=left must be normalized.
	q, err := Parse("S//a->x FOLLOWED BY{y=x, 10} S//b->y")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].LeftVar != "x" || q.Preds[0].RightVar != "y" {
		t.Errorf("pred = %+v", q.Preds[0])
	}
}

func TestParseNotNormalForm(t *testing.T) {
	// Both variables in the same block: rejected.
	if _, err := Parse("S//a->x[.//b->z] FOLLOWED BY{x=z, 10} S//c->y"); err == nil {
		t.Error("same-block predicate accepted")
	}
	if err := func() error {
		_, err := Parse("S//a->x FOLLOWED BY{x=nosuch, 10} S//c->y")
		return err
	}(); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT x FROM S//a->v",             // non-* select
		"S//a->x FOLLOWED BY S//b->y",       // missing {pred, T}
		"S//a->x FOLLOWED BY{, 10} S//b->y", // empty predicate
		"S//a->x JOIN{x=y} S//b->y",         // missing window
		"S//a->x JOIN{x=y, 0} S//b->y",      // zero window
		"S//a->x JOIN{x=y, -5} S//b->y",     // negative window
		"S//a->x JOIN{x=y, 10} S//b->y garbage",
		"S//a->x JOIN{x=y, 10}", // missing right block
		"S//a->x PUBLISH",       // missing publish name
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"S//book->x1[.//author->x2][.//title->x3] FOLLOWED BY{x2=x5 AND x3=x6, 100} S//blog->x4[.//author->x5][.//title->x6]",
		"S//a->x JOIN{x=y, INF} S//b->y PUBLISH out",
		"S//a->x JOIN{x=y, 42} S//b->y",
	} {
		q1 := MustParse(src)
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %q: %v", src, q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip unstable:\n%q\n%q", q1.String(), q2.String())
		}
	}
}

func TestParseProgram(t *testing.T) {
	qs, err := ParseProgram(`
		S//a->x JOIN{x=y, 10} S//b->y;
		S//c->u FOLLOWED BY{u=v, 20} S//d->v;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("queries = %d", len(qs))
	}
	if qs[0].Op != OpJoin || qs[1].Op != OpFollowedBy {
		t.Errorf("ops = %v %v", qs[0].Op, qs[1].Op)
	}
}

func TestPaperQueries(t *testing.T) {
	q1, q2, q3 := PaperQ1(100), PaperQ2(200), PaperQ3(300)
	if len(q1.Preds) != 2 || len(q2.Preds) != 2 || len(q3.Preds) != 2 {
		t.Fatalf("pred counts: %d %d %d", len(q1.Preds), len(q2.Preds), len(q3.Preds))
	}
	// Q1 and Q3 share the blog author definition on the RHS.
	if q1.Preds[0].RightCanonical != q3.Preds[0].RightCanonical {
		t.Errorf("blog author canonical names differ: %q vs %q",
			q1.Preds[0].RightCanonical, q3.Preds[0].RightCanonical)
	}
	// Q3 is a self-join: its LHS author and RHS author share the
	// canonical definition too.
	if q3.Preds[0].LeftCanonical != q3.Preds[0].RightCanonical {
		t.Errorf("Q3 self-join canonical names differ")
	}
	// Q1 joins book author to blog author: different canonical names.
	if q1.Preds[0].LeftCanonical == q1.Preds[0].RightCanonical {
		t.Errorf("book and blog author share a canonical name")
	}
	if !strings.Contains(q3.Source, "FOLLOWED BY") {
		t.Errorf("source not retained")
	}
}

func TestKeywordBoundary(t *testing.T) {
	// An element named JOINT must not be confused with the JOIN keyword.
	q, err := Parse("S//a->x JOIN{x=y, 10} S//JOINT->y")
	if err != nil {
		t.Fatal(err)
	}
	if q.Right.Root.Name != "JOINT" {
		t.Errorf("right root = %q", q.Right.Root.Name)
	}
}

func TestParseRowsWindow(t *testing.T) {
	q, err := Parse("S//a->x FOLLOWED BY{x=y, ROWS 25} S//b->y")
	if err != nil {
		t.Fatal(err)
	}
	if q.WindowKind != WindowCount || q.Window != 25 {
		t.Errorf("window = %d kind %d", q.Window, q.WindowKind)
	}
	// Round trip.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("round trip %q: %v", q.String(), err)
	}
	if q2.WindowKind != WindowCount || q2.Window != 25 {
		t.Errorf("round trip window = %d kind %d", q2.Window, q2.WindowKind)
	}
	// Time windows stay the default.
	q3 := MustParse("S//a->x FOLLOWED BY{x=y, 25} S//b->y")
	if q3.WindowKind != WindowTime {
		t.Errorf("default window kind = %d", q3.WindowKind)
	}
	// ROWS requires a count.
	if _, err := Parse("S//a->x FOLLOWED BY{x=y, ROWS} S//b->y"); err == nil {
		t.Error("ROWS without count accepted")
	}
}
