package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// The "scale" experiment: the paper-scale workers sweep on the PaperScale
// workload (internal/workload/paperscale.go — 50+ live canonical templates,
// nominally 100k query instances), with intra-template splitting enabled at
// the default threshold.
//
// Two throughput series are reported per worker count:
//
//   - measured (docs/s): end-to-end wall clock of processing the stream on
//     this host. On a machine with fewer cores than workers the extra
//     workers cannot run simultaneously, so this series flattens at the
//     core count — it is the honest number, not the scaling claim.
//   - projected (docs/s): the critical-path model documented in DESIGN.md
//     ("Intra-template parallelism & the scaling model"), computed from the
//     serial run's per-template plan wall times (TemplatePlanStats.PlanWall)
//     and split states. Stage-2 work at W workers is bounded below by
//     max(total/W, largest indivisible piece); a split-active template's
//     largest piece is its wall time over its chunk count, an unsplit
//     template is one piece. Everything outside the per-template plan runs
//     (Stage 1, witness construction, merge) is carried over serially.
//     projected(1) equals measured(1) by construction, anchoring the model.
//
// The projected series is what the 1→8 workers scaling acceptance gate
// reads; the measured series keeps the model honest on hosts that do have
// the cores.

// scaleChunksPerWorker mirrors core's splitChunksPerShard: a split-active
// template's evaluation is cut into min(2·workers, units) chunks.
const scaleChunksPerWorker = 2

// scaleRun is one timed pass of the paper-scale stream.
type scaleRun struct {
	proc    *core.Processor
	elapsed time.Duration
}

func runScale(qs []*xscl.Query, stream []*xmldoc.Document, workers int) scaleRun {
	p := core.NewProcessor(core.Config{ViewMaterialization: true, Workers: workers})
	for _, q := range qs {
		p.MustRegister(q)
	}
	start := time.Now()
	for _, d := range stream {
		p.Process("S", d)
	}
	return scaleRun{proc: p, elapsed: time.Since(start)}
}

// scaleModel is the critical-path projection built from the serial run.
type scaleModel struct {
	items int
	// other is the serial wall time outside the per-template plan runs.
	other time.Duration
	// total is the summed per-template plan wall; walls are the pieces.
	total time.Duration
	walls []scaleWall
}

type scaleWall struct {
	wall     time.Duration
	split    bool
	groups   int // RT vector groups: the chunk-count bound of an RT-driven split
	rtDriven bool
}

func newScaleModel(serial scaleRun, items int) *scaleModel {
	m := &scaleModel{items: items}
	for _, ts := range serial.proc.PlanStats() {
		m.walls = append(m.walls, scaleWall{
			wall:     ts.PlanWall,
			split:    ts.SplitActive,
			groups:   ts.VecGroups,
			rtDriven: ts.LastRTDriven,
		})
		m.total += ts.PlanWall
	}
	m.other = serial.elapsed - m.total
	if m.other < 0 {
		m.other = 0
	}
	return m
}

// throughput projects docs/s at w workers: serial non-plan time plus the
// Stage-2 makespan lower bound max(total/w, largest indivisible piece).
func (m *scaleModel) throughput(w int) float64 {
	if w < 1 {
		w = 1
	}
	var grain time.Duration
	for _, t := range m.walls {
		piece := t.wall
		if t.split && w > 1 {
			chunks := scaleChunksPerWorker * w
			if t.rtDriven && t.groups > 0 && t.groups < chunks {
				chunks = t.groups
			}
			piece = t.wall / time.Duration(chunks)
		}
		if piece > grain {
			grain = piece
		}
	}
	makespan := m.total / time.Duration(w)
	if grain > makespan {
		makespan = grain
	}
	return perSecond(m.items, m.other+makespan)
}

// ScaleSweep — the paper-scale workers sweep with intra-template splitting:
// measured end-to-end throughput plus the projected critical-path series,
// with split/steal counters from the live runs.
func ScaleSweep(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultPaperScale()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := c.Queries(rng, o.ScaleQueries)
	srng := rand.New(rand.NewSource(o.Seed + 7))
	stream := c.Stream(srng, o.ScaleItems)

	serial := runScale(qs, stream, 1)
	model := newScaleModel(serial, len(stream))

	res := Result{ID: "scale",
		Title: fmt.Sprintf("paper-scale workers sweep (%d of %d queries, %d of %d items; measured = this host's cores, projected = critical-path model)",
			o.ScaleQueries, c.Instances, len(stream), c.Items),
		// The measured multi-worker series is "(info)": on a gate host
		// with fewer cores than workers it is scheduler noise, so
		// benchdiff exempts it. The projected series is the gated one —
		// at workers=1 it equals the measured serial run exactly, so the
		// serial measurement is still under the gate through it.
		Columns: []string{"workers", "measured (docs/s) (info)", "projected (docs/s)", "splits", "steals", "templates"}}
	for _, nw := range o.WorkerCounts {
		r := serial
		if nw != 1 {
			r = runScale(qs, stream, nw)
		}
		s := r.proc.Stats()
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(nw),
			f(perSecond(len(stream), r.elapsed)),
			f(model.throughput(nw)),
			fmt.Sprint(s.Splits),
			fmt.Sprint(s.Steals),
			fmt.Sprint(r.proc.NumTemplates()),
		})
		res.Stats = engineStats(r.proc)
	}
	return res
}
