package bench

import (
	"strings"
	"testing"
)

// Smoke-test every experiment at tiny scale: they must run, produce the
// declared columns, and obey basic sanity properties.
func smokeOptions() Options {
	return Options{
		Seed:         1,
		QueryCounts:  []int{10, 100},
		Queries:      100,
		BigQueries:   2000,
		RSSItems:     300,
		SeqRSSItems:  300,
		ScaleQueries: 120,
		ScaleItems:   40,
	}
}

func TestRunAllExperimentsSmoke(t *testing.T) {
	for _, id := range All() {
		res, err := Run(id, smokeOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID != id {
			t.Errorf("%s: result id %q", id, res.ID)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Errorf("%s: row arity %d vs %d columns", id, len(row), len(res.Columns))
			}
		}
		if !strings.Contains(res.String(), id) {
			t.Errorf("%s: String() missing id", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", smokeOptions()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable3FlatColumnExact(t *testing.T) {
	res := Table3(smokeOptions())
	want := []string{"1", "3", "6", "16"}
	for i, row := range res.Rows {
		if row[1] != want[i] {
			t.Errorf("flat templates for %s VJ = %s, want %s", row[0], row[1], want[i])
		}
	}
}
