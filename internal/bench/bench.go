// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6). Each runner reproduces one experiment's workload
// and parameter sweep and reports the same series the paper plots; absolute
// numbers differ from the paper's 2007 SQL-Server testbed, but the shapes —
// who wins, by what order of magnitude, where curves flatten — are the
// reproduction targets (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	mmqjp "repro"
	"repro/internal/core"
	"repro/internal/sequential"
	"repro/internal/workload"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// Mode selects the system under test.
type Mode int

const (
	// ModeMMQJP is Algorithm 1 (template joins, no view materialization).
	ModeMMQJP Mode = iota
	// ModeViewMat is Algorithm 4 (shared views + view cache).
	ModeViewMat
	// ModeSequential is the per-query baseline.
	ModeSequential
)

func (m Mode) String() string {
	switch m {
	case ModeMMQJP:
		return "MMQJP"
	case ModeViewMat:
		return "MMQJP+ViewMat"
	default:
		return "Sequential"
	}
}

// Result is one experiment's output table. The JSON form is what
// cmd/mmqjp-bench -json writes and cmd/benchdiff compares (benchdiff reads
// only Columns/Rows; Stats rides along for monitoring pipelines).
type Result struct {
	ID      string     `json:"id"` // "fig8", "table3", ...
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Stats is the structured engine-stats snapshot of the experiment's
	// final (largest) engine run, in the same mmqjp.EngineStats schema the
	// server's STATS reply and /metrics endpoint report — one schema for
	// every stats consumer. Nil for experiments with no full engine pass.
	Stats *mmqjp.EngineStats `json:"stats,omitempty"`
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	width := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		width[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Options tunes experiment scale. Zero values select defaults sized to run
// the full suite in minutes; the paper-scale values are noted per field.
type Options struct {
	Seed        int64
	QueryCounts []int // fig8/11/16 sweep (paper: 10..100000; fig16 to 1e6)
	Queries     int   // fixed query count for fig9/10/12/13 (paper: 1000)
	BigQueries  int   // query count for fig14/15 (paper: 100000)
	RSSItems    int   // stream length for fig16 (paper: 225000)
	SeqRSSItems int   // stream length cap for the sequential runs of fig16
	Repeats     int   // measurement repetitions for the two-document experiments (reported value is the mean)
	// WorkerCounts is the Stage-2 worker sweep of the "workers"
	// experiment (not a paper figure: it measures the parallel
	// template-sharded engine, default 1,2,4,8).
	WorkerCounts []int
	// PipelineDepths is the ingest-pipeline depth sweep of the "pipeline"
	// experiment (not a paper figure: it measures the batched
	// Stage-1/Stage-2 overlap, default 1,2,4,8; 1 = sequential baseline).
	PipelineDepths []int
	// ChurnCounts is the subscription-churn sweep of the "churn"
	// experiment: between stream chunks, this many of the oldest queries
	// are unsubscribed and as many fresh ones subscribed (default
	// 0,8,64; 0 = the churn-free baseline).
	ChurnCounts []int
	// PublisherCounts is the concurrent-publisher sweep of the
	// "publishers" experiment (not a paper figure: it measures the
	// continuous async ingest pipeline under concurrent admission,
	// default 1,2,4,8).
	PublisherCounts []int
	// PartitionCounts is the router-partition sweep of the "partitions"
	// experiment (not a paper figure: it measures the engine-of-engines
	// router behind the public facade, default 1,2,4; 1 = the single
	// unpartitioned engine).
	PartitionCounts []int
	// ScaleQueries and ScaleItems size the "scale" experiment's
	// paper-scale workload (scale.go). The nominal paper-scale regime is
	// workload.DefaultPaperScale() — 100k instances over 2000 items; the
	// defaults here (1500 queries, 250 items) are a time-budget slice of
	// it that still clears 50 live templates, and the CI gate runs an even
	// smaller one (see the Makefile).
	ScaleQueries int
	ScaleItems   int
}

// Defaults fills zero fields.
func (o Options) Defaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.QueryCounts) == 0 {
		o.QueryCounts = []int{10, 100, 1000, 10000, 100000}
	}
	if o.Queries == 0 {
		o.Queries = 1000
	}
	if o.BigQueries == 0 {
		o.BigQueries = 100000
	}
	if o.RSSItems == 0 {
		o.RSSItems = 5000
	}
	if o.SeqRSSItems == 0 {
		o.SeqRSSItems = o.RSSItems
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if len(o.WorkerCounts) == 0 {
		o.WorkerCounts = []int{1, 2, 4, 8}
	}
	if len(o.PipelineDepths) == 0 {
		o.PipelineDepths = []int{1, 2, 4, 8}
	}
	if len(o.ChurnCounts) == 0 {
		o.ChurnCounts = []int{0, 8, 64}
	}
	if len(o.PublisherCounts) == 0 {
		o.PublisherCounts = []int{1, 2, 4, 8}
	}
	if len(o.PartitionCounts) == 0 {
		o.PartitionCounts = []int{1, 2, 4}
	}
	if o.ScaleQueries == 0 {
		o.ScaleQueries = 1500
	}
	if o.ScaleItems == 0 {
		o.ScaleItems = 250
	}
	return o
}

// twoDocRun measures the total Stage-2 (join) processing time of d2 given d1
// in the join state, for the given query set and mode, averaged over
// repeats runs (the paper averaged 10 runs). It returns milliseconds and the
// number of templates (0 for sequential).
func twoDocRun(qs []*xscl.Query, d1, d2 *xmldoc.Document, mode Mode, repeats int) (float64, int) {
	if repeats < 1 {
		repeats = 1
	}
	total := 0.0
	templates := 0
	for r := 0; r < repeats; r++ {
		if mode == ModeSequential {
			p := sequential.NewProcessor()
			for _, q := range qs {
				p.MustRegister(q)
			}
			p.Process("S", d1)
			p.ResetStats()
			p.Process("S", d2)
			total += float64(p.JoinTime()) / float64(time.Millisecond)
			continue
		}
		p := core.NewProcessor(core.Config{ViewMaterialization: mode == ModeViewMat})
		for _, q := range qs {
			p.MustRegister(q)
		}
		p.Process("S", d1)
		p.ResetStats()
		p.Process("S", d2)
		s := p.Stats()
		total += float64(s.Rvj+s.RL+s.RR+s.CQ) / float64(time.Millisecond)
		templates = p.NumTemplates()
	}
	return total / float64(repeats), templates
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// Fig8 — simple (two-level) schema, total conjunctive query processing time
// vs number of queries, MMQJP vs Sequential.
func Fig8(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultTwoLevel()
	res := Result{ID: "fig8", Title: "simple schema: time vs #queries",
		Columns: []string{"queries", "MMQJP (ms)", "Sequential (ms)", "templates"}}
	for _, nq := range o.QueryCounts {
		rng := rand.New(rand.NewSource(o.Seed))
		qs := c.Queries(rng, nq)
		d1, d2 := c.Documents()
		tm, ntmpl := twoDocRun(qs, d1, d2, ModeMMQJP, o.Repeats)
		ts, _ := twoDocRun(qs, d1, d2, ModeSequential, o.Repeats)
		res.Rows = append(res.Rows, []string{fmt.Sprint(nq), f(tm), f(ts), fmt.Sprint(ntmpl)})
	}
	return res
}

// Fig9 — simple schema, time vs number of leaf nodes N.
func Fig9(o Options) Result {
	o = o.Defaults()
	res := Result{ID: "fig9", Title: "simple schema: time vs #leaves N",
		Columns: []string{"leaves", "MMQJP (ms)", "Sequential (ms)", "templates"}}
	for _, n := range []int{4, 6, 8, 10, 12} {
		c := workload.TwoLevel{N: n, Theta: 0.8, Window: 1000}
		rng := rand.New(rand.NewSource(o.Seed))
		qs := c.Queries(rng, o.Queries)
		d1, d2 := c.Documents()
		tm, ntmpl := twoDocRun(qs, d1, d2, ModeMMQJP, o.Repeats)
		ts, _ := twoDocRun(qs, d1, d2, ModeSequential, o.Repeats)
		res.Rows = append(res.Rows, []string{fmt.Sprint(n), f(tm), f(ts), fmt.Sprint(ntmpl)})
	}
	return res
}

// Fig10 — simple schema, time vs Zipf parameter.
func Fig10(o Options) Result {
	o = o.Defaults()
	res := Result{ID: "fig10", Title: "simple schema: time vs Zipf parameter",
		Columns: []string{"zipf", "MMQJP (ms)", "Sequential (ms)", "templates"}}
	for _, theta := range []float64{0, 0.4, 0.8, 1.2, 1.6} {
		c := workload.TwoLevel{N: 6, Theta: theta, Window: 1000}
		rng := rand.New(rand.NewSource(o.Seed))
		qs := c.Queries(rng, o.Queries)
		d1, d2 := c.Documents()
		tm, ntmpl := twoDocRun(qs, d1, d2, ModeMMQJP, o.Repeats)
		ts, _ := twoDocRun(qs, d1, d2, ModeSequential, o.Repeats)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%.1f", theta), f(tm), f(ts), fmt.Sprint(ntmpl)})
	}
	return res
}

// Fig11 — complex (three-level) schema, time vs number of queries.
func Fig11(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultThreeLevel()
	res := Result{ID: "fig11", Title: "complex schema: time vs #queries",
		Columns: []string{"queries", "MMQJP (ms)", "Sequential (ms)", "templates"}}
	for _, nq := range o.QueryCounts {
		rng := rand.New(rand.NewSource(o.Seed))
		qs := c.Queries(rng, nq)
		d1, d2 := c.Documents()
		tm, ntmpl := twoDocRun(qs, d1, d2, ModeMMQJP, o.Repeats)
		ts, _ := twoDocRun(qs, d1, d2, ModeSequential, o.Repeats)
		res.Rows = append(res.Rows, []string{fmt.Sprint(nq), f(tm), f(ts), fmt.Sprint(ntmpl)})
	}
	return res
}

// Fig12 — complex schema, time vs maximum number of value joins K.
func Fig12(o Options) Result {
	o = o.Defaults()
	res := Result{ID: "fig12", Title: "complex schema: time vs max value joins K",
		Columns: []string{"K", "MMQJP (ms)", "Sequential (ms)", "templates"}}
	for _, k := range []int{2, 3, 4, 5} {
		c := workload.ThreeLevel{Branch: 4, K: k, Theta: 0.8, Window: 1000}
		rng := rand.New(rand.NewSource(o.Seed))
		qs := c.Queries(rng, o.Queries)
		d1, d2 := c.Documents()
		tm, ntmpl := twoDocRun(qs, d1, d2, ModeMMQJP, o.Repeats)
		ts, _ := twoDocRun(qs, d1, d2, ModeSequential, o.Repeats)
		res.Rows = append(res.Rows, []string{fmt.Sprint(k), f(tm), f(ts), fmt.Sprint(ntmpl)})
	}
	return res
}

// Fig13 — complex schema, time vs Zipf parameter.
func Fig13(o Options) Result {
	o = o.Defaults()
	res := Result{ID: "fig13", Title: "complex schema: time vs Zipf parameter",
		Columns: []string{"zipf", "MMQJP (ms)", "Sequential (ms)", "templates"}}
	for _, theta := range []float64{0, 0.4, 0.8, 1.2, 1.6} {
		c := workload.ThreeLevel{Branch: 4, K: 4, Theta: theta, Window: 1000}
		rng := rand.New(rand.NewSource(o.Seed))
		qs := c.Queries(rng, o.Queries)
		d1, d2 := c.Documents()
		tm, ntmpl := twoDocRun(qs, d1, d2, ModeMMQJP, o.Repeats)
		ts, _ := twoDocRun(qs, d1, d2, ModeSequential, o.Repeats)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%.1f", theta), f(tm), f(ts), fmt.Sprint(ntmpl)})
	}
	return res
}

// viewMatBreakdown measures the stacked cost components of Figures 14/15.
func viewMatBreakdown(qs []*xscl.Query, d1, d2 *xmldoc.Document) (plain float64, rvj, rl, rr, cq float64) {
	plain, _ = twoDocRun(qs, d1, d2, ModeMMQJP, 1)

	p := core.NewProcessor(core.Config{ViewMaterialization: true})
	for _, q := range qs {
		p.MustRegister(q)
	}
	p.Process("S", d1)
	p.ResetStats()
	p.Process("S", d2)
	s := p.Stats()
	return plain, ms(s.Rvj), ms(s.RL), ms(s.RR), ms(s.CQ)
}

// Fig14 — view materialization breakdown on the simple schema.
func Fig14(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultTwoLevel()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := c.Queries(rng, o.BigQueries)
	d1, d2 := c.Documents()
	plain, rvj, rl, rr, cq := viewMatBreakdown(qs, d1, d2)
	return Result{ID: "fig14", Title: fmt.Sprintf("view materialization, simple schema, %d queries", o.BigQueries),
		Columns: []string{"approach", "component", "time (ms)"},
		Rows: [][]string{
			{"MMQJP", "conjunctive query", f(plain)},
			{"MMQJP+ViewMat", "computing Rvj (STR)", f(rvj)},
			{"MMQJP+ViewMat", "computing RL", f(rl)},
			{"MMQJP+ViewMat", "computing RR", f(rr)},
			{"MMQJP+ViewMat", "conjunctive query", f(cq)},
			{"MMQJP+ViewMat", "total", f(rvj + rl + rr + cq)},
		}}
}

// Fig15 — view materialization breakdown on the complex schema.
func Fig15(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultThreeLevel()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := c.Queries(rng, o.BigQueries)
	d1, d2 := c.Documents()
	plain, rvj, rl, rr, cq := viewMatBreakdown(qs, d1, d2)
	return Result{ID: "fig15", Title: fmt.Sprintf("view materialization, complex schema, %d queries", o.BigQueries),
		Columns: []string{"approach", "component", "time (ms)"},
		Rows: [][]string{
			{"MMQJP", "conjunctive query", f(plain)},
			{"MMQJP+ViewMat", "computing Rvj (STR)", f(rvj)},
			{"MMQJP+ViewMat", "computing RL", f(rl)},
			{"MMQJP+ViewMat", "computing RR", f(rr)},
			{"MMQJP+ViewMat", "conjunctive query", f(cq)},
			{"MMQJP+ViewMat", "total", f(rvj + rl + rr + cq)},
		}}
}

// Fig16 — RSS stream processing throughput vs number of queries.
func Fig16(o Options) Result {
	o = o.Defaults()
	res := Result{ID: "fig16", Title: fmt.Sprintf("RSS stream throughput (%d items)", o.RSSItems),
		Columns: []string{"queries", "MMQJP+ViewMat (ev/s)", "MMQJP (ev/s)", "Sequential (ev/s)", "seq items"}}
	c := workload.DefaultRSS()
	for _, nq := range o.QueryCounts {
		rng := rand.New(rand.NewSource(o.Seed))
		qs := c.Queries(rng, nq)
		srng := rand.New(rand.NewSource(o.Seed + 7))
		stream := c.Stream(srng, o.RSSItems)

		vm, vmStats := rssThroughput(qs, stream, ModeViewMat)
		basic, _ := rssThroughput(qs, stream, ModeMMQJP)
		seqStream := stream
		if len(seqStream) > o.SeqRSSItems {
			seqStream = seqStream[:o.SeqRSSItems]
		}
		seq, _ := rssThroughput(qs, seqStream, ModeSequential)
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(nq), f(vm), f(basic), f(seq), fmt.Sprint(len(seqStream))})
		res.Stats = vmStats
	}
	return res
}

// rssThroughput returns events/second of Stage-2 join processing over the
// stream, plus the run's structured stats (nil for sequential).
func rssThroughput(qs []*xscl.Query, stream []*xmldoc.Document, mode Mode) (float64, *mmqjp.EngineStats) {
	if mode == ModeSequential {
		p := sequential.NewProcessor()
		for _, q := range qs {
			p.MustRegister(q)
		}
		for _, d := range stream {
			p.Process("S", d)
		}
		return perSecond(len(stream), p.JoinTime()), nil
	}
	p := core.NewProcessor(core.Config{ViewMaterialization: mode == ModeViewMat})
	for _, q := range qs {
		p.MustRegister(q)
	}
	for _, d := range stream {
		p.Process("S", d)
	}
	s := p.Stats()
	return perSecond(len(stream), s.Rvj+s.RL+s.RR+s.CQ), engineStats(p)
}

// engineStats converts a processor's accumulated core.Stats into the public
// structured form that Result.Stats carries.
func engineStats(p *core.Processor) *mmqjp.EngineStats {
	s := p.Stats()
	return &mmqjp.EngineStats{
		Queries:      p.NumQueries(),
		Templates:    p.NumTemplates(),
		Documents:    s.Documents,
		Matches:      s.Matches,
		XPath:        s.XPath,
		Witness:      s.Witness,
		Rvj:          s.Rvj,
		RL:           s.RL,
		RR:           s.RR,
		CQ:           s.CQ,
		Maintain:     s.Maintain,
		Stage1Wall:   s.Stage1Wall,
		Stage2Wall:   s.Stage2Wall,
		ExploreWall:  s.ExploreWall,
		WitnessPlans: s.WitnessPlans,
		RTPlans:      s.RTPlans,
		Explorations: s.Explorations,
		Splits:       s.Splits,
		SplitChunks:  s.SplitChunks,
		Steals:       s.Steals,
	}
}

func perSecond(n int, d time.Duration) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// WorkersSweep — not a paper figure: Stage-2 wall-clock throughput vs the
// number of template-shard workers on the RSS multi-template workload, the
// scaling measurement of the parallel engine. Stage2Wall is the
// coordinator-side wall time of template evaluation, the quantity that
// shrinks as workers are added (the per-phase stats sum CPU time across
// workers and do not).
func WorkersSweep(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultRSS()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := c.Queries(rng, o.Queries)
	srng := rand.New(rand.NewSource(o.Seed + 7))
	stream := c.Stream(srng, o.RSSItems)
	res := Result{ID: "workers",
		Title:   fmt.Sprintf("Stage-2 throughput vs workers (%d queries, %d items)", o.Queries, len(stream)),
		Columns: []string{"workers", "MMQJP (ev/s)", "MMQJP+ViewMat (ev/s)", "templates"}}
	for _, nw := range o.WorkerCounts {
		basic, bp := stage2Throughput(qs, stream, ModeMMQJP, nw)
		vm, vp := stage2Throughput(qs, stream, ModeViewMat, nw)
		res.Rows = append(res.Rows, []string{fmt.Sprint(nw), f(basic), f(vm), fmt.Sprint(bp.NumTemplates())})
		res.Stats = engineStats(vp)
	}
	return res
}

// stage2Throughput returns events/second of Stage-2 wall-clock time over
// the stream with the given worker count, plus the finished processor.
func stage2Throughput(qs []*xscl.Query, stream []*xmldoc.Document, mode Mode, workers int) (float64, *core.Processor) {
	p := core.NewProcessor(core.Config{ViewMaterialization: mode == ModeViewMat, Workers: workers})
	for _, q := range qs {
		p.MustRegister(q)
	}
	for _, d := range stream {
		p.Process("S", d)
	}
	return perSecond(len(stream), p.Stats().Stage2Wall), p
}

// PipelineSweep — not a paper figure: end-to-end ingest throughput
// (documents/second of the full two-stage pipeline, wall clock of one
// ProcessBatch over the whole stream) versus the batch-ingestion pipeline
// depth on the multi-template RSS workload. Depth 1 is the sequential
// per-document baseline; deeper pipelines overlap Stage 1 of upcoming
// documents with the in-order Stage-2 consumption.
func PipelineSweep(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultRSS()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := c.Queries(rng, o.Queries)
	srng := rand.New(rand.NewSource(o.Seed + 7))
	stream := c.Stream(srng, o.RSSItems)
	res := Result{ID: "pipeline",
		Title:   fmt.Sprintf("end-to-end ingest throughput vs pipeline depth (%d queries, %d items)", o.Queries, len(stream)),
		Columns: []string{"depth", "MMQJP (docs/s)", "MMQJP+ViewMat (docs/s)", "templates"}}
	for _, depth := range o.PipelineDepths {
		basic, bp := ingestThroughput(qs, stream, ModeMMQJP, depth)
		vm, vp := ingestThroughput(qs, stream, ModeViewMat, depth)
		res.Rows = append(res.Rows, []string{fmt.Sprint(depth), f(basic), f(vm), fmt.Sprint(bp.NumTemplates())})
		res.Stats = engineStats(vp)
	}
	return res
}

// ingestThroughput returns end-to-end documents/second of one ProcessBatch
// over the stream at the given pipeline depth, plus the finished processor.
func ingestThroughput(qs []*xscl.Query, stream []*xmldoc.Document, mode Mode, depth int) (float64, *core.Processor) {
	p := core.NewProcessor(core.Config{ViewMaterialization: mode == ModeViewMat, PipelineDepth: depth})
	for _, q := range qs {
		p.MustRegister(q)
	}
	start := time.Now()
	p.ProcessBatch("S", stream)
	return perSecond(len(stream), time.Since(start)), p
}

// ChurnSweep — not a paper figure: end-to-end ingest throughput on the RSS
// workload under subscription churn, the lifecycle measurement of the
// refcounted template machinery. The stream is processed in 8 chunks;
// between chunks the k oldest subscriptions are unsubscribed and k fresh
// ones subscribed (k = the sweep parameter, 0 = churn-free baseline), so
// canonical templates are continuously reclaimed and re-registered while
// documents flow. Reported docs/s include the churn work itself.
func ChurnSweep(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultRSS()
	srng := rand.New(rand.NewSource(o.Seed + 7))
	stream := c.Stream(srng, o.RSSItems)
	res := Result{ID: "churn",
		Title:   fmt.Sprintf("ingest throughput under subscription churn (%d standing queries, %d items)", o.Queries, len(stream)),
		Columns: []string{"churn/chunk", "MMQJP (docs/s)", "MMQJP+ViewMat (docs/s)", "churn ops/s", "templates"}}
	for _, k := range o.ChurnCounts {
		basic, _, _ := churnRun(c, stream, o, ModeMMQJP, k)
		vm, churnRate, vp := churnRun(c, stream, o, ModeViewMat, k)
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(k), f(basic), f(vm), f(churnRate), fmt.Sprint(vp.NumTemplates())})
		res.Stats = engineStats(vp)
	}
	return res
}

// churnRun ingests the stream in chunks, unsubscribing the k oldest and
// subscribing k fresh queries between chunks, and returns whole-run
// documents/second, churn operations/second, and the final processor
// (for template counts and structured stats).
func churnRun(c workload.RSS, stream []*xmldoc.Document, o Options, mode Mode, k int) (docsPerSec, churnPerSec float64, proc *core.Processor) {
	qrng := rand.New(rand.NewSource(o.Seed))
	p := core.NewProcessor(core.Config{ViewMaterialization: mode == ModeViewMat})
	var live []core.QueryID
	for _, q := range c.Queries(qrng, o.Queries) {
		live = append(live, p.MustRegister(q))
	}
	const chunks = 8
	chunk := (len(stream) + chunks - 1) / chunks
	churnOps := 0
	start := time.Now()
	for i := 0; i < len(stream); i += chunk {
		end := i + chunk
		if end > len(stream) {
			end = len(stream)
		}
		p.ProcessBatch("S", stream[i:end])
		if k > 0 {
			for _, q := range c.Queries(qrng, k) {
				live = append(live, p.MustRegister(q))
			}
			for _, id := range live[:k] {
				p.MustUnregister(id)
			}
			live = live[k:]
			churnOps += 2 * k
		}
	}
	elapsed := time.Since(start)
	return perSecond(len(stream), elapsed), perSecond(churnOps, elapsed), p
}

// PublishersSweep — not a paper figure: sustained end-to-end ingest
// throughput versus the number of concurrent publisher goroutines feeding
// the continuous async ingest pipeline (core.Ingest) on the multi-template
// RSS workload. One publisher is the serial-admission baseline; more
// publishers contend on admission while the pipeline overlaps their
// documents' Stage-1 work ahead of the in-order Stage-2 consumption.
func PublishersSweep(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultRSS()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := c.Queries(rng, o.Queries)
	srng := rand.New(rand.NewSource(o.Seed + 7))
	stream := c.Stream(srng, o.RSSItems)
	res := Result{ID: "publishers",
		Title:   fmt.Sprintf("continuous ingest throughput vs concurrent publishers (%d queries, %d items)", o.Queries, len(stream)),
		Columns: []string{"publishers", "MMQJP (docs/s)", "MMQJP+ViewMat (docs/s)", "templates"}}
	for _, np := range o.PublisherCounts {
		basic, bp := publisherThroughput(qs, stream, ModeMMQJP, np)
		vm, vp := publisherThroughput(qs, stream, ModeViewMat, np)
		res.Rows = append(res.Rows, []string{fmt.Sprint(np), f(basic), f(vm), fmt.Sprint(bp.NumTemplates())})
		res.Stats = engineStats(vp)
	}
	return res
}

// publisherThroughput returns end-to-end documents/second of the stream
// pushed through a continuous ingest pipeline by the given number of
// concurrent publisher goroutines (round-robin split), plus the finished
// processor. The clock stops after Close, which drains the pipeline.
func publisherThroughput(qs []*xscl.Query, stream []*xmldoc.Document, mode Mode, publishers int) (float64, *core.Processor) {
	p := core.NewProcessor(core.Config{ViewMaterialization: mode == ModeViewMat})
	for _, q := range qs {
		p.MustRegister(q)
	}
	ing := core.NewIngest(p, core.IngestConfig{Depth: 4, Workers: 4})
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += publishers {
				_ = ing.Submit("S", stream[i], nil)
			}
		}(w)
	}
	wg.Wait()
	ing.Close()
	return perSecond(len(stream), time.Since(start)), p
}

// PartitionsSweep — not a paper figure: end-to-end ingest throughput of the
// engine-of-engines router (Options.Partitions) versus partition count on
// the multi-template RSS workload, measured through the public facade (New
// + PublishBatch) so the router's fan-out, merge, and global-id relabeling
// are all on the clock. Partitions = 1 is the single unpartitioned engine.
//
// The throughput series is "(info)": on a gate host every partition runs
// the same full document stream, so wall-clock scaling is scheduler noise
// there and carries no regression signal. The matches column IS the gate's
// invariant — routed output is byte-identical to the single engine for
// every N, so the count must not vary down the rows (the run fails fast if
// it does, rather than publishing a wrong table).
func PartitionsSweep(o Options) Result {
	o = o.Defaults()
	c := workload.DefaultRSS()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := c.Queries(rng, o.Queries)
	srng := rand.New(rand.NewSource(o.Seed + 7))
	stream := c.Stream(srng, o.RSSItems)
	res := Result{ID: "partitions",
		Title:   fmt.Sprintf("routed ingest throughput vs partition count (%d queries, %d items)", o.Queries, len(stream)),
		Columns: []string{"partitions", "MMQJP+ViewMat (docs/s) (info)", "matches", "templates"}}
	baselineMatches := int64(-1)
	for _, n := range o.PartitionCounts {
		eng := mmqjp.New(mmqjp.Options{Processor: mmqjp.ProcessorViewMat, Partitions: n, PipelineDepth: 2})
		for _, q := range qs {
			eng.MustSubscribe(q.Source)
		}
		start := time.Now()
		eng.PublishBatch("S", stream)
		docsPerSec := perSecond(len(stream), time.Since(start))
		stats := eng.Stats()
		if baselineMatches < 0 {
			baselineMatches = stats.Matches
		} else if stats.Matches != baselineMatches {
			panic(fmt.Sprintf("bench: partitions=%d produced %d matches, partitions=%d produced %d — the router broke N-invariance",
				n, stats.Matches, o.PartitionCounts[0], baselineMatches))
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n), f(docsPerSec), fmt.Sprint(stats.Matches), fmt.Sprint(stats.Templates)})
		res.Stats = &stats
	}
	return res
}

// PlanningSweep — not a paper figure: the adaptive-planner ablation. It
// measures end-to-end throughput (wall clock of per-document Process over
// the stream) of forced PlanWitness, forced PlanRTDriven, and adaptive
// PlanAuto (exploration on) on two opposed workloads:
//
//   - "rss-stream" favors the witness-driven plan: an incoming feed item's
//     string values collide with few stored values, so joining outward from
//     the current document is cheap.
//   - "colliding-twolevel" favors the RT-driven plan: every document
//     carries the same leaf values (the paper's technical benchmark,
//     streamed with a finite window), so the witness-side fan-out explodes
//     and iterating RT's distinct variable vectors wins.
//
// The reproduction target is that PlanAuto tracks the better forced plan on
// both workloads (within noise) — the paper's cost-based-choice claim, now
// driven by runtime statistics instead of frozen constants. The last
// column reports PlanAuto's chosen-plan and exploration counts.
func PlanningSweep(o Options) Result {
	o = o.Defaults()
	res := Result{ID: "planning",
		Title: fmt.Sprintf("adaptive planner vs forced plans (%d queries)", o.Queries),
		Columns: []string{"workload", "PlanWitness (docs/s)", "PlanRTDriven (docs/s)",
			"PlanAuto (docs/s)", "auto witness/rt/explore"}}

	rssc := workload.DefaultRSS()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := rssc.Queries(rng, o.Queries)
	srng := rand.New(rand.NewSource(o.Seed + 7))
	stream := rssc.Stream(srng, o.RSSItems)
	row, _ := planningRow("rss-stream", qs, stream, o)
	res.Rows = append(res.Rows, row)

	tl := workload.TwoLevel{N: 4, Theta: 0.8, Window: 12}
	qrng := rand.New(rand.NewSource(o.Seed))
	tqs := tl.Queries(qrng, o.Queries)
	nDocs := o.RSSItems / 4
	if nDocs > 100 {
		nDocs = 100
	}
	if nDocs < 10 {
		nDocs = 10
	}
	row, stats := planningRow("colliding-twolevel", tqs, CollidingStream(tl.N, nDocs), o)
	res.Rows = append(res.Rows, row)
	res.Stats = stats
	return res
}

// CollidingStream builds the RT-favoring document stream of the "planning"
// experiment: n-leaf two-level documents all carrying identical values,
// timestamps advancing one unit per document. Exported so the root
// BenchmarkPlanningSweep measures exactly the gate experiment's workload
// shape.
func CollidingStream(n, count int) []*xmldoc.Document {
	out := make([]*xmldoc.Document, count)
	for i := range out {
		b := xmldoc.NewBuilder(xmldoc.DocID(i+1), xmldoc.Timestamp(i+1), "r")
		for l := 1; l <= n; l++ {
			b.Element(0, fmt.Sprintf("l%d", l), fmt.Sprintf("value-%d", l))
		}
		out[i] = b.Build()
	}
	return out
}

func planningRow(name string, qs []*xscl.Query, stream []*xmldoc.Document, o Options) ([]string, *mmqjp.EngineStats) {
	w, _ := planThroughput(qs, stream, core.PlanWitness, 0, o.Seed)
	r, _ := planThroughput(qs, stream, core.PlanRTDriven, 0, o.Seed)
	a, auto := planThroughput(qs, stream, core.PlanAuto, 64, o.Seed)
	s := engineStats(auto)
	return []string{name, f(w), f(r), f(a),
		fmt.Sprintf("%d/%d/%d", s.WitnessPlans, s.RTPlans, s.Explorations)}, s
}

// planThroughput returns end-to-end documents/second of per-document
// processing under the given plan (view materialization on, the production
// mode), plus the processor for the chosen-plan counters.
func planThroughput(qs []*xscl.Query, stream []*xmldoc.Document, plan core.PlanKind, explore int, seed int64) (float64, *core.Processor) {
	p := core.NewProcessor(core.Config{
		ViewMaterialization: true, Plan: plan,
		PlanExploreEvery: explore, PlanExploreSeed: seed,
	})
	for _, q := range qs {
		p.MustRegister(q)
	}
	start := time.Now()
	for _, d := range stream {
		p.Process("S", d)
	}
	return perSecond(len(stream), time.Since(start)), p
}

// Table3 — number of query templates vs number of value joins, for the flat
// and the complex (three-level) schema, computed by exact enumeration.
//
// Wirings are enumerated up to isomorphism: the left endpoint sequence and
// the right endpoint sequence are restricted to restricted-growth strings
// (every wiring can be relabeled into this form by renaming each side's
// leaves in order of first occurrence). For the complex schema, each side's
// distinct leaves are additionally partitioned over intermediate nodes in
// every possible way. The paper reports an upper bound "<230" for 4 joins on
// the complex schema; the enumeration here produces the exact count.
func Table3(o Options) Result {
	o = o.Defaults()
	res := Result{ID: "table3", Title: "#query templates vs #value joins",
		Columns: []string{"#VJ", "#QT (flat schema)", "#QT (complex schema)"}}
	for k := 1; k <= 4; k++ {
		flat := countFlatTemplates(k)
		complexN := countComplexTemplates(k)
		res.Rows = append(res.Rows, []string{fmt.Sprint(k), fmt.Sprint(flat), fmt.Sprint(complexN)})
	}
	return res
}

// rgs enumerates the restricted growth strings of length k: sequences with
// s[0] = 0 and s[i] ≤ max(s[0..i-1]) + 1. They canonically label sequences
// up to value renaming (there are Bell(k) of them).
func rgs(k int) [][]int {
	var out [][]int
	cur := make([]int, k)
	var rec func(i, max int)
	rec = func(i, max int) {
		if i == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v <= max+1; v++ {
			cur[i] = v
			rec(i+1, maxInt(max, v))
		}
	}
	rec(0, -1)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// wirings enumerates the distinct-pair wirings of k value joins up to
// independent leaf relabeling on both sides.
func wirings(k int) (ls, rs [][]int) {
	seqs := rgs(k)
	for _, l := range seqs {
	next:
		for _, r := range seqs {
			seen := map[[2]int]bool{}
			for i := 0; i < k; i++ {
				key := [2]int{l[i], r[i]}
				if seen[key] {
					continue next // duplicate predicate: a (k-1)-join query
				}
				seen[key] = true
			}
			ls = append(ls, l)
			rs = append(rs, r)
		}
	}
	return ls, rs
}

// countFlatTemplates counts distinct templates over all k-join queries on a
// two-level schema.
func countFlatTemplates(k int) int {
	sigs := map[string]bool{}
	ls, rs := wirings(k)
	for i := range ls {
		q := flatWiringQuery(ls[i], rs[i])
		addTemplateSig(q, sigs)
	}
	return len(sigs)
}

// countComplexTemplates counts distinct templates over all k-join queries on
// the three-level schema: every wiring combined with every grouping of each
// side's leaves under intermediate nodes.
func countComplexTemplates(k int) int {
	sigs := map[string]bool{}
	ls, rs := wirings(k)
	for i := range ls {
		nl := maxOf(ls[i]) + 1
		nr := maxOf(rs[i]) + 1
		for _, lp := range rgs(nl) {
			for _, rp := range rgs(nr) {
				q := complexWiringQuery(ls[i], rs[i], lp, rp)
				addTemplateSig(q, sigs)
			}
		}
	}
	return len(sigs)
}

func maxOf(s []int) int {
	m := 0
	for _, v := range s {
		m = maxInt(m, v)
	}
	return m
}

func addTemplateSig(q *xscl.Query, sigs map[string]bool) {
	g, err := core.BuildJoinGraph(q)
	if err != nil {
		return
	}
	_, sig, _ := core.ExtractTemplate(g)
	sigs[sig] = true
}

// flatWiringQuery renders a two-level query with the given wiring: join i
// equates left leaf l[i] with right leaf r[i].
func flatWiringQuery(l, r []int) *xscl.Query {
	lhs := sideFlat(l, "v")
	rhs := sideFlat(r, "w")
	var preds []string
	for i := range l {
		preds = append(preds, fmt.Sprintf("v%d=w%d", l[i], r[i]))
	}
	sort.Strings(preds)
	return xscl.MustParse(fmt.Sprintf("%s FOLLOWED BY{%s, 10} %s", lhs, strings.Join(preds, " AND "), rhs))
}

func sideFlat(endpoints []int, pfx string) string {
	s := fmt.Sprintf("S//r->%s", pfx)
	for leaf := 0; leaf <= maxOf(endpoints); leaf++ {
		s += fmt.Sprintf("[.//l%d->%s%d]", leaf, pfx, leaf)
	}
	return s
}

// complexWiringQuery renders a three-level query: wiring as above, with each
// side's leaves grouped under intermediates by the partition strings lp/rp
// (lp[leaf] is the intermediate group of left leaf `leaf`).
func complexWiringQuery(l, r, lp, rp []int) *xscl.Query {
	lhs := sideComplex(lp, "v")
	rhs := sideComplex(rp, "w")
	var preds []string
	for i := range l {
		preds = append(preds, fmt.Sprintf("v%d=w%d", l[i], r[i]))
	}
	sort.Strings(preds)
	return xscl.MustParse(fmt.Sprintf("%s FOLLOWED BY{%s, 10} %s", lhs, strings.Join(preds, " AND "), rhs))
}

func sideComplex(part []int, pfx string) string {
	groups := map[int][]int{}
	order := []int{}
	for leaf, g := range part {
		if len(groups[g]) == 0 {
			order = append(order, g)
		}
		groups[g] = append(groups[g], leaf)
	}
	sort.Ints(order)
	s := fmt.Sprintf("S//r->%s", pfx)
	for _, g := range order {
		s += fmt.Sprintf("[./m%d->%sm%d", g, pfx, g)
		for _, leaf := range groups[g] {
			s += fmt.Sprintf("[./l%d->%s%d]", leaf, pfx, leaf)
		}
		s += "]"
	}
	return s
}

// All returns every experiment id: the paper's tables and figures in paper
// order, then the repo's own scaling experiments.
func All() []string {
	return []string{"table3", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "workers", "pipeline", "churn", "publishers", "planning", "partitions", "scale", "allocs"}
}

// Run executes one experiment by id.
func Run(id string, o Options) (Result, error) {
	switch id {
	case "table3":
		return Table3(o), nil
	case "fig8":
		return Fig8(o), nil
	case "fig9":
		return Fig9(o), nil
	case "fig10":
		return Fig10(o), nil
	case "fig11":
		return Fig11(o), nil
	case "fig12":
		return Fig12(o), nil
	case "fig13":
		return Fig13(o), nil
	case "fig14":
		return Fig14(o), nil
	case "fig15":
		return Fig15(o), nil
	case "fig16":
		return Fig16(o), nil
	case "workers":
		return WorkersSweep(o), nil
	case "pipeline":
		return PipelineSweep(o), nil
	case "churn":
		return ChurnSweep(o), nil
	case "publishers":
		return PublishersSweep(o), nil
	case "planning":
		return PlanningSweep(o), nil
	case "partitions":
		return PartitionsSweep(o), nil
	case "scale":
		return ScaleSweep(o), nil
	case "allocs":
		return AllocsSweep(o), nil
	default:
		return Result{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, All())
	}
}
