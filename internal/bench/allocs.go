package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// The "allocs" experiment: per-stage allocation counts of the per-document
// hot path, the machine-independent series behind the CI allocs/op
// regression gate. Four series are reported:
//
//   - rss parse: xmldoc.ParseString over the serialized RSS stream — the
//     XML-decode and string-value memoization cost per document.
//   - rss stage1: core's RunStage1 (shared-NFA match + witness-relation
//     construction) per document, on a warm processor.
//   - rss per-document: the full Process path (Stage 1, Stage 2, state
//     merge, window GC) per document — the acceptance series of the
//     hot-path memory work.
//   - scale per-document: the same full path on the paper-scale workload
//     (50+ live templates), where Stage-2 scratch dominates.
//
// allocs/op is an allocation count (runtime.MemStats.Mallocs delta over the
// measured pass divided by documents) and is compared raw by benchdiff —
// lower is better, no machine-speed normalization. B/op and ns/op are
// informational: bytes scale with workload strings and nanoseconds with the
// host, so neither gates.

// AllocsSweep measures allocations per document for each hot-path stage.
func AllocsSweep(o Options) Result {
	o = o.Defaults()
	res := Result{ID: "allocs",
		Title:   fmt.Sprintf("Hot-path allocations per document (%d queries, %d items)", o.Queries, o.RSSItems),
		Columns: []string{"series", "allocs/op", "B/op (info)", "ns/op (info)"}}

	c := workload.DefaultRSS()
	rng := rand.New(rand.NewSource(o.Seed))
	qs := c.Queries(rng, o.Queries)
	srng := rand.New(rand.NewSource(o.Seed + 7))
	stream := c.Stream(srng, o.RSSItems)

	// Parse: re-parse the serialized stream. The warmup pass lets the
	// parser's pooled scratch reach steady state before measurement.
	texts := make([]string, len(stream))
	for i, d := range stream {
		texts[i] = d.XMLText()
	}
	parse := func() {
		for i, txt := range texts {
			if _, err := xmldoc.ParseString(txt, xmldoc.DocID(i+1), xmldoc.Timestamp(i+1)); err != nil {
				panic(err)
			}
		}
	}
	parse()
	res.Rows = append(res.Rows, allocsRow("rss parse", len(texts), parse))

	// Stage 1 in isolation: RunStage1 is the document-local half of the
	// Backend seam the ingest pipeline drives — NFA match plus witness
	// relation construction, no join-state mutation. The processor is
	// warmed with one full pass so templates, shards and pools are hot.
	p := core.NewProcessor(core.Config{ViewMaterialization: true})
	for _, q := range qs {
		p.MustRegister(q)
	}
	for _, d := range stream {
		p.Process("S", d)
	}
	res.Rows = append(res.Rows, allocsRow("rss stage1", len(stream), func() {
		for _, d := range stream {
			_ = p.RunStage1("S", d)
		}
	}))

	// Full path on a fresh warm processor: Stage 1 + Stage 2 + merge + GC.
	res.Rows = append(res.Rows, allocsRow("rss per-document", len(stream), allocsFullPass(qs, stream)))

	// Paper-scale workload: many live templates, Stage-2 heavy.
	ps := workload.DefaultPaperScale()
	prng := rand.New(rand.NewSource(o.Seed))
	pqs := ps.Queries(prng, o.ScaleQueries)
	psrng := rand.New(rand.NewSource(o.Seed + 7))
	pstream := ps.Stream(psrng, o.ScaleItems)
	res.Rows = append(res.Rows, allocsRow("scale per-document", len(pstream), allocsFullPass(pqs, pstream)))
	return res
}

// allocsFullPass returns a measurement closure that replays the stream
// through a warmed single-worker ViewMat processor. The warm pass populates
// templates, join state, caches and pools; the measured pass then sees the
// steady-state per-document allocation profile.
func allocsFullPass(qs []*xscl.Query, stream []*xmldoc.Document) func() {
	p := core.NewProcessor(core.Config{ViewMaterialization: true})
	for _, q := range qs {
		p.MustRegister(q)
	}
	for _, d := range stream {
		p.Process("S", d)
	}
	return func() {
		for _, d := range stream {
			p.Process("S", d)
		}
	}
}

// allocsRow runs fn (which processes n documents) between two MemStats
// reads and renders one result row. A GC settles outstanding garbage first
// so the deltas belong to the measured pass.
func allocsRow(series string, n int, fn func()) []string {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(n)
	bytes := float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	ns := float64(elapsed.Nanoseconds()) / float64(n)
	return []string{series, fmt.Sprintf("%.1f", allocs), fmt.Sprintf("%.1f", bytes), fmt.Sprintf("%.1f", ns)}
}
