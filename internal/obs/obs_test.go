package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "timings", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="0.1"} 3`,
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
		"# TYPE h_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("docs_total", "documents processed")
	c.Add(3)
	r.GaugeFunc("queue_depth", "queued docs", func() float64 { return 2 })
	v := r.CounterVec("stream_pub_total", "publishes per stream", "stream")
	v.With("S").Add(2)
	v.With("T").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP docs_total documents processed",
		"# TYPE docs_total counter",
		"docs_total 3",
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		`stream_pub_total{stream="S"} 2`,
		`stream_pub_total{stream="T"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Label values must sort for stable scrapes.
	if strings.Index(out, `stream="S"`) > strings.Index(out, `stream="T"`) {
		t.Fatalf("vec children not in sorted label order:\n%s", out)
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x", "")
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationBuckets)
	v := r.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) * 1e-5)
				v.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d", c.Value(), h.Count())
	}
	if v.With("a").Value()+v.With("b").Value() != 8000 {
		t.Fatalf("vec lost updates: %d + %d", v.With("a").Value(), v.With("b").Value())
	}
}

func TestFuncVec(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterFuncVec("part_docs_total", "Docs per partition.", "partition")
	gv := r.GaugeFuncVec("part_queries", "Queries per partition.", "partition")
	cv.With("1", func() float64 { return 20 })
	cv.With("0", func() float64 { return 10 })
	gv.With("0", func() float64 { return 3 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	want := "# HELP part_docs_total Docs per partition.\n" +
		"# TYPE part_docs_total counter\n" +
		"part_docs_total{partition=\"0\"} 10\n" +
		"part_docs_total{partition=\"1\"} 20\n" +
		"# HELP part_queries Queries per partition.\n" +
		"# TYPE part_queries gauge\n" +
		"part_queries{partition=\"0\"} 3\n"
	if out != want {
		t.Fatalf("func vec rendering:\ngot:\n%s\nwant:\n%s", out, want)
	}
}
