// Package obs is a dependency-free metrics registry for the MMQJP engine
// and its servers: atomic counters, gauges and fixed-bucket histograms,
// exposable in the Prometheus text format.
//
// The package is deliberately tiny — no external client library, no
// push/pull machinery, no metric families beyond what the engine needs.
// Metrics are created once at wiring time and updated lock-free on the hot
// path (a counter increment is one atomic add; a histogram observation is
// two atomic adds plus a branch-free bucket scan). Collection walks the
// registry in registration order, so /metrics output is stable across
// scrapes.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus counter semantics;
// this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; observations above the last bound land only in
// the implicit +Inf bucket. Sum is accumulated as float64 bits under CAS.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64  // math.Float64bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			goto counted
		}
	}
	h.counts[len(h.bounds)].Add(1)
counted:
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is a bound set suitable for per-document stage timings in
// seconds: 10µs up to 10s, roughly ×4 per step.
var DurationBuckets = []float64{
	10e-6, 40e-6, 160e-6, 640e-6, 2.5e-3, 10e-3, 40e-3, 160e-3, 640e-3, 2.5, 10,
}

// metricKind tags a registered metric for the TYPE comment line.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered metric (or one labeled child of a Vec).
type metric struct {
	name   string // base name, no labels
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
	vec    *CounterVec
	gvec   *GaugeVec
	fvec   *FuncVec
	hidden bool // children of a vec render through the vec
}

// Registry holds metrics in registration order.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*metric{}} }

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time. fn
// must be safe to call concurrently with anything.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// CounterFunc registers a counter whose value is computed at scrape time —
// for cumulative quantities something else already tracks (engine stats).
// fn must be monotonically non-decreasing and safe to call concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(&metric{name: name, help: help, kind: kindHistogram, h: h})
	return h
}

// CounterVec is a family of counters distinguished by one label.
type CounterVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Counter
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, children: map[string]*Counter{}}
	r.register(&metric{name: name, help: help, kind: kindCounter, vec: v})
	return v
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c == nil {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// FuncVec is a family of scrape-time-computed metrics distinguished by one
// label — for labeled breakdowns of values something else already tracks
// (per-partition engine stats). Children are added at wiring time with
// With; every scrape calls each child's fn.
type FuncVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]func() float64
}

// CounterFuncVec registers and returns a labeled family of scrape-time
// counters. Each child fn must be monotonically non-decreasing and safe to
// call concurrently.
func (r *Registry) CounterFuncVec(name, help, label string) *FuncVec {
	v := &FuncVec{label: label, children: map[string]func() float64{}}
	r.register(&metric{name: name, help: help, kind: kindCounter, fvec: v})
	return v
}

// GaugeFuncVec registers and returns a labeled family of scrape-time
// gauges. Each child fn must be safe to call concurrently.
func (r *Registry) GaugeFuncVec(name, help, label string) *FuncVec {
	v := &FuncVec{label: label, children: map[string]func() float64{}}
	r.register(&metric{name: name, help: help, kind: kindGauge, fvec: v})
	return v
}

// With sets the function behind one label value (replacing any previous
// one).
func (v *FuncVec) With(value string, fn func() float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.children[value] = fn
}

// GaugeVec is a family of gauges distinguished by one label.
type GaugeVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Gauge
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{label: label, children: map[string]*Gauge{}}
	r.register(&metric{name: name, help: help, kind: kindGauge, gvec: v})
	return v
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g := v.children[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[value]; g == nil {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order. Labeled
// families render their children in sorted label order so output is stable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	for _, m := range metrics {
		if m.hidden {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, typeName(m.kind))
		switch {
		case m.c != nil:
			fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case m.fn != nil:
			fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
		case m.h != nil:
			writeHistogram(w, m.name, m.h)
		case m.vec != nil:
			m.vec.mu.RLock()
			for _, lv := range sortedKeysC(m.vec.children) {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, m.vec.label, lv, m.vec.children[lv].Value())
			}
			m.vec.mu.RUnlock()
		case m.gvec != nil:
			m.gvec.mu.RLock()
			for _, lv := range sortedKeysG(m.gvec.children) {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, m.gvec.label, lv, m.gvec.children[lv].Value())
			}
			m.gvec.mu.RUnlock()
		case m.fvec != nil:
			m.fvec.mu.RLock()
			for _, lv := range sortedKeysF(m.fvec.children) {
				fmt.Fprintf(w, "%s{%s=%q} %s\n", m.name, m.fvec.label, lv, formatFloat(m.fvec.children[lv]()))
			}
			m.fvec.mu.RUnlock()
		}
	}
}

func writeHistogram(w io.Writer, name string, h *Histogram) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

func typeName(k metricKind) string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// formatFloat renders a float the way Prometheus expects: no exponent for
// ordinary magnitudes, no trailing zeros.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return strings.TrimSuffix(s, ".0")
}

func sortedKeysC(m map[string]*Counter) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysG(m map[string]*Gauge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysF(m map[string]func() float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
