package xmldoc

// PaperD1 constructs the book announcement document of Figure 1 in the
// paper, with the exact pre-order node ids shown there:
//
//	0 book
//	1   publisher        "Wrox"
//	2   author           "Andrew Watt"
//	3   author           "Danny Ayers"
//	4   title            "Beginning RSS and Atom Programming"
//	5   category         "Scripting & Programming"
//	6   category         "Web Site Development"
//	7   isbn             "0764579169"
//	8   (price)          — unlabeled in the figure; modeled as isbn13
func PaperD1(id DocID, ts Timestamp) *Document {
	b := NewBuilder(id, ts, "book")
	b.Element(0, "publisher", "Wrox")
	b.Element(0, "author", "Andrew Watt")
	b.Element(0, "author", "Danny Ayers")
	b.Element(0, "title", "Beginning RSS and Atom Programming")
	b.Element(0, "category", "Scripting & Programming")
	b.Element(0, "category", "Web Site Development")
	b.Element(0, "isbn", "0764579169")
	b.Element(0, "isbn13", "9780764579165")
	return b.Build()
}

// PaperD2 constructs the blog article document of Figure 2 in the paper:
//
//	0 blog
//	1   url              "http://dannyayers.com/topics/books/rss-book"
//	2   author           "Danny Ayers"
//	3   title            "Beginning RSS and Atom Programming"
//	4   category         "Book Announcement"
//	5   category         "Scripting & Programming"
//	6   body             "Just heard ..."
func PaperD2(id DocID, ts Timestamp) *Document {
	b := NewBuilder(id, ts, "blog")
	b.Element(0, "url", "http://dannyayers.com/topics/books/rss-book")
	b.Element(0, "author", "Danny Ayers")
	b.Element(0, "title", "Beginning RSS and Atom Programming")
	b.Element(0, "category", "Book Announcement")
	b.Element(0, "category", "Scripting & Programming")
	b.Element(0, "body", "Just heard ...")
	return b.Build()
}
