// Package xmldoc provides the XML document model used throughout the MMQJP
// system: documents with pre-order node identifiers, XPath string values,
// stream timestamps, and parsing from XML text.
//
// The model follows the paper's conventions (Figures 1 and 2): each element
// node receives an id defined by pre-order traversal of the XML tree, and
// the string value of a node is the XPath string value, i.e. the
// concatenation of all descendant text in document order.
package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/sym"
)

// NodeID identifies a node within a single document by its pre-order index.
type NodeID int32

// DocID identifies a document within a stream. Document ids are assigned by
// the stream source (or the engine) and are strictly increasing.
type DocID int64

// Timestamp is the event time of a document, in arbitrary integer units
// (the paper's T window parameters are expressed in the same units).
type Timestamp int64

// NodeKind distinguishes element nodes from attribute nodes. Text content is
// not modeled as separate nodes; it is folded into the string values of its
// ancestors, matching the paper's leaf-value treatment.
type NodeKind uint8

const (
	// ElementNode is a regular XML element.
	ElementNode NodeKind = iota
	// AttributeNode is an XML attribute; it is always a leaf and its
	// string value is the attribute value.
	AttributeNode
)

// Node is a single node of a parsed document.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string // element tag or attribute name
	// Sym is the interned symbol of the node's NFA transition label: the
	// element name, or "@"+name for attributes (internal/sym). It is
	// assigned at build/parse time so Stage-1 matching never touches the
	// name string.
	Sym      sym.ID
	Parent   NodeID // -1 for the root
	Children []NodeID
	Depth    int32 // root is depth 0

	// text is the directly-contained character data of this node
	// (attribute value for attributes). The full XPath string value is
	// computed over the subtree; see Document.StringValue.
	text string
}

// Document is an immutable parsed XML document with stream metadata.
type Document struct {
	ID        DocID
	Timestamp Timestamp
	Nodes     []Node // indexed by NodeID

	strValues []string // memoized XPath string values, indexed by NodeID
}

// Root returns the id of the document's root element (always 0).
func (d *Document) Root() NodeID { return 0 }

// Node returns the node with the given id. It panics on out-of-range ids,
// which indicate a cross-document confusion bug.
func (d *Document) Node(id NodeID) *Node { return &d.Nodes[id] }

// Len returns the number of nodes in the document.
func (d *Document) Len() int { return len(d.Nodes) }

// StringValue returns the XPath string value of the node: for attributes the
// attribute value, for elements the concatenation of all descendant text in
// document order. Values are memoized at parse/build time.
func (d *Document) StringValue(id NodeID) string { return d.strValues[id] }

// Text returns the directly-contained character data of the node (for
// attributes, the attribute value). Unlike StringValue it does not include
// descendant text.
func (d *Document) Text(id NodeID) string { return d.Nodes[id].text }

// IsLeaf reports whether the node has no element children.
func (d *Document) IsLeaf(id NodeID) bool {
	for _, c := range d.Nodes[id].Children {
		if d.Nodes[c].Kind == ElementNode {
			return false
		}
	}
	return true
}

// IsAncestor reports whether a is a proper ancestor of b within d.
func (d *Document) IsAncestor(a, b NodeID) bool {
	for p := d.Nodes[b].Parent; p >= 0; p = d.Nodes[p].Parent {
		if p == a {
			return true
		}
	}
	return false
}

// finalize computes memoized string values. It must be called once after all
// nodes are in place.
func (d *Document) finalize() {
	d.strValues = make([]string, len(d.Nodes))
	// Post-order accumulation: children have larger pre-order ids than
	// their parent, so a reverse scan visits children before parents and
	// can concatenate their already-memoized values directly.
	for i := len(d.Nodes) - 1; i >= 0; i-- {
		n := &d.Nodes[i]
		if n.Kind == AttributeNode {
			d.strValues[i] = n.text
			continue
		}
		// Attribute children do not contribute to an element's string
		// value (XPath semantics); elements with no element children —
		// the vast majority of nodes — reuse their text verbatim.
		hasElemChild := false
		for _, c := range n.Children {
			if d.Nodes[c].Kind == ElementNode {
				hasElemChild = true
				break
			}
		}
		if !hasElemChild {
			d.strValues[i] = n.text
			continue
		}
		var sb strings.Builder
		sb.WriteString(n.text)
		for _, c := range n.Children {
			if d.Nodes[c].Kind == ElementNode {
				sb.WriteString(d.strValues[c])
			}
		}
		d.strValues[i] = sb.String()
	}
}

// Builder constructs documents programmatically (used by workload generators
// and tests). Nodes must be added parent-first; the builder assigns pre-order
// ids in insertion order, which is the pre-order traversal order as long as
// children are added immediately after their subtree's preceding siblings.
type Builder struct {
	doc Document
}

// NewBuilder returns a builder for a document with the given stream metadata
// and a root element with the given name.
func NewBuilder(id DocID, ts Timestamp, rootName string) *Builder {
	b := &Builder{doc: Document{ID: id, Timestamp: ts}}
	b.doc.Nodes = append(b.doc.Nodes, Node{ID: 0, Kind: ElementNode, Name: rootName, Sym: sym.Intern(rootName), Parent: -1, Depth: 0})
	return b
}

// Element appends a child element under parent and returns its id.
// The optional text is the element's directly-contained character data.
func (b *Builder) Element(parent NodeID, name, text string) NodeID {
	id := NodeID(len(b.doc.Nodes))
	p := &b.doc.Nodes[parent]
	b.doc.Nodes = append(b.doc.Nodes, Node{
		ID: id, Kind: ElementNode, Name: name, Sym: sym.Intern(name), Parent: parent,
		Depth: p.Depth + 1, text: text,
	})
	b.doc.Nodes[parent].Children = append(b.doc.Nodes[parent].Children, id)
	return id
}

// Attribute appends an attribute node under parent and returns its id.
func (b *Builder) Attribute(parent NodeID, name, value string) NodeID {
	id := NodeID(len(b.doc.Nodes))
	p := &b.doc.Nodes[parent]
	b.doc.Nodes = append(b.doc.Nodes, Node{
		ID: id, Kind: AttributeNode, Name: name, Sym: sym.AttrIntern(name), Parent: parent,
		Depth: p.Depth + 1, text: value,
	})
	b.doc.Nodes[parent].Children = append(b.doc.Nodes[parent].Children, id)
	return id
}

// SetText replaces the directly-contained text of a node.
func (b *Builder) SetText(id NodeID, text string) { b.doc.Nodes[id].text = text }

// Build finalizes and returns the document. The builder must not be reused.
func (b *Builder) Build() *Document {
	d := &b.doc
	d.finalize()
	return d
}

// parseScratch is the pooled per-parse working set: the open-element stack.
// The document's node and value arrays escape into the returned Document
// and are never pooled; the scratch must not.
type parseScratch struct {
	stack []NodeID
}

//mmqjp:pooled parse scratch is reset on Get and nothing it references escapes into the Document
var parsePool = sync.Pool{New: func() any { return &parseScratch{} }}

// Parse reads a single XML document from r and assigns the given stream
// metadata. Attributes become AttributeNode children preceding element
// children, and character data is attached to the innermost open element.
func Parse(r io.Reader, id DocID, ts Timestamp) (*Document, error) {
	dec := xml.NewDecoder(r)
	var b *Builder
	scratch := parsePool.Get().(*parseScratch)
	stack := scratch.stack[:0]
	defer func() {
		scratch.stack = stack[:0]
		parsePool.Put(scratch)
	}()
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var nid NodeID
			if b == nil {
				b = NewBuilder(id, ts, t.Name.Local)
				nid = 0
			} else {
				if len(stack) == 0 {
					return nil, fmt.Errorf("xmldoc: multiple root elements")
				}
				nid = b.Element(stack[len(stack)-1], t.Name.Local, "")
			}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attribute(nid, a.Name.Local, a.Value)
			}
			stack = append(stack, nid)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldoc: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				cur := stack[len(stack)-1]
				b.doc.Nodes[cur].text += string(t)
			}
		}
	}
	if b == nil {
		return nil, fmt.Errorf("xmldoc: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmldoc: unclosed elements")
	}
	d := &b.doc
	// Trim pure-whitespace text that came from document indentation.
	for i := range d.Nodes {
		if d.Nodes[i].Kind == ElementNode && strings.TrimSpace(d.Nodes[i].text) == "" {
			d.Nodes[i].text = ""
		} else if d.Nodes[i].Kind == ElementNode {
			d.Nodes[i].text = strings.TrimSpace(d.Nodes[i].text)
		}
	}
	d.finalize()
	return d, nil
}

// ParseString is Parse over a string.
func ParseString(s string, id DocID, ts Timestamp) (*Document, error) {
	return Parse(strings.NewReader(s), id, ts)
}

// MarshalXML serializes the document back to XML text (elements, attributes
// and direct text only). It is used for constructing query outputs.
func (d *Document) XMLText() string {
	var sb strings.Builder
	d.writeNode(&sb, d.Root())
	return sb.String()
}

func (d *Document) writeNode(sb *strings.Builder, id NodeID) {
	n := &d.Nodes[id]
	sb.WriteByte('<')
	sb.WriteString(n.Name)
	for _, c := range n.Children {
		cn := &d.Nodes[c]
		if cn.Kind == AttributeNode {
			// XML-escaped, not Go-quoted: xml.EscapeText escapes the
			// quote characters too, so the value is safe inside a
			// double-quoted attribute.
			sb.WriteByte(' ')
			sb.WriteString(cn.Name)
			sb.WriteString(`="`)
			xml.EscapeText(sb, []byte(cn.text))
			sb.WriteByte('"')
		}
	}
	sb.WriteByte('>')
	xml.EscapeText(sb, []byte(n.text))
	for _, c := range n.Children {
		if d.Nodes[c].Kind == ElementNode {
			d.writeNode(sb, c)
		}
	}
	sb.WriteString("</")
	sb.WriteString(n.Name)
	sb.WriteByte('>')
}

// Subtree returns the node ids of the subtree rooted at id, in pre-order.
func (d *Document) Subtree(id NodeID) []NodeID {
	out := []NodeID{id}
	for i := 0; i < len(out); i++ {
		out = append(out, d.Nodes[out[i]].Children...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ElementsByName returns the ids of all element nodes with the given name,
// in document order.
func (d *Document) ElementsByName(name string) []NodeID {
	var out []NodeID
	for i := range d.Nodes {
		if d.Nodes[i].Kind == ElementNode && d.Nodes[i].Name == name {
			out = append(out, NodeID(i))
		}
	}
	return out
}
