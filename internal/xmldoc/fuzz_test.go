package xmldoc

import "testing"

// FuzzParseDocument fuzzes the XML document parser. Properties:
//
//   - no panic on arbitrary input (the fuzzer's implicit check);
//   - parse → print → parse stability: a successfully parsed document
//     serializes (XMLText) to well-formed XML that reparses to a document
//     of identical shape and identical serialization — printing is a
//     fixpoint after the parser's whitespace normalization, and escaping
//     (including the paper's "Scripting & Programming" ampersand case)
//     survives the round trip.
//
// The corpus seeds the paper's two figures (paperdocs.go) plus documents
// exercising attributes, escaping, mixed content and namespaces.
func FuzzParseDocument(f *testing.F) {
	f.Add(PaperD1(1, 100).XMLText())
	f.Add(PaperD2(2, 200).XMLText())
	for _, seed := range []string{
		"<r><l1>value-1</l1><l2>value-2</l2></r>",
		`<item id="7"><title>Scripting &amp; Programming</title></item>`,
		`<a x="1" y="&lt;&quot;&gt;"><b>t1<c>t2</c>t3</b></a>`,
		"<a>\n  <b>  spaced  </b>\n</a>",
		`<x:a xmlns:x="urn:demo"><x:b>v</x:b></x:a>`,
		"<a><b/><b></b></a>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src, 1, 10)
		if err != nil {
			return
		}
		p1 := d.XMLText()
		d2, err := ParseString(p1, 1, 10)
		if err != nil {
			t.Fatalf("serialized document does not reparse:\ninput: %q\nprint: %q\nerr: %v", src, p1, err)
		}
		if d2.Len() != d.Len() {
			t.Fatalf("round trip changed node count %d -> %d:\ninput: %q\nprint: %q", d.Len(), d2.Len(), src, p1)
		}
		for i := 0; i < d.Len(); i++ {
			a, b := d.Node(NodeID(i)), d2.Node(NodeID(i))
			if a.Kind != b.Kind || a.Name != b.Name || a.Parent != b.Parent {
				t.Fatalf("round trip changed node %d: %+v vs %+v (input %q)", i, a, b, src)
			}
			if d.StringValue(NodeID(i)) != d2.StringValue(NodeID(i)) {
				t.Fatalf("round trip changed string value of node %d: %q vs %q (input %q)",
					i, d.StringValue(NodeID(i)), d2.StringValue(NodeID(i)), src)
			}
		}
		if p2 := d2.XMLText(); p2 != p1 {
			t.Fatalf("print not a fixpoint:\ninput: %q\nprint1: %q\nprint2: %q", src, p1, p2)
		}
	})
}
