package xmldoc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderPreorderIDs(t *testing.T) {
	b := NewBuilder(1, 10, "root")
	a := b.Element(0, "a", "")
	b.Element(a, "b", "x")
	c := b.Element(0, "c", "")
	b.Element(c, "d", "y")
	d := b.Build()

	if d.Len() != 5 {
		t.Fatalf("len = %d, want 5", d.Len())
	}
	wantNames := []string{"root", "a", "b", "c", "d"}
	for i, n := range wantNames {
		if d.Node(NodeID(i)).Name != n {
			t.Errorf("node %d name = %q, want %q", i, d.Node(NodeID(i)).Name, n)
		}
	}
	if d.Node(2).Parent != 1 || d.Node(4).Parent != 3 {
		t.Errorf("parent links wrong: %v %v", d.Node(2).Parent, d.Node(4).Parent)
	}
	if d.Node(2).Depth != 2 {
		t.Errorf("depth of node 2 = %d, want 2", d.Node(2).Depth)
	}
}

func TestStringValueConcatenation(t *testing.T) {
	b := NewBuilder(1, 0, "r")
	a := b.Element(0, "a", "hello ")
	b.Element(a, "b", "world")
	b.Element(0, "c", "!")
	d := b.Build()

	if got := d.StringValue(1); got != "hello world" {
		t.Errorf("StringValue(a) = %q, want %q", got, "hello world")
	}
	if got := d.StringValue(0); got != "hello world!" {
		t.Errorf("StringValue(root) = %q, want %q", got, "hello world!")
	}
	if got := d.StringValue(2); got != "world" {
		t.Errorf("StringValue(b) = %q", got)
	}
}

func TestAttributeStringValue(t *testing.T) {
	b := NewBuilder(1, 0, "r")
	at := b.Attribute(0, "id", "42")
	b.Element(0, "a", "text")
	d := b.Build()
	if got := d.StringValue(at); got != "42" {
		t.Errorf("attr string value = %q, want 42", got)
	}
	// Attributes do not contribute to the element string value.
	if got := d.StringValue(0); got != "text" {
		t.Errorf("root string value = %q, want %q", got, "text")
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `<book id="7"><author>Danny Ayers</author><title>RSS</title></book>`
	d, err := ParseString(src, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 3 || d.Timestamp != 99 {
		t.Errorf("metadata = (%d,%d)", d.ID, d.Timestamp)
	}
	if d.Node(0).Name != "book" {
		t.Fatalf("root = %q", d.Node(0).Name)
	}
	// node 1 is the id attribute, nodes 2,3 are author/title.
	if d.Node(1).Kind != AttributeNode || d.Node(1).Name != "id" || d.StringValue(1) != "7" {
		t.Errorf("attribute node wrong: %+v", d.Node(1))
	}
	authors := d.ElementsByName("author")
	if len(authors) != 1 || d.StringValue(authors[0]) != "Danny Ayers" {
		t.Errorf("author = %v", authors)
	}
}

// TestXMLTextEscapesSpecialValues pins the serializer's escaping: text and
// attribute values containing &, <, > and " must survive an
// XMLText → Parse round trip (attributes were previously Go-quoted, which
// is not XML escaping).
func TestXMLTextEscapesSpecialValues(t *testing.T) {
	b := NewBuilder(1, 1, "book")
	b.Attribute(0, "id", `a&b "quoted" <tag>`)
	b.Element(0, "title", "Scripting & Programming")
	b.Element(0, "note", `1 < 2 && 3 > 2`)
	d := b.Build()

	rt, err := ParseString(d.XMLText(), 2, 2)
	if err != nil {
		t.Fatalf("XMLText did not round-trip: %v\noutput: %s", err, d.XMLText())
	}
	if got := rt.StringValue(1); rt.Node(1).Kind != AttributeNode || got != `a&b "quoted" <tag>` {
		t.Errorf("attribute round-trip = %q (%+v)", got, rt.Node(1))
	}
	if ids := rt.ElementsByName("title"); len(ids) != 1 || rt.StringValue(ids[0]) != "Scripting & Programming" {
		t.Errorf("title round-trip = %v", ids)
	}
	if ids := rt.ElementsByName("note"); len(ids) != 1 || rt.StringValue(ids[0]) != "1 < 2 && 3 > 2" {
		t.Errorf("note round-trip = %v", ids)
	}
}

func TestParseIgnoresIndentationWhitespace(t *testing.T) {
	src := "<r>\n  <a>x</a>\n  <b>y</b>\n</r>"
	d, err := ParseString(src, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.StringValue(0); got != "xy" {
		t.Errorf("root string value = %q, want xy", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "<a><b></a></b>", "not xml at all <"} {
		if _, err := ParseString(src, 1, 0); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestIsAncestor(t *testing.T) {
	b := NewBuilder(1, 0, "r")
	a := b.Element(0, "a", "")
	bb := b.Element(a, "b", "")
	c := b.Element(0, "c", "")
	d := b.Build()
	cases := []struct {
		a, b NodeID
		want bool
	}{
		{0, a, true}, {0, bb, true}, {a, bb, true},
		{bb, a, false}, {a, c, false}, {a, a, false},
	}
	for _, tc := range cases {
		if got := d.IsAncestor(tc.a, tc.b); got != tc.want {
			t.Errorf("IsAncestor(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestIsLeaf(t *testing.T) {
	b := NewBuilder(1, 0, "r")
	a := b.Element(0, "a", "")
	b.Attribute(a, "k", "v")
	d := b.Build()
	if !d.IsLeaf(a) {
		t.Errorf("element with only attribute children should be a leaf")
	}
	if d.IsLeaf(0) {
		t.Errorf("root has element child, not a leaf")
	}
}

func TestSubtree(t *testing.T) {
	b := NewBuilder(1, 0, "r")
	a := b.Element(0, "a", "")
	b.Element(a, "b", "")
	b.Element(0, "c", "")
	d := b.Build()
	got := d.Subtree(a)
	if len(got) != 2 || got[0] != a || got[1] != a+1 {
		t.Errorf("Subtree(a) = %v", got)
	}
	if got := d.Subtree(0); len(got) != 4 {
		t.Errorf("Subtree(root) = %v", got)
	}
}

func TestPaperDocuments(t *testing.T) {
	d1 := PaperD1(1, 100)
	d2 := PaperD2(2, 200)

	// Node ids as printed in Figures 1 and 2.
	if got := d1.StringValue(2); got != "Andrew Watt" {
		t.Errorf("d1 node 2 = %q", got)
	}
	if got := d1.StringValue(3); got != "Danny Ayers" {
		t.Errorf("d1 node 3 = %q", got)
	}
	if got := d1.StringValue(4); got != "Beginning RSS and Atom Programming" {
		t.Errorf("d1 node 4 = %q", got)
	}
	if got := d2.StringValue(2); got != "Danny Ayers" {
		t.Errorf("d2 node 2 = %q", got)
	}
	if got := d2.StringValue(3); got != "Beginning RSS and Atom Programming" {
		t.Errorf("d2 node 3 = %q", got)
	}
	if d1.Node(0).Name != "book" || d2.Node(0).Name != "blog" {
		t.Errorf("roots: %q %q", d1.Node(0).Name, d2.Node(0).Name)
	}
}

func TestMarshalXMLRoundTrip(t *testing.T) {
	d1 := PaperD1(1, 100)
	text := d1.XMLText()
	d1b, err := ParseString(text, 1, 100)
	if err != nil {
		t.Fatalf("re-parse: %v (text %q)", err, text)
	}
	if d1b.Len() != d1.Len() {
		t.Fatalf("round trip node count %d != %d", d1b.Len(), d1.Len())
	}
	for i := 0; i < d1.Len(); i++ {
		if d1.Node(NodeID(i)).Name != d1b.Node(NodeID(i)).Name {
			t.Errorf("node %d name %q != %q", i, d1.Node(NodeID(i)).Name, d1b.Node(NodeID(i)).Name)
		}
		if d1.StringValue(NodeID(i)) != d1b.StringValue(NodeID(i)) {
			t.Errorf("node %d strval %q != %q", i, d1.StringValue(NodeID(i)), d1b.StringValue(NodeID(i)))
		}
	}
}

// randomDoc builds a random tree with n nodes for property tests.
func randomDoc(rng *rand.Rand, n int) *Document {
	b := NewBuilder(1, 0, "n0")
	for i := 1; i < n; i++ {
		parent := NodeID(rng.Intn(i))
		b.Element(parent, "n"+string(rune('a'+rng.Intn(4))), strings.Repeat("x", rng.Intn(3)))
	}
	return b.Build()
}

func TestPropertyPreorderParentSmaller(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDoc(rng, 2+rng.Intn(40))
		for i := 1; i < d.Len(); i++ {
			n := d.Node(NodeID(i))
			if n.Parent >= NodeID(i) {
				return false
			}
			if d.Node(n.Parent).Depth+1 != n.Depth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyStringValueIsDescendantConcat(t *testing.T) {
	// The string value of any node equals the concatenation of the
	// direct text of all subtree nodes in child (document) order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDoc(rng, 2+rng.Intn(30))
		var concat func(id NodeID, sb *strings.Builder)
		concat = func(id NodeID, sb *strings.Builder) {
			sb.WriteString(d.Node(id).text)
			for _, c := range d.Node(id).Children {
				concat(c, sb)
			}
		}
		for i := 0; i < d.Len(); i++ {
			var sb strings.Builder
			concat(NodeID(i), &sb)
			if d.StringValue(NodeID(i)) != sb.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
