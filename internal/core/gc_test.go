package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/sym"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// mergeDoc merges a minimal document with one value-join string into the
// state (timestamp == arrival order unless overridden).
func mergeDoc(s *State, id int64, ts int64, str string) {
	b := xmldoc.NewBuilder(xmldoc.DocID(id), xmldoc.Timestamp(ts), "item")
	b.Element(0, "a", str)
	d := b.Build()
	w := NewCurrentWitness(d)
	w.AddBin(1, 2, 0, 1)
	w.AddDoc(1, str)
	s.Merge(w, false)
}

// TestShouldGCExpiredPrefix pins the prefix semantics of the per-publish GC
// check: the scan stops at the first live document, the half-expired rule
// and the gcBatchMin fast path both hold, and no expired documents means no
// GC.
func TestShouldGCExpiredPrefix(t *testing.T) {
	noSeq := int64(math.MaxInt64)
	s := NewState()
	for i := int64(1); i <= 10; i++ {
		mergeDoc(s, i, i, fmt.Sprintf("s%d", i))
	}
	if s.shouldGC(1, noSeq) {
		t.Error("shouldGC with nothing expired")
	}
	if s.shouldGC(5, noSeq) {
		t.Error("shouldGC with 4/10 expired (below half, below batch)")
	}
	if !s.shouldGC(6, noSeq) {
		t.Error("!shouldGC with 5/10 expired (half the state)")
	}
	// A long stream: gcBatchMin expired documents suffice even when they
	// are a small fraction of the state.
	big := NewState()
	for i := int64(1); i <= 1000; i++ {
		mergeDoc(big, i, i, fmt.Sprintf("s%d", i))
	}
	if big.shouldGC(xmldoc.Timestamp(gcBatchMin), noSeq) {
		t.Errorf("shouldGC with %d/1000 expired", gcBatchMin-1)
	}
	if !big.shouldGC(xmldoc.Timestamp(gcBatchMin)+1, noSeq) {
		t.Errorf("!shouldGC with %d/1000 expired", gcBatchMin)
	}
}

// TestShouldGCOutOfOrderTimestamps is the starvation regression test: a
// single early document with a far-future timestamp (clock skew) keeps the
// expired prefix empty forever, but the periodic full scan must still
// trigger GC once enough non-prefix documents have expired — previously the
// trigger starved and expired state accumulated unboundedly.
func TestShouldGCOutOfOrderTimestamps(t *testing.T) {
	noSeq := int64(math.MaxInt64)
	s := NewState()
	mergeDoc(s, 1, 1_000_000, "skew") // prefix head that never expires
	for i := int64(2); i <= 80; i++ {
		mergeDoc(s, i, i, fmt.Sprintf("s%d", i))
	}
	// Cutoff 100 expires docs 2..80 (79 ≥ gcBatchMin) but not the head.
	fired := false
	for call := 0; call < gcFullScanEvery+1; call++ {
		if s.shouldGC(100, noSeq) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatalf("shouldGC never fired within %d calls with %d non-prefix expired documents",
			gcFullScanEvery+1, 79)
	}
	if got := len(s.GC(100, noSeq)); got != 79 {
		t.Errorf("GC reclaimed %d documents, want 79", got)
	}
	if s.NumDocs() != 1 {
		t.Errorf("NumDocs = %d after GC, want 1 (the skewed head)", s.NumDocs())
	}
}

// TestGCOutOfOrderProcessor drives the starvation scenario end-to-end: a
// skewed first document followed by a long normally-timestamped stream must
// not pin the whole stream in the join state.
func TestGCOutOfOrderProcessor(t *testing.T) {
	p := NewProcessor(Config{ViewMaterialization: true})
	p.MustRegister(xscl.MustParse(
		"S//a->r1[.//x->v] JOIN{v=w, 10} S//b->r2[.//y->w]"))
	doc := func(id, ts int64) *xmldoc.Document {
		b := xmldoc.NewBuilder(xmldoc.DocID(id), xmldoc.Timestamp(ts), "a")
		b.Element(0, "x", fmt.Sprintf("k%d", id%7))
		return b.Build()
	}
	p.Process("S", doc(1, 1_000_000)) // clock-skewed head
	const n = 300
	for i := int64(2); i <= n; i++ {
		p.Process("S", doc(i, i))
	}
	// Window 10: all but the head and the last ~10 documents are expired.
	// Without the periodic full scan the state would hold all n documents.
	if got := p.State().NumDocs(); got > 1+10+gcFullScanEvery+gcBatchMin {
		t.Errorf("join state holds %d documents after %d publishes (window 10): GC starved", got, n)
	}
}

// TestGCReturnsExpiredSet checks GC's return value: exactly the reclaimed
// documents, empty when nothing expires.
func TestGCReturnsExpiredSet(t *testing.T) {
	noSeq := int64(math.MaxInt64)
	s := NewState()
	for i := int64(1); i <= 6; i++ {
		mergeDoc(s, i, i, fmt.Sprintf("s%d", i))
	}
	if got := s.GC(1, noSeq); len(got) != 0 {
		t.Errorf("GC expired %v with cutoff below all docs", got)
	}
	got := s.GC(4, noSeq)
	want := map[xmldoc.DocID]bool{1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("GC expired %v, want %v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Errorf("GC missing expired doc %d", id)
		}
	}
	if s.NumDocs() != 3 {
		t.Errorf("NumDocs = %d, want 3", s.NumDocs())
	}
}

// TestGCScopedCacheInvalidation is the satellite bugfix check: after a GC,
// only view-cache entries whose slices reference expired documents are
// dropped — the post-GC cache is no longer wiped wholesale.
func TestGCScopedCacheInvalidation(t *testing.T) {
	p := NewProcessor(Config{ViewMaterialization: true})
	// Two leaves per side keep the block roots in the template, so the
	// cached RL slices actually carry Rbin rows (a single-node side would
	// use the Rroot path and cache empty slices).
	p.MustRegister(xscl.MustParse(
		"S//item->x[.//a->v][.//b->u] FOLLOWED BY{v=w AND u=z, 1000} S//item->y[.//a->w][.//b->z]"))

	doc := func(id, ts int64, val string) *xmldoc.Document {
		b := xmldoc.NewBuilder(xmldoc.DocID(id), xmldoc.Timestamp(ts), "item")
		b.Element(0, "a", val+"A")
		b.Element(0, "b", val+"B")
		return b.Build()
	}
	// Old epoch: values "oldA"/"oldB" repeated, so their slices reference
	// only documents that will expire together.
	id, ts := int64(1), int64(0)
	for i := 0; i < gcBatchMin+1; i++ {
		p.Process("S", doc(id, ts, "old"))
		id++
		ts++
	}
	if sl, ok := p.shardOfSym(sym.Intern("oldA")).cache.Get(sym.Intern("oldA")); !ok || sl.Len() == 0 {
		t.Fatalf("precondition: no populated cache entry for oldA (ok=%v)", ok)
	}
	// Live documents carrying different strings, far enough ahead that the
	// old epoch falls out of the window on the next publishes.
	ts += 2000
	for i := 0; i < 4; i++ {
		p.Process("S", doc(id, ts, "new"))
		id++
		ts++
	}
	sh := p.shardOfSym(sym.Intern("newA"))
	if n := sh.cache.Len(); n == 0 {
		t.Fatalf("no cache entries after the fresh epoch (GC wiped the cache wholesale?)")
	}
	if _, ok := sh.cache.Get(sym.Intern("newA")); !ok {
		t.Errorf("live entry %q invalidated by GC of unrelated documents", "newA")
	}
	if _, ok := p.shardOfSym(sym.Intern("oldA")).cache.Get(sym.Intern("oldA")); ok {
		t.Errorf("stale entry %q survived GC", "oldA")
	}
	inval := int64(0)
	for _, s := range p.shards {
		inval += s.cache.Invalidations()
	}
	if inval == 0 {
		t.Errorf("no invalidations accounted after GC")
	}
}

// TestViewCacheInvalidateDocs unit-tests the scoped invalidation: entries
// referencing an expired doc are dropped and accounted, others survive.
func TestViewCacheInvalidateDocs(t *testing.T) {
	c := NewViewCache(0)
	slice := func(docids ...int64) *relation.Relation {
		r := relation.New("docid", "var1", "var2", "node1", "node2", "strVal")
		for _, d := range docids {
			r.Insert(relation.Int(d), relation.Int(1), relation.Int(2),
				relation.Int(0), relation.Int(1), relation.Sym(sym.Intern("s")))
		}
		return r
	}
	c.Put(sym.Intern("stale"), slice(1, 2))
	c.Put(sym.Intern("live"), slice(3))
	c.Put(sym.Intern("empty"), slice())
	c.InvalidateDocs(map[xmldoc.DocID]bool{2: true})
	if _, ok := c.Get(sym.Intern("stale")); ok {
		t.Error("entry referencing expired doc 2 survived")
	}
	if _, ok := c.Get(sym.Intern("live")); !ok {
		t.Error("entry referencing only live docs dropped")
	}
	if _, ok := c.Get(sym.Intern("empty")); !ok {
		t.Error("empty slice dropped")
	}
	if got := c.Invalidations(); got != 1 {
		t.Errorf("Invalidations = %d, want 1", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

// TestViewCacheClearAccountsDrop checks Clear records the dropped entries in
// the invalidation stats instead of silently zeroing the population.
func TestViewCacheClearAccountsDrop(t *testing.T) {
	c := NewViewCache(0)
	for i := 0; i < 5; i++ {
		c.Put(sym.Intern(fmt.Sprintf("s%d", i)), relation.New("docid"))
	}
	c.Clear()
	if got := c.Invalidations(); got != 5 {
		t.Errorf("Invalidations after Clear = %d, want 5", got)
	}
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d", c.Len())
	}
}
