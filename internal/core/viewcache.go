package core

import (
	"container/list"

	"repro/internal/relation"
	"repro/internal/sym"
	"repro/internal/xmldoc"
)

// ViewCache is the Section-5 cache of materialized RL slices: each entry is
// keyed by the interned symbol of a string value s (internal/sym) and holds
// the relation R_{L,s} — the part of the materialized left view whose
// tuples carry string value s. Symbol keys hash in constant time; they are
// process-scoped, which is fine because caches are never snapshotted. Entries are
// maintained incrementally by Algorithm 5 and evicted with an LRU policy
// when a capacity is configured ("Cached entries can be replaced by a cache
// replacement policy appropriate for the workload, such as LRU").
type ViewCache struct {
	capacity int // 0 = unbounded
	entries  map[sym.ID]*list.Element
	order    *list.List // front = most recently used

	hits, misses, evictions int64
	// invalidations counts entries dropped because their contents became
	// stale (window GC expiring documents their slices reference) rather
	// than evicted for capacity.
	invalidations int64
}

type cacheEntry struct {
	key   sym.ID
	slice *relation.Relation
	// docs is the set of documents the slice references, so GC staleness
	// checks are O(expired docs) instead of rescanning every slice row.
	docs map[xmldoc.DocID]struct{}
}

// sliceDocs collects the distinct docids of a slice (one pass, paid when the
// entry is created or replaced — the same order of work that computed the
// slice itself).
func sliceDocs(slice *relation.Relation) map[xmldoc.DocID]struct{} {
	docs := map[xmldoc.DocID]struct{}{}
	col := slice.Schema.Col("docid")
	for _, row := range slice.Rows {
		docs[xmldoc.DocID(row[col].I)] = struct{}{}
	}
	return docs
}

// NewViewCache returns a cache bounded to capacity entries (0 = unbounded).
func NewViewCache(capacity int) *ViewCache {
	return &ViewCache{
		capacity: capacity,
		entries:  map[sym.ID]*list.Element{},
		order:    list.New(),
	}
}

// Get returns the cached slice for s, marking it most recently used.
func (c *ViewCache) Get(s sym.ID) (*relation.Relation, bool) {
	e, ok := c.entries[s]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(e)
	return e.Value.(*cacheEntry).slice, true
}

// Put inserts (or replaces) the slice for s, evicting the least recently
// used entry if the capacity is exceeded.
func (c *ViewCache) Put(s sym.ID, slice *relation.Relation) {
	if e, ok := c.entries[s]; ok {
		ent := e.Value.(*cacheEntry)
		ent.slice = slice
		ent.docs = sliceDocs(slice)
		c.order.MoveToFront(e)
		return
	}
	e := c.order.PushFront(&cacheEntry{key: s, slice: slice, docs: sliceDocs(slice)})
	c.entries[s] = e
	if c.capacity > 0 && len(c.entries) > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Clear drops all entries, accounting for them as invalidations. It is the
// whole-cache staleness path: full state reclamation when the last query
// unregisters (processor.reclaimAll).
func (c *ViewCache) Clear() {
	c.invalidations += int64(len(c.entries))
	c.entries = map[sym.ID]*list.Element{}
	c.order.Init()
}

// GetAndNote is Get for the Algorithm-5 maintenance path: the caller is
// about to insert rows of document d into the returned slice, so the
// entry's doc set is updated in the same lookup.
func (c *ViewCache) GetAndNote(s sym.ID, d xmldoc.DocID) (*relation.Relation, bool) {
	e, ok := c.entries[s]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(e)
	ent := e.Value.(*cacheEntry)
	ent.docs[d] = struct{}{}
	return ent.slice, true
}

// InvalidateDocs drops exactly the entries whose slices reference an expired
// document, leaving every other entry in place (incremental maintenance
// keeps survivors exact). Used after window GC instead of a full Clear. The
// check walks the per-entry doc sets, never the slice rows, so the cost is
// O(entries × min(docs per entry, expired)).
func (c *ViewCache) InvalidateDocs(expired map[xmldoc.DocID]bool) {
	if len(expired) == 0 || len(c.entries) == 0 {
		return
	}
	//mmqjp:unordered each entry is checked and dropped independently
	for key, e := range c.entries {
		docs := e.Value.(*cacheEntry).docs
		stale := false
		if len(docs) <= len(expired) {
			//mmqjp:unordered existence probe; any hit gives the same verdict
			for d := range docs {
				if expired[d] {
					stale = true
					break
				}
			}
		} else {
			//mmqjp:unordered existence probe; any hit gives the same verdict
			for d := range expired {
				if _, ok := docs[d]; ok {
					stale = true
					break
				}
			}
		}
		if stale {
			c.order.Remove(e)
			delete(c.entries, key)
			c.invalidations++
		}
	}
}

// Len returns the number of cached slices.
func (c *ViewCache) Len() int { return len(c.entries) }

// HitRate returns hits, misses and evictions since creation.
func (c *ViewCache) HitRate() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// Invalidations returns the number of entries dropped as stale (Clear and
// InvalidateDocs) since creation.
func (c *ViewCache) Invalidations() int64 { return c.invalidations }
