package core

import (
	"container/list"

	"repro/internal/relation"
)

// ViewCache is the Section-5 cache of materialized RL slices: each entry is
// keyed by a string value s and holds the relation R_{L,s} — the part of the
// materialized left view whose tuples carry string value s. Entries are
// maintained incrementally by Algorithm 5 and evicted with an LRU policy
// when a capacity is configured ("Cached entries can be replaced by a cache
// replacement policy appropriate for the workload, such as LRU").
type ViewCache struct {
	capacity int // 0 = unbounded
	entries  map[string]*list.Element
	order    *list.List // front = most recently used

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   string
	slice *relation.Relation
}

// NewViewCache returns a cache bounded to capacity entries (0 = unbounded).
func NewViewCache(capacity int) *ViewCache {
	return &ViewCache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
	}
}

// Get returns the cached slice for s, marking it most recently used.
func (c *ViewCache) Get(s string) (*relation.Relation, bool) {
	e, ok := c.entries[s]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(e)
	return e.Value.(*cacheEntry).slice, true
}

// Put inserts (or replaces) the slice for s, evicting the least recently
// used entry if the capacity is exceeded.
func (c *ViewCache) Put(s string, slice *relation.Relation) {
	if e, ok := c.entries[s]; ok {
		e.Value.(*cacheEntry).slice = slice
		c.order.MoveToFront(e)
		return
	}
	e := c.order.PushFront(&cacheEntry{key: s, slice: slice})
	c.entries[s] = e
	if c.capacity > 0 && len(c.entries) > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Clear drops all entries (used after state GC, which may invalidate cached
// rows).
func (c *ViewCache) Clear() {
	c.entries = map[string]*list.Element{}
	c.order.Init()
}

// Len returns the number of cached slices.
func (c *ViewCache) Len() int { return len(c.entries) }

// HitRate returns hits, misses and evictions since creation.
func (c *ViewCache) HitRate() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}
