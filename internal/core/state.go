package core

import (
	"repro/internal/relation"
	"repro/internal/sym"
	"repro/internal/xmldoc"
)

// symtab interns canonical variable names as dense int64 ids so that the
// witness relations can store them as integer attributes.
type symtab struct {
	ids   map[string]int64
	names []string
}

func newSymtab() *symtab { return &symtab{ids: map[string]int64{}} }

func (s *symtab) intern(name string) int64 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := int64(len(s.names))
	s.ids[name] = id
	s.names = append(s.names, name)
	return id
}

func (s *symtab) name(id int64) string { return s.names[id] }

// State is the Join Processor's join state: the witness relations of all
// previously processed documents (Section 3.1) plus the indexes that the
// view-materialization path maintains over them (Section 5).
//
//	Rbin   (docid, var1, var2, node1, node2) — bindings of template
//	        structural edges from previous documents
//	Rdoc   (docid, node, strVal)             — string values of value-join
//	        nodes from previous documents; strVal is stored as an interned
//	        symbol (relation.Sym), so value-join equality is a 4-byte
//	        compare and never rehashes string bytes
//	Rroot  (docid, var, node)                — root bindings for templates
//	        whose side is a single node (see DESIGN.md)
//	RdocTS (docid, timestamp)
type State struct {
	Rbin   *relation.Relation
	Rdoc   *relation.Relation
	Rroot  *relation.Relation
	RdocTS map[xmldoc.DocID]xmldoc.Timestamp

	// docIDs in insertion (timestamp) order, for window GC.
	docIDs []xmldoc.DocID
	// seq assigns each document its arrival index (monotone, survives
	// GC); tuple-based windows are expressed over this sequence.
	seq     map[xmldoc.DocID]int64
	nextSeq int64

	// rdocBySym indexes Rdoc rows by interned string value; rbinByNode2
	// indexes Rbin rows by (docid, node2); rbinByVars indexes Rbin rows by
	// their variable pair. All are maintained incrementally: the first two
	// serve the view-materialization plan (EL,s), the third the RT-driven
	// plan.
	rdocBySym   map[sym.ID][]int
	rbinByNode2 map[binKey][]int
	rbinByVars  map[[2]int64][]int

	// docs retains full documents for output construction when enabled.
	docs map[xmldoc.DocID]*xmldoc.Document

	// gcStale counts consecutive negative shouldGC prefix verdicts since
	// the last full expiry scan (see gcFullScanEvery).
	gcStale int

	// maxDoc is the largest document id ever merged (it survives GC), so a
	// restored engine can hand out fresh ids that cannot collide with
	// retained state.
	maxDoc xmldoc.DocID
}

type binKey struct {
	doc  xmldoc.DocID
	node xmldoc.NodeID
}

// NewState returns empty join state.
func NewState() *State {
	return &State{
		Rbin:        relation.New("docid", "var1", "var2", "node1", "node2"),
		Rdoc:        relation.New("docid", "node", "strVal"),
		Rroot:       relation.New("docid", "var", "node"),
		RdocTS:      map[xmldoc.DocID]xmldoc.Timestamp{},
		seq:         map[xmldoc.DocID]int64{},
		rdocBySym:   map[sym.ID][]int{},
		rbinByNode2: map[binKey][]int{},
		rbinByVars:  map[[2]int64][]int{},
		docs:        map[xmldoc.DocID]*xmldoc.Document{},
	}
}

// CurrentWitness holds the Stage-1 output for the document currently being
// processed: RbinW, RdocW, RrootW and RdocTSW of Section 3.1.
type CurrentWitness struct {
	RbinW   *relation.Relation // (var1, var2, node1, node2)
	RdocW   *relation.Relation // (node, strVal)
	RrootW  *relation.Relation // (var, node)
	DocID   xmldoc.DocID
	TS      xmldoc.Timestamp
	Doc     *xmldoc.Document
	binSeen map[[4]int64]bool
	docSeen map[xmldoc.NodeID]bool
	rtSeen  map[[2]int64]bool

	// arena slab-allocates the witness rows: the relations above are
	// per-document and dropped together, so their tuples share chunks
	// instead of costing one allocation each. Merge copies surviving rows
	// into fresh long-lived tuples, so nothing arena-backed outlives the
	// document.
	arena relation.Arena

	// rrSlices holds the current document's RR rows (var1, var2, node1,
	// node2, strVal) between conjunctive-query evaluation and view-cache
	// maintenance (Algorithm 5).
	rrSlices *relation.Relation
}

// NewCurrentWitness returns empty current-document witness relations.
func NewCurrentWitness(d *xmldoc.Document) *CurrentWitness {
	return &CurrentWitness{
		RbinW:   relation.New("var1", "var2", "node1", "node2"),
		RdocW:   relation.New("node", "strVal"),
		RrootW:  relation.New("var", "node"),
		DocID:   d.ID,
		TS:      d.Timestamp,
		Doc:     d,
		binSeen: map[[4]int64]bool{},
		docSeen: map[xmldoc.NodeID]bool{},
		rtSeen:  map[[2]int64]bool{},
	}
}

// AddBin inserts a deduplicated structural-edge binding tuple.
func (w *CurrentWitness) AddBin(var1, var2 int64, n1, n2 xmldoc.NodeID) {
	k := [4]int64{var1, var2, int64(n1), int64(n2)}
	if w.binSeen[k] {
		return
	}
	w.binSeen[k] = true
	w.arena.Insert(w.RbinW, relation.Int(var1), relation.Int(var2), relation.Int(int64(n1)), relation.Int(int64(n2)))
}

// AddDoc inserts a deduplicated node string value tuple. The string value is
// interned here, at the Stage-1 boundary: everything downstream (witness
// joins, the view caches, the incremental indexes) sees only the symbol.
func (w *CurrentWitness) AddDoc(n xmldoc.NodeID, strVal string) {
	if w.docSeen[n] {
		return
	}
	w.docSeen[n] = true
	w.arena.Insert(w.RdocW, relation.Int(int64(n)), relation.Sym(sym.Intern(strVal)))
}

// AddRoot inserts a deduplicated root binding tuple.
func (w *CurrentWitness) AddRoot(v int64, n xmldoc.NodeID) {
	k := [2]int64{v, int64(n)}
	if w.rtSeen[k] {
		return
	}
	w.rtSeen[k] = true
	w.arena.Insert(w.RrootW, relation.Int(v), relation.Int(int64(n)))
}

// Merge folds the current document's witness relations into the join state,
// implementing Algorithm 2 (the timestamp cross product of the paper is
// realized by stamping each tuple with the document id and recording the
// id→timestamp pair in RdocTS).
func (s *State) Merge(w *CurrentWitness, retainDoc bool) {
	did := relation.Int(int64(w.DocID))
	for _, t := range w.RbinW.Rows {
		s.Rbin.Insert(did, t[0], t[1], t[2], t[3])
		row := s.Rbin.Len() - 1
		nk := binKey{w.DocID, xmldoc.NodeID(t[3].I)}
		s.rbinByNode2[nk] = append(s.rbinByNode2[nk], row)
		vk := [2]int64{t[0].I, t[1].I}
		s.rbinByVars[vk] = append(s.rbinByVars[vk], row)
	}
	for _, t := range w.RdocW.Rows {
		s.Rdoc.Insert(did, t[0], t[1])
		id := t[1].SymID()
		s.rdocBySym[id] = append(s.rdocBySym[id], s.Rdoc.Len()-1)
	}
	for _, t := range w.RrootW.Rows {
		s.Rroot.Insert(did, t[0], t[1])
	}
	s.RdocTS[w.DocID] = w.TS
	s.seq[w.DocID] = s.nextSeq
	s.nextSeq++
	s.docIDs = append(s.docIDs, w.DocID)
	if w.DocID > s.maxDoc {
		s.maxDoc = w.DocID
	}
	if retainDoc {
		s.docs[w.DocID] = w.Doc
	}
}

// HasSym reports whether any previous document produced a value-join node
// with the given (interned) string value — the semi-join of Algorithm 4,
// line 2, served from the incremental index.
func (s *State) HasSym(id sym.ID) bool { return len(s.rdocBySym[id]) > 0 }

// SliceEL computes E_{L,s} = σ_{strVal=s}(Rdoc) ⋈_{node=node2} Rbin — the
// per-string slice of the left view RL (Section 5) — using the incremental
// indexes. The result schema is (docid, var1, var2, node1, node2, strVal).
// Slices are cached across documents (ViewCache), so their tuples are heap
// allocated, never arena carved.
func (s *State) SliceEL(id sym.ID) *relation.Relation {
	out := relation.New("docid", "var1", "var2", "node1", "node2", "strVal")
	sv := relation.Sym(id)
	for _, ri := range s.rdocBySym[id] {
		dt := s.Rdoc.Rows[ri]
		doc := xmldoc.DocID(dt[0].I)
		node := xmldoc.NodeID(dt[1].I)
		for _, bi := range s.rbinByNode2[binKey{doc, node}] {
			bt := s.Rbin.Rows[bi]
			out.Insert(bt[0], bt[1], bt[2], bt[3], bt[4], sv)
		}
	}
	return out
}

// GC removes all state belonging to documents expired in both window
// dimensions (timestamp < cutoffTS and arrival index < cutoffSeq).
// Relations are rebuilt (they are append-only row stores); the incremental
// indexes are rebuilt alongside. The expired document set is returned so
// callers can scope downstream invalidation (view-cache entries) to exactly
// the documents that left.
func (s *State) GC(cutoffTS xmldoc.Timestamp, cutoffSeq int64) map[xmldoc.DocID]bool {
	expired := map[xmldoc.DocID]bool{}
	keptIDs := s.docIDs[:0]
	for _, id := range s.docIDs {
		if s.RdocTS[id] < cutoffTS && s.seq[id] < cutoffSeq {
			expired[id] = true
			delete(s.RdocTS, id)
			delete(s.seq, id)
			delete(s.docs, id)
		} else {
			keptIDs = append(keptIDs, id)
		}
	}
	s.docIDs = keptIDs
	if len(expired) == 0 {
		return expired
	}
	filter := func(r *relation.Relation) *relation.Relation {
		c := r.Schema.Col("docid")
		return r.Select(func(t relation.Tuple) bool {
			return !expired[xmldoc.DocID(t[c].I)]
		})
	}
	s.Rbin = filter(s.Rbin)
	s.Rdoc = filter(s.Rdoc)
	s.Rroot = filter(s.Rroot)
	s.rdocBySym = map[sym.ID][]int{}
	for i, t := range s.Rdoc.Rows {
		s.rdocBySym[t[2].SymID()] = append(s.rdocBySym[t[2].SymID()], i)
	}
	s.rbinByNode2 = map[binKey][]int{}
	s.rbinByVars = map[[2]int64][]int{}
	for i, t := range s.Rbin.Rows {
		k := binKey{xmldoc.DocID(t[0].I), xmldoc.NodeID(t[4].I)}
		s.rbinByNode2[k] = append(s.rbinByNode2[k], i)
		vk := [2]int64{t[1].I, t[2].I}
		s.rbinByVars[vk] = append(s.rbinByVars[vk], i)
	}
	return expired
}

// gcBatchMin is the expired-prefix length beyond which a GC pays for the
// state rebuild regardless of the live fraction.
const gcBatchMin = 32

// gcFullScanEvery bounds trigger starvation under out-of-order timestamps:
// the cheap per-publish check scans only the expired prefix of docIDs, so a
// single early document with a far-future timestamp (clock skew) would
// otherwise hide an unbounded number of expired successors from the trigger
// forever. Every gcFullScanEvery consecutive negative prefix verdicts, the
// check pays one full scan — amortized O(len/gcFullScanEvery) per publish —
// so non-prefix expiry is still collected (GC itself already removes any
// expired document, prefix or not).
const gcFullScanEvery = 64

// shouldGC reports whether enough documents have expired to make rebuilding
// the join state worthwhile. A document is expired when its timestamp is
// below cutoffTS AND its arrival index is below cutoffSeq (pass the maximum
// value for a dimension with no active windows). Documents normally arrive
// in timestamp order, so expired documents form a prefix of docIDs: the
// scan stops at the first live document (and at gcBatchMin, when the
// verdict is already decided), so this per-publish check is
// O(min(expired, gcBatchMin)) — except for the periodic full scan that
// guards against out-of-order arrivals (gcFullScanEvery).
func (s *State) shouldGC(cutoffTS xmldoc.Timestamp, cutoffSeq int64) bool {
	expired := 0
	for _, id := range s.docIDs {
		if s.RdocTS[id] >= cutoffTS || s.seq[id] >= cutoffSeq {
			break
		}
		expired++
		if expired >= gcBatchMin {
			s.gcStale = 0
			return true
		}
	}
	if expired > 0 && 2*expired >= len(s.docIDs) {
		s.gcStale = 0
		return true
	}
	if s.gcStale++; s.gcStale < gcFullScanEvery {
		return false
	}
	s.gcStale = 0
	total := 0
	for _, id := range s.docIDs {
		if s.RdocTS[id] < cutoffTS && s.seq[id] < cutoffSeq {
			total++
			if total >= gcBatchMin {
				return true
			}
		}
	}
	return total > 0 && 2*total >= len(s.docIDs)
}

// Doc returns a retained document, or nil.
func (s *State) Doc(id xmldoc.DocID) *xmldoc.Document { return s.docs[id] }

// NumDocs returns the number of documents currently in the join state.
func (s *State) NumDocs() int { return len(s.docIDs) }
