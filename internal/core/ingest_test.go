package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// ingestFixture generates a multi-query flat workload and a document stream
// with GC-active windows for the continuous-ingest tests.
func ingestFixture(seed int64, nq, items int) ([]*xscl.Query, []*xmldoc.Document) {
	rng := rand.New(rand.NewSource(seed))
	leafNames := []string{"a", "b", "c"}
	var queries []*xscl.Query
	for i := 0; i < nq; i++ {
		op := []string{"FOLLOWED BY", "JOIN"}[rng.Intn(2)]
		queries = append(queries, randomFlatQuery(rng, leafNames, 2, int64(5+rng.Intn(20)), op))
	}
	var docs []*xmldoc.Document
	ts := xmldoc.Timestamp(0)
	for i := 0; i < items; i++ {
		ts += xmldoc.Timestamp(rng.Intn(4))
		docs = append(docs, randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 2))
	}
	return queries, docs
}

// TestIngestMatchesProcess submits a stream through continuous ingest
// pipelines of every Depth × Workers combination and requires per-document
// match output byte-identical to consecutive Process calls on a fresh
// processor.
func TestIngestMatchesProcess(t *testing.T) {
	queries, docs := ingestFixture(101, 8, 120)
	for _, viewMat := range []bool{false, true} {
		ref := NewProcessor(Config{ViewMaterialization: viewMat})
		for _, q := range queries {
			ref.MustRegister(q)
		}
		var want []string
		for _, d := range docs {
			want = append(want, renderMatches(ref.Process("S", d)))
		}
		for _, cfg := range []IngestConfig{
			{Depth: 1, Workers: 1},
			{Depth: 2, Workers: 2},
			{Depth: 8, Workers: 4},
			{Depth: 0}, // clamps to 1
		} {
			p := NewProcessor(Config{ViewMaterialization: viewMat})
			for _, q := range queries {
				p.MustRegister(q)
			}
			ing := NewIngest(p, cfg)
			got := make([]string, len(docs))
			for i, d := range docs {
				i := i
				if err := ing.Submit("S", d, func(ms []Match) { got[i] = renderMatches(ms) }); err != nil {
					t.Fatal(err)
				}
			}
			ing.Close()
			for i := range docs {
				if got[i] != want[i] {
					t.Fatalf("viewmat=%v depth=%d workers=%d: doc %d diverges:\nserial:\n%singest:\n%s",
						viewMat, cfg.Depth, cfg.Workers, i+1, want[i], got[i])
				}
			}
		}
	}
}

// TestIngestConcurrentSubmitDeterminism is the continuous-ingest acceptance
// test: many goroutines submit concurrently, the test records the admission
// order (its mutex wraps each Submit, so the pipeline's internal admission
// order equals the recorded order), and per-document output must be
// byte-identical to serial Process calls in that admission order — for any
// interleaving the scheduler produces.
func TestIngestConcurrentSubmitDeterminism(t *testing.T) {
	queries, docs := ingestFixture(202, 10, 150)
	for _, workers := range []int{1, 4} {
		p := NewProcessor(Config{ViewMaterialization: true, Workers: workers})
		for _, q := range queries {
			p.MustRegister(q)
		}
		ing := NewIngest(p, IngestConfig{Depth: 4})
		var mu sync.Mutex
		order := make([]*xmldoc.Document, 0, len(docs))
		got := map[xmldoc.DocID]string{}
		const publishers = 5
		var wg sync.WaitGroup
		for g := 0; g < publishers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(docs); i += publishers {
					d := docs[i]
					mu.Lock()
					err := ing.Submit("S", d, func(ms []Match) { got[d.ID] = renderMatches(ms) })
					order = append(order, d)
					mu.Unlock()
					if err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		ing.Close()

		ref := NewProcessor(Config{ViewMaterialization: true})
		for _, q := range queries {
			ref.MustRegister(q)
		}
		for i, d := range order {
			want := renderMatches(ref.Process("S", d))
			if got[d.ID] != want {
				t.Fatalf("workers=%d: admission position %d (doc %d) diverges:\nserial:\n%singest:\n%s",
					workers, i, d.ID, want, got[d.ID])
			}
		}
	}
}

// TestIngestBarrier checks the registration barrier: the function runs
// after every prior submission has been consumed, no later document is
// processed before it, and a query registered at the barrier behaves
// exactly as a serial mid-stream Register.
func TestIngestBarrier(t *testing.T) {
	queries, docs := ingestFixture(303, 6, 80)
	late := xscl.MustParse(joinQuery)

	ref := NewProcessor(Config{ViewMaterialization: true})
	for _, q := range queries[:3] {
		ref.MustRegister(q)
	}
	var want []string
	for i, d := range docs {
		if i == len(docs)/2 {
			ref.MustRegister(late)
		}
		want = append(want, renderMatches(ref.Process("S", d)))
	}

	p := NewProcessor(Config{ViewMaterialization: true})
	for _, q := range queries[:3] {
		p.MustRegister(q)
	}
	ing := NewIngest(p, IngestConfig{Depth: 4})
	got := make([]string, len(docs))
	for i, d := range docs {
		if i == len(docs)/2 {
			var seen int
			if err := ing.Barrier(func() {
				seen = int(p.Stats().Documents)
				p.MustRegister(late)
			}); err != nil {
				t.Fatal(err)
			}
			if seen != i {
				t.Fatalf("barrier ran after %d consumed documents, want %d", seen, i)
			}
		}
		i := i
		if err := ing.Submit("S", d, func(ms []Match) { got[i] = renderMatches(ms) }); err != nil {
			t.Fatal(err)
		}
	}
	ing.Close()
	for i := range docs {
		if got[i] != want[i] {
			t.Fatalf("doc %d diverges after mid-stream barrier registration:\nserial:\n%singest:\n%s",
				i+1, want[i], got[i])
		}
	}
}

// TestIngestCloseSemantics checks that Close drains and delivers every
// admitted document, that closed pipelines reject further work with
// ErrIngestClosed, and that Close is idempotent.
func TestIngestCloseSemantics(t *testing.T) {
	p := NewProcessor(Config{ViewMaterialization: true})
	p.MustRegister(xscl.MustParse(joinQuery))
	ing := NewIngest(p, IngestConfig{Depth: 2})
	d1, d2 := joiningDocs()
	var delivered atomic.Int64
	var lastLen atomic.Int64
	for _, d := range []*xmldoc.Document{d1, d2} {
		if err := ing.Submit("S", d, func(ms []Match) {
			delivered.Add(1)
			lastLen.Store(int64(len(ms)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	ing.Close()
	if delivered.Load() != 2 {
		t.Fatalf("Close delivered %d of 2 admitted documents", delivered.Load())
	}
	if lastLen.Load() != 1 {
		t.Fatalf("second document delivered %d matches, want 1", lastLen.Load())
	}
	if err := ing.Submit("S", d1, nil); err != ErrIngestClosed {
		t.Fatalf("Submit after Close: %v, want ErrIngestClosed", err)
	}
	if err := ing.Barrier(func() {}); err != ErrIngestClosed {
		t.Fatalf("Barrier after Close: %v, want ErrIngestClosed", err)
	}
	if err := ing.Flush(); err != ErrIngestClosed {
		t.Fatalf("Flush after Close: %v, want ErrIngestClosed", err)
	}
	ing.Close() // idempotent
	ing.Wait()  // returns immediately once drained
}

// TestIngestBackpressure checks the admission bound: with the coordinator
// wedged in a delivery, at most Depth+1 submissions are admitted and the
// next one blocks until a slot frees.
func TestIngestBackpressure(t *testing.T) {
	const depth = 3
	p := NewProcessor(Config{})
	p.MustRegister(xscl.MustParse(joinQuery))
	ing := NewIngest(p, IngestConfig{Depth: depth})
	release := make(chan struct{})
	var admitted atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < depth+5; i++ {
			b := xmldoc.NewBuilder(xmldoc.DocID(i+1), xmldoc.Timestamp(i+1), "a")
			b.Element(0, "x", "k")
			if err := ing.Submit("S", b.Build(), func([]Match) { <-release }); err != nil {
				t.Error(err)
				return
			}
			admitted.Add(1)
		}
	}()
	// The first delivery wedges the coordinator; admission must plateau at
	// depth+1 (depth buffered plus the one in the coordinator's hands).
	deadline := time.Now().Add(2 * time.Second)
	for admitted.Load() < depth+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := admitted.Load(); got != depth+1 {
		t.Fatalf("admitted %d documents against a wedged pipeline, want %d", got, depth+1)
	}
	time.Sleep(20 * time.Millisecond)
	if got := admitted.Load(); got != depth+1 {
		t.Fatalf("admission advanced to %d while wedged, want %d", got, depth+1)
	}
	close(release)
	wg.Wait()
	ing.Close()
}
