// Package core implements the paper's primary contribution: Massively
// Multi-Query Join Processing (Sections 4 and 5).
//
// Queries are partitioned into equivalence classes by query template — the
// isomorphism class of the graph minor of the query's join graph — and one
// relational conjunctive query per template evaluates every member query at
// once against the witness relations produced by Stage 1 (the shared XPath
// evaluator). Section 5's view materialization (Rvj/RL/RR and the per-string
// view cache) is implemented as an optional processor mode.
package core

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
	"repro/internal/xscl"
)

// Side distinguishes the two query blocks of a join query.
type Side uint8

const (
	// Left is the first (earlier, for FOLLOWED BY) block.
	Left Side = iota
	// Right is the second block.
	Right
)

// JGNode is one node of a join graph side tree. It references the pattern
// node it was derived from, so that reduced template nodes can be traced
// back to Stage-1 bindings.
type JGNode struct {
	PatternNode *xpath.PatternNode
	Canonical   string // canonical variable definition of the node
	Parent      int    // index within the side, -1 for the root
	Children    []int
}

// SideGraph is the tree of one side of a join graph.
type SideGraph struct {
	Nodes []JGNode // Nodes[0] is the root
}

// VJEdge is a value-join edge between a left node and a right node
// (value-join normal form guarantees edges cross sides).
type VJEdge struct {
	L, R int // node indexes into the respective sides
}

// JoinGraph is the paper's join graph (Figure 4): two variable tree
// patterns plus value-join edges.
type JoinGraph struct {
	LeftSide, RightSide SideGraph
	VJ                  []VJEdge
}

// BuildJoinGraph constructs the join graph of a two-block query: each side
// tree mirrors the block's full tree pattern, and each equality predicate
// contributes one value-join edge. Duplicate predicates are dropped.
func BuildJoinGraph(q *xscl.Query) (*JoinGraph, error) {
	if q.Op == xscl.OpNone {
		return nil, fmt.Errorf("core: single-block query has no join graph")
	}
	g := &JoinGraph{}
	lIndex := buildSide(&g.LeftSide, q.Left)
	rIndex := buildSide(&g.RightSide, q.Right)

	seen := map[[2]int]bool{}
	for _, p := range q.Preds {
		ln := q.Left.VarNode(p.LeftVar)
		rn := q.Right.VarNode(p.RightVar)
		if ln == nil || rn == nil {
			return nil, fmt.Errorf("core: predicate %s=%s references unbound variable", p.LeftVar, p.RightVar)
		}
		e := VJEdge{L: lIndex[ln.Index], R: rIndex[rn.Index]}
		if seen[[2]int{e.L, e.R}] {
			continue
		}
		seen[[2]int{e.L, e.R}] = true
		g.VJ = append(g.VJ, e)
	}
	if len(g.VJ) == 0 {
		return nil, fmt.Errorf("core: join query has no value joins")
	}
	return g, nil
}

// buildSide copies the pattern tree into the side graph and returns the map
// from pattern node index to side node index.
func buildSide(s *SideGraph, p *xpath.Pattern) []int {
	idx := make([]int, len(p.Nodes))
	for i, pn := range p.Nodes {
		parent := -1
		if pn.ParentIndex >= 0 {
			parent = idx[pn.ParentIndex]
		}
		idx[i] = len(s.Nodes)
		s.Nodes = append(s.Nodes, JGNode{
			PatternNode: pn,
			Canonical:   p.CanonicalVar(pn),
			Parent:      parent,
		})
		if parent >= 0 {
			s.Nodes[parent].Children = append(s.Nodes[parent].Children, idx[i])
		}
	}
	return idx
}

// Minor applies the reduction rules of Section 4.2 to produce the join
// graph minor from which the query template is derived:
//
//  1. recursively remove leaf nodes that participate in no value join;
//  2. remove nodes outside the subtree rooted at the least common ancestor
//     of the remaining (value-join) leaves;
//  3. splice out intermediate nodes with a single child.
//
// When a side reduces to a single node (one value-join leaf, whose own LCA
// is itself), the reduced graph has no structural edge on that side from
// which the Join Processor could recover the leaf's variable identity; such
// sides are served by the unary root-binding relations Rroot/RrootW instead
// (see state.go and DESIGN.md).
func (g *JoinGraph) Minor() *JoinGraph {
	out := &JoinGraph{}
	lmap := reduceSide(&g.LeftSide, vjNodes(g.VJ, Left), &out.LeftSide)
	rmap := reduceSide(&g.RightSide, vjNodes(g.VJ, Right), &out.RightSide)
	for _, e := range g.VJ {
		out.VJ = append(out.VJ, VJEdge{L: lmap[e.L], R: rmap[e.R]})
	}
	return out
}

func vjNodes(vj []VJEdge, side Side) map[int]bool {
	out := map[int]bool{}
	for _, e := range vj {
		if side == Left {
			out[e.L] = true
		} else {
			out[e.R] = true
		}
	}
	return out
}

// reduceSide computes the reduced side tree and returns the map from old
// node index to new node index (only for retained nodes).
func reduceSide(s *SideGraph, vj map[int]bool, out *SideGraph) map[int]int {
	n := len(s.Nodes)
	// keep[i]: node i's subtree contains a value-join node.
	keep := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		keep[i] = vj[i]
		for _, c := range s.Nodes[i].Children {
			keep[i] = keep[i] || keep[c]
		}
	}
	// Rule 2: the new root is the LCA of all vj nodes: walk down from the
	// old root while exactly one child subtree contains vj nodes and the
	// current node is not itself a vj node.
	root := 0
	for !vj[root] {
		next := -1
		cnt := 0
		for _, c := range s.Nodes[root].Children {
			if keep[c] {
				next = c
				cnt++
			}
		}
		if cnt != 1 {
			break
		}
		root = next
	}

	// Build the reduced tree from root downward: children are the nearest
	// retained descendants. A node is retained if it is a vj node, or it
	// has ≥2 children subtrees containing vj nodes (it is an LCA), or it
	// is the root.
	retained := func(i int) bool {
		if i == root || vj[i] {
			return true
		}
		cnt := 0
		for _, c := range s.Nodes[i].Children {
			if keep[c] {
				cnt++
			}
		}
		return cnt >= 2
	}

	m := map[int]int{}
	var build func(old, newParent int)
	build = func(old, newParent int) {
		var self int
		if retained(old) {
			self = len(out.Nodes)
			m[old] = self
			out.Nodes = append(out.Nodes, JGNode{
				PatternNode: s.Nodes[old].PatternNode,
				Canonical:   s.Nodes[old].Canonical,
				Parent:      newParent,
			})
			if newParent >= 0 {
				out.Nodes[newParent].Children = append(out.Nodes[newParent].Children, self)
			}
		} else {
			self = newParent // splice: children attach to the nearest retained ancestor
		}
		for _, c := range s.Nodes[old].Children {
			if keep[c] {
				build(c, self)
			}
		}
	}
	build(root, -1)
	return m
}

// StructEdges returns the parent-child pairs of the side tree, as pairs of
// node indexes.
func (s *SideGraph) StructEdges() [][2]int {
	var out [][2]int
	for i := range s.Nodes {
		if p := s.Nodes[i].Parent; p >= 0 {
			out = append(out, [2]int{p, i})
		}
	}
	return out
}

// String renders the join graph for debugging and the xsclc inspector.
func (g *JoinGraph) String() string {
	var sb strings.Builder
	writeSide := func(label string, s *SideGraph) {
		fmt.Fprintf(&sb, "%s:\n", label)
		for i, n := range s.Nodes {
			indent := strings.Repeat("  ", depthOf(s, i))
			v := n.PatternNode.Var
			if v == "" {
				v = "(unbound)"
			}
			fmt.Fprintf(&sb, "  %s[%d] %s  canon=%s\n", indent, i, v, n.Canonical)
		}
	}
	writeSide("LHS", &g.LeftSide)
	writeSide("RHS", &g.RightSide)
	sb.WriteString("value joins:\n")
	for _, e := range g.VJ {
		fmt.Fprintf(&sb, "  L[%d] = R[%d]\n", e.L, e.R)
	}
	return sb.String()
}

func depthOf(s *SideGraph, i int) int {
	d := 0
	for p := s.Nodes[i].Parent; p >= 0; p = s.Nodes[p].Parent {
		d++
	}
	return d
}
