package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/workload"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// TestPlanChooserAdapts verifies the physical-plan cost model: the
// two-fixed-document technical benchmark (every stored leaf matches, huge
// witness fan-out) must run RT-driven, while a stream whose documents match
// few stored values must run witness-driven.
func TestPlanChooserAdapts(t *testing.T) {
	// Technical benchmark: two-level workload, 2000 queries, d1 then d2.
	c := workload.DefaultTwoLevel()
	rng := rand.New(rand.NewSource(1))
	p := NewProcessor(Config{})
	for _, q := range c.Queries(rng, 2000) {
		p.MustRegister(q)
	}
	d1, d2 := c.Documents()
	p.Process("S", d1)
	p.Process("S", d2)
	s := p.Stats()
	if s.RTPlans == 0 {
		t.Errorf("technical benchmark never chose the RT-driven plan (witness=%d rt=%d)", s.WitnessPlans, s.RTPlans)
	}

	// Stream: RSS items with sparse value collisions.
	rssc := workload.RSS{Channels: 400, Items: 200, TitlePool: 10000, DescPool: 10000, Theta: 0.8}
	rng2 := rand.New(rand.NewSource(2))
	ps := NewProcessor(Config{ViewMaterialization: true})
	for _, q := range rssc.Queries(rng2, 2000) {
		ps.MustRegister(q)
	}
	for _, d := range rssc.Stream(rng2, 200) {
		ps.Process("S", d)
	}
	ss := ps.Stats()
	if ss.WitnessPlans == 0 {
		t.Errorf("stream workload never chose the witness-driven plan (witness=%d rt=%d)", ss.WitnessPlans, ss.RTPlans)
	}
	if ss.RTPlans > ss.WitnessPlans {
		t.Errorf("stream workload mostly RT-driven: witness=%d rt=%d", ss.WitnessPlans, ss.RTPlans)
	}
}

// twoLeafQuery builds a FOLLOWED BY query joining the given leaf on both
// sides; all such queries share one template, and queries on different
// leaves occupy different variable-vector groups within it.
func twoLeafQuery(leaf string, window int64) *xscl.Query {
	return xscl.MustParse(fmt.Sprintf(
		"S//r->v0[./%s->v1] FOLLOWED BY{v1=w1, %d} S//r->w0[./%s->w1]",
		leaf, window, leaf))
}

// TestVectorGroupChurn exercises vector-group add/remove under
// subscription churn: instances sharing a variable vector collapse onto one
// group, a group whose last instance leaves is dropped, the template itself
// is reclaimed with its last query — and the adaptive planner's statistics
// record survives the reclamation and is resumed by a re-registration of
// the same template shape.
func TestVectorGroupChurn(t *testing.T) {
	p := NewProcessor(Config{})
	qa1 := p.MustRegister(twoLeafQuery("l1", 10))
	qa2 := p.MustRegister(twoLeafQuery("l1", 20))
	qb := p.MustRegister(twoLeafQuery("l2", 10))

	if n := len(p.templateList); n != 1 {
		t.Fatalf("queries on one shape made %d templates", n)
	}
	tmpl := p.templateList[0]
	ps := tmpl.plan
	if ps == nil {
		t.Fatal("template has no planner record")
	}
	if n := len(tmpl.vecList); n != 2 {
		t.Fatalf("expected 2 vector groups (l1 shared, l2), got %d", n)
	}
	var shared *vecGroup
	for _, g := range tmpl.vecList {
		if len(g.insts) == 2 {
			shared = g
		}
	}
	if shared == nil {
		t.Fatal("no vector group holds both l1 instances")
	}
	if !reflect.DeepEqual(shared.wls, []int64{10, 20}) {
		t.Fatalf("shared group windows = %v, want [10 20]", shared.wls)
	}

	// Removing one of two sharers shrinks the group but keeps it.
	p.MustUnregister(qa1)
	if n := len(tmpl.vecList); n != 2 {
		t.Fatalf("after partial removal: %d groups, want 2", n)
	}
	if n := len(shared.insts); n != 1 {
		t.Fatalf("shared group holds %d instances, want 1", n)
	}
	// Removing the last sharer drops the group entirely.
	p.MustUnregister(qa2)
	if n := len(tmpl.vecList); n != 1 {
		t.Fatalf("after draining l1: %d groups, want 1", n)
	}
	// Removing the last query reclaims the template...
	p.MustUnregister(qb)
	if n := len(p.templateList); n != 0 {
		t.Fatalf("template not reclaimed: %d live", n)
	}
	// ...but the planner record survives: a re-registration of the same
	// shape resumes the same statistics.
	p.MustRegister(twoLeafQuery("l3", 10))
	if n := len(p.templateList); n != 1 {
		t.Fatalf("re-registration made %d templates", n)
	}
	if p.templateList[0].plan != ps {
		t.Error("re-registered template did not resume its planner record")
	}
	if n := len(p.templateList[0].vecList); n != 1 {
		t.Fatalf("re-registered template has %d groups, want 1", n)
	}
}

// TestVectorGroupChurnMatches verifies the RT-driven plan evaluates exactly
// the surviving vector groups after churn: a churned processor forced onto
// the RT-driven plan produces the same matches as a fresh processor holding
// only the surviving queries.
func TestVectorGroupChurnMatches(t *testing.T) {
	docs := func() []*xmldoc.Document {
		var out []*xmldoc.Document
		for i := 1; i <= 3; i++ {
			b := xmldoc.NewBuilder(xmldoc.DocID(i), xmldoc.Timestamp(i), "r")
			b.Element(0, "l1", "x")
			b.Element(0, "l2", "y")
			b.Element(0, "l3", "x")
			out = append(out, b.Build())
		}
		return out
	}

	churned := NewProcessor(Config{Plan: PlanRTDriven})
	dead1 := churned.MustRegister(twoLeafQuery("l1", 10))
	churned.MustRegister(twoLeafQuery("l2", 10))
	dead2 := churned.MustRegister(twoLeafQuery("l3", 10))
	churned.MustRegister(twoLeafQuery("l1", 20))
	churned.MustUnregister(dead1)
	churned.MustUnregister(dead2)

	fresh := NewProcessor(Config{Plan: PlanRTDriven})
	fresh.MustRegister(twoLeafQuery("l2", 10))
	fresh.MustRegister(twoLeafQuery("l1", 20))

	for i, d := range docs() {
		got := matchSet(churned.Process("S", d))
		// Query ids differ between the two processors (1→0, 3→1);
		// remap the fresh ids onto the churned ones.
		want := map[matchKey]bool{}
		for k := range matchSet(fresh.Process("S", d)) {
			remap := map[int64]int64{0: 1, 1: 3}
			want[matchKey{remap[k.q], k.ldoc, k.rdoc}] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %d: churned %v vs fresh %v", i+1, keys(got), keys(want))
		}
	}
}

// TestCalibrationConvergence drives the cost model directly: EWMAs converge
// to a shifted per-unit cost, and once observations contradict the static
// prior, the calibrated decision overrides it in both directions.
func TestCalibrationConvergence(t *testing.T) {
	var e ewma
	for i := 0; i < 5; i++ {
		e.observe(10)
	}
	for i := 0; i < 20; i++ {
		e.observe(1)
	}
	if e.value() < 1 || e.value() > 1.5 {
		t.Errorf("EWMA after shift = %v, want ≈1", e.value())
	}

	p := NewProcessor(Config{})
	p.MustRegister(twoLeafQuery("l1", 10))
	tmpl := p.templateList[0]
	perDoc := map[xmldoc.DocID]int{1: 2} // tiny fan-out: prior says witness

	if d := p.choosePlan(tmpl, perDoc); d.rtDriven {
		t.Fatal("uncalibrated chooser overrode the witness-leaning prior")
	}
	// Observed costs contradict the prior: witness wall time per unit is
	// vastly larger than RT wall time per unit.
	for i := 0; i < 8; i++ {
		tmpl.plan.witnessCost.observe(1e6, 1)
		tmpl.plan.rtCost.observe(1, 1)
	}
	if d := p.choosePlan(tmpl, perDoc); !d.rtDriven {
		t.Fatal("calibrated chooser ignored observed witness cost")
	}
	// And back: the EWMAs track a drift in the other direction.
	for i := 0; i < 40; i++ {
		tmpl.plan.witnessCost.observe(1, 1)
		tmpl.plan.rtCost.observe(1e6, 1)
	}
	if d := p.choosePlan(tmpl, perDoc); d.rtDriven {
		t.Fatal("calibrated chooser did not converge back to the witness plan")
	}
	// The slope is a ratio of averages (regression through the origin):
	// runs observed at large unit counts must not inflate the per-unit
	// prediction the way averaging small-unit ratios would.
	var c planCost
	c.observe(1000, 10) // 100 ns/unit at the observed scale
	c.observe(1200, 12)
	if got := c.perUnit(); got < 95 || got > 105 {
		t.Fatalf("perUnit = %v, want ≈100", got)
	}
	// Forced plans bypass calibration entirely.
	p.cfg.Plan = PlanRTDriven
	for i := 0; i < 8; i++ {
		tmpl.plan.rtCost.observe(1e9, 1)
	}
	if d := p.choosePlan(tmpl, perDoc); !d.rtDriven {
		t.Fatal("forced PlanRTDriven not honored")
	}
}

// TestExplorationSamplingDeterminism pins the exploration sampler: for a
// fixed PlanExploreSeed the per-template explore/skip sequence is
// reproducible across processor instances, and different seeds draw
// different sequences.
func TestExplorationSamplingDeterminism(t *testing.T) {
	sequence := func(seed int64) []bool {
		p := NewProcessor(Config{PlanExploreEvery: 2, PlanExploreSeed: seed})
		p.MustRegister(twoLeafQuery("l1", 10))
		tmpl := p.templateList[0]
		perDoc := map[xmldoc.DocID]int{1: 1}
		out := make([]bool, 256)
		for i := range out {
			out[i] = p.choosePlan(tmpl, perDoc).explore
		}
		return out
	}
	a, b := sequence(7), sequence(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different exploration sequences")
	}
	if reflect.DeepEqual(a, sequence(8)) {
		t.Fatal("different seeds produced identical 256-draw exploration sequences")
	}
	explored := 0
	for _, e := range a {
		if e {
			explored++
		}
	}
	if explored == 0 || explored == len(a) {
		t.Fatalf("exploration rate degenerate: %d/%d", explored, len(a))
	}

	// Exploration is a PlanAuto policy: forced plans never sample.
	p := NewProcessor(Config{Plan: PlanWitness, PlanExploreEvery: 2, PlanExploreSeed: 7})
	p.MustRegister(twoLeafQuery("l1", 10))
	for i := 0; i < 64; i++ {
		if p.choosePlan(p.templateList[0], map[xmldoc.DocID]int{1: 1}).explore {
			t.Fatal("forced plan requested exploration")
		}
	}
}
