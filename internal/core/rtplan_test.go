package core

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestPlanChooserAdapts verifies the physical-plan cost model: the
// two-fixed-document technical benchmark (every stored leaf matches, huge
// witness fan-out) must run RT-driven, while a stream whose documents match
// few stored values must run witness-driven.
func TestPlanChooserAdapts(t *testing.T) {
	// Technical benchmark: two-level workload, 2000 queries, d1 then d2.
	c := workload.DefaultTwoLevel()
	rng := rand.New(rand.NewSource(1))
	p := NewProcessor(Config{})
	for _, q := range c.Queries(rng, 2000) {
		p.MustRegister(q)
	}
	d1, d2 := c.Documents()
	p.Process("S", d1)
	p.Process("S", d2)
	s := p.Stats()
	if s.RTPlans == 0 {
		t.Errorf("technical benchmark never chose the RT-driven plan (witness=%d rt=%d)", s.WitnessPlans, s.RTPlans)
	}

	// Stream: RSS items with sparse value collisions.
	rssc := workload.RSS{Channels: 400, Items: 200, TitlePool: 10000, DescPool: 10000, Theta: 0.8}
	rng2 := rand.New(rand.NewSource(2))
	ps := NewProcessor(Config{ViewMaterialization: true})
	for _, q := range rssc.Queries(rng2, 2000) {
		ps.MustRegister(q)
	}
	for _, d := range rssc.Stream(rng2, 200) {
		ps.Process("S", d)
	}
	ss := ps.Stats()
	if ss.WitnessPlans == 0 {
		t.Errorf("stream workload never chose the witness-driven plan (witness=%d rt=%d)", ss.WitnessPlans, ss.RTPlans)
	}
	if ss.RTPlans > ss.WitnessPlans {
		t.Errorf("stream workload mostly RT-driven: witness=%d rt=%d", ss.WitnessPlans, ss.RTPlans)
	}
}
