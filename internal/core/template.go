package core

import (
	"fmt"
	"sort"
	"strings"
)

// TemplateID identifies a query template within a Processor.
type TemplateID int32

// Template is one equivalence class of queries: the canonical form of a
// reduced join graph. Node positions 0..N-1 are canonical; the structure
// below is expressed entirely in positions, so every member query maps onto
// it by construction.
type Template struct {
	ID  TemplateID
	Sig string // canonical signature (graph isomorphism invariant)

	N      int    // total number of nodes
	SideOf []Side // per position
	Parent []int  // per position; -1 for the two side roots
	VJ     [][2]int

	// LeftRoot and RightRoot are the positions of the side roots.
	LeftRoot, RightRoot int
	// SingleLeft/SingleRight report a side consisting of a single node
	// (the value join is on the side root itself); such sides use the
	// unary root-binding relation instead of a structural edge.
	SingleLeft, SingleRight bool

	// vectors groups the template's RT rows by distinct variable vector,
	// the unit of work of the RT-driven plan (rtplan.go).
	vectors map[string]*vecGroup
	vecList []*vecGroup

	// plan is the template's adaptive-planner record (planner.go). It is
	// owned by the processor's planMemo keyed by Sig and therefore
	// survives template reclamation: a re-registered template resumes
	// with its calibrated cost model.
	plan *planStats

	// refs counts the live query instances registered on this template;
	// at zero the processor reclaims the template and everything it owns
	// (processor.go Unregister).
	refs int
}

// NewTemplateFromCanonical builds the template structure from a reduced join
// graph and its canonical order (as returned by Canonicalize).
func NewTemplateFromCanonical(sig string, red *JoinGraph, order []int) *Template {
	nl := len(red.LeftSide.Nodes)
	n := nl + len(red.RightSide.Nodes)
	pos := make([]int, n) // flattened node index -> canonical position
	for p, node := range order {
		pos[node] = p
	}
	t := &Template{Sig: sig, N: n, SideOf: make([]Side, n), Parent: make([]int, n)}
	for i, nd := range red.LeftSide.Nodes {
		p := pos[i]
		t.SideOf[p] = Left
		if nd.Parent >= 0 {
			t.Parent[p] = pos[nd.Parent]
		} else {
			t.Parent[p] = -1
			t.LeftRoot = p
		}
	}
	for i, nd := range red.RightSide.Nodes {
		p := pos[nl+i]
		t.SideOf[p] = Right
		if nd.Parent >= 0 {
			t.Parent[p] = pos[nl+nd.Parent]
		} else {
			t.Parent[p] = -1
			t.RightRoot = p
		}
	}
	for _, e := range red.VJ {
		t.VJ = append(t.VJ, [2]int{pos[e.L], pos[nl+e.R]})
	}
	sort.Slice(t.VJ, func(i, j int) bool {
		if t.VJ[i][0] != t.VJ[j][0] {
			return t.VJ[i][0] < t.VJ[j][0]
		}
		return t.VJ[i][1] < t.VJ[j][1]
	})
	t.SingleLeft = nl == 1
	t.SingleRight = n-nl == 1
	return t
}

// StructEdges returns the template's structural edges as (parent, child)
// position pairs, split by side.
func (t *Template) StructEdges(side Side) [][2]int {
	var out [][2]int
	for p := 0; p < t.N; p++ {
		if t.SideOf[p] == side && t.Parent[p] >= 0 {
			out = append(out, [2]int{t.Parent[p], p})
		}
	}
	return out
}

// Datalog renders the template's conjunctive query CQ_T (Section 4.4) in
// Datalog, for the xsclc inspector and documentation.
func (t *Template) Datalog() string {
	var body []string
	for k, e := range t.VJ {
		body = append(body,
			fmt.Sprintf("Rdoc(docid, n%d, s%d)", e[0], k),
			fmt.Sprintf("RdocW(n%d, s%d)", e[1], k))
	}
	for _, e := range t.StructEdges(Left) {
		body = append(body, fmt.Sprintf("Rbin(docid, v%d, v%d, n%d, n%d)", e[0], e[1], e[0], e[1]))
	}
	for _, e := range t.StructEdges(Right) {
		body = append(body, fmt.Sprintf("RbinW(v%d, v%d, n%d, n%d)", e[0], e[1], e[0], e[1]))
	}
	if t.SingleLeft {
		body = append(body, fmt.Sprintf("Rroot(docid, v%d, n%d)", t.LeftRoot, t.LeftRoot))
	}
	if t.SingleRight {
		body = append(body, fmt.Sprintf("RrootW(v%d, n%d)", t.RightRoot, t.RightRoot))
	}
	vars := make([]string, t.N)
	nodes := make([]string, t.N)
	for p := 0; p < t.N; p++ {
		vars[p] = fmt.Sprintf("v%d", p)
		nodes[p] = fmt.Sprintf("n%d", p)
	}
	body = append(body, fmt.Sprintf("RT(qid, %s, wl)", strings.Join(vars, ", ")))
	head := fmt.Sprintf("RoutT(qid, docid, %s, wl)", strings.Join(nodes, ", "))
	return head + " :- " + strings.Join(body, ", ") + "."
}

// ExtractTemplate runs the full pipeline join graph -> minor -> canonical
// form and returns the reduced graph, the signature and the canonical order.
// It is the template-identity function used at query registration.
func ExtractTemplate(g *JoinGraph) (red *JoinGraph, sig string, order []int) {
	red = g.Minor()
	sig, order = Canonicalize(red)
	return red, sig, order
}

// RawEncode serializes a reduced join graph exactly as laid out (no
// canonicalization): side sizes, parent vectors and value-join edges.
// Raw-equal graphs are trivially isomorphic with the identity mapping, so
// canonicalization results can be memoized on this key — essential when
// registering hundreds of thousands of generated queries, most of which
// repeat a small number of raw shapes.
func RawEncode(g *JoinGraph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "L%d:", len(g.LeftSide.Nodes))
	for _, n := range g.LeftSide.Nodes {
		fmt.Fprintf(&sb, "%d,", n.Parent)
	}
	fmt.Fprintf(&sb, "R%d:", len(g.RightSide.Nodes))
	for _, n := range g.RightSide.Nodes {
		fmt.Fprintf(&sb, "%d,", n.Parent)
	}
	sb.WriteString("VJ:")
	edges := append([]VJEdge(nil), g.VJ...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].L != edges[j].L {
			return edges[i].L < edges[j].L
		}
		return edges[i].R < edges[j].R
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "%d-%d,", e.L, e.R)
	}
	return sb.String()
}
