package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// assertFreshProcessor checks the lifecycle invariant: a processor whose
// queries have all been unregistered is observationally identical to a fresh
// one — templates, queries, patterns, shard relations, indexes, view-cache
// entries, join state and stats all reclaimed.
func assertFreshProcessor(t *testing.T, p *Processor) {
	t.Helper()
	if n := p.NumQueries(); n != 0 {
		t.Errorf("NumQueries = %d, want 0", n)
	}
	if n := p.NumTemplates(); n != 0 {
		t.Errorf("NumTemplates = %d, want 0", n)
	}
	if len(p.templates) != 0 || len(p.tmplShard) != 0 {
		t.Errorf("template maps not empty: %d sigs, %d shard assignments", len(p.templates), len(p.tmplShard))
	}
	if len(p.patterns) != 0 || len(p.patternList) != 0 {
		t.Errorf("pattern registry not empty: %d/%d", len(p.patterns), len(p.patternList))
	}
	if len(p.singleQueries) != 0 {
		t.Errorf("singleQueries not empty: %v", p.singleQueries)
	}
	for qid, rec := range p.queries {
		if rec != nil {
			t.Errorf("query %d still registered", qid)
		}
	}
	for iid, inst := range p.instances {
		if inst != nil {
			t.Errorf("instance %d still registered", iid)
		}
	}
	for _, sh := range p.shards {
		if len(sh.templates) != 0 || len(sh.rt) != 0 || len(sh.rtIndex) != 0 || len(sh.rtDirty) != 0 {
			t.Errorf("shard %d still owns template state: %d templates, %d RT, %d idx, %d dirty",
				sh.id, len(sh.templates), len(sh.rt), len(sh.rtIndex), len(sh.rtDirty))
		}
		if n := sh.cache.Len(); n != 0 {
			t.Errorf("shard %d view cache has %d entries, want 0", sh.id, n)
		}
		if sh.stats != (Stats{}) {
			t.Errorf("shard %d stats not reclaimed: %+v", sh.id, sh.stats)
		}
	}
	st := p.state
	if st.NumDocs() != 0 || st.Rbin.Len() != 0 || st.Rdoc.Len() != 0 || st.Rroot.Len() != 0 {
		t.Errorf("join state not reclaimed: %d docs, Rbin %d, Rdoc %d, Rroot %d",
			st.NumDocs(), st.Rbin.Len(), st.Rdoc.Len(), st.Rroot.Len())
	}
	if len(st.RdocTS) != 0 || len(st.seq) != 0 || len(st.docs) != 0 ||
		len(st.rdocBySym) != 0 || len(st.rbinByNode2) != 0 || len(st.rbinByVars) != 0 {
		t.Errorf("join-state indexes not reclaimed")
	}
	if p.stats != (Stats{}) {
		t.Errorf("coordinator stats not reclaimed: %+v", p.stats)
	}
	if p.maxFiniteWindow != 0 || p.maxCountWindow != 0 || p.anyInfWindow {
		t.Errorf("window maxima not reclaimed: finite=%d count=%d inf=%v",
			p.maxFiniteWindow, p.maxCountWindow, p.anyInfWindow)
	}
}

// TestUnregisterAllRestoresFreshProcessor subscribes a mixed query set
// (JOIN, FOLLOWED BY, single-block, shared templates), processes documents,
// unregisters everything, and requires the processor to be observationally
// identical to a fresh one — including producing byte-identical output for a
// subsequently re-registered workload.
func TestUnregisterAllRestoresFreshProcessor(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	leafNames := []string{"a", "b", "c"}
	mkQueries := func() []*xscl.Query {
		r := rand.New(rand.NewSource(42))
		qs := []*xscl.Query{
			xscl.MustParse("S//item->x[.//a->v]"), // single-block
		}
		for i := 0; i < 8; i++ {
			op := []string{"FOLLOWED BY", "JOIN"}[i%2]
			qs = append(qs, randomFlatQuery(r, leafNames, 3, int64(5+r.Intn(30)), op))
		}
		return qs
	}
	var docs []*xmldoc.Document
	ts := xmldoc.Timestamp(0)
	for i := 0; i < 60; i++ {
		ts += xmldoc.Timestamp(rng.Intn(3))
		docs = append(docs, randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 2))
	}

	for _, cfg := range []Config{
		{Workers: 1},
		{ViewMaterialization: true, ViewCacheCapacity: 8, Workers: 3},
	} {
		p := NewProcessor(cfg)
		var ids []QueryID
		for _, q := range mkQueries() {
			ids = append(ids, p.MustRegister(q))
		}
		for _, d := range docs {
			p.Process("S", d)
		}
		for _, id := range ids {
			p.MustUnregister(id)
		}
		assertFreshProcessor(t, p)

		// Behavioral half of the invariant: the reclaimed processor and a
		// genuinely fresh one must produce byte-identical output for the
		// same subsequent workload. Query ids are never reused, so the
		// comparison normalizes them to registration order.
		fresh := NewProcessor(cfg)
		ord := map[QueryID]QueryID{}
		freshOrd := map[QueryID]QueryID{}
		for i, q := range mkQueries() {
			ord[p.MustRegister(q)] = QueryID(i)
			freshOrd[fresh.MustRegister(q)] = QueryID(i)
		}
		// Template ids are not reused either, so the render keys the
		// template by its canonical signature instead of its ordinal.
		norm := func(ms []Match, m map[QueryID]QueryID) string {
			var sb strings.Builder
			for _, match := range ms {
				sig := ""
				if match.Template != nil {
					sig = match.Template.Sig
				}
				fmt.Fprintf(&sb, "q%d l%d@%d r%d@%d roots(%d,%d) t%q b%v\n",
					m[match.Query], match.LeftDoc, match.LeftTS, match.RightDoc, match.RightTS,
					match.LeftRoot, match.RightRoot, sig, match.Bindings)
			}
			return sb.String()
		}
		for di, d := range docs {
			got := norm(p.Process("S", d), ord)
			want := norm(fresh.Process("S", d), freshOrd)
			if got != want {
				t.Fatalf("cfg=%+v: reclaimed processor diverges from fresh on doc %d:\nreclaimed:\n%sfresh:\n%s",
					cfg, di+1, got, want)
			}
		}
	}
}

// TestUnregisterSharedTemplateKeepsSurvivor removes one of two queries
// sharing a canonical template: the template must survive with only the
// survivor's RT row, and the survivor's matches must equal a fresh
// processor's.
func TestUnregisterSharedTemplateKeepsSurvivor(t *testing.T) {
	q1 := xscl.MustParse("S//book->x[.//author->a] FOLLOWED BY{a=b, 1000} S//blog->y[.//author->b]")
	q2 := xscl.MustParse("S//book->x[.//title->a] FOLLOWED BY{a=b, 1000} S//blog->y[.//title->b]")

	p := NewProcessor(Config{ViewMaterialization: true})
	id1 := p.MustRegister(q1)
	id2 := p.MustRegister(q2)
	if p.NumTemplates() != 1 {
		t.Fatalf("queries do not share a template: %d", p.NumTemplates())
	}
	tmpl := p.templateList[0]
	if got := p.shardOf(tmpl).rt[tmpl.ID].Len(); got != 2 {
		t.Fatalf("RT rows = %d, want 2", got)
	}

	p.MustUnregister(id2)
	if p.NumTemplates() != 1 {
		t.Fatalf("shared template reclaimed while a member query survives")
	}
	if got := p.shardOf(tmpl).rt[tmpl.ID].Len(); got != 1 {
		t.Errorf("RT rows after unregister = %d, want 1", got)
	}
	if p.NumQueries() != 1 {
		t.Errorf("NumQueries = %d, want 1", p.NumQueries())
	}

	fresh := NewProcessor(Config{ViewMaterialization: true})
	fid := fresh.MustRegister(q1)
	if fid != 0 || id1 != 0 {
		t.Fatalf("query id mismatch: %d vs %d", id1, fid)
	}
	d1 := xmldoc.PaperD1(1, 100)
	d2 := xmldoc.PaperD2(2, 200)
	p.Process("S", d1)
	fresh.Process("S", d1)
	got := renderMatches(p.Process("S", d2))
	want := renderMatches(fresh.Process("S", d2))
	if got != want || got == "" {
		t.Errorf("survivor output diverges (or is empty):\nchurned:\n%sfresh:\n%s", got, want)
	}
}

// TestUnregisterReclaimsTemplateAndPatterns removes the only query of a
// template: template, shard slot, RT relation/index and pattern demands must
// all be reclaimed while unrelated queries are untouched.
func TestUnregisterReclaimsTemplateAndPatterns(t *testing.T) {
	p := NewProcessor(Config{Workers: 2})
	keep := p.MustRegister(xscl.MustParse("S//book->x[.//author->a] FOLLOWED BY{a=b, 1000} S//blog->y[.//author->b]"))
	// Two predicates: a different template and an extra pattern demand.
	drop := p.MustRegister(xscl.MustParse("S//book->x[.//author->a][.//title->t] JOIN{a=b AND t=u, 1000} S//blog->y[.//author->b][.//title->u]"))

	if p.NumTemplates() != 2 {
		t.Fatalf("templates = %d, want 2", p.NumTemplates())
	}
	patternsBefore := len(p.patternList)
	p.MustUnregister(drop)
	if p.NumTemplates() != 1 {
		t.Errorf("templates after unregister = %d, want 1", p.NumTemplates())
	}
	if len(p.patternList) >= patternsBefore {
		t.Errorf("pattern demands not narrowed: %d -> %d", patternsBefore, len(p.patternList))
	}
	total := 0
	for _, sh := range p.shards {
		total += len(sh.templates)
		if len(sh.rt) != len(sh.templates) {
			t.Errorf("shard %d: %d RT relations for %d templates", sh.id, len(sh.rt), len(sh.templates))
		}
	}
	if total != 1 {
		t.Errorf("shards own %d templates, want 1", total)
	}
	_ = keep
}

// TestRegisterFailureLeavesNoTrace checks registration atomicity: a failed
// Register must leave NumTemplates/NumQueries (and everything else
// observable) unchanged, and the rollback path — registerInstance followed
// by unregisterInstance — must restore the exact pre-registration shape.
func TestRegisterFailureLeavesNoTrace(t *testing.T) {
	p := NewProcessor(Config{Workers: 2})
	p.MustRegister(xscl.MustParse("S//book->x[.//author->a] FOLLOWED BY{a=b, 1000} S//blog->y[.//author->b]"))

	type snapshot struct {
		queries, templates, patterns, shard0, shard1, rt0 int
	}
	snap := func() snapshot {
		rt0 := 0
		for _, sh := range p.shards {
			for _, rel := range sh.rt {
				rt0 += rel.Len()
			}
		}
		return snapshot{
			queries: p.NumQueries(), templates: p.NumTemplates(),
			patterns: len(p.patternList),
			shard0:   len(p.shards[0].templates), shard1: len(p.shards[1].templates),
			rt0: rt0,
		}
	}
	before := snap()

	bad := xscl.MustParse("S//item->x[.//a->v] JOIN{v=w, 10} S//item->y[.//a->w]")
	bad.Preds[0].LeftVar = "nope"
	if _, err := p.Register(bad); err == nil {
		t.Fatal("Register accepted a predicate on an unbound variable")
	}
	if after := snap(); after != before {
		t.Errorf("failed Register left a trace: %+v -> %+v", before, after)
	}

	// The rollback path itself: register one instance the way Register
	// does, then tear it down, and require the exact pre-registration
	// shape back (this is what a second-orientation failure triggers).
	good := xscl.MustParse("S//item->x[.//a->v] FOLLOWED BY{v=w, 10} S//item->y[.//a->w]")
	iid, err := p.registerInstance(good, QueryID(999), false)
	if err != nil {
		t.Fatal(err)
	}
	p.unregisterInstance(iid)
	if after := snap(); after != before {
		t.Errorf("registerInstance rollback left a trace: %+v -> %+v", before, after)
	}
}

// TestUnregisterErrors checks id validation and double-unregister.
func TestUnregisterErrors(t *testing.T) {
	p := NewProcessor(Config{})
	id := p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 10} S//b->y"))
	if err := p.Unregister(QueryID(99)); err == nil {
		t.Error("unknown id accepted")
	}
	if err := p.Unregister(QueryID(-1)); err == nil {
		t.Error("negative id accepted")
	}
	if err := p.Unregister(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Unregister(id); err == nil {
		t.Error("double unregister accepted")
	}
}

// TestUnregisterRecomputesWindows requires the GC window maxima to be
// re-derived from the survivors, so churn does not pin GC to the most
// generous window ever subscribed.
func TestUnregisterRecomputesWindows(t *testing.T) {
	p := NewProcessor(Config{})
	small := p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 10} S//b->y"))
	big := p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 100000} S//b->y"))
	inf := p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, INF} S//b->y"))
	rows := p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, ROWS 50} S//b->y"))

	if !p.anyInfWindow || p.maxFiniteWindow != 100000 || p.maxCountWindow != 50 {
		t.Fatalf("maxima: finite=%d count=%d inf=%v", p.maxFiniteWindow, p.maxCountWindow, p.anyInfWindow)
	}
	p.MustUnregister(inf)
	if p.anyInfWindow {
		t.Error("anyInfWindow survives the INF query")
	}
	p.MustUnregister(big)
	if p.maxFiniteWindow != 10 {
		t.Errorf("maxFiniteWindow = %d, want 10", p.maxFiniteWindow)
	}
	p.MustUnregister(rows)
	if p.maxCountWindow != 0 {
		t.Errorf("maxCountWindow = %d, want 0", p.maxCountWindow)
	}
	_ = small
}

// TestShardCompactionUnderChurn checks that reclaimed shard slots are
// refilled: new templates go to the least-loaded shard, not blindly
// round-robin over ever-growing ids.
func TestShardCompactionUnderChurn(t *testing.T) {
	// Distinct templates via distinct value-join counts.
	mk := func(k int) *xscl.Query {
		lhs, rhs, pred := "S//item->v0", "S//item->w0", ""
		for i := 0; i < k; i++ {
			lhs += fmt.Sprintf("[.//l%d->v%d]", i, i+1)
			rhs += fmt.Sprintf("[.//l%d->w%d]", i, i+1)
			if pred != "" {
				pred += " AND "
			}
			pred += fmt.Sprintf("v%d=w%d", i+1, i+1)
		}
		return xscl.MustParse(fmt.Sprintf("%s FOLLOWED BY{%s, 10} %s", lhs, pred, rhs))
	}
	p := NewProcessor(Config{Workers: 2})
	var ids []QueryID
	for k := 1; k <= 4; k++ {
		ids = append(ids, p.MustRegister(mk(k)))
	}
	if len(p.shards[0].templates) != 2 || len(p.shards[1].templates) != 2 {
		t.Fatalf("initial assignment unbalanced: %d/%d",
			len(p.shards[0].templates), len(p.shards[1].templates))
	}
	// Free two slots on shard 0.
	p.MustUnregister(ids[0]) // k=1 -> shard 0
	p.MustUnregister(ids[2]) // k=3 -> shard 0
	if len(p.shards[0].templates) != 0 || len(p.shards[1].templates) != 2 {
		t.Fatalf("after unregister: %d/%d, want 0/2",
			len(p.shards[0].templates), len(p.shards[1].templates))
	}
	// Two new distinct templates must both land on the emptied shard.
	p.MustRegister(mk(5))
	p.MustRegister(mk(6))
	if len(p.shards[0].templates) != 2 || len(p.shards[1].templates) != 2 {
		t.Errorf("churn skewed the shards: %d/%d, want 2/2",
			len(p.shards[0].templates), len(p.shards[1].templates))
	}
}

// TestChurnDeterminism is the lifecycle determinism requirement: a stream
// processed with publish → GC → publish interleaved with Subscribe and
// Unsubscribe churn must produce, after the churn, byte-identical per-
// document output to a fresh processor holding only the surviving query set
// — at every Workers and PipelineDepth combination.
func TestChurnDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	leafNames := []string{"a", "b", "c", "d"}
	var surviving, churned []*xscl.Query
	for i := 0; i < 6; i++ {
		op := []string{"FOLLOWED BY", "JOIN"}[i%2]
		surviving = append(surviving, randomFlatQuery(rng, leafNames, 3, int64(5+rng.Intn(20)), op))
		churned = append(churned, randomFlatQuery(rng, leafNames, 3, int64(5+rng.Intn(40)), op))
	}
	var docs []*xmldoc.Document
	ts := xmldoc.Timestamp(0)
	for i := 0; i < 160; i++ {
		ts += xmldoc.Timestamp(rng.Intn(3)) // small windows + dense stream: GC active
		docs = append(docs, randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 2))
	}
	const churnAt = 80

	for _, viewMat := range []bool{false, true} {
		// Reference: a fresh sequential processor holding only the
		// surviving queries, fed the whole stream.
		fresh := NewProcessor(Config{ViewMaterialization: viewMat, ViewCacheCapacity: 4})
		for _, q := range surviving {
			fresh.MustRegister(q)
		}
		var ref []string
		for _, d := range docs {
			ref = append(ref, renderMatches(fresh.Process("S", d)))
		}

		for _, workers := range []int{1, 4} {
			for _, depth := range []int{0, 2} {
				cfg := Config{ViewMaterialization: viewMat, ViewCacheCapacity: 4,
					Workers: workers, PipelineDepth: depth}
				p := NewProcessor(cfg)
				var survIDs, churnIDs []QueryID
				for _, q := range surviving {
					survIDs = append(survIDs, p.MustRegister(q))
				}
				for _, q := range churned {
					churnIDs = append(churnIDs, p.MustRegister(q))
				}
				p.ProcessBatch("S", docs[:churnAt])
				for _, id := range churnIDs {
					p.MustUnregister(id)
				}
				if p.NumQueries() != len(surviving) {
					t.Fatalf("NumQueries = %d, want %d", p.NumQueries(), len(surviving))
				}
				for di, ms := range p.ProcessBatch("S", docs[churnAt:]) {
					got := renderMatches(ms)
					if got != ref[churnAt+di] {
						t.Fatalf("viewmat=%v workers=%d depth=%d: churned processor diverges from fresh on doc %d:\nchurned:\n%sfresh:\n%s",
							viewMat, workers, depth, churnAt+di+1, got, ref[churnAt+di])
					}
				}
				_ = survIDs
			}
		}
	}
}
