package core

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/xmldoc"
)

// Adaptive statistics-driven plan selection.
//
// The Join Processor evaluates each template's conjunctive query with one of
// two physical plans (rtplan.go): witness-driven (join outward from the
// current document's value-join pairs) or RT-driven (iterate RT's distinct
// variable vectors with index probes). The paper's claim is that a
// cost-based choice between the two is what keeps massively multi-query
// join processing fast as workloads shift; the chooser here makes that
// choice adaptive instead of frozen:
//
//   - Per-template runtime statistics are collected during Stage 2: the
//     observed witness fan-out estimate, the distinct-vector-group
//     cardinality and index-probe volume of the RT-driven plan, and a
//     wall-time EWMA per plan, normalized by each plan's cost units.
//   - The cost model is calibrated online: once both plans have been
//     observed on a template, the decision compares
//     witnessNs/unit × fan-out  vs  rtNs/unit × vector-group cost —
//     measured constants replacing the frozen magic numbers. Until then
//     the uncalibrated prior (the old frozen heuristic) decides.
//   - An occasional-exploration policy keeps both estimates honest: with
//     Config.PlanExploreEvery > 0, roughly one in that many per-template
//     decisions additionally runs the non-chosen plan, timed for
//     calibration only. Its matches are discarded, so match output is
//     identical to exploration-off — both plans produce byte-identical
//     match streams (the plan-invisibility tests force and compare all
//     three modes).
//
// Statistics live in planStats records keyed by template signature on the
// processor (planMemo), so they survive Unsubscribe/re-Register churn the
// same way the canonicalization memo does. During Stage 2 each record is
// touched only by the goroutine of the shard owning its template
// (shard.go), so accumulation is lock-free by ownership; Stats()'s
// per-shard counters are merged the same way. The exploration sampler is a
// per-template PRNG seeded from Config.PlanExploreSeed and the template
// signature, advanced exactly once per PlanAuto decision — its explore/skip
// sequence is deterministic for a fixed seed, independent of Workers,
// PipelineDepth, and timing.

// ewmaAlpha weights new observations; ~1/alpha observations dominate the
// average, so calibration tracks workload drift within a few dozen
// documents without chasing per-document noise.
const ewmaAlpha = 0.25

// ewma is an exponentially weighted moving average seeded by its first
// observation.
type ewma struct {
	v float64
	n int64
}

func (e *ewma) observe(x float64) {
	e.n++
	if e.n == 1 {
		e.v = x
		return
	}
	e.v += ewmaAlpha * (x - e.v)
}

func (e *ewma) value() float64 { return e.v }
func (e *ewma) samples() int64 { return e.n }

// planCost is one plan's calibrated cost model: paired EWMAs of observed
// wall time and of the cost units the run was estimated at. The per-unit
// slope is the ratio of the two averages — a decayed regression through the
// origin — rather than an average of per-run ratios: a witness run has a
// fixed per-template cost on top of its fan-out-proportional part, and
// averaging ratios taken at small fan-outs folds that fixed cost into the
// slope, inflating predictions at fan-out spikes by orders of magnitude
// (which flipped the chooser to the wrong plan). The ratio of averages
// weights the slope toward the unit scale actually observed.
type planCost struct {
	ns    ewma
	units ewma
}

func (c *planCost) observe(ns, units float64) {
	c.ns.observe(ns)
	c.units.observe(units)
}

// perUnit returns the calibrated wall nanoseconds per cost unit.
func (c *planCost) perUnit() float64 {
	if c.units.value() <= 0 {
		return 0
	}
	return c.ns.value() / c.units.value()
}

func (c *planCost) samples() int64 { return c.ns.samples() }

// planStats is one template's adaptive-planner record. See the package
// comment above for the ownership discipline that makes accumulation
// lock-free.
type planStats struct {
	// fanout is the observed witness fan-out estimate per decision, the
	// size driver of the witness-driven plan.
	fanout ewma
	// probes is the observed number of vector-group index-probe
	// evaluations per RT-driven run (groups whose required subsets were
	// all non-empty — the work the RT-driven plan actually did).
	probes ewma
	// witnessCost and rtCost are the calibrated cost models of each plan:
	// witness units are the fan-out estimate, RT units the vector-group
	// cost (see planCost).
	witnessCost planCost
	rtCost      planCost

	witnessRuns  int64
	rtRuns       int64
	explorations int64
	lastRTDriven bool

	// splitUnits tracks the chosen plan's cost units per decision and
	// drives the split-threshold hysteresis; splitActive is the current
	// split regime (split.go). totalWall accumulates the chosen plan's
	// wall time across documents — the per-template serial cost that the
	// scale benchmark's projection model partitions (internal/bench).
	splitUnits  ewma
	splitActive bool
	totalWall   time.Duration

	// rng drives exploration sampling; created lazily on the first
	// PlanAuto decision and advanced exactly once per decision.
	rng *rand.Rand
}

// planStatsFor returns the retained planner record for a template
// signature, creating it on first registration.
func (p *Processor) planStatsFor(sig string) *planStats {
	ps, ok := p.planMemo[sig]
	if !ok {
		ps = &planStats{}
		p.planMemo[sig] = ps
	}
	return ps
}

// sampler returns the template's exploration PRNG, seeding it
// deterministically from the configured seed and the template signature.
//
//mmqjp:nondet seeded deterministic exploration PRNG (same seed+sig -> same draws)
func (ps *planStats) sampler(seed int64, sig string) *rand.Rand {
	if ps.rng == nil {
		if seed == 0 {
			seed = 1
		}
		ps.rng = rand.New(rand.NewSource(seed ^ int64(fnv64(sig))))
	}
	return ps.rng
}

// fnv64 is FNV-1a over s, mixing the template signature into the
// exploration seed so templates draw independent sequences.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// planDecision is one per-template per-document plan choice.
type planDecision struct {
	rtDriven bool
	// explore requests a calibration run of the non-chosen plan.
	explore bool
	// witnessUnits and rtUnits are the cost-unit counts the decision was
	// based on, reused to normalize the observed wall times.
	witnessUnits float64
	rtUnits      float64
}

// choosePlan decides the physical plan for one template against the current
// document and records the decision-time statistics. perDoc is the
// per-previous-document fan-out of the value-join pair relation (basic
// path) or of the shared left view RL (view-materialization path).
//
//mmqjp:nondet exploration draws come from the seeded template PRNG (sampler)
func (p *Processor) choosePlan(t *Template, perDoc map[xmldoc.DocID]int) planDecision {
	ps := t.plan
	// Forced plans return before any estimation: the fan-out estimate is
	// an O(|perDoc|) pow loop per template per document, pure waste for a
	// constant decision (the ablation benchmarks measure exactly this
	// path). Unit counts of 1 keep runPlans' per-unit normalization
	// well-defined; forced-mode EWMAs are never read by a chooser.
	switch p.cfg.Plan {
	case PlanWitness:
		ps.lastRTDriven = false
		return planDecision{witnessUnits: 1, rtUnits: 1}
	case PlanRTDriven:
		ps.lastRTDriven = true
		return planDecision{rtDriven: true, witnessUnits: 1, rtUnits: 1}
	}
	d := planDecision{
		witnessUnits: witnessFanout(perDoc, len(t.VJ)) + 1,
		rtUnits:      t.rtDrivenCost() + 1,
	}
	ps.fanout.observe(d.witnessUnits - 1)
	calibrated := ps.witnessCost.samples() > 0 && ps.rtCost.samples() > 0
	predW, predRT := d.witnessUnits, d.rtUnits
	if calibrated {
		// Calibrated: compare predicted wall times.
		predW = ps.witnessCost.perUnit() * d.witnessUnits
		predRT = ps.rtCost.perUnit() * d.rtUnits
		d.rtDriven = predW > predRT
	} else {
		// Uncalibrated prior: the frozen heuristic the calibrated model
		// replaces, biased toward the witness plan on streams.
		d.rtDriven = d.witnessUnits-1 > 4*(d.rtUnits-1)+1024
	}
	if every := p.cfg.PlanExploreEvery; every > 0 {
		// The sampler is advanced exactly once per decision, so the draw
		// sequence stays deterministic regardless of the cutoff below.
		d.explore = ps.sampler(p.cfg.PlanExploreSeed, t.Sig).Intn(every) == 0
		if d.explore {
			// Skip the draw when the non-chosen plan's prediction is
			// confidently bad. Two tiers, because the two prediction
			// scales differ: calibrated predictions are commensurable
			// wall times, so anything beyond exploreCutoff× the chosen
			// plan is pure re-measurement overhead; uncalibrated unit
			// priors (fan-out vs vector-group cost) are only roughly
			// comparable, so they get the much looser explosion guard
			// uncalibratedExploreCutoff — enough to never run an
			// engine-stalling cross product (witness fan-out grows as
			// pow(pairs, k)) while still sampling a moderately-worse
			// plan once, after which the calibrated tier governs.
			chosen, other := predW, predRT
			if d.rtDriven {
				chosen, other = predRT, predW
			}
			cutoff := uncalibratedExploreCutoff
			if calibrated {
				cutoff = exploreCutoff
			}
			if other > cutoff*chosen {
				d.explore = false
			}
		}
	}
	ps.lastRTDriven = d.rtDriven
	return d
}

// exploreCutoff bounds calibrated exploration: the non-chosen plan is only
// re-measured while its calibrated prediction stays within this factor of
// the chosen plan's. uncalibratedExploreCutoff is the pre-calibration
// explosion guard over the raw unit priors, deliberately loose so that a
// plan within a few orders of magnitude still gets its one calibrating
// sample.
const (
	exploreCutoff             = 32.0
	uncalibratedExploreCutoff = 1024.0
)

// runPlans executes the decided plan and returns its matches, feeding the
// observed wall time back into the template's calibrated cost model. When
// the decision requests exploration, the non-chosen plan runs afterwards
// for calibration only: its matches are discarded (both plans emit
// byte-identical streams, so nothing is lost) and its cost lands in
// ExploreWall, not CQ. witness and rtDriven are closures over the shard's
// evaluation context; rtDriven additionally reports how many vector groups
// it probed.
//
//mmqjp:nondet wall-clock cost calibration; plan choice is output-invisible
//mmqjp:shardaccess called from the owning shard's evaluation; timings land on that shard
func (p *Processor) runPlans(sh *shard, t *Template, d planDecision,
	witness func() []Match, rtDriven func() ([]Match, int)) []Match {
	ps := t.plan
	// Calibration is a PlanAuto concept: forced plans skip the unit
	// estimation in choosePlan, so feeding their wall times into the cost
	// models would record nanoseconds-per-run under fields documented as
	// per-unit costs. Forced runs still tick the run counters.
	auto := p.cfg.Plan == PlanAuto
	var out []Match
	t0 := time.Now()
	if d.rtDriven {
		sh.stats.RTPlans++
		ps.rtRuns++
		var groups int
		out, groups = rtDriven()
		dt := time.Since(t0)
		sh.stats.CQ += dt
		ps.totalWall += dt
		if auto {
			ps.rtCost.observe(float64(dt), d.rtUnits)
		}
		ps.probes.observe(float64(groups))
	} else {
		sh.stats.WitnessPlans++
		ps.witnessRuns++
		out = witness()
		dt := time.Since(t0)
		sh.stats.CQ += dt
		ps.totalWall += dt
		if auto {
			ps.witnessCost.observe(float64(dt), d.witnessUnits)
		}
	}
	if d.explore {
		sh.stats.Explorations++
		ps.explorations++
		t1 := time.Now()
		if d.rtDriven {
			witness()
			ps.witnessCost.observe(float64(time.Since(t1)), d.witnessUnits)
		} else {
			_, groups := rtDriven()
			ps.rtCost.observe(float64(time.Since(t1)), d.rtUnits)
			ps.probes.observe(float64(groups))
		}
		sh.stats.ExploreWall += time.Since(t1)
	}
	return out
}

// TemplatePlanStats is one live template's adaptive-planner snapshot, as
// returned by Processor.PlanStats.
type TemplatePlanStats struct {
	Template TemplateID
	Sig      string
	// VecGroups is the live distinct-variable-vector count, the outer
	// cardinality of the RT-driven plan.
	VecGroups int
	// FanoutEWMA is the observed witness fan-out estimate.
	FanoutEWMA float64
	// ProbeEWMA is the observed vector-group probe count per RT-driven
	// run.
	ProbeEWMA float64
	// WitnessNsPerUnit and RTNsPerUnit are the calibrated per-unit costs
	// (0 until the plan has been observed on this template; forced plans
	// never calibrate, so both stay 0 outside PlanAuto).
	WitnessNsPerUnit float64
	RTNsPerUnit      float64
	WitnessRuns      int64
	RTRuns           int64
	Explorations     int64
	// LastRTDriven reports the most recent decision.
	LastRTDriven bool
	// SplitActive reports whether the template is in the split regime
	// (split.go); SplitUnitsEWMA is the cost-unit average the hysteresis
	// compares against the threshold.
	SplitActive    bool
	SplitUnitsEWMA float64
	// PlanWall is the accumulated wall time of the template's chosen-plan
	// runs — its share of serial Stage-2 CPU, the input to the scale
	// benchmark's projection model.
	PlanWall time.Duration
}

// PlanStats returns a snapshot of the adaptive planner's per-template
// statistics for the live templates, in template-id order. Like Stats, it
// must not race a Process call (the engine facade serializes them).
func (p *Processor) PlanStats() []TemplatePlanStats {
	out := make([]TemplatePlanStats, 0, len(p.templateList))
	for _, t := range p.templateList {
		ps := t.plan
		out = append(out, TemplatePlanStats{
			Template:         t.ID,
			Sig:              t.Sig,
			VecGroups:        len(t.vecList),
			FanoutEWMA:       ps.fanout.value(),
			ProbeEWMA:        ps.probes.value(),
			WitnessNsPerUnit: ps.witnessCost.perUnit(),
			RTNsPerUnit:      ps.rtCost.perUnit(),
			WitnessRuns:      ps.witnessRuns,
			RTRuns:           ps.rtRuns,
			Explorations:     ps.explorations,
			LastRTDriven:     ps.lastRTDriven,
			SplitActive:      ps.splitActive,
			SplitUnitsEWMA:   ps.splitUnits.value(),
			PlanWall:         ps.totalWall,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Template < out[j].Template })
	return out
}
