package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sequential"
	"repro/internal/workload"
	"repro/internal/xmldoc"
)

// The randomized differential harness: seeded random traces (queries,
// document streams, subscription churn — internal/workload/random.go) are
// replayed through every Plan × Workers × SplitThreshold × PipelineDepth ×
// ViewMaterialization combination of the core processor and through the
// sequential oracle.
//
//   - All core combinations must produce byte-identical per-event match
//     streams — order included. This subsumes the plan-invisibility claim
//     (forced witness, forced RT-driven and adaptive PlanAuto with
//     exploration emit the same bytes) and the worker/pipeline determinism
//     claims at once.
//   - The (query, leftDoc, rightDoc) sets must equal the sequential
//     oracle's (multiplicities differ by design: MMQJP emits one match per
//     RoutT row, Sequential one per witness pair) — restricted to document
//     pairs published at or after the query's subscription. For documents
//     that predate a churned-in subscription, visibility is
//     implementation-defined state sharing: the core processor shares
//     retained witness tuples at canonical-variable granularity while the
//     oracle shares whole-pattern witness stores, so the two legitimately
//     disagree about pre-subscription history (both ways). Within a
//     query's live window the semantics are exact and the sets must
//     coincide.
//
// Every trial is a pure function of its seed, and failures log the seed, so
// a red run reproduces with a one-line test.

// harnessRec is the byte-identity fingerprint of one core match.
type harnessRec struct {
	Query              QueryID
	LeftDoc, RightDoc  xmldoc.DocID
	LeftTS, RightTS    xmldoc.Timestamp
	LeftRoot, RghtRoot xmldoc.NodeID
	Sig                string
	Bindings           string
}

func harnessRecs(ms []Match) []harnessRec {
	out := make([]harnessRec, len(ms))
	for i, m := range ms {
		sig := ""
		if m.Template != nil {
			sig = m.Template.Sig
		}
		out[i] = harnessRec{
			Query:   m.Query,
			LeftDoc: m.LeftDoc, RightDoc: m.RightDoc,
			LeftTS: m.LeftTS, RightTS: m.RightTS,
			LeftRoot: m.LeftRoot, RghtRoot: m.RightRoot,
			Sig:      sig,
			Bindings: fmt.Sprint(m.Bindings),
		}
	}
	return out
}

// replayTrace runs a trace through one processor configuration and returns
// the per-event match records. Events between churn points are fed through
// ProcessBatchFunc so PipelineDepth > 1 actually exercises the pipelined
// path; churn is applied between batches, exactly where the engine's
// barrier would put it.
func replayTrace(cfg Config, tr workload.Trace) [][]harnessRec {
	p := NewProcessor(cfg)
	var ids []QueryID
	for _, q := range tr.Initial {
		ids = append(ids, p.MustRegister(q))
	}
	out := make([][]harnessRec, len(tr.Events))
	i := 0
	for i < len(tr.Events) {
		ev := tr.Events[i]
		for _, u := range ev.Unsubscribe {
			p.MustUnregister(ids[u])
		}
		for _, q := range ev.Subscribe {
			ids = append(ids, p.MustRegister(q))
		}
		// Batch this event's document with the following churn-free
		// events' documents.
		j := i + 1
		for j < len(tr.Events) && len(tr.Events[j].Unsubscribe) == 0 && len(tr.Events[j].Subscribe) == 0 {
			j++
		}
		docs := make([]*xmldoc.Document, 0, j-i)
		for k := i; k < j; k++ {
			docs = append(docs, tr.Events[k].Doc)
		}
		base := i
		p.ProcessBatchFunc("S", docs, func(k int, ms []Match) {
			out[base+k] = harnessRecs(ms)
		})
		i = j
	}
	return out
}

// replaySequential runs the same trace through the sequential oracle and
// returns per-event (query, leftDoc, rightDoc) sets.
func replaySequential(tr workload.Trace) []map[matchKey]bool {
	p := sequential.NewProcessor()
	var ids []sequential.QueryID
	for _, q := range tr.Initial {
		ids = append(ids, p.MustRegister(q))
	}
	out := make([]map[matchKey]bool, len(tr.Events))
	for i, ev := range tr.Events {
		for _, u := range ev.Unsubscribe {
			if err := p.Unregister(ids[u]); err != nil {
				panic(err)
			}
		}
		for _, q := range ev.Subscribe {
			ids = append(ids, p.MustRegister(q))
		}
		out[i] = seqMatchSet(p.Process("S", ev.Doc))
	}
	return out
}

func harnessKeySet(recs []harnessRec) map[matchKey]bool {
	out := map[matchKey]bool{}
	for _, r := range recs {
		out[matchKey{int64(r.Query), int64(r.LeftDoc), int64(r.RightDoc)}] = true
	}
	return out
}

// harnessCombos enumerates every Plan × Workers × SplitThreshold ×
// PipelineDepth × ViewMaterialization combination under differential test.
// PlanAuto runs with aggressive exploration so the calibration path is
// exercised.
func harnessCombos(seed int64) []Config {
	var out []Config
	for _, plan := range []PlanKind{PlanWitness, PlanRTDriven, PlanAuto} {
		for _, workers := range []int{1, 4} {
			// Multi-worker combinations run both split-disabled and
			// split-forced (threshold 1), so intra-template chunking and
			// stealing (split.go) must be byte-invisible too.
			thresholds := []float64{-1}
			if workers > 1 {
				thresholds = []float64{-1, 1}
			}
			for _, thr := range thresholds {
				for _, depth := range []int{0, 2} {
					for _, vm := range []bool{false, true} {
						cfg := Config{
							Plan:                plan,
							Workers:             workers,
							SplitThreshold:      thr,
							PipelineDepth:       depth,
							ViewMaterialization: vm,
						}
						if plan == PlanAuto {
							cfg.PlanExploreEvery = 2
							cfg.PlanExploreSeed = seed
						}
						out = append(out, cfg)
					}
				}
			}
		}
	}
	return out
}

func comboName(cfg Config) string {
	plan := map[PlanKind]string{PlanWitness: "witness", PlanRTDriven: "rt", PlanAuto: "auto"}[cfg.Plan]
	return fmt.Sprintf("plan=%s workers=%d split=%v depth=%d viewmat=%v", plan, cfg.Workers, cfg.SplitThreshold, cfg.PipelineDepth, cfg.ViewMaterialization)
}

func runHarnessSeed(t *testing.T, seed int64, deep bool) {
	t.Helper()
	gen := workload.DefaultRandomFlat()
	if deep {
		gen = workload.DefaultRandomDeep()
	}
	rng := rand.New(rand.NewSource(seed))
	nQueries := 2 + rng.Intn(6)
	nDocs := 6 + rng.Intn(10)
	tr := gen.Trace(rng, nQueries, nDocs, true)

	combos := harnessCombos(seed)
	ref := replayTrace(combos[0], tr)
	for _, cfg := range combos[1:] {
		got := replayTrace(cfg, tr)
		for ev := range ref {
			if !reflect.DeepEqual(ref[ev], got[ev]) {
				t.Fatalf("seed %d deep=%v: event %d diverges between %q and %q:\nref: %v\ngot: %v",
					seed, deep, ev, comboName(combos[0]), comboName(cfg), ref[ev], got[ev])
			}
		}
	}

	seq := replaySequential(tr)
	subEvent := subscriptionEvents(tr)
	for ev := range ref {
		got := filterLiveWindow(harnessKeySet(ref[ev]), subEvent)
		want := filterLiveWindow(seq[ev], subEvent)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d deep=%v: event %d diverges from the sequential oracle:\nmmqjp: %v\nseq:   %v",
				seed, deep, ev, keys(got), keys(want))
		}
	}
}

// subscriptionEvents maps each subscription index to the event index it was
// issued at (-1 for the initial set, which precedes every document).
func subscriptionEvents(tr workload.Trace) map[int64]int {
	out := map[int64]int{}
	for i := range tr.Initial {
		out[int64(i)] = -1
	}
	next := len(tr.Initial)
	for ev, e := range tr.Events {
		for range e.Subscribe {
			out[int64(next)] = ev
			next++
		}
	}
	return out
}

// filterLiveWindow keeps the matches whose both documents were published at
// or after the query's subscription event — the window where core and the
// sequential oracle have identical, fully-specified semantics. Document ids
// are event index + 1 by construction of workload.Trace.
func filterLiveWindow(s map[matchKey]bool, subEvent map[int64]int) map[matchKey]bool {
	out := map[matchKey]bool{}
	for k := range s {
		sub := subEvent[k.q]
		if int(k.ldoc-1) >= sub && int(k.rdoc-1) >= sub {
			out[k] = true
		}
	}
	return out
}

// TestRandomizedDifferentialHarness replays seeded random churn traces
// through every plan/worker/pipeline/view-materialization combination and
// the sequential oracle. Failures log the seed.
func TestRandomizedDifferentialHarness(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		runHarnessSeed(t, seed, false)
	}
	for seed := int64(101); seed <= 106; seed++ {
		runHarnessSeed(t, seed, true)
	}
}
