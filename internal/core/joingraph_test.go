package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/xscl"
)

func TestBuildJoinGraphQ1(t *testing.T) {
	q := xscl.PaperQ1(100)
	g, err := BuildJoinGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.LeftSide.Nodes) != 3 || len(g.RightSide.Nodes) != 3 {
		t.Errorf("sides = %d, %d nodes", len(g.LeftSide.Nodes), len(g.RightSide.Nodes))
	}
	if len(g.VJ) != 2 {
		t.Errorf("vj = %d", len(g.VJ))
	}
	// The roots have two children each.
	if len(g.LeftSide.Nodes[0].Children) != 2 {
		t.Errorf("left root children = %d", len(g.LeftSide.Nodes[0].Children))
	}
}

func TestBuildJoinGraphDeduplicatesPredicates(t *testing.T) {
	q := xscl.MustParse("S//a->x[.//b->y] FOLLOWED BY{y=z AND y=z, 10} S//c->w[.//d->z]")
	g, err := BuildJoinGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.VJ) != 1 {
		t.Errorf("vj = %d, want 1 after dedup", len(g.VJ))
	}
}

func TestBuildJoinGraphRejectsSingleBlock(t *testing.T) {
	if _, err := BuildJoinGraph(xscl.MustParse("S//a->x")); err == nil {
		t.Error("single-block query accepted")
	}
}

func TestMinorQ1(t *testing.T) {
	q := xscl.PaperQ1(100)
	g, _ := BuildJoinGraph(q)
	red := g.Minor()
	// Q1's join graph is already fully reduced: root + 2 vj leaves per
	// side (Figure 5's template shape).
	if len(red.LeftSide.Nodes) != 3 || len(red.RightSide.Nodes) != 3 {
		t.Errorf("reduced sides = %d, %d", len(red.LeftSide.Nodes), len(red.RightSide.Nodes))
	}
	if len(red.VJ) != 2 {
		t.Errorf("vj = %d", len(red.VJ))
	}
}

func TestMinorRemovesNonJoinLeaves(t *testing.T) {
	// The title leaf participates in no value join and must be removed.
	q := xscl.MustParse("S//book->x1[.//author->x2][.//title->x3] FOLLOWED BY{x2=x5, 10} S//blog->x4[.//author->x5]")
	g, _ := BuildJoinGraph(q)
	red := g.Minor()
	// The title leaf is removed; the LCA of the single remaining vj leaf
	// is the leaf itself, so each side reduces to one node (handled by
	// the unary root-binding relation in the Join Processor).
	if len(red.LeftSide.Nodes) != 1 {
		t.Errorf("left reduced = %d nodes, want 1", len(red.LeftSide.Nodes))
	}
	if red.LeftSide.Nodes[0].PatternNode.Var != "x2" {
		t.Errorf("left reduced node = %q, want x2", red.LeftSide.Nodes[0].PatternNode.Var)
	}
	if len(red.RightSide.Nodes) != 1 {
		t.Errorf("right reduced = %d nodes, want 1", len(red.RightSide.Nodes))
	}
}

func TestMinorSplicesSingleChildChains(t *testing.T) {
	// a//b//c->x: b is a single-child intermediate; the LCA of the single
	// vj leaf set {c} is c itself, so the left side reduces to c alone.
	q := xscl.MustParse("S//a->x0[.//b->x1[.//c->x2]] FOLLOWED BY{x2=y, 10} S//d->y0[.//e->y]")
	g, _ := BuildJoinGraph(q)
	red := g.Minor()
	if len(red.LeftSide.Nodes) != 1 {
		t.Errorf("left reduced = %d nodes, want 1 (LCA descent to the leaf)", len(red.LeftSide.Nodes))
	}
	if red.LeftSide.Nodes[0].PatternNode.Var != "x2" {
		t.Errorf("left reduced root = %q", red.LeftSide.Nodes[0].PatternNode.Var)
	}
}

func TestMinorKeepsLCABranchNode(t *testing.T) {
	// Two vj leaves under the same intermediate node: the intermediate is
	// their LCA and becomes the reduced root; the original root is gone.
	q := xscl.MustParse("S//r->x0[.//m->x1[.//a->x2][.//b->x3]] FOLLOWED BY{x2=y1 AND x3=y2, 10} S//s->y0[.//c->y1][.//d->y2]")
	g, _ := BuildJoinGraph(q)
	red := g.Minor()
	if len(red.LeftSide.Nodes) != 3 {
		t.Fatalf("left reduced = %d nodes, want 3", len(red.LeftSide.Nodes))
	}
	if red.LeftSide.Nodes[0].PatternNode.Var != "x1" {
		t.Errorf("reduced root var = %q, want x1 (the LCA)", red.LeftSide.Nodes[0].PatternNode.Var)
	}
}

func TestMinorUnboundLCARetained(t *testing.T) {
	// The LCA m is unbound; reduction must still retain it (canonical
	// name is structural, not variable-based).
	q := xscl.MustParse("S//r->x0[.//m[.//a->x2][.//b->x3]] FOLLOWED BY{x2=y1 AND x3=y2, 10} S//s->y0[.//c->y1][.//d->y2]")
	g, _ := BuildJoinGraph(q)
	red := g.Minor()
	if len(red.LeftSide.Nodes) != 3 {
		t.Fatalf("left reduced = %d nodes, want 3", len(red.LeftSide.Nodes))
	}
	if red.LeftSide.Nodes[0].Canonical == "" {
		t.Errorf("unbound LCA has no canonical name")
	}
}

func TestTemplateQ1Q2Q3Shared(t *testing.T) {
	// The paper's central example: Q1, Q2 and Q3 share one template
	// (Figure 5) despite different tree patterns and variables.
	sigs := map[string]bool{}
	for _, q := range []*xscl.Query{xscl.PaperQ1(1), xscl.PaperQ2(2), xscl.PaperQ3(3)} {
		g, err := BuildJoinGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		_, sig, _ := ExtractTemplate(g)
		sigs[sig] = true
	}
	if len(sigs) != 1 {
		t.Errorf("Q1,Q2,Q3 produced %d templates, want 1", len(sigs))
	}
}

func TestTemplateAxisIrrelevant(t *testing.T) {
	// Structural axes differ but the reduced graphs are isomorphic.
	a := xscl.MustParse("S//a->x[.//b->y] FOLLOWED BY{y=z, 10} S//c->w[.//d->z]")
	b := xscl.MustParse("S//e->x[./f->y] FOLLOWED BY{y=z, 10} S//g->w[./h->z]")
	ga, _ := BuildJoinGraph(a)
	gb, _ := BuildJoinGraph(b)
	_, sa, _ := ExtractTemplate(ga)
	_, sb, _ := ExtractTemplate(gb)
	if sa != sb {
		t.Errorf("axis choice changed the template")
	}
}

func TestTemplateDirectionMatters(t *testing.T) {
	// 1 left leaf joined to 2 right leaves vs 2 left to 1 right:
	// different templates (FOLLOWED BY is asymmetric).
	a := xscl.MustParse("S//a->x FOLLOWED BY{x=y1 AND x=y2, 10} S//b->r[.//c->y1][.//d->y2]")
	b := xscl.MustParse("S//b->r[.//c->y1][.//d->y2] FOLLOWED BY{y1=x AND y2=x, 10} S//a->x")
	ga, _ := BuildJoinGraph(a)
	gb, _ := BuildJoinGraph(b)
	_, sa, _ := ExtractTemplate(ga)
	_, sb, _ := ExtractTemplate(gb)
	if sa == sb {
		t.Errorf("mirrored queries share a template")
	}
}

func TestTemplateWiringMatters(t *testing.T) {
	// Parallel wiring {a-c, b-d} vs fan wiring {a-c, a-d}: distinct.
	par := xscl.MustParse("S//r->x[.//a->a1][.//b->b1] FOLLOWED BY{a1=c1 AND b1=d1, 10} S//s->y[.//c->c1][.//d->d1]")
	fan := xscl.MustParse("S//r->x[.//a->a1][.//b->b1] FOLLOWED BY{a1=c1 AND a1=d1, 10} S//s->y[.//c->c1][.//d->d1]")
	gp, _ := BuildJoinGraph(par)
	gf, _ := BuildJoinGraph(fan)
	_, sp, _ := ExtractTemplate(gp)
	_, sf, _ := ExtractTemplate(gf)
	if sp == sf {
		t.Errorf("parallel and fan wiring share a template")
	}
	// But crossing {a-d, b-c} is isomorphic to parallel {a-c, b-d}.
	cross := xscl.MustParse("S//r->x[.//a->a1][.//b->b1] FOLLOWED BY{a1=d1 AND b1=c1, 10} S//s->y[.//c->c1][.//d->d1]")
	gc, _ := BuildJoinGraph(cross)
	_, sc, _ := ExtractTemplate(gc)
	if sc != sp {
		t.Errorf("crossing wiring should be isomorphic to parallel wiring")
	}
}

// TestTable3FlatSchemaTemplateCounts reproduces the flat-schema column of
// Table 3 by exhaustive enumeration: the number of distinct templates over
// all queries with k value joins on a two-level schema is 1, 3, 6, 16 for
// k = 1..4.
func TestTable3FlatSchemaTemplateCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 3, 3: 6, 4: 16}
	for k := 1; k <= 4; k++ {
		sigs := map[string]bool{}
		// Enumerate all assignments of k value joins to (left leaf,
		// right leaf) pairs with up to k leaves per side. Leaf
		// identities beyond their wiring role do not matter, so
		// enumerating endpoint indexes in 1..k suffices.
		lidx := make([]int, k)
		ridx := make([]int, k)
		var rec func(i int)
		rec = func(i int) {
			if i == k {
				q, ok := buildFlatQuery(lidx, ridx, k)
				if !ok {
					return
				}
				g, err := BuildJoinGraph(q)
				if err != nil {
					return
				}
				_, sig, _ := ExtractTemplate(g)
				sigs[sig] = true
				return
			}
			for l := 0; l < k; l++ {
				for r := 0; r < k; r++ {
					lidx[i], ridx[i] = l, r
					rec(i + 1)
				}
			}
		}
		rec(0)
		if len(sigs) != want[k] {
			t.Errorf("flat schema, %d value joins: %d templates, want %d", k, len(sigs), want[k])
		}
	}
}

// buildFlatQuery builds a two-level-schema query with the given value-join
// wiring: lidx[i]/ridx[i] are the left/right leaf indexes of join i.
func buildFlatQuery(lidx, ridx []int, k int) (*xscl.Query, bool) {
	// Leaves that appear in no join would be removed by reduction;
	// including them changes nothing, so only materialize used leaves.
	lhs := "S//r->v0"
	rhs := "S//r->w0"
	used := map[int]bool{}
	for _, l := range lidx {
		used[l] = true
	}
	for i := 0; i < k; i++ {
		if used[i] {
			lhs += fmt.Sprintf("[.//l%d->v%d]", i, i+1)
		}
	}
	usedR := map[int]bool{}
	for _, r := range ridx {
		usedR[r] = true
	}
	for i := 0; i < k; i++ {
		if usedR[i] {
			rhs += fmt.Sprintf("[.//l%d->w%d]", i, i+1)
		}
	}
	pred := ""
	seen := map[[2]int]bool{}
	for i := range lidx {
		if seen[[2]int{lidx[i], ridx[i]}] {
			continue // duplicate predicate: a different k
		}
		seen[[2]int{lidx[i], ridx[i]}] = true
		if pred != "" {
			pred += " AND "
		}
		pred += fmt.Sprintf("v%d=w%d", lidx[i]+1, ridx[i]+1)
	}
	if len(seen) != len(lidx) {
		return nil, false // would be a (k-1)-join query
	}
	return xscl.MustParse(lhs + " FOLLOWED BY{" + pred + ", 10} " + rhs), true
}

// TestPropertyCanonicalInvariantUnderPredicateOrder shuffles predicate and
// sibling order and checks the template signature is unchanged.
func TestPropertyCanonicalInvariantUnderPredicateOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(4)
		lidx := make([]int, k)
		ridx := make([]int, k)
		perm := rng.Perm(k)
		for i := 0; i < k; i++ {
			lidx[i], ridx[i] = rng.Intn(k), rng.Intn(k)
		}
		q1, ok := buildFlatQuery(lidx, ridx, k)
		if !ok {
			continue
		}
		// Same wiring, predicates in permuted order.
		l2 := make([]int, k)
		r2 := make([]int, k)
		for i, pi := range perm {
			l2[i], r2[i] = lidx[pi], ridx[pi]
		}
		q2, ok := buildFlatQuery(l2, r2, k)
		if !ok {
			continue
		}
		g1, err := BuildJoinGraph(q1)
		if err != nil {
			continue
		}
		g2, err := BuildJoinGraph(q2)
		if err != nil {
			continue
		}
		_, s1, _ := ExtractTemplate(g1)
		_, s2, _ := ExtractTemplate(g2)
		if s1 != s2 {
			t.Fatalf("trial %d: predicate order changed template:\n%v %v\n%v %v",
				trial, lidx, ridx, l2, r2)
		}
	}
}

func TestDatalogRendering(t *testing.T) {
	q := xscl.PaperQ1(100)
	g, _ := BuildJoinGraph(q)
	red, sig, order := ExtractTemplate(g)
	tmpl := NewTemplateFromCanonical(sig, red, order)
	dl := tmpl.Datalog()
	if dl == "" {
		t.Fatal("empty datalog")
	}
	// The Figure-5 template has 2 value joins, 2+2 structural edges.
	if len(tmpl.VJ) != 2 {
		t.Errorf("vj = %d", len(tmpl.VJ))
	}
	if got := len(tmpl.StructEdges(Left)) + len(tmpl.StructEdges(Right)); got != 4 {
		t.Errorf("structural edges = %d, want 4", got)
	}
	if tmpl.SingleLeft || tmpl.SingleRight {
		t.Errorf("Q1 template has single-node sides: %+v", tmpl)
	}
}
