package core

import (
	"fmt"
	"sort"
	"strings"
)

// Template identity is graph isomorphism of reduced join graphs. The graphs
// are small (two trees plus cross value-join edges, a dozen nodes at most),
// so we use textbook colour refinement with individualization backtracking:
// refine node colours to a fixed point; if classes remain non-singleton,
// individualize each member of the first tied class in turn and recurse;
// the canonical form is the lexicographically smallest serialization.
//
// The serialization orders nodes by final colour and lists, per node, its
// side, its parent's position and its value-join partners' positions; two
// reduced join graphs are isomorphic exactly when their canonical forms are
// equal.

// canonGraph is the flattened reduced join graph handed to the canonicalizer.
type canonGraph struct {
	n      int
	side   []uint8 // 0 = left, 1 = right
	parent []int   // -1 for side roots
	vj     [][]int // value-join adjacency (sorted)
	kids   [][]int
}

// flatten merges the two sides of a reduced join graph into one node space:
// left nodes first, then right nodes.
func flatten(g *JoinGraph) *canonGraph {
	nl := len(g.LeftSide.Nodes)
	n := nl + len(g.RightSide.Nodes)
	cg := &canonGraph{
		n:      n,
		side:   make([]uint8, n),
		parent: make([]int, n),
		vj:     make([][]int, n),
		kids:   make([][]int, n),
	}
	for i, nd := range g.LeftSide.Nodes {
		cg.side[i] = 0
		cg.parent[i] = nd.Parent
	}
	for i, nd := range g.RightSide.Nodes {
		cg.side[nl+i] = 1
		if nd.Parent >= 0 {
			cg.parent[nl+i] = nl + nd.Parent
		} else {
			cg.parent[nl+i] = -1
		}
	}
	for _, e := range g.VJ {
		cg.vj[e.L] = append(cg.vj[e.L], nl+e.R)
		cg.vj[nl+e.R] = append(cg.vj[nl+e.R], e.L)
	}
	for i := 0; i < n; i++ {
		sort.Ints(cg.vj[i])
		if p := cg.parent[i]; p >= 0 {
			cg.kids[p] = append(cg.kids[p], i)
		}
	}
	return cg
}

// refine iterates colour refinement to a fixed point. The colour of a node
// combines its previous colour with the colour multisets of its parent,
// children and value-join partners.
func (g *canonGraph) refine(colors []int) []int {
	for {
		sigs := make([]string, g.n)
		for i := 0; i < g.n; i++ {
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d|", colors[i])
			if p := g.parent[i]; p >= 0 {
				fmt.Fprintf(&sb, "p%d|", colors[p])
			} else {
				sb.WriteString("p-|")
			}
			sb.WriteString(multiset(colors, g.kids[i]))
			sb.WriteByte('|')
			sb.WriteString(multiset(colors, g.vj[i]))
			sigs[i] = sb.String()
		}
		next, classes := densify(sigs)
		if classes == countClasses(colors) {
			return next
		}
		colors = next
	}
}

func multiset(colors, idx []int) string {
	cs := make([]int, len(idx))
	for i, j := range idx {
		cs[i] = colors[j]
	}
	sort.Ints(cs)
	return fmt.Sprint(cs)
}

// densify maps signature strings to dense colour ids ordered by signature,
// so colour ids are isomorphism-invariant.
func densify(sigs []string) ([]int, int) {
	uniq := append([]string(nil), sigs...)
	sort.Strings(uniq)
	uniq = dedupStrings(uniq)
	rank := make(map[string]int, len(uniq))
	for i, s := range uniq {
		rank[s] = i
	}
	out := make([]int, len(sigs))
	for i, s := range sigs {
		out[i] = rank[s]
	}
	return out, len(uniq)
}

func dedupStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func countClasses(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// Canonicalize computes the canonical form of a reduced join graph: the
// canonical signature string (equal exactly for isomorphic graphs) and the
// canonical node order (position -> flattened node index, left nodes being
// 0..len(left)-1).
func Canonicalize(g *JoinGraph) (string, []int) {
	cg := flatten(g)
	init := make([]int, cg.n)
	for i := range init {
		// Initial colour: side and depth.
		init[i] = int(cg.side[i])*64 + depthIn(cg, i)
	}
	init, _ = densifyInts(init)
	colors := cg.refine(init)
	sig, order := cg.search(colors)
	return sig, order
}

func depthIn(g *canonGraph, i int) int {
	d := 0
	for p := g.parent[i]; p >= 0; p = g.parent[p] {
		d++
	}
	return d
}

func densifyInts(colors []int) ([]int, int) {
	uniq := append([]int(nil), colors...)
	sort.Ints(uniq)
	u := uniq[:0]
	for i, v := range uniq {
		if i == 0 || v != uniq[i-1] {
			u = append(u, v)
		}
	}
	rank := map[int]int{}
	for i, v := range u {
		rank[v] = i
	}
	out := make([]int, len(colors))
	for i, c := range colors {
		out[i] = rank[c]
	}
	return out, len(u)
}

// search individualizes tied colour classes and returns the minimal
// serialization with its node order.
func (g *canonGraph) search(colors []int) (string, []int) {
	// Find the first non-singleton class (smallest colour value).
	classOf := map[int][]int{}
	for i, c := range colors {
		classOf[c] = append(classOf[c], i)
	}
	target := -1
	for c := 0; c < g.n; c++ {
		if len(classOf[c]) > 1 {
			target = c
			break
		}
	}
	if target == -1 {
		return g.serialize(colors)
	}
	bestSig := ""
	var bestOrder []int
	for _, node := range g.orbitRepresentatives(classOf[target], colors) {
		ind := make([]int, g.n)
		for i, c := range colors {
			// Individualize: give node a colour just below its
			// class, shifting everything else up.
			ind[i] = 2 * c
		}
		ind[node]--
		ind, _ = densifyInts(ind)
		refined := g.refine(ind)
		sig, order := g.search(refined)
		if bestSig == "" || sig < bestSig {
			bestSig, bestOrder = sig, order
		}
	}
	return bestSig, bestOrder
}

// orbitRepresentatives prunes a tied colour class to one representative per
// provable automorphism orbit. Without pruning, the k leaves of a fully
// symmetric parallel matching (k value joins wiring k identical left leaves
// to k identical right leaves — the most common generated query shape) force
// a k! search.
//
// The certificate is deliberately narrow and sound: nodes c and c' are
// merged only when both are childless, have exactly one value-join partner
// each, the partners are distinct childless nodes with exactly one partner,
// c and c' share a tree parent, and the partners share a tree parent. Under
// those conditions the transposition (c c')(p_c p_c') maps every edge of the
// graph to an edge, i.e. it is an automorphism, so the two individualization
// branches produce identical canonical forms and one can be skipped.
func (g *canonGraph) orbitRepresentatives(class []int, colors []int) []int {
	reps := []int{class[0]}
	for _, c := range class[1:] {
		merged := false
		for _, r := range reps {
			if g.swappable(r, c, colors) {
				merged = true
				break
			}
		}
		if !merged {
			reps = append(reps, c)
		}
	}
	return reps
}

func (g *canonGraph) swappable(a, b int, colors []int) bool {
	if len(g.kids[a]) != 0 || len(g.kids[b]) != 0 {
		return false
	}
	if len(g.vj[a]) != 1 || len(g.vj[b]) != 1 {
		return false
	}
	pa, pb := g.vj[a][0], g.vj[b][0]
	if pa == pb {
		return false // a fan: the partner cannot be swapped with itself
	}
	if len(g.vj[pa]) != 1 || len(g.vj[pb]) != 1 {
		return false
	}
	if len(g.kids[pa]) != 0 || len(g.kids[pb]) != 0 {
		return false
	}
	if g.parent[a] != g.parent[b] || g.parent[pa] != g.parent[pb] {
		return false
	}
	// The swap must also respect the current colouring of the partners
	// (a and b are same-colour by construction).
	return colors[pa] == colors[pb]
}

// serialize renders the graph under a discrete colouring (total order).
func (g *canonGraph) serialize(colors []int) (string, []int) {
	order := make([]int, g.n) // position -> node
	pos := make([]int, g.n)   // node -> position
	for i, c := range colors {
		order[c] = i
		pos[i] = c
	}
	var sb strings.Builder
	for p := 0; p < g.n; p++ {
		node := order[p]
		par := -1
		if g.parent[node] >= 0 {
			par = pos[g.parent[node]]
		}
		partners := make([]int, len(g.vj[node]))
		for i, q := range g.vj[node] {
			partners[i] = pos[q]
		}
		sort.Ints(partners)
		fmt.Fprintf(&sb, "%d:s%d,p%d,vj%v;", p, g.side[node], par, partners)
	}
	return sb.String(), order
}
