package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/relation"
	"repro/internal/sym"
	"repro/internal/xmldoc"
)

// Stage-2 evaluation is template-sharded: each new template is assigned to
// the currently least-loaded shard (lowest shard id on ties — round-robin
// while no template has ever been reclaimed), and each shard owns every
// piece of mutable per-template state — the query relations RT, their hash
// indexes, the view cache entries of the strings it owns, and the phase
// stats. Unregistering a template frees its shard slot, and because
// assignment always fills the emptiest shard first, subscription churn
// compacts the assignment instead of skewing it. Workers therefore share no
// mutable data during a Process call: the join state and the current witness
// are read-only inputs, and each worker evaluates only its own shard's
// templates. Matches from all shards are merged under a total order
// (sortMatches), so the output is identical for every worker count,
// including Workers = 1.

// shard is one unit of Stage-2 parallelism.
type shard struct {
	id int
	//mmqjp:shardowned
	templates []*Template // owned templates, in registration order

	//mmqjp:shardowned
	rt map[TemplateID]*relation.Relation // RT per owned template
	//mmqjp:shardowned
	rtIndex map[TemplateID]*relation.Index // index on RT var columns
	//mmqjp:shardowned
	rtDirty map[TemplateID]bool

	// cache holds the Section-5 RL slices of the strings this shard owns
	// (shardOfSym); ownership is stable, so Algorithm-5 maintenance
	// and lookups always land on the same shard.
	//
	//mmqjp:shardowned
	cache *ViewCache

	//mmqjp:shardowned
	stats Stats // Stage-2 phase timings and plan counts for this shard
}

func newShard(id, cacheCapacity int) *shard {
	return &shard{
		id:      id,
		rt:      map[TemplateID]*relation.Relation{},
		rtIndex: map[TemplateID]*relation.Index{},
		rtDirty: map[TemplateID]bool{},
		cache:   NewViewCache(cacheCapacity),
	}
}

// assignShard picks the home shard of a newly created template — the shard
// currently owning the fewest templates, lowest id on ties — and records the
// assignment. With no churn this degenerates to round-robin; under churn it
// refills reclaimed slots, keeping the shards balanced.
//
//mmqjp:shardaccess registration-quiesced; assignment happens inside Register
func (p *Processor) assignShard(t *Template) *shard {
	best := p.shards[0]
	for _, sh := range p.shards[1:] {
		if len(sh.templates) < len(best.templates) {
			best = sh
		}
	}
	p.tmplShard[t.ID] = best.id
	return best
}

// shardOf returns the shard owning a template.
func (p *Processor) shardOf(t *Template) *shard {
	return p.shards[p.tmplShard[t.ID]]
}

// shardOfSym returns the shard owning an interned string's view-cache entry
// (FNV-1a over the 4 id bytes). Symbol ids are stable for the process
// lifetime, so ownership is stable across documents; it need not be stable
// across processes — view caches are never snapshotted.
func (p *Processor) shardOfSym(id sym.ID) *shard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	u := uint32(id)
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= (u >> (8 * i)) & 0xff
		h *= 16777619
	}
	return p.shards[h%uint32(len(p.shards))]
}

// runShards invokes f once per shard, concurrently when more than one shard
// is configured. f must touch only its shard's state plus read-only inputs.
func (p *Processor) runShards(f func(*shard)) {
	if len(p.shards) == 1 {
		f(p.shards[0])
		return
	}
	var wg sync.WaitGroup
	for _, sh := range p.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			f(sh)
		}(sh)
	}
	wg.Wait()
}

// rtAtom returns the RT atom of an owned template, (re)building its index
// when the relation changed since the last document.
func (sh *shard) rtAtom(t *Template) relation.Atom {
	rt := sh.rt[t.ID]
	vcols := make([]string, t.N)
	vars := make([]string, 0, t.N+2)
	vars = append(vars, "qid")
	for i := 0; i < t.N; i++ {
		vcols[i] = fmt.Sprintf("v%d", i)
		vars = append(vars, vcols[i])
	}
	vars = append(vars, "wl")
	if sh.rtDirty[t.ID] || sh.rtIndex[t.ID] == nil {
		sh.rtIndex[t.ID] = rt.BuildIndex(vcols...)
		sh.rtDirty[t.ID] = false
	}
	return relation.Atom{Name: "RT", Rel: rt, Vars: vars, Idx: sh.rtIndex[t.ID], IdxVars: vcols}
}

// evalTemplates fans Stage-2 template evaluation out over the shards and
// merges the matches deterministically.
func (p *Processor) evalTemplates(w *CurrentWitness, d *xmldoc.Document) []Match {
	if len(p.templateList) == 0 {
		return nil
	}
	var pre *stage2Shared
	if p.cfg.ViewMaterialization {
		pre = p.prepareViewMat(w)
		if pre == nil {
			return nil
		}
	}
	// The intra-template splitter (split.go) only spins up its steal
	// barrier on documents where some template is already split-active:
	// cold documents keep the exact share-nothing shape above, and a
	// template crossing the threshold starts splitting on the next
	// document.
	var run *splitRun
	if len(p.shards) > 1 && p.splitThreshold() >= 0 && p.anySplitActive() {
		run = newSplitRun(len(p.shards))
	}
	results := make([][]Match, len(p.shards))
	p.runShards(func(sh *shard) {
		if pre != nil {
			results[sh.id] = p.evalShardViewMat(sh, w, d, pre, run)
		} else {
			results[sh.id] = p.evalShardBasic(sh, w, d, run)
		}
		if run != nil {
			run.finish(sh)
		}
	})
	var out []Match
	for _, r := range results {
		out = append(out, r...)
	}
	sortMatches(out)
	return out
}

// stage2Shared carries the cross-shard inputs of the Section-5 path,
// computed once per document and read-only during shard evaluation: the
// common string set STR, the shared left/right views RL and RR, and the
// per-document fan-out of RL used for plan choice.
type stage2Shared struct {
	syms   []sym.ID
	seen   map[sym.ID]bool
	rl     *relation.Relation
	rr     *relation.Relation
	perDoc map[xmldoc.DocID]int

	// rvj is the value-join pair relation (docid, nodeL, nodeR, strVal)
	// of the current document, needed only by RT-driven templates. It is
	// built on first use and shared across shards — the computation is
	// identical for every shard, so duplicating it per worker would burn
	// the parallel speedup.
	rvjOnce sync.Once
	rvj     *relation.Relation
}

// sharedRvj returns the document's value-join pair relation, computing it
// exactly once across all shards. The build cost is attributed to the
// shard that happened to get there first.
//
//mmqjp:nondet wall-clock stats timing (output-invisible)
//mmqjp:shardaccess called by the evaluating worker with its own shard (cost attribution)
func (pre *stage2Shared) sharedRvj(p *Processor, w *CurrentWitness, sh *shard) *relation.Relation {
	pre.rvjOnce.Do(func() {
		t0 := time.Now()
		var ar relation.Arena
		rvj := relation.New("docid", "nodeL", "nodeR", "strVal")
		for _, row := range w.RdocW.Rows {
			for _, ri := range p.state.rdocBySym[row[1].SymID()] {
				dt := p.state.Rdoc.Rows[ri]
				ar.Insert(rvj, dt[0], dt[1], row[0], dt[2])
			}
		}
		pre.rvj = rvj
		sh.stats.Rvj += time.Since(t0)
	})
	return pre.rvj
}

// prepareViewMat computes the shared prefix of Algorithm 4. The per-string
// RL slices are computed by the shard owning each string (hitting that
// shard's cache), in parallel; the union is concatenated in sorted-symbol
// order, so its row order is independent of the worker count (symbol ids
// are process-global, so the order is also identical for every engine
// configuration within a process — only intermediate row order depends on
// it, the output leaves through sortMatches regardless). Returns nil when
// no string is shared with the join state (no template can match).
//
//mmqjp:nondet wall-clock stats timing (output-invisible)
//mmqjp:shardaccess per-shard closures run on the owning shard's worker
func (p *Processor) prepareViewMat(w *CurrentWitness) *stage2Shared {
	// STR: distinct string values common to RdocW and Rdoc (line 2).
	t0 := time.Now()
	var syms []sym.ID
	seen := map[sym.ID]bool{}
	for _, row := range w.RdocW.Rows {
		id := row[1].SymID()
		if !seen[id] && p.state.HasSym(id) {
			seen[id] = true
			syms = append(syms, id)
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	p.stats.Rvj += time.Since(t0)
	if len(syms) == 0 {
		return nil
	}

	// RL slices (lines 3-7), sharded by string ownership. Ownership is
	// resolved once on the coordinator so workers neither rescan nor
	// rehash the full symbol list.
	ownedIdx := make([][]int, len(p.shards))
	for i, id := range syms {
		sh := p.shardOfSym(id)
		ownedIdx[sh.id] = append(ownedIdx[sh.id], i)
	}
	slices := make([]*relation.Relation, len(syms))
	p.runShards(func(sh *shard) {
		t := time.Now()
		for _, i := range ownedIdx[sh.id] {
			id := syms[i]
			slice, ok := sh.cache.Get(id)
			if !ok {
				slice = p.state.SliceEL(id)
				sh.cache.Put(id, slice)
			}
			slices[i] = slice
		}
		sh.stats.RL += time.Since(t)
	})
	t1 := time.Now()
	rl := relation.New("docid", "var1", "var2", "node1", "node2", "strVal")
	for _, slice := range slices {
		rl.UnionInPlace(slice)
	}
	p.stats.RL += time.Since(t1)

	// RR: σ_strVal∈STR(RdocW) ⋈ RbinW on node2 (line 8).
	t2 := time.Now()
	symOf := make(map[int64]sym.ID, w.RdocW.Len())
	for _, row := range w.RdocW.Rows {
		symOf[row[0].I] = row[1].SymID()
	}
	rr := relation.New("var1", "var2", "node1", "node2", "strVal")
	for _, row := range w.RbinW.Rows {
		id, ok := symOf[row[3].I]
		if !ok || !seen[id] {
			continue
		}
		w.arena.Insert(rr, row[0], row[1], row[2], row[3], relation.Sym(id))
	}
	w.rrSlices = rr
	p.stats.RR += time.Since(t2)

	// Per-document fan-out of the shared left view, for plan choice.
	perDoc := map[xmldoc.DocID]int{}
	docidCol := rl.Schema.Col("docid")
	for _, row := range rl.Rows {
		perDoc[xmldoc.DocID(row[docidCol].I)]++
	}
	return &stage2Shared{syms: syms, seen: seen, rl: rl, rr: rr, perDoc: perDoc}
}

// evalShardBasic implements Algorithm 1 over one shard's templates: per
// template, evaluate the conjunctive query CQ_T over the witness relations.
// The value-join pairs (the Rdoc ⋈ RdocW core) are recomputed per template
// from the incremental string index — no sharing across templates, which is
// precisely what the Section-5 optimization adds.
//
//mmqjp:nondet wall-clock stats timing (output-invisible)
//mmqjp:shardaccess Stage-2 evaluation invoked on the owning shard's worker
func (p *Processor) evalShardBasic(sh *shard, w *CurrentWitness, d *xmldoc.Document, run *splitRun) []Match {
	var out []Match
	var subs *docSubsets
	var ar relation.Arena
	for _, t := range sh.templates {
		tcq := time.Now()
		// Fresh per-template value-join pair relation
		// Rvj(docid, nodeL, nodeR, strVal). Recomputing it per template
		// is exactly the redundancy Section 5 removes. The rows are
		// arena-carved: they live only for this document's evaluation.
		rvj := relation.New("docid", "nodeL", "nodeR", "strVal")
		perDoc := map[xmldoc.DocID]int{}
		for _, row := range w.RdocW.Rows {
			for _, ri := range p.state.rdocBySym[row[1].SymID()] {
				dt := p.state.Rdoc.Rows[ri]
				ar.Insert(rvj, dt[0], dt[1], row[0], dt[2])
				perDoc[xmldoc.DocID(dt[0].I)]++
			}
		}
		sh.stats.CQ += time.Since(tcq)
		if rvj.Len() == 0 {
			continue
		}
		dec := p.choosePlan(t, perDoc)
		p.splitDecision(t, dec)
		split := run != nil && t.plan.splitActive
		out = append(out, p.runPlans(sh, t, dec,
			func() []Match {
				atoms := p.witnessAtoms(sh, t, w, rvj)
				if split {
					return p.splitWitness(run, sh, t, atoms, d)
				}
				return p.emit(t, relation.EvalConjunctiveOrdered(atoms, t.headVars()), d)
			},
			func() ([]Match, int) {
				if subs == nil {
					subs = newDocSubsets(p.state, w)
				}
				if split {
					return p.splitRTDriven(run, sh, t, w, rvj, subs, d)
				}
				return p.evalTemplateRTDriven(t, w, rvj, subs, d)
			})...)
	}
	return out
}

// evalTemplateWitnessBasic is the witness-driven plan of Algorithm 1 for one
// template: the interleaved conjunctive query over the per-template
// value-join pair relation, anchored structural edges and the indexed RT
// atom. Each value join is immediately followed by the structural edges
// anchoring its endpoints, walking up to the side roots, so every join is
// selective.
func (p *Processor) evalTemplateWitnessBasic(sh *shard, t *Template, w *CurrentWitness, rvj *relation.Relation, d *xmldoc.Document) []Match {
	rout := relation.EvalConjunctiveOrdered(p.witnessAtoms(sh, t, w, rvj), t.headVars())
	return p.emit(t, rout, d)
}

// witnessAtoms builds the witness-driven plan's atom list for one template:
// the per-template value-join pair atoms interleaved with their anchoring
// structural edges, the indexed RT atom last. It (re)builds the RT index
// when dirty, so it must run on the shard owning t — split chunk executors
// receive the finished list (split.go).
func (p *Processor) witnessAtoms(sh *shard, t *Template, w *CurrentWitness, rvj *relation.Relation) []relation.Atom {
	atoms := make([]relation.Atom, 0, 2*len(t.VJ)+t.N+2)
	emitted := map[[2]int]bool{}
	rootDone := map[Side]bool{}
	for k, e := range t.VJ {
		atoms = append(atoms, relation.Atom{
			Name: "Rvj", Rel: rvj,
			Vars: []string{"docid", nvar(e[0]), nvar(e[1]), svar(k)},
		})
		atoms = p.appendAnchors(atoms, t, w, e[0], Left, emitted, rootDone)
		atoms = p.appendAnchors(atoms, t, w, e[1], Right, emitted, rootDone)
	}
	return append(atoms, sh.rtAtom(t))
}

// evalShardViewMat implements the per-template tail of Algorithm 4 over one
// shard's templates, against the shared RL/RR views of pre.
//
//mmqjp:shardaccess Stage-2 evaluation invoked on the owning shard's worker
func (p *Processor) evalShardViewMat(sh *shard, w *CurrentWitness, d *xmldoc.Document, pre *stage2Shared, run *splitRun) []Match {
	var out []Match
	var subs *docSubsets
	for _, t := range sh.templates {
		dec := p.choosePlan(t, pre.perDoc)
		p.splitDecision(t, dec)
		split := run != nil && t.plan.splitActive
		var rvj *relation.Relation
		if dec.rtDriven || dec.explore {
			// The value-join pair relation is computed once per
			// document across all shards (sharedRvj) — the Section-5
			// sharing applies to this plan too. It is resolved before
			// the timed plan run so its one-time build cost lands in
			// Stats.Rvj, not in CQ or the RT plan's calibration. The
			// variable-pair subsets stay per shard: they memoize
			// lazily, so each shard materializes only the pairs its
			// own templates probe.
			rvj = pre.sharedRvj(p, w, sh)
			if subs == nil {
				subs = newDocSubsets(p.state, w)
			}
		}
		out = append(out, p.runPlans(sh, t, dec,
			func() []Match {
				atoms := p.viewMatAtoms(sh, t, w, pre.rl, pre.rr)
				if split {
					return p.splitWitness(run, sh, t, atoms, d)
				}
				rout := relation.EvalConjunctiveOrdered(atoms, t.headVars())
				return p.emit(t, rout, d)
			},
			func() ([]Match, int) {
				if split {
					return p.splitRTDriven(run, sh, t, w, rvj, subs, d)
				}
				return p.evalTemplateRTDriven(t, w, rvj, subs, d)
			})...)
	}
	return out
}

// sortMatches orders matches under a total order so the merged output is
// identical regardless of how templates are sharded across workers — or how
// queries are partitioned across routed engines. Ties are broken down to the
// binding vector; fully equal matches are interchangeable.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return matchLess(&ms[i], &ms[j]) })
}

// SortMatches applies the canonical total order to ms in place. It is the
// order every per-document match set leaves ConsumeStage1 in, exported so a
// partition router can merge N engines' relabeled streams by concatenating
// and re-sorting — landing on the exact single-engine byte order.
func SortMatches(ms []Match) { sortMatches(ms) }

func matchLess(a, b *Match) bool {
	if a.Query != b.Query {
		return a.Query < b.Query
	}
	if a.LeftDoc != b.LeftDoc {
		return a.LeftDoc < b.LeftDoc
	}
	if a.RightDoc != b.RightDoc {
		return a.RightDoc < b.RightDoc
	}
	if a.LeftRoot != b.LeftRoot {
		return a.LeftRoot < b.LeftRoot
	}
	if a.RightRoot != b.RightRoot {
		return a.RightRoot < b.RightRoot
	}
	at, bt := templateSig(a.Template), templateSig(b.Template)
	if at != bt {
		return at < bt
	}
	if len(a.Bindings) != len(b.Bindings) {
		return len(a.Bindings) < len(b.Bindings)
	}
	for i := range a.Bindings {
		if a.Bindings[i] != b.Bindings[i] {
			return a.Bindings[i] < b.Bindings[i]
		}
	}
	return false
}

// templateSig is the template tie-break key. The canonical signature — not
// Template.ID — because ids are allocation-ordered per processor: a template
// created earlier by an unrelated query on one engine can invert the
// relative id order another engine assigns, so ids cannot order matches
// consistently across partitions. Signatures are global. nil (a single-block
// match) sorts first, as the old -1 id sentinel did.
func templateSig(t *Template) string {
	if t == nil {
		return ""
	}
	return t.Sig
}
