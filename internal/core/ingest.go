package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/xmldoc"
)

// Continuous ingestion: Ingest generalizes the batch-scoped Stage-1/Stage-2
// overlap of ProcessBatchFunc (pipeline.go) into a persistent subsystem — a
// long-lived pool of Stage-1 workers plus one coordinator goroutine fed by a
// bounded admission queue. Callers Submit documents one at a time from any
// number of goroutines; admission order (the order Submit calls win the
// admission lock) is the serial order: Stage 1 of admitted documents runs
// concurrently in the workers while the coordinator applies Stage 2, the
// Algorithm-2 state merge, and window GC strictly in admission order.
// Match output is therefore byte-identical to calling Process once per
// document in admission order, for every Depth/Workers setting.
//
// Admission is bounded: at most Depth+1 documents may be admitted but not
// yet consumed (Depth buffered plus the one in the coordinator's hands), so
// a slow Stage 2 pushes back on publishers instead of queueing unboundedly.
//
// Registration is NOT safe concurrently with in-flight Stage-1 work (the
// workers read the shared NFA and pattern extraction structures that
// Register/Unregister mutate). Callers that mix registration with a live
// Ingest must funnel it through Barrier, which drains the pipeline and runs
// the function on the coordinator while admission is held closed — the
// engine facade routes Subscribe/Unsubscribe this way.

// ErrIngestClosed is returned by Submit, Barrier and Flush after Close.
var ErrIngestClosed = errors.New("core: ingest pipeline closed")

// Stage1Result is an opaque in-flight document: the value a Backend's
// RunStage1 hands to its ConsumeStage1. Each implementation defines its own
// concrete type; results never cross backends.
type Stage1Result any

// Backend is the two-phase processing surface the ingest pipeline (and the
// batch runner, RunBatch) drives: an order-insensitive Stage 1 that may run
// concurrently in workers, and an order-sensitive consume step applied on
// the coordinator strictly in admission order. *Processor implements it
// directly; internal/router's Router implements it by fanning Stage 1
// across all partitions and merging the consumed match streams — which is
// how the PR 4 admission/barrier machinery below becomes cross-partition
// sequencing without modification.
type Backend interface {
	// RunStage1 performs the document-local, state-free half of document
	// processing. Implementations must allow concurrent calls for
	// different documents (absent concurrent registration).
	RunStage1(stream string, d *xmldoc.Document) Stage1Result
	// ConsumeStage1 applies the order-sensitive tail — Stage-2 evaluation,
	// state merge, window GC — to a result of this backend's RunStage1.
	// Calls must be made in admission order, never concurrently.
	ConsumeStage1(r Stage1Result) []Match
}

// IngestConfig sizes an Ingest.
type IngestConfig struct {
	// Depth bounds admission: at most Depth+1 documents may be admitted
	// ahead of the in-order Stage-2 consumption (<1 is treated as 1, which
	// still overlaps one document's Stage 1 with the previous document's
	// Stage 2).
	Depth int
	// Workers is the Stage-1 worker pool size (<1 selects Depth).
	Workers int
	// Lock, when set, is held around each document's Stage-2 consumption
	// and delivery. The engine facade passes its writer lock so a consume
	// excludes the facade's readers and synchronous writers exactly like a
	// serial Publish does.
	Lock sync.Locker
}

// Ingest is a continuous asynchronous ingest pipeline over one Backend.
// All methods are safe for concurrent use.
type Ingest struct {
	b    Backend
	lock sync.Locker

	// admit serializes admission (and Close): the order goroutines win it
	// is the pipeline's serial document order.
	admit sync.Mutex
	//mmqjp:guardedby in.admit
	closed bool

	// coordQ carries jobs to the coordinator in admission order and its
	// capacity is the admission bound; workQ fans document jobs out to the
	// Stage-1 workers. Every document job is sent to both.
	coordQ chan *ingestJob
	workQ  chan *ingestJob
	done   chan struct{} // closed when the coordinator exits

	// stalls counts Submit calls that found the admission queue full and
	// had to block (backpressure made visible to observability).
	stalls atomic.Int64
}

type ingestJob struct {
	stream  string
	doc     *xmldoc.Document
	res     chan Stage1Result
	deliver func(matches []Match)

	// ctl marks a barrier job: run on the coordinator after every prior
	// job's consumption, with admission held closed by the submitter.
	ctl     func()
	ctlDone chan struct{}
}

// NewIngest starts the worker pool and coordinator for b. The caller owns
// the pipeline and must Close it to stop the goroutines. Direct Process or
// ProcessBatch calls on b are only safe while the pipeline is live if they
// are mutually excluded with the coordinator's consumption — by sharing
// IngestConfig.Lock, as the engine facade does with its writer lock —
// since both sides mutate the join state; the in-flight Stage-1 work
// itself never touches it and needs no exclusion. Without a shared lock,
// quiesce with Flush first.
func NewIngest(b Backend, cfg IngestConfig) *Ingest {
	depth := cfg.Depth
	if depth < 1 {
		depth = 1
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = depth
	}
	i := &Ingest{
		b:      b,
		lock:   cfg.Lock,
		coordQ: make(chan *ingestJob, depth),
		workQ:  make(chan *ingestJob, depth+1),
		done:   make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		go i.worker()
	}
	go i.coordinate()
	return i
}

func (i *Ingest) worker() {
	for j := range i.workQ {
		j.res <- i.b.RunStage1(j.stream, j.doc)
	}
}

func (i *Ingest) coordinate() {
	defer close(i.done)
	for j := range i.coordQ {
		if j.ctl != nil {
			// Every prior job has been consumed and admission is held
			// closed by the barrier's submitter: no Stage-1 work is in
			// flight while ctl runs.
			j.ctl()
			close(j.ctlDone)
			continue
		}
		r := <-j.res
		if i.lock != nil {
			i.lock.Lock()
		}
		ms := i.b.ConsumeStage1(r)
		if j.deliver != nil {
			j.deliver(ms)
		}
		if i.lock != nil {
			i.lock.Unlock()
		}
	}
}

// Submit admits one document. It blocks while the pipeline is at its
// admission bound (backpressure) and returns once the document is admitted;
// Stage 1 runs in the worker pool and deliver — which may be nil — is
// called on the coordinator goroutine, in admission order, after the
// document's Stage 2, state merge, and GC have completed (under
// IngestConfig.Lock when configured). deliver may call Process on the same
// processor (composition cascades do) but must not Submit, Register,
// Unregister, or take the configured Lock itself.
func (i *Ingest) Submit(stream string, d *xmldoc.Document, deliver func(matches []Match)) error {
	j := &ingestJob{stream: stream, doc: d, res: make(chan Stage1Result, 1), deliver: deliver}
	i.admit.Lock()
	defer i.admit.Unlock()
	if i.closed {
		return ErrIngestClosed
	}
	select {
	case i.coordQ <- j:
	default:
		// The admission queue is full: this Submit stalls until the
		// coordinator frees a slot. Counted, not avoided — backpressure is
		// the pipeline's bound doing its job.
		i.stalls.Add(1)
		i.coordQ <- j
	}
	i.workQ <- j
	return nil
}

// QueueDepth reports the number of admitted-but-unconsumed documents (an
// instantaneous sample of the admission queue; for gauges).
func (i *Ingest) QueueDepth() int { return len(i.coordQ) }

// Stalls reports how many Submit calls have blocked on a full admission
// queue since the pipeline started.
func (i *Ingest) Stalls() int64 { return i.stalls.Load() }

// Barrier runs fn on the coordinator after every previously admitted
// document has been fully consumed, holding admission closed until fn
// returns — so no Stage-1 work is in flight while fn runs and no document
// admitted after the barrier is processed before it. This is the safe point
// for Register/Unregister against a live pipeline.
func (i *Ingest) Barrier(fn func()) error {
	j := &ingestJob{ctl: fn, ctlDone: make(chan struct{})}
	i.admit.Lock()
	defer i.admit.Unlock()
	if i.closed {
		return ErrIngestClosed
	}
	i.coordQ <- j
	<-j.ctlDone
	return nil
}

// Flush blocks until every document admitted before the call has been fully
// processed and delivered.
func (i *Ingest) Flush() error { return i.Barrier(func() {}) }

// Close drains every admitted document, delivers its matches, and stops the
// workers and the coordinator. Further Submit/Barrier/Flush calls return
// ErrIngestClosed. Close is idempotent and safe to call concurrently; every
// call blocks until the drain completes.
func (i *Ingest) Close() {
	i.admit.Lock()
	if !i.closed {
		i.closed = true
		close(i.workQ)
		close(i.coordQ)
	}
	i.admit.Unlock()
	<-i.done
}

// Wait blocks until the coordinator has exited (i.e. a Close elsewhere has
// drained the pipeline). It is the synchronization point for callers that
// lost a Submit/Barrier race with Close and fall back to direct calls.
func (i *Ingest) Wait() { <-i.done }
