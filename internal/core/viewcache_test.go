package core

import (
	"fmt"
	"testing"

	"repro/internal/relation"
	"repro/internal/sym"
)

func sliceOf(vals ...int64) *relation.Relation {
	r := relation.New("docid", "var1", "var2", "node1", "node2", "strVal")
	for _, v := range vals {
		r.Insert(relation.Int(v), relation.Int(0), relation.Int(0), relation.Int(0), relation.Int(0), relation.Sym(sym.Intern("s")))
	}
	return r
}

func TestViewCachePutGet(t *testing.T) {
	c := NewViewCache(0)
	if _, ok := c.Get(sym.Intern("a")); ok {
		t.Error("empty cache hit")
	}
	c.Put(sym.Intern("a"), sliceOf(1))
	got, ok := c.Get(sym.Intern("a"))
	if !ok || got.Len() != 1 {
		t.Errorf("get = %v, %v", got, ok)
	}
	hits, misses, _ := c.HitRate()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestViewCacheLRUEviction(t *testing.T) {
	c := NewViewCache(2)
	c.Put(sym.Intern("a"), sliceOf(1))
	c.Put(sym.Intern("b"), sliceOf(2))
	c.Get(sym.Intern("a")) // a is now more recent than b
	c.Put(sym.Intern("c"), sliceOf(3))
	if _, ok := c.Get(sym.Intern("b")); ok {
		t.Error("b survived eviction, want LRU evicted")
	}
	if _, ok := c.Get(sym.Intern("a")); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.Get(sym.Intern("c")); !ok {
		t.Error("c missing")
	}
	_, _, ev := c.HitRate()
	if ev != 1 {
		t.Errorf("evictions = %d", ev)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestViewCacheReplace(t *testing.T) {
	c := NewViewCache(2)
	c.Put(sym.Intern("a"), sliceOf(1))
	c.Put(sym.Intern("a"), sliceOf(1, 2))
	got, _ := c.Get(sym.Intern("a"))
	if got.Len() != 2 {
		t.Errorf("replace did not take: %d rows", got.Len())
	}
	if c.Len() != 1 {
		t.Errorf("len = %d after replace", c.Len())
	}
}

func TestViewCacheClear(t *testing.T) {
	c := NewViewCache(0)
	for i := 0; i < 10; i++ {
		c.Put(sym.Intern(fmt.Sprint(i)), sliceOf(int64(i)))
	}
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("len = %d after clear", c.Len())
	}
	if _, ok := c.Get(sym.Intern("3")); ok {
		t.Error("entry survived clear")
	}
}

func TestViewCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewViewCache(0)
	for i := 0; i < 1000; i++ {
		c.Put(sym.Intern(fmt.Sprint(i)), sliceOf(int64(i)))
	}
	if c.Len() != 1000 {
		t.Errorf("len = %d", c.Len())
	}
	_, _, ev := c.HitRate()
	if ev != 0 {
		t.Errorf("evictions = %d", ev)
	}
}
