package core

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/sym"
	"repro/internal/xmldoc"
)

// Durability: the join state is exactly what incremental maintenance has
// paid for — re-deriving it after a restart would mean replaying every
// in-window document. StateSnapshot is its portable form: the witness
// relations with canonical-variable columns resolved to their names (interned
// symbol ids are an in-process artifact; a restored processor re-interns
// under its own symbol table), the document timestamp/arrival-order maps that
// drive window semantics, and (when document retention is on) the retained
// documents as XML text.
//
// A snapshot is consistent only when taken at a quiescent point — no Process
// in flight, no pipeline Stage-1 work running. The engine facade takes it at
// an ingest barrier, which makes the snapshot an exact admission-order
// prefix: every admitted document is fully merged, no later document has
// touched the state.
//
// Registrations are NOT part of StateSnapshot: queries are re-registered
// from source text by the caller before RestoreState, which rebuilds RT
// relations, templates, patterns and the shared NFA exactly as original
// registration did. RestoreState then re-interns the witness rows, so the
// restored processor is internally consistent even though its symbol ids
// differ from the snapshotting process's.

// SnapDoc is one in-window document's window metadata, in arrival order.
type SnapDoc struct {
	ID  int64 `json:"id"`
	TS  int64 `json:"ts"`
	Seq int64 `json:"seq"`
}

// SnapBin is one Rbin row with symbolic variable names.
type SnapBin struct {
	Doc   int64  `json:"doc"`
	Var1  string `json:"v1"`
	Var2  string `json:"v2"`
	Node1 int64  `json:"n1"`
	Node2 int64  `json:"n2"`
}

// SnapRdoc is one Rdoc row.
type SnapRdoc struct {
	Doc  int64  `json:"doc"`
	Node int64  `json:"node"`
	Str  string `json:"s"`
}

// SnapRoot is one Rroot row with a symbolic variable name.
type SnapRoot struct {
	Doc  int64  `json:"doc"`
	Var  string `json:"v"`
	Node int64  `json:"node"`
}

// SnapRetained is one retained document, serialized as XML.
type SnapRetained struct {
	ID  int64  `json:"id"`
	TS  int64  `json:"ts"`
	XML string `json:"xml"`
}

// StateSnapshot is the portable form of the join state. See the package
// comment above for the consistency contract.
type StateSnapshot struct {
	NextSeq  int64          `json:"next_seq"`
	MaxDoc   int64          `json:"max_doc"`
	Docs     []SnapDoc      `json:"docs,omitempty"`
	Rbin     []SnapBin      `json:"rbin,omitempty"`
	Rdoc     []SnapRdoc     `json:"rdoc,omitempty"`
	Rroot    []SnapRoot     `json:"rroot,omitempty"`
	Retained []SnapRetained `json:"retained,omitempty"`
}

// ExportState captures the join state. Like Stats, it must not run
// concurrently with Process/ProcessBatch (the engine facade serializes it
// behind an ingest barrier).
func (p *Processor) ExportState() StateSnapshot {
	s := p.state
	out := StateSnapshot{NextSeq: s.nextSeq, MaxDoc: int64(s.maxDoc)}
	for _, id := range s.docIDs {
		out.Docs = append(out.Docs, SnapDoc{ID: int64(id), TS: int64(s.RdocTS[id]), Seq: s.seq[id]})
	}
	for _, t := range s.Rbin.Rows {
		out.Rbin = append(out.Rbin, SnapBin{
			Doc: t[0].I, Var1: p.syms.name(t[1].I), Var2: p.syms.name(t[2].I),
			Node1: t[3].I, Node2: t[4].I,
		})
	}
	for _, t := range s.Rdoc.Rows {
		// Interned symbols are process-scoped, so the snapshot carries the
		// original string: snapshot bytes are identical to what a
		// string-keyed engine would write, and ids never escape to disk.
		out.Rdoc = append(out.Rdoc, SnapRdoc{Doc: t[0].I, Node: t[1].I, Str: sym.Name(t[2].SymID())})
	}
	for _, t := range s.Rroot.Rows {
		out.Rroot = append(out.Rroot, SnapRoot{Doc: t[0].I, Var: p.syms.name(t[1].I), Node: t[2].I})
	}
	if len(s.docs) > 0 {
		ids := make([]int64, 0, len(s.docs))
		//mmqjp:unordered ids are sorted before the snapshot is emitted
		for id := range s.docs {
			ids = append(ids, int64(id))
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			d := s.docs[xmldoc.DocID(id)]
			out.Retained = append(out.Retained, SnapRetained{
				ID: id, TS: int64(d.Timestamp), XML: d.XMLText(),
			})
		}
	}
	return out
}

// RestoreState rebuilds the join state from a snapshot. The processor must
// hold the restored subscription set (queries re-registered from source) and
// must not have processed any document yet; variable names are re-interned
// under this processor's symbol table, so the restored state joins against
// the re-registered RT relations exactly as the original state did. The
// incremental indexes are rebuilt in row order — the same order GC's rebuild
// uses — so subsequent match output is deterministic.
func (p *Processor) RestoreState(snap StateSnapshot) error {
	s := p.state
	if s.nextSeq != 0 || len(s.docIDs) != 0 {
		return fmt.Errorf("core: RestoreState on a processor that has already processed %d documents", len(s.docIDs))
	}
	for _, d := range snap.Docs {
		id := xmldoc.DocID(d.ID)
		s.docIDs = append(s.docIDs, id)
		s.RdocTS[id] = xmldoc.Timestamp(d.TS)
		s.seq[id] = d.Seq
	}
	for _, r := range snap.Rbin {
		s.Rbin.Insert(relation.Int(r.Doc),
			relation.Int(p.syms.intern(r.Var1)), relation.Int(p.syms.intern(r.Var2)),
			relation.Int(r.Node1), relation.Int(r.Node2))
	}
	for _, r := range snap.Rdoc {
		s.Rdoc.Insert(relation.Int(r.Doc), relation.Int(r.Node), relation.Sym(sym.Intern(r.Str)))
	}
	for _, r := range snap.Rroot {
		s.Rroot.Insert(relation.Int(r.Doc), relation.Int(p.syms.intern(r.Var)), relation.Int(r.Node))
	}
	for i, t := range s.Rdoc.Rows {
		s.rdocBySym[t[2].SymID()] = append(s.rdocBySym[t[2].SymID()], i)
	}
	for i, t := range s.Rbin.Rows {
		k := binKey{xmldoc.DocID(t[0].I), xmldoc.NodeID(t[4].I)}
		s.rbinByNode2[k] = append(s.rbinByNode2[k], i)
		vk := [2]int64{t[1].I, t[2].I}
		s.rbinByVars[vk] = append(s.rbinByVars[vk], i)
	}
	for _, r := range snap.Retained {
		d, err := xmldoc.ParseString(r.XML, xmldoc.DocID(r.ID), xmldoc.Timestamp(r.TS))
		if err != nil {
			return fmt.Errorf("core: restore retained document %d: %w", r.ID, err)
		}
		s.docs[d.ID] = d
	}
	s.nextSeq = snap.NextSeq
	s.maxDoc = xmldoc.DocID(snap.MaxDoc)
	return nil
}

// MaxDocID returns the largest document id the join state has ever seen
// (surviving GC); id allocators resume above it after a restore.
func (p *Processor) MaxDocID() int64 { return int64(p.state.maxDoc) }

// SkipQueryID burns one query id, leaving a permanent tombstone slot. A
// restore uses it to re-register surviving queries at their original ids:
// ids of queries unsubscribed before the snapshot are skipped, so every
// surviving subscription keeps the id its owner holds.
func (p *Processor) SkipQueryID() {
	p.queries = append(p.queries, nil)
}
