package core

import (
	"hash/fnv"

	"repro/internal/xscl"
)

// Subscription partitioning (the engine-of-engines router tier,
// internal/router) assigns each query to one of N processors by hashing a
// canonical key of the state it shares: the canonical template signature for
// join queries, the canonical pattern key for single-block queries. Queries
// that would share a template (and thus join state, RT rows and view-cache
// entries) on a single processor land on the same partition, so partitioning
// splits the template population rather than duplicating it. The key
// computation reuses the exact canonicalization pipeline Register runs —
// BuildJoinGraph → Minor → Canonicalize — so the key agrees with template
// identity by construction.

// PartitionKey returns the canonical partitioning key of q: two queries get
// equal keys exactly when a single processor would register them on the same
// template (join queries) or the same shared pattern (single-block queries).
// The error cases are the same analysis errors Register would report.
func PartitionKey(q *xscl.Query) (string, error) {
	if q.Op == xscl.OpNone {
		norm, _ := q.Left.NormalizedFullyBound()
		return "single|" + norm.CanonicalKey(), nil
	}
	jg, err := BuildJoinGraph(q)
	if err != nil {
		return "", err
	}
	sig, _ := Canonicalize(jg.Minor())
	return sig, nil
}

// PartitionOf hashes a PartitionKey onto one of n partitions (FNV-1a, the
// same family shardOfString uses for view-cache ownership).
func PartitionOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}
