package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sequential"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

func mkTagged(id xmldoc.DocID, ts xmldoc.Timestamp, tag, val string) *xmldoc.Document {
	b := xmldoc.NewBuilder(id, ts, tag)
	b.SetText(0, val)
	return b.Build()
}

func TestCountWindowSemantics(t *testing.T) {
	// ROWS 2: the right event must arrive within 2 stream positions of
	// the left event, regardless of timestamps.
	for _, cfg := range []Config{{}, {ViewMaterialization: true}, {Plan: PlanRTDriven}} {
		p := NewProcessor(cfg)
		p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, ROWS 2} S//b->y"))

		// a, then two unrelated events, then b: 3 positions apart -> no.
		p.Process("S", mkTagged(1, 10, "a", "v"))
		p.Process("S", mkTagged(2, 20, "z", "q"))
		p.Process("S", mkTagged(3, 30, "z", "q"))
		if ms := p.Process("S", mkTagged(4, 40, "b", "v")); len(ms) != 0 {
			t.Errorf("cfg=%+v: 3 positions apart fired", cfg)
		}
		// a then immediately b: 1 position apart -> yes, even though the
		// timestamp gap is enormous.
		p.Process("S", mkTagged(5, 50, "a", "v"))
		if ms := p.Process("S", mkTagged(6, 99999, "b", "v")); len(ms) != 1 {
			t.Errorf("cfg=%+v: adjacent events did not fire: %d matches", cfg, len(ms))
		}
	}
}

func TestCountWindowGC(t *testing.T) {
	p := NewProcessor(Config{})
	p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, ROWS 5} S//b->y"))
	for i := 0; i < 200; i++ {
		// Identical timestamps: only the tuple window can expire state.
		p.Process("S", mkTagged(xmldoc.DocID(i+1), 7, "a", "v"))
	}
	if n := p.State().NumDocs(); n > 80 {
		t.Errorf("state holds %d docs; count-window GC ineffective", n)
	}
	// The most recent a's are still in the window.
	if ms := p.Process("S", mkTagged(999, 7, "b", "v")); len(ms) != 5 {
		t.Errorf("matches = %d, want 5 (ROWS 5)", len(ms))
	}
}

func TestCountWindowSequentialAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := []*xscl.Query{
		xscl.MustParse("S//item->r[./a->x] FOLLOWED BY{x=y, ROWS 3} S//item->r2[./a->y]"),
		xscl.MustParse("S//item->r[./b->x] JOIN{x=y, ROWS 2} S//item->r2[./a->y]"),
		xscl.MustParse("S//item->r[./a->x] FOLLOWED BY{x=y, 15} S//item->r2[./b->y]"),
	}
	p := NewProcessor(Config{})
	pv := NewProcessor(Config{ViewMaterialization: true})
	sp := sequential.NewProcessor()
	for _, q := range queries {
		p.MustRegister(q)
		pv.MustRegister(q)
		sp.MustRegister(q)
	}
	ts := xmldoc.Timestamp(0)
	for i := 0; i < 150; i++ {
		ts += xmldoc.Timestamp(rng.Intn(5))
		b := xmldoc.NewBuilder(xmldoc.DocID(i+1), ts, "item")
		if rng.Intn(2) == 0 {
			b.Element(0, "a", fmt.Sprintf("v%d", rng.Intn(3)))
		}
		if rng.Intn(2) == 0 {
			b.Element(0, "b", fmt.Sprintf("v%d", rng.Intn(3)))
		}
		d := b.Build()
		a := matchSet(p.Process("S", d))
		b2 := matchSet(pv.Process("S", d))
		c := seqMatchSet(sp.Process("S", d))
		if !reflect.DeepEqual(a, b2) || !reflect.DeepEqual(a, c) {
			t.Fatalf("doc %d: divergence\nbasic:   %v\nviewmat: %v\nseq:     %v",
				i+1, keys(a), keys(b2), keys(c))
		}
	}
}

func TestMixedWindowKindsShareTemplate(t *testing.T) {
	// A time-window and a count-window query with identical structure
	// share a template; the window check is per instance.
	p := NewProcessor(Config{})
	qTime := p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 5} S//b->y"))
	qRows := p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, ROWS 1} S//b->y"))
	if p.NumTemplates() != 1 {
		t.Fatalf("templates = %d", p.NumTemplates())
	}
	p.Process("S", mkTagged(1, 10, "a", "v"))
	p.Process("S", mkTagged(2, 11, "z", "q")) // pushes the a out of ROWS 1
	ms := p.Process("S", mkTagged(3, 12, "b", "v"))
	fired := map[QueryID]bool{}
	for _, m := range ms {
		fired[m.Query] = true
	}
	if !fired[qTime] {
		t.Errorf("time-window query should fire (delta 2 <= 5)")
	}
	if fired[qRows] {
		t.Errorf("ROWS 1 query fired at distance 2")
	}
}
