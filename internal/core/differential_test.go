package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/sequential"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// The differential test: on random workloads, the match sets of
//
//   - MMQJP (Algorithm 1),
//   - MMQJP with view materialization (Algorithm 4), with and without a
//     tight view-cache capacity, and
//   - the Sequential baseline (per-query nested loops over Stage-1
//     witnesses)
//
// must coincide. Matches are compared as sets of (query, leftDoc, rightDoc):
// MMQJP emits one match per RoutT row (template-node binding combination)
// while Sequential emits one per witness pair, so multiplicities may differ
// on patterns with non-template bound nodes; the (query, doc-pair) set is
// the invariant.

type matchKey struct {
	q          int64
	ldoc, rdoc int64
}

func matchSet(ms []Match) map[matchKey]bool {
	out := map[matchKey]bool{}
	for _, m := range ms {
		out[matchKey{int64(m.Query), int64(m.LeftDoc), int64(m.RightDoc)}] = true
	}
	return out
}

func seqMatchSet(ms []sequential.Match) map[matchKey]bool {
	out := map[matchKey]bool{}
	for _, m := range ms {
		out[matchKey{int64(m.Query), int64(m.LeftDoc), int64(m.RightDoc)}] = true
	}
	return out
}

// randomFlatDoc builds a two-level document with nLeaves leaves drawn from
// leafNames and values from a small domain (forcing value collisions).
func randomFlatDoc(rng *rand.Rand, id xmldoc.DocID, ts xmldoc.Timestamp, leafNames []string, domain int) *xmldoc.Document {
	b := xmldoc.NewBuilder(id, ts, "item")
	n := 1 + rng.Intn(len(leafNames))
	perm := rng.Perm(len(leafNames))
	for i := 0; i < n; i++ {
		b.Element(0, leafNames[perm[i]], fmt.Sprintf("val%d", rng.Intn(domain)))
	}
	return b.Build()
}

// randomDeepDoc builds a three-level document: intermediates m0..m2, each
// with leaves.
func randomDeepDoc(rng *rand.Rand, id xmldoc.DocID, ts xmldoc.Timestamp, domain int) *xmldoc.Document {
	b := xmldoc.NewBuilder(id, ts, "item")
	for m := 0; m < 2+rng.Intn(2); m++ {
		mid := b.Element(0, fmt.Sprintf("m%d", rng.Intn(3)), "")
		for l := 0; l < 1+rng.Intn(3); l++ {
			b.Element(mid, fmt.Sprintf("l%d", rng.Intn(4)), fmt.Sprintf("val%d", rng.Intn(domain)))
		}
	}
	return b.Build()
}

// randomFlatQuery builds a query joining k random leaves of the flat schema.
func randomFlatQuery(rng *rand.Rand, leafNames []string, maxK int, window int64, op string) *xscl.Query {
	k := 1 + rng.Intn(maxK)
	if k > len(leafNames) {
		k = len(leafNames)
	}
	lperm := rng.Perm(len(leafNames))[:k]
	rperm := rng.Perm(len(leafNames))[:k]
	lhs, rhs, pred := "S//item->v0", "S//item->w0", ""
	for i := 0; i < k; i++ {
		lhs += fmt.Sprintf("[.//%s->v%d]", leafNames[lperm[i]], i+1)
		rhs += fmt.Sprintf("[.//%s->w%d]", leafNames[rperm[i]], i+1)
		if pred != "" {
			pred += " AND "
		}
		pred += fmt.Sprintf("v%d=w%d", i+1, i+1)
	}
	return xscl.MustParse(fmt.Sprintf("%s %s{%s, %d} %s", lhs, op, pred, window, rhs))
}

// randomDeepQuery builds a query over the three-level schema, joining leaves
// under intermediates.
func randomDeepQuery(rng *rand.Rand, maxK int, window int64, op string) *xscl.Query {
	k := 1 + rng.Intn(maxK)
	side := func(pfx string) (string, []string) {
		s := fmt.Sprintf("S//item->%s0", pfx)
		var vars []string
		for i := 0; i < k; i++ {
			m := rng.Intn(3)
			l := rng.Intn(4)
			v := fmt.Sprintf("%s%d", pfx, i+1)
			s += fmt.Sprintf("[.//m%d[.//l%d->%s]]", m, l, v)
			vars = append(vars, v)
		}
		return s, vars
	}
	lhs, lv := side("v")
	rhs, rv := side("w")
	pred := ""
	for i := 0; i < k; i++ {
		if pred != "" {
			pred += " AND "
		}
		pred += fmt.Sprintf("%s=%s", lv[i], rv[i])
	}
	return xscl.MustParse(fmt.Sprintf("%s %s{%s, %d} %s", lhs, op, pred, window, rhs))
}

func runDifferentialTrial(t *testing.T, rng *rand.Rand, deep bool, trial int) {
	leafNames := []string{"a", "b", "c", "d", "e"}
	nQueries := 1 + rng.Intn(8)
	nDocs := 2 + rng.Intn(10)
	domain := 1 + rng.Intn(3)
	ops := []string{"FOLLOWED BY", "JOIN"}

	var queries []*xscl.Query
	for i := 0; i < nQueries; i++ {
		window := int64(1 + rng.Intn(50))
		op := ops[rng.Intn(2)]
		if deep {
			queries = append(queries, randomDeepQuery(rng, 3, window, op))
		} else {
			queries = append(queries, randomFlatQuery(rng, leafNames, 3, window, op))
		}
	}
	var docs []*xmldoc.Document
	ts := xmldoc.Timestamp(0)
	for i := 0; i < nDocs; i++ {
		ts += xmldoc.Timestamp(rng.Intn(20))
		if deep {
			docs = append(docs, randomDeepDoc(rng, xmldoc.DocID(i+1), ts, domain))
		} else {
			docs = append(docs, randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, domain))
		}
	}

	configs := []Config{
		{},
		{ViewMaterialization: true},
		{ViewMaterialization: true, ViewCacheCapacity: 2},
	}
	var results []map[matchKey]bool
	for _, cfg := range configs {
		p := NewProcessor(cfg)
		for _, q := range queries {
			p.MustRegister(q)
		}
		all := map[matchKey]bool{}
		for _, d := range docs {
			for k := range matchSet(p.Process("S", d)) {
				all[k] = true
			}
		}
		results = append(results, all)
	}

	sp := sequential.NewProcessor()
	for _, q := range queries {
		sp.MustRegister(q)
	}
	seqAll := map[matchKey]bool{}
	for _, d := range docs {
		for k := range seqMatchSet(sp.Process("S", d)) {
			seqAll[k] = true
		}
	}

	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("trial %d (deep=%v): config %d diverges from basic:\nbasic: %v\nother: %v\nqueries: %s",
				trial, deep, i, keys(results[0]), keys(results[i]), querySources(queries))
		}
	}
	if !reflect.DeepEqual(results[0], seqAll) {
		t.Fatalf("trial %d (deep=%v): MMQJP vs Sequential:\nmmqjp: %v\nseq:   %v\nqueries: %s\ndocs: %s",
			trial, deep, keys(results[0]), keys(seqAll), querySources(queries), docDump(docs))
	}
}

func keys(m map[matchKey]bool) []string {
	var out []string
	for k := range m {
		out = append(out, fmt.Sprintf("q%d:%d->%d", k.q, k.ldoc, k.rdoc))
	}
	sort.Strings(out)
	return out
}

func querySources(qs []*xscl.Query) string {
	s := ""
	for i, q := range qs {
		s += fmt.Sprintf("\n  q%d: %s", i, q)
	}
	return s
}

func docDump(ds []*xmldoc.Document) string {
	s := ""
	for _, d := range ds {
		s += fmt.Sprintf("\n  doc %d ts %d: %s", d.ID, d.Timestamp, d.XMLText())
	}
	return s
}

func TestDifferentialFlatSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		runDifferentialTrial(t, rng, false, trial)
	}
}

func TestDifferentialDeepSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 80; trial++ {
		runDifferentialTrial(t, rng, true, trial)
	}
}

func TestDifferentialLongStreamWithGC(t *testing.T) {
	// Longer stream with small windows so GC kicks in for both systems.
	rng := rand.New(rand.NewSource(303))
	leafNames := []string{"a", "b", "c"}
	var queries []*xscl.Query
	for i := 0; i < 5; i++ {
		queries = append(queries, randomFlatQuery(rng, leafNames, 2, int64(5+rng.Intn(20)), "FOLLOWED BY"))
	}
	p := NewProcessor(Config{ViewMaterialization: true, ViewCacheCapacity: 4})
	pb := NewProcessor(Config{})
	sp := sequential.NewProcessor()
	for _, q := range queries {
		p.MustRegister(q)
		pb.MustRegister(q)
		sp.MustRegister(q)
	}
	ts := xmldoc.Timestamp(0)
	for i := 0; i < 300; i++ {
		ts += xmldoc.Timestamp(rng.Intn(4))
		d := randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 2)
		a := matchSet(p.Process("S", d))
		b := matchSet(pb.Process("S", d))
		c := seqMatchSet(sp.Process("S", d))
		if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
			t.Fatalf("doc %d: divergence:\nviewmat: %v\nbasic:   %v\nseq:     %v", i+1, keys(a), keys(b), keys(c))
		}
	}
	// GC must have bounded the state.
	if n := pb.State().NumDocs(); n > 150 {
		t.Errorf("basic state holds %d docs, GC ineffective", n)
	}
}

// TestDifferentialPlans forces the witness-driven and RT-driven physical
// plans and checks they produce identical match sets (with PlanAuto as a
// third participant), on flat and deep random workloads.
func TestDifferentialPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	leafNames := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 60; trial++ {
		deep := trial%2 == 1
		var queries []*xscl.Query
		for i := 0; i < 1+rng.Intn(6); i++ {
			window := int64(1 + rng.Intn(40))
			if deep {
				queries = append(queries, randomDeepQuery(rng, 3, window, "FOLLOWED BY"))
			} else {
				queries = append(queries, randomFlatQuery(rng, leafNames, 3, window, "JOIN"))
			}
		}
		var docs []*xmldoc.Document
		ts := xmldoc.Timestamp(0)
		for i := 0; i < 2+rng.Intn(8); i++ {
			ts += xmldoc.Timestamp(rng.Intn(15))
			if deep {
				docs = append(docs, randomDeepDoc(rng, xmldoc.DocID(i+1), ts, 2))
			} else {
				docs = append(docs, randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 2))
			}
		}
		var results []map[matchKey]bool
		for _, cfg := range []Config{
			{Plan: PlanWitness},
			{Plan: PlanRTDriven},
			{Plan: PlanAuto},
			{Plan: PlanRTDriven, ViewMaterialization: true},
		} {
			p := NewProcessor(cfg)
			for _, q := range queries {
				p.MustRegister(q)
			}
			all := map[matchKey]bool{}
			for _, d := range docs {
				for k := range matchSet(p.Process("S", d)) {
					all[k] = true
				}
			}
			results = append(results, all)
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Fatalf("trial %d (deep=%v): plan %d diverges:\nwitness: %v\nother:   %v\nqueries: %s\ndocs: %s",
					trial, deep, i, keys(results[0]), keys(results[i]), querySources(queries), docDump(docs))
			}
		}
	}
}
