// Package core implements the MMQJP Join Processor: Stage-1 shared
// tree-pattern matching feeding Stage-2 template-sharded conjunctive-query
// evaluation over the join state, with view materialization (Section 5),
// pipelined and continuous ingestion, subscription lifecycle, and an
// adaptive statistics-driven physical-plan chooser (planner.go).
//
// This file holds the processor-wide configuration and the accumulated
// statistics; the Processor itself lives in processor.go.
package core

import "time"

// Config selects processor behaviour.
type Config struct {
	// ViewMaterialization enables the Section-5 optimization: shared
	// Rvj/RL/RR views and the per-string view cache (Algorithms 4 and 5).
	ViewMaterialization bool
	// ViewCacheCapacity bounds the number of cached RL slices
	// (0 = unbounded). Ignored unless ViewMaterialization is set.
	ViewCacheCapacity int
	// RetainDocuments keeps full documents in the join state so that
	// query outputs can be constructed as XML; benchmarks disable it.
	RetainDocuments bool
	// Plan overrides the per-template physical plan choice (tests and
	// ablation benchmarks; PlanAuto picks adaptively — see planner.go).
	Plan PlanKind
	// PlanExploreEvery enables the PlanAuto exploration policy: roughly
	// one in PlanExploreEvery per-template plan decisions additionally
	// runs the non-chosen plan, timed for cost-model calibration only
	// (its matches are discarded, so match output is unchanged). This is
	// what keeps both per-plan cost estimates honest when the chooser
	// settles on one plan. 0 disables exploration. Ignored for forced
	// plans.
	PlanExploreEvery int
	// PlanExploreSeed seeds the deterministic per-template exploration
	// sampler (0 selects 1). Given a seed, each template's sequence of
	// explore/skip decisions is a pure function of its decision count —
	// independent of Workers, PipelineDepth and wall-clock timing.
	PlanExploreSeed int64
	// Workers sets the number of template shards evaluated concurrently
	// in Stage 2 (shard.go). Each shard owns the query relations, view
	// cache entries and stats of the templates assigned to it, so workers
	// share no mutable state. 0 or 1 selects sequential evaluation;
	// match output is identical for every worker count.
	Workers int
	// SplitThreshold sets the cost-unit EWMA above which a hot template's
	// Stage-2 evaluation is split into chunks stealable by idle shards
	// (split.go). The units are the ones choosePlan compares: the witness
	// fan-out estimate or the RT vector-group cost of the chosen plan.
	// 0 selects the built-in default, negative disables splitting; the
	// exit threshold is half the entry threshold (hysteresis). Splitting
	// only engages with Workers > 1 and never changes match output.
	SplitThreshold float64
	// PipelineDepth bounds how many upcoming documents of a ProcessBatch
	// call may have Stage 1 (parse-independent NFA match and witness
	// construction) running or completed ahead of the coordinator's
	// in-order Stage-2 consumption (pipeline.go). 0 or 1 selects the
	// sequential per-document path; match output is identical for every
	// depth.
	PipelineDepth int
	// OnDocument, when set, is called once per processed document with its
	// hot-path wall times, after the document has been fully consumed.
	// It runs on the coordinator (in document order, never concurrently
	// with itself) and must be fast and non-blocking — it sits on the
	// ingest hot path. nil disables observation at zero cost.
	OnDocument func(DocTimings)
}

// DocTimings is one document's hot-path observation, delivered to
// Config.OnDocument: the wall-clock time of each order-sensitive phase and
// the number of matches the document triggered. Stage1 is the document-local
// NFA match + witness construction (possibly measured on a pipeline worker),
// Stage2 the template evaluation, Merge the Algorithm-2 state merge plus
// view-cache maintenance, and GC the window garbage-collection check/rebuild.
type DocTimings struct {
	Stage1  time.Duration
	Stage2  time.Duration
	Merge   time.Duration
	GC      time.Duration
	Matches int
}

// PlanKind selects the physical plan for template conjunctive queries.
type PlanKind int

const (
	// PlanAuto chooses per template per document by calibrated cost
	// estimate (planner.go).
	PlanAuto PlanKind = iota
	// PlanWitness always joins outward from the current document's
	// value-join pairs (processor.go).
	PlanWitness
	// PlanRTDriven always iterates RT's distinct variable vectors
	// (rtplan.go).
	PlanRTDriven
)

// Stats accumulates wall-clock cost of the processing phases, matching the
// breakdown of Figures 14 and 15.
type Stats struct {
	XPath    time.Duration // Stage 1: shared tree-pattern matching
	Witness  time.Duration // building RbinW/RdocW/RrootW from witnesses
	Rvj      time.Duration // common-string discovery (semi-join, Alg. 4 l.2)
	RL       time.Duration // computing/looking up RL slices
	RR       time.Duration // computing RR slices
	CQ       time.Duration // per-template conjunctive query evaluation
	Maintain time.Duration // Algorithm 2 + view cache maintenance + GC
	// Stage1Wall is the per-document wall-clock time of Stage 1 (NFA match
	// plus witness construction), accumulated across documents and batch
	// publishes. In a pipelined batch (Config.PipelineDepth > 1) Stage 1
	// runs concurrently in workers, so Stage1Wall sums per-document time
	// across workers and may exceed the batch's elapsed wall time.
	Stage1Wall time.Duration
	// Stage2Wall is the coordinator's wall-clock time of Stage-2 template
	// evaluation. With Workers > 1 the per-phase timings above accumulate
	// CPU time across workers and may exceed it; Stage2Wall is what
	// shrinks as workers are added. Both wall counters accumulate across
	// Process and ProcessBatch calls.
	Stage2Wall time.Duration
	Matches    int64
	Documents  int64
	// WitnessPlans and RTPlans count per-template plan choices (see
	// planner.go); the ablation tests assert the chooser adapts.
	WitnessPlans int64
	RTPlans      int64
	// Explorations counts PlanAuto exploration runs of the non-chosen
	// plan (calibration only, matches discarded); ExploreWall is their
	// wall-clock cost, kept out of CQ so the Figure-14/15 breakdowns
	// report only the plan that produced the output.
	Explorations int64
	ExploreWall  time.Duration
	// Splits counts split template evaluations (one per template per
	// document whose evaluation was partitioned into stealable chunks),
	// SplitChunks the chunks they were divided into, and Steals the chunks
	// executed by a shard other than the owning one (counted by the
	// stealing shard). See split.go.
	Splits      int64
	SplitChunks int64
	Steals      int64
}

// Add accumulates o into s: per-shard stats into a processor total, or
// per-partition stats into a routed engine's aggregate.
func (s *Stats) Add(o Stats) {
	s.XPath += o.XPath
	s.Witness += o.Witness
	s.Rvj += o.Rvj
	s.RL += o.RL
	s.RR += o.RR
	s.CQ += o.CQ
	s.Maintain += o.Maintain
	s.Stage1Wall += o.Stage1Wall
	s.Stage2Wall += o.Stage2Wall
	s.Matches += o.Matches
	s.Documents += o.Documents
	s.WitnessPlans += o.WitnessPlans
	s.RTPlans += o.RTPlans
	s.Explorations += o.Explorations
	s.ExploreWall += o.ExploreWall
	s.Splits += o.Splits
	s.SplitChunks += o.SplitChunks
	s.Steals += o.Steals
}
