package core
