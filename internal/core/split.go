package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/xmldoc"
)

// Intra-template Stage-2 parallelism.
//
// Template-granular sharding (shard.go) stops scaling the moment the live
// template count drops to the worker count — with one hot mega-template an
// entire document's Stage-2 cost serializes onto one shard while the others
// idle. The splitter below partitions a hot template's evaluation *below*
// the template granularity, along the exact unit of work the adaptive
// planner already counts:
//
//   - witness-driven plan: the rows of the first scanned atom of the
//     conjunctive query. EvalConjunctiveOrdered seeds its join pipeline by
//     scanning the first non-indexed atom in atom order and every relation
//     operator downstream is bag-semantics (no dedup), so evaluating the
//     query once per row-range of that atom and concatenating the outputs
//     in range order is *exactly* the unsplit evaluation — same rows, same
//     order, same multiplicities.
//   - RT-driven plan: the distinct variable-vector groups of t.vecList.
//     The plan already evaluates each group independently and appends, so
//     any partition of the group list concatenated in list order is again
//     byte-identical to the serial loop.
//
// Chunks are owned by the evaluating shard but stealable by idle shards: a
// shard that finishes its own template list spins on the document's
// splitRun, claiming chunks from still-evaluating shards via an atomic
// cursor. The owner publishes a task, participates in claiming, and blocks
// until every chunk completed before advancing to its next template — so
// per-shard lazily-memoized state (docSubsets) is never mutated while
// thieves hold chunks (the owner pre-warms the subsets a task can touch,
// see docSubsets.warm). Match output therefore stays byte-identical at any
// worker count and any steal schedule; the differential harness replays
// split-forced and split-disabled configurations against each other to
// prove it.
//
// Only genuinely hot templates pay the partitioning overhead: the planner's
// per-decision cost-unit estimates feed a split threshold with hysteresis
// (splitDecision), and the coordinator creates a splitRun — and with it the
// idle-shard steal barrier — only on documents where some live template is
// already split-active.

// defaultSplitThreshold is the cost-unit EWMA (witness fan-out estimate or
// RT vector-group cost, whichever plan is chosen) above which a template's
// evaluation is split into stealable chunks. The unit scale is the same one
// choosePlan compares, so the default marks templates whose per-document
// intermediate results reach thousands of rows — where chunk setup cost
// (copying an atom slice, one EvalConjunctiveOrdered pipeline per chunk) is
// noise against the join work itself.
const defaultSplitThreshold = 4096

// splitChunksPerShard sets how many chunks a split task is divided into,
// per shard: more chunks than shards so stealing can rebalance mid-task,
// few enough that per-chunk pipeline setup stays amortized.
const splitChunksPerShard = 2

// splitThreshold resolves Config.SplitThreshold: negative disables
// splitting, zero selects the default.
func (p *Processor) splitThreshold() float64 {
	switch {
	case p.cfg.SplitThreshold < 0:
		return -1
	case p.cfg.SplitThreshold == 0:
		return defaultSplitThreshold
	default:
		return p.cfg.SplitThreshold
	}
}

// splitDecision feeds one plan decision's cost units into the template's
// split EWMA and updates the split-active flag with hysteresis: a template
// enters the split regime when its unit EWMA reaches the threshold and
// leaves it only after decaying below half the threshold, so templates
// oscillating around the boundary don't flap between the two evaluation
// shapes every document. Runs on the shard owning t (lock-free by
// ownership, like the rest of planStats).
func (p *Processor) splitDecision(t *Template, d planDecision) {
	thr := p.splitThreshold()
	if thr < 0 {
		return
	}
	ps := t.plan
	units := d.witnessUnits
	if d.rtDriven {
		units = d.rtUnits
	}
	ps.splitUnits.observe(units)
	if ps.splitActive {
		if ps.splitUnits.value() < thr/2 {
			ps.splitActive = false
		}
	} else if ps.splitUnits.value() >= thr {
		ps.splitActive = true
	}
}

// anySplitActive reports whether any live template is in the split regime.
// The coordinator consults it once per document: when false, Stage 2 runs
// without a splitRun and idle shards exit immediately instead of spinning
// on the steal barrier. A template crossing the threshold mid-document
// starts splitting on the next document.
func (p *Processor) anySplitActive() bool {
	for _, t := range p.templateList {
		if t.plan.splitActive {
			return true
		}
	}
	return false
}

// splitTask is one split template evaluation: n chunks claimed through an
// atomic cursor and executed by whichever shard claims them. exec(i) must
// touch only read-only state plus the chunk's own output slot.
type splitTask struct {
	owner int // shard id of the publishing shard
	n     int
	next  atomic.Int32
	wg    sync.WaitGroup
	exec  func(chunk int)
}

func newSplitTask(owner, n int, exec func(int)) *splitTask {
	t := &splitTask{owner: owner, n: n, exec: exec}
	t.wg.Add(n)
	return t
}

// claim executes chunks of t until the cursor is exhausted, reporting
// whether it executed any. Thieves (sh.id != t.owner) count each claimed
// chunk as a steal in their own shard's stats.
//
//mmqjp:shardaccess steal protocol: a thief records steals on its own shard's counters
func (t *splitTask) claim(sh *shard) bool {
	ran := false
	for {
		i := int(t.next.Add(1)) - 1
		if i >= t.n {
			return ran
		}
		ran = true
		if sh.id != t.owner {
			sh.stats.Steals++
		}
		t.exec(i)
		t.wg.Done()
	}
}

// splitRun coordinates one document's split tasks across the shards.
type splitRun struct {
	mu    sync.Mutex
	tasks []*splitTask
	// active counts shards still evaluating their own template lists; the
	// steal loop in finish terminates when it reaches zero, which is only
	// possible after every published task has fully drained (owners block
	// in publishAndDrain before decrementing).
	active atomic.Int32
}

func newSplitRun(shards int) *splitRun {
	r := &splitRun{}
	r.active.Store(int32(shards))
	return r
}

// publishAndDrain makes a task visible to idle shards, yields once so a
// spinning thief gets a chance to start claiming (essential interleaving on
// a single-CPU host, a no-op cost elsewhere), claims chunks alongside the
// thieves, and blocks until every chunk has completed. The owner must not
// advance to its next template before this returns: per-shard memoized
// state shared across its templates (docSubsets) must stay frozen while
// thieves hold chunks.
func (r *splitRun) publishAndDrain(t *splitTask, owner *shard) {
	r.mu.Lock()
	r.tasks = append(r.tasks, t)
	r.mu.Unlock()
	runtime.Gosched()
	t.claim(owner)
	t.wg.Wait()
}

// finish marks sh's own template list complete and turns the shard into a
// thief: it spins claiming chunks from still-evaluating shards until every
// shard is done, so one mega-template can no longer serialize Stage 2 on
// its owner while the rest of the pool idles.
func (r *splitRun) finish(sh *shard) {
	r.active.Add(-1)
	for r.active.Load() > 0 {
		if !r.stealOnce(sh) {
			runtime.Gosched()
		}
	}
}

// stealOnce scans the published tasks for one with unclaimed chunks and
// drains it. The cursor pre-check keeps spinning thieves from growing an
// exhausted task's cursor unboundedly.
func (r *splitRun) stealOnce(sh *shard) bool {
	r.mu.Lock()
	tasks := r.tasks
	r.mu.Unlock()
	for _, t := range tasks {
		if int(t.next.Load()) < t.n && t.claim(sh) {
			return true
		}
	}
	return false
}

// chunkBounds partitions [0, n) into at most chunks contiguous ranges,
// dropping empties.
func chunkBounds(n, chunks int) [][2]int {
	out := make([][2]int, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := i*n/chunks, (i+1)*n/chunks
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// splitWitness evaluates a witness-plan conjunctive query in stealable
// chunks: the rows of the first scanned atom — the one
// EvalConjunctiveOrdered seeds its pipeline from — are range-partitioned,
// which distributes exactly over the bag-semantics join (see the package
// comment above). atoms must be fully built by the owner (index builds and
// other shard-state mutation happen in atom construction, not here).
//
//mmqjp:shardaccess split protocol: the owner records split counters before publishing chunks
func (p *Processor) splitWitness(run *splitRun, sh *shard, t *Template, atoms []relation.Atom, d *xmldoc.Document) []Match {
	scan := -1
	for i, a := range atoms {
		if a.Idx == nil {
			scan = i
			break
		}
	}
	nchunks := 0
	if scan >= 0 {
		nchunks = splitChunkCount(len(atoms[scan].Rel.Rows), len(p.shards))
	}
	if nchunks < 2 {
		rout := relation.EvalConjunctiveOrdered(atoms, t.headVars())
		return p.emit(t, rout, d)
	}
	base := atoms[scan].Rel
	bounds := chunkBounds(len(base.Rows), nchunks)
	slots := make([][]Match, len(bounds))
	head := t.headVars()
	task := newSplitTask(sh.id, len(bounds), func(i int) {
		ca := make([]relation.Atom, len(atoms))
		copy(ca, atoms)
		ca[scan].Rel = &relation.Relation{Schema: base.Schema, Rows: base.Rows[bounds[i][0]:bounds[i][1]]}
		slots[i] = p.emit(t, relation.EvalConjunctiveOrdered(ca, head), d)
	})
	sh.stats.Splits++
	sh.stats.SplitChunks += int64(len(bounds))
	run.publishAndDrain(task, sh)
	return concatSlots(slots)
}

// splitRTDriven evaluates the RT-driven plan in stealable chunks: the
// vector-group list is range-partitioned and each chunk runs the unchanged
// per-group loop, so concatenation in chunk order is byte-identical to the
// serial iteration. The owner pre-warms the shard-shared subset memos
// before publishing so chunk executors only read them.
//
//mmqjp:shardaccess split protocol: the owner records split counters before publishing chunks
func (p *Processor) splitRTDriven(run *splitRun, sh *shard, t *Template, w *CurrentWitness, rvj *relation.Relation, subs *docSubsets, d *xmldoc.Document) ([]Match, int) {
	nchunks := splitChunkCount(len(t.vecList), len(p.shards))
	if nchunks < 2 {
		return p.evalTemplateRTDriven(t, w, rvj, subs, d)
	}
	subs.warm(t)
	bounds := chunkBounds(len(t.vecList), nchunks)
	slots := make([][]Match, len(bounds))
	probed := make([]int, len(bounds))
	task := newSplitTask(sh.id, len(bounds), func(i int) {
		slots[i], probed[i] = p.evalVecGroups(t, w, rvj, subs, d, t.vecList[bounds[i][0]:bounds[i][1]])
	})
	sh.stats.Splits++
	sh.stats.SplitChunks += int64(len(bounds))
	run.publishAndDrain(task, sh)
	groups := 0
	for _, g := range probed {
		groups += g
	}
	return concatSlots(slots), groups
}

// splitChunkCount picks the chunk count for n work units: a small multiple
// of the shard count (so stealing can rebalance mid-task), never more
// chunks than units.
func splitChunkCount(n, shards int) int {
	c := splitChunksPerShard * shards
	if c > n {
		c = n
	}
	return c
}

// concatSlots merges per-chunk outputs in chunk order.
func concatSlots(slots [][]Match) []Match {
	var out []Match
	for _, s := range slots {
		out = append(out, s...)
	}
	return out
}
