package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// renderMatches serializes a match slice byte-for-byte (order included):
// the parallel engine promises output identical to sequential mode, not
// just the same set.
func renderMatches(ms []Match) string {
	var sb strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&sb, "q%d l%d@%d r%d@%d roots(%d,%d) t%q b%v\n",
			m.Query, m.LeftDoc, m.LeftTS, m.RightDoc, m.RightTS,
			m.LeftRoot, m.RightRoot, templateSig(m.Template), m.Bindings)
	}
	return sb.String()
}

// TestParallelDeterminism drives identical generated workloads through
// Workers ∈ {1, 2, 3, 8} for both the basic and the view-materialization
// path and requires byte-identical per-document match output; the same
// workloads are then replayed through ProcessBatch at PipelineDepth
// ∈ {0, 1, 2, 8}, which must also be byte-identical to the sequential
// per-document reference.
func TestParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	leafNames := []string{"a", "b", "c", "d", "e"}
	for trial := 0; trial < 30; trial++ {
		deep := trial%3 == 2
		var queries []*xscl.Query
		for i := 0; i < 3+rng.Intn(10); i++ {
			window := int64(1 + rng.Intn(50))
			op := []string{"FOLLOWED BY", "JOIN"}[rng.Intn(2)]
			if deep {
				queries = append(queries, randomDeepQuery(rng, 3, window, op))
			} else {
				queries = append(queries, randomFlatQuery(rng, leafNames, 3, window, op))
			}
		}
		var docs []*xmldoc.Document
		ts := xmldoc.Timestamp(0)
		for i := 0; i < 3+rng.Intn(10); i++ {
			ts += xmldoc.Timestamp(rng.Intn(20))
			if deep {
				docs = append(docs, randomDeepDoc(rng, xmldoc.DocID(i+1), ts, 2))
			} else {
				docs = append(docs, randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 2))
			}
		}
		for _, viewMat := range []bool{false, true} {
			var ref []string // per-document rendered output of Workers=1
			for _, workers := range []int{1, 2, 3, 8} {
				p := NewProcessor(Config{ViewMaterialization: viewMat, Workers: workers})
				for _, q := range queries {
					p.MustRegister(q)
				}
				for di, d := range docs {
					got := renderMatches(p.Process("S", d))
					if workers == 1 {
						ref = append(ref, got)
						continue
					}
					if got != ref[di] {
						t.Fatalf("trial %d (deep=%v viewmat=%v): workers=%d diverges from sequential on doc %d:\nseq:\n%spar:\n%s",
							trial, deep, viewMat, workers, di+1, ref[di], got)
					}
				}
			}
			for _, depth := range []int{0, 1, 2, 8} {
				p := NewProcessor(Config{ViewMaterialization: viewMat, PipelineDepth: depth})
				for _, q := range queries {
					p.MustRegister(q)
				}
				for di, ms := range p.ProcessBatch("S", docs) {
					if got := renderMatches(ms); got != ref[di] {
						t.Fatalf("trial %d (deep=%v viewmat=%v): pipeline depth=%d diverges from sequential on doc %d:\nseq:\n%sbatch:\n%s",
							trial, deep, viewMat, depth, di+1, ref[di], got)
					}
				}
			}
		}
	}
}

// TestParallelDeterminismWithGCAndCache runs a longer stream with small
// windows (GC active) and a tight per-shard view cache, where cache
// eviction histories differ between worker counts — match output must not.
func TestParallelDeterminismWithGCAndCache(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	leafNames := []string{"a", "b", "c"}
	var queries []*xscl.Query
	for i := 0; i < 6; i++ {
		queries = append(queries, randomFlatQuery(rng, leafNames, 2, int64(5+rng.Intn(20)), "FOLLOWED BY"))
	}
	var docs []*xmldoc.Document
	ts := xmldoc.Timestamp(0)
	for i := 0; i < 200; i++ {
		ts += xmldoc.Timestamp(rng.Intn(4))
		docs = append(docs, randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 2))
	}
	var ref []string
	for _, workers := range []int{1, 4} {
		p := NewProcessor(Config{ViewMaterialization: true, ViewCacheCapacity: 4, Workers: workers})
		for _, q := range queries {
			p.MustRegister(q)
		}
		for di, d := range docs {
			got := renderMatches(p.Process("S", d))
			if workers == 1 {
				ref = append(ref, got)
			} else if got != ref[di] {
				t.Fatalf("workers=%d diverges on doc %d:\nseq:\n%spar:\n%s", workers, di+1, ref[di], got)
			}
		}
	}
}

// TestShardOwnership checks the structural invariants of template sharding:
// every template is owned by exactly one shard, and the shard holds its RT
// relation.
func TestShardOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	p := NewProcessor(Config{Workers: 4})
	leafNames := []string{"a", "b", "c", "d"}
	for i := 0; i < 50; i++ {
		p.MustRegister(randomFlatQuery(rng, leafNames, 3, 100, "JOIN"))
	}
	if got := p.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want 4", got)
	}
	owned := map[TemplateID]int{}
	for _, sh := range p.shards {
		for _, tmpl := range sh.templates {
			owned[tmpl.ID]++
			if sh.rt[tmpl.ID] == nil {
				t.Errorf("shard %d owns template %d but has no RT relation", sh.id, tmpl.ID)
			}
			if p.shardOf(tmpl) != sh {
				t.Errorf("template %d listed in shard %d but shardOf says %d", tmpl.ID, sh.id, p.shardOf(tmpl).id)
			}
		}
	}
	for _, tmpl := range p.templateList {
		if owned[tmpl.ID] != 1 {
			t.Errorf("template %d owned by %d shards, want 1", tmpl.ID, owned[tmpl.ID])
		}
	}
}

// TestStatsAggregatesShards checks Stats() merges shard-side phase stats and
// ResetStats clears them.
func TestStatsAggregatesShards(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	leafNames := []string{"a", "b"}
	p := NewProcessor(Config{ViewMaterialization: true, Workers: 3})
	for i := 0; i < 10; i++ {
		p.MustRegister(randomFlatQuery(rng, leafNames, 2, 1000, "JOIN"))
	}
	ts := xmldoc.Timestamp(0)
	for i := 0; i < 20; i++ {
		ts += 2
		p.Process("S", randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 1))
	}
	s := p.Stats()
	if s.Documents != 20 {
		t.Errorf("Documents = %d, want 20", s.Documents)
	}
	if s.WitnessPlans+s.RTPlans == 0 {
		t.Error("no plan choices recorded across shards")
	}
	if s.CQ == 0 {
		t.Error("no CQ time recorded across shards")
	}
	if s.Stage2Wall == 0 {
		t.Error("no Stage-2 wall time recorded")
	}
	p.ResetStats()
	s = p.Stats()
	if s.Documents != 0 || s.CQ != 0 || s.WitnessPlans+s.RTPlans != 0 {
		t.Errorf("ResetStats left residue: %+v", s)
	}
}
