package core

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/relation"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/xscl"
	"repro/internal/yfilter"
)

// QueryID identifies a registered XSCL query.
type QueryID int64

// Match is one query result: an output tuple of RoutT that passed the
// temporal constraint (Algorithm 3). Left and Right refer to the query's own
// block order (for a swapped JOIN orientation, Left may be the newer
// document).
type Match struct {
	Query QueryID

	LeftDoc, RightDoc xmldoc.DocID
	LeftTS, RightTS   xmldoc.Timestamp

	// LeftRoot and RightRoot are the bindings of the template side roots,
	// used by the default SELECT * output construction.
	LeftRoot, RightRoot xmldoc.NodeID

	// Template and Bindings expose the full RoutT row: Bindings[p] is the
	// document node bound at template position p (positions on the
	// template's left side bind in the earlier document, right side in
	// the current document, before orientation is applied).
	Template *Template
	Bindings []xmldoc.NodeID
}

// Processor is the MMQJP Join Processor together with its Stage-1 engine.
type Processor struct {
	cfg  Config
	xp   *yfilter.Engine
	syms *symtab

	// queries is indexed by QueryID; an Unregistered query leaves a nil
	// slot so ids stay stable across churn. numQueries counts live slots.
	// Tombstones cost one pointer per lifetime registration (here and in
	// instances); bounding memory to the live set instead would put an id
	// map on the per-match emit path.
	queries    []*queryRec
	numQueries int
	// instances is indexed by instance id (the RT qid column); slots of
	// unregistered instances are nil — their RT rows are gone, so dead
	// ids are never looked up during evaluation.
	instances []*instance

	templates    map[string]*Template
	templateList []*Template // live templates, in registration order
	// nextTemplateID allocates template ids; ids are never reused, so a
	// reclaimed template's id cannot alias a later one.
	nextTemplateID TemplateID
	// shards partition the templates for Stage-2 evaluation; each shard
	// owns its templates' RT relations, RT indexes, view cache entries
	// and phase stats (shard.go). tmplShard records each live template's
	// home shard (assigned least-loaded-first, see assignShard).
	shards    []*shard
	tmplShard map[TemplateID]int

	patterns    map[yfilter.PatternID]*patternInfo
	patternList []*patternInfo // live patterns, in registration order

	// singleQueries lists single-block (OpNone) queries per pattern.
	singleQueries map[yfilter.PatternID][]QueryID

	state *State

	// canonMemo caches canonicalization results by the raw encoding of
	// the reduced join graph; generated workloads repeat a handful of
	// raw shapes across hundreds of thousands of queries. Like the
	// symtab's interned variables, it is a pure memo retained across
	// Unregister: memory tracks lifetime-distinct query shapes (small by
	// the template-sharing premise), not the live query count.
	canonMemo map[string]canonResult

	// planMemo holds the adaptive planner's per-template statistics,
	// keyed by template signature (planner.go). Like canonMemo it is
	// retained across Unregister: a template reclaimed by churn and
	// re-registered later resumes with its calibrated cost model instead
	// of re-learning from scratch, and memory tracks lifetime-distinct
	// template shapes, not the live query count.
	planMemo map[string]*planStats

	// Window maxima drive GC cutoffs. The holder counts track how many
	// live join queries sit exactly at each maximum, so Unregister only
	// rescans the query list when a maximum actually retires — a bulk
	// drain of N uniform-window queries costs one rescan, not N.
	maxFiniteWindow  int64 // largest finite time window
	maxFiniteHolders int
	maxCountWindow   int64 // largest finite tuple window
	maxCountHolders  int
	infWindows       int // live queries with an unbounded window
	anyInfWindow     bool

	stats Stats
}

// queryRec is the per-query registration record: everything Unregister needs
// to undo a Register.
type queryRec struct {
	q *xscl.Query
	// insts lists the query's instance ids (one for FOLLOWED BY, two for
	// JOIN); empty for single-block queries.
	insts []int64
	// single is the pattern of a single-block query (nil otherwise).
	single *patternInfo
}

type canonResult struct {
	sig   string
	order []int
}

// instance is one orientation of one query's join: FOLLOWED BY queries have
// one instance, JOIN queries two (the second with the blocks swapped).
type instance struct {
	qid        QueryID
	op         xscl.OpKind
	swapped    bool
	tmpl       *Template
	window     int64
	windowKind xscl.WindowKind

	// vecKey identifies the instance's variable-vector group in its
	// template (rtplan.go), so Unregister can remove it.
	vecKey string
	// left and right are the witness-extraction demands this instance
	// placed on its block patterns, released on Unregister.
	left, right patternContrib
}

// patternContrib is one instance's (or single query's) demand on a block
// pattern: the structural edges, string-value nodes and root nodes the
// pattern must extract from each witness on its behalf. Contributions are
// deduplicated per instance, so acquire/release pair exactly.
type patternContrib struct {
	pi       *patternInfo
	edges    [][2]int32
	strNodes []int32
	roots    []int32
}

// patternInfo records what the Join Processor extracts from the witnesses of
// one distinct registered pattern. Each emission set is refcounted over the
// contributions of the live instances (and single queries) referencing the
// pattern, so Unregister narrows Stage-1 extraction back to exactly what the
// surviving queries need.
type patternInfo struct {
	yid yfilter.PatternID
	pat *xpath.Pattern // normalized, fully bound representative
	// canonIDs[i] is the interned canonical variable of pattern node i.
	canonIDs []int64

	// refs counts live contributions (instance sides and single queries);
	// at zero the pattern is dropped from the Stage-1 extraction loop.
	refs int

	edgeCount map[[2]int32]int
	edges     [][2]int32 // structural edges to emit, as node index pairs
	strCount  map[int32]int
	strNodes  []int32 // nodes whose string values go to RdocW
	rootCount map[int32]int
	roots     []int32 // nodes emitted to RrootW (single-node template sides)
}

// NewProcessor returns an empty processor.
func NewProcessor(cfg Config) *Processor {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	// The configured cache capacity is split across shards: each gets
	// ⌈capacity/workers⌉ entries, so the total can round up to
	// capacity+workers-1, and skewed string ownership can thrash a hot
	// shard while cold shards sit under capacity. Capacity only affects
	// recomputation cost, never matches.
	capPer := cfg.ViewCacheCapacity
	if capPer > 0 {
		capPer = (capPer + workers - 1) / workers
	}
	p := &Processor{
		cfg:           cfg,
		xp:            yfilter.NewEngine(),
		syms:          newSymtab(),
		templates:     map[string]*Template{},
		tmplShard:     map[TemplateID]int{},
		patterns:      map[yfilter.PatternID]*patternInfo{},
		singleQueries: map[yfilter.PatternID][]QueryID{},
		canonMemo:     map[string]canonResult{},
		planMemo:      map[string]*planStats{},
		state:         NewState(),
	}
	for i := 0; i < workers; i++ {
		p.shards = append(p.shards, newShard(i, capPer))
	}
	return p
}

// NumTemplates returns the number of distinct query templates registered.
func (p *Processor) NumTemplates() int { return len(p.templateList) }

// Templates returns the registered templates.
func (p *Processor) Templates() []*Template { return p.templateList }

// NumQueries returns the number of live (registered, not unregistered)
// queries.
func (p *Processor) NumQueries() int { return p.numQueries }

// Stats returns the accumulated phase timings: the coordinator's own
// (Stage 1, maintenance, Stage-2 wall clock) plus every shard's Stage-2
// phase times. With Workers > 1 the shard phases are CPU time summed across
// workers.
//
//mmqjp:shardaccess barrier-time collection; the engine facade serializes Stats against Process
func (p *Processor) Stats() Stats {
	s := p.stats
	for _, sh := range p.shards {
		s.Add(sh.stats)
	}
	return s
}

// ResetStats zeroes the accumulated phase timings.
//
//mmqjp:shardaccess barrier-time reset; the engine facade serializes it against Process
func (p *Processor) ResetStats() {
	p.stats = Stats{}
	for _, sh := range p.shards {
		sh.stats = Stats{}
	}
}

// Workers returns the number of template shards evaluated concurrently.
func (p *Processor) Workers() int { return len(p.shards) }

// State exposes the join state (read-only use: tests, inspection).
func (p *Processor) State() *State { return p.state }

// Register adds an XSCL query and returns its id. Registration is atomic:
// when any part of it fails, already-registered instances are torn down with
// the same reclamation path Unregister uses, so a failed Register leaves the
// processor exactly as it was.
func (p *Processor) Register(q *xscl.Query) (QueryID, error) {
	qid := QueryID(len(p.queries))

	if q.Op == xscl.OpNone {
		pi := p.registerPattern(q.Left)
		pi.refs++
		p.singleQueries[pi.yid] = append(p.singleQueries[pi.yid], qid)
		p.queries = append(p.queries, &queryRec{q: q, single: pi})
		p.numQueries++
		return qid, nil
	}

	rec := &queryRec{q: q}
	iid, err := p.registerInstance(q, qid, false)
	if err != nil {
		return 0, err
	}
	rec.insts = append(rec.insts, iid)
	if q.Op == xscl.OpJoin {
		swapped := &xscl.Query{
			Left: q.Right, Right: q.Left, Op: q.Op,
			Window: q.Window, WindowKind: q.WindowKind,
			Publish: q.Publish, Source: q.Source,
		}
		for _, pr := range q.Preds {
			swapped.Preds = append(swapped.Preds, xscl.ValueJoin{
				LeftVar: pr.RightVar, RightVar: pr.LeftVar,
				LeftCanonical: pr.RightCanonical, RightCanonical: pr.LeftCanonical,
			})
		}
		iid2, err := p.registerInstance(swapped, qid, true)
		if err != nil {
			// Roll the first orientation back so the failed Register
			// has no effect.
			p.unregisterInstance(iid)
			return 0, err
		}
		rec.insts = append(rec.insts, iid2)
	}

	p.noteWindow(q)
	p.queries = append(p.queries, rec)
	p.numQueries++
	return qid, nil
}

// noteWindow folds one join query's window into the GC maxima and holder
// counts.
func (p *Processor) noteWindow(q *xscl.Query) {
	switch {
	case q.Window == xscl.WindowInf:
		p.infWindows++
		p.anyInfWindow = true
	case q.WindowKind == xscl.WindowCount:
		switch {
		case q.Window > p.maxCountWindow:
			p.maxCountWindow, p.maxCountHolders = q.Window, 1
		case q.Window == p.maxCountWindow:
			p.maxCountHolders++
		}
	default:
		switch {
		case q.Window > p.maxFiniteWindow:
			p.maxFiniteWindow, p.maxFiniteHolders = q.Window, 1
		case q.Window == p.maxFiniteWindow:
			p.maxFiniteHolders++
		}
	}
}

// releaseWindow undoes noteWindow for a removed query and reports whether a
// maximum lost its last holder, requiring a full recompute. Unbounded
// windows are counted exactly, so they never force a rescan.
func (p *Processor) releaseWindow(q *xscl.Query) bool {
	switch {
	case q.Window == xscl.WindowInf:
		p.infWindows--
		p.anyInfWindow = p.infWindows > 0
	case q.WindowKind == xscl.WindowCount:
		if q.Window == p.maxCountWindow {
			p.maxCountHolders--
			return p.maxCountHolders == 0
		}
	default:
		if q.Window == p.maxFiniteWindow {
			p.maxFiniteHolders--
			return p.maxFiniteHolders == 0
		}
	}
	return false
}

// Unregister removes a registered query: the query's RT rows and vector
// groups are dropped, its templates' refcounts are decremented, and a
// template whose last member query leaves is reclaimed — its per-shard RT
// relation, RT index and shard slot are released. Pattern extraction demands
// are refcounted the same way, so Stage 1 stops extracting witness tuples no
// surviving query needs. When the last query leaves, the processor reclaims
// everything — join state, view caches and stats — and is observationally
// identical to a fresh one. Query ids are never reused.
//
// Like Register, Unregister must not run concurrently with Process or
// ProcessBatch (the engine facade serializes them).
func (p *Processor) Unregister(qid QueryID) error {
	if qid < 0 || int(qid) >= len(p.queries) || p.queries[qid] == nil {
		return fmt.Errorf("core: unknown query id %d", qid)
	}
	rec := p.queries[qid]
	if rec.single != nil {
		pi := rec.single
		list := removeFirst(p.singleQueries[pi.yid], qid)
		if len(list) == 0 {
			delete(p.singleQueries, pi.yid)
		} else {
			p.singleQueries[pi.yid] = list
		}
		pi.refs--
		if pi.refs == 0 {
			p.removePattern(pi)
		}
	}
	for _, iid := range rec.insts {
		p.unregisterInstance(iid)
	}
	p.queries[qid] = nil
	p.numQueries--
	// Re-derive the GC window maxima only when a maximum lost its last
	// holder — a full scan per removal would make bulk drains quadratic
	// in lifetime registrations.
	if rec.q.Op != xscl.OpNone && p.releaseWindow(rec.q) {
		p.recomputeWindows()
	}
	if p.numQueries == 0 {
		p.reclaimAll()
	}
	return nil
}

// MustUnregister is Unregister, panicking on error (tests, examples).
func (p *Processor) MustUnregister(qid QueryID) {
	if err := p.Unregister(qid); err != nil {
		panic(err)
	}
}

// unregisterInstance reclaims one query instance: its RT row, its vector
// group entry, its pattern contributions, and — when it was the template's
// last instance — the template itself. It is both the Unregister work-horse
// and the rollback path of a partially failed Register.
//
//mmqjp:shardaccess registration-quiesced; Unregister never runs concurrently with Process
func (p *Processor) unregisterInstance(iid int64) {
	inst := p.instances[iid]
	t := inst.tmpl
	sh := p.shardOf(t)
	sh.rt[t.ID] = sh.rt[t.ID].Select(func(row relation.Tuple) bool {
		return row[0].I != iid
	})
	sh.rtDirty[t.ID] = true
	t.removeVector(inst.vecKey, iid)

	inst.left.pi.release(inst.left)
	inst.right.pi.release(inst.right)
	if inst.left.pi.refs == 0 {
		p.removePattern(inst.left.pi)
	}
	if inst.right.pi != inst.left.pi && inst.right.pi.refs == 0 {
		p.removePattern(inst.right.pi)
	}

	t.refs--
	if t.refs == 0 {
		p.removeTemplate(t)
	}
	p.instances[iid] = nil
}

// removeTemplate reclaims a template whose last instance left: its shard
// slot, RT relation and RT index are dropped, freeing the slot for future
// templates (assignShard fills the least-loaded shard first, so churn
// compacts instead of skewing).
//
//mmqjp:shardaccess registration-quiesced; Unregister never runs concurrently with Process
func (p *Processor) removeTemplate(t *Template) {
	delete(p.templates, t.Sig)
	p.templateList = removeFirst(p.templateList, t)
	sh := p.shardOf(t)
	sh.templates = removeFirst(sh.templates, t)
	delete(sh.rt, t.ID)
	delete(sh.rtIndex, t.ID)
	delete(sh.rtDirty, t.ID)
	delete(p.tmplShard, t.ID)
}

// removePattern drops a pattern no live query references from the Stage-1
// extraction loop. The shared NFA keeps its states (they are shared across
// patterns and rebuilding it would stall ingestion), but the pattern is
// marked dead so candidate collection for its exclusive path prefixes stops
// — per-document Stage-1 cost tracks the live pattern set. A later Register
// of an equal pattern revives it.
func (p *Processor) removePattern(pi *patternInfo) {
	delete(p.patterns, pi.yid)
	p.patternList = removeFirst(p.patternList, pi)
	p.xp.SetLive(pi.yid, false)
}

// recomputeWindows re-derives the window maxima from the live queries, so GC
// aggressiveness after churn matches a fresh processor holding the same
// query set.
func (p *Processor) recomputeWindows() {
	p.maxFiniteWindow, p.maxFiniteHolders = 0, 0
	p.maxCountWindow, p.maxCountHolders = 0, 0
	p.infWindows, p.anyInfWindow = 0, false
	for _, rec := range p.queries {
		if rec != nil && rec.q.Op != xscl.OpNone {
			p.noteWindow(rec.q)
		}
	}
}

// reclaimAll resets the processor to its initial state once the last query
// has been unregistered: join state, per-shard view caches and stats are all
// released, making the processor observationally identical to a fresh one
// (query and template ids are still never reused; the caches' cumulative
// hit/miss/invalidation counters survive, like any diagnostics counter).
//
//mmqjp:shardaccess registration-quiesced; runs inside Unregister
func (p *Processor) reclaimAll() {
	p.state = NewState()
	p.stats = Stats{}
	for _, sh := range p.shards {
		sh.cache.Clear()
		sh.stats = Stats{}
	}
}

// MustRegister is Register, panicking on error (tests, examples).
func (p *Processor) MustRegister(q *xscl.Query) QueryID {
	id, err := p.Register(q)
	if err != nil {
		panic(err)
	}
	return id
}

// registerInstance registers one orientation of a join query and returns its
// instance id. All mutations happen after the fallible analysis steps, so a
// returned error implies no processor state changed.
//
//mmqjp:shardaccess registration-quiesced; Register never runs concurrently with Process
func (p *Processor) registerInstance(q *xscl.Query, qid QueryID, swapped bool) (int64, error) {
	jg, err := BuildJoinGraph(q)
	if err != nil {
		return 0, err
	}
	red := jg.Minor()
	raw := RawEncode(red)
	cr, ok := p.canonMemo[raw]
	if !ok {
		sig, order := Canonicalize(red)
		cr = canonResult{sig: sig, order: order}
		p.canonMemo[raw] = cr
	}
	sig, order := cr.sig, cr.order

	tmpl := p.templates[sig]
	if tmpl == nil {
		tmpl = NewTemplateFromCanonical(sig, red, order)
		tmpl.ID = p.nextTemplateID
		tmpl.plan = p.planStatsFor(sig)
		p.nextTemplateID++
		p.templates[sig] = tmpl
		p.templateList = append(p.templateList, tmpl)
		cols := []string{"qid"}
		for i := 0; i < tmpl.N; i++ {
			cols = append(cols, fmt.Sprintf("v%d", i))
		}
		cols = append(cols, "wl")
		sh := p.assignShard(tmpl)
		sh.templates = append(sh.templates, tmpl)
		sh.rt[tmpl.ID] = relation.New(cols...)
	}
	tmpl.refs++

	// Register the two block patterns and record, per pattern, the
	// structural edges, string-value nodes and root nodes this instance
	// needs (acquired refcounted, released on Unregister).
	lpi := p.registerPattern(q.Left)
	rpi := p.registerPattern(q.Right)
	_, lmap := q.Left.NormalizedFullyBound()
	_, rmap := q.Right.NormalizedFullyBound()

	lc := patternContrib{pi: lpi}
	rc := patternContrib{pi: rpi}
	contribOf := func(side Side) (*patternContrib, []int, []JGNode) {
		if side == Left {
			return &lc, lmap, red.LeftSide.Nodes
		}
		return &rc, rmap, red.RightSide.Nodes
	}
	for _, side := range []Side{Left, Right} {
		c, imap, nodes := contribOf(side)
		for _, nd := range nodes {
			norm := int32(imap[nd.PatternNode.Index])
			if nd.Parent >= 0 {
				parent := int32(imap[nodes[nd.Parent].PatternNode.Index])
				c.addEdge(parent, norm)
			}
		}
		if len(nodes) == 1 {
			c.addRoot(int32(imap[nodes[0].PatternNode.Index]))
		}
	}
	// Value-join endpoints need string values.
	for _, e := range red.VJ {
		lc.addStrNode(int32(lmap[red.LeftSide.Nodes[e.L].PatternNode.Index]))
		rc.addStrNode(int32(rmap[red.RightSide.Nodes[e.R].PatternNode.Index]))
	}
	lpi.acquire(lc)
	rpi.acquire(rc)

	// Insert the query's RT tuple: its canonical variable at each
	// template position, and its window length.
	nl := len(red.LeftSide.Nodes)
	iid := int64(len(p.instances))
	row := make([]relation.Value, 0, tmpl.N+2)
	row = append(row, relation.Int(iid))
	varIDs := make([]int64, tmpl.N)
	for pos := 0; pos < tmpl.N; pos++ {
		flat := order[pos]
		var canon string
		if flat < nl {
			canon = red.LeftSide.Nodes[flat].Canonical
		} else {
			canon = red.RightSide.Nodes[flat-nl].Canonical
		}
		varIDs[pos] = p.syms.intern(canon)
		row = append(row, relation.Int(varIDs[pos]))
	}
	row = append(row, relation.Int(q.Window))
	sh := p.shardOf(tmpl)
	sh.rt[tmpl.ID].Insert(row...)
	sh.rtDirty[tmpl.ID] = true
	vecKey := tmpl.addVector(varIDs, iid, q.Window)

	p.instances = append(p.instances, &instance{
		qid: qid, op: q.Op, swapped: swapped, tmpl: tmpl,
		window: q.Window, windowKind: q.WindowKind,
		vecKey: vecKey, left: lc, right: rc,
	})
	return iid, nil
}

// addEdge records a structural edge in the contribution, deduplicated
// within the instance.
func (c *patternContrib) addEdge(a, b int32) {
	k := [2]int32{a, b}
	for _, e := range c.edges {
		if e == k {
			return
		}
	}
	c.edges = append(c.edges, k)
}

func (c *patternContrib) addStrNode(n int32) {
	for _, s := range c.strNodes {
		if s == n {
			return
		}
	}
	c.strNodes = append(c.strNodes, n)
}

func (c *patternContrib) addRoot(n int32) {
	for _, r := range c.roots {
		if r == n {
			return
		}
	}
	c.roots = append(c.roots, n)
}

// acquire folds a contribution into the pattern's refcounted emission sets;
// an item appearing for the first time joins the emission lists.
func (pi *patternInfo) acquire(c patternContrib) {
	pi.refs++
	for _, k := range c.edges {
		if pi.edgeCount[k]++; pi.edgeCount[k] == 1 {
			pi.edges = append(pi.edges, k)
		}
	}
	for _, n := range c.strNodes {
		if pi.strCount[n]++; pi.strCount[n] == 1 {
			pi.strNodes = append(pi.strNodes, n)
		}
	}
	for _, n := range c.roots {
		if pi.rootCount[n]++; pi.rootCount[n] == 1 {
			pi.roots = append(pi.roots, n)
		}
	}
}

// release undoes acquire; an item whose count reaches zero leaves the
// emission lists (order of the survivors is preserved).
func (pi *patternInfo) release(c patternContrib) {
	pi.refs--
	for _, k := range c.edges {
		if pi.edgeCount[k]--; pi.edgeCount[k] == 0 {
			delete(pi.edgeCount, k)
			pi.edges = removeFirst(pi.edges, k)
		}
	}
	for _, n := range c.strNodes {
		if pi.strCount[n]--; pi.strCount[n] == 0 {
			delete(pi.strCount, n)
			pi.strNodes = removeFirst(pi.strNodes, n)
		}
	}
	for _, n := range c.roots {
		if pi.rootCount[n]--; pi.rootCount[n] == 0 {
			delete(pi.rootCount, n)
			pi.roots = removeFirst(pi.roots, n)
		}
	}
}

// removeFirst removes the first occurrence of v from s, preserving order.
func removeFirst[T comparable](s []T, v T) []T {
	if i := slices.Index(s, v); i >= 0 {
		return slices.Delete(s, i, i+1)
	}
	return s
}

// registerPattern registers the normalized, fully-bound form of the block
// with the shared XPath engine and returns its pattern info.
func (p *Processor) registerPattern(block *xpath.Pattern) *patternInfo {
	norm, _ := block.NormalizedFullyBound()
	yid := p.xp.Register(norm)
	if pi, ok := p.patterns[yid]; ok {
		return pi
	}
	rep := p.xp.Pattern(yid)
	pi := &patternInfo{
		yid: yid, pat: rep,
		canonIDs:  make([]int64, len(rep.Nodes)),
		edgeCount: map[[2]int32]int{},
		strCount:  map[int32]int{},
		rootCount: map[int32]int{},
	}
	for i, n := range rep.Nodes {
		pi.canonIDs[i] = p.syms.intern(rep.CanonicalVar(n))
	}
	p.patterns[yid] = pi
	p.patternList = append(p.patternList, pi)
	return pi
}

// stage1Result carries the order-insensitive per-document work of Stage 1:
// the current-witness relations, the single-block matches, and the phase
// timings to be accumulated by the coordinator. It depends only on the
// document and the registered patterns, never on the join state, which is
// what makes Stage 1 safe to run ahead of order in pipeline workers.
type stage1Result struct {
	doc     *xmldoc.Document
	w       *CurrentWitness
	singles []Match

	xpath, witness, wall time.Duration
}

// runStage1 performs Stage 1 for one document: shared-NFA matching, witness
// relation construction, and single-block match emission. It only reads
// registration-time structures (the shared NFA, pattern infos, query lists),
// so concurrent calls for different documents are safe as long as no
// Register or Unregister runs concurrently.
//
//mmqjp:nondet wall-clock stats timing (output-invisible)
func (p *Processor) runStage1(stream string, d *xmldoc.Document) *stage1Result {
	r := &stage1Result{doc: d, w: NewCurrentWitness(d)}
	t0 := time.Now()
	res := p.xp.MatchDocument(stream, d)
	r.xpath = time.Since(t0)

	t1 := time.Now()
	for _, pi := range p.patternList {
		ws := res.Witnesses(pi.yid)
		if len(ws) == 0 {
			continue
		}
		for _, witness := range ws {
			// The pattern is fully bound: Bindings[i] is the
			// binding of pattern node i.
			b := witness.Bindings
			for _, e := range pi.edges {
				r.w.AddBin(pi.canonIDs[e[0]], pi.canonIDs[e[1]], b[e[0]], b[e[1]])
			}
			for _, n := range pi.strNodes {
				r.w.AddDoc(b[n], d.StringValue(b[n]))
			}
			for _, n := range pi.roots {
				r.w.AddRoot(pi.canonIDs[n], b[n])
			}
		}
		// Single-block queries fire once per witness.
		for _, qid := range p.singleQueries[pi.yid] {
			for _, witness := range ws {
				root := xmldoc.NodeID(0)
				if len(witness.Bindings) > 0 {
					root = witness.Bindings[0]
				}
				r.singles = append(r.singles, Match{
					Query:   qid,
					LeftDoc: d.ID, RightDoc: d.ID,
					LeftTS: d.Timestamp, RightTS: d.Timestamp,
					LeftRoot: root, RightRoot: root,
				})
			}
		}
	}
	r.witness = time.Since(t1)
	r.wall = time.Since(t0)
	// The witnesses are fully copied into the current-witness relations and
	// single-block matches above, so the match result's scratch (candidate
	// lists, NFA state sets) can go back to the engine's pool here — still
	// inside the order-insensitive stage, so pipelined Stage-1 workers
	// recycle scratch without waiting on the coordinator.
	res.Release()
	return r
}

// consumeStage1 runs the order-sensitive tail of document processing on the
// coordinator: Stage-2 template evaluation against the join state, the
// Algorithm-2 state merge, view-cache maintenance, and window GC. Results
// must be consumed in arrival order.
//
//mmqjp:nondet wall-clock stats timing (output-invisible)
//mmqjp:shardaccess coordinator section after Stage-2 workers drain; GC invalidates every shard's cache
func (p *Processor) consumeStage1(r *stage1Result) []Match {
	d, w := r.doc, r.w
	p.stats.Documents++
	p.stats.XPath += r.xpath
	p.stats.Witness += r.witness
	p.stats.Stage1Wall += r.wall
	out := r.singles

	var stage2 time.Duration
	if p.state.NumDocs() > 0 && w.RdocW.Len() > 0 {
		t := time.Now()
		out = append(out, p.evalTemplates(w, d)...)
		stage2 = time.Since(t)
		p.stats.Stage2Wall += stage2
	}
	// The full per-document set — single-block and Stage-2 matches alike —
	// leaves under the canonical total order, so output depends only on the
	// registered query set, never on pattern registration order. That
	// N-invariance is what lets a partition router re-sort the concatenation
	// of N engines' streams into the single-engine byte order.
	sortMatches(out)

	t2 := time.Now()
	p.state.Merge(w, p.cfg.RetainDocuments)
	if p.cfg.ViewMaterialization {
		p.maintainCache(w)
	}
	t3 := time.Now()
	if !p.anyInfWindow && (p.maxFiniteWindow > 0 || p.maxCountWindow > 0) {
		cutoffTS := xmldoc.Timestamp(int64(math.MaxInt64))
		if p.maxFiniteWindow > 0 {
			cutoffTS = d.Timestamp - xmldoc.Timestamp(p.maxFiniteWindow)
		}
		cutoffSeq := int64(math.MaxInt64)
		if p.maxCountWindow > 0 {
			cutoffSeq = p.state.nextSeq - p.maxCountWindow
		}
		if p.state.shouldGC(cutoffTS, cutoffSeq) {
			// Invalidation is scoped: only cache entries whose slices
			// reference an expired document are dropped; surviving
			// entries stay exact, since Algorithm-5 maintenance keeps
			// them in sync with every merge.
			if expired := p.state.GC(cutoffTS, cutoffSeq); len(expired) > 0 {
				for _, sh := range p.shards {
					sh.cache.InvalidateDocs(expired)
				}
			}
		}
	}
	t4 := time.Now()
	p.stats.Maintain += t4.Sub(t2)
	p.stats.Matches += int64(len(out))
	if p.cfg.OnDocument != nil {
		p.cfg.OnDocument(DocTimings{
			Stage1:  r.wall,
			Stage2:  stage2,
			Merge:   t3.Sub(t2),
			GC:      t4.Sub(t3),
			Matches: len(out),
		})
	}
	return out
}

// Process runs the full per-document pipeline (Algorithm 1, or Algorithm 4
// when view materialization is enabled) and returns the matches the
// document triggered.
func (p *Processor) Process(stream string, d *xmldoc.Document) []Match {
	return p.consumeStage1(p.runStage1(stream, d))
}

// RunStage1 implements Backend: the document-local, state-free half of
// processing, safe to run concurrently for different documents as long as no
// Register/Unregister runs alongside.
func (p *Processor) RunStage1(stream string, d *xmldoc.Document) Stage1Result {
	return p.runStage1(stream, d)
}

// ConsumeStage1 implements Backend: the order-sensitive tail for a result of
// this processor's RunStage1. Calls must be made in admission order, never
// concurrently.
func (p *Processor) ConsumeStage1(r Stage1Result) []Match {
	return p.consumeStage1(r.(*stage1Result))
}

func (t *Template) headVars() []string {
	head := []string{"qid", "docid"}
	for i := 0; i < t.N; i++ {
		head = append(head, fmt.Sprintf("n%d", i))
	}
	head = append(head, "wl")
	return head
}

// appendAnchors emits the structural-edge atoms from template position pos
// up to its side root (skipping edges already emitted), or the unary root
// atom for single-node sides.
func (p *Processor) appendAnchors(atoms []relation.Atom, t *Template, w *CurrentWitness, pos int, side Side, emitted map[[2]int]bool, rootDone map[Side]bool) []relation.Atom {
	single := t.SingleLeft
	if side == Right {
		single = t.SingleRight
	}
	if single {
		if rootDone[side] {
			return atoms
		}
		rootDone[side] = true
		if side == Left {
			return append(atoms, relation.Atom{
				Name: "Rroot", Rel: p.state.Rroot,
				Vars: []string{"docid", vvar(t.LeftRoot), nvar(t.LeftRoot)},
			})
		}
		return append(atoms, relation.Atom{
			Name: "RrootW", Rel: w.RrootW,
			Vars: []string{vvar(t.RightRoot), nvar(t.RightRoot)},
		})
	}
	for c := pos; t.Parent[c] >= 0; c = t.Parent[c] {
		edge := [2]int{t.Parent[c], c}
		if emitted[edge] {
			break
		}
		emitted[edge] = true
		if side == Left {
			atoms = append(atoms, relation.Atom{
				Name: "Rbin", Rel: p.state.Rbin,
				Vars: []string{"docid", vvar(edge[0]), vvar(edge[1]), nvar(edge[0]), nvar(edge[1])},
			})
		} else {
			atoms = append(atoms, relation.Atom{
				Name: "RbinW", Rel: w.RbinW,
				Vars: []string{vvar(edge[0]), vvar(edge[1]), nvar(edge[0]), nvar(edge[1])},
			})
		}
	}
	return atoms
}

func vvar(p int) string { return fmt.Sprintf("v%d", p) }
func nvar(p int) string { return fmt.Sprintf("n%d", p) }
func svar(k int) string { return fmt.Sprintf("s%d", k) }

// windowOK applies the Algorithm-3 window constraint for one instance:
// 0 < Δ ≤ wl for FOLLOWED BY, 0 ≤ Δ ≤ wl for JOIN, where Δ is the timestamp
// difference for time windows or the arrival-index difference for tuple
// (ROWS) windows.
func (p *Processor) windowOK(inst *instance, prevDoc xmldoc.DocID, prevTS xmldoc.Timestamp, d *xmldoc.Document) bool {
	var delta int64
	if inst.windowKind == xscl.WindowCount {
		// The current document has not been merged yet; its arrival
		// index will be nextSeq.
		delta = p.state.nextSeq - p.state.seq[prevDoc]
	} else {
		delta = int64(d.Timestamp - prevTS)
	}
	if inst.op == xscl.OpJoin {
		return 0 <= delta && delta <= inst.window
	}
	return 0 < delta && delta <= inst.window
}

// emit converts RoutT rows into matches, applying the temporal constraint of
// Algorithm 3 per instance.
func (p *Processor) emit(t *Template, rout *relation.Relation, d *xmldoc.Document) []Match {
	var out []Match
	for _, row := range rout.Rows {
		inst := p.instances[row[0].I]
		prevDoc := xmldoc.DocID(row[1].I)
		prevTS, ok := p.state.RdocTS[prevDoc]
		if !ok {
			continue
		}
		if !p.windowOK(inst, prevDoc, prevTS, d) {
			continue
		}
		bindings := make([]xmldoc.NodeID, t.N)
		for i := 0; i < t.N; i++ {
			bindings[i] = xmldoc.NodeID(row[2+i].I)
		}
		out = append(out, p.orientMatch(t, inst, prevDoc, prevTS, bindings, d))
	}
	return out
}

// viewMatAtoms builds the Section-5 rewritten conjunctive query: the leaf
// structural edges are folded into RL/RR; remaining structural edges and
// single-node sides fall back to the witness relations.
func (p *Processor) viewMatAtoms(sh *shard, t *Template, w *CurrentWitness, rl, rr *relation.Relation) []relation.Atom {
	var atoms []relation.Atom
	emitted := map[[2]int]bool{}
	rootDone := map[Side]bool{}
	for k, e := range t.VJ {
		l, r := e[0], e[1]
		if t.SingleLeft {
			// Value join on the left root: Rdoc provides the
			// string, Rroot the variable identity.
			atoms = append(atoms, relation.Atom{Name: "Rdoc", Rel: p.state.Rdoc,
				Vars: []string{"docid", nvar(l), svar(k)}})
			atoms = p.appendAnchors(atoms, t, w, l, Left, emitted, rootDone)
		} else {
			pa := t.Parent[l]
			edge := [2]int{pa, l}
			atoms = append(atoms, relation.Atom{Name: "RL", Rel: rl,
				Vars: []string{"docid", vvar(pa), vvar(l), nvar(pa), nvar(l), svar(k)}})
			emitted[edge] = true
			// Anchor the leaf's parent up to the root.
			atoms = p.appendAnchors(atoms, t, w, pa, Left, emitted, rootDone)
		}
		if t.SingleRight {
			atoms = append(atoms, relation.Atom{Name: "RdocW", Rel: w.RdocW,
				Vars: []string{nvar(r), svar(k)}})
			atoms = p.appendAnchors(atoms, t, w, r, Right, emitted, rootDone)
		} else {
			pa := t.Parent[r]
			edge := [2]int{pa, r}
			atoms = append(atoms, relation.Atom{Name: "RR", Rel: rr,
				Vars: []string{vvar(pa), vvar(r), nvar(pa), nvar(r), svar(k)}})
			emitted[edge] = true
			atoms = p.appendAnchors(atoms, t, w, pa, Right, emitted, rootDone)
		}
	}
	atoms = append(atoms, sh.rtAtom(t))
	return atoms
}

// maintainCache implements Algorithm 5: fold the current document's RR
// bindings into the cached RL slices so future documents find them. Each
// string's slice lives in the cache of the shard that owns the string.
//
//mmqjp:shardaccess coordinator maintenance after Stage-2 workers drain
func (p *Processor) maintainCache(w *CurrentWitness) {
	if w.rrSlices == nil {
		return
	}
	did := relation.Int(int64(w.DocID))
	for _, row := range w.rrSlices.Rows {
		id := row[4].SymID()
		slice, ok := p.shardOfSym(id).cache.GetAndNote(id, w.DocID)
		if !ok {
			continue
		}
		// Cached slices outlive the document, so this row is heap
		// allocated by Insert, never carved from the witness arena.
		slice.Insert(did, row[0], row[1], row[2], row[3], row[4])
	}
	w.rrSlices = nil
}
