package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/relation"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/xscl"
	"repro/internal/yfilter"
)

// QueryID identifies a registered XSCL query.
type QueryID int64

// Match is one query result: an output tuple of RoutT that passed the
// temporal constraint (Algorithm 3). Left and Right refer to the query's own
// block order (for a swapped JOIN orientation, Left may be the newer
// document).
type Match struct {
	Query QueryID

	LeftDoc, RightDoc xmldoc.DocID
	LeftTS, RightTS   xmldoc.Timestamp

	// LeftRoot and RightRoot are the bindings of the template side roots,
	// used by the default SELECT * output construction.
	LeftRoot, RightRoot xmldoc.NodeID

	// Template and Bindings expose the full RoutT row: Bindings[p] is the
	// document node bound at template position p (positions on the
	// template's left side bind in the earlier document, right side in
	// the current document, before orientation is applied).
	Template *Template
	Bindings []xmldoc.NodeID
}

// Stats accumulates wall-clock cost of the processing phases, matching the
// breakdown of Figures 14 and 15.
type Stats struct {
	XPath    time.Duration // Stage 1: shared tree-pattern matching
	Witness  time.Duration // building RbinW/RdocW/RrootW from witnesses
	Rvj      time.Duration // common-string discovery (semi-join, Alg. 4 l.2)
	RL       time.Duration // computing/looking up RL slices
	RR       time.Duration // computing RR slices
	CQ       time.Duration // per-template conjunctive query evaluation
	Maintain time.Duration // Algorithm 2 + view cache maintenance + GC
	// Stage1Wall is the per-document wall-clock time of Stage 1 (NFA match
	// plus witness construction), accumulated across documents and batch
	// publishes. In a pipelined batch (Config.PipelineDepth > 1) Stage 1
	// runs concurrently in workers, so Stage1Wall sums per-document time
	// across workers and may exceed the batch's elapsed wall time.
	Stage1Wall time.Duration
	// Stage2Wall is the coordinator's wall-clock time of Stage-2 template
	// evaluation. With Workers > 1 the per-phase timings above accumulate
	// CPU time across workers and may exceed it; Stage2Wall is what
	// shrinks as workers are added. Both wall counters accumulate across
	// Process and ProcessBatch calls.
	Stage2Wall time.Duration
	Matches    int64
	Documents  int64
	// WitnessPlans and RTPlans count per-template plan choices (see
	// rtplan.go); the ablation tests assert the chooser adapts.
	WitnessPlans int64
	RTPlans      int64
}

// add accumulates o into s (merging per-shard stats into a total).
func (s *Stats) add(o Stats) {
	s.XPath += o.XPath
	s.Witness += o.Witness
	s.Rvj += o.Rvj
	s.RL += o.RL
	s.RR += o.RR
	s.CQ += o.CQ
	s.Maintain += o.Maintain
	s.Stage1Wall += o.Stage1Wall
	s.Stage2Wall += o.Stage2Wall
	s.Matches += o.Matches
	s.Documents += o.Documents
	s.WitnessPlans += o.WitnessPlans
	s.RTPlans += o.RTPlans
}

// Config selects processor behaviour.
type Config struct {
	// ViewMaterialization enables the Section-5 optimization: shared
	// Rvj/RL/RR views and the per-string view cache (Algorithms 4 and 5).
	ViewMaterialization bool
	// ViewCacheCapacity bounds the number of cached RL slices
	// (0 = unbounded). Ignored unless ViewMaterialization is set.
	ViewCacheCapacity int
	// RetainDocuments keeps full documents in the join state so that
	// query outputs can be constructed as XML; benchmarks disable it.
	RetainDocuments bool
	// Plan overrides the per-template physical plan choice (tests and
	// ablation benchmarks; PlanAuto picks by cost estimate).
	Plan PlanKind
	// Workers sets the number of template shards evaluated concurrently
	// in Stage 2 (shard.go). Each shard owns the query relations, view
	// cache entries and stats of the templates assigned to it, so workers
	// share no mutable state. 0 or 1 selects sequential evaluation;
	// match output is identical for every worker count.
	Workers int
	// PipelineDepth bounds how many upcoming documents of a ProcessBatch
	// call may have Stage 1 (parse-independent NFA match and witness
	// construction) running or completed ahead of the coordinator's
	// in-order Stage-2 consumption (pipeline.go). 0 or 1 selects the
	// sequential per-document path; match output is identical for every
	// depth.
	PipelineDepth int
}

// PlanKind selects the physical plan for template conjunctive queries.
type PlanKind int

const (
	// PlanAuto chooses per template per document by fan-out estimate.
	PlanAuto PlanKind = iota
	// PlanWitness always joins outward from the current document's
	// value-join pairs (processor.go).
	PlanWitness
	// PlanRTDriven always iterates RT's distinct variable vectors
	// (rtplan.go).
	PlanRTDriven
)

// Processor is the MMQJP Join Processor together with its Stage-1 engine.
type Processor struct {
	cfg  Config
	xp   *yfilter.Engine
	syms *symtab

	queries   []*xscl.Query // by QueryID
	instances []*instance   // by instance id (RT qid column)

	templates    map[string]*Template
	templateList []*Template
	// shards partition the templates for Stage-2 evaluation; each shard
	// owns its templates' RT relations, RT indexes, view cache entries
	// and phase stats (shard.go).
	shards []*shard

	patterns    map[yfilter.PatternID]*patternInfo
	patternList []*patternInfo

	// singleQueries lists single-block (OpNone) queries per pattern.
	singleQueries map[yfilter.PatternID][]QueryID

	state *State

	// canonMemo caches canonicalization results by the raw encoding of
	// the reduced join graph; generated workloads repeat a handful of
	// raw shapes across hundreds of thousands of queries.
	canonMemo map[string]canonResult

	maxFiniteWindow int64 // largest finite time window
	maxCountWindow  int64 // largest finite tuple window
	anyInfWindow    bool

	stats Stats
}

type canonResult struct {
	sig   string
	order []int
}

// instance is one orientation of one query's join: FOLLOWED BY queries have
// one instance, JOIN queries two (the second with the blocks swapped).
type instance struct {
	qid        QueryID
	op         xscl.OpKind
	swapped    bool
	tmpl       *Template
	window     int64
	windowKind xscl.WindowKind
}

// patternInfo records what the Join Processor extracts from the witnesses of
// one distinct registered pattern.
type patternInfo struct {
	yid yfilter.PatternID
	pat *xpath.Pattern // normalized, fully bound representative
	// canonIDs[i] is the interned canonical variable of pattern node i.
	canonIDs []int64

	edgeSet  map[[2]int32]bool
	edges    [][2]int32 // structural edges to emit, as node index pairs
	strSet   map[int32]bool
	strNodes []int32 // nodes whose string values go to RdocW
	rootSet  map[int32]bool
	roots    []int32 // nodes emitted to RrootW (single-node template sides)
}

// NewProcessor returns an empty processor.
func NewProcessor(cfg Config) *Processor {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	// The configured cache capacity is split across shards: each gets
	// ⌈capacity/workers⌉ entries, so the total can round up to
	// capacity+workers-1, and skewed string ownership can thrash a hot
	// shard while cold shards sit under capacity. Capacity only affects
	// recomputation cost, never matches.
	capPer := cfg.ViewCacheCapacity
	if capPer > 0 {
		capPer = (capPer + workers - 1) / workers
	}
	p := &Processor{
		cfg:           cfg,
		xp:            yfilter.NewEngine(),
		syms:          newSymtab(),
		templates:     map[string]*Template{},
		patterns:      map[yfilter.PatternID]*patternInfo{},
		singleQueries: map[yfilter.PatternID][]QueryID{},
		canonMemo:     map[string]canonResult{},
		state:         NewState(),
	}
	for i := 0; i < workers; i++ {
		p.shards = append(p.shards, newShard(i, capPer))
	}
	return p
}

// NumTemplates returns the number of distinct query templates registered.
func (p *Processor) NumTemplates() int { return len(p.templateList) }

// Templates returns the registered templates.
func (p *Processor) Templates() []*Template { return p.templateList }

// NumQueries returns the number of registered queries.
func (p *Processor) NumQueries() int { return len(p.queries) }

// Stats returns the accumulated phase timings: the coordinator's own
// (Stage 1, maintenance, Stage-2 wall clock) plus every shard's Stage-2
// phase times. With Workers > 1 the shard phases are CPU time summed across
// workers.
func (p *Processor) Stats() Stats {
	s := p.stats
	for _, sh := range p.shards {
		s.add(sh.stats)
	}
	return s
}

// ResetStats zeroes the accumulated phase timings.
func (p *Processor) ResetStats() {
	p.stats = Stats{}
	for _, sh := range p.shards {
		sh.stats = Stats{}
	}
}

// Workers returns the number of template shards evaluated concurrently.
func (p *Processor) Workers() int { return len(p.shards) }

// State exposes the join state (read-only use: tests, inspection).
func (p *Processor) State() *State { return p.state }

// Register adds an XSCL query and returns its id.
func (p *Processor) Register(q *xscl.Query) (QueryID, error) {
	qid := QueryID(len(p.queries))

	if q.Op == xscl.OpNone {
		pi := p.registerPattern(q.Left)
		p.singleQueries[pi.yid] = append(p.singleQueries[pi.yid], qid)
		p.queries = append(p.queries, q)
		return qid, nil
	}

	if err := p.registerInstance(q, qid, false); err != nil {
		return 0, err
	}
	if q.Op == xscl.OpJoin {
		swapped := &xscl.Query{
			Left: q.Right, Right: q.Left, Op: q.Op,
			Window: q.Window, WindowKind: q.WindowKind,
			Publish: q.Publish, Source: q.Source,
		}
		for _, pr := range q.Preds {
			swapped.Preds = append(swapped.Preds, xscl.ValueJoin{
				LeftVar: pr.RightVar, RightVar: pr.LeftVar,
				LeftCanonical: pr.RightCanonical, RightCanonical: pr.LeftCanonical,
			})
		}
		if err := p.registerInstance(swapped, qid, true); err != nil {
			return 0, err
		}
	}

	switch {
	case q.Window == xscl.WindowInf:
		p.anyInfWindow = true
	case q.WindowKind == xscl.WindowCount:
		if q.Window > p.maxCountWindow {
			p.maxCountWindow = q.Window
		}
	default:
		if q.Window > p.maxFiniteWindow {
			p.maxFiniteWindow = q.Window
		}
	}
	p.queries = append(p.queries, q)
	return qid, nil
}

// MustRegister is Register, panicking on error (tests, examples).
func (p *Processor) MustRegister(q *xscl.Query) QueryID {
	id, err := p.Register(q)
	if err != nil {
		panic(err)
	}
	return id
}

func (p *Processor) registerInstance(q *xscl.Query, qid QueryID, swapped bool) error {
	jg, err := BuildJoinGraph(q)
	if err != nil {
		return err
	}
	red := jg.Minor()
	raw := RawEncode(red)
	cr, ok := p.canonMemo[raw]
	if !ok {
		sig, order := Canonicalize(red)
		cr = canonResult{sig: sig, order: order}
		p.canonMemo[raw] = cr
	}
	sig, order := cr.sig, cr.order

	tmpl := p.templates[sig]
	if tmpl == nil {
		tmpl = NewTemplateFromCanonical(sig, red, order)
		tmpl.ID = TemplateID(len(p.templateList))
		p.templates[sig] = tmpl
		p.templateList = append(p.templateList, tmpl)
		cols := []string{"qid"}
		for i := 0; i < tmpl.N; i++ {
			cols = append(cols, fmt.Sprintf("v%d", i))
		}
		cols = append(cols, "wl")
		sh := p.shardOf(tmpl)
		sh.templates = append(sh.templates, tmpl)
		sh.rt[tmpl.ID] = relation.New(cols...)
	}

	// Register the two block patterns and record, per pattern, the
	// structural edges, string-value nodes and root nodes the template
	// needs.
	lpi := p.registerPattern(q.Left)
	rpi := p.registerPattern(q.Right)
	_, lmap := q.Left.NormalizedFullyBound()
	_, rmap := q.Right.NormalizedFullyBound()

	sideInfo := func(side Side) (*patternInfo, []int) {
		if side == Left {
			return lpi, lmap
		}
		return rpi, rmap
	}
	sideNodes := func(side Side) []JGNode {
		if side == Left {
			return red.LeftSide.Nodes
		}
		return red.RightSide.Nodes
	}
	for _, side := range []Side{Left, Right} {
		pi, imap := sideInfo(side)
		nodes := sideNodes(side)
		for i, nd := range nodes {
			norm := int32(imap[nd.PatternNode.Index])
			if nd.Parent >= 0 {
				parent := int32(imap[nodes[nd.Parent].PatternNode.Index])
				pi.addEdge(parent, norm)
			}
			_ = i
		}
		if len(nodes) == 1 {
			pi.addRoot(int32(imap[nodes[0].PatternNode.Index]))
		}
	}
	// Value-join endpoints need string values.
	for _, e := range red.VJ {
		lpi.addStrNode(int32(lmap[red.LeftSide.Nodes[e.L].PatternNode.Index]))
		rpi.addStrNode(int32(rmap[red.RightSide.Nodes[e.R].PatternNode.Index]))
	}

	// Insert the query's RT tuple: its canonical variable at each
	// template position, and its window length.
	nl := len(red.LeftSide.Nodes)
	iid := int64(len(p.instances))
	row := make([]relation.Value, 0, tmpl.N+2)
	row = append(row, relation.Int(iid))
	varIDs := make([]int64, tmpl.N)
	for pos := 0; pos < tmpl.N; pos++ {
		flat := order[pos]
		var canon string
		if flat < nl {
			canon = red.LeftSide.Nodes[flat].Canonical
		} else {
			canon = red.RightSide.Nodes[flat-nl].Canonical
		}
		varIDs[pos] = p.syms.intern(canon)
		row = append(row, relation.Int(varIDs[pos]))
	}
	row = append(row, relation.Int(q.Window))
	sh := p.shardOf(tmpl)
	sh.rt[tmpl.ID].Insert(row...)
	sh.rtDirty[tmpl.ID] = true
	tmpl.addVector(varIDs, iid, q.Window)

	p.instances = append(p.instances, &instance{
		qid: qid, op: q.Op, swapped: swapped, tmpl: tmpl,
		window: q.Window, windowKind: q.WindowKind,
	})
	return nil
}

func (pi *patternInfo) addEdge(a, b int32) {
	k := [2]int32{a, b}
	if pi.edgeSet[k] {
		return
	}
	pi.edgeSet[k] = true
	pi.edges = append(pi.edges, k)
}

func (pi *patternInfo) addStrNode(n int32) {
	if pi.strSet[n] {
		return
	}
	pi.strSet[n] = true
	pi.strNodes = append(pi.strNodes, n)
}

func (pi *patternInfo) addRoot(n int32) {
	if pi.rootSet[n] {
		return
	}
	pi.rootSet[n] = true
	pi.roots = append(pi.roots, n)
}

// registerPattern registers the normalized, fully-bound form of the block
// with the shared XPath engine and returns its pattern info.
func (p *Processor) registerPattern(block *xpath.Pattern) *patternInfo {
	norm, _ := block.NormalizedFullyBound()
	yid := p.xp.Register(norm)
	if pi, ok := p.patterns[yid]; ok {
		return pi
	}
	rep := p.xp.Pattern(yid)
	pi := &patternInfo{
		yid: yid, pat: rep,
		canonIDs: make([]int64, len(rep.Nodes)),
		edgeSet:  map[[2]int32]bool{},
		strSet:   map[int32]bool{},
		rootSet:  map[int32]bool{},
	}
	for i, n := range rep.Nodes {
		pi.canonIDs[i] = p.syms.intern(rep.CanonicalVar(n))
	}
	p.patterns[yid] = pi
	p.patternList = append(p.patternList, pi)
	return pi
}

// stage1Result carries the order-insensitive per-document work of Stage 1:
// the current-witness relations, the single-block matches, and the phase
// timings to be accumulated by the coordinator. It depends only on the
// document and the registered patterns, never on the join state, which is
// what makes Stage 1 safe to run ahead of order in pipeline workers.
type stage1Result struct {
	doc     *xmldoc.Document
	w       *CurrentWitness
	singles []Match

	xpath, witness, wall time.Duration
}

// runStage1 performs Stage 1 for one document: shared-NFA matching, witness
// relation construction, and single-block match emission. It only reads
// registration-time structures (the shared NFA, pattern infos, query lists),
// so concurrent calls for different documents are safe as long as no
// Register runs concurrently.
func (p *Processor) runStage1(stream string, d *xmldoc.Document) *stage1Result {
	r := &stage1Result{doc: d, w: NewCurrentWitness(d)}
	t0 := time.Now()
	res := p.xp.MatchDocument(stream, d)
	r.xpath = time.Since(t0)

	t1 := time.Now()
	for _, pi := range p.patternList {
		ws := res.Witnesses(pi.yid)
		if len(ws) == 0 {
			continue
		}
		for _, witness := range ws {
			// The pattern is fully bound: Bindings[i] is the
			// binding of pattern node i.
			b := witness.Bindings
			for _, e := range pi.edges {
				r.w.AddBin(pi.canonIDs[e[0]], pi.canonIDs[e[1]], b[e[0]], b[e[1]])
			}
			for _, n := range pi.strNodes {
				r.w.AddDoc(b[n], d.StringValue(b[n]))
			}
			for _, n := range pi.roots {
				r.w.AddRoot(pi.canonIDs[n], b[n])
			}
		}
		// Single-block queries fire once per witness.
		for _, qid := range p.singleQueries[pi.yid] {
			for _, witness := range ws {
				root := xmldoc.NodeID(0)
				if len(witness.Bindings) > 0 {
					root = witness.Bindings[0]
				}
				r.singles = append(r.singles, Match{
					Query:   qid,
					LeftDoc: d.ID, RightDoc: d.ID,
					LeftTS: d.Timestamp, RightTS: d.Timestamp,
					LeftRoot: root, RightRoot: root,
				})
			}
		}
	}
	r.witness = time.Since(t1)
	r.wall = time.Since(t0)
	return r
}

// consumeStage1 runs the order-sensitive tail of document processing on the
// coordinator: Stage-2 template evaluation against the join state, the
// Algorithm-2 state merge, view-cache maintenance, and window GC. Results
// must be consumed in arrival order.
func (p *Processor) consumeStage1(r *stage1Result) []Match {
	d, w := r.doc, r.w
	p.stats.Documents++
	p.stats.XPath += r.xpath
	p.stats.Witness += r.witness
	p.stats.Stage1Wall += r.wall
	out := r.singles

	if p.state.NumDocs() > 0 && w.RdocW.Len() > 0 {
		t := time.Now()
		out = append(out, p.evalTemplates(w, d)...)
		p.stats.Stage2Wall += time.Since(t)
	}

	t2 := time.Now()
	p.state.Merge(w, p.cfg.RetainDocuments)
	if p.cfg.ViewMaterialization {
		p.maintainCache(w)
	}
	if !p.anyInfWindow && (p.maxFiniteWindow > 0 || p.maxCountWindow > 0) {
		cutoffTS := xmldoc.Timestamp(int64(math.MaxInt64))
		if p.maxFiniteWindow > 0 {
			cutoffTS = d.Timestamp - xmldoc.Timestamp(p.maxFiniteWindow)
		}
		cutoffSeq := int64(math.MaxInt64)
		if p.maxCountWindow > 0 {
			cutoffSeq = p.state.nextSeq - p.maxCountWindow
		}
		if p.state.shouldGC(cutoffTS, cutoffSeq) {
			p.state.GC(cutoffTS, cutoffSeq)
			for _, sh := range p.shards {
				sh.cache.Clear() // cached slices may contain expired rows
			}
		}
	}
	p.stats.Maintain += time.Since(t2)
	p.stats.Matches += int64(len(out))
	return out
}

// Process runs the full per-document pipeline (Algorithm 1, or Algorithm 4
// when view materialization is enabled) and returns the matches the
// document triggered.
func (p *Processor) Process(stream string, d *xmldoc.Document) []Match {
	return p.consumeStage1(p.runStage1(stream, d))
}

func (t *Template) headVars() []string {
	head := []string{"qid", "docid"}
	for i := 0; i < t.N; i++ {
		head = append(head, fmt.Sprintf("n%d", i))
	}
	head = append(head, "wl")
	return head
}

// useRTDriven decides the physical plan for one template against the
// current document: witness-driven when the estimated value-join fan-out is
// small, RT-driven when it would explode (e.g. the two-document technical
// benchmarks, where every leaf of the stored document matches).
func (p *Processor) useRTDriven(t *Template, perDoc map[xmldoc.DocID]int) bool {
	switch p.cfg.Plan {
	case PlanWitness:
		return false
	case PlanRTDriven:
		return true
	}
	return witnessFanout(perDoc, len(t.VJ)) > 4*t.rtDrivenCost()+1024
}

// appendAnchors emits the structural-edge atoms from template position pos
// up to its side root (skipping edges already emitted), or the unary root
// atom for single-node sides.
func (p *Processor) appendAnchors(atoms []relation.Atom, t *Template, w *CurrentWitness, pos int, side Side, emitted map[[2]int]bool, rootDone map[Side]bool) []relation.Atom {
	single := t.SingleLeft
	if side == Right {
		single = t.SingleRight
	}
	if single {
		if rootDone[side] {
			return atoms
		}
		rootDone[side] = true
		if side == Left {
			return append(atoms, relation.Atom{
				Name: "Rroot", Rel: p.state.Rroot,
				Vars: []string{"docid", vvar(t.LeftRoot), nvar(t.LeftRoot)},
			})
		}
		return append(atoms, relation.Atom{
			Name: "RrootW", Rel: w.RrootW,
			Vars: []string{vvar(t.RightRoot), nvar(t.RightRoot)},
		})
	}
	for c := pos; t.Parent[c] >= 0; c = t.Parent[c] {
		edge := [2]int{t.Parent[c], c}
		if emitted[edge] {
			break
		}
		emitted[edge] = true
		if side == Left {
			atoms = append(atoms, relation.Atom{
				Name: "Rbin", Rel: p.state.Rbin,
				Vars: []string{"docid", vvar(edge[0]), vvar(edge[1]), nvar(edge[0]), nvar(edge[1])},
			})
		} else {
			atoms = append(atoms, relation.Atom{
				Name: "RbinW", Rel: w.RbinW,
				Vars: []string{vvar(edge[0]), vvar(edge[1]), nvar(edge[0]), nvar(edge[1])},
			})
		}
	}
	return atoms
}

func vvar(p int) string { return fmt.Sprintf("v%d", p) }
func nvar(p int) string { return fmt.Sprintf("n%d", p) }
func svar(k int) string { return fmt.Sprintf("s%d", k) }

// windowOK applies the Algorithm-3 window constraint for one instance:
// 0 < Δ ≤ wl for FOLLOWED BY, 0 ≤ Δ ≤ wl for JOIN, where Δ is the timestamp
// difference for time windows or the arrival-index difference for tuple
// (ROWS) windows.
func (p *Processor) windowOK(inst *instance, prevDoc xmldoc.DocID, prevTS xmldoc.Timestamp, d *xmldoc.Document) bool {
	var delta int64
	if inst.windowKind == xscl.WindowCount {
		// The current document has not been merged yet; its arrival
		// index will be nextSeq.
		delta = p.state.nextSeq - p.state.seq[prevDoc]
	} else {
		delta = int64(d.Timestamp - prevTS)
	}
	if inst.op == xscl.OpJoin {
		return 0 <= delta && delta <= inst.window
	}
	return 0 < delta && delta <= inst.window
}

// emit converts RoutT rows into matches, applying the temporal constraint of
// Algorithm 3 per instance.
func (p *Processor) emit(t *Template, rout *relation.Relation, d *xmldoc.Document) []Match {
	var out []Match
	for _, row := range rout.Rows {
		inst := p.instances[row[0].I]
		prevDoc := xmldoc.DocID(row[1].I)
		prevTS, ok := p.state.RdocTS[prevDoc]
		if !ok {
			continue
		}
		if !p.windowOK(inst, prevDoc, prevTS, d) {
			continue
		}
		bindings := make([]xmldoc.NodeID, t.N)
		for i := 0; i < t.N; i++ {
			bindings[i] = xmldoc.NodeID(row[2+i].I)
		}
		out = append(out, p.orientMatch(t, inst, prevDoc, prevTS, bindings, d))
	}
	return out
}

// viewMatAtoms builds the Section-5 rewritten conjunctive query: the leaf
// structural edges are folded into RL/RR; remaining structural edges and
// single-node sides fall back to the witness relations.
func (p *Processor) viewMatAtoms(sh *shard, t *Template, w *CurrentWitness, rl, rr *relation.Relation) []relation.Atom {
	var atoms []relation.Atom
	emitted := map[[2]int]bool{}
	rootDone := map[Side]bool{}
	for k, e := range t.VJ {
		l, r := e[0], e[1]
		if t.SingleLeft {
			// Value join on the left root: Rdoc provides the
			// string, Rroot the variable identity.
			atoms = append(atoms, relation.Atom{Name: "Rdoc", Rel: p.state.Rdoc,
				Vars: []string{"docid", nvar(l), svar(k)}})
			atoms = p.appendAnchors(atoms, t, w, l, Left, emitted, rootDone)
		} else {
			pa := t.Parent[l]
			edge := [2]int{pa, l}
			atoms = append(atoms, relation.Atom{Name: "RL", Rel: rl,
				Vars: []string{"docid", vvar(pa), vvar(l), nvar(pa), nvar(l), svar(k)}})
			emitted[edge] = true
			// Anchor the leaf's parent up to the root.
			atoms = p.appendAnchors(atoms, t, w, pa, Left, emitted, rootDone)
		}
		if t.SingleRight {
			atoms = append(atoms, relation.Atom{Name: "RdocW", Rel: w.RdocW,
				Vars: []string{nvar(r), svar(k)}})
			atoms = p.appendAnchors(atoms, t, w, r, Right, emitted, rootDone)
		} else {
			pa := t.Parent[r]
			edge := [2]int{pa, r}
			atoms = append(atoms, relation.Atom{Name: "RR", Rel: rr,
				Vars: []string{vvar(pa), vvar(r), nvar(pa), nvar(r), svar(k)}})
			emitted[edge] = true
			atoms = p.appendAnchors(atoms, t, w, pa, Right, emitted, rootDone)
		}
	}
	atoms = append(atoms, sh.rtAtom(t))
	return atoms
}

// maintainCache implements Algorithm 5: fold the current document's RR
// bindings into the cached RL slices so future documents find them. Each
// string's slice lives in the cache of the shard that owns the string.
func (p *Processor) maintainCache(w *CurrentWitness) {
	if w.rrSlices == nil {
		return
	}
	did := relation.Int(int64(w.DocID))
	for _, row := range w.rrSlices.Rows {
		s := row[4].S
		slice, ok := p.shardOfString(s).cache.Get(s)
		if !ok {
			continue
		}
		slice.Insert(did, row[0], row[1], row[2], row[3], row[4])
	}
	w.rrSlices = nil
}
