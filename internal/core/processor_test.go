package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// feedPaperDocs processes d1 then d2 (Figures 1 and 2) and returns the
// matches triggered by d2.
func feedPaperDocs(t *testing.T, cfg Config, window int64) (*Processor, []QueryID, []Match) {
	t.Helper()
	p := NewProcessor(cfg)
	ids := []QueryID{
		p.MustRegister(xscl.PaperQ1(window)),
		p.MustRegister(xscl.PaperQ2(window)),
		p.MustRegister(xscl.PaperQ3(window)),
	}
	d1 := xmldoc.PaperD1(1, 100)
	d2 := xmldoc.PaperD2(2, 200)
	if got := p.Process("S", d1); len(got) != 0 {
		t.Fatalf("d1 produced %d matches, want 0", len(got))
	}
	return p, ids, p.Process("S", d2)
}

func matchSummary(ms []Match) []string {
	var out []string
	for _, m := range ms {
		out = append(out, summaryOf(m))
	}
	sort.Strings(out)
	return out
}

func summaryOf(m Match) string {
	return string(rune('A'+int(m.Query))) +
		":" + itos(int64(m.LeftDoc)) + "->" + itos(int64(m.RightDoc))
}

func itos(i int64) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return "big"
}

// TestPaperWorkedExample reproduces Section 4.4.1: after d1 and d2, Q1 and
// Q2 each produce exactly one result; Q3 produces none (d1 is not a blog).
func TestPaperWorkedExample(t *testing.T) {
	for _, cfg := range []Config{{}, {ViewMaterialization: true}} {
		_, ids, ms := feedPaperDocs(t, cfg, 1000)
		if len(ms) != 2 {
			t.Fatalf("cfg=%+v: %d matches, want 2: %v", cfg, len(ms), matchSummary(ms))
		}
		seen := map[QueryID]bool{}
		for _, m := range ms {
			seen[m.Query] = true
			if m.LeftDoc != 1 || m.RightDoc != 2 {
				t.Errorf("match docs = %d -> %d", m.LeftDoc, m.RightDoc)
			}
			if m.LeftRoot != 0 || m.RightRoot != 0 {
				t.Errorf("roots = %d, %d, want the two document roots", m.LeftRoot, m.RightRoot)
			}
		}
		if !seen[ids[0]] || !seen[ids[1]] || seen[ids[2]] {
			t.Errorf("fired queries = %v, want Q1 and Q2 only", seen)
		}
	}
}

// TestPaperTable4Bindings checks the RoutT node bindings of Table 4(f):
// Q1 binds (0,2,4 | 0,2,3): book root, Danny Ayers author, title in d1;
// blog root, author, title in d2.
func TestPaperTable4Bindings(t *testing.T) {
	_, ids, ms := feedPaperDocs(t, Config{}, 1000)
	for _, m := range ms {
		if m.Query != ids[0] {
			continue
		}
		nodes := map[int64]bool{}
		for _, b := range m.Bindings {
			nodes[int64(b)] = true
		}
		// Left side nodes 0 (book), 2/3 is the author node id 3 in
		// Figure 1 numbering... our PaperD1 has Danny Ayers at node 3
		// and title at node 4; right side: blog root 0, author 2,
		// title 3.
		for _, want := range []int64{0, 3, 4, 2} {
			if !nodes[want] {
				t.Errorf("Q1 bindings missing node %d: %v", want, m.Bindings)
			}
		}
	}
}

// TestPaperStateRelations checks Rdoc/Rbin contents after d1 against
// Tables 4(b) and 4(c): value-join nodes of d1 are the authors (2,3), title
// (4) and categories (5,6); Rbin holds the root→leaf pairs.
func TestPaperStateRelations(t *testing.T) {
	p := NewProcessor(Config{})
	p.MustRegister(xscl.PaperQ1(1000))
	p.MustRegister(xscl.PaperQ2(1000))
	p.MustRegister(xscl.PaperQ3(1000))
	p.Process("S", xmldoc.PaperD1(1, 100))

	st := p.State()
	gotNodes := map[int64]string{}
	for _, row := range st.Rdoc.Rows {
		gotNodes[row[1].I] = row[2].String()
	}
	want := map[int64]string{
		2: "Andrew Watt",
		3: "Danny Ayers",
		4: "Beginning RSS and Atom Programming",
		5: "Scripting & Programming",
		6: "Web Site Development",
	}
	for n, s := range want {
		if gotNodes[n] != s {
			t.Errorf("Rdoc node %d = %q, want %q", n, gotNodes[n], s)
		}
	}
	// Rbin: pairs (0,2), (0,3) for authors, (0,4) for title, (0,5), (0,6)
	// for categories — exactly Table 4(c).
	pairs := map[[2]int64]bool{}
	for _, row := range st.Rbin.Rows {
		pairs[[2]int64{row[3].I, row[4].I}] = true
	}
	for _, p2 := range [][2]int64{{0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}} {
		if !pairs[p2] {
			t.Errorf("Rbin missing pair %v (have %v)", p2, pairs)
		}
	}
}

func TestFollowedByWindowSemantics(t *testing.T) {
	p := NewProcessor(Config{})
	p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 50} S//b->y"))

	mk := func(id xmldoc.DocID, ts xmldoc.Timestamp, tag string) *xmldoc.Document {
		b := xmldoc.NewBuilder(id, ts, tag)
		_ = b.Element(0, "t", "")
		b.SetText(0, "v")
		return b.Build()
	}
	// a at ts=100.
	p.Process("S", mk(1, 100, "a"))
	// b at ts=100: delta 0, FOLLOWED BY requires strictly later.
	if ms := p.Process("S", mk(2, 100, "b")); len(ms) != 0 {
		t.Errorf("delta=0 fired: %v", ms)
	}
	// b at ts=150: inside the window.
	if ms := p.Process("S", mk(3, 150, "b")); len(ms) != 1 {
		t.Errorf("delta=50 matches = %d, want 1", len(ms))
	}
	// b at ts=151: outside.
	if ms := p.Process("S", mk(4, 151, "b")); len(ms) != 0 {
		t.Errorf("delta=51 fired")
	}
	// b before a never fires (need a fresh a later).
	if ms := p.Process("S", mk(5, 200, "a")); len(ms) != 0 {
		t.Errorf("a triggered: %v", ms)
	}
}

func TestFollowedByDirectionality(t *testing.T) {
	p := NewProcessor(Config{})
	p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 100} S//b->y"))
	mk := func(id xmldoc.DocID, ts xmldoc.Timestamp, tag string) *xmldoc.Document {
		b := xmldoc.NewBuilder(id, ts, tag)
		b.SetText(0, "v")
		return b.Build()
	}
	// b first, then a: must not fire.
	p.Process("S", mk(1, 100, "b"))
	if ms := p.Process("S", mk(2, 150, "a")); len(ms) != 0 {
		t.Errorf("reversed order fired: %v", ms)
	}
}

func TestJoinOperatorSymmetric(t *testing.T) {
	for _, cfg := range []Config{{}, {ViewMaterialization: true}} {
		p := NewProcessor(cfg)
		qid := p.MustRegister(xscl.MustParse("S//a->x JOIN{x=y, 100} S//b->y"))
		mk := func(id xmldoc.DocID, ts xmldoc.Timestamp, tag string) *xmldoc.Document {
			b := xmldoc.NewBuilder(id, ts, tag)
			b.SetText(0, "v")
			return b.Build()
		}
		// b first, then a: JOIN fires (symmetric).
		p.Process("S", mk(1, 100, "b"))
		ms := p.Process("S", mk(2, 150, "a"))
		if len(ms) != 1 {
			t.Fatalf("cfg=%+v: reversed JOIN matches = %d, want 1", cfg, len(ms))
		}
		m := ms[0]
		if m.Query != qid {
			t.Errorf("query = %d", m.Query)
		}
		// The a document is the query's LEFT block even though it is newer.
		if m.LeftDoc != 2 || m.RightDoc != 1 {
			t.Errorf("join orientation: left=%d right=%d, want 2,1", m.LeftDoc, m.RightDoc)
		}
		// Same-timestamp JOIN also fires.
		ms = p.Process("S", mk(3, 150, "b"))
		if len(ms) != 1 {
			t.Errorf("cfg=%+v: same-ts JOIN matches = %d, want 1 (a@150 JOIN b@150)", cfg, len(ms))
		}
	}
}

func TestSingleBlockQuery(t *testing.T) {
	p := NewProcessor(Config{})
	qid := p.MustRegister(xscl.MustParse("S//book->x"))
	ms := p.Process("S", xmldoc.PaperD1(1, 100))
	if len(ms) != 1 || ms[0].Query != qid {
		t.Fatalf("matches = %v", ms)
	}
	if ms[0].LeftDoc != 1 || ms[0].RightDoc != 1 {
		t.Errorf("single-block docs = %d, %d", ms[0].LeftDoc, ms[0].RightDoc)
	}
	if len(p.Process("S", xmldoc.PaperD2(2, 200))) != 0 {
		t.Errorf("blog doc matched //book")
	}
}

func TestSelfJoinQ3OnBlogPair(t *testing.T) {
	// Two blog postings by the same author with the same title: Q3 fires.
	for _, cfg := range []Config{{}, {ViewMaterialization: true}} {
		p := NewProcessor(cfg)
		qid := p.MustRegister(xscl.PaperQ3(1000))
		d2 := xmldoc.PaperD2(1, 100)
		d2b := xmldoc.PaperD2(2, 200) // identical content, later timestamp
		p.Process("S", d2)
		ms := p.Process("S", d2b)
		if len(ms) != 1 {
			t.Fatalf("cfg=%+v: Q3 matches = %d, want 1", cfg, len(ms))
		}
		if ms[0].Query != qid || ms[0].LeftDoc != 1 || ms[0].RightDoc != 2 {
			t.Errorf("match = %+v", ms[0])
		}
	}
}

func TestValueJoinMustMatchVariables(t *testing.T) {
	// A query joining author=author must NOT fire when only title=author
	// values collide: variable identity is enforced through RT.
	p := NewProcessor(Config{})
	p.MustRegister(xscl.MustParse(
		"S//a->r1[.//x->v1] FOLLOWED BY{v1=w1, 100} S//b->r2[.//y->w1]"))

	b1 := xmldoc.NewBuilder(1, 100, "a")
	b1.Element(0, "z", "shared") // wrong element: z, not x
	d1 := b1.Build()
	p.Process("S", d1)

	b2 := xmldoc.NewBuilder(2, 150, "b")
	b2.Element(0, "y", "shared")
	d2 := b2.Build()
	if ms := p.Process("S", d2); len(ms) != 0 {
		t.Errorf("wrong-variable value collision fired: %v", ms)
	}

	// Now a real x leaf with the same value: fires.
	b3 := xmldoc.NewBuilder(3, 160, "a")
	b3.Element(0, "x", "shared")
	p.Process("S", b3.Build())
	b4 := xmldoc.NewBuilder(4, 170, "b")
	b4.Element(0, "y", "shared")
	if ms := p.Process("S", b4.Build()); len(ms) != 1 {
		t.Errorf("correct-variable match count = %d, want 1", len(ms))
	}
}

func TestConjunctionAllPredicatesRequired(t *testing.T) {
	for _, cfg := range []Config{{}, {ViewMaterialization: true}} {
		p := NewProcessor(cfg)
		p.MustRegister(xscl.MustParse(
			"S//a->r1[.//x->v1][.//y->v2] FOLLOWED BY{v1=w1 AND v2=w2, 100} S//b->r2[.//x->w1][.//y->w2]"))
		b1 := xmldoc.NewBuilder(1, 100, "a")
		b1.Element(0, "x", "p")
		b1.Element(0, "y", "q")
		p.Process("S", b1.Build())

		// Only x matches: no fire.
		b2 := xmldoc.NewBuilder(2, 110, "b")
		b2.Element(0, "x", "p")
		b2.Element(0, "y", "DIFFERENT")
		if ms := p.Process("S", b2.Build()); len(ms) != 0 {
			t.Errorf("cfg=%+v: partial predicate satisfaction fired", cfg)
		}
		// Both match: fire.
		b3 := xmldoc.NewBuilder(3, 120, "b")
		b3.Element(0, "x", "p")
		b3.Element(0, "y", "q")
		if ms := p.Process("S", b3.Build()); len(ms) != 1 {
			t.Errorf("cfg=%+v: full predicate satisfaction matches = %d, want 1", cfg, len(ms))
		}
	}
}

func TestTemplateSharingAcrossQueries(t *testing.T) {
	// 1000 queries over the flat schema with the Figure-17 construction
	// share at most N templates.
	p := NewProcessor(Config{})
	p.MustRegister(xscl.PaperQ1(10))
	p.MustRegister(xscl.PaperQ2(10))
	p.MustRegister(xscl.PaperQ3(10))
	if p.NumTemplates() != 1 {
		t.Errorf("templates = %d, want 1 (Figure 5)", p.NumTemplates())
	}
	if p.NumQueries() != 3 {
		t.Errorf("queries = %d", p.NumQueries())
	}
}

func TestWindowGC(t *testing.T) {
	p := NewProcessor(Config{})
	p.MustRegister(xscl.MustParse("S//a->x FOLLOWED BY{x=y, 10} S//b->y"))
	mk := func(id xmldoc.DocID, ts xmldoc.Timestamp, tag string) *xmldoc.Document {
		b := xmldoc.NewBuilder(id, ts, tag)
		b.SetText(0, "v")
		return b.Build()
	}
	for i := 0; i < 100; i++ {
		p.Process("S", mk(xmldoc.DocID(i+1), xmldoc.Timestamp(i*20), "a"))
	}
	// Windows are 10, documents 20 apart: all but the newest are
	// expired; GC must have bounded the state.
	if n := p.State().NumDocs(); n > 40 {
		t.Errorf("state holds %d docs after GC, want bounded", n)
	}
	// Semantics preserved: an in-window b still matches the latest a.
	ms := p.Process("S", mk(200, xmldoc.Timestamp(99*20+5), "b"))
	if len(ms) != 1 {
		t.Errorf("post-GC match count = %d, want 1", len(ms))
	}
}

func TestStatsAccumulate(t *testing.T) {
	p, _, _ := feedPaperDocs(t, Config{ViewMaterialization: true}, 1000)
	st := p.Stats()
	if st.Documents != 2 || st.Matches != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.XPath == 0 {
		t.Errorf("XPath time not recorded")
	}
	p.ResetStats()
	if p.Stats().Documents != 0 {
		t.Errorf("reset failed")
	}
}

func TestCrossStreamJoin(t *testing.T) {
	// The paper's techniques "can be extended to handle ... more than one
	// input stream": blocks on different streams join through the shared
	// witness relations.
	for _, cfg := range []Config{{}, {ViewMaterialization: true}, {Plan: PlanRTDriven}} {
		p := NewProcessor(cfg)
		qid := p.MustRegister(xscl.MustParse(
			"News//story->s[./topic->t] FOLLOWED BY{t=t2, 100} Blogs//post->b[./topic->t2]"))

		mk := func(id xmldoc.DocID, ts xmldoc.Timestamp, root, leaf, val string) *xmldoc.Document {
			b := xmldoc.NewBuilder(id, ts, root)
			b.Element(0, leaf, val)
			return b.Build()
		}
		if ms := p.Process("News", mk(1, 10, "story", "topic", "go")); len(ms) != 0 {
			t.Fatalf("cfg=%+v: story alone fired", cfg)
		}
		// A matching topic on the wrong stream must not fire.
		if ms := p.Process("News", mk(2, 20, "post", "topic", "go")); len(ms) != 0 {
			t.Fatalf("cfg=%+v: post document on News stream fired", cfg)
		}
		ms := p.Process("Blogs", mk(3, 30, "post", "topic", "go"))
		if len(ms) != 1 || ms[0].Query != qid || ms[0].LeftDoc != 1 || ms[0].RightDoc != 3 {
			t.Fatalf("cfg=%+v: cross-stream match = %v", cfg, ms)
		}
	}
}

func TestRawEncodeDistinguishesShapes(t *testing.T) {
	mk := func(src string) string {
		g, err := BuildJoinGraph(xscl.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		return RawEncode(g.Minor())
	}
	a := mk("S//r->x[.//a->a1][.//b->b1] FOLLOWED BY{a1=c1 AND b1=d1, 10} S//s->y[.//c->c1][.//d->d1]")
	fan := mk("S//r->x[.//a->a1][.//b->b1] FOLLOWED BY{a1=c1 AND a1=d1, 10} S//s->y[.//c->c1][.//d->d1]")
	if a == fan {
		t.Errorf("raw keys collide for different wirings")
	}
	// Predicate order must not matter (edges sorted in the raw key).
	p1 := mk("S//r->x[.//a->a1][.//b->b1] FOLLOWED BY{a1=c1 AND b1=d1, 10} S//s->y[.//c->c1][.//d->d1]")
	p2 := mk("S//r->x[.//a->a1][.//b->b1] FOLLOWED BY{b1=d1 AND a1=c1, 10} S//s->y[.//c->c1][.//d->d1]")
	if p1 != p2 {
		t.Errorf("raw keys differ under predicate reordering")
	}
}

func TestSymtabInterning(t *testing.T) {
	s := newSymtab()
	a := s.intern("S//blog//author")
	b := s.intern("S//blog//title")
	a2 := s.intern("S//blog//author")
	if a != a2 || a == b {
		t.Errorf("interning broken: %d %d %d", a, a2, b)
	}
	if s.name(a) != "S//blog//author" {
		t.Errorf("name(%d) = %q", a, s.name(a))
	}
}

func TestJoinGraphString(t *testing.T) {
	g, _ := BuildJoinGraph(xscl.PaperQ1(10))
	s := g.String()
	for _, want := range []string{"LHS", "RHS", "value joins", "x1", "x5"} {
		if !strings.Contains(s, want) {
			t.Errorf("join graph rendering missing %q:\n%s", want, s)
		}
	}
}
