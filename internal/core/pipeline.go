package core

import (
	"repro/internal/xmldoc"
)

// Batch ingestion pipeline: Stage 1 of a document (shared-NFA match plus
// CurrentWitness construction, runStage1) depends only on the document and
// the registration-time pattern structures — only the Algorithm-2 state
// merge, Stage-2 evaluation against the join state, and window GC are
// order-sensitive. ProcessBatch exploits this by running Stage 1 for up to
// Config.PipelineDepth upcoming documents in worker goroutines while the
// coordinator consumes completed witnesses strictly in arrival order
// (consumeStage1), so matches, join state, and window semantics are
// byte-identical to processing the documents one Process call at a time.

// ProcessBatch processes docs on stream in arrival order and returns the
// matches of each document, exactly as len(docs) consecutive Process calls
// would. With Config.PipelineDepth > 1 the Stage-1 work of upcoming
// documents overlaps the coordinator's ordered Stage-2 consumption.
func (p *Processor) ProcessBatch(stream string, docs []*xmldoc.Document) [][]Match {
	out := make([][]Match, len(docs))
	p.ProcessBatchFunc(stream, docs, func(i int, ms []Match) { out[i] = ms })
	return out
}

// ProcessBatchFunc is ProcessBatch with per-document delivery: deliver is
// called on the coordinator goroutine, in arrival order, after document i's
// Stage 2, state merge, and GC have completed. The engine facade uses the
// callback to cascade composition publishes between batch documents at the
// same point the sequential path would. deliver may itself call Process
// (for derived documents) but must not call Register, Unregister or
// ProcessBatch.
func (p *Processor) ProcessBatchFunc(stream string, docs []*xmldoc.Document, deliver func(i int, matches []Match)) {
	depth := p.cfg.PipelineDepth
	if depth <= 1 || len(docs) <= 1 {
		for i, d := range docs {
			deliver(i, p.Process(stream, d))
		}
		return
	}

	// Bounded lookahead: a document's Stage 1 may start only while fewer
	// than depth documents are admitted but not yet consumed; the
	// coordinator releases a slot after consuming each document, so the
	// pipeline never runs more than depth documents ahead of the
	// order-sensitive tail.
	results := make([]chan *stage1Result, len(docs))
	for i := range results {
		results[i] = make(chan *stage1Result, 1)
	}
	sem := make(chan struct{}, depth)
	jobs := make(chan int)
	go func() {
		for i := range docs {
			sem <- struct{}{}
			jobs <- i
		}
		close(jobs)
	}()
	workers := depth
	if workers > len(docs) {
		workers = len(docs)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				results[i] <- p.runStage1(stream, docs[i])
			}
		}()
	}
	for i := range docs {
		r := <-results[i]
		deliver(i, p.consumeStage1(r))
		<-sem
	}
}
