package core

import (
	"repro/internal/xmldoc"
)

// Batch ingestion pipeline: Stage 1 of a document (shared-NFA match plus
// CurrentWitness construction, runStage1) depends only on the document and
// the registration-time pattern structures — only the Algorithm-2 state
// merge, Stage-2 evaluation against the join state, and window GC are
// order-sensitive. ProcessBatch exploits this by running Stage 1 for up to
// Config.PipelineDepth upcoming documents in worker goroutines while the
// coordinator consumes completed witnesses strictly in arrival order, so
// matches, join state, and window semantics are byte-identical to processing
// the documents one Process call at a time. The machinery is the continuous
// ingest pipeline (ingest.go) run batch-scoped: admission order is the
// batch's document order, and Close both drains and bounds the goroutines'
// lifetime to the call.

// ProcessBatch processes docs on stream in arrival order and returns the
// matches of each document, exactly as len(docs) consecutive Process calls
// would. With Config.PipelineDepth > 1 the Stage-1 work of upcoming
// documents overlaps the coordinator's ordered Stage-2 consumption.
func (p *Processor) ProcessBatch(stream string, docs []*xmldoc.Document) [][]Match {
	out := make([][]Match, len(docs))
	p.ProcessBatchFunc(stream, docs, func(i int, ms []Match) { out[i] = ms })
	return out
}

// ProcessBatchFunc is ProcessBatch with per-document delivery: deliver is
// called on the pipeline coordinator, in arrival order, after document i's
// Stage 2, state merge, and GC have completed — the call returns only once
// every document has been delivered. The engine facade uses the callback to
// cascade composition publishes between batch documents at the same point
// the sequential path would. deliver may itself call Process (for derived
// documents) but must not call Register, Unregister or ProcessBatch.
func (p *Processor) ProcessBatchFunc(stream string, docs []*xmldoc.Document, deliver func(i int, matches []Match)) {
	RunBatch(p, p.cfg.PipelineDepth, stream, docs, deliver)
}

// RunBatch drives docs through any Backend with up to depth documents'
// Stage 1 in flight ahead of the in-order consume — ProcessBatchFunc
// generalized over Backend, so the partition router's batch path reuses the
// same machinery. depth <= 1 (or a single document) selects the sequential
// per-document path; output is identical for every depth.
func RunBatch(b Backend, depth int, stream string, docs []*xmldoc.Document, deliver func(i int, matches []Match)) {
	if depth <= 1 || len(docs) <= 1 {
		for i, d := range docs {
			deliver(i, b.ConsumeStage1(b.RunStage1(stream, d)))
		}
		return
	}
	workers := depth
	if workers > len(docs) {
		workers = len(docs)
	}
	ing := NewIngest(b, IngestConfig{Depth: depth, Workers: workers})
	for i, d := range docs {
		i := i
		// Submit blocks at the admission bound, so the batch never runs
		// more than depth+1 documents ahead of the order-sensitive tail;
		// it cannot fail on a pipeline private to this call.
		_ = ing.Submit(stream, d, func(ms []Match) { deliver(i, ms) })
	}
	ing.Close()
}
