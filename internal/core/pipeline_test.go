package core

import (
	"math/rand"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// joiningDocs returns two documents that match both sides of joinQuery with
// a shared string value, so Stage 2 actually evaluates on the second.
func joiningDocs() (*xmldoc.Document, *xmldoc.Document) {
	b1 := xmldoc.NewBuilder(1, 10, "a")
	b1.Element(0, "x", "k")
	b2 := xmldoc.NewBuilder(2, 12, "b")
	b2.Element(0, "y", "k")
	return b1.Build(), b2.Build()
}

const joinQuery = "S//a->r1[.//x->v] JOIN{v=w, 100} S//b->r2[.//y->w]"

// TestBatchStatsAccumulate publishes two 2-document batches and checks the
// Stage1Wall/Stage2Wall counters (and the document count) accumulate across
// batch publishes rather than resetting per call — at pipeline depth 0
// (sequential path) and depth 2 (pipelined path).
func TestBatchStatsAccumulate(t *testing.T) {
	for _, depth := range []int{0, 2} {
		p := NewProcessor(Config{ViewMaterialization: true, PipelineDepth: depth})
		p.MustRegister(xscl.MustParse(joinQuery))
		d1, d2 := joiningDocs()
		if n := len(p.ProcessBatch("S", []*xmldoc.Document{d1, d2})[1]); n != 1 {
			t.Fatalf("depth=%d: second doc of batch produced %d matches, want 1", depth, n)
		}
		s := p.Stats()
		if s.Documents != 2 {
			t.Errorf("depth=%d: Documents = %d after one 2-doc batch, want 2", depth, s.Documents)
		}
		if s.Stage1Wall == 0 {
			t.Errorf("depth=%d: Stage1Wall not recorded", depth)
		}
		if s.Stage2Wall == 0 {
			t.Errorf("depth=%d: Stage2Wall not recorded", depth)
		}
		if s.XPath == 0 || s.Witness == 0 {
			t.Errorf("depth=%d: Stage-1 phase stats not accumulated: xpath %v witness %v", depth, s.XPath, s.Witness)
		}

		// A second batch must add to, not replace, the first batch's
		// counters.
		b3 := xmldoc.NewBuilder(3, 14, "a")
		b3.Element(0, "x", "k")
		b4 := xmldoc.NewBuilder(4, 16, "b")
		b4.Element(0, "y", "k")
		p.ProcessBatch("S", []*xmldoc.Document{b3.Build(), b4.Build()})
		s2 := p.Stats()
		if s2.Documents != 4 {
			t.Errorf("depth=%d: Documents = %d after two batches, want 4", depth, s2.Documents)
		}
		if s2.Stage1Wall <= s.Stage1Wall {
			t.Errorf("depth=%d: Stage1Wall did not accumulate: %v then %v", depth, s.Stage1Wall, s2.Stage1Wall)
		}
		if s2.Stage2Wall <= s.Stage2Wall {
			t.Errorf("depth=%d: Stage2Wall did not accumulate: %v then %v", depth, s.Stage2Wall, s2.Stage2Wall)
		}

		p.ResetStats()
		if s3 := p.Stats(); s3.Stage1Wall != 0 || s3.Stage2Wall != 0 || s3.Documents != 0 {
			t.Errorf("depth=%d: ResetStats left residue: %+v", depth, s3)
		}
	}
}

// TestProcessBatchDegenerate checks the empty and single-document batches at
// every depth.
func TestProcessBatchDegenerate(t *testing.T) {
	for _, depth := range []int{0, 1, 4} {
		p := NewProcessor(Config{PipelineDepth: depth})
		p.MustRegister(xscl.MustParse(joinQuery))
		if out := p.ProcessBatch("S", nil); len(out) != 0 {
			t.Errorf("depth=%d: empty batch returned %d entries", depth, len(out))
		}
		d1, d2 := joiningDocs()
		if out := p.ProcessBatch("S", []*xmldoc.Document{d1}); len(out) != 1 || len(out[0]) != 0 {
			t.Errorf("depth=%d: single-doc batch = %v", depth, out)
		}
		if out := p.ProcessBatch("S", []*xmldoc.Document{d2}); len(out) != 1 || len(out[0]) != 1 {
			t.Errorf("depth=%d: follow-up batch = %v, want one match", depth, out)
		}
	}
}

// TestPipelineWithWorkersDeterminism crosses the ingest pipeline with
// Stage-2 template shards on a longer generated stream (GC active) and
// requires byte-identical output to the fully sequential engine.
func TestPipelineWithWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	leafNames := []string{"a", "b", "c"}
	var queries []*xscl.Query
	for i := 0; i < 8; i++ {
		queries = append(queries, randomFlatQuery(rng, leafNames, 2, int64(5+rng.Intn(20)), "FOLLOWED BY"))
	}
	var docs []*xmldoc.Document
	ts := xmldoc.Timestamp(0)
	for i := 0; i < 120; i++ {
		ts += xmldoc.Timestamp(rng.Intn(4))
		docs = append(docs, randomFlatDoc(rng, xmldoc.DocID(i+1), ts, leafNames, 2))
	}
	var ref []string
	p := NewProcessor(Config{ViewMaterialization: true})
	for _, q := range queries {
		p.MustRegister(q)
	}
	for _, d := range docs {
		ref = append(ref, renderMatches(p.Process("S", d)))
	}
	for _, cfg := range []Config{
		{ViewMaterialization: true, Workers: 2, PipelineDepth: 4},
		{ViewMaterialization: true, Workers: 4, PipelineDepth: 8},
		{Workers: 3, PipelineDepth: 2},
	} {
		q := NewProcessor(cfg)
		for _, src := range queries {
			q.MustRegister(src)
		}
		if cfg.ViewMaterialization {
			for di, ms := range q.ProcessBatch("S", docs) {
				if got := renderMatches(ms); got != ref[di] {
					t.Fatalf("workers=%d depth=%d diverges on doc %d:\nseq:\n%sbatch:\n%s",
						cfg.Workers, cfg.PipelineDepth, di+1, ref[di], got)
				}
			}
			continue
		}
		// The basic path has its own reference (match sets are equal but
		// the per-doc stats differ); compare against a sequential basic
		// run instead.
		r := NewProcessor(Config{})
		for _, src := range queries {
			r.MustRegister(src)
		}
		for di, ms := range q.ProcessBatch("S", docs) {
			if got, want := renderMatches(ms), renderMatches(r.Process("S", docs[di])); got != want {
				t.Fatalf("basic workers=%d depth=%d diverges on doc %d:\nseq:\n%sbatch:\n%s",
					cfg.Workers, cfg.PipelineDepth, di+1, want, got)
			}
		}
	}
}
