package core

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/relation"
	"repro/internal/xmldoc"
)

// The Join Processor evaluates each template's conjunctive query with one of
// two physical plans:
//
//   - The witness-driven plan (processor.go) joins outward from the
//     value-join pairs of the current document, leaving the query relation
//     RT for last. It is ideal on streams, where an incoming document's
//     string values match few stored values.
//
//   - The RT-driven plan below iterates the *distinct variable vectors* of
//     RT (queries sharing blocks and wiring collapse onto one vector) and,
//     for each vector, evaluates the now fully-selective body with index
//     probes. It corresponds to the plan a cost-based SQL optimizer picks
//     for the paper's CQ when the witness side fans out: RT as the outer
//     side with index nested loops.
//
// The two plans produce identical RoutT rows; the adaptive planner
// (planner.go) chooses per template per document using the fan-out estimate
// below calibrated by observed wall times, and the differential tests force
// and compare both.

// vecGroup is one distinct variable vector of a template's RT relation,
// with the instances (qid, window) that share it.
type vecGroup struct {
	vars  []int64 // interned canonical variable per template position
	insts []int64 // instance ids
	wls   []int64 // window per instance
}

// addVector records an instance's variable vector in its template and
// returns the group key (kept by the instance for removeVector).
func (t *Template) addVector(vars []int64, iid, wl int64) string {
	key := fmt.Sprint(vars)
	if t.vectors == nil {
		t.vectors = map[string]*vecGroup{}
	}
	g, ok := t.vectors[key]
	if !ok {
		g = &vecGroup{vars: append([]int64(nil), vars...)}
		t.vectors[key] = g
		t.vecList = append(t.vecList, g)
	}
	g.insts = append(g.insts, iid)
	g.wls = append(g.wls, wl)
	return key
}

// removeVector removes an unregistered instance from its vector group; a
// group whose last instance leaves is dropped entirely, so the RT-driven
// plan never iterates vectors no live query shares.
func (t *Template) removeVector(key string, iid int64) {
	g, ok := t.vectors[key]
	if !ok {
		return
	}
	if i := slices.Index(g.insts, iid); i >= 0 {
		g.insts = slices.Delete(g.insts, i, i+1)
		g.wls = slices.Delete(g.wls, i, i+1)
	}
	if len(g.insts) > 0 {
		return
	}
	delete(t.vectors, key)
	t.vecList = removeFirst(t.vecList, g)
}

// witnessFanout estimates the intermediate-result size of the witness-driven
// plan: value-join groups multiply per previous document, so the estimate is
// Σ_d (pairs_d)^k over the per-document pair counts of the value-join pair
// relation.
func witnessFanout(perDoc map[xmldoc.DocID]int, k int) float64 {
	est := 0.0
	//mmqjp:unordered float cost estimate feeding plan choice, which is output-invisible
	for _, n := range perDoc {
		est += math.Pow(float64(n), float64(k))
		if est > 1e15 {
			return est
		}
	}
	return est
}

// rtDrivenCost estimates the RT-driven plan: one selective evaluation per
// distinct variable vector.
func (t *Template) rtDrivenCost() float64 {
	return float64(len(t.vecList)) * float64(len(t.VJ)+t.N+1)
}

// docSubsets materializes, per incoming document, the variable-pair subsets
// of the stored witness relations used by the RT-driven plan. Subsets are
// shared across templates and vectors.
type docSubsets struct {
	state *State
	w     *CurrentWitness

	bin   map[[2]int64]*relation.Relation // Rbin rows for a var pair: (docid, node1, node2)
	binW  map[[2]int64]*relation.Relation // RbinW rows for a var pair: (node1, node2)
	root  map[int64]*relation.Relation    // Rroot rows for a var: (docid, node)
	rootW map[int64]*relation.Relation    // RrootW rows for a var: (node)
}

func newDocSubsets(state *State, w *CurrentWitness) *docSubsets {
	return &docSubsets{
		state: state, w: w,
		bin:   map[[2]int64]*relation.Relation{},
		binW:  map[[2]int64]*relation.Relation{},
		root:  map[int64]*relation.Relation{},
		rootW: map[int64]*relation.Relation{},
	}
}

func (s *docSubsets) binFor(v1, v2 int64) *relation.Relation {
	key := [2]int64{v1, v2}
	if r, ok := s.bin[key]; ok {
		return r
	}
	r := relation.New("docid", "node1", "node2")
	for _, ri := range s.state.rbinByVars[key] {
		t := s.state.Rbin.Rows[ri]
		r.Insert(t[0], t[3], t[4])
	}
	s.bin[key] = r
	return r
}

func (s *docSubsets) binWFor(v1, v2 int64) *relation.Relation {
	key := [2]int64{v1, v2}
	if r, ok := s.binW[key]; ok {
		return r
	}
	r := relation.New("node1", "node2")
	for _, t := range s.w.RbinW.Rows {
		if t[0].I == v1 && t[1].I == v2 {
			r.Insert(t[2], t[3])
		}
	}
	s.binW[key] = r
	return r
}

func (s *docSubsets) rootFor(v int64) *relation.Relation {
	if r, ok := s.root[v]; ok {
		return r
	}
	r := relation.New("docid", "node")
	for _, t := range s.state.Rroot.Rows {
		if t[1].I == v {
			r.Insert(t[0], t[2])
		}
	}
	s.root[v] = r
	return r
}

func (s *docSubsets) rootWFor(v int64) *relation.Relation {
	if r, ok := s.rootW[v]; ok {
		return r
	}
	r := relation.New("node")
	for _, t := range s.w.RrootW.Rows {
		if t[0].I == v {
			r.Insert(t[1])
		}
	}
	s.rootW[v] = r
	return r
}

// warm materializes every variable-pair subset any of t's vector groups can
// touch. The subset maps memoize lazily and are shared across a shard's
// templates, so before a template's groups are handed to stealing shards
// (split.go) the owner pre-populates them: warm walks a superset of the
// accesses appendVectorAnchors performs — no emptiness early-exits, no
// emitted-edge breaks — after which concurrent chunk evaluation only reads
// the memo maps.
func (s *docSubsets) warm(t *Template) {
	for _, vg := range t.vecList {
		for _, e := range t.VJ {
			s.warmSide(t, vg, e[0], Left)
			s.warmSide(t, vg, e[1], Right)
		}
	}
}

func (s *docSubsets) warmSide(t *Template, vg *vecGroup, pos int, side Side) {
	single := t.SingleLeft
	if side == Right {
		single = t.SingleRight
	}
	if single {
		if side == Left {
			s.rootFor(vg.vars[t.LeftRoot])
		} else {
			s.rootWFor(vg.vars[t.RightRoot])
		}
		return
	}
	for c := pos; t.Parent[c] >= 0; c = t.Parent[c] {
		if side == Left {
			s.binFor(vg.vars[t.Parent[c]], vg.vars[c])
		} else {
			s.binWFor(vg.vars[t.Parent[c]], vg.vars[c])
		}
	}
}

// evalTemplateRTDriven evaluates one template against the current document
// by iterating its distinct variable vectors. rvj is the value-join pair
// relation (docid, nodeL, nodeR, strVal) of the current document. groups
// reports how many vector groups were actually probed (their required
// subsets were all non-empty) — the index-probe volume statistic of the
// adaptive planner.
func (p *Processor) evalTemplateRTDriven(t *Template, w *CurrentWitness, rvj *relation.Relation, subs *docSubsets, d *xmldoc.Document) (out []Match, groups int) {
	return p.evalVecGroups(t, w, rvj, subs, d, t.vecList)
}

// evalVecGroups evaluates a contiguous slice of a template's vector groups —
// the full list for the serial RT-driven plan, one chunk of it when the
// evaluation is split across shards (split.go). Given read-only inputs its
// output depends only on vgs, so any partition of t.vecList concatenated in
// list order reproduces the serial evaluation exactly.
func (p *Processor) evalVecGroups(t *Template, w *CurrentWitness, rvj *relation.Relation, subs *docSubsets, d *xmldoc.Document, vgs []*vecGroup) (out []Match, groups int) {
	head := make([]string, 0, t.N+1)
	head = append(head, "docid")
	for i := 0; i < t.N; i++ {
		head = append(head, nvar(i))
	}

groups:
	for _, vg := range vgs {
		atoms := make([]relation.Atom, 0, 2*len(t.VJ)+t.N)
		emitted := map[[2]int]bool{}
		rootDone := map[Side]bool{}
		for k, e := range t.VJ {
			atoms = append(atoms, relation.Atom{
				Name: "Rvj", Rel: rvj,
				Vars: []string{"docid", nvar(e[0]), nvar(e[1]), svar(k)},
			})
			var ok bool
			atoms, ok = p.appendVectorAnchors(atoms, t, vg, subs, e[0], Left, emitted, rootDone)
			if !ok {
				continue groups
			}
			atoms, ok = p.appendVectorAnchors(atoms, t, vg, subs, e[1], Right, emitted, rootDone)
			if !ok {
				continue groups
			}
		}
		groups++
		rows := relation.EvalConjunctiveOrdered(atoms, head)
		if rows.Len() == 0 {
			continue
		}
		for _, row := range rows.Rows {
			prevDoc := xmldoc.DocID(row[0].I)
			prevTS, ok := p.state.RdocTS[prevDoc]
			if !ok {
				continue
			}
			bindings := make([]xmldoc.NodeID, t.N)
			for i := 0; i < t.N; i++ {
				bindings[i] = xmldoc.NodeID(row[1+i].I)
			}
			for _, iid := range vg.insts {
				inst := p.instances[iid]
				if !p.windowOK(inst, prevDoc, prevTS, d) {
					continue
				}
				out = append(out, p.orientMatch(t, inst, prevDoc, prevTS, bindings, d))
			}
		}
	}
	return out, groups
}

// appendVectorAnchors is the RT-driven counterpart of appendAnchors: the
// structural-edge atoms are variable-pair subsets, so the variable columns
// disappear from the conjunctive query. ok is false when a required subset
// is empty (the vector cannot match this document at all).
func (p *Processor) appendVectorAnchors(atoms []relation.Atom, t *Template, vg *vecGroup, subs *docSubsets, pos int, side Side, emitted map[[2]int]bool, rootDone map[Side]bool) ([]relation.Atom, bool) {
	single := t.SingleLeft
	if side == Right {
		single = t.SingleRight
	}
	if single {
		if rootDone[side] {
			return atoms, true
		}
		rootDone[side] = true
		if side == Left {
			rel := subs.rootFor(vg.vars[t.LeftRoot])
			if rel.Len() == 0 {
				return atoms, false
			}
			return append(atoms, relation.Atom{Name: "Rroot", Rel: rel,
				Vars: []string{"docid", nvar(t.LeftRoot)}}), true
		}
		rel := subs.rootWFor(vg.vars[t.RightRoot])
		if rel.Len() == 0 {
			return atoms, false
		}
		return append(atoms, relation.Atom{Name: "RrootW", Rel: rel,
			Vars: []string{nvar(t.RightRoot)}}), true
	}
	for c := pos; t.Parent[c] >= 0; c = t.Parent[c] {
		edge := [2]int{t.Parent[c], c}
		if emitted[edge] {
			break
		}
		emitted[edge] = true
		if side == Left {
			rel := subs.binFor(vg.vars[edge[0]], vg.vars[edge[1]])
			if rel.Len() == 0 {
				return atoms, false
			}
			atoms = append(atoms, relation.Atom{Name: "Rbin", Rel: rel,
				Vars: []string{"docid", nvar(edge[0]), nvar(edge[1])}})
		} else {
			rel := subs.binWFor(vg.vars[edge[0]], vg.vars[edge[1]])
			if rel.Len() == 0 {
				return atoms, false
			}
			atoms = append(atoms, relation.Atom{Name: "RbinW", Rel: rel,
				Vars: []string{nvar(edge[0]), nvar(edge[1])}})
		}
	}
	return atoms, true
}

// orientMatch builds a Match from an RoutT row, applying the instance's
// block orientation.
func (p *Processor) orientMatch(t *Template, inst *instance, prevDoc xmldoc.DocID, prevTS xmldoc.Timestamp, bindings []xmldoc.NodeID, d *xmldoc.Document) Match {
	m := Match{Query: inst.qid, Template: t, Bindings: bindings}
	prevRoot := bindings[t.LeftRoot]
	curRoot := bindings[t.RightRoot]
	if inst.swapped {
		m.LeftDoc, m.RightDoc = d.ID, prevDoc
		m.LeftTS, m.RightTS = d.Timestamp, prevTS
		m.LeftRoot, m.RightRoot = curRoot, prevRoot
	} else {
		m.LeftDoc, m.RightDoc = prevDoc, d.ID
		m.LeftTS, m.RightTS = prevTS, d.Timestamp
		m.LeftRoot, m.RightRoot = prevRoot, curRoot
	}
	return m
}
