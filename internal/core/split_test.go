package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/workload"
	"repro/internal/xscl"
)

// Tests for intra-template Stage-2 parallelism (split.go): byte-identity of
// split vs unsplit evaluation, the mega-template steal path, and the
// split-threshold hysteresis — plus the paper-scale workload's template
// floor, since the split machinery only matters in that regime.

// megaQuery builds one query of the fixed identity-wiring 2-join shape over
// random distinct leaves per side. Template identity is purely structural,
// so every such query lands in the same canonical template while the leaf
// diversity spreads its instances over many RT vector groups.
func megaQuery(rng *rand.Rand, leaves int) *xscl.Query {
	l := rng.Perm(leaves)[:2]
	r := rng.Perm(leaves)[:2]
	return xscl.MustParse(fmt.Sprintf(
		"S//item->v0[./l%d->v1][./l%d->v2] FOLLOWED BY{v1=w1 AND v2=w2, 1000} S//item->w0[./l%d->w1][./l%d->w2]",
		l[0]+1, l[1]+1, r[0]+1, r[1]+1))
}

// TestSplitMegaTemplate is the worst case template-granular sharding cannot
// handle: every query in one canonical template, so three of four shards
// own nothing. With splitting forced (threshold 1) the idle shards must
// steal chunks, and the match stream must stay byte-identical to both the
// single-worker and the split-disabled runs.
func TestSplitMegaTemplate(t *testing.T) {
	gen := workload.PaperScale{Leaves: 8, ValuePool: 4}
	qrng := rand.New(rand.NewSource(7))
	queries := make([]*xscl.Query, 40)
	for i := range queries {
		queries[i] = megaQuery(qrng, gen.Leaves)
	}
	stream := gen.Stream(rand.New(rand.NewSource(8)), 60)

	run := func(cfg Config) ([][]harnessRec, *Processor) {
		p := NewProcessor(cfg)
		for _, q := range queries {
			p.MustRegister(q)
		}
		out := make([][]harnessRec, len(stream))
		for i, d := range stream {
			out[i] = harnessRecs(p.Process("S", d))
		}
		return out, p
	}

	ref, refP := run(Config{Workers: 1, SplitThreshold: -1})
	if n := refP.NumTemplates(); n != 1 {
		t.Fatalf("mega workload produced %d templates, want exactly 1", n)
	}
	for _, cfg := range []Config{
		{Workers: 4, SplitThreshold: -1},
		{Workers: 4, SplitThreshold: 1},
		{Workers: 4, SplitThreshold: 1, ViewMaterialization: true},
		{Workers: 4, SplitThreshold: 1, Plan: PlanRTDriven},
	} {
		got, p := run(cfg)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("config %+v: match stream diverges from serial run", cfg)
		}
		s := p.Stats()
		if cfg.SplitThreshold < 0 {
			if s.Splits != 0 || s.Steals != 0 {
				t.Fatalf("split disabled but splits=%d steals=%d", s.Splits, s.Steals)
			}
			continue
		}
		if s.Splits == 0 {
			t.Fatalf("config %+v: split forced but no evaluation was split", cfg)
		}
		if s.SplitChunks < 2*s.Splits {
			t.Fatalf("config %+v: %d splits produced only %d chunks", cfg, s.Splits, s.SplitChunks)
		}
		if s.Steals == 0 {
			t.Fatalf("config %+v: three idle shards never stole a chunk (splits=%d chunks=%d)",
				cfg, s.Splits, s.SplitChunks)
		}
	}
}

// TestSplitUnderChurnTrace replays a random churn trace (subscribe and
// unsubscribe between documents, exercising template reclamation while
// planStats — including the split hysteresis state — survives in planMemo)
// through split-forced, split-default and split-disabled configurations.
// All must be byte-identical.
func TestSplitUnderChurnTrace(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		gen := workload.DefaultRandomFlat()
		rng := rand.New(rand.NewSource(seed))
		tr := gen.Trace(rng, 4+rng.Intn(4), 10+rng.Intn(8), true)
		ref := replayTrace(Config{Workers: 1, SplitThreshold: -1}, tr)
		for _, cfg := range []Config{
			{Workers: 4, SplitThreshold: -1},
			{Workers: 4, SplitThreshold: 0}, // default threshold
			{Workers: 4, SplitThreshold: 1}, // always split
			{Workers: 4, SplitThreshold: 1, ViewMaterialization: true},
			{Workers: 4, SplitThreshold: 1, Plan: PlanRTDriven, PipelineDepth: 2},
		} {
			got := replayTrace(cfg, tr)
			for ev := range ref {
				if !reflect.DeepEqual(ref[ev], got[ev]) {
					t.Fatalf("seed %d event %d: %+v diverges from serial split-disabled run", seed, ev, cfg)
				}
			}
		}
	}
}

// TestSplitThresholdHysteresis drives splitDecision directly: a template
// enters the split regime at the threshold, stays in it down to half the
// threshold, and only then leaves — so unit estimates oscillating between
// thr/2 and thr never flap the regime.
func TestSplitThresholdHysteresis(t *testing.T) {
	p := NewProcessor(Config{Workers: 2, SplitThreshold: 100})
	p.MustRegister(xscl.MustParse(
		"S//item->v0[./l1->v1] FOLLOWED BY{v1=w1, 100} S//item->w0[./l1->w1]"))
	tmpl := p.templateList[0]
	feed := func(units float64, times int) {
		for i := 0; i < times; i++ {
			p.splitDecision(tmpl, planDecision{witnessUnits: units, rtUnits: 1})
		}
	}
	feed(200, 1)
	if !tmpl.plan.splitActive {
		t.Fatal("not active after observing units=200 against threshold 100")
	}
	feed(60, 30) // EWMA converges to 60 — between thr/2 and thr
	if !tmpl.plan.splitActive {
		t.Fatal("deactivated above thr/2: hysteresis must hold the regime")
	}
	feed(10, 50) // decays below thr/2
	if tmpl.plan.splitActive {
		t.Fatal("still active after units EWMA decayed below thr/2")
	}
	feed(60, 50) // back between thr/2 and thr — must stay inactive
	if tmpl.plan.splitActive {
		t.Fatal("reactivated below the entry threshold")
	}
	feed(150, 30) // crosses thr again
	if !tmpl.plan.splitActive {
		t.Fatal("not reactivated after units EWMA crossed the threshold")
	}
}

// TestPaperScaleTemplateFloor pins the workload property the scale bench
// depends on: the paper-scale generator's wiring sampling produces 50+ live
// canonical templates (the earlier identity-wiring generators collapse to
// ~one template per join count), and instances spread over multiple RT
// vector groups per template.
func TestPaperScaleTemplateFloor(t *testing.T) {
	gen := workload.DefaultPaperScale()
	rng := rand.New(rand.NewSource(1))
	p := NewProcessor(Config{})
	for _, q := range gen.Queries(rng, 3000) {
		p.MustRegister(q)
	}
	if n := p.NumTemplates(); n < 50 {
		t.Fatalf("3000 paper-scale queries produced %d templates, want >= 50", n)
	}
	multi := 0
	for _, ts := range p.PlanStats() {
		if ts.VecGroups > 1 {
			multi++
		}
	}
	if multi < 10 {
		t.Fatalf("only %d templates have more than one vector group", multi)
	}
	if gen.Instances < 100000 {
		t.Fatalf("default paper-scale instance count %d below the paper's regime", gen.Instances)
	}
}
