package core

import (
	"math/rand"
	"testing"

	"repro/internal/xpath"
)

// randomReduced builds a random reduced-join-graph shape directly: two trees
// of depth ≤ 3 whose leaves are joined by random cross edges.
func randomReduced(rng *rand.Rand) *JoinGraph {
	g := &JoinGraph{}
	buildSideTree := func(s *SideGraph) []int {
		n := 1 + rng.Intn(5)
		var leaves []int
		s.Nodes = append(s.Nodes, JGNode{Parent: -1, PatternNode: &xpath.PatternNode{}})
		for i := 1; i < n; i++ {
			parent := rng.Intn(len(s.Nodes))
			s.Nodes = append(s.Nodes, JGNode{Parent: parent, PatternNode: &xpath.PatternNode{}})
			s.Nodes[parent].Children = append(s.Nodes[parent].Children, i)
		}
		for i := range s.Nodes {
			if len(s.Nodes[i].Children) == 0 {
				leaves = append(leaves, i)
			}
		}
		return leaves
	}
	ll := buildSideTree(&g.LeftSide)
	rl := buildSideTree(&g.RightSide)
	ne := 1 + rng.Intn(4)
	seen := map[[2]int]bool{}
	for i := 0; i < ne; i++ {
		e := VJEdge{L: ll[rng.Intn(len(ll))], R: rl[rng.Intn(len(rl))]}
		if !seen[[2]int{e.L, e.R}] {
			seen[[2]int{e.L, e.R}] = true
			g.VJ = append(g.VJ, e)
		}
	}
	return g
}

// permuteGraph relabels the nodes of each side with a random permutation
// that maps the root to the root (parent structure is rebuilt accordingly),
// producing an isomorphic graph.
func permuteGraph(rng *rand.Rand, g *JoinGraph) *JoinGraph {
	out := &JoinGraph{}
	permSide := func(in *SideGraph, os *SideGraph) []int {
		n := len(in.Nodes)
		// A valid relabeling must keep parents before children is NOT
		// required by our representation (Parent is an index), but
		// JGNode.Children must be consistent. Build an arbitrary
		// permutation fixing nothing.
		perm := rng.Perm(n)
		os.Nodes = make([]JGNode, n)
		for old, nw := range perm {
			p := in.Nodes[old].Parent
			np := -1
			if p >= 0 {
				np = perm[p]
			}
			os.Nodes[nw] = JGNode{Parent: np, PatternNode: in.Nodes[old].PatternNode}
		}
		for i := range os.Nodes {
			if p := os.Nodes[i].Parent; p >= 0 {
				os.Nodes[p].Children = append(os.Nodes[p].Children, i)
			}
		}
		return perm
	}
	lp := permSide(&g.LeftSide, &out.LeftSide)
	rp := permSide(&g.RightSide, &out.RightSide)
	for _, e := range g.VJ {
		out.VJ = append(out.VJ, VJEdge{L: lp[e.L], R: rp[e.R]})
	}
	// Shuffle the edge list too.
	rng.Shuffle(len(out.VJ), func(i, j int) { out.VJ[i], out.VJ[j] = out.VJ[j], out.VJ[i] })
	return out
}

func TestPropertyCanonicalInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 400; trial++ {
		g := randomReduced(rng)
		sig1, _ := Canonicalize(g)
		for i := 0; i < 3; i++ {
			h := permuteGraph(rng, g)
			sig2, _ := Canonicalize(h)
			if sig1 != sig2 {
				t.Fatalf("trial %d: relabeling changed the signature:\n%s\nvs\n%s", trial, sig1, sig2)
			}
		}
	}
}

func TestCanonicalDistinguishesSides(t *testing.T) {
	// A 2-left/1-right graph vs its mirror must differ.
	g := &JoinGraph{}
	g.LeftSide.Nodes = []JGNode{
		{Parent: -1, Children: []int{1, 2}, PatternNode: &xpath.PatternNode{}},
		{Parent: 0, PatternNode: &xpath.PatternNode{}},
		{Parent: 0, PatternNode: &xpath.PatternNode{}},
	}
	g.RightSide.Nodes = []JGNode{{Parent: -1, PatternNode: &xpath.PatternNode{}}}
	g.VJ = []VJEdge{{L: 1, R: 0}, {L: 2, R: 0}}

	m := &JoinGraph{LeftSide: g.RightSide, RightSide: g.LeftSide}
	m.VJ = []VJEdge{{L: 0, R: 1}, {L: 0, R: 2}}

	s1, _ := Canonicalize(g)
	s2, _ := Canonicalize(m)
	if s1 == s2 {
		t.Errorf("mirrored graphs share a signature")
	}
}

func TestCanonicalOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 100; trial++ {
		g := randomReduced(rng)
		_, order := Canonicalize(g)
		n := len(g.LeftSide.Nodes) + len(g.RightSide.Nodes)
		if len(order) != n {
			t.Fatalf("order length %d, want %d", len(order), n)
		}
		seen := make([]bool, n)
		for _, v := range order {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("order not a permutation: %v", order)
			}
			seen[v] = true
		}
	}
}

func TestCanonicalSymmetricGraphStable(t *testing.T) {
	// A fully symmetric graph (k parallel value joins between k leaves
	// under each root) exercises the individualization search.
	for k := 1; k <= 5; k++ {
		g := &JoinGraph{}
		g.LeftSide.Nodes = append(g.LeftSide.Nodes, JGNode{Parent: -1, PatternNode: &xpath.PatternNode{}})
		g.RightSide.Nodes = append(g.RightSide.Nodes, JGNode{Parent: -1, PatternNode: &xpath.PatternNode{}})
		for i := 1; i <= k; i++ {
			g.LeftSide.Nodes = append(g.LeftSide.Nodes, JGNode{Parent: 0, PatternNode: &xpath.PatternNode{}})
			g.LeftSide.Nodes[0].Children = append(g.LeftSide.Nodes[0].Children, i)
			g.RightSide.Nodes = append(g.RightSide.Nodes, JGNode{Parent: 0, PatternNode: &xpath.PatternNode{}})
			g.RightSide.Nodes[0].Children = append(g.RightSide.Nodes[0].Children, i)
			g.VJ = append(g.VJ, VJEdge{L: i, R: i})
		}
		sig1, _ := Canonicalize(g)
		rng := rand.New(rand.NewSource(int64(k)))
		sig2, _ := Canonicalize(permuteGraph(rng, g))
		if sig1 != sig2 {
			t.Errorf("k=%d: symmetric graph signature unstable", k)
		}
	}
}
