// Package yfilter implements a shared XPath evaluator in the style of
// YFilter (Diao et al., ACM TODS 2003), the Stage-1 engine of the MMQJP
// architecture.
//
// All registered tree patterns are decomposed into root-to-node linear
// paths; the distinct paths of all patterns are compiled into a single
// shared NFA whose states are shared across common path prefixes. One pass
// of the NFA over a document's SAX-style event stream computes, for every
// distinct path prefix, the set of matching document nodes. Tree-pattern
// witnesses (complete bound-variable assignments) are then assembled per
// distinct pattern by a post-processing join of the candidate sets along the
// pattern's branch structure, mirroring YFilter's shared-path + nested-path
// post-processing design.
//
// Patterns are deduplicated on registration (by canonical key), so the cost
// of both NFA execution and witness assembly is paid once per distinct
// pattern per document, independent of how many queries reference the
// pattern.
//
// # Memory layout
//
// States live in a dense slice indexed by int32 state id. Transitions are
// matched through a flat table indexed by (state, symbol slot), where a
// symbol slot is the NFA-local index of an interned symbol id
// (internal/sym): document nodes carry their interned symbol, so the
// per-node transition step is two array loads and never hashes a string.
// The table is rebuilt lazily after Register; rebuilds are serialized and
// published with an atomic flag so concurrent MatchDocument calls are safe.
// Per-document evaluation state (active-state sets per depth, the
// generation-stamped visited array, candidate lists) lives in a pooled
// MatchResult that callers return with Release when they are done with the
// witnesses.
package yfilter

import (
	"sync"
	"sync/atomic"

	"repro/internal/sym"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// PatternID identifies a distinct registered pattern.
type PatternID int32

// stateID indexes streamNFA.states. The sentinel -1 means "no state".
type stateID = int32

const noState stateID = -1

// nfaState is one state of the shared NFA. Exact-symbol transitions are
// kept in a per-state map during construction and flattened into the
// stream's dense transition table before matching.
type nfaState struct {
	trans   map[sym.ID]stateID // construction form of the exact-symbol transitions
	star    stateID            // transition on any element symbol (noState if absent)
	eps     stateID            // ε-transition to the //-self-loop state (noState if absent)
	self    bool               // state has a self-loop on any symbol (the // state)
	accepts []int              // prefix ids accepted when this state is reached
}

// streamNFA is the NFA and pattern registry for one input stream.
type streamNFA struct {
	states    []nfaState // states[0] is the start state
	prefixIDs map[string]int
	numPrefix int
	patterns  []PatternID // patterns registered on this stream
	// prefixLive[p] counts the live patterns referencing prefix p;
	// candidate collection is skipped for prefixes only dead patterns
	// need, so per-document cost tracks the live set, not every pattern
	// ever registered.
	prefixLive []int

	// Dense transition table, rebuilt lazily after Register. slot maps a
	// global interned symbol id to 1+its NFA-local column (0 = the symbol
	// labels no transition anywhere in this NFA); table[s*width+c] is the
	// target of state s on column c, or noState. tableClean flips to false
	// on every Register and is re-set after a rebuild under tableMu, so
	// concurrent matchers either see a clean table or serialize on the
	// rebuild.
	tableMu    sync.Mutex
	tableClean atomic.Bool
	width      int
	slot       []int32
	table      []stateID
}

func (sn *streamNFA) newState() stateID {
	id := stateID(len(sn.states))
	sn.states = append(sn.states, nfaState{star: noState, eps: noState})
	return id
}

// ensureTable flattens the per-state transition maps into the dense table
// if Register has invalidated it. Safe to call from concurrent matchers.
func (sn *streamNFA) ensureTable() {
	if sn.tableClean.Load() {
		return
	}
	sn.tableMu.Lock()
	defer sn.tableMu.Unlock()
	if sn.tableClean.Load() {
		return
	}
	// Mark the symbols that label at least one transition, then assign
	// columns in increasing symbol-id order (deterministic layout).
	maxSym := sym.ID(-1)
	for i := range sn.states {
		for id := range sn.states[i].trans {
			if id > maxSym {
				maxSym = id
			}
		}
	}
	slot := make([]int32, int(maxSym)+1)
	for i := range sn.states {
		for id := range sn.states[i].trans {
			slot[id] = 1
		}
	}
	width := 0
	for i := range slot {
		if slot[i] != 0 {
			width++
			slot[i] = int32(width)
		}
	}
	table := make([]stateID, len(sn.states)*width)
	for i := range table {
		table[i] = noState
	}
	for i := range sn.states {
		base := i * width
		for id, t := range sn.states[i].trans {
			table[base+int(slot[id])-1] = t
		}
	}
	sn.slot, sn.width, sn.table = slot, width, table
	sn.tableClean.Store(true)
}

// Engine is the shared XPath evaluator.
type Engine struct {
	patterns []*xpath.Pattern
	byKey    map[string]PatternID
	streams  map[string]*streamNFA

	// nodePrefix[pid][i] is the prefix id of pattern pid's node i.
	nodePrefix [][]int
	// hasBound[pid][i] reports whether the subtree of pattern pid rooted
	// at node i contains a bound variable (used to cut enumeration of
	// purely existential subtrees).
	hasBound [][]bool
	// dead[pid] marks a pattern no caller references any more (SetLive);
	// its NFA states stay (they are prefix-shared), but candidate
	// collection for its exclusive prefixes stops. Register revives a
	// canonically-equal pattern.
	dead []bool

	//mmqjp:pooled MatchResults are reset by Release and hold only per-document scratch; witnesses handed to callers own their Bindings arrays
	pool sync.Pool
}

// NewEngine returns an empty evaluator.
func NewEngine() *Engine {
	return &Engine{byKey: map[string]PatternID{}, streams: map[string]*streamNFA{}}
}

// NumPatterns returns the number of distinct registered patterns.
func (e *Engine) NumPatterns() int { return len(e.patterns) }

// Pattern returns the distinct pattern registered under id.
func (e *Engine) Pattern(id PatternID) *xpath.Pattern { return e.patterns[id] }

// Register adds a pattern to the engine and returns its id. Patterns that
// are canonically equal to an already-registered pattern are shared: the
// existing id is returned. The returned id's Pattern may therefore differ
// from p in variable names but matches exactly the same witnesses (bindings
// are positional, in pre-order of bound nodes).
//
// Register must not run concurrently with MatchDocument (internal/core
// serializes registration against ingestion).
func (e *Engine) Register(p *xpath.Pattern) PatternID {
	key := p.CanonicalKey()
	if id, ok := e.byKey[key]; ok {
		e.SetLive(id, true)
		return id
	}
	id := PatternID(len(e.patterns))
	e.patterns = append(e.patterns, p)
	e.byKey[key] = id

	sn := e.streams[p.Stream]
	if sn == nil {
		sn = &streamNFA{prefixIDs: map[string]int{}}
		sn.newState()
		e.streams[p.Stream] = sn
	}
	sn.patterns = append(sn.patterns, id)

	// Insert every root-to-node prefix of the pattern into the NFA and
	// record the prefix id for each pattern node.
	np := make([]int, len(p.Nodes))
	for _, path := range p.Decompose() {
		cur := stateID(0)
		key := ""
		for si, st := range path.Steps {
			name := st.Name
			if st.IsAttr {
				name = "@" + name
			}
			key += st.Axis.String() + name
			cur = sn.insertStep(cur, st)
			pid, ok := sn.prefixIDs[key]
			if !ok {
				pid = sn.numPrefix
				sn.numPrefix++
				sn.prefixIDs[key] = pid
				sn.prefixLive = append(sn.prefixLive, 0)
				sn.states[cur].accepts = append(sn.states[cur].accepts, pid)
			}
			np[path.NodeIndexes[si]] = pid
		}
	}
	sn.tableClean.Store(false)
	e.nodePrefix = append(e.nodePrefix, np)

	hb := make([]bool, len(p.Nodes))
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		n := p.Nodes[i]
		hb[i] = n.Var != ""
		for _, c := range n.Children {
			hb[i] = hb[i] || hb[c.Index]
		}
	}
	e.hasBound = append(e.hasBound, hb)
	e.dead = append(e.dead, false)
	for _, pid := range e.distinctPrefixes(id) {
		sn.prefixLive[pid]++
	}
	return id
}

// distinctPrefixes returns the deduplicated prefix ids of a pattern's nodes.
func (e *Engine) distinctPrefixes(id PatternID) []int {
	seen := map[int]bool{}
	var out []int
	for _, pid := range e.nodePrefix[id] {
		if !seen[pid] {
			seen[pid] = true
			out = append(out, pid)
		}
	}
	return out
}

// SetLive marks a pattern live or dead. A dead pattern keeps its shared NFA
// states (rebuilding the automaton would stall ingestion) but stops paying
// per-document candidate collection for prefixes no live pattern shares;
// Register revives a canonically-equal pattern. Callers with refcounted
// pattern registries (internal/core) call SetLive(id, false) when the last
// reference goes away.
func (e *Engine) SetLive(id PatternID, live bool) {
	if e.dead[id] == !live {
		return
	}
	e.dead[id] = !live
	sn := e.streams[e.patterns[id].Stream]
	delta := 1
	if !live {
		delta = -1
	}
	for _, pid := range e.distinctPrefixes(id) {
		sn.prefixLive[pid] += delta
	}
}

// insertStep adds (or reuses) the NFA structure for one location step from
// state cur and returns the step's target state.
func (sn *streamNFA) insertStep(cur stateID, st xpath.PathStep) stateID {
	if st.Axis == xpath.Descendant {
		if sn.states[cur].eps == noState {
			sl := sn.newState()
			sn.states[sl].self = true
			sn.states[cur].eps = sl
		}
		cur = sn.states[cur].eps
	}
	name := st.Name
	if st.IsAttr {
		name = "@" + name
	}
	if name == "*" && !st.IsAttr {
		if sn.states[cur].star == noState {
			sl := sn.newState()
			sn.states[cur].star = sl
		}
		return sn.states[cur].star
	}
	id := sym.Intern(name)
	if sn.states[cur].trans == nil {
		sn.states[cur].trans = map[sym.ID]stateID{}
	}
	next, ok := sn.states[cur].trans[id]
	if !ok {
		next = sn.newState()
		sn.states[cur].trans[id] = next
	}
	return next
}

// MatchResult holds the outcome of evaluating one document against all
// patterns of one stream, plus the reusable per-document scratch of the NFA
// run. Results come from a per-engine pool; callers that are done with the
// witnesses should call Release to recycle the candidate lists and scratch
// (witness Bindings arrays are freshly allocated and survive Release).
type MatchResult struct {
	eng    *Engine
	stream string
	sn     *streamNFA
	doc    *xmldoc.Document

	// candList[prefixID] lists the document nodes matching the prefix, in
	// document order. Backing arrays are retained across Release/reuse.
	candList [][]xmldoc.NodeID

	witnesses map[PatternID][]xpath.Witness

	// levels[d] is the active state set at document depth d; each depth
	// owns its slice, so sibling subtrees can never alias each other's
	// active sets. visited[s] == gen marks state s as already in the
	// next set being built (one generation per document node).
	levels  [][]stateID
	visited []uint64
	gen     uint64
}

// MatchDocument runs the stream's shared NFA over the document and returns a
// result from which per-pattern witnesses can be drawn. A nil result is
// returned when no pattern is registered for the stream.
func (e *Engine) MatchDocument(stream string, d *xmldoc.Document) *MatchResult {
	sn := e.streams[stream]
	if sn == nil {
		return nil
	}
	sn.ensureTable()
	r, _ := e.pool.Get().(*MatchResult)
	if r == nil {
		r = &MatchResult{witnesses: map[PatternID][]xpath.Witness{}}
	}
	r.eng, r.stream, r.sn, r.doc = e, stream, sn, d
	if cap(r.candList) >= sn.numPrefix {
		r.candList = r.candList[:sn.numPrefix]
	} else {
		r.candList = append(r.candList[:cap(r.candList)], make([][]xmldoc.NodeID, sn.numPrefix-cap(r.candList))...)
	}
	if len(r.visited) < len(sn.states) {
		r.visited = make([]uint64, len(sn.states))
		r.gen = 0
	}
	if len(r.levels) == 0 {
		r.levels = append(r.levels, nil)
	}

	// Seed depth 0 with the ε-closure of the start state.
	r.gen++
	lvl0 := r.levels[0][:0]
	for u := stateID(0); u != noState && r.visited[u] != r.gen; u = sn.states[u].eps {
		r.visited[u] = r.gen
		lvl0 = append(lvl0, u)
	}
	r.levels[0] = lvl0
	r.visit(d.Root(), 0)
	return r
}

// Release returns the result's scratch to the engine's pool. The result
// must not be used afterwards; witnesses already handed out stay valid
// (their Bindings arrays are never pooled). Release on nil or an already
// released result is a no-op.
func (r *MatchResult) Release() {
	if r == nil || r.eng == nil {
		return
	}
	eng := r.eng
	for i := range r.candList {
		r.candList[i] = r.candList[i][:0]
	}
	clear(r.witnesses)
	r.eng, r.sn, r.doc = nil, nil, nil
	eng.pool.Put(r)
}

// visit consumes document node n from the active state set at the given
// depth and recurses into its children (SAX start-element semantics;
// end-element corresponds to the implicit stack pop on return). The next
// set is deduplicated with the generation-stamped visited array, and
// ε-successors are folded in as each state is added, so closure costs O(1)
// per discovered state instead of a rescan of the set.
func (r *MatchResult) visit(n xmldoc.NodeID, depth int) {
	dn := r.doc.Node(n)
	isElem := dn.Kind == xmldoc.ElementNode
	sn := r.sn
	active := r.levels[depth]
	if len(r.levels) == depth+1 {
		r.levels = append(r.levels, nil)
	}
	next := r.levels[depth+1][:0]
	r.gen++
	gen := r.gen
	visited := r.visited
	var slotID int32
	if int(dn.Sym) < len(sn.slot) {
		slotID = sn.slot[dn.Sym]
	}
	for _, s := range active {
		st := &sn.states[s]
		if slotID > 0 {
			if t := sn.table[int(s)*sn.width+int(slotID)-1]; t != noState {
				for u := t; u != noState && visited[u] != gen; u = sn.states[u].eps {
					visited[u] = gen
					next = append(next, u)
				}
			}
		}
		if isElem && st.star != noState {
			for u := st.star; u != noState && visited[u] != gen; u = sn.states[u].eps {
				visited[u] = gen
				next = append(next, u)
			}
		}
		if st.self {
			// The // state stays active at all depths.
			for u := s; u != noState && visited[u] != gen; u = sn.states[u].eps {
				visited[u] = gen
				next = append(next, u)
			}
		}
	}
	r.levels[depth+1] = next
	for _, s := range next {
		for _, pid := range sn.states[s].accepts {
			if sn.prefixLive[pid] == 0 {
				continue // only unregistered patterns need this prefix
			}
			r.candList[pid] = append(r.candList[pid], n)
		}
	}
	if len(next) == 0 {
		return // no active state can ever fire below this node
	}
	for _, c := range dn.Children {
		r.visit(c, depth+1)
	}
}

// Witnesses assembles (memoized) the complete witnesses of the given pattern
// against the matched document. Patterns registered on a different stream
// than the one the result was computed for have no witnesses.
func (r *MatchResult) Witnesses(id PatternID) []xpath.Witness {
	if r == nil {
		return nil
	}
	if r.eng.patterns[id].Stream != r.stream {
		return nil
	}
	if ws, ok := r.witnesses[id]; ok {
		return ws
	}
	ws := r.assemble(id)
	r.witnesses[id] = ws
	return ws
}

// assemble joins per-prefix candidate sets along the pattern structure,
// producing each distinct bound-variable assignment once.
func (r *MatchResult) assemble(id PatternID) []xpath.Witness {
	p := r.eng.patterns[id]
	np := r.eng.nodePrefix[id]
	hb := r.eng.hasBound[id]

	rootCands := r.candList[np[0]]
	if len(rootCands) == 0 {
		return nil
	}

	assignment := make([]xmldoc.NodeID, len(p.Nodes))
	var out []xpath.Witness
	seen := map[string]bool{}

	// satisfiable reports whether the subtree rooted at pattern node pn
	// can be embedded under document node dn (no enumeration).
	var satisfiable func(pn *xpath.PatternNode, dn xmldoc.NodeID) bool
	satisfiable = func(pn *xpath.PatternNode, dn xmldoc.NodeID) bool {
		for _, c := range pn.Children {
			ok := false
			for _, cand := range r.candList[np[c.Index]] {
				if !r.related(c, dn, cand) {
					continue
				}
				if satisfiable(c, cand) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	// enumerate walks the pattern nodes in pre-order, assigning document
	// nodes; existential (unbound, var-free) subtrees are only checked
	// for satisfiability, not enumerated.
	var enumerate func(order []int, k int)
	emit := func() {
		w := xpath.Witness{Bindings: make([]xmldoc.NodeID, len(p.VarNodes))}
		keyBuf := make([]byte, 0, 4*len(p.VarNodes))
		for i, idx := range p.VarNodes {
			w.Bindings[i] = assignment[idx]
			v := assignment[idx]
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		k := string(keyBuf)
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	// order lists the pattern node indexes that must be enumerated
	// (subtrees containing bound variables), in pre-order.
	var order []int
	for i := range p.Nodes {
		if hb[i] {
			order = append(order, i)
		}
	}
	enumerate = func(order []int, k int) {
		if k == len(order) {
			emit()
			return
		}
		idx := order[k]
		pn := p.Nodes[idx]
		for _, cand := range r.candList[np[idx]] {
			if pn.ParentIndex >= 0 {
				if !r.related(pn, assignment[pn.ParentIndex], cand) {
					continue
				}
			}
			// Existential children must be satisfiable under this
			// choice.
			ok := true
			for _, c := range pn.Children {
				if !hb[c.Index] {
					sat := false
					for _, cc := range r.candList[np[c.Index]] {
						if r.related(c, cand, cc) && satisfiable(c, cc) {
							sat = true
							break
						}
					}
					if !sat {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			assignment[idx] = cand
			enumerate(order, k+1)
		}
	}
	if len(order) == 0 {
		// Pure existential pattern: a single empty witness when the
		// pattern matches at all.
		for _, rc := range rootCands {
			if satisfiable(p.Root, rc) {
				return []xpath.Witness{{}}
			}
		}
		return nil
	}
	enumerate(order, 0)
	return out
}

// related reports whether doc node child can play pattern node pn given its
// pattern parent is bound to doc node parent.
func (r *MatchResult) related(pn *xpath.PatternNode, parent, child xmldoc.NodeID) bool {
	if pn.Axis == xpath.Child {
		return r.doc.Node(child).Parent == parent
	}
	return r.doc.IsAncestor(parent, child)
}
