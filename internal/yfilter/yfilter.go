// Package yfilter implements a shared XPath evaluator in the style of
// YFilter (Diao et al., ACM TODS 2003), the Stage-1 engine of the MMQJP
// architecture.
//
// All registered tree patterns are decomposed into root-to-node linear
// paths; the distinct paths of all patterns are compiled into a single
// shared NFA whose states are shared across common path prefixes. One pass
// of the NFA over a document's SAX-style event stream computes, for every
// distinct path prefix, the set of matching document nodes. Tree-pattern
// witnesses (complete bound-variable assignments) are then assembled per
// distinct pattern by a post-processing join of the candidate sets along the
// pattern's branch structure, mirroring YFilter's shared-path + nested-path
// post-processing design.
//
// Patterns are deduplicated on registration (by canonical key), so the cost
// of both NFA execution and witness assembly is paid once per distinct
// pattern per document, independent of how many queries reference the
// pattern.
package yfilter

import (
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// PatternID identifies a distinct registered pattern.
type PatternID int32

// nfaState is one state of the shared NFA.
type nfaState struct {
	trans   map[string]*nfaState // transition on an exact symbol ("name" or "@name")
	star    *nfaState            // transition on any element symbol
	eps     *nfaState            // ε-transition to the //-self-loop state
	self    bool                 // state has a self-loop on any symbol (the // state)
	accepts []int                // prefix ids accepted when this state is reached
}

func newState() *nfaState { return &nfaState{trans: map[string]*nfaState{}} }

// streamNFA is the NFA and pattern registry for one input stream.
type streamNFA struct {
	start      *nfaState
	prefixIDs  map[string]int // prefix key -> dense id
	numPrefix  int
	patterns   []PatternID // patterns registered on this stream
	stateCount int
	// prefixLive[p] counts the live patterns referencing prefix p;
	// candidate collection is skipped for prefixes only dead patterns
	// need, so per-document cost tracks the live set, not every pattern
	// ever registered.
	prefixLive []int
}

// Engine is the shared XPath evaluator.
type Engine struct {
	patterns []*xpath.Pattern
	byKey    map[string]PatternID
	streams  map[string]*streamNFA

	// nodePrefix[pid][i] is the prefix id of pattern pid's node i.
	nodePrefix [][]int
	// hasBound[pid][i] reports whether the subtree of pattern pid rooted
	// at node i contains a bound variable (used to cut enumeration of
	// purely existential subtrees).
	hasBound [][]bool
	// dead[pid] marks a pattern no caller references any more (SetLive);
	// its NFA states stay (they are prefix-shared), but candidate
	// collection for its exclusive prefixes stops. Register revives a
	// canonically-equal pattern.
	dead []bool
}

// NewEngine returns an empty evaluator.
func NewEngine() *Engine {
	return &Engine{byKey: map[string]PatternID{}, streams: map[string]*streamNFA{}}
}

// NumPatterns returns the number of distinct registered patterns.
func (e *Engine) NumPatterns() int { return len(e.patterns) }

// Pattern returns the distinct pattern registered under id.
func (e *Engine) Pattern(id PatternID) *xpath.Pattern { return e.patterns[id] }

// Register adds a pattern to the engine and returns its id. Patterns that
// are canonically equal to an already-registered pattern are shared: the
// existing id is returned. The returned id's Pattern may therefore differ
// from p in variable names but matches exactly the same witnesses (bindings
// are positional, in pre-order of bound nodes).
func (e *Engine) Register(p *xpath.Pattern) PatternID {
	key := p.CanonicalKey()
	if id, ok := e.byKey[key]; ok {
		e.SetLive(id, true)
		return id
	}
	id := PatternID(len(e.patterns))
	e.patterns = append(e.patterns, p)
	e.byKey[key] = id

	sn := e.streams[p.Stream]
	if sn == nil {
		sn = &streamNFA{start: newState(), prefixIDs: map[string]int{}}
		sn.stateCount = 1
		e.streams[p.Stream] = sn
	}
	sn.patterns = append(sn.patterns, id)

	// Insert every root-to-node prefix of the pattern into the NFA and
	// record the prefix id for each pattern node.
	np := make([]int, len(p.Nodes))
	for _, path := range p.Decompose() {
		cur := sn.start
		key := ""
		for si, st := range path.Steps {
			sym := st.Name
			if st.IsAttr {
				sym = "@" + sym
			}
			key += st.Axis.String() + sym
			cur = sn.insertStep(cur, st)
			pid, ok := sn.prefixIDs[key]
			if !ok {
				pid = sn.numPrefix
				sn.numPrefix++
				sn.prefixIDs[key] = pid
				sn.prefixLive = append(sn.prefixLive, 0)
				cur.accepts = append(cur.accepts, pid)
			}
			np[path.NodeIndexes[si]] = pid
		}
	}
	e.nodePrefix = append(e.nodePrefix, np)

	hb := make([]bool, len(p.Nodes))
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		n := p.Nodes[i]
		hb[i] = n.Var != ""
		for _, c := range n.Children {
			hb[i] = hb[i] || hb[c.Index]
		}
	}
	e.hasBound = append(e.hasBound, hb)
	e.dead = append(e.dead, false)
	for _, pid := range e.distinctPrefixes(id) {
		sn.prefixLive[pid]++
	}
	return id
}

// distinctPrefixes returns the deduplicated prefix ids of a pattern's nodes.
func (e *Engine) distinctPrefixes(id PatternID) []int {
	seen := map[int]bool{}
	var out []int
	for _, pid := range e.nodePrefix[id] {
		if !seen[pid] {
			seen[pid] = true
			out = append(out, pid)
		}
	}
	return out
}

// SetLive marks a pattern live or dead. A dead pattern keeps its shared NFA
// states (rebuilding the automaton would stall ingestion) but stops paying
// per-document candidate collection for prefixes no live pattern shares;
// Register revives a canonically-equal pattern. Callers with refcounted
// pattern registries (internal/core) call SetLive(id, false) when the last
// reference goes away.
func (e *Engine) SetLive(id PatternID, live bool) {
	if e.dead[id] == !live {
		return
	}
	e.dead[id] = !live
	sn := e.streams[e.patterns[id].Stream]
	delta := 1
	if !live {
		delta = -1
	}
	for _, pid := range e.distinctPrefixes(id) {
		sn.prefixLive[pid] += delta
	}
}

// insertStep adds (or reuses) the NFA structure for one location step from
// state cur and returns the step's target state.
func (sn *streamNFA) insertStep(cur *nfaState, st xpath.PathStep) *nfaState {
	if st.Axis == xpath.Descendant {
		if cur.eps == nil {
			sl := newState()
			sl.self = true
			cur.eps = sl
			sn.stateCount++
		}
		cur = cur.eps
	}
	sym := st.Name
	if st.IsAttr {
		sym = "@" + sym
	}
	if sym == "*" && !st.IsAttr {
		if cur.star == nil {
			cur.star = newState()
			sn.stateCount++
		}
		return cur.star
	}
	next := cur.trans[sym]
	if next == nil {
		next = newState()
		cur.trans[sym] = next
		sn.stateCount++
	}
	return next
}

// MatchResult holds the outcome of evaluating one document against all
// patterns of one stream.
type MatchResult struct {
	eng    *Engine
	stream string
	sn     *streamNFA
	doc    *xmldoc.Document

	// candList[prefixID] lists the document nodes matching the prefix, in
	// document order; candSet is the same data as membership sets.
	candList [][]xmldoc.NodeID
	candSet  []map[xmldoc.NodeID]bool

	witnesses map[PatternID][]xpath.Witness
}

// MatchDocument runs the stream's shared NFA over the document and returns a
// result from which per-pattern witnesses can be drawn. A nil result is
// returned when no pattern is registered for the stream.
func (e *Engine) MatchDocument(stream string, d *xmldoc.Document) *MatchResult {
	sn := e.streams[stream]
	if sn == nil {
		return nil
	}
	r := &MatchResult{
		eng:       e,
		stream:    stream,
		sn:        sn,
		doc:       d,
		candList:  make([][]xmldoc.NodeID, sn.numPrefix),
		candSet:   make([]map[xmldoc.NodeID]bool, sn.numPrefix),
		witnesses: map[PatternID][]xpath.Witness{},
	}
	start := epsClosure([]*nfaState{sn.start})
	r.visit(d.Root(), start)
	return r
}

func epsClosure(states []*nfaState) []*nfaState {
	out := states
	for i := 0; i < len(out); i++ {
		if e := out[i].eps; e != nil {
			dup := false
			for _, s := range out {
				if s == e {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, e)
			}
		}
	}
	return out
}

// visit consumes document node n from the active state set and recurses into
// its children (SAX start-element semantics; end-element corresponds to the
// implicit stack pop on return).
func (r *MatchResult) visit(n xmldoc.NodeID, active []*nfaState) {
	dn := r.doc.Node(n)
	isElem := dn.Kind == xmldoc.ElementNode
	sym := dn.Name
	if !isElem {
		sym = "@" + sym
	}
	next := make([]*nfaState, 0, len(active))
	add := func(s *nfaState) {
		for _, t := range next {
			if t == s {
				return
			}
		}
		next = append(next, s)
	}
	for _, s := range active {
		if t := s.trans[sym]; t != nil {
			add(t)
		}
		if isElem && s.star != nil {
			add(s.star)
		}
		if s.self {
			add(s) // the // state stays active at all depths
		}
	}
	next = epsClosure(next)
	for _, s := range next {
		for _, pid := range s.accepts {
			if r.sn.prefixLive[pid] == 0 {
				continue // only unregistered patterns need this prefix
			}
			r.candList[pid] = append(r.candList[pid], n)
			if r.candSet[pid] == nil {
				r.candSet[pid] = map[xmldoc.NodeID]bool{}
			}
			r.candSet[pid][n] = true
		}
	}
	if len(next) == 0 {
		return // no active state can ever fire below this node
	}
	for _, c := range dn.Children {
		r.visit(c, next)
	}
}

// Witnesses assembles (memoized) the complete witnesses of the given pattern
// against the matched document. Patterns registered on a different stream
// than the one the result was computed for have no witnesses.
func (r *MatchResult) Witnesses(id PatternID) []xpath.Witness {
	if r == nil {
		return nil
	}
	if r.eng.patterns[id].Stream != r.stream {
		return nil
	}
	if ws, ok := r.witnesses[id]; ok {
		return ws
	}
	ws := r.assemble(id)
	r.witnesses[id] = ws
	return ws
}

// assemble joins per-prefix candidate sets along the pattern structure,
// producing each distinct bound-variable assignment once.
func (r *MatchResult) assemble(id PatternID) []xpath.Witness {
	p := r.eng.patterns[id]
	np := r.eng.nodePrefix[id]
	hb := r.eng.hasBound[id]

	rootCands := r.candList[np[0]]
	if len(rootCands) == 0 {
		return nil
	}

	assignment := make([]xmldoc.NodeID, len(p.Nodes))
	var out []xpath.Witness
	seen := map[string]bool{}

	// satisfiable reports whether the subtree rooted at pattern node pn
	// can be embedded under document node dn (no enumeration).
	var satisfiable func(pn *xpath.PatternNode, dn xmldoc.NodeID) bool
	satisfiable = func(pn *xpath.PatternNode, dn xmldoc.NodeID) bool {
		for _, c := range pn.Children {
			ok := false
			for _, cand := range r.candList[np[c.Index]] {
				if !r.related(c, dn, cand) {
					continue
				}
				if satisfiable(c, cand) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}

	// enumerate walks the pattern nodes in pre-order, assigning document
	// nodes; existential (unbound, var-free) subtrees are only checked
	// for satisfiability, not enumerated.
	var enumerate func(order []int, k int)
	emit := func() {
		w := xpath.Witness{Bindings: make([]xmldoc.NodeID, len(p.VarNodes))}
		keyBuf := make([]byte, 0, 4*len(p.VarNodes))
		for i, idx := range p.VarNodes {
			w.Bindings[i] = assignment[idx]
			v := assignment[idx]
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		k := string(keyBuf)
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	// order lists the pattern node indexes that must be enumerated
	// (subtrees containing bound variables), in pre-order.
	var order []int
	for i := range p.Nodes {
		if hb[i] {
			order = append(order, i)
		}
	}
	enumerate = func(order []int, k int) {
		if k == len(order) {
			emit()
			return
		}
		idx := order[k]
		pn := p.Nodes[idx]
		for _, cand := range r.candList[np[idx]] {
			if pn.ParentIndex >= 0 {
				if !r.related(pn, assignment[pn.ParentIndex], cand) {
					continue
				}
			}
			// Existential children must be satisfiable under this
			// choice.
			ok := true
			for _, c := range pn.Children {
				if !hb[c.Index] {
					sat := false
					for _, cc := range r.candList[np[c.Index]] {
						if r.related(c, cand, cc) && satisfiable(c, cc) {
							sat = true
							break
						}
					}
					if !sat {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			assignment[idx] = cand
			enumerate(order, k+1)
		}
	}
	if len(order) == 0 {
		// Pure existential pattern: a single empty witness when the
		// pattern matches at all.
		for _, rc := range rootCands {
			if satisfiable(p.Root, rc) {
				return []xpath.Witness{{}}
			}
		}
		return nil
	}
	enumerate(order, 0)
	return out
}

// related reports whether doc node child can play pattern node pn given its
// pattern parent is bound to doc node parent.
func (r *MatchResult) related(pn *xpath.PatternNode, parent, child xmldoc.NodeID) bool {
	if pn.Axis == xpath.Child {
		return r.doc.Node(child).Parent == parent
	}
	return r.doc.IsAncestor(parent, child)
}
