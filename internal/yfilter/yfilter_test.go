package yfilter

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func sortedWitnesses(ws []xpath.Witness) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = fmt.Sprint(w.Bindings)
	}
	sort.Strings(out)
	return out
}

func TestEnginePaperQ1(t *testing.T) {
	e := NewEngine()
	lhs := e.Register(xpath.MustParseBlock("S//book->x1[.//author->x2][.//title->x3]"))
	rhs := e.Register(xpath.MustParseBlock("S//blog->x4[.//author->x5][.//title->x6]"))

	d1 := xmldoc.PaperD1(1, 100)
	r := e.MatchDocument("S", d1)
	if got := sortedWitnesses(r.Witnesses(lhs)); !reflect.DeepEqual(got, []string{"[0 2 4]", "[0 3 4]"}) {
		t.Errorf("lhs witnesses on d1 = %v", got)
	}
	if got := r.Witnesses(rhs); len(got) != 0 {
		t.Errorf("rhs witnesses on d1 = %v", got)
	}

	d2 := xmldoc.PaperD2(2, 200)
	r2 := e.MatchDocument("S", d2)
	if got := sortedWitnesses(r2.Witnesses(rhs)); !reflect.DeepEqual(got, []string{"[0 2 3]"}) {
		t.Errorf("rhs witnesses on d2 = %v", got)
	}
}

func TestRegisterDeduplicates(t *testing.T) {
	e := NewEngine()
	a := e.Register(xpath.MustParseBlock("S//blog->x4[.//author->x5][.//title->x6]"))
	// Same pattern with different variable names and predicate order.
	b := e.Register(xpath.MustParseBlock("S//blog->y1[.//title->y3][.//author->y2]"))
	if a != b {
		t.Errorf("identical patterns got distinct ids %d, %d", a, b)
	}
	if e.NumPatterns() != 1 {
		t.Errorf("NumPatterns = %d", e.NumPatterns())
	}
}

func TestStreamSeparation(t *testing.T) {
	e := NewEngine()
	sa := e.Register(xpath.MustParseBlock("A//x->v"))
	e.Register(xpath.MustParseBlock("B//x->v"))

	b := xmldoc.NewBuilder(1, 0, "r")
	b.Element(0, "x", "t")
	d := b.Build()

	ra := e.MatchDocument("A", d)
	if len(ra.Witnesses(sa)) != 1 {
		t.Errorf("stream A did not match")
	}
	if r := e.MatchDocument("C", d); r != nil {
		t.Errorf("unknown stream returned non-nil result")
	}
}

func TestSharedPrefixStates(t *testing.T) {
	// Patterns sharing prefixes must share NFA states: registering many
	// patterns over the same prefix grows the state count sub-linearly.
	e := NewEngine()
	e.Register(xpath.MustParseBlock("S//a->v[.//b->w]"))
	n1 := len(e.streams["S"].states)
	e.Register(xpath.MustParseBlock("S//a->v[.//c->w]"))
	n2 := len(e.streams["S"].states)
	// Only the c branch is new: the //a prefix (2 states) is shared, so
	// the second registration adds at most 2 states (// state reuse + c).
	if n2-n1 > 2 {
		t.Errorf("second pattern added %d states, expected state sharing", n2-n1)
	}
}

func TestWildcardAndAttribute(t *testing.T) {
	e := NewEngine()
	p := e.Register(xpath.MustParseBlock("S//*->x[./@id->i]"))
	doc, err := xmldoc.ParseString(`<r><a id="1"><b>x</b></a><c id="2"/></r>`, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := e.MatchDocument("S", doc)
	if got := len(r.Witnesses(p)); got != 2 {
		t.Errorf("witnesses = %d, want 2", got)
	}
}

func TestChildAxisFromRoot(t *testing.T) {
	e := NewEngine()
	blog := e.Register(xpath.MustParseBlock("S/blog->x"))
	author := e.Register(xpath.MustParseBlock("S/author->x"))
	d := xmldoc.PaperD2(1, 0)
	r := e.MatchDocument("S", d)
	if len(r.Witnesses(blog)) != 1 {
		t.Errorf("S/blog should match the root")
	}
	if len(r.Witnesses(author)) != 0 {
		t.Errorf("S/author must not match a non-root element")
	}
}

func TestDescendantSelfNesting(t *testing.T) {
	// //a//a on nested a elements must produce all ancestor pairs.
	b := xmldoc.NewBuilder(1, 0, "a")
	a1 := b.Element(0, "a", "")
	b.Element(a1, "a", "")
	d := b.Build()
	e := NewEngine()
	p := e.Register(xpath.MustParseBlock("S//a->x[.//a->y]"))
	r := e.MatchDocument("S", d)
	got := sortedWitnesses(r.Witnesses(p))
	want := []string{"[0 1]", "[0 2]", "[1 2]"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("witnesses = %v, want %v", got, want)
	}
}

func TestExistentialSubtreeNotEnumerated(t *testing.T) {
	// A pattern with an unbound subtree yields one witness per bound
	// assignment regardless of how many embeddings the unbound part has.
	b := xmldoc.NewBuilder(1, 0, "r")
	for i := 0; i < 5; i++ {
		a := b.Element(0, "a", "")
		b.Element(a, "t", "v")
	}
	d := b.Build()
	e := NewEngine()
	p := e.Register(xpath.MustParseBlock("S//r->x[.//a[./t]]"))
	r := e.MatchDocument("S", d)
	if got := len(r.Witnesses(p)); got != 1 {
		t.Errorf("witnesses = %d, want 1", got)
	}
}

func TestNoMatchPrunesDescent(t *testing.T) {
	e := NewEngine()
	p := e.Register(xpath.MustParseBlock("S/nope->x"))
	d := xmldoc.PaperD1(1, 0)
	r := e.MatchDocument("S", d)
	if len(r.Witnesses(p)) != 0 {
		t.Errorf("unexpected match")
	}
}

// --- Property test: engine ≡ naive matcher on random patterns/documents ---

func randomDoc(rng *rand.Rand, n int) *xmldoc.Document {
	names := []string{"a", "b", "c", "d"}
	b := xmldoc.NewBuilder(1, 0, names[rng.Intn(len(names))])
	type frame struct{ id xmldoc.NodeID }
	open := []frame{{0}}
	for i := 1; i < n; i++ {
		// Random parent among currently "open" ancestors keeps the
		// construction in pre-order.
		for len(open) > 1 && rng.Intn(3) == 0 {
			open = open[:len(open)-1]
		}
		parent := open[len(open)-1].id
		var id xmldoc.NodeID
		if rng.Intn(8) == 0 {
			id = b.Attribute(parent, names[rng.Intn(len(names))], fmt.Sprint(rng.Intn(3)))
		} else {
			id = b.Element(parent, names[rng.Intn(len(names))], strings.Repeat("x", rng.Intn(2)))
			open = append(open, frame{id})
		}
		_ = id
	}
	return b.Build()
}

func randomPattern(rng *rand.Rand) *xpath.Pattern {
	names := []string{"a", "b", "c", "d", "*"}
	varCount := 0
	var gen func(depth int) *xpath.PatternNode
	gen = func(depth int) *xpath.PatternNode {
		n := &xpath.PatternNode{
			Axis: xpath.Axis(rng.Intn(2)),
			Name: names[rng.Intn(len(names))],
		}
		if n.Name != "*" && rng.Intn(6) == 0 {
			n.IsAttr = true
		}
		if rng.Intn(2) == 0 {
			varCount++
			n.Var = fmt.Sprintf("v%d", varCount)
		}
		if depth < 2 && !n.IsAttr {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, gen(depth+1))
			}
		}
		return n
	}
	root := gen(0)
	root.IsAttr = false
	if root.Var == "" {
		root.Var = "v0"
	}
	p := &xpath.Pattern{Stream: "S", Root: root}
	q, err := xpath.ParseBlock(patternString(p))
	if err != nil {
		panic(err)
	}
	return q
}

// patternString renders without requiring finalize.
func patternString(p *xpath.Pattern) string {
	var sb strings.Builder
	sb.WriteString(p.Stream)
	var w func(n *xpath.PatternNode)
	w = func(n *xpath.PatternNode) {
		sb.WriteString(n.Axis.String())
		if n.IsAttr {
			sb.WriteByte('@')
		}
		sb.WriteString(n.Name)
		if n.Var != "" {
			sb.WriteString("->" + n.Var)
		}
		for _, c := range n.Children {
			sb.WriteString("[.")
			w(c)
			sb.WriteByte(']')
		}
	}
	w(p.Root)
	return sb.String()
}

func TestPropertyEngineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		pat := randomPattern(rng)
		doc := randomDoc(rng, 2+rng.Intn(25))

		e := NewEngine()
		id := e.Register(pat)
		r := e.MatchDocument("S", doc)

		got := sortedWitnesses(r.Witnesses(id))
		want := sortedWitnesses(pat.MatchNaive(doc))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: pattern %q doc %s:\nengine %v\nnaive  %v",
				trial, pat.String(), doc.XMLText(), got, want)
		}
	}
}

func TestPropertyManyPatternsOneEngine(t *testing.T) {
	// Registering many patterns in one engine must not change any
	// pattern's witnesses (no cross-talk through shared states).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		e := NewEngine()
		pats := make([]*xpath.Pattern, 12)
		ids := make([]PatternID, 12)
		for i := range pats {
			pats[i] = randomPattern(rng)
			ids[i] = e.Register(pats[i])
		}
		doc := randomDoc(rng, 2+rng.Intn(25))
		r := e.MatchDocument("S", doc)
		for i := range pats {
			got := sortedWitnesses(r.Witnesses(ids[i]))
			want := sortedWitnesses(e.Pattern(ids[i]).MatchNaive(doc))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d pattern %d %q:\nengine %v\nnaive  %v",
					trial, i, pats[i].String(), got, want)
			}
		}
	}
}

// TestDeepEpsSiblingRegression pins the fix for an aliasing bug in the old
// ε-closure: it extended its input slice in place (out := states; out =
// append(out, ...)), so when a parent's next-set had spare capacity, closing
// over one child's next-set could overwrite states a sibling subtree was
// still reading through the shared backing array. Deep chains of //-steps
// (each one an ε edge) over documents with wide sibling fan-out are exactly
// the shape that triggered it. The rewrite gives every document depth its
// own active-set slice, which this test locks in against the naive matcher.
func TestDeepEpsSiblingRegression(t *testing.T) {
	patterns := []string{
		"S//a->p[.//a->q[.//a->r]]",
		"S//a->x[.//b->y[.//c->z]]",
		"S//a->m[.//c->n]",
		"S//b->u[.//a->v]",
	}
	// A document whose root has many siblings, each a deep chain of a/b/c
	// elements, so every depth carries a large active set rich in
	// self-loop states and ε edges.
	b := xmldoc.NewBuilder(1, 0, "a")
	names := []string{"a", "b", "c"}
	for s := 0; s < 6; s++ {
		parent := b.Element(0, names[s%3], "")
		for d := 0; d < 8; d++ {
			parent = b.Element(parent, names[(s+d)%3], "")
		}
	}
	d := b.Build()

	e := NewEngine()
	ids := make([]PatternID, len(patterns))
	for i, ps := range patterns {
		ids[i] = e.Register(xpath.MustParseBlock(ps))
	}
	r := e.MatchDocument("S", d)
	for i, ps := range patterns {
		got := sortedWitnesses(r.Witnesses(ids[i]))
		want := sortedWitnesses(e.Pattern(ids[i]).MatchNaive(d))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pattern %q:\nengine %v\nnaive  %v", ps, got, want)
		}
	}
}

// TestMatchResultReleaseReuse checks the MatchResult pool: a released
// result's scratch is recycled without leaking candidates or witnesses into
// the next document's result, and witnesses handed out before Release stay
// valid afterwards.
func TestMatchResultReleaseReuse(t *testing.T) {
	e := NewEngine()
	p := e.Register(xpath.MustParseBlock("S//book->x1[.//author->x2]"))
	d1 := xmldoc.PaperD1(1, 100)

	r1 := e.MatchDocument("S", d1)
	ws := r1.Witnesses(p)
	want := sortedWitnesses(ws)
	if len(want) == 0 {
		t.Fatal("test premise: pattern matches d1")
	}
	r1.Release()
	r1.Release() // double release is a no-op

	// The witnesses handed out before Release must be unaffected by a
	// subsequent match that reuses the pooled scratch.
	d2 := xmldoc.PaperD2(2, 200)
	r2 := e.MatchDocument("S", d2)
	if got := r2.Witnesses(p); len(got) != 0 {
		t.Errorf("reused result leaked candidates across documents: %v", got)
	}
	if got := sortedWitnesses(ws); !reflect.DeepEqual(got, want) {
		t.Errorf("witnesses mutated by pooled reuse: %v, want %v", got, want)
	}
	r2.Release()

	r3 := e.MatchDocument("S", d1)
	if got := sortedWitnesses(r3.Witnesses(p)); !reflect.DeepEqual(got, want) {
		t.Errorf("witnesses after reuse = %v, want %v", got, want)
	}
	r3.Release()
}

// TestSetLive checks the pattern-liveness control: a dead pattern stops
// collecting candidates (so it yields no witnesses), prefixes shared with a
// live pattern keep collecting for the live one, and a re-Register of a
// canonically equal pattern revives the dead one.
func TestSetLive(t *testing.T) {
	e := NewEngine()
	// The two patterns share the //book//author path prefix.
	a := e.Register(xpath.MustParseBlock("S//book->x1[.//author->x2]"))
	b := e.Register(xpath.MustParseBlock("S//book->y1[.//author->y2][.//title->y3]"))
	d1 := xmldoc.PaperD1(1, 100)

	wantA := sortedWitnesses(e.MatchDocument("S", d1).Witnesses(a))
	wantB := sortedWitnesses(e.MatchDocument("S", d1).Witnesses(b))
	if len(wantA) == 0 || len(wantB) == 0 {
		t.Fatalf("test premise: both patterns match d1 (%v, %v)", wantA, wantB)
	}

	e.SetLive(b, false)
	r := e.MatchDocument("S", d1)
	if got := r.Witnesses(b); len(got) != 0 {
		t.Errorf("dead pattern produced witnesses: %v", got)
	}
	if got := sortedWitnesses(r.Witnesses(a)); !reflect.DeepEqual(got, wantA) {
		t.Errorf("live pattern changed by sibling death: %v, want %v", got, wantA)
	}

	// Re-registering a canonically equal pattern revives it in place.
	if id := e.Register(xpath.MustParseBlock("S//book->z1[.//author->z2][.//title->z3]")); id != b {
		t.Fatalf("revived pattern got new id %d, want %d", id, b)
	}
	if got := sortedWitnesses(e.MatchDocument("S", d1).Witnesses(b)); !reflect.DeepEqual(got, wantB) {
		t.Errorf("revived pattern witnesses = %v, want %v", got, wantB)
	}
	// Idempotent toggles keep refcounts balanced.
	e.SetLive(b, true)
	e.SetLive(b, false)
	e.SetLive(b, false)
	e.SetLive(b, true)
	if got := sortedWitnesses(e.MatchDocument("S", d1).Witnesses(b)); !reflect.DeepEqual(got, wantB) {
		t.Errorf("witnesses after toggles = %v, want %v", got, wantB)
	}
}
