// Package linttest runs analyzers over fixture packages and compares their
// diagnostics against golden files. Fixtures live under
// internal/lint/testdata/src/<name> (standalone packages, standard-library
// imports only); goldens under internal/lint/testdata/<name>.golden hold one
// "file:line:col: [analyzer] message" line per expected diagnostic.
// Regenerate goldens with `go test ./internal/lint/... -update`.
package linttest

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files with current diagnostics")

// Golden loads the fixture package in dir, runs the analyzers (plus the
// framework's directive-grammar validation) and compares the rendered
// diagnostics against the golden file.
func Golden(t *testing.T, analyzers []lint.Analyzer, dir, golden string) {
	t.Helper()
	prog, err := lint.LoadDir(dir, "fixture")
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags := lint.Run(prog, analyzers)
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s:%d:%d: [%s] %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	got := sb.String()
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", golden, err)
	}
	want := string(wantBytes)
	if got != want {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want (%s) ---\n%s", dir, got, golden, want)
	}
	if !strings.Contains(want, ": [") {
		t.Errorf("golden %s contains no diagnostics: fixtures must prove the analyzer catches a seeded violation", golden)
	}
}
