package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestParseDirectiveText(t *testing.T) {
	cases := []struct {
		text    string
		wantErr string // substring; "" = valid
	}{
		{"//mmqjp:unordered keys sorted below", ""},
		{"//mmqjp:guardedby e.mu", ""},
		{"//mmqjp:shardowned", ""},
		{"//mmqjp:shardaccess registration-quiesced", ""},
		{"//mmqjp:nondet seeded PRNG", ""},
		{"//mmqjp:nolock under construction", ""},
		{"//mmqjp:pooled scratch reset on Get, nothing escapes", ""},
		{"//mmqjp:pooled", "requires an argument"},
		{"//mmqjp:unknown x", "unknown directive"},
		{"//mmqjp:unordered", "requires an argument"},
		{"//mmqjp:shardowned extra", "takes no argument"},
		{"// not a directive", "not a //mmqjp: directive"},
	}
	for _, c := range cases {
		_, _, err := lint.ParseDirectiveText(c.text)
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("ParseDirectiveText(%q): unexpected error %v", c.text, err)
		case c.wantErr != "" && err == nil:
			t.Errorf("ParseDirectiveText(%q): want error containing %q, got nil", c.text, c.wantErr)
		case c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr):
			t.Errorf("ParseDirectiveText(%q): error %v does not contain %q", c.text, err, c.wantErr)
		}
	}
}

// TestGrammarSpecs keeps the grammar table well-formed: unique names and a
// doc line for every directive (docscheck renders the table's contract).
func TestGrammarSpecs(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range lint.Grammar {
		if s.Name == "" || s.Doc == "" {
			t.Errorf("grammar entry %+v missing name or doc", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate grammar entry %q", s.Name)
		}
		seen[s.Name] = true
		if s.ArgRequired && s.Arg == "" {
			t.Errorf("directive %q requires an argument but documents no placeholder", s.Name)
		}
	}
}

func TestCheckDirectivesFixture(t *testing.T) {
	linttest.Golden(t, nil, "testdata/src/directives", "testdata/directives.golden")
}
