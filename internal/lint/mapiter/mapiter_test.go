package mapiter

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	linttest.Golden(t, []lint.Analyzer{New(Config{})},
		"../testdata/src/mapiter", "../testdata/mapiter.golden")
}
