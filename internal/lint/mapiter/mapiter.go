// Package mapiter flags `for range` over map-typed values in packages on the
// engine's output path. Go randomizes map iteration order, so any such loop
// whose effect depends on visit order breaks the byte-identical-output
// guarantee. A loop passes if it is annotated `//mmqjp:unordered <reason>`
// (same line or the line above) or if its body is provably order-insensitive:
// it only writes map entries keyed by the range key, accumulates through
// commutative compound assignments (`+=`, `|=`, ...), increments/decrements,
// or deletes map entries. Anything else — appending to a slice, calling a
// function, assigning a "last wins" scalar — is order-sensitive and flagged.
package mapiter

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/lint"
)

// Config scopes enforcement. Enforce receives the package import path and the
// base name of the file.
type Config struct {
	Enforce func(pkgPath, file string) bool
}

type analyzer struct{ cfg Config }

// New returns the mapiter analyzer.
func New(cfg Config) lint.Analyzer { return analyzer{cfg} }

func (analyzer) Name() string { return "mapiter" }

func (a analyzer) Run(prog *lint.Program) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, pkg := range prog.Pkgs {
		dirs := prog.DirectivesFor(pkg)
		for _, file := range pkg.Files {
			fname := prog.Fset.Position(file.Pos()).Filename
			if a.cfg.Enforce != nil && !a.cfg.Enforce(pkg.Path, filepath.Base(fname)) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				line := prog.Fset.Position(rng.Pos()).Line
				if _, ok := dirs.At(fname, line, "unordered"); ok {
					return true
				}
				if orderInsensitive(rng, pkg.Info) {
					return true
				}
				diags = append(diags, lint.Diagnostic{
					Pos:      prog.Fset.Position(rng.Pos()),
					Analyzer: "mapiter",
					Message: fmt.Sprintf("range over map %s has an order-sensitive body; sort the keys or annotate with %sunordered <reason>",
						types.ExprString(rng.X), lint.DirectivePrefix),
				})
				return true
			})
		}
	}
	return diags
}

// orderInsensitive reports whether every statement of the loop body has the
// same net effect under any iteration order.
func orderInsensitive(rng *ast.RangeStmt, info *types.Info) bool {
	keyObj := rangeVarObj(rng.Key, info)
	for _, st := range rng.Body.List {
		if !allowedStmt(st, keyObj, info) {
			return false
		}
	}
	return true
}

func rangeVarObj(key ast.Expr, info *types.Info) types.Object {
	id, ok := key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func allowedStmt(st ast.Stmt, keyObj types.Object, info *types.Info) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return allowedAssign(s, keyObj, info)
	case *ast.IncDecStmt:
		return true
	case *ast.ExprStmt:
		return isDeleteCall(s.X, info)
	case *ast.IfStmt:
		if s.Init != nil || hasEffectfulCall(s.Cond, info) {
			return false
		}
		for _, b := range s.Body.List {
			if !allowedStmt(b, keyObj, info) {
				return false
			}
		}
		if s.Else != nil {
			return allowedStmt(s.Else, keyObj, info)
		}
		return true
	case *ast.BlockStmt:
		for _, b := range s.List {
			if !allowedStmt(b, keyObj, info) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	default:
		return false
	}
}

// allowedAssign accepts two shapes: `m[k] = v` where k is the range key (each
// iteration writes a distinct entry), and commutative compound assignments
// (`x += v` and friends). In both, the right-hand sides must be free of
// function calls (a call could observe iteration order through side effects).
func allowedAssign(s *ast.AssignStmt, keyObj types.Object, info *types.Info) bool {
	for _, rhs := range s.Rhs {
		if hasEffectfulCall(rhs, info) {
			return false
		}
	}
	switch s.Tok {
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			if !isMapIndexByKey(lhs, keyObj, info) && !isBlank(lhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	default:
		return false
	}
}

// isMapIndexByKey reports whether lhs is m[expr] with m a map and expr
// mentioning the range key variable, so each iteration targets its own entry.
func isMapIndexByKey(lhs ast.Expr, keyObj types.Object, info *types.Info) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok || keyObj == nil {
		return false
	}
	tv, ok := info.Types[ix.X]
	if !ok {
		return false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return false
	}
	mentions := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == keyObj {
			mentions = true
		}
		return !mentions
	})
	return mentions
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isDeleteCall(e ast.Expr, info *types.Info) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "delete"
}

// hasEffectfulCall reports whether expr contains a call other than to the
// pure builtins len and cap or a type conversion.
func hasEffectfulCall(expr ast.Expr, info *types.Info) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return true
			}
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion
		}
		found = true
		return false
	})
	return found
}
