// Package fixture seeds shardowned violations: shard state touched outside
// owner-receiver methods and the //mmqjp:shardaccess protocols.
package fixture

type shard struct {
	id int
	//mmqjp:shardowned
	data []int
	//mmqjp:shardowned
	hits int64
}

type pool struct{ shards []*shard }

// add runs on the owning shard: not flagged.
func (s *shard) add(v int) { s.data = append(s.data, v) }

// register is the quiesced registration path: not flagged.
//
//mmqjp:shardaccess registration-quiesced; no evaluation in flight
func (p *pool) register(v int) {
	p.shards[0].data = append(p.shards[0].data, v)
}

// Leak reads shard state with no annotation: flagged twice.
func (p *pool) Leak() ([]int, int64) {
	return p.shards[0].data, p.shards[0].hits
}

// collect: accesses in the loop inherit the enclosing annotation.
//
//mmqjp:shardaccess stats collection at a barrier
func (p *pool) collect() int64 {
	var n int64
	for _, sh := range p.shards {
		n += sh.hits
	}
	return n
}
