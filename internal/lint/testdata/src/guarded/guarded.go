// Package fixture seeds guarded violations: a //mmqjp:guardedby field and
// function accessed without the declared mutex, next to the justified
// access shapes.
package fixture

import "sync"

type counter struct {
	mu sync.RWMutex
	//mmqjp:guardedby c.mu
	n int
}

// Inc locks before writing: not flagged.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Get read-locks: not flagged.
func (c *counter) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// bump requires callers to hold c.mu; its own access is justified by the
// annotation.
//
//mmqjp:guardedby c.mu
func (c *counter) bump() { c.n++ }

// BadRead accesses the field without the lock: flagged.
func (c *counter) BadRead() int { return c.n }

// BadCall calls a guarded function without the lock: flagged.
func (c *counter) BadCall() { c.bump() }

// GoodCall locks, then calls the guarded function: not flagged.
func (c *counter) GoodCall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

// newCounter owns the value exclusively: not flagged.
//
//mmqjp:nolock the counter is under construction and not yet shared
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// Mixed: the closure locks and is justified; the outer return is flagged.
func (c *counter) Mixed() int {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}()
	return c.n
}
