// Package fixture seeds statswired violations: a counter that is neither
// merged nor surfaced, a duplicate json tag, and a missing one.
package fixture

type Stats struct {
	A int64
	B int64
	// C is the seeded violation: not merged in Add, never read.
	C int64
}

// Add merges another Stats — but forgets C.
func (s *Stats) Add(o Stats) {
	s.A += o.A
	s.B += o.B
}

type Surface struct {
	A int64 `json:"a"`
	// B reuses A's tag: flagged.
	B int64 `json:"a"`
	// D has no tag: flagged.
	D int64
}

// fill surfaces A and B; C is never read anywhere.
func fill(s Stats) Surface {
	return Surface{A: s.A, B: s.B}
}
