// Package fixture seeds malformed //mmqjp: directives for the framework's
// grammar validation.
package fixture

//mmqjp:unknown something
var a int

//mmqjp:unordered
var b int

//mmqjp:shardowned with an argument
var c int

//mmqjp:pooled
var e int

type s struct {
	//mmqjp:shardowned
	d int
}

var _ = a + b + c + e
var _ = s{}
