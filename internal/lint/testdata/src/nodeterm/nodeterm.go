// Package fixture seeds nodeterm violations: wall-clock and math/rand use
// without an //mmqjp:nondet annotation, next to the allowlisted shapes.
package fixture

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock unannotated: flagged.
func stamp() int64 { return time.Now().UnixNano() }

// draw calls an unannotated PRNG method: flagged.
func draw(r *rand.Rand) int { return r.Intn(6) }

// timed is the stats-timer shape: not flagged.
//
//mmqjp:nondet wall-clock stats timing (output-invisible)
func timed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}

// seeded is the deterministic PRNG shape: not flagged.
//
//mmqjp:nondet seeded deterministic PRNG (same seed, same draws)
func seeded() *rand.Rand { return rand.New(rand.NewSource(42)) }
