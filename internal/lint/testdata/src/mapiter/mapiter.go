// Package fixture seeds mapiter violations: order-sensitive map iterations
// without an //mmqjp:unordered annotation, next to the shapes the analyzer
// must accept.
package fixture

var m = map[string]int{"a": 1, "b": 2}

// badAppend appends in iteration order: flagged.
func badAppend() []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// badLastWins assigns a plain variable, so the last key visited wins: flagged.
func badLastWins() int {
	last := 0
	for _, v := range m {
		last = v
	}
	return last
}

// annotated carries the escape hatch: not flagged.
func annotated() []string {
	out := make([]string, 0, len(m))
	//mmqjp:unordered caller sorts the result before use
	for k := range m {
		out = append(out, k)
	}
	return out
}

// counter accumulates commutatively: not flagged.
func counter() int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// setBuild writes one entry per range key: not flagged.
func setBuild(src map[string]int) map[string]bool {
	out := map[string]bool{}
	for k := range src {
		out[k] = true
	}
	return out
}

// prune mixes deletes, keyed writes and continue: not flagged.
func prune(dst map[string]bool, src map[string]int) {
	for k, v := range src {
		if v == 0 {
			delete(dst, k)
			continue
		}
		dst[k] = true
	}
}
