// Package fixture seeds sync.Pool declarations with and without the
// required //mmqjp:pooled annotation.
package fixture

import "sync"

//mmqjp:pooled objects are reset before Put and nothing escapes
var goodPool = sync.Pool{New: func() any { return new([]byte) }}

var badPool = sync.Pool{New: func() any { return new([]byte) }}

type holder struct {
	//mmqjp:pooled scratch truncated on Release
	goodField sync.Pool

	badField *sync.Pool
}

func local() {
	//mmqjp:pooled short-lived local pool, drained before return
	var goodLocal sync.Pool
	var badLocal sync.Pool
	_ = &goodLocal
	_ = &badLocal
}

var _ = &goodPool
var _ = &badPool
var _ = holder{}
