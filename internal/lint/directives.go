package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DirectivePrefix introduces a machine-readable annotation. Like //go:
// directives, an annotation is a single comment line with no space after //.
const DirectivePrefix = "//mmqjp:"

// DirectiveSpec describes one directive of the annotation grammar. The table
// below is the single source of truth: the analyzers consume the directives
// and cmd/docscheck validates every //mmqjp: line quoted in the markdown
// guides against it, so docs and analyzers cannot drift.
type DirectiveSpec struct {
	Name        string
	Arg         string // placeholder shown in docs; "" if the directive takes none
	ArgRequired bool
	Doc         string // one-line summary
}

// Grammar lists every valid directive, in documentation order.
var Grammar = []DirectiveSpec{
	{
		Name: "unordered", Arg: "<reason>", ArgRequired: true,
		Doc: "this map iteration is intentionally order-insensitive; <reason> says why (mapiter)",
	},
	{
		Name: "guardedby", Arg: "<recv>.<mutex>", ArgRequired: true,
		Doc: "field: protected by the named mutex; func: callers must hold it (guarded)",
	},
	{
		Name: "shardowned", Arg: "", ArgRequired: false,
		Doc: "field of the shard struct owned by the evaluating shard (shardowned)",
	},
	{
		Name: "shardaccess", Arg: "<reason>", ArgRequired: true,
		Doc: "function allowed to touch shardowned fields; <reason> names the protocol (shardowned)",
	},
	{
		Name: "nondet", Arg: "<reason>", ArgRequired: true,
		Doc: "function allowed to use time.Now/math/rand; <reason> says why output is unaffected (nodeterm)",
	},
	{
		Name: "nolock", Arg: "<reason>", ArgRequired: true,
		Doc: "function exempt from guarded checks; <reason> states why access is exclusive (guarded)",
	},
	{
		Name: "pooled", Arg: "<reason>", ArgRequired: true,
		Doc: "sync.Pool declaration; <reason> argues pooled objects are reset on reuse and never escape (pooled)",
	},
}

// SpecFor returns the grammar entry for a directive name.
func SpecFor(name string) (DirectiveSpec, bool) {
	for _, s := range Grammar {
		if s.Name == name {
			return s, true
		}
	}
	return DirectiveSpec{}, false
}

// Directive is one parsed //mmqjp: annotation.
type Directive struct {
	Name string
	Arg  string
	Pos  token.Pos
}

// ParseDirectiveText validates one comment line against the grammar. text
// must start with //mmqjp: (callers filter). It is shared with cmd/docscheck,
// which runs it over directive lines quoted in the markdown guides.
func ParseDirectiveText(text string) (name, arg string, err error) {
	rest := strings.TrimPrefix(text, DirectivePrefix)
	if rest == text {
		return "", "", fmt.Errorf("not a %s directive: %q", DirectivePrefix, text)
	}
	name, arg, _ = strings.Cut(rest, " ")
	arg = strings.TrimSpace(arg)
	if name == "" || strings.ContainsAny(name, " \t") {
		return "", "", fmt.Errorf("malformed directive %q: want %s<name> [arg]", text, DirectivePrefix)
	}
	spec, ok := SpecFor(name)
	if !ok {
		return "", "", fmt.Errorf("unknown directive %smmqjp:%s", "//", name)
	}
	if spec.ArgRequired && arg == "" {
		return "", "", fmt.Errorf("directive %s%s requires an argument: %s", DirectivePrefix, name, spec.Arg)
	}
	if !spec.ArgRequired && arg != "" {
		return "", "", fmt.Errorf("directive %s%s takes no argument (got %q)", DirectivePrefix, name, arg)
	}
	return name, arg, nil
}

// Directives indexes every annotation of one package by what it attaches to.
type Directives struct {
	// Fields maps struct-field objects to their annotations (from the
	// field's doc or trailing line comment).
	Fields map[*types.Var][]Directive
	// Funcs maps declared functions to annotations in their doc comment.
	Funcs map[*types.Func][]Directive
	// Units maps function units — *ast.FuncDecl (doc annotations) and
	// *ast.FuncLit (annotations written inside the literal's body) — to their
	// annotations. A directive inside a nested literal annotates the
	// innermost literal only.
	Units map[ast.Node][]Directive
	// ByLine maps filename -> comment line -> directives on that line, for
	// statement-level attachment (a directive annotates the statement on the
	// same line or the line below it).
	ByLine map[string]map[int][]Directive
}

// CollectDirectives builds the package's directive index. Malformed
// directives are skipped here; CheckDirectives reports them.
func CollectDirectives(fset *token.FileSet, pkg *Package) *Directives {
	d := &Directives{
		Fields: map[*types.Var][]Directive{},
		Funcs:  map[*types.Func][]Directive{},
		Units:  map[ast.Node][]Directive{},
		ByLine: map[string]map[int][]Directive{},
	}
	for _, file := range pkg.Files {
		consumed := map[token.Pos]bool{}

		// Field annotations: doc and trailing comments of struct fields.
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				dirs := directivesInGroups(consumed, field.Doc, field.Comment)
				if len(dirs) == 0 {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						d.Fields[v] = append(d.Fields[v], dirs...)
					}
				}
			}
			return true
		})

		// Function annotations: FuncDecl doc comments.
		var units []ast.Node
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			units = append(units, fd)
			dirs := directivesInGroups(consumed, fd.Doc)
			if len(dirs) == 0 {
				continue
			}
			d.Units[fd] = append(d.Units[fd], dirs...)
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				d.Funcs[fn] = append(d.Funcs[fn], dirs...)
			}
		}

		// Remaining directives: index by line, and attach those inside a
		// function literal's body to the innermost literal.
		fname := fset.Position(file.Pos()).Filename
		for _, group := range file.Comments {
			for _, c := range group.List {
				dir, ok := parseComment(c)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				if d.ByLine[fname] == nil {
					d.ByLine[fname] = map[int][]Directive{}
				}
				d.ByLine[fname][line] = append(d.ByLine[fname][line], dir)
				if consumed[c.Pos()] {
					continue
				}
				if lit := innermostFuncLit(file, c.Pos()); lit != nil {
					d.Units[lit] = append(d.Units[lit], dir)
				}
			}
		}
	}
	return d
}

// directivesInGroups parses the directives of the given comment groups and
// marks them consumed so they are not re-attached as unit annotations.
func directivesInGroups(consumed map[token.Pos]bool, groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if dir, ok := parseComment(c); ok {
				out = append(out, dir)
				consumed[c.Pos()] = true
			}
		}
	}
	return out
}

func parseComment(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, DirectivePrefix) {
		return Directive{}, false
	}
	name, arg, err := ParseDirectiveText(c.Text)
	if err != nil {
		return Directive{}, false
	}
	return Directive{Name: name, Arg: arg, Pos: c.Pos()}, true
}

// innermostFuncLit returns the smallest function literal whose body span
// contains pos, or nil.
func innermostFuncLit(file *ast.File, pos token.Pos) *ast.FuncLit {
	var best *ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if lit.Body != nil && lit.Body.Pos() <= pos && pos < lit.Body.End() {
			if best == nil || (lit.Body.End()-lit.Body.Pos()) < (best.Body.End()-best.Body.Pos()) {
				best = lit
			}
		}
		return true
	})
	return best
}

// At returns the directives named name attached at line (same line or the
// line above) in file fname — the statement-attachment rule.
func (d *Directives) At(fname string, line int, name string) (Directive, bool) {
	for _, l := range [2]int{line, line - 1} {
		for _, dir := range d.ByLine[fname][l] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// UnitDirective returns the first directive named name on any of units
// (ordered innermost first).
func (d *Directives) UnitDirective(units []ast.Node, name string) (Directive, bool) {
	for _, u := range units {
		for _, dir := range d.Units[u] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// CheckDirectives validates every //mmqjp: comment in the program against the
// grammar: unknown names, missing or unexpected arguments.
func CheckDirectives(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					if !strings.HasPrefix(c.Text, DirectivePrefix) {
						continue
					}
					if _, _, err := ParseDirectiveText(c.Text); err != nil {
						diags = append(diags, Diagnostic{
							Pos:      prog.Fset.Position(c.Pos()),
							Analyzer: "directives",
							Message:  err.Error(),
						})
					}
				}
			}
		}
	}
	return diags
}
