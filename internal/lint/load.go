package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks the module offline with the standard library alone:
// module-internal packages are parsed from source and checked recursively in
// dependency order; standard-library imports are delegated to the compiler's
// source importer. No golang.org/x/tools, no export data, no network.

// moduleImporter satisfies types.Importer for the chained scheme above.
type moduleImporter struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	pkgs       map[string]*Package // import path -> checked package
	loading    map[string]bool     // cycle guard (should never trip on a buildable tree)
	std        types.Importer
}

func newModuleImporter(fset *token.FileSet, moduleRoot, modulePath string) *moduleImporter {
	return &moduleImporter{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		std:        importer.ForCompiler(fset, "source", nil),
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.modulePath || strings.HasPrefix(path, m.modulePath+"/") {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// load parses and type-checks one module package (memoized).
func (m *moduleImporter) load(path string) (*Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, m.modulePath), "/")
	dir := filepath.Join(m.moduleRoot, filepath.FromSlash(rel))
	pkg, err := m.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	m.pkgs[path] = pkg
	return pkg, nil
}

// loadDir parses the non-test .go files of dir and type-checks them as
// import path pkgPath.
func (m *moduleImporter) loadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(pkgPath, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// Load type-checks the module rooted at moduleRoot and returns a Program over
// the packages matching patterns. The only patterns supported are "./..."
// (every package in the module) and module-relative directories ("./internal/core").
func Load(moduleRoot string, patterns []string) (*Program, error) {
	modulePath, err := modulePathOf(moduleRoot)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := packageDirs(moduleRoot)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, all...)
		default:
			dirs = append(dirs, filepath.Clean(strings.TrimPrefix(pat, "./")))
		}
	}
	fset := token.NewFileSet()
	imp := newModuleImporter(fset, moduleRoot, modulePath)
	prog := &Program{Fset: fset, ByPath: map[string]*Package{}}
	for _, rel := range dirs {
		path := modulePath
		if rel != "." {
			path = modulePath + "/" + filepath.ToSlash(rel)
		}
		if _, ok := prog.ByPath[path]; ok {
			continue
		}
		pkg, err := imp.load(path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.ByPath[path] = pkg
	}
	return prog, nil
}

// LoadDir type-checks a single standalone package (standard-library imports
// only) as a Program — the fixture-loading mode of the analyzer tests.
func LoadDir(dir, pkgPath string) (*Program, error) {
	fset := token.NewFileSet()
	imp := newModuleImporter(fset, dir, pkgPath+"/_none_")
	pkg, err := imp.loadDir(dir, pkgPath)
	if err != nil {
		return nil, err
	}
	return &Program{
		Fset:   fset,
		Pkgs:   []*Package{pkg},
		ByPath: map[string]*Package{pkgPath: pkg},
	}, nil
}

// modulePathOf reads the module path from moduleRoot/go.mod.
func modulePathOf(moduleRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", moduleRoot)
}

// packageDirs lists every module directory containing non-test .go files,
// relative to moduleRoot ("." for the root package). testdata, hidden and
// underscore-prefixed directories are skipped, matching the go tool.
func packageDirs(moduleRoot string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(moduleRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != moduleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(moduleRoot, filepath.Dir(path))
		if err != nil {
			return err
		}
		if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	dirs = dedupeSorted(dirs)
	return dirs, nil
}

func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
