// Package pooled enforces the scratch-reuse contract: every sync.Pool
// declaration (package-level var, local var, or struct field) must carry a
// `//mmqjp:pooled <reason>` annotation arguing that pooled objects are reset
// on reuse and that nothing handed out from the pool escapes its checkout
// window. A pool is easy to add and easy to get subtly wrong — returning an
// object while a caller still holds a sub-slice of it is a use-after-recycle
// that the race detector cannot see (same goroutine, no lock) — so the
// annotation forces the escape argument to be written down next to the pool,
// where a reviewer changing either side will find it.
package pooled

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

type analyzer struct{}

// New returns the pooled analyzer.
func New() lint.Analyzer { return analyzer{} }

func (analyzer) Name() string { return "pooled" }

func (a analyzer) Run(prog *lint.Program) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, pkg := range prog.Pkgs {
		dirs := prog.DirectivesFor(pkg)
		for _, file := range pkg.Files {
			fname := prog.Fset.Position(file.Pos()).Filename
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ValueSpec:
					for _, name := range n.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						// A blank binding can never hand out pooled objects.
						if !ok || name.Name == "_" || !isSyncPool(v.Type()) {
							continue
						}
						if annotatedByLine(dirs, prog, fname, name) {
							continue
						}
						diags = append(diags, diag(prog, name.Pos(), name.Name))
					}
				case *ast.StructType:
					for _, field := range n.Fields.List {
						for _, name := range field.Names {
							v, ok := pkg.Info.Defs[name].(*types.Var)
							if !ok || !isSyncPool(v.Type()) {
								continue
							}
							if hasPooled(dirs.Fields[v]) {
								continue
							}
							diags = append(diags, diag(prog, name.Pos(), name.Name))
						}
					}
				}
				return true
			})
		}
	}
	lint.SortDiagnostics(diags)
	return diags
}

func diag(prog *lint.Program, pos token.Pos, name string) lint.Diagnostic {
	return lint.Diagnostic{
		Pos:      prog.Fset.Position(pos),
		Analyzer: "pooled",
		Message: fmt.Sprintf("sync.Pool %s must be annotated %spooled <reason> arguing pooled objects are reset and never escape",
			name, lint.DirectivePrefix),
	}
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// annotatedByLine reports whether a pooled directive sits on the declaring
// line or the line above it (the statement-attachment rule).
func annotatedByLine(dirs *lint.Directives, prog *lint.Program, fname string, name *ast.Ident) bool {
	line := prog.Fset.Position(name.Pos()).Line
	for _, l := range []int{line, line - 1} {
		if hasPooled(dirs.ByLine[fname][l]) {
			return true
		}
	}
	return false
}

func hasPooled(ds []lint.Directive) bool {
	for _, d := range ds {
		if d.Name == "pooled" {
			return true
		}
	}
	return false
}
