package pooled

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	linttest.Golden(t, []lint.Analyzer{New()},
		"../testdata/src/pooled", "../testdata/pooled.golden")
}
