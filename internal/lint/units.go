package lint

import (
	"go/ast"
	"go/token"
)

// A "unit" is one function body: an *ast.FuncDecl or an *ast.FuncLit. The
// lock-discipline and ownership analyzers reason per unit: an access is
// justified if any unit on its enclosing chain locks the mutex, carries the
// right annotation, or is an allowlisted method.

// UnitsEnclosing returns the chain of function units whose span contains pos,
// innermost first.
func UnitsEnclosing(file *ast.File, pos token.Pos) []ast.Node {
	var chain []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				chain = append(chain, n)
			}
		}
		return true
	})
	// Inspect visits outermost first; reverse for innermost-first order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// UnitBody returns the body block of a unit node.
func UnitBody(unit ast.Node) *ast.BlockStmt {
	switch u := unit.(type) {
	case *ast.FuncDecl:
		return u.Body
	case *ast.FuncLit:
		return u.Body
	}
	return nil
}

// UnitLocks reports whether the unit's own body (not nested function
// literals — a closure locking a mutex does not mean its parent holds it)
// contains a call <...>.<mutexName>.Lock() or .RLock(). The check is
// flow-insensitive: it proves lock discipline was considered at the site, not
// that the lock is held on every path.
func UnitLocks(unit ast.Node, mutexName string) bool {
	body := UnitBody(unit)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // do not descend into nested closures
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == mutexName {
				found = true
			}
		case *ast.Ident:
			if x.Name == mutexName {
				found = true
			}
		}
		return !found
	})
	return found
}

// MutexName extracts the mutex field name from a guardedby argument
// ("e.mu" -> "mu", "mu" -> "mu").
func MutexName(arg string) string {
	if i := lastDot(arg); i >= 0 {
		return arg[i+1:]
	}
	return arg
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
