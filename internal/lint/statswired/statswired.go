// Package statswired promotes the stats-plumbing reflection test to compile
// time: every field of the core stats struct must be referenced in the merge
// method (so per-shard counters survive aggregation) and read somewhere in
// the surface package (so it reaches the engine-level stats type), and every
// json tag on the surface struct must be present and unique (so no two
// counters collide in the wire format). A new counter that is added but not
// wired through shows up as a diagnostic on the field declaration.
package statswired

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"repro/internal/lint"
)

// Config names the types the analyzer wires together.
type Config struct {
	StatsPkg    string // import path of the stats struct ("repro/internal/core")
	StatsType   string // name of the stats struct ("Stats")
	MergeMethod string // method of StatsType that merges another value ("Add")
	SurfacePkg  string // import path of the surfacing package ("repro")
	SurfaceType string // engine-level stats struct with json tags ("EngineStats")
}

type analyzer struct{ cfg Config }

// New returns the statswired analyzer.
func New(cfg Config) lint.Analyzer { return analyzer{cfg} }

func (analyzer) Name() string { return "statswired" }

func (a analyzer) Run(prog *lint.Program) []lint.Diagnostic {
	spkg := prog.ByPath[a.cfg.StatsPkg]
	upkg := prog.ByPath[a.cfg.SurfacePkg]
	if spkg == nil || upkg == nil {
		// Partial lint run (e.g. a single package): nothing to wire.
		return nil
	}
	var diags []lint.Diagnostic

	statsStruct, statsFields := structFields(spkg, a.cfg.StatsType)
	if statsStruct == nil {
		return []lint.Diagnostic{{
			Pos:      prog.Fset.Position(spkg.Files[0].Pos()),
			Analyzer: "statswired",
			Message:  fmt.Sprintf("struct %s not found in %s", a.cfg.StatsType, a.cfg.StatsPkg),
		}}
	}
	fieldSet := map[*types.Var]bool{}
	for _, f := range statsFields {
		fieldSet[f] = true
	}

	// Fields referenced in the merge method.
	mergeDecl := methodDecl(spkg, a.cfg.StatsType, a.cfg.MergeMethod)
	merged := map[*types.Var]bool{}
	if mergeDecl == nil {
		diags = append(diags, lint.Diagnostic{
			Pos:      prog.Fset.Position(spkg.Files[0].Pos()),
			Analyzer: "statswired",
			Message:  fmt.Sprintf("merge method (*%s).%s not found in %s", a.cfg.StatsType, a.cfg.MergeMethod, a.cfg.StatsPkg),
		})
	} else {
		markFieldReads(mergeDecl, spkg, fieldSet, merged)
	}

	// Fields read anywhere in the surface package (excluding the merge
	// method itself, relevant when stats and surface share a package).
	surfaced := map[*types.Var]bool{}
	for _, file := range upkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == ast.Node(mergeDecl) {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v, ok := upkg.Info.Uses[sel.Sel].(*types.Var); ok && fieldSet[v] {
				surfaced[v] = true
			}
			return true
		})
	}

	fieldPos := fieldPositions(spkg, a.cfg.StatsType)
	for _, f := range statsFields {
		if mergeDecl != nil && !merged[f] {
			diags = append(diags, lint.Diagnostic{
				Pos:      prog.Fset.Position(fieldPos[f.Name()]),
				Analyzer: "statswired",
				Message:  fmt.Sprintf("%s.%s is not merged in (*%s).%s: the counter would be lost on aggregation", a.cfg.StatsType, f.Name(), a.cfg.StatsType, a.cfg.MergeMethod),
			})
		}
		if !surfaced[f] {
			diags = append(diags, lint.Diagnostic{
				Pos:      prog.Fset.Position(fieldPos[f.Name()]),
				Analyzer: "statswired",
				Message:  fmt.Sprintf("%s.%s is never read in %s: the counter does not surface in %s", a.cfg.StatsType, f.Name(), a.cfg.SurfacePkg, a.cfg.SurfaceType),
			})
		}
	}

	// json tags on the surface struct: present and unique.
	diags = append(diags, a.checkTags(prog, upkg)...)
	return diags
}

// checkTags validates the surface struct's json tags.
func (a analyzer) checkTags(prog *lint.Program, upkg *lint.Package) []lint.Diagnostic {
	surface, _ := structFields(upkg, a.cfg.SurfaceType)
	if surface == nil {
		return []lint.Diagnostic{{
			Pos:      prog.Fset.Position(upkg.Files[0].Pos()),
			Analyzer: "statswired",
			Message:  fmt.Sprintf("struct %s not found in %s", a.cfg.SurfaceType, a.cfg.SurfacePkg),
		}}
	}
	var diags []lint.Diagnostic
	fieldPos := fieldPositions(upkg, a.cfg.SurfaceType)
	seen := map[string]string{} // tag name -> field name
	for i := 0; i < surface.NumFields(); i++ {
		f := surface.Field(i)
		if !f.Exported() {
			continue
		}
		tag, ok := reflect.StructTag(surface.Tag(i)).Lookup("json")
		name, _, _ := strings.Cut(tag, ",")
		if !ok || name == "" {
			diags = append(diags, lint.Diagnostic{
				Pos:      prog.Fset.Position(fieldPos[f.Name()]),
				Analyzer: "statswired",
				Message:  fmt.Sprintf("%s.%s has no json tag name: it would marshal under the Go field name", a.cfg.SurfaceType, f.Name()),
			})
			continue
		}
		if prev, dup := seen[name]; dup {
			diags = append(diags, lint.Diagnostic{
				Pos:      prog.Fset.Position(fieldPos[f.Name()]),
				Analyzer: "statswired",
				Message:  fmt.Sprintf("%s.%s reuses json tag %q (already on %s)", a.cfg.SurfaceType, f.Name(), name, prev),
			})
			continue
		}
		seen[name] = f.Name()
	}
	return diags
}

// structFields resolves a named struct in pkg and returns its fields.
func structFields(pkg *lint.Package, name string) (*types.Struct, []*types.Var) {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil, nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	var fields []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		fields = append(fields, st.Field(i))
	}
	return st, fields
}

// methodDecl finds the declaration of method name on recvType (value or
// pointer receiver).
func methodDecl(pkg *lint.Package, recvType, name string) *ast.FuncDecl {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == recvType {
				return fd
			}
		}
	}
	return nil
}

// markFieldReads records every selector in decl that resolves to one of the
// tracked fields.
func markFieldReads(decl *ast.FuncDecl, pkg *lint.Package, fieldSet, out map[*types.Var]bool) {
	ast.Inspect(decl, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && fieldSet[v] {
			out[v] = true
		}
		return true
	})
}

// fieldPositions maps field name -> declaration position for the named
// struct, for diagnostic anchoring.
func fieldPositions(pkg *lint.Package, typeName string) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != typeName {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				for _, nm := range f.Names {
					out[nm.Name] = nm.Pos()
				}
			}
			return false
		})
	}
	return out
}
