package statswired

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	a := New(Config{
		StatsPkg:    "fixture",
		StatsType:   "Stats",
		MergeMethod: "Add",
		SurfacePkg:  "fixture",
		SurfaceType: "Surface",
	})
	linttest.Golden(t, []lint.Analyzer{a},
		"../testdata/src/statswired", "../testdata/statswired.golden")
}
