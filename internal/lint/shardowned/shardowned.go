// Package shardowned enforces the single-owner discipline of the Stage-2
// template shards: a field annotated `//mmqjp:shardowned` may only be
// accessed from a method whose receiver is the owning struct (the evaluating
// shard touching its own state) or from a function annotated
// `//mmqjp:shardaccess <reason>` — the allowlist for the protocols that may
// legitimately cross the ownership line: quiesced registration on the
// processor, the split/steal protocol in split.go, and stats collection at a
// barrier. The reason argument is mandatory, so every crossing documents why
// it is safe.
package shardowned

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

type analyzer struct{}

// New returns the shardowned analyzer.
func New() lint.Analyzer { return analyzer{} }

func (analyzer) Name() string { return "shardowned" }

func (a analyzer) Run(prog *lint.Program) []lint.Diagnostic {
	owned := map[*types.Var]bool{}
	for _, pkg := range prog.Pkgs {
		dirs := prog.DirectivesFor(pkg)
		for v, ds := range dirs.Fields {
			for _, d := range ds {
				if d.Name == "shardowned" {
					owned[v] = true
				}
			}
		}
	}
	if len(owned) == 0 {
		return nil
	}

	var diags []lint.Diagnostic
	for _, pkg := range prog.Pkgs {
		dirs := prog.DirectivesFor(pkg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !owned[field] {
					return true
				}
				if justified(file, sel, field, pkg, dirs) {
					return true
				}
				diags = append(diags, lint.Diagnostic{
					Pos:      prog.Fset.Position(sel.Sel.Pos()),
					Analyzer: "shardowned",
					Message: fmt.Sprintf("field %s is shard-owned: access it from an owner-receiver method or annotate the function with %sshardaccess <reason>",
						field.Name(), lint.DirectivePrefix),
				})
				return true
			})
		}
	}
	return diags
}

// justified reports whether the access is from a method of the owning struct
// or under a shardaccess annotation on any enclosing function unit.
func justified(file *ast.File, sel *ast.SelectorExpr, field *types.Var, pkg *lint.Package, dirs *lint.Directives) bool {
	units := lint.UnitsEnclosing(file, sel.Sel.Pos())
	if _, ok := dirs.UnitDirective(units, "shardaccess"); ok {
		return true
	}
	for _, u := range units {
		fd, ok := u.(*ast.FuncDecl)
		if !ok || fd.Recv == nil {
			continue
		}
		fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv != nil && ownsField(recv.Type(), field) {
			return true
		}
	}
	return false
}

// ownsField reports whether recvType (possibly a pointer) is the struct that
// declares field.
func ownsField(recvType types.Type, field *types.Var) bool {
	if ptr, ok := recvType.Underlying().(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	st, ok := recvType.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == field {
			return true
		}
	}
	return false
}
