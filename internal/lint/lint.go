// Package lint is the framework behind cmd/mmqjplint: a zero-dependency
// static-analysis suite that turns the repo's prose invariants ("callers must
// hold e.mu", "owned by the evaluating shard", "iteration order must not
// reach the output") into machine-checked rules. It loads and type-checks the
// module's packages with the standard library only (go/parser + go/types with
// a source importer), parses //mmqjp: directives out of the comments, and
// hands both to the analyzer packages under internal/lint/.
//
// See DESIGN.md "Static invariants" for the directive grammar and what each
// analyzer guarantees.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding, positioned in the linted source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one type-checked package of the linted program.
type Package struct {
	Path  string // import path ("repro/internal/core")
	Dir   string // directory the files were parsed from
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	dirs *Directives // lazily built by Program.DirectivesFor
}

// Program is the unit analyzers run on: every package of the lint target,
// sharing one FileSet and one type-checker universe.
type Program struct {
	Fset *token.FileSet
	// Pkgs lists the packages to lint in load (dependency) order.
	Pkgs []*Package
	// ByPath indexes Pkgs by import path.
	ByPath map[string]*Package
}

// Analyzer is one invariant checker.
type Analyzer interface {
	Name() string
	Run(prog *Program) []Diagnostic
}

// DirectivesFor returns pkg's directive index, building it on first use.
// Linting is single-threaded; the cache is not synchronized.
func (p *Program) DirectivesFor(pkg *Package) *Directives {
	if pkg.dirs == nil {
		pkg.dirs = CollectDirectives(p.Fset, pkg)
	}
	return pkg.dirs
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer — the
// stable order golden files and CLI output use.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Run executes every analyzer on prog, prepends the framework's own directive
// validation (unknown names, missing arguments), and returns the combined
// diagnostics in stable order.
func Run(prog *Program, analyzers []Analyzer) []Diagnostic {
	diags := CheckDirectives(prog)
	for _, a := range analyzers {
		diags = append(diags, a.Run(prog)...)
	}
	SortDiagnostics(diags)
	return diags
}
