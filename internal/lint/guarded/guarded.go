// Package guarded enforces lock discipline declared with //mmqjp: directives:
// a field annotated `//mmqjp:guardedby e.mu` may only be accessed — and a
// function so annotated may only be called — from a function that locks that
// mutex, is itself annotated guardedby the same mutex, or carries
// `//mmqjp:nolock <reason>` (exclusive access by construction, e.g. an engine
// still under construction). Closures are first-class: a directive written
// inside a function literal annotates that literal, and a literal whose body
// locks the mutex justifies the accesses it contains.
//
// The analysis is flow-insensitive by design: it proves the author declared
// the discipline at every access path, not that the lock is held on every
// execution path. The race detector remains the dynamic backstop.
package guarded

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

type analyzer struct{}

// New returns the guarded analyzer.
func New() lint.Analyzer { return analyzer{} }

func (analyzer) Name() string { return "guarded" }

func (a analyzer) Run(prog *lint.Program) []lint.Diagnostic {
	guardedFields := map[*types.Var]string{} // field -> mutex field name
	guardedFuncs := map[*types.Func]string{} // func  -> mutex field name
	for _, pkg := range prog.Pkgs {
		dirs := prog.DirectivesFor(pkg)
		for v, ds := range dirs.Fields {
			for _, d := range ds {
				if d.Name == "guardedby" {
					guardedFields[v] = lint.MutexName(d.Arg)
				}
			}
		}
		for fn, ds := range dirs.Funcs {
			for _, d := range ds {
				if d.Name == "guardedby" {
					guardedFuncs[fn] = lint.MutexName(d.Arg)
				}
			}
		}
	}

	var diags []lint.Diagnostic
	for _, pkg := range prog.Pkgs {
		dirs := prog.DirectivesFor(pkg)
		for _, file := range pkg.Files {
			callees := map[ast.Expr]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					callees[call.Fun] = true
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch obj := pkg.Info.Uses[sel.Sel].(type) {
				case *types.Var:
					if mu, ok := guardedFields[obj]; ok && !justified(file, sel.Sel.Pos(), mu, dirs) {
						diags = append(diags, lint.Diagnostic{
							Pos:      prog.Fset.Position(sel.Sel.Pos()),
							Analyzer: "guarded",
							Message: fmt.Sprintf("field %s is guarded by %s: no enclosing function locks it or is annotated %sguardedby (or %snolock)",
								obj.Name(), mu, lint.DirectivePrefix, lint.DirectivePrefix),
						})
					}
				case *types.Func:
					if mu, ok := guardedFuncs[obj]; ok && callees[sel] && !justified(file, sel.Sel.Pos(), mu, dirs) {
						diags = append(diags, lint.Diagnostic{
							Pos:      prog.Fset.Position(sel.Sel.Pos()),
							Analyzer: "guarded",
							Message: fmt.Sprintf("call to %s requires holding %s (%sguardedby): no enclosing function locks it or is annotated",
								obj.Name(), mu, lint.DirectivePrefix),
						})
					}
				}
				return true
			})
		}
	}
	return diags
}

// justified reports whether the access at pos is covered: some enclosing
// function unit locks the mutex, is annotated guardedby the same mutex, or is
// annotated nolock.
func justified(file *ast.File, pos token.Pos, mutexName string, dirs *lint.Directives) bool {
	units := lint.UnitsEnclosing(file, pos)
	for _, u := range units {
		if lint.UnitLocks(u, mutexName) {
			return true
		}
		for _, d := range dirs.Units[u] {
			switch d.Name {
			case "nolock":
				return true
			case "guardedby":
				if lint.MutexName(d.Arg) == mutexName {
					return true
				}
			}
		}
	}
	return false
}
