package rules

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestTreeIsClean is the `mmqjplint ./...` gate as a test: the full analyzer
// suite must produce zero diagnostics on the real tree. A failure here means
// a change broke a machine-checked invariant (or needs a //mmqjp: annotation
// with a reason).
func TestTreeIsClean(t *testing.T) {
	root := moduleRoot(t)
	prog, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := lint.Run(prog, Default())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
