// Package rules binds the analyzers to this repository: which packages are
// on the output path for mapiter, where nondeterminism is forbidden, and
// which types the stats wiring connects. cmd/mmqjplint and the clean-tree
// test share this configuration so "the linter" means the same thing in CI,
// locally and in the tests.
package rules

import (
	"repro/internal/lint"
	"repro/internal/lint/guarded"
	"repro/internal/lint/mapiter"
	"repro/internal/lint/nodeterm"
	"repro/internal/lint/pooled"
	"repro/internal/lint/shardowned"
	"repro/internal/lint/statswired"
)

const module = "repro"

// Default returns the repo's analyzer suite.
func Default() []lint.Analyzer {
	return []lint.Analyzer{
		mapiter.New(mapiter.Config{Enforce: onOutputPath}),
		guarded.New(),
		shardowned.New(),
		statswired.New(statswired.Config{
			StatsPkg:    module + "/internal/core",
			StatsType:   "Stats",
			MergeMethod: "Add",
			SurfacePkg:  module,
			SurfaceType: "EngineStats",
		}),
		nodeterm.New(nodeterm.Config{Enforce: func(pkgPath string) bool {
			return pkgPath == module+"/internal/core"
		}}),
		pooled.New(),
	}
}

// onOutputPath scopes mapiter to the packages whose iteration order can reach
// match output or serialized state: the shared-join core, the partition
// router, and the whole engine facade package (engine.go, publish.go,
// snapshot.go, stats.go, store.go).
func onOutputPath(pkgPath, file string) bool {
	switch pkgPath {
	case module, module + "/internal/core", module + "/internal/router":
		return true
	}
	return false
}
