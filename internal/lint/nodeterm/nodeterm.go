// Package nodeterm forbids nondeterminism sources — time.Now/Since/Until and
// anything from math/rand — in the hot-path packages, outside functions
// annotated `//mmqjp:nondet <reason>`. The allowlisted sites are the
// wall-clock stats timers (output-invisible) and the adaptive planner's
// seeded exploration PRNG (deterministic by construction); the annotation
// forces every new site to state which kind it is.
package nodeterm

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Config scopes enforcement by package import path.
type Config struct {
	Enforce func(pkgPath string) bool
}

type analyzer struct{ cfg Config }

// New returns the nodeterm analyzer.
func New(cfg Config) lint.Analyzer { return analyzer{cfg} }

func (analyzer) Name() string { return "nodeterm" }

func (a analyzer) Run(prog *lint.Program) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, pkg := range prog.Pkgs {
		if a.cfg.Enforce != nil && !a.cfg.Enforce(pkg.Path) {
			continue
		}
		dirs := prog.DirectivesFor(pkg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || !nondeterministic(fn) {
					return true
				}
				units := lint.UnitsEnclosing(file, sel.Sel.Pos())
				if _, ok := dirs.UnitDirective(units, "nondet"); ok {
					return true
				}
				diags = append(diags, lint.Diagnostic{
					Pos:      prog.Fset.Position(sel.Sel.Pos()),
					Analyzer: "nodeterm",
					Message: fmt.Sprintf("%s.%s is a nondeterminism source: annotate the enclosing function with %snondet <reason> or keep it out of the hot path",
						fn.Pkg().Path(), fn.Name(), lint.DirectivePrefix),
				})
				return true
			})
		}
	}
	return diags
}

// nondeterministic reports whether fn is a forbidden source: the wall clock
// or any function/method of math/rand.
func nondeterministic(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return true
		}
	case "math/rand", "math/rand/v2":
		return true
	}
	return false
}
