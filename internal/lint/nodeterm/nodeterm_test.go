package nodeterm

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestFixture(t *testing.T) {
	linttest.Golden(t, []lint.Analyzer{New(Config{})},
		"../testdata/src/nodeterm", "../testdata/nodeterm.golden")
}
