package router_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/workload"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// The routed differential harness: the same seeded random churn traces the
// core harness replays (internal/core/harness_test.go) are driven through a
// Router at Partitions ∈ {1, 2, 4} and through a single core.Processor with
// the identical per-partition configuration. The router's merged per-event
// output must be byte-identical — order included — to the single engine's,
// across plan / workers / split / pipeline-depth / view-materialization
// combinations. A second test snapshots the routed state mid-trace
// (ExportStates at a churn boundary), rebuilds a fresh router, re-registers
// the live queries in global-id order, restores, and requires the replayed
// suffix to stay byte-identical.

// rec is the byte-identity fingerprint of one match. Template identity is
// recorded by canonical signature, which — unlike TemplateID — is portable
// across partitions.
type rec struct {
	Query              core.QueryID
	LeftDoc, RightDoc  xmldoc.DocID
	LeftTS, RightTS    xmldoc.Timestamp
	LeftRoot, RghtRoot xmldoc.NodeID
	Sig                string
	Bindings           string
}

func recs(ms []core.Match) []rec {
	out := make([]rec, len(ms))
	for i, m := range ms {
		sig := ""
		if m.Template != nil {
			sig = m.Template.Sig
		}
		out[i] = rec{
			Query:   m.Query,
			LeftDoc: m.LeftDoc, RightDoc: m.RightDoc,
			LeftTS: m.LeftTS, RightTS: m.RightTS,
			LeftRoot: m.LeftRoot, RghtRoot: m.RightRoot,
			Sig:      sig,
			Bindings: fmt.Sprint(m.Bindings),
		}
	}
	return out
}

// backend is the common replay surface of a single processor and a router.
type backend interface {
	Register(q *xscl.Query) (core.QueryID, error)
	Unregister(id core.QueryID) error
	ProcessBatchFunc(stream string, docs []*xmldoc.Document, deliver func(i int, matches []core.Match))
}

// replayTrace drives a trace through b exactly as the core harness does:
// churn-free document spans go through ProcessBatchFunc (so pipeline depth
// is exercised), churn is applied between batches. ids carries the
// already-registered subscriptions (indexed by subscription number) when
// resuming a trace suffix on a restored backend; nil for a fresh replay.
func replayTrace(b backend, tr workload.Trace, ids []core.QueryID) [][]rec {
	for _, q := range tr.Initial {
		id, err := b.Register(q)
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	out := make([][]rec, len(tr.Events))
	i := 0
	for i < len(tr.Events) {
		ev := tr.Events[i]
		for _, u := range ev.Unsubscribe {
			if err := b.Unregister(ids[u]); err != nil {
				panic(err)
			}
		}
		for _, q := range ev.Subscribe {
			id, err := b.Register(q)
			if err != nil {
				panic(err)
			}
			ids = append(ids, id)
		}
		j := i + 1
		for j < len(tr.Events) && len(tr.Events[j].Unsubscribe) == 0 && len(tr.Events[j].Subscribe) == 0 {
			j++
		}
		docs := make([]*xmldoc.Document, 0, j-i)
		for k := i; k < j; k++ {
			docs = append(docs, tr.Events[k].Doc)
		}
		base := i
		b.ProcessBatchFunc("S", docs, func(k int, ms []core.Match) {
			out[base+k] = recs(ms)
		})
		i = j
	}
	return out
}

// combos is the configuration grid the routed oracle runs under: a spread
// of the core harness's Plan × Workers × SplitThreshold × PipelineDepth ×
// ViewMaterialization axes.
func combos(seed int64) []core.Config {
	return []core.Config{
		{Plan: core.PlanWitness},
		{Plan: core.PlanWitness, Workers: 4, SplitThreshold: 1, PipelineDepth: 2, ViewMaterialization: true},
		{Plan: core.PlanRTDriven, Workers: 4, SplitThreshold: 1, ViewMaterialization: true},
		{Plan: core.PlanAuto, PlanExploreEvery: 2, PlanExploreSeed: seed, PipelineDepth: 2, ViewMaterialization: true},
		{Plan: core.PlanAuto, PlanExploreEvery: 2, PlanExploreSeed: seed, Workers: 4, SplitThreshold: -1},
	}
}

func comboName(cfg core.Config) string {
	plan := map[core.PlanKind]string{core.PlanWitness: "witness", core.PlanRTDriven: "rt", core.PlanAuto: "auto"}[cfg.Plan]
	return fmt.Sprintf("plan=%s workers=%d split=%v depth=%d viewmat=%v",
		plan, cfg.Workers, cfg.SplitThreshold, cfg.PipelineDepth, cfg.ViewMaterialization)
}

func traceForSeed(seed int64, deep bool) workload.Trace {
	gen := workload.DefaultRandomFlat()
	if deep {
		gen = workload.DefaultRandomDeep()
	}
	rng := rand.New(rand.NewSource(seed))
	nQueries := 2 + rng.Intn(6)
	nDocs := 6 + rng.Intn(10)
	return gen.Trace(rng, nQueries, nDocs, true)
}

// TestRoutedEquivalence is the engine-of-engines oracle: N routed engines ≡
// 1 engine, byte-identical per event, on identical churn traces.
func TestRoutedEquivalence(t *testing.T) {
	seeds := []struct {
		seed int64
		deep bool
	}{{1, false}, {2, false}, {3, false}, {4, false}, {5, false}, {101, true}, {102, true}}
	totalMatches := 0
	for _, s := range seeds {
		tr := traceForSeed(s.seed, s.deep)
		for _, cfg := range combos(s.seed) {
			ref := replayTrace(core.NewProcessor(cfg), tr, nil)
			for _, ms := range ref {
				totalMatches += len(ms)
			}
			for _, parts := range []int{1, 2, 4} {
				r := router.New(router.Config{Partitions: parts, Core: cfg})
				got := replayTrace(r, tr, nil)
				for ev := range ref {
					if !reflect.DeepEqual(ref[ev], got[ev]) {
						t.Fatalf("seed %d deep=%v %s partitions=%d: event %d diverges from the single engine:\nsingle: %v\nrouted: %v",
							s.seed, s.deep, comboName(cfg), parts, ev, ref[ev], got[ev])
					}
				}
			}
		}
	}
	if totalMatches == 0 {
		t.Fatal("no seed produced any match; the routed oracle would be vacuous")
	}
}

// liveQueries replays a trace's churn up to (but excluding) event cut and
// returns, per global query id, the query live at that point (nil for
// tombstones).
func liveQueries(tr workload.Trace, cut int) []*xscl.Query {
	var qs []*xscl.Query
	qs = append(qs, tr.Initial...)
	for i := 0; i < cut; i++ {
		for _, u := range tr.Events[i].Unsubscribe {
			qs[u] = nil
		}
		qs = append(qs, tr.Events[i].Subscribe...)
	}
	return qs
}

// TestRoutedSnapshotRestoreMidTrace cuts each trace at a churn boundary,
// exports every partition's state at that consistent prefix, rebuilds a
// fresh router (re-registering live queries in global-id order, burning
// tombstoned ids), restores, and replays the suffix — which must be
// byte-identical to the uninterrupted routed run and hence to the single
// engine.
func TestRoutedSnapshotRestoreMidTrace(t *testing.T) {
	for _, s := range []struct {
		seed int64
		deep bool
	}{{1, false}, {3, false}, {5, false}, {101, true}} {
		tr := traceForSeed(s.seed, s.deep)
		cfg := core.Config{Plan: core.PlanAuto, PlanExploreEvery: 2, PlanExploreSeed: s.seed, Workers: 2, PipelineDepth: 2, ViewMaterialization: true}
		// Cut at the first churn boundary past the midpoint (falling back
		// to the exact midpoint), so the snapshot happens where the
		// engine's barrier would put it.
		cut := len(tr.Events) / 2
		for i := cut; i < len(tr.Events); i++ {
			if len(tr.Events[i].Unsubscribe) > 0 || len(tr.Events[i].Subscribe) > 0 {
				cut = i
				break
			}
		}
		prefix := workload.Trace{Initial: tr.Initial, Events: tr.Events[:cut]}
		suffix := workload.Trace{Events: tr.Events[cut:]}

		for _, parts := range []int{2, 4} {
			full := router.New(router.Config{Partitions: parts, Core: cfg})
			want := replayTrace(full, tr, nil)

			r1 := router.New(router.Config{Partitions: parts, Core: cfg})
			replayTrace(r1, prefix, nil)
			states := r1.ExportStates()

			r2 := router.New(router.Config{Partitions: parts, Core: cfg})
			var ids []core.QueryID
			for gid, q := range liveQueries(tr, cut) {
				if q == nil {
					r2.SkipQueryID()
					ids = append(ids, core.QueryID(gid))
					continue
				}
				id := r2.MustRegister(q)
				if id != core.QueryID(gid) {
					t.Fatalf("seed %d partitions=%d: restore registered query %d on id %d", s.seed, parts, gid, id)
				}
				ids = append(ids, id)
			}
			if err := r2.RestoreStates(states); err != nil {
				t.Fatalf("seed %d partitions=%d: restore: %v", s.seed, parts, err)
			}
			got := replayTrace(r2, suffix, ids)
			for ev := range got {
				if !reflect.DeepEqual(want[cut+ev], got[ev]) {
					t.Fatalf("seed %d deep=%v partitions=%d: post-restore event %d diverges:\nuninterrupted: %v\nrestored:      %v",
						s.seed, s.deep, parts, cut+ev, want[cut+ev], got[ev])
				}
			}
		}
	}
}

// TestRouterStatsAggregation checks the per-partition observability surface:
// aggregate Stats sums the partitions (with Documents counted once), and the
// partition counts cover every live query exactly once.
func TestRouterStatsAggregation(t *testing.T) {
	// Scan the harness seeds for a trace that actually produces matches
	// (deterministic: the first qualifying seed always wins).
	var tr workload.Trace
	for seed := int64(1); seed <= 20; seed++ {
		cand := traceForSeed(seed, false)
		probe := core.NewProcessor(core.Config{})
		matches := 0
		for _, ms := range replayTrace(probe, cand, nil) {
			matches += len(ms)
		}
		if matches > 0 {
			tr = cand
			break
		}
	}
	r := router.New(router.Config{Partitions: 4, Core: core.Config{ViewMaterialization: true}})
	replayTrace(r, tr, nil)
	agg := r.Stats()
	if want := int64(len(tr.Events)); agg.Documents != want {
		t.Fatalf("aggregate Documents = %d, want %d (one per published document)", agg.Documents, want)
	}
	if agg.Matches == 0 {
		t.Fatal("trace produced no matches; the routed oracle would be vacuous")
	}
	var matches int64
	queries, templates := r.PartitionCounts()
	for i, ps := range r.PartitionStats() {
		matches += ps.Matches
		if queries[i] < 0 || templates[i] < 0 {
			t.Fatalf("negative partition counts: %v %v", queries, templates)
		}
	}
	if matches != agg.Matches {
		t.Fatalf("partition Matches sum to %d, aggregate says %d", matches, agg.Matches)
	}
	total := 0
	for _, q := range queries {
		total += q
	}
	if total != r.NumQueries() {
		t.Fatalf("partition queries sum to %d, NumQueries says %d", total, r.NumQueries())
	}
}
