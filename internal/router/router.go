// Package router is the in-process engine-of-engines tier: a Router owns N
// independent core.Processors (partitions), assigns each subscription to one
// partition by hash of its canonical template signature (core.PartitionKey),
// fans every published document to all partitions, and merges the partition
// match streams under the canonical total order — so routed output is
// byte-identical to a single engine holding the same subscriptions.
//
// The Router implements core.Backend: RunStage1 fans the document-local work
// across partitions in parallel, ConsumeStage1 consumes every partition and
// re-sorts the relabeled concatenation. Because it is a Backend, the PR 4
// continuous-ingest machinery (core.Ingest) drives it unchanged, and an
// Ingest.Barrier over a routed backend is automatically a router-wide
// barrier: admission is closed, every partition has consumed every admitted
// document, and no Stage-1 work is in flight on any partition. The engine
// facade routes Subscribe/Unsubscribe/Snapshot through exactly that barrier.
//
// Why output is N-invariant: every query lives wholly in one partition, and
// each partition sees the identical document sequence, so a query's match
// multiset in its partition equals its multiset in a single engine holding
// all queries — witness relations are deduplicated sets keyed by canonical
// variables, and signature-hash placement co-locates the queries that share
// them. Each per-document output leaves ConsumeStage1 in the canonical total
// order (core.SortMatches), which is a pure function of match content, so
// sorting the union of the partitions' outputs reproduces the single
// engine's byte order.
//
// Registration is not safe concurrently with in-flight document processing,
// exactly as for a single Processor: callers funnel Register/Unregister
// through an Ingest.Barrier or otherwise quiesce first.
package router

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// Config sizes a Router.
type Config struct {
	// Partitions is the number of independent processors (<1 selects 1).
	Partitions int
	// Core configures every partition identically (Workers, plan choice,
	// view materialization, pipeline depth...). Core.OnDocument is called
	// once per routed document with the partitions' summed timings, not
	// once per partition.
	Core core.Config
}

// Router partitions subscriptions across N processors behind the Backend
// surface. Methods follow the Processor's concurrency contract: document
// processing via the Backend methods, registration only while quiesced.
type Router struct {
	parts []*core.Processor
	depth int

	// routes is indexed by global QueryID: which partition a query lives
	// on and its partition-local id. Unregistered and skipped ids leave
	// nil slots, mirroring the Processor's tombstone discipline.
	routes []*route
	// l2g maps each partition's local QueryID space back to global ids
	// for relabeling merged output. Registering queries in global-id
	// order keeps every partition's local order monotone in global order.
	l2g [][]core.QueryID

	// onDoc is the caller's per-document hook; slots collects the
	// partitions' individual timings for one document before summing.
	onDoc func(core.DocTimings)
	slots []core.DocTimings
}

type route struct {
	part  int
	local core.QueryID
}

// New builds an empty Router with cfg.Partitions independent processors.
func New(cfg Config) *Router {
	n := cfg.Partitions
	if n < 1 {
		n = 1
	}
	r := &Router{
		depth: cfg.Core.PipelineDepth,
		l2g:   make([][]core.QueryID, n),
		onDoc: cfg.Core.OnDocument,
		slots: make([]core.DocTimings, n),
	}
	for i := 0; i < n; i++ {
		cc := cfg.Core
		cc.OnDocument = nil
		if r.onDoc != nil {
			// Each partition reports into its own slot; ConsumeStage1 is
			// never concurrent with itself, so the slots are reused safely.
			slot := &r.slots[i]
			cc.OnDocument = func(t core.DocTimings) { *slot = t }
		}
		r.parts = append(r.parts, core.NewProcessor(cc))
	}
	return r
}

// Partitions reports the number of partitions.
func (r *Router) Partitions() int { return len(r.parts) }

// Register assigns q to the partition hashed from its canonical key and
// registers it there, returning the router-global query id. Global ids are
// dense in registration order (like a Processor's), independent of
// partition placement.
func (r *Router) Register(q *xscl.Query) (core.QueryID, error) {
	key, err := core.PartitionKey(q)
	if err != nil {
		return 0, err
	}
	part := core.PartitionOf(key, len(r.parts))
	local, err := r.parts[part].Register(q)
	if err != nil {
		return 0, err
	}
	gid := core.QueryID(len(r.routes))
	r.routes = append(r.routes, &route{part: part, local: local})
	for core.QueryID(len(r.l2g[part])) <= local {
		r.l2g[part] = append(r.l2g[part], -1)
	}
	r.l2g[part][local] = gid
	return gid, nil
}

// MustRegister is Register, panicking on error (tests, examples).
func (r *Router) MustRegister(q *xscl.Query) core.QueryID {
	id, err := r.Register(q)
	if err != nil {
		panic(err)
	}
	return id
}

// Unregister removes the query from its partition and tombstones the global
// id, exactly as Processor.Unregister tombstones a local one.
func (r *Router) Unregister(qid core.QueryID) error {
	if qid < 0 || qid >= core.QueryID(len(r.routes)) || r.routes[qid] == nil {
		return fmt.Errorf("router: unknown query id %d", qid)
	}
	rt := r.routes[qid]
	if err := r.parts[rt.part].Unregister(rt.local); err != nil {
		return err
	}
	r.routes[qid] = nil
	return nil
}

// SkipQueryID burns one global query id, leaving a tombstone slot — the
// restore path uses it to preserve the ids of queries that were
// unregistered before the snapshot. Partition-local id spaces are untouched:
// local ids need not match across snapshot and restore, because relabeling
// reads the l2g mapping recorded at (re-)registration time.
func (r *Router) SkipQueryID() {
	r.routes = append(r.routes, nil)
}

// routedStage1 is the Router's in-flight document: one partition's
// Stage1Result per partition.
type routedStage1 struct {
	parts []core.Stage1Result
}

// RunStage1 implements core.Backend by fanning the document to every
// partition's Stage 1 in parallel. Each partition matches only its own
// pattern subset, so the fan-out splits the Stage-1 pattern work rather
// than duplicating it (the per-partition NFA document scan is the
// duplicated part).
func (r *Router) RunStage1(stream string, d *xmldoc.Document) core.Stage1Result {
	rs := &routedStage1{parts: make([]core.Stage1Result, len(r.parts))}
	var wg sync.WaitGroup
	for i, p := range r.parts {
		wg.Add(1)
		go func(i int, p *core.Processor) {
			defer wg.Done()
			rs.parts[i] = p.RunStage1(stream, d)
		}(i, p)
	}
	wg.Wait()
	return rs
}

// ConsumeStage1 implements core.Backend: every partition consumes its half
// of the document in parallel (partitions share no mutable state), then the
// outputs are relabeled to global query ids, concatenated, and re-sorted
// under the canonical total order — the single-engine byte order.
func (r *Router) ConsumeStage1(sr core.Stage1Result) []core.Match {
	rs := sr.(*routedStage1)
	outs := make([][]core.Match, len(r.parts))
	var wg sync.WaitGroup
	for i, p := range r.parts {
		wg.Add(1)
		go func(i int, p *core.Processor) {
			defer wg.Done()
			outs[i] = p.ConsumeStage1(rs.parts[i])
		}(i, p)
	}
	wg.Wait()
	n := 0
	for _, ms := range outs {
		n += len(ms)
	}
	out := make([]core.Match, 0, n)
	for part, ms := range outs {
		for _, m := range ms {
			m.Query = r.l2g[part][m.Query]
			out = append(out, m)
		}
	}
	core.SortMatches(out)
	if r.onDoc != nil {
		var sum core.DocTimings
		for i := range r.slots {
			t := &r.slots[i]
			sum.Stage1 += t.Stage1
			sum.Stage2 += t.Stage2
			sum.Merge += t.Merge
			sum.GC += t.GC
			r.slots[i] = core.DocTimings{}
		}
		sum.Matches = len(out)
		r.onDoc(sum)
	}
	return out
}

// Process runs the full routed per-document pipeline.
func (r *Router) Process(stream string, d *xmldoc.Document) []core.Match {
	return r.ConsumeStage1(r.RunStage1(stream, d))
}

// ProcessBatch processes docs in arrival order and returns each document's
// merged matches, exactly as len(docs) consecutive Process calls would.
func (r *Router) ProcessBatch(stream string, docs []*xmldoc.Document) [][]core.Match {
	out := make([][]core.Match, len(docs))
	r.ProcessBatchFunc(stream, docs, func(i int, ms []core.Match) { out[i] = ms })
	return out
}

// ProcessBatchFunc is the routed ProcessBatch with per-document delivery,
// pipelined over the configured Core.PipelineDepth via the shared batch
// runner.
func (r *Router) ProcessBatchFunc(stream string, docs []*xmldoc.Document, deliver func(i int, matches []core.Match)) {
	core.RunBatch(r, r.depth, stream, docs, deliver)
}

// NumQueries reports the number of live queries across all partitions.
func (r *Router) NumQueries() int {
	n := 0
	for _, p := range r.parts {
		n += p.NumQueries()
	}
	return n
}

// NumTemplates reports the sum of the partitions' live template counts.
// This can exceed a single engine's count: a JOIN query's swapped
// orientation materializes its mirror template on the query's home
// partition, while another query whose primary signature equals that mirror
// may hash elsewhere — the template then exists on two partitions.
func (r *Router) NumTemplates() int {
	n := 0
	for _, p := range r.parts {
		n += p.NumTemplates()
	}
	return n
}

// Stats returns the partitions' accumulated stats summed. Documents counts
// each routed document once per partition (every partition consumed it);
// Matches sums to the routed output count, since each match is produced by
// exactly one partition.
func (r *Router) Stats() core.Stats {
	var s core.Stats
	for _, p := range r.parts {
		ps := p.Stats()
		s.Add(ps)
	}
	if len(r.parts) > 0 {
		s.Documents /= int64(len(r.parts))
	}
	return s
}

// PartitionStats returns each partition's own accumulated stats, indexed by
// partition (per-partition observability).
func (r *Router) PartitionStats() []core.Stats {
	out := make([]core.Stats, len(r.parts))
	for i, p := range r.parts {
		out[i] = p.Stats()
	}
	return out
}

// PartitionCounts reports each partition's live query and template counts.
func (r *Router) PartitionCounts() (queries, templates []int) {
	queries = make([]int, len(r.parts))
	templates = make([]int, len(r.parts))
	for i, p := range r.parts {
		queries[i] = p.NumQueries()
		templates[i] = p.NumTemplates()
	}
	return queries, templates
}

// ResetStats zeroes every partition's accumulated stats.
func (r *Router) ResetStats() {
	for _, p := range r.parts {
		p.ResetStats()
	}
}

// PlanStats concatenates the partitions' per-template planner records in
// partition order.
func (r *Router) PlanStats() []core.TemplatePlanStats {
	var out []core.TemplatePlanStats
	for _, p := range r.parts {
		out = append(out, p.PlanStats()...)
	}
	return out
}

// MaxDocID reports the largest document id present in any partition's join
// state (they agree unless GC divergence trims one earlier).
func (r *Router) MaxDocID() int64 {
	var max int64
	for _, p := range r.parts {
		if v := p.MaxDocID(); v > max {
			max = v
		}
	}
	return max
}

// ExportStates exports every partition's join state, indexed by partition.
// Call only while quiesced (a barrier), so all partitions export at the
// same consistent admission prefix.
func (r *Router) ExportStates() []core.StateSnapshot {
	out := make([]core.StateSnapshot, len(r.parts))
	for i, p := range r.parts {
		out[i] = p.ExportState()
	}
	return out
}

// RestoreStates restores every partition's join state from an ExportStates
// taken with the same partition count. Queries must have been re-registered
// first (in global-id order), exactly as Processor.RestoreState requires
// registration before state restore.
func (r *Router) RestoreStates(snaps []core.StateSnapshot) error {
	if len(snaps) != len(r.parts) {
		return fmt.Errorf("router: snapshot has %d partition states, router has %d partitions", len(snaps), len(r.parts))
	}
	for i, p := range r.parts {
		if err := p.RestoreState(snaps[i]); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
	}
	return nil
}
