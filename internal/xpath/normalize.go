package xpath

import (
	"sort"
	"strings"
)

// NormalizedFullyBound returns a semantically equivalent clone of the
// pattern in which
//
//   - every pattern node is bound to a variable (unbound nodes receive
//     synthetic names derived from their position), and
//   - the children of every node are sorted into a canonical order.
//
// It also returns indexMap, mapping each node index of p to the index of the
// corresponding node in the normalized pattern.
//
// The MMQJP processor registers normalized patterns with the shared XPath
// evaluator: full binding makes Stage-1 witnesses enumerate a document node
// for every pattern node (the paper's join graphs likewise label every tree
// node with a variable), and canonical child order makes node indexes align
// across all queries that use a structurally identical block, so their
// witness relations are shared tuple-for-tuple.
func (p *Pattern) NormalizedFullyBound() (*Pattern, []int) {
	type cloned struct {
		node *PatternNode
		old  int
	}
	var synth int
	var clone func(n *PatternNode) *cloned
	clonedByOld := make(map[int]*cloned, len(p.Nodes))
	clone = func(n *PatternNode) *cloned {
		c := &cloned{node: &PatternNode{
			Axis:   n.Axis,
			Name:   n.Name,
			IsAttr: n.IsAttr,
			Var:    n.Var,
		}, old: n.Index}
		if c.node.Var == "" {
			c.node.Var = "$" + itoa(synth)
			synth++
		}
		for _, ch := range n.Children {
			cc := clone(ch)
			c.node.Children = append(c.node.Children, cc.node)
		}
		clonedByOld[n.Index] = c
		return c
	}
	root := clone(p.Root)

	// Sort children canonically by their structural encoding (names,
	// axes, attribute flags — not variable names, which are synthetic).
	var enc func(n *PatternNode) string
	enc = func(n *PatternNode) string {
		name := n.Name
		if n.IsAttr {
			name = "@" + name
		}
		self := n.Axis.String() + name
		if len(n.Children) == 0 {
			return self
		}
		kids := make([]string, len(n.Children))
		for i, c := range n.Children {
			kids[i] = enc(c)
		}
		sort.Strings(kids)
		return self + "[" + strings.Join(kids, ",") + "]"
	}
	var sortKids func(n *PatternNode)
	sortKids = func(n *PatternNode) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return enc(n.Children[i]) < enc(n.Children[j])
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sortKids(root.node)

	np := &Pattern{Stream: p.Stream, Root: root.node}
	np.finalize()

	indexMap := make([]int, len(p.Nodes))
	for old, c := range clonedByOld {
		indexMap[old] = c.node.Index
	}
	return np, indexMap
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
