// Package xpath implements the XPath tree-pattern fragment used by XSCL
// query blocks: child (/) and descendant (//) axes, attribute access (@),
// wildcard (*), nested predicates ([]), and XSCL's ->var binding extension.
//
// A query block such as
//
//	S//book->x1[.//author->x2][.//title->x3]
//
// parses into a Pattern: a tree of PatternNodes rooted at the block's output
// node, annotated with variable bindings. The package also provides a naive
// (brute force) matcher used as the correctness oracle for the shared
// yfilter engine, canonical variable naming, and root-to-leaf path
// decomposition for NFA construction.
package xpath

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmldoc"
)

// Axis is the relationship of a pattern node to its pattern parent.
type Axis uint8

const (
	// Child is the XPath / axis.
	Child Axis = iota
	// Descendant is the XPath // axis.
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// PatternNode is one node of a tree pattern.
type PatternNode struct {
	Axis     Axis   // axis connecting this node to its parent (the root's axis is relative to the document root context)
	Name     string // element/attribute name test, or "*" for the wildcard
	IsAttr   bool   // true for @name attribute tests
	Var      string // original variable name bound with ->var, or "" if unbound
	Children []*PatternNode

	// Index of this node in Pattern.Nodes (pre-order); set by finalize.
	Index int
	// Parent index in Pattern.Nodes, or -1 for the root.
	ParentIndex int
}

// Pattern is a complete tree pattern for one XSCL query block.
type Pattern struct {
	Stream string // name of the input stream the block reads
	Root   *PatternNode

	// Nodes lists all pattern nodes in pre-order. Nodes[0] == Root.
	Nodes []*PatternNode
	// VarNodes lists the indexes (into Nodes) of nodes bound to variables,
	// in pre-order.
	VarNodes []int
}

// finalize populates Nodes, VarNodes, Index and ParentIndex.
func (p *Pattern) finalize() {
	p.Nodes = p.Nodes[:0]
	p.VarNodes = p.VarNodes[:0]
	var walk func(n *PatternNode, parent int)
	walk = func(n *PatternNode, parent int) {
		n.Index = len(p.Nodes)
		n.ParentIndex = parent
		p.Nodes = append(p.Nodes, n)
		if n.Var != "" {
			p.VarNodes = append(p.VarNodes, n.Index)
		}
		for _, c := range n.Children {
			walk(c, n.Index)
		}
	}
	walk(p.Root, -1)
}

// Vars returns the original variable names bound in the pattern, in
// pre-order.
func (p *Pattern) Vars() []string {
	out := make([]string, len(p.VarNodes))
	for i, idx := range p.VarNodes {
		out[i] = p.Nodes[idx].Var
	}
	return out
}

// VarNode returns the pattern node bound to the given original variable
// name, or nil if the variable is not bound in this pattern.
func (p *Pattern) VarNode(name string) *PatternNode {
	for _, idx := range p.VarNodes {
		if p.Nodes[idx].Var == name {
			return p.Nodes[idx]
		}
	}
	return nil
}

// CanonicalVar returns the canonical system-wide name of the variable bound
// at pattern node n: the stream name followed by the structural definition
// path (axis and name test of every step from the block root to n). Two
// variables in any two queries receive equal canonical names exactly when
// their definitions are identical, implementing the paper's assumption that
// identically-defined variables share a name.
func (p *Pattern) CanonicalVar(n *PatternNode) string {
	var steps []string
	for cur := n; cur != nil; {
		name := cur.Name
		if cur.IsAttr {
			name = "@" + name
		}
		steps = append(steps, cur.Axis.String()+name)
		if cur.ParentIndex < 0 {
			cur = nil
		} else {
			cur = p.Nodes[cur.ParentIndex]
		}
	}
	// steps were collected leaf-to-root; reverse.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return p.Stream + strings.Join(steps, "")
}

// CanonicalVars returns canonical names for all bound variables, parallel to
// Vars().
func (p *Pattern) CanonicalVars() []string {
	out := make([]string, len(p.VarNodes))
	for i, idx := range p.VarNodes {
		out[i] = p.CanonicalVar(p.Nodes[idx])
	}
	return out
}

// String renders the pattern in XSCL block syntax. Children beyond the first
// path continuation are rendered as predicates.
func (p *Pattern) String() string {
	var sb strings.Builder
	sb.WriteString(p.Stream)
	writePatternNode(&sb, p.Root)
	return sb.String()
}

func writePatternNode(sb *strings.Builder, n *PatternNode) {
	sb.WriteString(n.Axis.String())
	if n.IsAttr {
		sb.WriteByte('@')
	}
	sb.WriteString(n.Name)
	if n.Var != "" {
		sb.WriteString("->")
		sb.WriteString(n.Var)
	}
	for _, c := range n.Children {
		sb.WriteByte('[')
		sb.WriteByte('.')
		writePatternNode(sb, c)
		sb.WriteByte(']')
	}
}

// CanonicalKey returns a canonical serialization of the pattern that is
// invariant under predicate (sibling) reordering and variable renaming
// (variables are replaced by their canonical definitions, which are
// position-derived). Patterns with equal keys match identical witnesses.
func (p *Pattern) CanonicalKey() string {
	var enc func(n *PatternNode) string
	enc = func(n *PatternNode) string {
		name := n.Name
		if n.IsAttr {
			name = "@" + name
		}
		self := n.Axis.String() + name
		if n.Var != "" {
			self += "!" // bound marker; canonical name is positional
		}
		if len(n.Children) == 0 {
			return self
		}
		kids := make([]string, len(n.Children))
		for i, c := range n.Children {
			kids[i] = enc(c)
		}
		sort.Strings(kids)
		return self + "[" + strings.Join(kids, ",") + "]"
	}
	return p.Stream + "|" + enc(p.Root)
}

// Path is a root-to-leaf linear decomposition component of a pattern, used
// to build the shared NFA.
type Path struct {
	Steps []PathStep
	// NodeIndexes[i] is the index (into Pattern.Nodes) of the pattern node
	// matched by Steps[i].
	NodeIndexes []int
}

// PathStep is one location step of a linear path.
type PathStep struct {
	Axis   Axis
	Name   string
	IsAttr bool
}

// Decompose returns the root-to-leaf linear paths of the pattern, in
// pre-order of their leaves.
func (p *Pattern) Decompose() []Path {
	var out []Path
	var steps []PathStep
	var idxs []int
	var walk func(n *PatternNode)
	walk = func(n *PatternNode) {
		steps = append(steps, PathStep{Axis: n.Axis, Name: n.Name, IsAttr: n.IsAttr})
		idxs = append(idxs, n.Index)
		if len(n.Children) == 0 {
			out = append(out, Path{
				Steps:       append([]PathStep(nil), steps...),
				NodeIndexes: append([]int(nil), idxs...),
			})
		}
		for _, c := range n.Children {
			walk(c)
		}
		steps = steps[:len(steps)-1]
		idxs = idxs[:len(idxs)-1]
	}
	walk(p.Root)
	return out
}

// nodeTestMatches reports whether the pattern node's name test and kind
// accept the document node.
func nodeTestMatches(pn *PatternNode, dn *xmldoc.Node) bool {
	if pn.IsAttr != (dn.Kind == xmldoc.AttributeNode) {
		return false
	}
	return pn.Name == "*" || pn.Name == dn.Name
}

// Witness is one complete assignment of the pattern's bound variables to
// document nodes. Bindings is parallel to Pattern.VarNodes / Pattern.Vars.
type Witness struct {
	Bindings []xmldoc.NodeID
}

// key serializes a witness for deduplication.
func (w Witness) key() string {
	var sb strings.Builder
	for _, b := range w.Bindings {
		fmt.Fprintf(&sb, "%d.", b)
	}
	return sb.String()
}

// MatchNaive computes all witnesses of the pattern against the document by
// brute-force recursive embedding. It is exponential in pattern size and
// exists as a readable correctness oracle for the yfilter engine; production
// matching uses yfilter.Engine.
func (p *Pattern) MatchNaive(d *xmldoc.Document) []Witness {
	// assignment[i] is the document node assigned to pattern node i, or -1.
	assignment := make([]xmldoc.NodeID, len(p.Nodes))
	for i := range assignment {
		assignment[i] = -1
	}
	seen := map[string]bool{}
	var out []Witness

	var assign func(pi int) bool // returns false to prune nothing; collects at full assignment
	var emit func()
	emit = func() {
		w := Witness{Bindings: make([]xmldoc.NodeID, len(p.VarNodes))}
		for i, idx := range p.VarNodes {
			w.Bindings[i] = assignment[idx]
		}
		k := w.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, w)
		}
	}
	assign = func(pi int) bool {
		if pi == len(p.Nodes) {
			emit()
			return true
		}
		pn := p.Nodes[pi]
		var candidates []xmldoc.NodeID
		if pn.ParentIndex < 0 {
			// Root pattern node: matched against any document node
			// (the stream context is the whole document; S//book
			// means any book element, S/book means the root only
			// if named book).
			for i := 0; i < d.Len(); i++ {
				dn := d.Node(xmldoc.NodeID(i))
				if !nodeTestMatches(pn, dn) {
					continue
				}
				if pn.Axis == Child && dn.Parent != -1 {
					continue // / from the stream context selects the root element
				}
				candidates = append(candidates, xmldoc.NodeID(i))
			}
		} else {
			parentDoc := assignment[pn.ParentIndex]
			if pn.Axis == Child {
				for _, c := range d.Node(parentDoc).Children {
					if nodeTestMatches(pn, d.Node(c)) {
						candidates = append(candidates, c)
					}
				}
			} else {
				for _, c := range d.Subtree(parentDoc) {
					if c == parentDoc {
						continue
					}
					if nodeTestMatches(pn, d.Node(c)) {
						candidates = append(candidates, c)
					}
				}
			}
		}
		for _, c := range candidates {
			assignment[pi] = c
			assign(pi + 1)
		}
		assignment[pi] = -1
		return true
	}
	assign(0)
	return out
}
