package xpath

import (
	"fmt"
	"strings"
)

// ParseBlock parses an XSCL query block such as
//
//	S//book->x1[.//author->x2][.//title->x3]
//
// into a Pattern. The grammar is
//
//	block     = stream relpath
//	relpath   = step { step }
//	step      = axis nametest [ "->" var ] { predicate }
//	predicate = "[" "." relpath "]"
//	axis      = "/" | "//"
//	nametest  = [ "@" ] ( name | "*" )
//
// A step following a predicate list continues the main path, i.e. it becomes
// another pattern child of the step carrying the predicates.
func ParseBlock(src string) (*Pattern, error) {
	p := &blockParser{src: src}
	pat, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("xpath: parsing %q: %w", src, err)
	}
	return pat, nil
}

// ParseBlockPrefix parses a query block from the beginning of src and
// returns the remaining unconsumed input. It is used by the XSCL parser to
// read a block embedded in a larger query (the block ends at the first
// character that cannot extend it, e.g. the FOLLOWED BY keyword).
func ParseBlockPrefix(src string) (*Pattern, string, error) {
	p := &blockParser{src: src}
	stream := p.ident()
	if stream == "" {
		return nil, src, fmt.Errorf("xpath: expected stream name at %q", src)
	}
	p.ws()
	if p.peek() != '/' {
		// A bare stream name selects every document on the stream:
		// the pattern is the document root itself.
		pat := &Pattern{Stream: stream, Root: &PatternNode{Axis: Child, Name: "*"}}
		pat.finalize()
		return pat, src[p.pos:], nil
	}
	root, err := p.relpath()
	if err != nil {
		return nil, src, fmt.Errorf("xpath: parsing block prefix of %q: %w", src, err)
	}
	pat := &Pattern{Stream: stream, Root: root}
	pat.finalize()
	return pat, src[p.pos:], nil
}

// MustParseBlock is ParseBlock, panicking on error. For tests and examples
// with literal patterns.
func MustParseBlock(src string) *Pattern {
	p, err := ParseBlock(src)
	if err != nil {
		panic(err)
	}
	return p
}

type blockParser struct {
	src string
	pos int
}

func (p *blockParser) parse() (*Pattern, error) {
	stream := p.ident()
	if stream == "" {
		return nil, fmt.Errorf("expected stream name at offset %d", p.pos)
	}
	root, err := p.relpath()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	pat := &Pattern{Stream: stream, Root: root}
	pat.finalize()
	return pat, nil
}

// relpath parses one or more steps and returns the first step's node; each
// subsequent step is attached as a child of the previous one.
func (p *blockParser) relpath() (*PatternNode, error) {
	first, err := p.step()
	if err != nil {
		return nil, err
	}
	cur := first
	for {
		p.ws()
		if !strings.HasPrefix(p.src[p.pos:], "/") {
			return first, nil
		}
		next, err := p.step()
		if err != nil {
			return nil, err
		}
		cur.Children = append(cur.Children, next)
		cur = next
	}
}

func (p *blockParser) step() (*PatternNode, error) {
	p.ws()
	axis := Child
	if strings.HasPrefix(p.src[p.pos:], "//") {
		axis = Descendant
		p.pos += 2
	} else if strings.HasPrefix(p.src[p.pos:], "/") {
		p.pos++
	} else {
		return nil, fmt.Errorf("expected axis at offset %d", p.pos)
	}
	isAttr := false
	if p.peek() == '@' {
		isAttr = true
		p.pos++
	}
	var name string
	if p.peek() == '*' {
		name = "*"
		p.pos++
	} else {
		name = p.ident()
		if name == "" {
			return nil, fmt.Errorf("expected name test at offset %d", p.pos)
		}
	}
	n := &PatternNode{Axis: axis, Name: name, IsAttr: isAttr}
	p.ws()
	if strings.HasPrefix(p.src[p.pos:], "->") {
		p.pos += 2
		v := p.varName()
		if v == "" {
			return nil, fmt.Errorf("expected variable name after -> at offset %d", p.pos)
		}
		n.Var = v
	}
	for {
		p.ws()
		if p.peek() != '[' {
			break
		}
		p.pos++
		p.ws()
		if p.peek() != '.' {
			return nil, fmt.Errorf("expected . at start of predicate at offset %d", p.pos)
		}
		p.pos++
		child, err := p.relpath()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.peek() != ']' {
			return nil, fmt.Errorf("expected ] at offset %d", p.pos)
		}
		p.pos++
		n.Children = append(n.Children, child)
	}
	return n, nil
}

func (p *blockParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *blockParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentRest(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-'
}

func (p *blockParser) ident() string {
	p.ws()
	start := p.pos
	if p.pos < len(p.src) && isIdentStart(p.src[p.pos]) {
		p.pos++
		for p.pos < len(p.src) && isIdentRest(p.src[p.pos]) {
			// A '-' followed by '>' is the binding arrow, not part
			// of a hyphenated name like item-url.
			if p.src[p.pos] == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '>' {
				break
			}
			p.pos++
		}
	}
	return p.src[start:p.pos]
}

// varName is like ident but additionally accepts trailing primes (x5').
func (p *blockParser) varName() string {
	v := p.ident()
	for p.pos < len(p.src) && p.src[p.pos] == '\'' {
		p.pos++
		v += "'"
	}
	return v
}
