package xpath

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/xmldoc"
)

func TestParseBlockQ1LHS(t *testing.T) {
	p, err := ParseBlock("S//book->x1[.//author->x2][.//title->x3]")
	if err != nil {
		t.Fatal(err)
	}
	if p.Stream != "S" {
		t.Errorf("stream = %q", p.Stream)
	}
	if p.Root.Name != "book" || p.Root.Var != "x1" || p.Root.Axis != Descendant {
		t.Errorf("root = %+v", p.Root)
	}
	if len(p.Root.Children) != 2 {
		t.Fatalf("children = %d", len(p.Root.Children))
	}
	if p.Root.Children[0].Name != "author" || p.Root.Children[0].Var != "x2" {
		t.Errorf("child 0 = %+v", p.Root.Children[0])
	}
	if p.Root.Children[1].Name != "title" || p.Root.Children[1].Var != "x3" {
		t.Errorf("child 1 = %+v", p.Root.Children[1])
	}
	if got := p.Vars(); !reflect.DeepEqual(got, []string{"x1", "x2", "x3"}) {
		t.Errorf("vars = %v", got)
	}
}

func TestParsePathContinuation(t *testing.T) {
	p, err := ParseBlock("S//a->v1[.//b->v2]//c->v3/d")
	if err != nil {
		t.Fatal(err)
	}
	// a has children [b] and c; c has child d.
	if len(p.Root.Children) != 2 {
		t.Fatalf("a children = %d", len(p.Root.Children))
	}
	c := p.Root.Children[1]
	if c.Name != "c" || c.Axis != Descendant || len(c.Children) != 1 {
		t.Fatalf("c = %+v", c)
	}
	if c.Children[0].Name != "d" || c.Children[0].Axis != Child {
		t.Errorf("d = %+v", c.Children[0])
	}
}

func TestParseNestedPredicates(t *testing.T) {
	p, err := ParseBlock("S/r->v0[./a->v1[.//b->v2]][.//@id->v3]")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Axis != Child {
		t.Errorf("root axis = %v", p.Root.Axis)
	}
	a := p.Root.Children[0]
	if a.Name != "a" || a.Axis != Child || a.Children[0].Name != "b" {
		t.Errorf("a = %+v", a)
	}
	id := p.Root.Children[1]
	if !id.IsAttr || id.Name != "id" || id.Var != "v3" {
		t.Errorf("id = %+v", id)
	}
}

func TestParsePrimedVars(t *testing.T) {
	p, err := ParseBlock("S//blog->x4'[.//author->x5']")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Var != "x4'" || p.Root.Children[0].Var != "x5'" {
		t.Errorf("vars = %q %q", p.Root.Var, p.Root.Children[0].Var)
	}
}

func TestParseWildcard(t *testing.T) {
	p, err := ParseBlock("S//*->w")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Name != "*" {
		t.Errorf("name = %q", p.Root.Name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"//book", // missing stream
		"S//",
		"S//book[author]",  // predicate without leading .
		"S//book[.//title", // unclosed predicate
		"S//book->",        // missing var
		"S//book]",         // trailing
		"S book",           // no axis
	}
	for _, src := range bad {
		if _, err := ParseBlock(src); err == nil {
			t.Errorf("ParseBlock(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"S//book->x1[.//author->x2][.//title->x3]",
		"S//a->v1[.//b->v2][.//c->v3[./d]]",
		"Feeds//item[.//@id->i]",
	}
	for _, src := range srcs {
		p1, err := ParseBlock(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		p2, err := ParseBlock(p1.String())
		if err != nil {
			t.Fatalf("round trip %q -> %q: %v", src, p1.String(), err)
		}
		if p1.CanonicalKey() != p2.CanonicalKey() {
			t.Errorf("round trip changed pattern: %q vs %q", p1.CanonicalKey(), p2.CanonicalKey())
		}
	}
}

func TestCanonicalVarSharedAcrossQueries(t *testing.T) {
	// x5 in Q1's RHS and x5' in Q3's RHS have the same definition
	// S//blog//author and must canonicalize identically.
	q1 := MustParseBlock("S//blog->x4[.//author->x5][.//title->x6]")
	q3 := MustParseBlock("S//blog->x4'[.//author->x5'][.//title->x6']")
	c1 := q1.CanonicalVar(q1.VarNode("x5"))
	c3 := q3.CanonicalVar(q3.VarNode("x5'"))
	if c1 != c3 {
		t.Errorf("canonical names differ: %q vs %q", c1, c3)
	}
	// Different definition: author under book.
	qb := MustParseBlock("S//book->x1[.//author->x2]")
	cb := qb.CanonicalVar(qb.VarNode("x2"))
	if cb == c1 {
		t.Errorf("book author and blog author canonicalized the same: %q", cb)
	}
}

func TestCanonicalKeyPredicateOrderInvariance(t *testing.T) {
	a := MustParseBlock("S//blog->x[.//author->y][.//title->z]")
	b := MustParseBlock("S//blog->x[.//title->z][.//author->y]")
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("keys differ:\n%q\n%q", a.CanonicalKey(), b.CanonicalKey())
	}
	c := MustParseBlock("S//blog->x[.//author->y]")
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Errorf("different patterns share a key")
	}
}

func TestDecompose(t *testing.T) {
	p := MustParseBlock("S//a->v1[.//b->v2][./c[.//d->v3]]")
	paths := p.Decompose()
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
	// First path: //a//b
	if len(paths[0].Steps) != 2 || paths[0].Steps[1].Name != "b" {
		t.Errorf("path 0 = %+v", paths[0])
	}
	// Second path: //a/c//d
	if len(paths[1].Steps) != 3 || paths[1].Steps[1].Name != "c" || paths[1].Steps[1].Axis != Child || paths[1].Steps[2].Name != "d" {
		t.Errorf("path 1 = %+v", paths[1])
	}
	if paths[1].NodeIndexes[2] != p.VarNode("v3").Index {
		t.Errorf("node indexes = %v", paths[1].NodeIndexes)
	}
}

func paperDoc1() *xmldoc.Document { return xmldoc.PaperD1(1, 100) }
func paperDoc2() *xmldoc.Document { return xmldoc.PaperD2(2, 200) }

func witnessSet(ws []Witness) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = fmt.Sprint(w.Bindings)
	}
	sort.Strings(out)
	return out
}

func TestMatchNaivePaperQ1LHS(t *testing.T) {
	p := MustParseBlock("S//book->x1[.//author->x2][.//title->x3]")
	ws := p.MatchNaive(paperDoc1())
	// book=0, authors={2,3}, title=4 → two witnesses.
	got := witnessSet(ws)
	want := []string{"[0 2 4]", "[0 3 4]"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("witnesses = %v, want %v", got, want)
	}
}

func TestMatchNaiveNoMatch(t *testing.T) {
	p := MustParseBlock("S//blog->x4[.//author->x5]")
	if ws := p.MatchNaive(paperDoc1()); len(ws) != 0 {
		t.Errorf("blog pattern matched book doc: %v", ws)
	}
}

func TestMatchNaiveChildVsDescendant(t *testing.T) {
	b := xmldoc.NewBuilder(1, 0, "r")
	a := b.Element(0, "a", "")
	b.Element(a, "b", "")
	deep := b.Element(a, "c", "")
	b.Element(deep, "b", "")
	d := b.Build()

	child := MustParseBlock("S//a->x[./b->y]")
	if got := len(child.MatchNaive(d)); got != 1 {
		t.Errorf("child axis matched %d, want 1", got)
	}
	desc := MustParseBlock("S//a->x[.//b->y]")
	if got := len(desc.MatchNaive(d)); got != 2 {
		t.Errorf("descendant axis matched %d, want 2", got)
	}
}

func TestMatchNaiveRootChildAxis(t *testing.T) {
	d := paperDoc2()
	// S/blog selects the root only.
	p := MustParseBlock("S/blog->x")
	if got := len(p.MatchNaive(d)); got != 1 {
		t.Errorf("S/blog matched %d, want 1", got)
	}
	// S/author must not match (author is not the root).
	p2 := MustParseBlock("S/author->x")
	if got := len(p2.MatchNaive(d)); got != 0 {
		t.Errorf("S/author matched %d, want 0", got)
	}
}

func TestMatchNaiveWildcardAndAttr(t *testing.T) {
	doc, err := xmldoc.ParseString(`<r><a id="1"><b>x</b></a><c id="2"/></r>`, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := MustParseBlock("S//*->x[./@id->i]")
	ws := p.MatchNaive(doc)
	if len(ws) != 2 {
		t.Errorf("wildcard+attr matched %d, want 2: %v", len(ws), witnessSet(ws))
	}
}

func TestMatchNaiveUnboundExistential(t *testing.T) {
	// Unbound intermediate nodes are existentially quantified: distinct
	// embeddings that agree on bound vars yield one witness.
	b := xmldoc.NewBuilder(1, 0, "r")
	a1 := b.Element(0, "a", "")
	b.Element(a1, "t", "v")
	a2 := b.Element(0, "a", "")
	b.Element(a2, "t", "v")
	d := b.Build()
	p := MustParseBlock("S//r->x[.//a[./t]]")
	ws := p.MatchNaive(d)
	if len(ws) != 1 {
		t.Errorf("witnesses = %d, want 1 (existential dedup)", len(ws))
	}
}

// randomPattern generates a small random pattern over names a..d.
func randomPattern(rng *rand.Rand) *Pattern {
	names := []string{"a", "b", "c", "d"}
	varCount := 0
	var gen func(depth int) *PatternNode
	gen = func(depth int) *PatternNode {
		n := &PatternNode{
			Axis: Axis(rng.Intn(2)),
			Name: names[rng.Intn(len(names))],
		}
		if rng.Intn(2) == 0 {
			varCount++
			n.Var = fmt.Sprintf("v%d", varCount)
		}
		if depth < 3 {
			for i := 0; i < rng.Intn(3); i++ {
				n.Children = append(n.Children, gen(depth+1))
			}
		}
		return n
	}
	root := gen(0)
	root.Axis = Descendant
	if root.Var == "" {
		root.Var = "v0"
	}
	p := &Pattern{Stream: "S", Root: root}
	p.finalize()
	return p
}

func TestRandomPatternStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := randomPattern(rng)
		q, err := ParseBlock(p.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", p.String(), err)
		}
		if p.CanonicalKey() != q.CanonicalKey() {
			t.Fatalf("canonical key changed for %q", p.String())
		}
		if !reflect.DeepEqual(p.Vars(), q.Vars()) {
			t.Fatalf("vars changed for %q: %v vs %v", p.String(), p.Vars(), q.Vars())
		}
	}
}
