package xpath

import "testing"

// FuzzParseQuery fuzzes the XSCL query-block parser. Properties:
//
//   - no panic on arbitrary input (the fuzzer's implicit check);
//   - parse → print → parse stability: a successfully parsed block
//     renders (Pattern.String) to a form that reparses to the same
//     rendering and the same canonical key, i.e. printing is a fixpoint
//     after one normalization.
//
// The corpus seeds the grammar's features: axes, attributes, wildcards,
// nested predicates, bindings with primes, and hyphenated names.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"S//book->x1[.//author->x2][.//title->x3]",
		"S//item->v0[./channel_url->v1][./title->v2]",
		"S/r->v0[./l1->v1][./l2->v2][./l3->v3]",
		"S//a->x[.//b[./c->y][.//@id->z]]",
		"S//*->w[./@*->a]",
		"Feed//item->x5'[./item-url->y']",
		"S//m0[.//l2->v]",
		"S/a/b/c->x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pat, err := ParseBlock(src)
		if err != nil {
			return
		}
		s1 := pat.String()
		pat2, err := ParseBlock(s1)
		if err != nil {
			t.Fatalf("printed form does not reparse:\ninput: %q\nprint: %q\nerr: %v", src, s1, err)
		}
		if s2 := pat2.String(); s2 != s1 {
			t.Fatalf("print not a fixpoint:\ninput: %q\nprint1: %q\nprint2: %q", src, s1, s2)
		}
		if k1, k2 := pat.CanonicalKey(), pat2.CanonicalKey(); k1 != k2 {
			t.Fatalf("canonical key changed across round trip:\ninput: %q\nkey1: %q\nkey2: %q", src, k1, k2)
		}
		if len(pat2.Nodes) != len(pat.Nodes) || len(pat2.VarNodes) != len(pat.VarNodes) {
			t.Fatalf("round trip changed pattern shape: %d/%d nodes, %d/%d vars",
				len(pat.Nodes), len(pat2.Nodes), len(pat.VarNodes), len(pat2.VarNodes))
		}
		// The canonical variable names — the system-wide identity of
		// bound variables — must survive the round trip position by
		// position.
		cv1, cv2 := pat.CanonicalVars(), pat2.CanonicalVars()
		for i := range cv1 {
			if cv1[i] != cv2[i] {
				t.Fatalf("canonical var %d changed: %q vs %q (input %q)", i, cv1[i], cv2[i], src)
			}
		}
	})
}
