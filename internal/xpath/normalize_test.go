package xpath

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/xmldoc"
)

func TestNormalizedFullyBoundBindsEverything(t *testing.T) {
	p := MustParseBlock("S//a[./b][.//c->x]")
	n, imap := p.NormalizedFullyBound()
	for i, node := range n.Nodes {
		if node.Var == "" {
			t.Errorf("node %d unbound after normalization", i)
		}
	}
	if len(imap) != len(p.Nodes) {
		t.Fatalf("index map length %d", len(imap))
	}
	// The mapped node corresponds structurally (same name).
	for old, nw := range imap {
		if p.Nodes[old].Name != n.Nodes[nw].Name {
			t.Errorf("node %d (%s) mapped to %d (%s)", old, p.Nodes[old].Name, nw, n.Nodes[nw].Name)
		}
	}
	// All nodes are their own witness slot: VarNodes == all nodes.
	if len(n.VarNodes) != len(n.Nodes) {
		t.Errorf("VarNodes = %d, want %d", len(n.VarNodes), len(n.Nodes))
	}
}

func TestNormalizedChildOrderCanonical(t *testing.T) {
	a := MustParseBlock("S//r->q[.//b->y][.//a->x]")
	b := MustParseBlock("S//r->q[.//a->x][.//b->y]")
	na, _ := a.NormalizedFullyBound()
	nb, _ := b.NormalizedFullyBound()
	// Same canonical order of children regardless of source order.
	if na.Nodes[1].Name != nb.Nodes[1].Name || na.Nodes[2].Name != nb.Nodes[2].Name {
		t.Errorf("normalized orders differ: %q/%q vs %q/%q",
			na.Nodes[1].Name, na.Nodes[2].Name, nb.Nodes[1].Name, nb.Nodes[2].Name)
	}
	if na.CanonicalKey() != nb.CanonicalKey() {
		t.Errorf("canonical keys differ after normalization")
	}
}

func TestNormalizedPreservesWitnesses(t *testing.T) {
	// Normalization must not change which documents match, and the
	// original node's binding must be recoverable through the index map.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 120; trial++ {
		p := randomPattern(rng)
		n, imap := p.NormalizedFullyBound()

		doc := randomNormDoc(rng)
		origWitnesses := p.MatchNaive(doc)
		normWitnesses := n.MatchNaive(doc)

		// Project the normalized witnesses (all nodes bound) onto the
		// original pattern's bound nodes via the index map.
		proj := map[string]bool{}
		for _, w := range normWitnesses {
			key := ""
			for _, idx := range p.VarNodes {
				slot := imap[idx]
				// slot is the node index == witness slot.
				key += string(rune(w.Bindings[slot])) + "|"
			}
			proj[key] = true
		}
		orig := map[string]bool{}
		for _, w := range origWitnesses {
			key := ""
			for i := range p.VarNodes {
				key += string(rune(w.Bindings[i])) + "|"
			}
			orig[key] = true
		}
		if !reflect.DeepEqual(orig, proj) {
			t.Fatalf("trial %d: witnesses diverge for %q:\norig %v\nproj %v",
				trial, p.String(), setKeys(orig), setKeys(proj))
		}
	}
}

func setKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func randomNormDoc(rng *rand.Rand) *xmldoc.Document {
	names := []string{"a", "b", "c", "d"}
	b := xmldoc.NewBuilder(1, 0, names[rng.Intn(len(names))])
	open := []xmldoc.NodeID{0}
	for i := 1; i < 2+rng.Intn(20); i++ {
		for len(open) > 1 && rng.Intn(3) == 0 {
			open = open[:len(open)-1]
		}
		id := b.Element(open[len(open)-1], names[rng.Intn(len(names))], "")
		open = append(open, id)
	}
	return b.Build()
}

func TestDocumentText(t *testing.T) {
	d, err := xmldoc.ParseString("<r>top<a>inner</a></r>", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Text(0); got != "top" {
		t.Errorf("Text(root) = %q, want %q", got, "top")
	}
	if got := d.StringValue(0); got != "topinner" {
		t.Errorf("StringValue(root) = %q", got)
	}
}
