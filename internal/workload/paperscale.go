package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// PaperScale is the paper's "massively multi-query" regime as a generated
// workload: a flat item schema whose queries vary in *wiring shape*, not
// just leaf choice. Template identity is purely structural — side sizes,
// parent vectors and the value-join wiring graph; element names never enter
// the canonical signature — so the earlier generators, which all emit the
// identity wiring (v1=w1 AND … AND vk=wk over k distinct leaves per side),
// collapse onto roughly one template per k and saturate template-granular
// parallelism at a handful of shards. PaperScale instead samples the
// endpoint wiring itself: each side's k join endpoints are drawn as a
// restricted-growth label sequence (repeated labels make several joins
// share one bound node), duplicate (left,right) label pairs rejected as
// redundant predicates. Distinct wiring shapes yield distinct canonical
// templates — 50+ live templates at a few thousand queries — while the
// random leaf assignment per label spreads the instances of each template
// over many RT vector groups, which is what gives the RT-driven plan
// interior parallelism (core split.go).
//
// Values are drawn from one global pool shared by every leaf, so joins
// between different leaf names still collide and every template does real
// Stage-2 work; the pool size tunes the per-document value-join pair count
// and with it the witness fan-out pairs^k that makes high-k templates hot.
type PaperScale struct {
	// Leaves is the number of leaf elements under each item root.
	Leaves int
	// MaxK bounds the value joins per query; k is drawn from
	// Zipf(1..MaxK, Theta).
	MaxK  int
	Theta float64
	// Window is every query's join window in timestamp units; the stream
	// advances one unit per document, so it is also the retained-document
	// count once the stream is longer than the window.
	Window int64
	// ValuePool is the number of distinct string values shared by all
	// leaves of all documents.
	ValuePool int
	// Instances and Items are the workload's nominal paper-scale size:
	// the query count and stream length a full run uses (benchmarks may
	// scale them down; see DefaultPaperScale).
	Instances int
	Items     int
}

// DefaultPaperScale is the paper-scale default: 100k query instances over a
// stream of 2000 documents, with enough wiring diversity for well over 50
// live canonical templates (the workload tests assert the floor).
func DefaultPaperScale() PaperScale {
	return PaperScale{
		Leaves:    8,
		MaxK:      5,
		Theta:     0.2,
		Window:    500,
		ValuePool: 24,
		Instances: 100000,
		Items:     2000,
	}
}

// Queries generates n queries: k ~ Zipf(1..MaxK), a sampled wiring shape,
// and a random distinct-leaf assignment per side.
func (c PaperScale) Queries(rng *rand.Rand, n int) []*xscl.Query {
	z := NewZipf(c.MaxK, c.Theta)
	out := make([]*xscl.Query, n)
	for i := range out {
		out[i] = c.query(rng, z.Sample(rng))
	}
	return out
}

func (c PaperScale) query(rng *rand.Rand, k int) *xscl.Query {
	l, r := sampleWiring(rng, k)
	numL, numR := maxLabel(l)+1, maxLabel(r)+1
	lleaf := rng.Perm(c.Leaves)[:numL]
	rleaf := rng.Perm(c.Leaves)[:numR]
	var lhs, rhs, pred strings.Builder
	lhs.WriteString("S//item->v0")
	rhs.WriteString("S//item->w0")
	for a := 0; a < numL; a++ {
		fmt.Fprintf(&lhs, "[./%s->v%d]", leafName(lleaf[a]+1), a+1)
	}
	for b := 0; b < numR; b++ {
		fmt.Fprintf(&rhs, "[./%s->w%d]", leafName(rleaf[b]+1), b+1)
	}
	for i := 0; i < k; i++ {
		if i > 0 {
			pred.WriteString(" AND ")
		}
		fmt.Fprintf(&pred, "v%d=w%d", l[i]+1, r[i]+1)
	}
	return xscl.MustParse(fmt.Sprintf("%s FOLLOWED BY{%s, %d} %s",
		lhs.String(), pred.String(), c.Window, rhs.String()))
}

// sampleWiring draws the endpoint label sequences of k value joins: one
// restricted-growth sequence per side, redrawn until no two joins connect
// the same (left, right) label pair.
func sampleWiring(rng *rand.Rand, k int) (l, r []int) {
	for {
		l = rgsSample(rng, k)
		r = rgsSample(rng, k)
		if noDupPairs(l, r) {
			return
		}
	}
}

// rgsSample draws a restricted-growth sequence of length k: out[0] = 0 and
// each later label is at most one above the maximum so far, so every label
// partition of the endpoints is reachable.
func rgsSample(rng *rand.Rand, k int) []int {
	out := make([]int, k)
	max := 0
	for i := 1; i < k; i++ {
		out[i] = rng.Intn(max + 2)
		if out[i] > max {
			max = out[i]
		}
	}
	return out
}

func maxLabel(s []int) int {
	m := 0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

func noDupPairs(l, r []int) bool {
	for i := range l {
		for j := i + 1; j < len(l); j++ {
			if l[i] == l[j] && r[i] == r[j] {
				return false
			}
		}
	}
	return true
}

// Stream materializes n documents: each item carries all leaves, values
// drawn from the shared global pool, timestamps advancing one unit per
// document.
func (c PaperScale) Stream(rng *rand.Rand, n int) []*xmldoc.Document {
	out := make([]*xmldoc.Document, n)
	for i := range out {
		b := xmldoc.NewBuilder(xmldoc.DocID(i+1), xmldoc.Timestamp(i+1), "item")
		for j := 1; j <= c.Leaves; j++ {
			b.Element(0, leafName(j), fmt.Sprintf("val-%d", rng.Intn(c.ValuePool)))
		}
		out[i] = b.Build()
	}
	return out
}
