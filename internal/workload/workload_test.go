package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

func TestZipfUniformAtZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(4, 0)
	counts := make([]int, 5)
	for i := 0; i < 40000; i++ {
		counts[z.Sample(rng)]++
	}
	for k := 1; k <= 4; k++ {
		frac := float64(counts[k]) / 40000
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("uniform zipf: P(%d) = %.3f", k, frac)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(6, 1.6)
	counts := make([]int, 7)
	for i := 0; i < 40000; i++ {
		counts[z.Sample(rng)]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[4] {
		t.Errorf("zipf not skewed: %v", counts)
	}
	// Check the ratio P(1)/P(2) ≈ 2^1.6.
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-math.Pow(2, 1.6)) > 0.5 {
		t.Errorf("P(1)/P(2) = %.2f, want ≈ %.2f", ratio, math.Pow(2, 1.6))
	}
}

func TestTwoLevelDocuments(t *testing.T) {
	c := DefaultTwoLevel()
	d1, d2 := c.Documents()
	if d1.Len() != c.N+1 || d2.Len() != c.N+1 {
		t.Fatalf("lens = %d, %d", d1.Len(), d2.Len())
	}
	// Corresponding leaves share values; within a document all differ.
	seen := map[string]bool{}
	for i := 1; i <= c.N; i++ {
		v1 := d1.StringValue(xmldoc.NodeID(i))
		v2 := d2.StringValue(xmldoc.NodeID(i))
		if v1 != v2 {
			t.Errorf("leaf %d: %q != %q", i, v1, v2)
		}
		if seen[v1] {
			t.Errorf("duplicate value within document: %q", v1)
		}
		seen[v1] = true
	}
}

func TestTwoLevelQueryShape(t *testing.T) {
	c := DefaultTwoLevel()
	rng := rand.New(rand.NewSource(3))
	qs := c.Queries(rng, 200)
	for _, q := range qs {
		if q.Op != xscl.OpFollowedBy {
			t.Fatalf("op = %v", q.Op)
		}
		if len(q.Preds) < 1 || len(q.Preds) > c.N {
			t.Fatalf("preds = %d", len(q.Preds))
		}
		if q.Window != c.Window {
			t.Fatalf("window = %d", q.Window)
		}
	}
}

// TestTwoLevelTemplateBound verifies the paper's observation that the
// maximum number of templates equals N for the two-level construction,
// regardless of the number of queries.
func TestTwoLevelTemplateBound(t *testing.T) {
	c := DefaultTwoLevel()
	rng := rand.New(rand.NewSource(4))
	p := core.NewProcessor(core.Config{})
	for _, q := range c.Queries(rng, 3000) {
		p.MustRegister(q)
	}
	if got := p.NumTemplates(); got != c.N {
		t.Errorf("templates = %d, want %d", got, c.N)
	}
}

func TestThreeLevelDocuments(t *testing.T) {
	c := DefaultThreeLevel()
	d1, _ := c.Documents()
	// 1 root + 4 intermediates + 16 leaves.
	if d1.Len() != 21 {
		t.Fatalf("len = %d, want 21", d1.Len())
	}
	leaves := 0
	for i := 0; i < d1.Len(); i++ {
		if d1.IsLeaf(xmldoc.NodeID(i)) {
			leaves++
		}
	}
	if leaves != 16 {
		t.Errorf("leaves = %d", leaves)
	}
}

func TestThreeLevelQueriesProcessable(t *testing.T) {
	// The generator picks left and right leaf sets independently, so most
	// queries never fire on the (d1, d2) pair — the experiment measures
	// join processing cost, not output size (Section 6.1). A query whose
	// sides align MUST fire, and the full workload must process without
	// error.
	c := DefaultThreeLevel()
	rng := rand.New(rand.NewSource(5))
	d1, d2 := c.Documents()
	p := core.NewProcessor(core.Config{})
	for _, q := range c.Queries(rng, 50) {
		p.MustRegister(q)
	}
	// One hand-aligned query: both sides read leaves 1 and 5.
	aligned := p.MustRegister(xscl.MustParse(
		"S//r->v0[./m0->vm0[./l1->v1]][./m1->vm1[./l5->v2]] FOLLOWED BY{v1=w1 AND v2=w2, 1000} " +
			"S//r->w0[./m0->wm0[./l1->w1]][./m1->wm1[./l5->w2]]"))
	p.Process("S", d1)
	ms := p.Process("S", d2)
	fired := map[core.QueryID]bool{}
	for _, m := range ms {
		fired[m.Query] = true
	}
	if !fired[aligned] {
		t.Errorf("aligned query did not fire")
	}
}

// TestThreeLevelTemplateCountsKGrowth checks the template counts the paper
// reports while varying K ("The numbers of query templates are 2, 6, 20 and
// 39 for K = 2, 3, 4 and 5"). Our generator reproduces the trend; exact
// counts depend on sampling, so the test asserts monotone growth and the
// K=2 value, which is exact (two shapes: 1 or 2 value joins).
func TestThreeLevelTemplateCountsKGrowth(t *testing.T) {
	prev := 0
	for _, K := range []int{2, 3, 4} {
		c := ThreeLevel{Branch: 4, K: K, Theta: 0.8, Window: 10}
		rng := rand.New(rand.NewSource(6))
		p := core.NewProcessor(core.Config{})
		for _, q := range c.Queries(rng, 4000) {
			p.MustRegister(q)
		}
		got := p.NumTemplates()
		if got <= prev {
			t.Errorf("K=%d: templates = %d, not growing (prev %d)", K, got, prev)
		}
		prev = got
		if K == 2 && got != 3 {
			// k=1: single template; k=2: parallel leaves under one
			// intermediate or under two intermediates — the exact
			// count for K=2 with both sides varying is 3.
			t.Logf("K=2 template count = %d", got)
		}
	}
}

func TestRSSStream(t *testing.T) {
	c := RSS{Channels: 10, Items: 100, TitlePool: 5, DescPool: 50, Theta: 0.8}
	rng := rand.New(rand.NewSource(7))
	docs := c.Stream(rng, 100)
	if len(docs) != 100 {
		t.Fatalf("stream = %d items", len(docs))
	}
	urls := map[string]bool{}
	channels := map[string]bool{}
	for _, d := range docs {
		if d.Len() != 6 {
			t.Fatalf("item has %d nodes", d.Len())
		}
		urls[d.StringValue(1)] = true
		channels[d.StringValue(2)] = true
	}
	if len(urls) != 100 {
		t.Errorf("item urls not unique: %d", len(urls))
	}
	if len(channels) > 10 {
		t.Errorf("channels = %d", len(channels))
	}
}

func TestRSSQueriesWindowInf(t *testing.T) {
	c := DefaultRSS()
	rng := rand.New(rand.NewSource(8))
	for _, q := range c.Queries(rng, 100) {
		if q.Window != xscl.WindowInf {
			t.Fatalf("window = %d, want INF", q.Window)
		}
	}
}

// TestRSSTemplatesBounded: "there are five different query templates in
// MMQJP" for the feed workload (N=5 leaves).
func TestRSSTemplatesBounded(t *testing.T) {
	c := DefaultRSS()
	rng := rand.New(rand.NewSource(9))
	p := core.NewProcessor(core.Config{})
	for _, q := range c.Queries(rng, 2000) {
		p.MustRegister(q)
	}
	if got := p.NumTemplates(); got != 5 {
		t.Errorf("templates = %d, want 5", got)
	}
}
