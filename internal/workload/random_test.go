package workload

import (
	"fmt"
	"math/rand"
	"testing"
)

// traceFingerprint serializes a trace: query sources, churn schedule, and
// document XML, enough to detect any divergence between two generations.
func traceFingerprint(tr Trace) string {
	s := ""
	for _, q := range tr.Initial {
		s += "I:" + q.Source + "\n"
	}
	for _, ev := range tr.Events {
		for _, u := range ev.Unsubscribe {
			s += fmt.Sprintf("U:%d\n", u)
		}
		for _, q := range ev.Subscribe {
			s += "S:" + q.Source + "\n"
		}
		s += "D:" + ev.Doc.XMLText() + "\n"
	}
	return s
}

// TestRandomTraceDeterministicPerSeed is the reproducibility contract of
// the differential harness: a trace is a pure function of the seed, so a
// failure logged with its seed can be replayed exactly.
func TestRandomTraceDeterministicPerSeed(t *testing.T) {
	for _, deep := range []bool{false, true} {
		gen := DefaultRandomFlat()
		if deep {
			gen = DefaultRandomDeep()
		}
		a := gen.Trace(rand.New(rand.NewSource(42)), 6, 12, true)
		b := gen.Trace(rand.New(rand.NewSource(42)), 6, 12, true)
		if traceFingerprint(a) != traceFingerprint(b) {
			t.Errorf("deep=%v: same seed produced different traces", deep)
		}
		c := gen.Trace(rand.New(rand.NewSource(43)), 6, 12, true)
		if traceFingerprint(a) == traceFingerprint(c) {
			t.Errorf("deep=%v: different seeds produced identical traces", deep)
		}
	}
}

// TestRandomTraceChurnInvariants checks the generator's bookkeeping: churn
// only unsubscribes live subscriptions, never the last one, and every
// subscription index is within the issued range.
func TestRandomTraceChurnInvariants(t *testing.T) {
	gen := DefaultRandomFlat()
	tr := gen.Trace(rand.New(rand.NewSource(7)), 5, 40, true)
	live := map[int]bool{}
	for i := range tr.Initial {
		live[i] = true
	}
	next := len(tr.Initial)
	for i, ev := range tr.Events {
		for _, u := range ev.Unsubscribe {
			if !live[u] {
				t.Fatalf("event %d unsubscribes dead or unknown subscription %d", i, u)
			}
			if len(live) == 1 {
				t.Fatalf("event %d unsubscribes the last live subscription", i)
			}
			delete(live, u)
		}
		for range ev.Subscribe {
			live[next] = true
			next++
		}
		if ev.Doc == nil {
			t.Fatalf("event %d has no document", i)
		}
	}
	if next != tr.NumSubscriptions() {
		t.Fatalf("NumSubscriptions %d, replay counted %d", tr.NumSubscriptions(), next)
	}
}
