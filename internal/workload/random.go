package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// RandomWorkload generates seeded random XSCL queries, document streams and
// replayable subscription traces for the differential test harness: the
// same rng seed always yields the same queries, documents and churn
// schedule, so a failing trial is reproducible from its logged seed alone.
//
// Two schema shapes are generated. The flat shape is a two-level document
// (leaves drawn from LeafNames directly under the root) with queries
// joining k random leaves; the deep shape is a three-level document
// (intermediates m0..m2 over leaves l0..l3) with queries binding leaves
// under descendant-axis intermediate steps. String values are drawn from a
// Domain-sized pool, so a small Domain forces the value collisions the join
// plans disagree about.
type RandomWorkload struct {
	// LeafNames are the flat-schema leaf tags (ignored when Deep).
	LeafNames []string
	// Deep selects the three-level schema.
	Deep bool
	// MaxK bounds the number of value joins per query (k is uniform in
	// 1..MaxK).
	MaxK int
	// MaxWindow bounds the FOLLOWED BY/JOIN window length (uniform in
	// 1..MaxWindow).
	MaxWindow int64
	// Domain is the string-value pool size per document generation
	// (uniform in 1..Domain when DomainJitter, else exactly Domain).
	Domain int
	// JoinOps also generates JOIN queries (otherwise only FOLLOWED BY).
	JoinOps bool
}

// DefaultRandomFlat returns the flat-schema generator used by the
// randomized differential harness.
func DefaultRandomFlat() RandomWorkload {
	return RandomWorkload{
		LeafNames: []string{"a", "b", "c", "d", "e"},
		MaxK:      3, MaxWindow: 50, Domain: 3, JoinOps: true,
	}
}

// DefaultRandomDeep returns the three-level-schema generator.
func DefaultRandomDeep() RandomWorkload {
	return RandomWorkload{
		Deep: true, MaxK: 3, MaxWindow: 50, Domain: 3, JoinOps: true,
	}
}

// Query generates one random query: k ~ U(1..MaxK) value joins between two
// random blocks over the schema.
func (c RandomWorkload) Query(rng *rand.Rand) *xscl.Query {
	op := "FOLLOWED BY"
	if c.JoinOps && rng.Intn(2) == 1 {
		op = "JOIN"
	}
	window := int64(1 + rng.Int63n(c.MaxWindow))
	if c.Deep {
		return c.deepQuery(rng, op, window)
	}
	return c.flatQuery(rng, op, window)
}

func (c RandomWorkload) flatQuery(rng *rand.Rand, op string, window int64) *xscl.Query {
	k := 1 + rng.Intn(c.MaxK)
	if k > len(c.LeafNames) {
		k = len(c.LeafNames)
	}
	lperm := rng.Perm(len(c.LeafNames))[:k]
	rperm := rng.Perm(len(c.LeafNames))[:k]
	lhs, rhs, pred := "S//item->v0", "S//item->w0", ""
	for i := 0; i < k; i++ {
		lhs += fmt.Sprintf("[.//%s->v%d]", c.LeafNames[lperm[i]], i+1)
		rhs += fmt.Sprintf("[.//%s->w%d]", c.LeafNames[rperm[i]], i+1)
		if pred != "" {
			pred += " AND "
		}
		pred += fmt.Sprintf("v%d=w%d", i+1, i+1)
	}
	return xscl.MustParse(fmt.Sprintf("%s %s{%s, %d} %s", lhs, op, pred, window, rhs))
}

func (c RandomWorkload) deepQuery(rng *rand.Rand, op string, window int64) *xscl.Query {
	k := 1 + rng.Intn(c.MaxK)
	side := func(pfx string) (string, []string) {
		s := fmt.Sprintf("S//item->%s0", pfx)
		var vars []string
		for i := 0; i < k; i++ {
			v := fmt.Sprintf("%s%d", pfx, i+1)
			s += fmt.Sprintf("[.//m%d[.//l%d->%s]]", rng.Intn(3), rng.Intn(4), v)
			vars = append(vars, v)
		}
		return s, vars
	}
	lhs, lv := side("v")
	rhs, rv := side("w")
	pred := ""
	for i := 0; i < k; i++ {
		if pred != "" {
			pred += " AND "
		}
		pred += fmt.Sprintf("%s=%s", lv[i], rv[i])
	}
	return xscl.MustParse(fmt.Sprintf("%s %s{%s, %d} %s", lhs, op, pred, window, rhs))
}

// Document generates one random document of the configured schema shape.
func (c RandomWorkload) Document(rng *rand.Rand, id xmldoc.DocID, ts xmldoc.Timestamp) *xmldoc.Document {
	b := xmldoc.NewBuilder(id, ts, "item")
	if c.Deep {
		for m := 0; m < 2+rng.Intn(2); m++ {
			mid := b.Element(0, fmt.Sprintf("m%d", rng.Intn(3)), "")
			for l := 0; l < 1+rng.Intn(3); l++ {
				b.Element(mid, fmt.Sprintf("l%d", rng.Intn(4)), c.value(rng))
			}
		}
		return b.Build()
	}
	n := 1 + rng.Intn(len(c.LeafNames))
	perm := rng.Perm(len(c.LeafNames))
	for i := 0; i < n; i++ {
		b.Element(0, c.LeafNames[perm[i]], c.value(rng))
	}
	return b.Build()
}

func (c RandomWorkload) value(rng *rand.Rand) string {
	return fmt.Sprintf("val%d", rng.Intn(c.Domain))
}

// TraceEvent is one step of a replayable trace: optional subscription churn
// followed by one document publish. Unsubscribe entries are subscription
// indexes — positions in the global subscription order (Trace.Initial
// first, then every Subscribe in event order) — which equal the query ids
// both internal/core and internal/sequential assign, since both allocate
// ids sequentially and never reuse them.
type TraceEvent struct {
	Unsubscribe []int
	Subscribe   []*xscl.Query
	Doc         *xmldoc.Document
}

// Trace is a replayable workload: an initial query set, then events. Every
// system under differential test replays the identical trace, so their
// match streams are comparable event by event.
type Trace struct {
	Initial []*xscl.Query
	Events  []TraceEvent
}

// NumSubscriptions returns the total number of subscriptions the trace
// issues (initial plus churned-in).
func (tr Trace) NumSubscriptions() int {
	n := len(tr.Initial)
	for _, ev := range tr.Events {
		n += len(ev.Subscribe)
	}
	return n
}

// Trace generates a replayable trace: nQueries initial subscriptions, then
// nDocs publish events with timestamps advancing by 0..19 units. With churn
// enabled, roughly a third of the events unsubscribe one live query and a
// third subscribe a fresh one (at least one query always stays live). The
// result is a pure function of the rng state.
func (c RandomWorkload) Trace(rng *rand.Rand, nQueries, nDocs int, churn bool) Trace {
	tr := Trace{}
	var live []int
	for i := 0; i < nQueries; i++ {
		tr.Initial = append(tr.Initial, c.Query(rng))
		live = append(live, i)
	}
	next := nQueries
	ts := xmldoc.Timestamp(0)
	for i := 0; i < nDocs; i++ {
		var ev TraceEvent
		if churn && len(live) > 1 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			ev.Unsubscribe = append(ev.Unsubscribe, live[k])
			live = append(live[:k], live[k+1:]...)
		}
		if churn && rng.Intn(3) == 0 {
			ev.Subscribe = append(ev.Subscribe, c.Query(rng))
			live = append(live, next)
			next++
		}
		ts += xmldoc.Timestamp(rng.Intn(20))
		ev.Doc = c.Document(rng, xmldoc.DocID(i+1), ts)
		tr.Events = append(tr.Events, ev)
	}
	return tr
}
