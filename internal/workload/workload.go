// Package workload generates the synthetic documents, query sets and feed
// streams used by the paper's evaluation (Section 6).
//
// Three generators are provided:
//
//   - TwoLevel: the "simple document schema" of Section 6.1 — an RSS-item
//     style schema with N leaves under the root, two fixed documents whose
//     corresponding leaves share string values, and the Figure-17 random
//     query construction (k ~ Zipf, k distinct leaves per side, k value
//     joins).
//   - ThreeLevel: the "complex document schema" — three levels with
//     branching factor 4 (16 leaves), bound intermediate variables and up
//     to K value joins per query.
//   - RSS: a synthetic RSS/Atom feed stream standing in for the paper's
//     collected feeds (418 channels, 225K items; see DESIGN.md for the
//     substitution argument), with the Section-6.3 query workload.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/xmldoc"
	"repro/internal/xscl"
)

// Zipf samples integers from 1..N with probability proportional to
// 1/k^theta. Theta = 0 is the uniform distribution; larger values skew
// towards small k, matching the paper's "queries with smaller k values are
// more likely to be generated".
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the distribution over 1..n.
func NewZipf(n int, theta float64) *Zipf {
	z := &Zipf{cdf: make([]float64, n)}
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1.0 / math.Pow(float64(k), theta)
		z.cdf[k-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Sample draws from 1..N.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range z.cdf {
		if u <= c {
			return i + 1
		}
	}
	return len(z.cdf)
}

// TwoLevel is the simple-schema workload of Section 6.1 with the Table-5
// defaults.
type TwoLevel struct {
	N      int     // number of leaves in the document schema (default 6)
	Theta  float64 // Zipf parameter for the per-query join count k (default 0.8)
	Window int64   // window length assigned to generated queries
}

// DefaultTwoLevel returns the Table-5 parameters.
func DefaultTwoLevel() TwoLevel { return TwoLevel{N: 6, Theta: 0.8, Window: 1000} }

// Documents builds the two fixed documents d1 and d2: N leaves each, all
// string values distinct within a document, and leaf i of d1 sharing its
// value with leaf i of d2.
func (c TwoLevel) Documents() (*xmldoc.Document, *xmldoc.Document) {
	b1 := xmldoc.NewBuilder(1, 100, "r")
	b2 := xmldoc.NewBuilder(2, 200, "r")
	for i := 1; i <= c.N; i++ {
		v := fmt.Sprintf("value-%d", i)
		b1.Element(0, leafName(i), v)
		b2.Element(0, leafName(i), v)
	}
	return b1.Build(), b2.Build()
}

func leafName(i int) string { return fmt.Sprintf("l%d", i) }

// Queries generates n queries with the Figure-17 construction: pick
// k ~ Zipf(1..N); bind v0 to the root and v1..vk to k distinct leaves chosen
// uniformly at random for each side; join vi = v'i.
func (c TwoLevel) Queries(rng *rand.Rand, n int) []*xscl.Query {
	z := NewZipf(c.N, c.Theta)
	out := make([]*xscl.Query, n)
	for i := range out {
		k := z.Sample(rng)
		out[i] = c.query(rng, k)
	}
	return out
}

// ExactQuery generates one query with exactly k value joins.
func (c TwoLevel) ExactQuery(rng *rand.Rand, k int) *xscl.Query {
	return c.query(rng, k)
}

func (c TwoLevel) query(rng *rand.Rand, k int) *xscl.Query {
	lsel := rng.Perm(c.N)[:k]
	rsel := rng.Perm(c.N)[:k]
	var lhs, rhs, pred strings.Builder
	lhs.WriteString("S//r->v0")
	rhs.WriteString("S//r->w0")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&lhs, "[./%s->v%d]", leafName(lsel[i]+1), i+1)
		fmt.Fprintf(&rhs, "[./%s->w%d]", leafName(rsel[i]+1), i+1)
		if i > 0 {
			pred.WriteString(" AND ")
		}
		fmt.Fprintf(&pred, "v%d=w%d", i+1, i+1)
	}
	return xscl.MustParse(fmt.Sprintf("%s FOLLOWED BY{%s, %d} %s",
		lhs.String(), pred.String(), c.Window, rhs.String()))
}

// ThreeLevel is the complex-schema workload of Section 6.1: a three-level
// schema whose root and intermediate nodes have branching factor 4,
// yielding 16 leaves; queries bind the intermediate nodes on the paths to
// their chosen leaves, adding structural joins to the template queries.
type ThreeLevel struct {
	Branch int     // branching factor (default 4)
	K      int     // maximum number of value joins per query (default 4)
	Theta  float64 // Zipf parameter for k (default 0.8)
	Window int64
}

// DefaultThreeLevel returns the Section-6.1 parameters.
func DefaultThreeLevel() ThreeLevel { return ThreeLevel{Branch: 4, K: 4, Theta: 0.8, Window: 1000} }

// NumLeaves returns Branch², the number of schema leaves.
func (c ThreeLevel) NumLeaves() int { return c.Branch * c.Branch }

// Documents builds the two fixed three-level documents with matching leaf
// values at corresponding positions.
func (c ThreeLevel) Documents() (*xmldoc.Document, *xmldoc.Document) {
	build := func(id xmldoc.DocID, ts xmldoc.Timestamp) *xmldoc.Document {
		b := xmldoc.NewBuilder(id, ts, "r")
		for m := 0; m < c.Branch; m++ {
			mid := b.Element(0, fmt.Sprintf("m%d", m), "")
			for l := 0; l < c.Branch; l++ {
				leaf := m*c.Branch + l
				b.Element(mid, fmt.Sprintf("l%d", leaf), fmt.Sprintf("value-%d", leaf))
			}
		}
		return b.Build()
	}
	return build(1, 100), build(2, 200)
}

// Queries generates n queries: k ~ Zipf(1..K) distinct leaves per side, the
// intermediate node on each leaf's path bound to an additional variable
// (shared when two chosen leaves live under the same intermediate), and
// value joins vi = v'i.
func (c ThreeLevel) Queries(rng *rand.Rand, n int) []*xscl.Query {
	z := NewZipf(c.K, c.Theta)
	out := make([]*xscl.Query, n)
	for i := range out {
		k := z.Sample(rng)
		out[i] = c.query(rng, k)
	}
	return out
}

// ExactQuery generates one query with exactly k value joins (used by the
// Table-3 template-count experiment).
func (c ThreeLevel) ExactQuery(rng *rand.Rand, k int) *xscl.Query {
	return c.query(rng, k)
}

func (c ThreeLevel) query(rng *rand.Rand, k int) *xscl.Query {
	nl := c.NumLeaves()
	lsel := rng.Perm(nl)[:k]
	rsel := rng.Perm(nl)[:k]
	lhs := c.sideBlock(lsel, "v")
	rhs := c.sideBlock(rsel, "w")
	var pred strings.Builder
	for i := 0; i < k; i++ {
		if i > 0 {
			pred.WriteString(" AND ")
		}
		fmt.Fprintf(&pred, "v%d=w%d", i+1, i+1)
	}
	return xscl.MustParse(fmt.Sprintf("%s FOLLOWED BY{%s, %d} %s",
		lhs, pred.String(), c.Window, rhs))
}

// sideBlock renders one query block: leaves grouped under their (bound)
// intermediate nodes.
func (c ThreeLevel) sideBlock(leaves []int, pfx string) string {
	group := map[int][]int{} // intermediate -> positions in leaves
	for pos, leaf := range leaves {
		m := leaf / c.Branch
		group[m] = append(group[m], pos)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "S//r->%s0", pfx)
	for m := 0; m < c.Branch; m++ {
		positions, ok := group[m]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "[./m%d->%sm%d", m, pfx, m)
		for _, pos := range positions {
			fmt.Fprintf(&sb, "[./l%d->%s%d]", leaves[pos], pfx, pos+1)
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// RSS is the feed-stream workload of Section 6.3. Each item has the five
// leaves of the paper's feed schema; value pools are sized to induce the
// value-collision structure of real feeds: channel URLs repeat constantly,
// titles repeat occasionally (cross-postings and follow-ups), item URLs are
// unique, descriptions repeat rarely.
type RSS struct {
	Channels  int // number of distinct channels (paper: 418)
	Items     int // number of feed items (paper: 225K)
	TitlePool int // distinct titles; smaller = more cross-postings
	DescPool  int // distinct descriptions
	Theta     float64
}

// DefaultRSS returns the paper's stream shape with a reduced default item
// count (the full 225K items are a flag away in mmqjp-bench).
func DefaultRSS() RSS {
	return RSS{Channels: 418, Items: 225000, TitlePool: 40000, DescPool: 120000, Theta: 0.8}
}

// LeafNames returns the five leaf tags of the feed-item schema.
func (RSS) LeafNames() []string {
	return []string{"item_url", "channel_url", "title", "timestamp", "description"}
}

// Item builds the i-th feed item. Timestamps advance by one unit per item.
func (c RSS) Item(rng *rand.Rand, i int) *xmldoc.Document {
	b := xmldoc.NewBuilder(xmldoc.DocID(i+1), xmldoc.Timestamp(i+1), "item")
	ch := rng.Intn(c.Channels)
	b.Element(0, "item_url", fmt.Sprintf("http://feeds.example/%d/item/%d", ch, i))
	b.Element(0, "channel_url", fmt.Sprintf("http://feeds.example/%d", ch))
	b.Element(0, "title", fmt.Sprintf("title-%d", rng.Intn(c.TitlePool)))
	b.Element(0, "timestamp", fmt.Sprintf("%d", i+1))
	b.Element(0, "description", fmt.Sprintf("desc-%d", rng.Intn(c.DescPool)))
	return b.Build()
}

// Stream materializes n items (n ≤ Items).
func (c RSS) Stream(rng *rand.Rand, n int) []*xmldoc.Document {
	if n > c.Items {
		n = c.Items
	}
	out := make([]*xmldoc.Document, n)
	for i := range out {
		out[i] = c.Item(rng, i)
	}
	return out
}

// Queries generates n queries over the feed schema in the manner of Section
// 6.1, with unbounded windows ("We assign a time window of ∞ to all the
// generated queries").
func (c RSS) Queries(rng *rand.Rand, n int) []*xscl.Query {
	names := c.LeafNames()
	z := NewZipf(len(names), c.Theta)
	out := make([]*xscl.Query, n)
	for qi := range out {
		k := z.Sample(rng)
		lsel := rng.Perm(len(names))[:k]
		rsel := rng.Perm(len(names))[:k]
		var lhs, rhs, pred strings.Builder
		lhs.WriteString("S//item->v0")
		rhs.WriteString("S//item->w0")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&lhs, "[./%s->v%d]", names[lsel[i]], i+1)
			fmt.Fprintf(&rhs, "[./%s->w%d]", names[rsel[i]], i+1)
			if i > 0 {
				pred.WriteString(" AND ")
			}
			fmt.Fprintf(&pred, "v%d=w%d", i+1, i+1)
		}
		out[qi] = xscl.MustParse(fmt.Sprintf("%s FOLLOWED BY{%s, INF} %s",
			lhs.String(), pred.String(), rhs.String()))
	}
	return out
}
