package mmqjp

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// Facade-level tests of the engine-of-engines tier (Options.Partitions):
// routed engines must be byte-identical to an unpartitioned engine across
// the publish entrypoints, subscription churn at barriers, snapshot/restore,
// and concurrent async ingestion. The router-level differential harness
// lives in internal/router; these tests cover the facade wiring on top —
// id assignment, match conversion, the shared ingest barriers, and the
// partitioned snapshot format.

// routedEquivalenceRun drives the same publish/churn sequence through a
// reference engine and returns its per-document output.
func routedChurnSequence(t *testing.T, eng *Engine, queries []string, stream []*Document, batch bool) [][]Match {
	t.Helper()
	standing := queries[:len(queries)-1]
	late := queries[len(queries)-1]
	for _, q := range standing {
		eng.MustSubscribe(q)
	}
	out := make([][]Match, 0, len(stream))
	var lateID QueryID
	third, twoThirds := len(stream)/3, 2*len(stream)/3
	if batch {
		// Batch the churn-free spans, churning at the span boundaries —
		// the same shape the bench and server batch paths produce.
		spans := [][2]int{{0, third}, {third, twoThirds}, {twoThirds, len(stream)}}
		for si, sp := range spans {
			if si == 1 {
				lateID = eng.MustSubscribe(late)
			}
			if si == 2 {
				if err := eng.Unsubscribe(lateID); err != nil {
					t.Fatal(err)
				}
			}
			out = append(out, eng.PublishBatch("S", stream[sp[0]:sp[1]])...)
		}
		return out
	}
	for i, d := range stream {
		if i == third {
			lateID = eng.MustSubscribe(late)
		}
		if i == twoThirds {
			if err := eng.Unsubscribe(lateID); err != nil {
				t.Fatal(err)
			}
		}
		out = append(out, eng.Publish("S", d))
	}
	return out
}

func compareMatchStreams(t *testing.T, label string, want, got [][]Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d documents vs %d", label, len(want), len(got))
	}
	total := 0
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: doc %d: %d matches vs %d", label, i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("%s: doc %d match %d: %+v vs %+v", label, i, j, want[i][j], got[i][j])
			}
		}
		total += len(want[i])
	}
	if total == 0 {
		t.Fatalf("%s: sequence produced no matches; the comparison is vacuous", label)
	}
}

// TestEnginePartitionsEquivalence publishes the RSS workload, with a
// Subscribe and an Unsubscribe landing mid-sequence, through Partitions ∈
// {1, 2, 4} engines on both the per-document and the batch entrypoints;
// output must be byte-identical to the unpartitioned engine's.
func TestEnginePartitionsEquivalence(t *testing.T) {
	queries, stream := rssBatchFixture(200, 80)
	for _, batch := range []bool{false, true} {
		ref := New(Options{Processor: ProcessorViewMat})
		want := routedChurnSequence(t, ref, queries, stream, batch)
		for _, parts := range []int{1, 2, 4} {
			eng := New(Options{Processor: ProcessorViewMat, Partitions: parts, Parallelism: 2, PipelineDepth: 2})
			got := routedChurnSequence(t, eng, queries, stream, batch)
			label := "partitions=" + string(rune('0'+parts))
			if batch {
				label += " batch"
			}
			compareMatchStreams(t, label, want, got)
		}
	}
}

// TestEnginePartitionsAsyncBarrier is the routed form of the async barrier
// test: Subscribe/Unsubscribe between PublishAsync admissions run at a
// router-wide barrier, so the routed async output must equal the serial
// unpartitioned engine running the same admission order.
func TestEnginePartitionsAsyncBarrier(t *testing.T) {
	queries, stream := rssBatchFixture(200, 80)
	ref := New(Options{Processor: ProcessorViewMat})
	want := routedChurnSequence(t, ref, queries, stream, false)

	standing := queries[:len(queries)-1]
	late := queries[len(queries)-1]
	eng := New(Options{Processor: ProcessorViewMat, Partitions: 4, Parallelism: 2, PipelineDepth: 2})
	for _, q := range standing {
		eng.MustSubscribe(q)
	}
	chans := make([]<-chan []Match, len(stream))
	var lateID QueryID
	for i, d := range stream {
		if i == len(stream)/3 {
			lateID = eng.MustSubscribe(late)
		}
		if i == 2*len(stream)/3 {
			if err := eng.Unsubscribe(lateID); err != nil {
				t.Fatal(err)
			}
		}
		chans[i] = eng.PublishAsync("S", d)
	}
	eng.Flush()
	got := make([][]Match, len(stream))
	for i, ch := range chans {
		got[i] = collectAsync(t, ch)
	}
	eng.Close()
	compareMatchStreams(t, "partitions=4 async", want, got)
}

// TestEnginePartitionsSnapshotRestore snapshots a routed engine mid-stream
// and requires the restored engine to finish the stream byte-identically —
// all partitions restored at one consistent admission prefix — and rejects
// partition-count mismatches descriptively.
func TestEnginePartitionsSnapshotRestore(t *testing.T) {
	queries, stream := rssBatchFixture(200, 80)
	half := len(stream) / 2
	for _, parts := range []int{2, 4} {
		eng := New(Options{Processor: ProcessorViewMat, Partitions: parts, Parallelism: 2})
		for _, q := range queries {
			eng.MustSubscribe(q)
		}
		for _, d := range stream[:half] {
			eng.Publish("S", d)
		}
		var buf bytes.Buffer
		if err := eng.Snapshot(&buf); err != nil {
			t.Fatalf("partitions=%d: snapshot: %v", parts, err)
		}
		snap := buf.Bytes()

		restored, err := OpenEngine(bytes.NewReader(snap), Options{Processor: ProcessorViewMat, Partitions: parts})
		if err != nil {
			t.Fatalf("partitions=%d: open: %v", parts, err)
		}
		want := make([][]Match, 0, len(stream)-half)
		got := make([][]Match, 0, len(stream)-half)
		for _, d := range stream[half:] {
			want = append(want, eng.Publish("S", d))
			got = append(got, restored.Publish("S", d))
		}
		compareMatchStreams(t, "restored partitions="+string(rune('0'+parts)), want, got)

		if _, err := OpenEngine(bytes.NewReader(snap), Options{Processor: ProcessorViewMat, Partitions: parts + 1}); err == nil ||
			!strings.Contains(err.Error(), "partitions") {
			t.Fatalf("partitions=%d: opening with %d partitions: got %v, want a partition-count error", parts, parts+1, err)
		}
		if _, err := OpenEngine(bytes.NewReader(snap), Options{Processor: ProcessorViewMat}); err == nil ||
			!strings.Contains(err.Error(), "partitions") {
			t.Fatalf("partitions=%d: opening unpartitioned: got %v, want a partition-count error", parts, err)
		}
	}

	// And the reverse mismatch: an unpartitioned snapshot cannot be opened
	// into a routed engine.
	single := New(Options{Processor: ProcessorViewMat})
	single.MustSubscribe(queries[0])
	var buf bytes.Buffer
	if err := single.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEngine(bytes.NewReader(buf.Bytes()), Options{Processor: ProcessorViewMat, Partitions: 4}); err == nil ||
		!strings.Contains(err.Error(), "unpartitioned") {
		t.Fatalf("opening unpartitioned snapshot with partitions: got %v, want an unpartitioned error", err)
	}
}

// TestUnsubscribeRacesRouterBarrier hammers a routed engine with concurrent
// async publishers while another goroutine churns subscriptions through the
// router-wide barrier — the PR 3 churn × PR 4 barrier interaction, now
// cross-partition. The CI race job runs this under -race; the assertions
// here are liveness (everything drains) and bookkeeping (the standing set
// survives, every churned id is gone).
func TestUnsubscribeRacesRouterBarrier(t *testing.T) {
	queries, stream := rssBatchFixture(120, 60)
	standing := queries[: len(queries)/2 : len(queries)/2]
	churning := queries[len(queries)/2:]

	eng := New(Options{Processor: ProcessorViewMat, Partitions: 4, Parallelism: 2, PipelineDepth: 3})
	for _, q := range standing {
		eng.MustSubscribe(q)
	}
	var wg sync.WaitGroup
	const publishers = 3
	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(stream); i += publishers {
				ch := eng.PublishAsync("S", stream[i])
				<-ch
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 3; round++ {
			ids := make([]QueryID, 0, len(churning))
			for _, q := range churning {
				ids = append(ids, eng.MustSubscribe(q))
			}
			for _, id := range ids {
				if err := eng.Unsubscribe(id); err != nil {
					t.Errorf("unsubscribe %d: %v", id, err)
				}
			}
		}
	}()
	wg.Wait()
	eng.Flush()
	eng.Close()
	if got, want := eng.NumQueries(), len(standing); got != want {
		t.Fatalf("after churn: %d live queries, want %d", got, want)
	}
	if stats := eng.Stats(); stats.Documents != int64(len(stream)) {
		t.Fatalf("after churn: %d documents consumed, want %d", stats.Documents, len(stream))
	}
}
