package mmqjp

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store is a place snapshots live between process lifetimes. Save must be
// atomic: a crash mid-save (or a failed write function) leaves the previous
// snapshot intact, so there is always a consistent snapshot to restart from.
type Store interface {
	// Save replaces the stored snapshot with whatever write produces.
	Save(write func(w io.Writer) error) error
	// Open returns the current snapshot for reading; the caller closes it.
	// Returns ErrNoSnapshot when nothing has ever been saved.
	Open() (io.ReadCloser, error)
}

// ErrNoSnapshot is returned by Store.Open when the store is empty — for a
// server, the signal to start fresh rather than restore.
var ErrNoSnapshot = errors.New("mmqjp: no snapshot in store")

// SnapshotTo saves a consistent engine snapshot into the store (see
// Snapshot for the consistency guarantees).
func (e *Engine) SnapshotTo(s Store) error {
	return s.Save(e.Snapshot)
}

// OpenEngineFrom rebuilds an engine from the store's current snapshot. It
// returns ErrNoSnapshot (wrapped) when the store is empty; callers that
// treat an empty store as a fresh start should errors.Is against it.
func OpenEngineFrom(s Store, opts Options) (*Engine, error) {
	rc, err := s.Open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return OpenEngine(rc, opts)
}

// MemStore is an in-memory Store (tests, embedded use). The zero value is
// an empty store ready for use.
type MemStore struct {
	mu   sync.Mutex
	data []byte
	full bool
}

// Save buffers the snapshot fully before replacing the previous one, so a
// failed write leaves the store unchanged.
func (s *MemStore) Save(write func(w io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = buf.Bytes()
	s.full = true
	return nil
}

// Open returns the most recently saved snapshot.
func (s *MemStore) Open() (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return nil, ErrNoSnapshot
	}
	return io.NopCloser(bytes.NewReader(s.data)), nil
}

// FileStore keeps the snapshot in a single file, replaced atomically on
// every Save (write to a temporary file in the same directory, fsync,
// rename), so a crash at any point leaves either the old or the new
// snapshot — never a torn one.
type FileStore struct {
	path string
	gzip bool
	mu   sync.Mutex
}

// StoreOption configures a FileStore.
type StoreOption func(*FileStore)

// WithGzip makes Save gzip-compress the snapshot file. Open is
// format-sniffing either way: it decompresses gzipped files and passes
// plain ones through, so a store can be switched to (or away from)
// compression and still restore every previously saved snapshot.
func WithGzip() StoreOption {
	return func(s *FileStore) { s.gzip = true }
}

// NewFileStore returns a store backed by the file at path. The file need
// not exist yet; its directory must.
func NewFileStore(path string, opts ...StoreOption) *FileStore {
	s := &FileStore{path: path}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Path returns the snapshot file's path.
func (s *FileStore) Path() string { return s.path }

// Save writes the snapshot to a temporary file and renames it over the
// store's path.
func (s *FileStore) Save(write func(w io.Writer) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir, base := filepath.Split(s.path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("mmqjp: snapshot store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	var w io.Writer = tmp
	var zw *gzip.Writer
	if s.gzip {
		zw = gzip.NewWriter(tmp)
		w = zw
	}
	if err := write(w); err != nil {
		tmp.Close()
		return err
	}
	// The gzip stream must be finalized before the fsync, or the file would
	// be durably truncated mid-stream.
	if zw != nil {
		if err := zw.Close(); err != nil {
			tmp.Close()
			return fmt.Errorf("mmqjp: snapshot store: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("mmqjp: snapshot store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("mmqjp: snapshot store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("mmqjp: snapshot store: %w", err)
	}
	return nil
}

// Open opens the snapshot file; a missing file reports ErrNoSnapshot. The
// on-disk format is sniffed — gzipped snapshots are decompressed, plain
// JSON passes through — independent of whether this store was built with
// WithGzip, so restores work across compression-setting changes.
func (s *FileStore) Open() (io.ReadCloser, error) {
	f, err := os.Open(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w (%s)", ErrNoSnapshot, s.path)
	}
	if err != nil {
		return nil, fmt.Errorf("mmqjp: snapshot store: %w", err)
	}
	br := bufio.NewReader(f)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("mmqjp: snapshot store: %w", err)
		}
		return &gzipReadCloser{zr: zr, f: f}, nil
	}
	// A snapshot shorter than two bytes is not valid JSON either; let the
	// decoder report that rather than masking the Peek error here.
	return &bufReadCloser{br: br, f: f}, nil
}

// gzipReadCloser closes both the gzip stream (verifying its checksum was
// intact as far as it was read) and the underlying file.
type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// bufReadCloser keeps the sniffing bufio.Reader (which holds the peeked
// bytes) in front of the file.
type bufReadCloser struct {
	br *bufio.Reader
	f  *os.File
}

func (b *bufReadCloser) Read(p []byte) (int, error) { return b.br.Read(p) }
func (b *bufReadCloser) Close() error               { return b.f.Close() }
