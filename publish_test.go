package mmqjp

import (
	"errors"
	"testing"
)

// TestPublishDocForms checks that every input form of PublishDoc — a leading
// parsed document, WithDocs, WithXML, WithXMLEvents, mixed — publishes the
// same documents in the same order, producing match output identical to the
// historical per-document Publish path.
func TestPublishDocForms(t *testing.T) {
	docs := []struct {
		xml    string
		id, ts int64
	}{
		{paperD1, 1, 100},
		{paperD2, 2, 200},
		{paperD1, 3, 300},
		{paperD2, 4, 400},
	}
	parse := func(i int) *Document {
		d, err := ParseDocument(docs[i].xml, docs[i].id, docs[i].ts)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	events := make([]XMLEvent, len(docs))
	for i, d := range docs {
		events[i] = XMLEvent{XML: d.xml, DocID: d.id, Timestamp: d.ts}
	}

	ref := New(Options{Processor: ProcessorViewMat})
	ref.MustSubscribe(paperQ1)
	var want string
	for i := range docs {
		want += renderEngineMatches(ref.Publish("S", parse(i)))
	}

	for name, publish := range map[string]func(e *Engine) (PublishResult, error){
		"leading+withdocs": func(e *Engine) (PublishResult, error) {
			return e.PublishDoc("S", parse(0), WithDocs(parse(1), parse(2), parse(3)))
		},
		"xml-events": func(e *Engine) (PublishResult, error) {
			return e.PublishDoc("S", nil, WithXMLEvents(events...))
		},
		"mixed": func(e *Engine) (PublishResult, error) {
			return e.PublishDoc("S", parse(0),
				WithXML(docs[1].xml, docs[1].id, docs[1].ts),
				WithDocs(parse(2)),
				WithXML(docs[3].xml, docs[3].id, docs[3].ts))
		},
		"concurrent-parse": func(e *Engine) (PublishResult, error) {
			return e.PublishDoc("S", nil, WithXMLEvents(events...))
		},
	} {
		opts := Options{Processor: ProcessorViewMat}
		if name == "concurrent-parse" {
			opts.PipelineDepth = 4
		}
		eng := New(opts)
		eng.MustSubscribe(paperQ1)
		res, err := publish(eng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Batches) != len(docs) {
			t.Fatalf("%s: %d batches, want %d", name, len(res.Batches), len(docs))
		}
		var got string
		for _, b := range res.Batches {
			got += renderEngineMatches(b)
		}
		if got != want {
			t.Errorf("%s diverges from per-document Publish:\ngot:\n%swant:\n%s", name, got, want)
		}
		if flat := res.Matches(); len(flat) != countMatches(res.Batches) {
			t.Errorf("%s: Matches() flattened %d, want %d", name, len(flat), countMatches(res.Batches))
		}
	}
}

func countMatches(batches [][]Match) int {
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	return n
}

// TestPublishDocAsync checks the WithAsync form: single-document admission
// returns Done, Matches() blocks for the delivery, and a multi-document
// async call is rejected with ErrAsyncBatch before anything is published.
func TestPublishDocAsync(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat, PipelineDepth: 2})
	defer eng.Close()
	eng.MustSubscribe(paperQ1)

	if _, err := eng.PublishDoc("S", nil,
		WithXML(paperD1, 1, 100), WithXML(paperD2, 2, 200), WithAsync()); !errors.Is(err, ErrAsyncBatch) {
		t.Fatalf("async batch error = %v, want ErrAsyncBatch", err)
	}
	if got := eng.Stats().Documents; got != 0 {
		t.Fatalf("rejected async batch published %d documents", got)
	}

	res1, err := eng.PublishDoc("S", nil, WithXML(paperD1, 1, 100), WithAsync())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Done == nil || res1.Batches != nil {
		t.Fatalf("async result = %+v, want Done only", res1)
	}
	res2, err := eng.PublishDoc("S", nil, WithXML(paperD2, 2, 200), WithAsync())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res1.Matches()); got != 0 {
		t.Errorf("first document matches = %d, want 0", got)
	}
	if got := len(res2.Matches()); got != 1 {
		t.Errorf("second document matches = %d, want 1", got)
	}
}

// TestPublishDocParseError pins the shared error contract of the
// XML-accepting paths: any document failing to parse fails the whole call
// with a *DocumentError naming the document, and nothing is published.
func TestPublishDocParseError(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat})
	eng.MustSubscribe(paperQ1)

	_, err := eng.PublishDoc("S", nil,
		WithXML(paperD1, 1, 100),
		WithXML("<unclosed>", 2, 200),
		WithXML(paperD2, 3, 300))
	var de *DocumentError
	if !errors.As(err, &de) {
		t.Fatalf("parse failure error = %v (%T), want *DocumentError", err, err)
	}
	if de.Index != 1 || de.DocID != 2 {
		t.Errorf("DocumentError = index %d id %d, want index 1 id 2", de.Index, de.DocID)
	}
	if de.Unwrap() == nil {
		t.Error("DocumentError does not unwrap to its cause")
	}
	if got := eng.Stats().Documents; got != 0 {
		t.Errorf("failed call published %d documents, want 0", got)
	}

	// The historical wrappers share the contract.
	if _, err := eng.PublishXML("S", "<unclosed>", 4, 400); !errors.As(err, &de) {
		t.Errorf("PublishXML error = %v (%T), want *DocumentError", err, err)
	}
	if _, err := eng.PublishXMLBatch("S", []XMLEvent{
		{XML: paperD1, DocID: 5, Timestamp: 500},
		{XML: "<unclosed>", DocID: 6, Timestamp: 600},
	}); !errors.As(err, &de) {
		t.Errorf("PublishXMLBatch error = %v (%T), want *DocumentError", err, err)
	} else if de.Index != 1 || de.DocID != 6 {
		t.Errorf("PublishXMLBatch DocumentError = index %d id %d, want index 1 id 6", de.Index, de.DocID)
	}
	if got := eng.Stats().Documents; got != 0 {
		t.Errorf("failed wrapper calls published %d documents, want 0", got)
	}
}
