package mmqjp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestParsePlan covers the server flag's plan names.
func TestParsePlan(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Plan
	}{
		{"auto", PlanAuto}, {"", PlanAuto}, {"Witness", PlanWitness},
		{"rt", PlanRTDriven}, {"RTDriven", PlanRTDriven}, {"rt-driven", PlanRTDriven},
	} {
		got, err := ParsePlan(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePlan(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePlan("nested-loops"); err == nil {
		t.Error("ParsePlan accepted an unknown plan name")
	}
}

// TestPlanInvisibilityUnderAsyncChurn is the engine-level plan-invisibility
// guarantee: forced PlanWitness, forced PlanRTDriven and adaptive PlanAuto
// (exploration on) must produce byte-identical per-document match streams
// while documents flow through the continuous async ingest pipeline and
// subscriptions churn between publishes. Each engine replays the identical
// admission schedule — PublishAsync admissions from one goroutine with
// Unsubscribe/Subscribe churn at fixed positions (routed through the
// pipeline barrier) — so any cross-engine difference is the plan's doing.
// The CI race job runs this under -race, which also exercises the
// exploration path (the extra plan run) inside the shard workers.
func TestPlanInvisibilityUnderAsyncChurn(t *testing.T) {
	queries, stream := rssBatchFixture(200, 120)
	// Deterministic replacement queries for the churn-in half of each
	// churn step.
	extraRng := rand.New(rand.NewSource(33))
	var extras []string
	for _, q := range workload.DefaultRSS().Queries(extraRng, 24) {
		extras = append(extras, q.Source)
	}

	type stepResult [][]Match
	run := func(opts Options) stepResult {
		eng := New(opts)
		var live []QueryID
		for _, q := range queries {
			live = append(live, eng.MustSubscribe(q))
		}
		chans := make([]<-chan []Match, 0, len(stream))
		nextExtra := 0
		for i, d := range stream {
			if i%10 == 5 {
				// Unsubscribe the oldest live query and subscribe a
				// replacement; both run at a pipeline barrier, so their
				// position in the admission order is exact and identical
				// across engines.
				if err := eng.Unsubscribe(live[0]); err != nil {
					t.Fatalf("unsubscribe %d: %v", live[0], err)
				}
				live = live[1:]
				live = append(live, eng.MustSubscribe(extras[nextExtra%len(extras)]))
				nextExtra++
			}
			chans = append(chans, eng.PublishAsync("S", d))
		}
		eng.Flush()
		out := make(stepResult, len(chans))
		for i, ch := range chans {
			out[i] = collectAsync(t, ch)
		}
		eng.Close()
		return out
	}

	base := Options{Processor: ProcessorViewMat, Parallelism: 4, PipelineDepth: 2}
	witness, rt, auto := base, base, base
	witness.Plan = PlanWitness
	rt.Plan = PlanRTDriven
	auto.Plan = PlanAuto
	auto.PlanExploreEvery = 2
	auto.PlanExploreSeed = 7

	want := run(witness)
	for _, tc := range []struct {
		name string
		opts Options
	}{{"rt", rt}, {"auto", auto}} {
		got := run(tc.opts)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("plan=%s doc %d: %d matches vs %d under forced witness",
					tc.name, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("plan=%s doc %d match %d: %+v vs witness %+v",
						tc.name, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestPlanStatsAccessor checks the adaptive planner's statistics surface:
// after a workload where the two plans are genuinely comparable (colliding
// two-level documents, so exploration's cost cutoff does not suppress
// either direction) the snapshot reports live templates with run counters,
// and exploration calibrates both plans.
func TestPlanStatsAccessor(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat, PlanExploreEvery: 2, PlanExploreSeed: 3})
	// Two-join queries: both sides keep their root in the template minor,
	// so the witness fan-out estimate is live and the exploration cutoff
	// sees two genuinely comparable plans.
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 4; j++ {
			if i == j {
				continue
			}
			eng.MustSubscribe(fmt.Sprintf(
				"S//r->v0[./l1->v1][./l2->v2] FOLLOWED BY{v1=w1 AND v2=w2, 1000} S//r->w0[./l%d->w1][./l%d->w2]", i, j))
		}
	}
	for i := 0; i < 40; i++ {
		b := NewDocumentBuilder(int64(i+1), int64(i+1), "r")
		for l := 1; l <= 4; l++ {
			b.Element(0, fmt.Sprintf("l%d", l), fmt.Sprintf("value-%d", l))
		}
		eng.Publish("S", b.Build())
	}
	stats := eng.PlanStats()
	if len(stats) == 0 {
		t.Fatal("no per-template plan stats after a multi-template workload")
	}
	var runs, explorations int64
	for i, ts := range stats {
		if i > 0 && stats[i-1].Template >= ts.Template {
			t.Errorf("plan stats not in template order: %d then %d", stats[i-1].Template, ts.Template)
		}
		if ts.Sig == "" {
			t.Errorf("template %d: empty signature", ts.Template)
		}
		if ts.VecGroups <= 0 {
			t.Errorf("template %d: no live vector groups", ts.Template)
		}
		runs += ts.WitnessRuns + ts.RTRuns
		explorations += ts.Explorations
	}
	if runs == 0 {
		t.Error("no plan runs recorded")
	}
	if explorations == 0 {
		t.Error("exploration enabled but never sampled")
	}
	// Exploration calibrates both plans on at least one template.
	calibrated := false
	for _, ts := range stats {
		if ts.WitnessNsPerUnit > 0 && ts.RTNsPerUnit > 0 {
			calibrated = true
		}
	}
	if !calibrated {
		t.Error("no template has both plans calibrated despite exploration")
	}

	// Sequential mode has no templates and must report nil.
	seq := New(Options{Processor: ProcessorSequential})
	if s := seq.PlanStats(); s != nil {
		t.Errorf("sequential PlanStats = %v, want nil", s)
	}
}
