package mmqjp

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/xmldoc"
)

// findAttrValue returns the value of the named attribute on the first
// element with the given name, or ok=false.
func findAttrValue(d *Document, elem, attr string) (string, bool) {
	for _, id := range d.ElementsByName(elem) {
		for _, c := range d.Node(id).Children {
			cn := d.Node(c)
			if cn.Kind == xmldoc.AttributeNode && cn.Name == attr {
				return d.StringValue(c), true
			}
		}
	}
	return "", false
}

// TestOutputXMLEscaping is the satellite bugfix check: OutputXML must emit
// well-formed XML for documents whose text and attribute values contain
// `&`, `<` and `"` (the paper's own test document carries the title
// "Scripting &amp; Programming") — previously those values were written raw
// (text) or Go-quoted (attributes) and the output did not parse.
func TestOutputXMLEscaping(t *testing.T) {
	const title = "Scripting & Programming"
	const author = `A<B "junior"`
	eng := New(Options{Processor: ProcessorViewMat, RetainDocuments: true})
	eng.MustSubscribe(
		"S//book->b[.//title->t][.//author->a] FOLLOWED BY{t=u AND a=c, 100} S//review->r[.//title->u][.//author->c]")

	book := `<book id="a&amp;b" note="say &#34;hi&#34; &lt;now&gt;">` +
		`<title>Scripting &amp; Programming</title>` +
		`<author>A&lt;B &#34;junior&#34;</author>` +
		`<blurb>1 &lt; 2 &amp;&amp; 3 &gt; 2</blurb></book>`
	review := `<review><title>Scripting &amp; Programming</title>` +
		`<author>A&lt;B &#34;junior&#34;</author></review>`

	if ms, err := eng.PublishXML("S", book, 1, 1); err != nil || len(ms) != 0 {
		t.Fatalf("book publish: %v matches, err %v", ms, err)
	}
	ms, err := eng.PublishXML("S", review, 2, 2)
	if err != nil || len(ms) != 1 {
		t.Fatalf("review publish: %d matches, err %v (want 1 match)", len(ms), err)
	}
	out, ok := eng.OutputXML(ms[0])
	if !ok {
		t.Fatal("OutputXML not available with RetainDocuments")
	}
	// The emitted output must parse with encoding/xml.
	if err := xml.Unmarshal([]byte(out), new(struct{})); err != nil {
		t.Fatalf("OutputXML emitted unparseable XML: %v\noutput: %s", err, out)
	}
	// And round-trip: every special value survives a parse of the output.
	rt, err := ParseDocument(out, 99, 99)
	if err != nil {
		t.Fatalf("round-trip parse: %v\noutput: %s", err, out)
	}
	for _, elem := range []string{"title", "author"} {
		want := title
		if elem == "author" {
			want = author
		}
		ids := rt.ElementsByName(elem)
		if len(ids) == 0 {
			t.Fatalf("round-trip lost element %q\noutput: %s", elem, out)
		}
		for _, id := range ids {
			if got := rt.StringValue(id); got != want {
				t.Errorf("round-trip %s = %q, want %q", elem, got, want)
			}
		}
	}
	if got, ok := findAttrValue(rt, "book", "id"); !ok || got != "a&b" {
		t.Errorf("round-trip book/@id = %q ok=%v, want %q", got, ok, "a&b")
	}
	if got, ok := findAttrValue(rt, "book", "note"); !ok || got != `say "hi" <now>` {
		t.Errorf("round-trip book/@note = %q ok=%v, want %q", got, ok, `say "hi" <now>`)
	}
	if ids := rt.ElementsByName("blurb"); len(ids) != 1 || rt.StringValue(ids[0]) != "1 < 2 && 3 > 2" {
		t.Errorf("round-trip blurb lost its text: %v", ids)
	}
}

// TestOutputXMLCompositionEscaping checks the same property through a
// composition cascade: a derived document built from subtrees with special
// characters must render to parseable XML for downstream matches.
func TestOutputXMLCompositionEscaping(t *testing.T) {
	eng := New(Options{Processor: ProcessorViewMat, EnableComposition: true})
	// Two predicates on different branches keep the block roots (and their
	// attributes) in the derived document.
	eng.MustSubscribe("S//a->x[.//k->v][.//m->u] JOIN{v=w AND u=z, 1000} S//b->y[.//k->w][.//m->z] PUBLISH D")
	eng.MustSubscribe("D//result->r")

	if _, err := eng.PublishXML("S",
		`<a lang="C&amp;C++"><k>x &amp; y</k><m>p &lt; q</m></a>`, 1, 1); err != nil {
		t.Fatal(err)
	}
	ms, err := eng.PublishXML("S", `<b><k>x &amp; y</k><m>p &lt; q</m></b>`, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var derived []Match
	for _, m := range ms {
		if m.Query == 1 {
			derived = append(derived, m)
		}
	}
	if len(derived) != 1 {
		t.Fatalf("composition produced %d downstream matches, want 1 (all: %v)", len(derived), ms)
	}
	out, ok := eng.OutputXML(derived[0])
	if !ok {
		t.Fatal("OutputXML unavailable for the derived match")
	}
	if err := xml.Unmarshal([]byte(out), new(struct{})); err != nil {
		t.Fatalf("derived OutputXML unparseable: %v\noutput: %s", err, out)
	}
	rt, err := ParseDocument(out, 99, 99)
	if err != nil {
		t.Fatalf("round-trip parse: %v\noutput: %s", err, out)
	}
	if !strings.Contains(rt.StringValue(rt.Root()), "x & y") {
		t.Errorf("derived output lost the joined value: %s", out)
	}
	if got, ok := findAttrValue(rt, "a", "lang"); !ok || got != "C&C++" {
		t.Errorf("derived output a/@lang = %q ok=%v, want %q", got, ok, "C&C++")
	}
}
