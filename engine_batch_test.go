package mmqjp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// rssBatchFixture generates the multi-template RSS workload used by the
// batch determinism tests: queries plus a document stream.
func rssBatchFixture(nq, items int) ([]string, []*Document) {
	c := workload.DefaultRSS()
	qrng := rand.New(rand.NewSource(21))
	var queries []string
	for _, q := range c.Queries(qrng, nq) {
		queries = append(queries, q.Source)
	}
	srng := rand.New(rand.NewSource(22))
	return queries, c.Stream(srng, items)
}

// TestPublishBatchMatchesPublish is the engine-level acceptance test of the
// ingest pipeline: on the multi-template RSS workload, PublishBatch output
// must be identical to per-document Publish for every PipelineDepth
// ∈ {0, 1, 2, 8}, for both processor kinds, down to every Match field.
func TestPublishBatchMatchesPublish(t *testing.T) {
	queries, stream := rssBatchFixture(400, 120)
	for _, kind := range []ProcessorKind{ProcessorMMQJP, ProcessorViewMat} {
		ref := New(Options{Processor: kind})
		for _, q := range queries {
			ref.MustSubscribe(q)
		}
		var want [][]Match
		for _, d := range stream {
			want = append(want, ref.Publish("S", d))
		}
		for _, depth := range []int{0, 1, 2, 8} {
			eng := New(Options{Processor: kind, PipelineDepth: depth})
			for _, q := range queries {
				eng.MustSubscribe(q)
			}
			got := eng.PublishBatch("S", stream)
			if len(got) != len(want) {
				t.Fatalf("kind=%d depth=%d: %d result slices for %d docs", kind, depth, len(got), len(want))
			}
			for i := range got {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("kind=%d depth=%d doc %d: %d matches batch vs %d sequential",
						kind, depth, i, len(got[i]), len(want[i]))
				}
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("kind=%d depth=%d doc %d match %d: batch %+v vs sequential %+v",
							kind, depth, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestPublishBatchWithParallelism crosses the ingest pipeline with Stage-2
// parallelism at the engine level.
func TestPublishBatchWithParallelism(t *testing.T) {
	queries, stream := rssBatchFixture(300, 80)
	ref := New(Options{Processor: ProcessorViewMat})
	for _, q := range queries {
		ref.MustSubscribe(q)
	}
	var want [][]Match
	for _, d := range stream {
		want = append(want, ref.Publish("S", d))
	}
	eng := New(Options{Processor: ProcessorViewMat, Parallelism: 4, PipelineDepth: 4})
	for _, q := range queries {
		eng.MustSubscribe(q)
	}
	got := eng.PublishBatch("S", stream)
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("doc %d: %d matches vs %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("doc %d match %d: %+v vs %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestPublishXMLBatch checks the XML entry point: batch output equals
// per-document PublishXML, and a parse error anywhere rejects the whole
// batch without publishing any document of it.
func TestPublishXMLBatch(t *testing.T) {
	mkEvents := func() []XMLEvent {
		return []XMLEvent{
			{XML: "<a>k</a>", DocID: 1, Timestamp: 1},
			{XML: "<b>k</b>", DocID: 2, Timestamp: 2},
			{XML: "<b>k</b>", DocID: 3, Timestamp: 3},
		}
	}
	for _, depth := range []int{0, 4} {
		eng := New(Options{Processor: ProcessorViewMat, PipelineDepth: depth})
		eng.MustSubscribe("S//a->x FOLLOWED BY{x=y, 100} S//b->y")

		// A bad document anywhere rejects the batch whole.
		bad := mkEvents()
		bad[1].XML = "<unclosed>"
		if _, err := eng.PublishXMLBatch("S", bad); err == nil {
			t.Fatalf("depth=%d: batch with bad XML accepted", depth)
		}
		if got := eng.Stats(); got.Documents != 0 {
			t.Fatalf("depth=%d: rejected batch published documents: %s", depth, got)
		}

		out, err := eng.PublishXMLBatch("S", mkEvents())
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		total := 0
		for _, ms := range out {
			total += len(ms)
		}
		if len(out) != 3 || total != 2 {
			t.Errorf("depth=%d: got %d slices, %d matches, want 3 slices with 2 matches", depth, len(out), total)
		}
	}
}

// TestPublishBatchComposition checks that PUBLISH-clause cascades fire
// between batch documents exactly as the per-document path fires them.
func TestPublishBatchComposition(t *testing.T) {
	subscribe := func(eng *Engine) {
		eng.MustSubscribe("S//a->x JOIN{x=y, 1000} S//b->y PUBLISH D")
		eng.MustSubscribe("D//result->r")
	}
	var docs []*Document
	for i := 0; i < 6; i++ {
		xml := "<a>k</a>"
		if i%2 == 1 {
			xml = "<b>k</b>"
		}
		d, err := ParseDocument(xml, int64(i+1), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	ref := New(Options{Processor: ProcessorViewMat, EnableComposition: true})
	subscribe(ref)
	var want [][]Match
	for _, d := range docs {
		want = append(want, ref.Publish("S", d))
	}
	for _, depth := range []int{0, 4} {
		eng := New(Options{Processor: ProcessorViewMat, EnableComposition: true, PipelineDepth: depth})
		subscribe(eng)
		got := eng.PublishBatch("S", docs)
		for i := range got {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("depth=%d doc %d:\nbatch:      %v\nsequential: %v", depth, i, got[i], want[i])
			}
		}
	}
}
